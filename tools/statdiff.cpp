// statdiff: compare two coaxial stats JSON documents under per-metric
// relative tolerances.
//
//   statdiff [--rtol X] [--rtol PATTERN=X] [-q] A.json B.json
//
// Integral leaves (counters, histogram counts, cycle percentiles) compare
// exactly unless a rule matches them; non-integral leaves use the default
// tolerance. --rtol PATTERN=X adds a substring rule, or a glob over the
// full path when PATTERN contains `*` / `?` — so one rule such as
// `fabric/*/queue_delay_sum=0.05` covers a whole subtree (last match wins).
//
// Exit status: 0 = documents match, 1 = differences found, 2 = usage or
// file/parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/statdiff.hpp"
#include "obs/stats_json.hpp"

namespace {

void usage() {
  std::cerr << "usage: statdiff [--rtol X] [--rtol PATTERN=X] [-q] A.json B.json\n"
               "  --rtol X          default relative tolerance for non-integral "
               "leaves (default 0)\n"
               "  --rtol PATTERN=X  tolerance for paths containing PATTERN; a\n"
               "                    PATTERN with * or ? glob-matches the full path\n"
               "                    (applies to integral leaves too; last match wins)\n"
               "  -q                print only the summary line\n";
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coaxial;
  obs::DiffOptions opts;
  std::vector<std::string> files;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rtol") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      const std::string spec = argv[++i];
      const std::size_t eq = spec.rfind('=');
      char* end = nullptr;
      if (eq == std::string::npos) {
        opts.default_rtol = std::strtod(spec.c_str(), &end);
        if (end == spec.c_str() || *end != '\0') {
          std::cerr << "statdiff: bad tolerance '" << spec << "'\n";
          return 2;
        }
      } else {
        const std::string num = spec.substr(eq + 1);
        const double rtol = std::strtod(num.c_str(), &end);
        if (end == num.c_str() || *end != '\0') {
          std::cerr << "statdiff: bad tolerance '" << spec << "'\n";
          return 2;
        }
        opts.rules.push_back({spec.substr(0, eq), rtol});
      }
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "statdiff: unknown option '" << arg << "'\n";
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    usage();
    return 2;
  }

  obs::json::Flat docs[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!read_file(files[i], text)) {
      std::cerr << "statdiff: cannot read '" << files[i] << "'\n";
      return 2;
    }
    try {
      docs[i] = obs::json::parse_flat(text);
    } catch (const std::exception& e) {
      std::cerr << "statdiff: " << files[i] << ": " << e.what() << "\n";
      return 2;
    }
  }

  const std::vector<obs::Diff> diffs = obs::diff_stats(docs[0], docs[1], opts);
  if (!quiet) {
    for (const obs::Diff& d : diffs) std::cout << obs::to_string(d) << "\n";
  }
  std::cout << (diffs.empty() ? "statdiff: documents match"
                              : "statdiff: " + std::to_string(diffs.size()) +
                                    " difference(s)")
            << " (" << files[0] << " vs " << files[1] << ")\n";
  return diffs.empty() ? 0 : 1;
}
