// golden_run: emit the canonical golden-scenario stats document.
//
//   golden_run [OUT.json]
//
// Runs the exact (config, workload) set pinned by tests/golden/baseline.json
// (sim::golden_requests(), shared with tests/test_golden_stats.cpp) and
// writes the coaxial-stats-v1 document to OUT.json, or stdout when no path
// is given. scripts/ci.sh diffs the output against the checked-in baseline
// with statdiff.
//
// Exit status: 0 = document written, 1 = I/O failure, 2 = usage error.
#include <cstdio>
#include <iostream>
#include <string>

#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace coaxial;
  if (argc > 2) {
    std::cerr << "usage: golden_run [OUT.json]\n";
    return 2;
  }
  // Single-threaded, like the golden test: run order must not matter for the
  // document bytes, but keeping the reference path identical removes even
  // scheduling noise from the comparison.
  const std::string doc = sim::stats_json(sim::run_many(sim::golden_requests(), 1));
  if (argc == 2) {
    std::FILE* f = std::fopen(argv[1], "wb");
    if (f == nullptr ||
        std::fwrite(doc.data(), 1, doc.size(), f) != doc.size() ||
        std::fclose(f) != 0) {
      std::cerr << "golden_run: cannot write " << argv[1] << "\n";
      return 1;
    }
    return 0;
  }
  std::cout << doc;
  return 0;
}
