// Pooled CXL memory shared by N host slices (DESIGN.md §12).
//
// Generalises coaxial::CxlMemory from one host to N: every host owns its
// own fabric::Fabric head whose endpoint list is [shared pooled devices,
// host-private devices] — pooled devices are multi-headed (one uplink per
// host), private devices are reachable from their owner only. DRAM behind
// the pooled devices is one global set of controllers; private DRAM is
// per host.
//
// Every access admitted at a pooled device is presented to that device's
// pool::Directory. When the decision demands a coherence round (remote
// read of a modified page, write to a shared page, capacity eviction), the
// access parks in a transaction and the invalidations travel the real
// fabric: device -> sharer host on the sharer's return path (contending
// with its read responses), ack host -> device on the sharer's request
// path (contending with its demand traffic). Invalidation latency is
// therefore topology-dependent — a switched fabric pays its switch hops —
// and a dirty recall additionally writes the recalled line into device
// DRAM before the parked access is admitted.
//
// Determinism contract (same as mem::MemorySystem): can_accept() is pure;
// all state mutates inside access()/tick(); every action is keyed on
// message arrival cycles and fixed scan orders (sub-channel index, then
// host index), never on how often tick() was polled; tick() returns a
// conservative wake bound (any live coherence state wakes at now + 1), so
// the event-driven and tick-every-cycle schedulers agree bit-for-bit.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "dram/controller.hpp"
#include "fabric/fabric.hpp"
#include "obs/metrics.hpp"
#include "placement/address_map.hpp"
#include "pool/directory.hpp"
#include "pool/pool_config.hpp"

namespace coaxial::pool {

/// A finished read for one host slice.
struct HostCompletion {
  std::uint64_t token = 0;
  Cycle done = 0;
  bool poisoned = false;  ///< CRC budget exhausted, or the device died.
};

/// Per-host admission/protocol counters (pool/host/NN/*).
struct HostCounters {
  std::uint64_t reads = 0;   ///< Demand reads admitted to DRAM.
  std::uint64_t writes = 0;  ///< Demand writes admitted to DRAM.
  std::uint64_t shared = 0;  ///< Of those, pooled-window accesses.
  std::uint64_t invals_received = 0;
  std::uint64_t acks_sent = 0;
};

class PooledMemory {
 public:
  PooledMemory(const PoolConfig& cfg, obs::Scope scope = {});

  /// Pure admission check for `host` (mirrors mem::MemorySystem).
  bool can_accept(std::uint32_t host, Addr line, bool is_write, Cycle now) const;

  /// Issue an access; must only be called when can_accept() returned true
  /// this cycle. Reads echo `token` in the host's completions; writes are
  /// posted.
  void access(std::uint32_t host, Addr line, bool is_write, Cycle now,
              std::uint64_t token);

  /// Advance everything (fabrics, directories, coherence transactions,
  /// DRAM); returns a conservative wake bound.
  Cycle tick(Cycle now);

  void set_force_tick(bool force) { force_tick_ = force; }

  std::vector<HostCompletion>& completions(std::uint32_t host) {
    return out_[host];
  }

  /// True once no read, coherence message or writeback is in flight
  /// anywhere (the drain condition; implies invals_sent == invals_acked).
  bool quiescent() const;

  /// RAS events summed over every host head's fabric (all-zero unarmed).
  ras::RasCounters ras_counters() const;
  /// Device-failure lifecycle counters (DESIGN.md §13).
  const ras::AvailCounters& avail_counters() const { return avail_; }
  /// True once the planned surprise removal has happened.
  bool device_dead() const { return dead_; }

  const PoolConfig& config() const { return cfg_; }
  const Directory& directory(std::uint32_t shared_dev) const {
    return *dirs_[shared_dev];
  }
  const PoolCounters& counters() const { return ctr_; }
  const HostCounters& host_counters(std::uint32_t host) const {
    return host_ctr_[host];
  }

 private:
  // One queued device-side message (host identified by the queue index).
  struct DeviceMsg {
    Cycle arrival = 0;
    Addr local_line = 0;      ///< Sub-channel-local line.
    Addr page = 0;            ///< Pool-global shared page id (shared only).
    std::uint64_t token = 0;  ///< Read slot; unused for writes.
    bool is_write = false;
    bool poisoned = false;    ///< Request poisoned crossing the fabric.
  };

  // A read in flight for one host.
  struct InflightRead {
    std::uint64_t token = 0;
    Cycle start = 0;
    bool busy = false;
    bool poisoned = false;  ///< Request-side poison; completion inherits it.
  };

  // A DRAM read completion waiting for return-path credit.
  struct PendingResponse {
    Cycle ready = 0;
    std::uint32_t device = 0;  ///< Host-fabric device index.
    std::uint32_t slot = 0;
  };

  // A coherence transaction parked at a pooled device.
  struct CohTxn {
    bool live = false;
    bool recovery = false;   ///< Directory-recovery inval round: no parked
                             ///< access, no unlock (directory was reset).
    std::uint32_t sdev = 0;  ///< Pooled device (== fabric index on every host).
    Addr page = 0;           ///< Locked directory page (the requester's).
    std::uint64_t send_clean = 0;  ///< Target hosts not yet sent (clean inval).
    std::uint64_t send_dirty = 0;  ///< Ditto, dirty recall.
    std::uint32_t acks_pending = 0;
    std::uint32_t wb_sub = 0;  ///< Where a dirty recall writes its line back.
    Addr wb_line = 0;
    DeviceMsg parked;
    std::uint32_t park_host = 0;
    std::uint32_t park_sub = 0;  ///< Shared sub-channel of the parked access.
  };

  // An invalidation delivered to a host, waiting to be acked.
  struct HostInval {
    Cycle arrival = 0;
    std::uint32_t txn = 0;
    bool dirty = false;
  };

  // An ack travelling back, delivered to the device side.
  struct DevAck {
    Cycle arrival = 0;
    std::uint32_t txn = 0;
    bool dirty = false;
  };

  // A recalled dirty line waiting for a DRAM write-queue slot.
  struct PendingWb {
    std::uint32_t sub = 0;
    Addr local_line = 0;
  };

  // Wire cookie for switched fabrics (direct fabrics deliver analytically).
  struct WireMsg {
    enum Kind : std::uint8_t { kDemand, kAck, kResp, kInval } kind = kDemand;
    bool is_write = false;  ///< kDemand.
    bool shared = false;    ///< kDemand: pooled vs private class.
    bool dirty = false;     ///< kAck / kInval.
    std::uint32_t sub = 0;  ///< kDemand: class-local sub-channel.
    std::uint32_t txn = 0;  ///< kAck / kInval.
    std::uint32_t slot = 0; ///< kResp / kDemand(read).
    Addr line = 0;          ///< kDemand: sub-local line.
    Addr page = 0;          ///< kDemand: shared page id.
  };

  std::uint32_t shared_sub_of(std::uint32_t device, std::uint32_t sub_in_dev) const {
    return device * spd_ + sub_in_dev;
  }

  std::uint32_t alloc_slot(std::uint32_t host, std::uint64_t token, Cycle now);
  void finish_read(std::uint32_t host, std::uint32_t slot, Cycle arrival,
                   bool wire_poisoned = false);
  std::uint32_t alloc_txn();
  std::uint32_t alloc_wire(std::uint32_t host, const WireMsg& msg);
  void deliver_inval(std::uint32_t target, std::uint32_t txn, bool dirty,
                     Cycle arrival);
  void deliver_ack(std::uint32_t txn, bool dirty, Cycle arrival);
  void start_txn(const Directory::Decision& d, const DeviceMsg& msg,
                 std::uint32_t host, std::uint32_t shared_sub, Cycle now);
  void pump_txn_sends(std::uint32_t t, Cycle now);
  bool coherence_idle() const;

  // ---- device failure: surprise removal of a shared device (§13) ----
  /// Onset sweep + recovery-wave pump; returns a wake bound (fail_at
  /// pre-death, now + 1 while recovery transactions remain queued).
  Cycle pump_pool_failure(Cycle now);
  void pool_fail_onset(Cycle now);
  /// Poison-complete a read headed for (or stranded at) the dead device;
  /// absorb a write. `host` owns the message's read slot.
  void bounce_msg(std::uint32_t host, const DeviceMsg& msg, Cycle at);

  PoolConfig cfg_;
  std::uint32_t n_hosts_ = 0;
  std::uint32_t spd_ = 0;       ///< Sub-channels per device.
  std::uint32_t s_devs_ = 0;    ///< Pooled devices (fabric indices [0, S)).
  std::uint32_t p_devs_ = 0;    ///< Private devices per host ([S, S+P)).
  std::uint32_t s_subs_ = 0;    ///< s_devs_ * spd_.
  std::uint32_t p_subs_ = 0;    ///< p_devs_ * spd_.
  bool force_tick_ = false;

  // Address decode: stage 1 per host (shared-window range decode), stage 2
  // per device class.
  std::vector<placement::AddressMap> stage1_;
  placement::AddressMap shared_map_;   ///< kPage over pooled devices.
  placement::AddressMap private_map_;  ///< kLine over private devices.

  std::vector<std::unique_ptr<fabric::Fabric>> fab_;  ///< Per host.

  // DRAM: pooled controllers are global, private ones per host.
  std::vector<std::unique_ptr<dram::Controller>> shared_ctrls_;  ///< [s_subs_].
  std::vector<std::vector<std::unique_ptr<dram::Controller>>> priv_ctrls_;

  // Ingress: pooled subs keep one queue per host (merged at admission by
  // earliest arrival, host index breaking ties); private subs one queue.
  std::vector<std::vector<std::deque<DeviceMsg>>> shared_ingress_;  ///< [sub][host].
  std::vector<std::vector<std::deque<DeviceMsg>>> priv_ingress_;    ///< [host][sub].
  std::vector<Cycle> shared_wake_;               ///< Per pooled sub.
  std::vector<std::vector<Cycle>> priv_wake_;    ///< [host][sub].
  std::vector<std::vector<std::uint32_t>> tx_inflight_shared_;  ///< [sub][host].
  std::vector<std::vector<std::uint32_t>> tx_inflight_priv_;    ///< [host][sub].

  // Per-host read slots and return-path queues.
  std::vector<std::vector<InflightRead>> inflight_;     ///< [host][slot].
  std::vector<std::vector<std::uint32_t>> free_slots_;  ///< [host].
  std::vector<std::vector<PendingResponse>> pending_rx_;
  std::vector<std::vector<HostCompletion>> out_;
  std::uint64_t inflight_reads_ = 0;

  // Coherence machinery.
  std::vector<std::unique_ptr<Directory>> dirs_;  ///< Per pooled device.
  std::vector<CohTxn> txns_;
  std::vector<std::uint32_t> free_txns_;
  std::vector<std::uint32_t> txns_per_dev_;
  std::uint32_t live_txns_ = 0;
  std::vector<std::vector<HostInval>> host_invals_;  ///< [host].
  std::vector<DevAck> dev_acks_;
  std::vector<PendingWb> pending_wbs_;

  // Switched-fabric cookie pools, per host.
  std::vector<std::vector<WireMsg>> wire_pool_;
  std::vector<std::vector<std::uint32_t>> free_wire_;
  std::uint64_t fabric_msgs_inflight_ = 0;

  // Device-failure state (DESIGN.md §13). `dead_` flips only inside tick()
  // at the planned cycle — pump_pool_failure() returns fail_at_ as a wake
  // bound until then — so both scheduler modes observe the flip at the
  // same cycle and every live query of it stays mode-invariant.
  bool avail_on_ = false;       ///< fault_plan.device_failure(), cached.
  bool dead_ = false;           ///< The shared device is gone.
  std::uint32_t fail_dev_ = 0;  ///< Shared-device (== fabric) index.
  Cycle fail_at_ = kNoCycle;
  Cycle bounce_cycles_ = 1;  ///< Unloaded round trip: refused-read latency.
  /// Directory-recovery backlog: (page, sharer mask) waves bounded by the
  /// per-device transaction table.
  std::deque<std::pair<Addr, std::uint64_t>> recovery_q_;
  ras::AvailCounters avail_;

  PoolCounters ctr_;
  std::vector<HostCounters> host_ctr_;
};

}  // namespace coaxial::pool
