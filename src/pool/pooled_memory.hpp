// Pooled CXL memory shared by N host slices (DESIGN.md §12).
//
// Generalises coaxial::CxlMemory from one host to N: every host owns its
// own fabric::Fabric head whose endpoint list is [shared pooled devices,
// host-private devices] — pooled devices are multi-headed (one uplink per
// host), private devices are reachable from their owner only. DRAM behind
// the pooled devices is one global set of controllers; private DRAM is
// per host.
//
// Every access admitted at a pooled device is presented to that device's
// pool::Directory. When the decision demands a coherence round (remote
// read of a modified page, write to a shared page, capacity eviction), the
// access parks in a transaction and the invalidations travel the real
// fabric: device -> sharer host on the sharer's return path (contending
// with its read responses), ack host -> device on the sharer's request
// path (contending with its demand traffic). Invalidation latency is
// therefore topology-dependent — a switched fabric pays its switch hops —
// and a dirty recall additionally writes the recalled line into device
// DRAM before the parked access is admitted.
//
// Determinism contract (same as mem::MemorySystem): can_accept() is pure;
// all state mutates inside access()/tick(); every action is keyed on
// message arrival cycles and fixed scan orders (sub-channel index, then
// host index), never on how often tick() was polled; tick() returns a
// conservative wake bound (any live coherence state wakes at now + 1), so
// the event-driven and tick-every-cycle schedulers agree bit-for-bit.
//
// Sharded engine (DESIGN.md §14). Direct-fabric pools additionally expose
// the pump split into shard-owned halves so sim::PooledSystem can run them
// under the conservative-lookahead quantum engine (sim/shard.hpp):
//
//   * host shard h owns: its slice's admission (can_accept/access), the
//     private-device path end to end (ingress, DRAM, response shipping),
//     its read-slot table and completion queue, invalidation acking, and a
//     per-sub credit count standing in for the pooled ingress occupancy it
//     can no longer read directly;
//   * the pool shard owns: pooled ingress/DRAM/directories, coherence
//     transactions, recall writebacks, shared response shipping, and the
//     device-failure lifecycle.
//
// Cross-shard traffic (demands, acks, completions, invalidations, credit
// returns) travels through per-host mailboxes flushed by the coordinator
// at quantum barriers via exchange_shard_mail(). Every such message is
// stamped at least min_cross_shard_latency() cycles in the future by
// construction (it rides a SerialPipe whose delivery is >= now + unloaded
// latency), which is exactly the engine's quantum.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "dram/controller.hpp"
#include "fabric/fabric.hpp"
#include "obs/metrics.hpp"
#include "placement/address_map.hpp"
#include "pool/directory.hpp"
#include "pool/pool_config.hpp"

namespace coaxial::pool {

/// A finished read for one host slice.
struct HostCompletion {
  std::uint64_t token = 0;
  Cycle done = 0;
  bool poisoned = false;  ///< CRC budget exhausted, or the device died.
};

/// Per-host admission/protocol counters (pool/host/NN/*). Assembled on
/// demand by host_counters(): the underlying fields are split by owning
/// shard so the sharded pump never writes one counter from two threads.
struct HostCounters {
  std::uint64_t reads = 0;   ///< Demand reads admitted to DRAM.
  std::uint64_t writes = 0;  ///< Demand writes admitted to DRAM.
  std::uint64_t shared = 0;  ///< Of those, pooled-window accesses.
  std::uint64_t invals_received = 0;
  std::uint64_t acks_sent = 0;
};

class PooledMemory {
 public:
  PooledMemory(const PoolConfig& cfg, obs::Scope scope = {});

  /// Pure admission check for `host` (mirrors mem::MemorySystem).
  bool can_accept(std::uint32_t host, Addr line, bool is_write, Cycle now) const;

  /// Issue an access; must only be called when can_accept() returned true
  /// this cycle. Reads echo `token` in the host's completions; writes are
  /// posted.
  void access(std::uint32_t host, Addr line, bool is_write, Cycle now,
              std::uint64_t token);

  /// Advance everything (fabrics, directories, coherence transactions,
  /// DRAM); returns a conservative wake bound. Sequential (non-engine)
  /// pump entry — the engine calls the shard halves below instead.
  Cycle tick(Cycle now);

  void set_force_tick(bool force) { force_tick_ = force; }

  std::vector<HostCompletion>& completions(std::uint32_t host) {
    return out_[host];
  }

  // ---- sharded engine (DESIGN.md §14) ----------------------------------
  /// Whether this pool can run under the quantum engine (direct fabrics
  /// only: a switch's arbitration state spans both directions of every
  /// host, so it cannot be split into independently-pumped shards).
  bool engine_capable() const { return fab_[0]->direct(); }
  /// Smallest latency any cross-shard message can experience — the
  /// engine's quantum. Minimum over hosts of the unloaded one-way cost of
  /// the smallest message in each direction; SerialPipe delivery is always
  /// >= now + unloaded latency (backlog, faults and down-training only add
  /// to it), so this is a sound lookahead.
  Cycle min_cross_shard_latency() const;
  /// Switch admission control to mailbox credits and route cross-shard
  /// messages through the mailboxes. Requires engine_capable().
  void set_engine(bool on);
  bool engine() const { return engine_; }
  /// Pool-shard pump: device failure lifecycle, ack retirement, coherence
  /// transactions, pooled sub-channels, shared response shipping.
  Cycle pool_tick(Cycle now);
  /// Host-shard pump for `host`: credit maturation, the private-device
  /// path, invalidation acking.
  Cycle host_tick(std::uint32_t host, Cycle now);
  /// Coordinator-only, at a quantum barrier (no shard running): flush
  /// every mailbox into its destination shard's structures in fixed
  /// (host-index, FIFO) order. Returns the earliest cycle at which any
  /// delivered message takes effect (kNoCycle if all mailboxes were
  /// empty), so the engine can skip whole idle quanta.
  Cycle exchange_shard_mail(Cycle now);

  /// True once no read, coherence message or writeback is in flight
  /// anywhere (the drain condition; implies invals_sent == invals_acked).
  /// Covers undrained completions and mailbox contents, so it is only
  /// meaningful between ticks (sequential) or at barriers (engine).
  bool quiescent() const;

  /// RAS events summed over every host head's fabric (all-zero unarmed).
  ras::RasCounters ras_counters() const;
  /// Device-failure lifecycle counters (DESIGN.md §13), merged over the
  /// pool-shard and host-shard halves.
  ras::AvailCounters avail_counters() const;
  /// True once the planned surprise removal has happened.
  bool device_dead() const { return dead_; }

  const PoolConfig& config() const { return cfg_; }
  const Directory& directory(std::uint32_t shared_dev) const {
    return *dirs_[shared_dev];
  }
  /// Lifetime protocol totals, merged over the owning shards.
  PoolCounters counters() const;
  HostCounters host_counters(std::uint32_t host) const;

 private:
  // One queued device-side message (host identified by the queue index).
  struct DeviceMsg {
    Cycle arrival = 0;
    Addr local_line = 0;      ///< Sub-channel-local line.
    Addr page = 0;            ///< Pool-global shared page id (shared only).
    std::uint64_t token = 0;  ///< Read slot; unused for writes.
    bool is_write = false;
    bool poisoned = false;    ///< Request poisoned crossing the fabric.
  };

  // A read in flight for one host.
  struct InflightRead {
    std::uint64_t token = 0;
    Cycle start = 0;
    bool busy = false;
  };

  // A DRAM read completion waiting for return-path credit.
  struct PendingResponse {
    Cycle ready = 0;
    std::uint32_t device = 0;  ///< Host-fabric device index.
    std::uint32_t slot = 0;
    bool poisoned = false;     ///< Request-side poison (token bit 63).
  };

  // A coherence transaction parked at a pooled device.
  struct CohTxn {
    bool live = false;
    bool recovery = false;   ///< Directory-recovery inval round: no parked
                             ///< access, no unlock (directory was reset).
    std::uint32_t sdev = 0;  ///< Pooled device (== fabric index on every host).
    Addr page = 0;           ///< Locked directory page (the requester's).
    std::uint64_t send_clean = 0;  ///< Target hosts not yet sent (clean inval).
    std::uint64_t send_dirty = 0;  ///< Ditto, dirty recall.
    std::uint32_t acks_pending = 0;
    std::uint32_t wb_sub = 0;  ///< Where a dirty recall writes its line back.
    Addr wb_line = 0;
    DeviceMsg parked;
    std::uint32_t park_host = 0;
    std::uint32_t park_sub = 0;  ///< Shared sub-channel of the parked access.
  };

  // An invalidation delivered to a host, waiting to be acked. Carries the
  // source device so the acking host shard never reads the pool-owned
  // transaction table.
  struct HostInval {
    Cycle arrival = 0;
    std::uint32_t txn = 0;
    std::uint32_t sdev = 0;
    bool dirty = false;
  };

  // An ack travelling back, delivered to the device side.
  struct DevAck {
    Cycle arrival = 0;
    std::uint32_t txn = 0;
    bool dirty = false;
  };

  // A recalled dirty line waiting for a DRAM write-queue slot.
  struct PendingWb {
    std::uint32_t sub = 0;
    Addr local_line = 0;
  };

  // Wire cookie for switched fabrics (direct fabrics deliver analytically).
  struct WireMsg {
    enum Kind : std::uint8_t { kDemand, kAck, kResp, kInval } kind = kDemand;
    bool is_write = false;  ///< kDemand.
    bool shared = false;    ///< kDemand: pooled vs private class.
    bool dirty = false;     ///< kAck / kInval.
    bool poisoned = false;  ///< kResp: request-side poison (token bit 63).
    std::uint32_t sub = 0;  ///< kDemand: class-local sub-channel.
    std::uint32_t txn = 0;  ///< kAck / kInval.
    std::uint32_t slot = 0; ///< kResp / kDemand(read).
    Addr line = 0;          ///< kDemand: sub-local line.
    Addr page = 0;          ///< kDemand: shared page id.
  };

  // ---- cross-shard mailbox messages (engine mode only) -----------------
  struct DemandMail {
    DeviceMsg msg;
    std::uint32_t sub = 0;  ///< Shared sub-channel.
  };
  struct AckMail {
    Cycle arrival = 0;
    std::uint32_t txn = 0;
    bool dirty = false;
  };
  struct CompMail {
    Cycle done = 0;
    std::uint32_t slot = 0;
    bool poisoned = false;
  };
  struct CreditMail {
    Cycle at = 0;
    std::uint32_t sub = 0;
  };
  struct InvalMail {
    Cycle arrival = 0;
    std::uint32_t txn = 0;
    std::uint32_t sdev = 0;
    bool dirty = false;
  };

  std::uint32_t shared_sub_of(std::uint32_t device, std::uint32_t sub_in_dev) const {
    return device * spd_ + sub_in_dev;
  }

  /// DRAM read tokens pack (request-poison, host, slot) so the pool shard
  /// never writes into a host-owned read-slot table at admission time.
  static std::uint64_t pack_token(bool poisoned, std::uint32_t host,
                                  std::uint64_t slot) {
    return (std::uint64_t{poisoned} << 63) | (std::uint64_t{host} << 32) | slot;
  }

  /// Whether `host`'s shard sees the planned surprise removal at `now`.
  /// Matches the sequential pump's visibility exactly: dead_ flips inside
  /// the pool pump at fail_at_, after the hosts stepped that cycle — so a
  /// host first observes the death at fail_at_ + 1. A pure function of
  /// config so host shards never read the pool-owned dead_ flag.
  bool host_sees_dead(Cycle now) const {
    return avail_on_ && fail_at_ != kNoCycle && now > fail_at_;
  }

  std::uint32_t alloc_slot(std::uint32_t host, std::uint64_t token, Cycle now);
  void finish_read(std::uint32_t host, std::uint32_t slot, Cycle arrival,
                   bool poisoned);
  std::uint32_t alloc_txn();
  std::uint32_t alloc_wire(std::uint32_t host, const WireMsg& msg);
  void deliver_inval(std::uint32_t target, std::uint32_t txn, std::uint32_t sdev,
                     bool dirty, Cycle arrival);
  void deliver_ack(std::uint32_t txn, bool dirty, Cycle arrival);
  void start_txn(const Directory::Decision& d, const DeviceMsg& msg,
                 std::uint32_t host, std::uint32_t shared_sub, Cycle now);
  void pump_txn_sends(std::uint32_t t, Cycle now);
  bool coherence_idle() const;

  /// Phase A: switched-fabric wire deliveries (no-op for direct heads).
  Cycle pump_wire_deliveries(Cycle now);
  /// Admit a shared demand into its sub-channel's DRAM (directly or as the
  /// completion of a parked transaction).
  void admit_shared(dram::Controller& ctrl, const DeviceMsg& msg,
                    std::uint32_t host, Cycle now);
  /// Phase F, shared half: ship pooled-device responses up `host`'s return
  /// path (engine: into the completion mailbox).
  Cycle ship_shared_responses(std::uint32_t host, Cycle now);

  // ---- device failure: surprise removal of a shared device (§13) ----
  /// Onset sweep + recovery-wave pump; returns a wake bound (fail_at
  /// pre-death, now + 1 while recovery transactions remain queued).
  Cycle pump_pool_failure(Cycle now);
  void pool_fail_onset(Cycle now);
  /// Poison-complete a read headed for (or stranded at) the dead device;
  /// absorb a write. `host` owns the message's read slot. The engine pays
  /// an extra unloaded response latency on the bounce (the host port's
  /// timeout synthesises the error response), which also keeps the bounce
  /// completion outside the quantum it was created in.
  void bounce_msg(std::uint32_t host, const DeviceMsg& msg, Cycle at);

  PoolConfig cfg_;
  std::uint32_t n_hosts_ = 0;
  std::uint32_t spd_ = 0;       ///< Sub-channels per device.
  std::uint32_t s_devs_ = 0;    ///< Pooled devices (fabric indices [0, S)).
  std::uint32_t p_devs_ = 0;    ///< Private devices per host ([S, S+P)).
  std::uint32_t s_subs_ = 0;    ///< s_devs_ * spd_.
  std::uint32_t p_subs_ = 0;    ///< p_devs_ * spd_.
  bool force_tick_ = false;
  bool engine_ = false;

  // Address decode: stage 1 per host (shared-window range decode), stage 2
  // per device class. Lookups are pure (no mutable state), so host shards
  // may translate concurrently.
  std::vector<placement::AddressMap> stage1_;
  placement::AddressMap shared_map_;   ///< kPage over pooled devices.
  placement::AddressMap private_map_;  ///< kLine over private devices.

  // Per host. A head's tx pipe belongs to the host shard, its rx pipes to
  // whichever side ships on them (pool for shared devices, host for
  // private) — CxlLink keeps fully independent tx/rx state.
  std::vector<std::unique_ptr<fabric::Fabric>> fab_;

  // DRAM: pooled controllers are global (pool shard), private ones per
  // host (host shard).
  std::vector<std::unique_ptr<dram::Controller>> shared_ctrls_;  ///< [s_subs_].
  std::vector<std::vector<std::unique_ptr<dram::Controller>>> priv_ctrls_;

  // Ingress: pooled subs keep one queue per host (merged at admission by
  // earliest arrival, host index breaking ties); private subs one queue.
  std::vector<std::vector<std::deque<DeviceMsg>>> shared_ingress_;  ///< [sub][host].
  std::vector<std::vector<std::deque<DeviceMsg>>> priv_ingress_;    ///< [host][sub].
  std::vector<Cycle> shared_wake_;               ///< Per pooled sub.
  std::vector<std::vector<Cycle>> priv_wake_;    ///< [host][sub].
  std::vector<std::vector<std::uint32_t>> tx_inflight_shared_;  ///< [sub][host].
  std::vector<std::vector<std::uint32_t>> tx_inflight_priv_;    ///< [host][sub].

  // Per-host read slots and return-path queues (host shard).
  std::vector<std::vector<InflightRead>> inflight_;     ///< [host][slot].
  std::vector<std::vector<std::uint32_t>> free_slots_;  ///< [host].
  std::vector<std::vector<PendingResponse>> pending_rx_;      ///< Shared class.
  std::vector<std::vector<PendingResponse>> pending_rx_priv_; ///< Private class.
  std::vector<std::vector<HostCompletion>> out_;
  std::vector<std::uint64_t> inflight_reads_;  ///< Per host (owner-written).

  // Coherence machinery (pool shard; host_invals_ belongs to the hosts).
  std::vector<std::unique_ptr<Directory>> dirs_;  ///< Per pooled device.
  std::vector<CohTxn> txns_;
  std::vector<std::uint32_t> free_txns_;
  std::vector<std::uint32_t> txns_per_dev_;
  std::uint32_t live_txns_ = 0;
  std::vector<std::vector<HostInval>> host_invals_;  ///< [host].
  std::vector<DevAck> dev_acks_;
  std::vector<PendingWb> pending_wbs_;

  // Switched-fabric cookie pools, per host.
  std::vector<std::vector<WireMsg>> wire_pool_;
  std::vector<std::vector<std::uint32_t>> free_wire_;
  std::uint64_t fabric_msgs_inflight_ = 0;

  // ---- engine mailboxes + flow-control credits -------------------------
  // Outboxes are appended by their owning shard during a quantum and
  // drained only at barriers, so they need no locking. Credits replace the
  // host's direct read of pooled ingress occupancy: each (host, sub) pair
  // starts with the ingress depth, a send consumes one, and the pool
  // returns it with a credit message stamped one unloaded response-path
  // control latency after the pop.
  std::vector<std::vector<DemandMail>> mail_demand_;   ///< [host] -> pool.
  std::vector<std::vector<AckMail>> mail_ack_;         ///< [host] -> pool.
  std::vector<std::vector<CompMail>> mail_comp_;       ///< pool -> [host].
  std::vector<std::vector<CreditMail>> mail_credit_;   ///< pool -> [host].
  std::vector<std::vector<InvalMail>> mail_inval_;     ///< pool -> [host].
  std::vector<std::vector<CreditMail>> pending_credits_;  ///< Delivered, maturing.
  std::vector<std::vector<std::uint32_t>> credits_;    ///< [host][shared sub].
  Cycle credit_lat_ = 1;     ///< Pop -> credit visible at the host.
  Cycle bounce_rx_lat_ = 1;  ///< Extra response latency on engine bounces.

  // Device-failure state (DESIGN.md §13). `dead_` flips only inside the
  // pool pump at the planned cycle — pump_pool_failure() returns fail_at_
  // as a wake bound until then — so both scheduler modes observe the flip
  // at the same cycle and every live query of it stays mode-invariant.
  // Host shards use host_sees_dead() instead of reading dead_.
  bool avail_on_ = false;       ///< fault_plan.device_failure(), cached.
  bool dead_ = false;           ///< The shared device is gone.
  std::uint32_t fail_dev_ = 0;  ///< Shared-device (== fabric) index.
  Cycle fail_at_ = kNoCycle;
  Cycle bounce_cycles_ = 1;  ///< Unloaded round trip: refused-read latency.
  /// Directory-recovery backlog: (page, sharer mask) waves bounded by the
  /// per-device transaction table.
  std::deque<std::pair<Addr, std::uint64_t>> recovery_q_;

  // Counters, split by owning shard and merged at exposure. avail_ and
  // ctr_ belong to the pool shard; the *_host_ / host-indexed pieces to
  // their host shard.
  ras::AvailCounters avail_;                      ///< Pool-shard half.
  std::vector<ras::AvailCounters> avail_host_;    ///< Host-local refusals.
  PoolCounters ctr_;  ///< Pool shard (private_* fields unused — see below).
  struct HostSharedCtr {  ///< Pool-shard writes, per requesting host.
    std::uint64_t reads = 0, writes = 0, shared = 0;
  };
  struct HostPrivCtr {  ///< Host-shard writes.
    std::uint64_t reads = 0, writes = 0;
  };
  struct HostAckCtr {  ///< Host-shard writes.
    std::uint64_t invals_received = 0, acks_sent = 0;
  };
  std::vector<HostSharedCtr> host_shared_ctr_;
  std::vector<HostPrivCtr> host_priv_ctr_;
  std::vector<HostAckCtr> host_ack_ctr_;
};

}  // namespace coaxial::pool
