#include "pool/directory.hpp"

#include <cassert>
#include <stdexcept>

namespace coaxial::pool {

Directory::Directory(std::uint32_t capacity, std::uint32_t n_hosts)
    : capacity_(capacity), n_hosts_(n_hosts) {
  if (capacity == 0) throw std::invalid_argument("pool::Directory: capacity == 0");
  if (n_hosts == 0 || n_hosts > 64) {
    throw std::invalid_argument("pool::Directory: n_hosts must be in [1, 64]");
  }
  entries_.resize(capacity);
  free_.reserve(capacity);
  // Popping from the back hands out slot 0 first (cosmetic but stable).
  for (std::uint32_t i = capacity; i > 0; --i) free_.push_back(i - 1);
  index_.reserve(capacity * 2);
}

const Directory::Entry* Directory::find(Addr page) const {
  const auto it = index_.find(page);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

Directory::Decision Directory::access(Addr page, std::uint32_t host, bool is_write) {
  assert(host < n_hosts_);
  Decision d;
  const std::uint64_t bit = std::uint64_t{1} << host;
  const auto it = index_.find(page);

  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    if (e.locked) {
      d.blocked = true;  // Same-page transaction in flight: retry at head.
      return d;
    }
    e.last_use = ++use_seq_;
    if (!is_write) {
      if (e.state == PageState::kModified && e.owner != host) {
        // Remote read of a modified page: recall the dirty copy, downgrade
        // to shared with both the old owner and the reader as sharers.
        d.needs_txn = true;
        d.dirty_mask = std::uint64_t{1} << e.owner;
        e.state = PageState::kShared;
        e.sharers = (std::uint64_t{1} << e.owner) | bit;
        e.locked = true;
        return d;
      }
      e.sharers |= bit;  // S read, or the owner re-reading its own M page.
      return d;
    }
    // Write path.
    if (e.state == PageState::kModified) {
      if (e.owner == host) return d;  // Already exclusive.
      // Ping-pong: ownership hops between writers, dirty data in tow.
      d.needs_txn = true;
      d.dirty_mask = std::uint64_t{1} << e.owner;
      d.pingpong = true;
      e.owner = host;
      e.sharers = bit;
      e.locked = true;
      return d;
    }
    const std::uint64_t others = e.sharers & ~bit;
    if (others == 0) {
      // Sole sharer upgrades in place — no traffic, like an E->M or a
      // directory-granted silent upgrade.
      d.upgrade_silent = true;
      e.state = PageState::kModified;
      e.owner = host;
      e.sharers = bit;
      return d;
    }
    d.needs_txn = true;
    d.clean_mask = others;
    e.state = PageState::kModified;
    e.owner = host;
    e.sharers = bit;
    e.locked = true;
    return d;
  }

  // Page absent: insert, evicting the LRU unlocked entry when full. The
  // victim's recall rides the same transaction as the triggering access.
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    std::uint32_t victim = capacity_;
    std::uint64_t best = ~std::uint64_t{0};
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      const Entry& e = entries_[i];
      if (!e.valid || e.locked) continue;
      if (e.last_use < best) {
        best = e.last_use;
        victim = i;
      }
    }
    if (victim == capacity_) {
      d.blocked = true;  // Every entry mid-transaction: retry at head.
      return d;
    }
    Entry& v = entries_[victim];
    d.evicted = true;
    d.evicted_page = v.page;
    if (v.state == PageState::kModified) {
      d.dirty_mask = std::uint64_t{1} << v.owner;
    } else {
      d.clean_mask = v.sharers;
    }
    d.needs_txn = (d.dirty_mask | d.clean_mask) != 0;
    ++evictions_;
    index_.erase(v.page);
    --occupancy_;
    slot = victim;
  }

  Entry& e = entries_[slot];
  e.page = page;
  e.state = is_write ? PageState::kModified : PageState::kShared;
  e.sharers = bit;
  e.owner = host;
  e.last_use = ++use_seq_;
  e.valid = true;
  e.locked = d.needs_txn;  // Victim recall must finish before DRAM admission.
  index_.emplace(page, slot);
  ++occupancy_;
  ++inserts_;
  return d;
}

std::vector<Directory::Entry> Directory::fail_reset() {
  std::vector<Entry> snap;
  snap.reserve(occupancy_);
  for (const Entry& e : entries_) {
    if (e.valid) snap.push_back(e);
  }
  for (Entry& e : entries_) e = Entry{};
  index_.clear();
  free_.clear();
  for (std::uint32_t i = capacity_; i > 0; --i) free_.push_back(i - 1);
  occupancy_ = 0;
  return snap;
}

void Directory::unlock(Addr page) {
  const auto it = index_.find(page);
  assert(it != index_.end() && entries_[it->second].locked);
  if (it != index_.end()) entries_[it->second].locked = false;
}

}  // namespace coaxial::pool
