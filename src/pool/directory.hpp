// Per-pooled-device coherence directory (DESIGN.md §12).
//
// Tracks, at page granularity, which hosts cache each shared page and in
// what state — a MESI-style sharer bitmask plus a single owner for modified
// pages. The directory is the device-side serialisation point: every access
// admitted from a host's ingress queue is presented here first, and the
// decision says whether the access may proceed to DRAM immediately or must
// first complete a coherence transaction (back-invalidations / dirty
// recalls) whose messages PooledMemory puts on the real fabric.
//
// The structure is bounded (directory_entries); inserting into a full set
// evicts the least-recently-used unlocked entry and recalls its page from
// every sharer — absence therefore means "cached nowhere", which keeps the
// decode precise. All mutations happen synchronously inside access(), at
// deterministic admission cycles, so both scheduler modes agree
// bit-for-bit.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace coaxial::pool {

enum class PageState : std::uint8_t { kShared, kModified };

class Directory {
 public:
  Directory(std::uint32_t capacity, std::uint32_t n_hosts);

  struct Entry {
    Addr page = 0;
    PageState state = PageState::kShared;
    std::uint64_t sharers = 0;   ///< Bitmask over hosts (<= 64).
    std::uint32_t owner = 0;     ///< Valid when state == kModified.
    std::uint64_t last_use = 0;  ///< Admission sequence, for LRU eviction.
    bool valid = false;
    bool locked = false;  ///< A coherence transaction is in flight.
  };

  /// Outcome of presenting one admitted access.
  struct Decision {
    bool blocked = false;    ///< Entry locked / no evictable victim: retry.
    bool needs_txn = false;  ///< Invalidation round must complete first.
    std::uint64_t clean_mask = 0;  ///< Hosts to invalidate (no data back).
    std::uint64_t dirty_mask = 0;  ///< Hosts to recall (modified data back).
    bool evicted = false;    ///< A victim entry was recalled to make room.
    Addr evicted_page = 0;
    bool upgrade_silent = false;   ///< S->M with no other sharer.
    bool pingpong = false;         ///< M ownership handoff.
  };

  /// Present an access from `host`. On needs_txn the entry has already
  /// transitioned to its post-transaction state and is locked; call
  /// unlock(page) once every invalidation in the masks has been acked.
  /// A demand invalidation and an eviction recall are mutually exclusive:
  /// the former needs a present entry, the latter an absent one.
  Decision access(Addr page, std::uint32_t host, bool is_write);

  void unlock(Addr page);

  /// Surprise-removal teardown (DESIGN.md §13): returns every valid entry
  /// in slot order (deterministic), then resets the directory to empty —
  /// absence still means "cached nowhere", which becomes true again once
  /// the recovery invalidations built from the snapshot have landed.
  /// Locked entries are included; their in-flight transactions are the
  /// caller's to retire (it must not unlock() them here afterwards).
  std::vector<Entry> fail_reset();

  const Entry* find(Addr page) const;
  std::uint32_t occupancy() const { return occupancy_; }
  std::uint32_t capacity() const { return capacity_; }
  std::uint64_t inserts() const { return inserts_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  std::uint32_t capacity_;
  std::uint32_t n_hosts_;
  std::uint32_t occupancy_ = 0;
  std::uint64_t use_seq_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t evictions_ = 0;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<Addr, std::uint32_t> index_;
};

}  // namespace coaxial::pool
