// Multi-host pooled-memory configuration (DESIGN.md §12).
//
// A pooled deployment gives every host slice the same address layout:
//
//   * a private HDM range [0, private_pages * page_lines) backed by that
//     host's own Type-3 devices — never shared, never tracked;
//   * a shared pooled window at kPoolSharedBaseLine, backed by pooled
//     devices every host reaches through its own fabric head. Shared pages
//     are tracked by a per-device coherence directory (pool::Directory).
//
// Stage 1 of the decode reuses placement::AddressMap::tiered() — the shared
// window is declared as an HDM range, so "tier 0" means the pooled window
// (compacted to a pool-global line space identical across hosts) and
// "tier 1" means the host's private capacity. Each host owns its own map
// instance, mirroring per-host HDM decoder programming.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "common/validate.hpp"
#include "dram/timing.hpp"
#include "fabric/topology.hpp"
#include "link/lane_config.hpp"
#include "ras/fault_plan.hpp"

namespace coaxial::pool {

/// Host-local line index where the shared pooled window is decoded. High
/// enough that no private footprint (private_pages * page_lines) reaches
/// it; page-aligned for every page_lines used in practice.
inline constexpr Addr kPoolSharedBaseLine = Addr{1} << 40;

/// Lifetime totals kept by PooledMemory, sampled by the pool/* probes.
struct PoolCounters {
  std::uint64_t shared_reads = 0;    ///< Admitted into pooled-device DRAM.
  std::uint64_t shared_writes = 0;
  std::uint64_t private_reads = 0;   ///< Admitted into private-device DRAM.
  std::uint64_t private_writes = 0;

  std::uint64_t dir_inserts = 0;
  std::uint64_t dir_evictions = 0;       ///< Capacity victims recalled.
  std::uint64_t txns = 0;                ///< Coherence transactions started.
  std::uint64_t invals_sent = 0;         ///< Back-invalidations put on a wire.
  std::uint64_t invals_acked = 0;        ///< Acks received back at the device.
  std::uint64_t recalls_dirty = 0;       ///< Targets recalled from M (data back).
  std::uint64_t recall_writebacks = 0;   ///< Recall data written into DRAM.
  std::uint64_t upgrades_silent = 0;     ///< S->M with no other sharer.
  std::uint64_t pingpong_transitions = 0;///< M ownership handoffs (write on remote M).
};

struct PoolConfig {
  std::string name = "pooled";

  std::uint32_t n_hosts = 0;  ///< 0 disables pooling (RunRequest dispatch).

  // Per-host private backing and the shared pool, in devices.
  std::uint32_t private_devices = 1;  ///< Per host.
  std::uint32_t shared_devices = 2;   ///< Pooled, reachable from every host.
  std::uint32_t ddr_per_device = 1;   ///< 2 subchannels per DDR channel.

  // Address-space sizing (4 KiB pages when page_lines == 64).
  std::uint64_t private_pages = 1ull << 16;  ///< 256 MiB per host.
  std::uint64_t shared_pages = 1ull << 14;   ///< 64 MiB pooled window.
  std::uint32_t page_lines = 64;

  // Fabric shape replicated per host head (each host owns its own fabric
  // over shared_devices + private_devices endpoints; shared devices are
  // multi-headed). Counts of 0 resolve to the per-host device total.
  fabric::TopologyKind fabric_kind = fabric::TopologyKind::kDirect;
  std::uint32_t host_links = 0;          ///< Switched fabrics only.
  double switch_port_ns = 25.0;
  double cxl_port_ns = 12.5;
  bool asym_lanes = false;

  dram::Timing dram_timing;
  dram::Geometry dram_geometry;

  // Directory sizing (per pooled device).
  std::uint32_t directory_entries = 4096;
  std::uint32_t directory_max_txns = 32;  ///< Concurrent coherence txns.

  // Host-slice engine: catalog workload name and the per-host knobs that
  // turn its private-region stream into pooled traffic.
  std::string workload = "pool-pingpong";
  std::uint32_t host_window = 16;  ///< Outstanding reads per host.
  double share_fraction = 0.5;     ///< P(memory op redirected to the pool).
  /// Per-host override of share_fraction (empty => uniform). Lets a bench
  /// pin a victim tenant at 0.0 next to a noisy sharer.
  std::vector<double> share_fraction_per_host;
  std::uint64_t shared_hot_pages = 8;  ///< Contended subset of the window.
  double shared_hot_prob = 0.8;        ///< P(pool access hits the hot subset).

  /// Sharded-pump lookahead declaration (DESIGN.md §14). The quantum of the
  /// parallel engine is *derived* from the fabric's true minimum cross-shard
  /// message latency; this knob lets a config declare what it believes that
  /// minimum is, and construction rejects the config when the declaration
  /// disagrees with the fabric — a declaration below the true latency would
  /// silently waste lookahead, one above it would break the delivery
  /// guarantee the byte-identical contract rests on. 0 = derive silently.
  Cycle shard_min_latency_cycles = 0;

  /// Fault injection (DESIGN.md §§11, 13). CRC noise arms every host head's
  /// fabric; a device-failure episode targets a *shared* device by index.
  /// Pooled deployments model surprise removal only — the fabric manager
  /// tears the device down and recovers the directory; graceful
  /// monitor-driven evacuation is a single-host TieredMemory feature.
  ras::FaultPlan fault_plan;

  bool enabled() const { return n_hosts > 0; }

  double host_share_fraction(std::uint32_t host) const {
    return host < share_fraction_per_host.size() ? share_fraction_per_host[host]
                                                 : share_fraction;
  }

  std::uint32_t subchannels_per_device() const { return ddr_per_device * 2; }

  void validate() const {
    if (!enabled()) return;
    const char* owner = "pool::PoolConfig";
    validate::require_in_range(owner, "n_hosts", n_hosts, 1u, 64u);
    validate::require_nonzero(owner, "private_devices", private_devices);
    validate::require_nonzero(owner, "shared_devices", shared_devices);
    validate::require_nonzero(owner, "ddr_per_device", ddr_per_device);
    validate::require_nonzero(owner, "private_pages", private_pages);
    validate::require_nonzero(owner, "shared_pages", shared_pages);
    validate::require_nonzero(owner, "page_lines", page_lines);
    validate::require_nonzero(owner, "directory_entries", directory_entries);
    validate::require_nonzero(owner, "directory_max_txns", directory_max_txns);
    validate::require_nonzero(owner, "host_window", host_window);
    validate::require_in_range(owner, "share_fraction", share_fraction, 0.0, 1.0);
    for (double f : share_fraction_per_host) {
      validate::require_in_range(owner, "share_fraction_per_host[]", f, 0.0, 1.0);
    }
    validate::require_in_range(owner, "shared_hot_prob", shared_hot_prob, 0.0, 1.0);
    if (shared_hot_pages > shared_pages) {
      validate::fail(owner, "shared_hot_pages", "must fit the shared window",
                     std::to_string(shared_hot_pages) + " > " +
                         std::to_string(shared_pages));
    }
    if (private_pages * page_lines >= kPoolSharedBaseLine) {
      validate::fail(owner, "private_pages",
                     "private footprint must stay below the shared window base",
                     std::to_string(private_pages));
    }
    if (workload.empty()) {
      validate::fail(owner, "workload", "must name a catalog workload", "\"\"");
    }
    fault_plan.validate();
    if (fault_plan.device_failure()) {
      fault_plan.validate_devices(shared_devices);
      if (fault_plan.fail_mode == ras::FailureMode::kFailing) {
        validate::fail(owner, "fault_plan.fail_mode",
                       "pooled deployments support surprise removal only "
                       "(graceful evacuation is a single-host tiering feature)",
                       "kFailing");
      }
    }
  }
};

}  // namespace coaxial::pool
