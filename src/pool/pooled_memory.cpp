#include "pool/pooled_memory.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "link/lane_config.hpp"

namespace coaxial::pool {

namespace {

/// Per (sub-channel, host) ingress bound, mirroring CxlMemory's device
/// ingress depth.
constexpr std::uint32_t kIngressDepth = 64;

std::uint32_t popcount64(std::uint64_t v) {
  std::uint32_t n = 0;
  while (v != 0) {
    v &= v - 1;
    ++n;
  }
  return n;
}

placement::TierConfig shared_window_decode(const PoolConfig& cfg) {
  placement::TierConfig tc;
  tc.enabled = true;
  tc.policy = placement::PolicyKind::kStaticInterleave;
  tc.page_lines = cfg.page_lines;
  tc.fast_capacity_pages = cfg.shared_pages;
  tc.hdm_fast_ranges = {
      {kPoolSharedBaseLine, cfg.shared_pages * cfg.page_lines}};
  return tc;
}

fabric::FabricConfig head_fabric(const PoolConfig& cfg) {
  fabric::FabricConfig fc;
  fc.kind = cfg.fabric_kind;
  fc.devices = cfg.shared_devices + cfg.private_devices;
  // Direct fabrics pair one root port per device; switched heads default to
  // two root ports in front of the switch (the coaxial_switched shape).
  fc.host_links = cfg.host_links != 0
                      ? cfg.host_links
                      : (fc.switched() ? 2u : 0u);
  fc.switch_port_ns = cfg.switch_port_ns;
  return fc;
}

}  // namespace

PooledMemory::PooledMemory(const PoolConfig& cfg, obs::Scope scope)
    : cfg_(cfg),
      n_hosts_(cfg.n_hosts),
      spd_(cfg.subchannels_per_device()),
      s_devs_(cfg.shared_devices),
      p_devs_(cfg.private_devices),
      s_subs_(cfg.shared_devices * cfg.subchannels_per_device()),
      p_subs_(cfg.private_devices * cfg.subchannels_per_device()),
      shared_map_(placement::AddressMap::passthrough(
          fabric::Interleave::kPage, cfg.shared_devices,
          cfg.subchannels_per_device(), cfg.page_lines, 1ull << 24)),
      private_map_(placement::AddressMap::passthrough(
          fabric::Interleave::kLine, cfg.private_devices,
          cfg.subchannels_per_device(), cfg.page_lines, 1ull << 24)) {
  cfg_.validate();
  if (!cfg_.enabled()) {
    throw std::invalid_argument("pool::PooledMemory: n_hosts == 0");
  }
  // Stage-2 decodes may never reach past their device class.
  shared_map_.set_device_bound(s_devs_);
  private_map_.set_device_bound(p_devs_);

  // Stage 1: every host programs the same HDM layout, but owns its own
  // decoder instance (per-host map state, like per-host HDM registers).
  const placement::TierConfig tc = shared_window_decode(cfg_);
  stage1_.reserve(n_hosts_);
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    stage1_.push_back(placement::AddressMap::tiered(tc));
  }

  const fabric::FabricConfig fc = head_fabric(cfg_);
  const link::LaneConfig lanes = cfg_.asym_lanes
                                     ? link::LaneConfig::x8_asym(cfg_.cxl_port_ns)
                                     : link::LaneConfig::x8(cfg_.cxl_port_ns);
  fab_.reserve(n_hosts_);
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    fab_.push_back(std::make_unique<fabric::Fabric>(
        fc, s_devs_ + p_devs_, lanes, scope.sub("host/" + obs::idx(h))));
  }

  shared_ctrls_.reserve(s_subs_);
  for (std::uint32_t s = 0; s < s_subs_; ++s) {
    shared_ctrls_.push_back(std::make_unique<dram::Controller>(
        cfg_.dram_timing, cfg_.dram_geometry, 64, 64,
        scope.sub("pooled/dram/ctrl" + obs::idx(s))));
  }
  priv_ctrls_.resize(n_hosts_);
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    priv_ctrls_[h].reserve(p_subs_);
    for (std::uint32_t s = 0; s < p_subs_; ++s) {
      priv_ctrls_[h].push_back(std::make_unique<dram::Controller>(
          cfg_.dram_timing, cfg_.dram_geometry, 64, 64,
          scope.sub("host/" + obs::idx(h) + "/dram/ctrl" + obs::idx(s))));
    }
  }

  dirs_.reserve(s_devs_);
  for (std::uint32_t d = 0; d < s_devs_; ++d) {
    dirs_.push_back(std::make_unique<Directory>(cfg_.directory_entries, n_hosts_));
  }

  // Fault injection (DESIGN.md §§11, 13): CRC noise arms every host head's
  // fabric; a planned surprise removal targets one shared device. The
  // refused-read bounce costs one unloaded round trip — the host port
  // discovers the dead link and synthesises the error response.
  if (cfg_.fault_plan.enabled()) {
    for (auto& f : fab_) f->arm_faults(cfg_.fault_plan);
  }
  avail_on_ = cfg_.fault_plan.device_failure();
  if (avail_on_) {
    fail_dev_ = cfg_.fault_plan.fail_device;
    fail_at_ = cfg_.fault_plan.fail_at_cycle;
    bounce_cycles_ = fab_[0]->unloaded_tx_cycles(link::kReadRequestBytes) +
                     fab_[0]->unloaded_rx_cycles(link::kReadResponseBytes);
  }

  shared_ingress_.assign(s_subs_, std::vector<std::deque<DeviceMsg>>(n_hosts_));
  priv_ingress_.assign(n_hosts_, std::vector<std::deque<DeviceMsg>>(p_subs_));
  shared_wake_.assign(s_subs_, 0);
  priv_wake_.assign(n_hosts_, std::vector<Cycle>(p_subs_, 0));
  tx_inflight_shared_.assign(s_subs_, std::vector<std::uint32_t>(n_hosts_, 0));
  tx_inflight_priv_.assign(n_hosts_, std::vector<std::uint32_t>(p_subs_, 0));

  inflight_.resize(n_hosts_);
  free_slots_.resize(n_hosts_);
  pending_rx_.resize(n_hosts_);
  out_.resize(n_hosts_);
  host_invals_.resize(n_hosts_);
  wire_pool_.resize(n_hosts_);
  free_wire_.resize(n_hosts_);
  txns_per_dev_.assign(s_devs_, 0);
  host_ctr_.resize(n_hosts_);
}

std::uint32_t PooledMemory::alloc_slot(std::uint32_t host, std::uint64_t token,
                                       Cycle now) {
  auto& fl = inflight_[host];
  auto& free = free_slots_[host];
  std::uint32_t slot;
  if (!free.empty()) {
    slot = free.back();
    free.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(fl.size());
    fl.emplace_back();
  }
  fl[slot] = {token, now, true, false};
  ++inflight_reads_;
  return slot;
}

void PooledMemory::finish_read(std::uint32_t host, std::uint32_t slot,
                               Cycle arrival, bool wire_poisoned) {
  InflightRead& fl = inflight_[host][slot];
  assert(fl.busy);
  out_[host].push_back({fl.token, arrival, fl.poisoned || wire_poisoned});
  fl.busy = false;
  free_slots_[host].push_back(slot);
  --inflight_reads_;
}

std::uint32_t PooledMemory::alloc_txn() {
  if (!free_txns_.empty()) {
    const std::uint32_t t = free_txns_.back();
    free_txns_.pop_back();
    return t;
  }
  txns_.emplace_back();
  return static_cast<std::uint32_t>(txns_.size() - 1);
}

std::uint32_t PooledMemory::alloc_wire(std::uint32_t host, const WireMsg& msg) {
  auto& pool = wire_pool_[host];
  auto& free = free_wire_[host];
  std::uint32_t m;
  if (!free.empty()) {
    m = free.back();
    free.pop_back();
  } else {
    m = static_cast<std::uint32_t>(pool.size());
    pool.emplace_back();
  }
  pool[m] = msg;
  return m;
}

bool PooledMemory::can_accept(std::uint32_t host, Addr line, bool is_write,
                              Cycle now) const {
  (void)is_write;
  const placement::Translation t = stage1_[host].translate(line);
  if (t.tier == 0) {
    const fabric::Router::Route r = shared_map_.route(t.local_line);
    // A dead device is a sink: accept so access() can refuse the
    // transaction with an immediate poison bounce instead of wedging the
    // issuing host behind a credit that will never return.
    if (dead_ && r.device == fail_dev_) return true;
    if (!fab_[host]->can_send_tx(r.device, now)) return false;
    return shared_ingress_[r.sub][host].size() +
               tx_inflight_shared_[r.sub][host] <
           kIngressDepth;
  }
  const fabric::Router::Route r = private_map_.route(t.local_line);
  if (!fab_[host]->can_send_tx(s_devs_ + r.device, now)) return false;
  return priv_ingress_[host][r.sub].size() + tx_inflight_priv_[host][r.sub] <
         kIngressDepth;
}

void PooledMemory::access(std::uint32_t host, Addr line, bool is_write, Cycle now,
                          std::uint64_t token) {
  const placement::Translation t = stage1_[host].translate(line);
  const bool shared = t.tier == 0;
  const fabric::Router::Route r =
      shared ? shared_map_.route(t.local_line) : private_map_.route(t.local_line);
  const std::uint32_t fab_dev = shared ? r.device : s_devs_ + r.device;

  if (shared && dead_ && r.device == fail_dev_) {
    // Refused transaction to a retired range: reads synthesise a poison
    // response after an unloaded round trip, writes are lost.
    ++avail_.refused_txns;
    if (is_write) {
      ++avail_.lost_writes;
    } else {
      ++avail_.bounced_reads;
      out_[host].push_back({token, now + bounce_cycles_, true});
    }
    return;
  }

  DeviceMsg msg;
  msg.local_line = r.local;
  msg.is_write = is_write;
  msg.page = shared ? t.local_line / cfg_.page_lines : 0;
  std::uint32_t bytes = link::kWriteMessageBytes;
  if (!is_write) {
    msg.token = alloc_slot(host, token, now);
    bytes = link::kReadRequestBytes;
  }

  fabric::Fabric& fab = *fab_[host];
  if (fab.direct()) {
    const link::SendResult sr = fab.send_tx(fab_dev, bytes, now, 0);
    msg.arrival = sr.at;
    msg.poisoned = sr.poisoned;
    if (shared) {
      shared_ingress_[r.sub][host].push_back(msg);
      shared_wake_[r.sub] = std::min(shared_wake_[r.sub], msg.arrival);
    } else {
      priv_ingress_[host][r.sub].push_back(msg);
      priv_wake_[host][r.sub] = std::min(priv_wake_[host][r.sub], msg.arrival);
    }
  } else {
    WireMsg wm;
    wm.kind = WireMsg::kDemand;
    wm.is_write = is_write;
    wm.shared = shared;
    wm.sub = r.sub;
    wm.slot = static_cast<std::uint32_t>(msg.token);
    wm.line = r.local;
    wm.page = msg.page;
    fab.send_tx(fab_dev, bytes, now, alloc_wire(host, wm));
    ++fabric_msgs_inflight_;
    if (shared) {
      ++tx_inflight_shared_[r.sub][host];
    } else {
      ++tx_inflight_priv_[host][r.sub];
    }
  }
}

void PooledMemory::deliver_inval(std::uint32_t target, std::uint32_t txn,
                                 bool dirty, Cycle arrival) {
  host_invals_[target].push_back({arrival, txn, dirty});
}

void PooledMemory::deliver_ack(std::uint32_t txn, bool dirty, Cycle arrival) {
  dev_acks_.push_back({arrival, txn, dirty});
}

void PooledMemory::start_txn(const Directory::Decision& d, const DeviceMsg& msg,
                             std::uint32_t host, std::uint32_t shared_sub,
                             Cycle now) {
  const std::uint32_t t = alloc_txn();
  CohTxn& x = txns_[t];
  x = CohTxn{};
  x.live = true;
  x.sdev = shared_sub / spd_;
  x.page = msg.page;
  x.send_clean = d.clean_mask;
  x.send_dirty = d.dirty_mask;
  x.acks_pending = popcount64(d.clean_mask | d.dirty_mask);
  x.parked = msg;
  x.park_host = host;
  x.park_sub = shared_sub;
  if (d.dirty_mask != 0) {
    if (d.evicted) {
      // Victim recall: its line 0 stands in for the page's dirty data.
      const fabric::Router::Route wr =
          shared_map_.route(d.evicted_page * cfg_.page_lines);
      x.wb_sub = wr.sub;
      x.wb_line = wr.local;
    } else {
      x.wb_sub = shared_sub;
      x.wb_line = msg.local_line;
    }
  }
  ++ctr_.txns;
  ++txns_per_dev_[x.sdev];
  ++live_txns_;
  pump_txn_sends(t, now);
}

void PooledMemory::pump_txn_sends(std::uint32_t t, Cycle now) {
  CohTxn& x = txns_[t];
  for (std::uint32_t h = 0; h < n_hosts_ && (x.send_clean | x.send_dirty) != 0;
       ++h) {
    const std::uint64_t bit = std::uint64_t{1} << h;
    const bool dirty = (x.send_dirty & bit) != 0;
    if (!dirty && (x.send_clean & bit) == 0) continue;
    // The invalidation rides the target host's return path from the pooled
    // device — the same pipe as its read responses, so invalidation latency
    // is load- and topology-dependent.
    fabric::Fabric& fab = *fab_[h];
    if (!fab.can_send_rx(x.sdev, now)) continue;
    if (fab.direct()) {
      const link::SendResult sr =
          fab.send_rx(x.sdev, link::kReadRequestBytes, now, 0);
      deliver_inval(h, t, dirty, sr.at);
    } else {
      WireMsg wm;
      wm.kind = WireMsg::kInval;
      wm.dirty = dirty;
      wm.txn = t;
      fab.send_rx(x.sdev, link::kReadRequestBytes, now, alloc_wire(h, wm));
      ++fabric_msgs_inflight_;
    }
    ++ctr_.invals_sent;
    if (dirty) {
      x.send_dirty &= ~bit;
    } else {
      x.send_clean &= ~bit;
    }
  }
}

Cycle PooledMemory::tick(Cycle now) {
  Cycle wake = kNoCycle;
  if (avail_on_) wake = std::min(wake, pump_pool_failure(now));

  // -- Phase A: switched fabrics deliver; direct fabrics are analytic. ----
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    fabric::Fabric& fab = *fab_[h];
    if (fab.direct()) continue;
    wake = std::min(wake, fab.tick(now));
    for (const fabric::Delivery& d : fab.tx_deliveries()) {
      const std::uint32_t m = static_cast<std::uint32_t>(d.payload);
      const WireMsg wm = wire_pool_[h][m];
      free_wire_[h].push_back(m);
      --fabric_msgs_inflight_;
      if (wm.kind == WireMsg::kDemand) {
        DeviceMsg msg;
        msg.arrival = d.arrival;
        msg.local_line = wm.line;
        msg.page = wm.page;
        msg.token = wm.slot;
        msg.is_write = wm.is_write;
        msg.poisoned = d.poisoned;
        if (wm.shared && dead_ && wm.sub / spd_ == fail_dev_) {
          // In flight when the device died: bounce at delivery.
          --tx_inflight_shared_[wm.sub][h];
          bounce_msg(h, msg, std::max(d.arrival, now));
        } else if (wm.shared) {
          shared_ingress_[wm.sub][h].push_back(msg);
          shared_wake_[wm.sub] = std::min(shared_wake_[wm.sub], d.arrival);
          --tx_inflight_shared_[wm.sub][h];
        } else {
          priv_ingress_[h][wm.sub].push_back(msg);
          priv_wake_[h][wm.sub] = std::min(priv_wake_[h][wm.sub], d.arrival);
          --tx_inflight_priv_[h][wm.sub];
        }
      } else {
        assert(wm.kind == WireMsg::kAck);
        deliver_ack(wm.txn, wm.dirty, d.arrival);
      }
    }
    fab.tx_deliveries().clear();
    for (const fabric::Delivery& d : fab.rx_deliveries()) {
      const std::uint32_t m = static_cast<std::uint32_t>(d.payload);
      const WireMsg wm = wire_pool_[h][m];
      free_wire_[h].push_back(m);
      --fabric_msgs_inflight_;
      if (wm.kind == WireMsg::kResp) {
        finish_read(h, wm.slot, d.arrival, d.poisoned);
      } else {
        assert(wm.kind == WireMsg::kInval);
        deliver_inval(h, wm.txn, wm.dirty, d.arrival);
      }
    }
    fab.rx_deliveries().clear();
  }

  // -- Phase B: acks arriving at pooled devices retire invalidations. -----
  {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < dev_acks_.size(); ++i) {
      const DevAck a = dev_acks_[i];
      if (a.arrival > now) {
        dev_acks_[kept++] = a;
        continue;
      }
      CohTxn& x = txns_[a.txn];
      assert(x.live && x.acks_pending > 0);
      --x.acks_pending;
      ++ctr_.invals_acked;
      if (a.dirty) {
        if (dead_ && x.sdev == fail_dev_) {
          // The recalled data's backing store died while the recall was in
          // flight: the dirty page is lost, not written back.
          ++avail_.lost_dirty_pages;
        } else {
          // The recalled line's data came back with the ack; it still has
          // to be written into device DRAM (drained in the sub-channel
          // pass).
          pending_wbs_.push_back({x.wb_sub, x.wb_line});
          shared_wake_[x.wb_sub] = std::min(shared_wake_[x.wb_sub], now);
        }
      }
    }
    dev_acks_.resize(kept);
  }

  // -- Phase C: transactions send remaining invals; completed ones admit
  //    their parked access (in transaction-id order, deterministically). --
  for (std::uint32_t t = 0; t < txns_.size(); ++t) {
    CohTxn& x = txns_[t];
    if (!x.live) continue;
    pump_txn_sends(t, now);
    if ((x.send_clean | x.send_dirty) != 0 || x.acks_pending != 0) continue;
    if (dead_ && x.sdev == fail_dev_) {
      // The device died under this transaction: its directory entry is
      // gone (fail_reset — no unlock) and the parked access has nowhere
      // to go. Recovery rounds park nothing.
      if (!x.recovery) bounce_msg(x.park_host, x.parked, now);
      x.live = false;
      --txns_per_dev_[x.sdev];
      --live_txns_;
      free_txns_.push_back(t);
      continue;
    }
    dram::Controller& ctrl = *shared_ctrls_[x.park_sub];
    if (!ctrl.can_accept(x.parked.is_write)) continue;
    const DeviceMsg& msg = x.parked;
    if (msg.is_write) {
      ctrl.enqueue(msg.local_line, true, now, 0);
      ++ctr_.shared_writes;
      ++host_ctr_[x.park_host].writes;
    } else {
      if (msg.poisoned) {
        inflight_[x.park_host][static_cast<std::uint32_t>(msg.token)].poisoned =
            true;
      }
      ctrl.enqueue(msg.local_line, false, now,
                   (std::uint64_t{x.park_host} << 32) | msg.token);
      ++ctr_.shared_reads;
      ++host_ctr_[x.park_host].reads;
    }
    ++host_ctr_[x.park_host].shared;
    shared_wake_[x.park_sub] = std::min(shared_wake_[x.park_sub], now);
    dirs_[x.sdev]->unlock(x.page);
    x.live = false;
    --txns_per_dev_[x.sdev];
    --live_txns_;
    free_txns_.push_back(t);
  }

  // -- Phase D: pooled sub-channels — recall writebacks, merged admission
  //    through the directory, DRAM tick, completions. ---------------------
  for (std::uint32_t sub = 0; sub < s_subs_; ++sub) {
    if (!force_tick_ && shared_wake_[sub] > now) {
      wake = std::min(wake, shared_wake_[sub]);
      continue;
    }
    dram::Controller& ctrl = *shared_ctrls_[sub];
    const std::uint32_t dev = sub / spd_;
    bool wb_waiting = false;
    {
      // Recall data takes priority over new admissions, FIFO per sub.
      std::size_t kept = 0;
      bool blocked = false;
      for (std::size_t i = 0; i < pending_wbs_.size(); ++i) {
        const PendingWb w = pending_wbs_[i];
        if (w.sub != sub || blocked || !ctrl.can_accept(true)) {
          blocked = blocked || (w.sub == sub);
          wb_waiting = wb_waiting || (w.sub == sub);
          pending_wbs_[kept++] = w;
          continue;
        }
        ctrl.enqueue(w.local_line, true, now, 0);
        ++ctr_.recall_writebacks;
      }
      pending_wbs_.resize(kept);
    }

    std::uint64_t skipped = 0;
    while (true) {
      // Earliest-arrival-first merge across the per-host queues; host index
      // breaks ties, so inter-host ordering is deterministic.
      std::uint32_t best = n_hosts_;
      Cycle best_at = kNoCycle;
      for (std::uint32_t h = 0; h < n_hosts_; ++h) {
        if ((skipped >> h) & 1) continue;
        const auto& q = shared_ingress_[sub][h];
        if (q.empty() || q.front().arrival > now) continue;
        if (q.front().arrival < best_at) {
          best_at = q.front().arrival;
          best = h;
        }
      }
      if (best == n_hosts_) break;
      auto& q = shared_ingress_[sub][best];
      const DeviceMsg msg = q.front();
      if (!ctrl.can_accept(msg.is_write)) break;
      // A decision that needs a transaction must be able to start one; gate
      // before access() because the directory transitions state eagerly.
      if (txns_per_dev_[dev] >= cfg_.directory_max_txns) break;
      const Directory::Decision dd = dirs_[dev]->access(msg.page, best, msg.is_write);
      if (dd.blocked) {
        skipped |= std::uint64_t{1} << best;  // Same-page txn in flight.
        continue;
      }
      if (dd.evicted) ++ctr_.dir_evictions;
      if (dd.upgrade_silent) ++ctr_.upgrades_silent;
      if (dd.pingpong) ++ctr_.pingpong_transitions;
      ctr_.recalls_dirty += popcount64(dd.dirty_mask);
      q.pop_front();
      if (dd.needs_txn) {
        start_txn(dd, msg, best, sub, now);
        continue;
      }
      if (msg.is_write) {
        ctrl.enqueue(msg.local_line, true, now, 0);
        ++ctr_.shared_writes;
        ++host_ctr_[best].writes;
      } else {
        if (msg.poisoned) {
          inflight_[best][static_cast<std::uint32_t>(msg.token)].poisoned = true;
        }
        ctrl.enqueue(msg.local_line, false, now,
                     (std::uint64_t{best} << 32) | msg.token);
        ++ctr_.shared_reads;
        ++host_ctr_[best].reads;
      }
      ++host_ctr_[best].shared;
    }

    Cycle sw = ctrl.tick(now);
    for (std::uint32_t h = 0; h < n_hosts_; ++h) {
      const auto& q = shared_ingress_[sub][h];
      if (q.empty()) continue;
      // Future head wakes at its arrival; an arrived-but-blocked head
      // (controller full, directory lock, txn-table gate) retries next
      // cycle — conservative but mode-invariant.
      sw = std::min(sw, q.front().arrival > now ? q.front().arrival : now + 1);
    }
    if (wb_waiting) sw = std::min(sw, now + 1);
    shared_wake_[sub] = sw;
    wake = std::min(wake, sw);

    auto& done = ctrl.completions();
    for (const auto& comp : done) {
      const std::uint32_t h = static_cast<std::uint32_t>(comp.token >> 32);
      pending_rx_[h].push_back(
          {comp.done, dev, static_cast<std::uint32_t>(comp.token & 0xffffffffu)});
    }
    done.clear();
  }

  // -- Phase E: private sub-channels (plain CxlMemory-style FIFO). --------
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    for (std::uint32_t sub = 0; sub < p_subs_; ++sub) {
      if (!force_tick_ && priv_wake_[h][sub] > now) {
        wake = std::min(wake, priv_wake_[h][sub]);
        continue;
      }
      dram::Controller& ctrl = *priv_ctrls_[h][sub];
      auto& q = priv_ingress_[h][sub];
      while (!q.empty() && q.front().arrival <= now &&
             ctrl.can_accept(q.front().is_write)) {
        const DeviceMsg& msg = q.front();
        if (msg.is_write) {
          ctrl.enqueue(msg.local_line, true, now, 0);
          ++ctr_.private_writes;
          ++host_ctr_[h].writes;
        } else {
          if (msg.poisoned) {
            inflight_[h][static_cast<std::uint32_t>(msg.token)].poisoned = true;
          }
          ctrl.enqueue(msg.local_line, false, now,
                       (std::uint64_t{h} << 32) | msg.token);
          ++ctr_.private_reads;
          ++host_ctr_[h].reads;
        }
        q.pop_front();
      }
      Cycle sw = ctrl.tick(now);
      if (!q.empty()) {
        sw = std::min(sw, q.front().arrival > now ? q.front().arrival : now + 1);
      }
      priv_wake_[h][sub] = sw;
      wake = std::min(wake, sw);

      auto& done = ctrl.completions();
      const std::uint32_t fab_dev = s_devs_ + sub / spd_;
      for (const auto& comp : done) {
        pending_rx_[h].push_back(
            {comp.done, fab_dev,
             static_cast<std::uint32_t>(comp.token & 0xffffffffu)});
      }
      done.clear();
    }
  }

  // -- Phase F: ship ready responses up each host's return path. ----------
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    fabric::Fabric& fab = *fab_[h];
    auto& pending = pending_rx_[h];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const PendingResponse p = pending[i];
      if (dead_ && p.device == fail_dev_) {
        // The data was read before the device died, but its return link is
        // gone: the host port times out and synthesises a poison response.
        ++avail_.bounced_reads;
        finish_read(h, p.slot, std::max(p.ready, now), true);
        continue;
      }
      if (p.ready > now || !fab.can_send_rx(p.device, now)) {
        pending[kept++] = p;
        continue;
      }
      if (fab.direct()) {
        const link::SendResult sr =
            fab.send_rx(p.device, link::kReadResponseBytes, now, 0);
        finish_read(h, p.slot, sr.at, sr.poisoned);
      } else {
        WireMsg wm;
        wm.kind = WireMsg::kResp;
        wm.slot = p.slot;
        fab.send_rx(p.device, link::kReadResponseBytes, now, alloc_wire(h, wm));
        ++fabric_msgs_inflight_;
      }
    }
    pending.resize(kept);
    for (const PendingResponse& p : pending) {
      const Cycle at = p.ready > now ? p.ready : fab.rx_credit_cycle(p.device, now);
      wake = std::min(wake, std::max(at, now + 1));
    }
  }

  // -- Phase G: hosts ack delivered invalidations on their request path. --
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    fabric::Fabric& fab = *fab_[h];
    auto& invals = host_invals_[h];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < invals.size(); ++i) {
      const HostInval iv = invals[i];
      const std::uint32_t sdev = txns_[iv.txn].sdev;
      if (iv.arrival > now || !fab.can_send_tx(sdev, now)) {
        invals[kept++] = iv;
        wake = std::min(wake,
                        std::max(iv.arrival > now ? iv.arrival : now + 1, now + 1));
        continue;
      }
      // A dirty recall ack carries the line back; a clean ack is control.
      const std::uint32_t bytes =
          iv.dirty ? link::kWriteMessageBytes : link::kReadRequestBytes;
      if (fab.direct()) {
        const link::SendResult sr = fab.send_tx(sdev, bytes, now, 0);
        deliver_ack(iv.txn, iv.dirty, sr.at);
      } else {
        WireMsg wm;
        wm.kind = WireMsg::kAck;
        wm.dirty = iv.dirty;
        wm.txn = iv.txn;
        fab.send_tx(sdev, bytes, now, alloc_wire(h, wm));
        ++fabric_msgs_inflight_;
      }
      ++host_ctr_[h].acks_sent;
      ++host_ctr_[h].invals_received;
    }
    invals.resize(kept);
  }

  // -- Wake assembly for the remaining coherence state. -------------------
  if (live_txns_ != 0 || !pending_wbs_.empty()) wake = std::min(wake, now + 1);
  for (const DevAck& a : dev_acks_) {
    wake = std::min(wake, std::max(a.arrival, now + 1));
  }
  return wake;
}

void PooledMemory::bounce_msg(std::uint32_t host, const DeviceMsg& msg,
                              Cycle at) {
  if (msg.is_write) {
    ++avail_.lost_writes;
  } else {
    ++avail_.bounced_reads;
    finish_read(host, static_cast<std::uint32_t>(msg.token), at, true);
  }
}

void PooledMemory::pool_fail_onset(Cycle now) {
  dead_ = true;
  ++avail_.devices_offlined;
  // Everything queued at the dead device's sub-channels bounces: reads
  // poison-complete exactly once, writes are lost. Reads already inside
  // its DRAM complete poisoned when their data would have returned (the
  // dead-device branch in the response phase routes around the fabric).
  for (std::uint32_t sub = fail_dev_ * spd_; sub < (fail_dev_ + 1) * spd_;
       ++sub) {
    for (std::uint32_t h = 0; h < n_hosts_; ++h) {
      for (const DeviceMsg& m : shared_ingress_[sub][h]) {
        bounce_msg(h, m, std::max(m.arrival, now));
      }
      shared_ingress_[sub][h].clear();
    }
  }
  // Recall data waiting for a write slot on the dead device is lost.
  {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending_wbs_.size(); ++i) {
      const PendingWb w = pending_wbs_[i];
      if (w.sub / spd_ == fail_dev_) {
        ++avail_.lost_dirty_pages;
        continue;
      }
      pending_wbs_[kept++] = w;
    }
    pending_wbs_.resize(kept);
  }
  // Directory teardown: every cached copy of a page the device backed must
  // be invalidated — the backing store is gone — and modified pages lose
  // their only durable home, so they count as lost dirty data. The
  // invalidations go out as recovery transactions in waves bounded by the
  // transaction table, through the ordinary send/ack machinery, so
  // invals_sent == invals_acked holds across the teardown.
  for (const Directory::Entry& e : dirs_[fail_dev_]->fail_reset()) {
    if (e.state == PageState::kModified) ++avail_.lost_dirty_pages;
    if (e.sharers != 0) recovery_q_.push_back({e.page, e.sharers});
  }
}

Cycle PooledMemory::pump_pool_failure(Cycle now) {
  if (!dead_) {
    if (now < fail_at_) return fail_at_;
    pool_fail_onset(now);
  }
  while (!recovery_q_.empty() &&
         txns_per_dev_[fail_dev_] < cfg_.directory_max_txns) {
    const auto [page, mask] = recovery_q_.front();
    recovery_q_.pop_front();
    const std::uint32_t t = alloc_txn();
    CohTxn& x = txns_[t];
    x = CohTxn{};
    x.live = true;
    x.recovery = true;
    x.sdev = fail_dev_;
    x.page = page;
    x.send_clean = mask;  // Always clean: the dirty data is already lost.
    x.acks_pending = popcount64(mask);
    avail_.recovery_invals += x.acks_pending;
    ++ctr_.txns;
    ++txns_per_dev_[fail_dev_];
    ++live_txns_;
    pump_txn_sends(t, now);
  }
  return recovery_q_.empty() ? kNoCycle : now + 1;
}

ras::RasCounters PooledMemory::ras_counters() const {
  ras::RasCounters sum;
  for (const auto& f : fab_) sum += f->ras_counters();
  return sum;
}

bool PooledMemory::coherence_idle() const {
  if (live_txns_ != 0 || !dev_acks_.empty() || !pending_wbs_.empty()) return false;
  for (const auto& iv : host_invals_) {
    if (!iv.empty()) return false;
  }
  return true;
}

bool PooledMemory::quiescent() const {
  if (inflight_reads_ != 0 || fabric_msgs_inflight_ != 0 || !coherence_idle()) {
    return false;
  }
  if (!recovery_q_.empty()) return false;
  for (const auto& per_host : shared_ingress_) {
    for (const auto& q : per_host) {
      if (!q.empty()) return false;
    }
  }
  for (const auto& per_sub : priv_ingress_) {
    for (const auto& q : per_sub) {
      if (!q.empty()) return false;
    }
  }
  for (const auto& p : pending_rx_) {
    if (!p.empty()) return false;
  }
  return true;
}

}  // namespace coaxial::pool
