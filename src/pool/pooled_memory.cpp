#include "pool/pooled_memory.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "link/lane_config.hpp"

namespace coaxial::pool {

namespace {

/// Per (sub-channel, host) ingress bound, mirroring CxlMemory's device
/// ingress depth. In engine mode the same bound is enforced with credits.
constexpr std::uint32_t kIngressDepth = 64;

std::uint32_t popcount64(std::uint64_t v) {
  std::uint32_t n = 0;
  while (v != 0) {
    v &= v - 1;
    ++n;
  }
  return n;
}

placement::TierConfig shared_window_decode(const PoolConfig& cfg) {
  placement::TierConfig tc;
  tc.enabled = true;
  tc.policy = placement::PolicyKind::kStaticInterleave;
  tc.page_lines = cfg.page_lines;
  tc.fast_capacity_pages = cfg.shared_pages;
  tc.hdm_fast_ranges = {
      {kPoolSharedBaseLine, cfg.shared_pages * cfg.page_lines}};
  return tc;
}

fabric::FabricConfig head_fabric(const PoolConfig& cfg) {
  fabric::FabricConfig fc;
  fc.kind = cfg.fabric_kind;
  fc.devices = cfg.shared_devices + cfg.private_devices;
  // Direct fabrics pair one root port per device; switched heads default to
  // two root ports in front of the switch (the coaxial_switched shape).
  fc.host_links = cfg.host_links != 0
                      ? cfg.host_links
                      : (fc.switched() ? 2u : 0u);
  fc.switch_port_ns = cfg.switch_port_ns;
  return fc;
}

}  // namespace

PooledMemory::PooledMemory(const PoolConfig& cfg, obs::Scope scope)
    : cfg_(cfg),
      n_hosts_(cfg.n_hosts),
      spd_(cfg.subchannels_per_device()),
      s_devs_(cfg.shared_devices),
      p_devs_(cfg.private_devices),
      s_subs_(cfg.shared_devices * cfg.subchannels_per_device()),
      p_subs_(cfg.private_devices * cfg.subchannels_per_device()),
      shared_map_(placement::AddressMap::passthrough(
          fabric::Interleave::kPage, cfg.shared_devices,
          cfg.subchannels_per_device(), cfg.page_lines, 1ull << 24)),
      private_map_(placement::AddressMap::passthrough(
          fabric::Interleave::kLine, cfg.private_devices,
          cfg.subchannels_per_device(), cfg.page_lines, 1ull << 24)) {
  cfg_.validate();
  if (!cfg_.enabled()) {
    throw std::invalid_argument("pool::PooledMemory: n_hosts == 0");
  }
  // Stage-2 decodes may never reach past their device class.
  shared_map_.set_device_bound(s_devs_);
  private_map_.set_device_bound(p_devs_);

  // Stage 1: every host programs the same HDM layout, but owns its own
  // decoder instance (per-host map state, like per-host HDM registers).
  const placement::TierConfig tc = shared_window_decode(cfg_);
  stage1_.reserve(n_hosts_);
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    stage1_.push_back(placement::AddressMap::tiered(tc));
  }

  const fabric::FabricConfig fc = head_fabric(cfg_);
  const link::LaneConfig lanes = cfg_.asym_lanes
                                     ? link::LaneConfig::x8_asym(cfg_.cxl_port_ns)
                                     : link::LaneConfig::x8(cfg_.cxl_port_ns);
  fab_.reserve(n_hosts_);
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    fab_.push_back(std::make_unique<fabric::Fabric>(
        fc, s_devs_ + p_devs_, lanes, scope.sub("host/" + obs::idx(h))));
  }

  shared_ctrls_.reserve(s_subs_);
  for (std::uint32_t s = 0; s < s_subs_; ++s) {
    shared_ctrls_.push_back(std::make_unique<dram::Controller>(
        cfg_.dram_timing, cfg_.dram_geometry, 64, 64,
        scope.sub("pooled/dram/ctrl" + obs::idx(s))));
  }
  priv_ctrls_.resize(n_hosts_);
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    priv_ctrls_[h].reserve(p_subs_);
    for (std::uint32_t s = 0; s < p_subs_; ++s) {
      priv_ctrls_[h].push_back(std::make_unique<dram::Controller>(
          cfg_.dram_timing, cfg_.dram_geometry, 64, 64,
          scope.sub("host/" + obs::idx(h) + "/dram/ctrl" + obs::idx(s))));
    }
  }

  dirs_.reserve(s_devs_);
  for (std::uint32_t d = 0; d < s_devs_; ++d) {
    dirs_.push_back(std::make_unique<Directory>(cfg_.directory_entries, n_hosts_));
  }

  // Fault injection (DESIGN.md §§11, 13): CRC noise arms every host head's
  // fabric; a planned surprise removal targets one shared device. The
  // refused-read bounce costs one unloaded round trip — the host port
  // discovers the dead link and synthesises the error response.
  if (cfg_.fault_plan.enabled()) {
    for (auto& f : fab_) f->arm_faults(cfg_.fault_plan);
  }
  avail_on_ = cfg_.fault_plan.device_failure();
  if (avail_on_) {
    fail_dev_ = cfg_.fault_plan.fail_device;
    fail_at_ = cfg_.fault_plan.fail_at_cycle;
    bounce_cycles_ = fab_[0]->unloaded_tx_cycles(link::kReadRequestBytes) +
                     fab_[0]->unloaded_rx_cycles(link::kReadResponseBytes);
  }
  // Engine timing constants (cheap; computed even when the engine is off).
  credit_lat_ = fab_[0]->unloaded_rx_cycles(link::kReadRequestBytes);
  bounce_rx_lat_ = fab_[0]->unloaded_rx_cycles(link::kReadResponseBytes);

  shared_ingress_.assign(s_subs_, std::vector<std::deque<DeviceMsg>>(n_hosts_));
  priv_ingress_.assign(n_hosts_, std::vector<std::deque<DeviceMsg>>(p_subs_));
  shared_wake_.assign(s_subs_, 0);
  priv_wake_.assign(n_hosts_, std::vector<Cycle>(p_subs_, 0));
  tx_inflight_shared_.assign(s_subs_, std::vector<std::uint32_t>(n_hosts_, 0));
  tx_inflight_priv_.assign(n_hosts_, std::vector<std::uint32_t>(p_subs_, 0));

  inflight_.resize(n_hosts_);
  free_slots_.resize(n_hosts_);
  pending_rx_.resize(n_hosts_);
  pending_rx_priv_.resize(n_hosts_);
  out_.resize(n_hosts_);
  inflight_reads_.assign(n_hosts_, 0);
  host_invals_.resize(n_hosts_);
  wire_pool_.resize(n_hosts_);
  free_wire_.resize(n_hosts_);
  txns_per_dev_.assign(s_devs_, 0);

  mail_demand_.resize(n_hosts_);
  mail_ack_.resize(n_hosts_);
  mail_comp_.resize(n_hosts_);
  mail_credit_.resize(n_hosts_);
  mail_inval_.resize(n_hosts_);
  pending_credits_.resize(n_hosts_);
  credits_.assign(n_hosts_, std::vector<std::uint32_t>(s_subs_, kIngressDepth));

  avail_host_.resize(n_hosts_);
  host_shared_ctr_.resize(n_hosts_);
  host_priv_ctr_.resize(n_hosts_);
  host_ack_ctr_.resize(n_hosts_);
}

Cycle PooledMemory::min_cross_shard_latency() const {
  Cycle q = kNoCycle;
  for (const auto& f : fab_) {
    q = std::min(q, f->unloaded_tx_cycles(link::kReadRequestBytes));
    // The response path's floor is also the control-message (inval/credit)
    // floor: rx latency is monotone in bytes, so the smallest rx message
    // bounds every rx message from below.
    q = std::min(q, f->unloaded_rx_cycles(link::kReadRequestBytes));
  }
  return std::max<Cycle>(q, 1);
}

void PooledMemory::set_engine(bool on) {
  if (on && !engine_capable()) {
    throw std::logic_error(
        "pool::PooledMemory: sharded engine requires a direct fabric");
  }
  engine_ = on;
}

std::uint32_t PooledMemory::alloc_slot(std::uint32_t host, std::uint64_t token,
                                       Cycle now) {
  auto& fl = inflight_[host];
  auto& free = free_slots_[host];
  std::uint32_t slot;
  if (!free.empty()) {
    slot = free.back();
    free.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(fl.size());
    fl.emplace_back();
  }
  fl[slot] = {token, now, true};
  ++inflight_reads_[host];
  return slot;
}

void PooledMemory::finish_read(std::uint32_t host, std::uint32_t slot,
                               Cycle arrival, bool poisoned) {
  InflightRead& fl = inflight_[host][slot];
  assert(fl.busy);
  out_[host].push_back({fl.token, arrival, poisoned});
  fl.busy = false;
  free_slots_[host].push_back(slot);
  --inflight_reads_[host];
}

std::uint32_t PooledMemory::alloc_txn() {
  if (!free_txns_.empty()) {
    const std::uint32_t t = free_txns_.back();
    free_txns_.pop_back();
    return t;
  }
  txns_.emplace_back();
  return static_cast<std::uint32_t>(txns_.size() - 1);
}

std::uint32_t PooledMemory::alloc_wire(std::uint32_t host, const WireMsg& msg) {
  auto& pool = wire_pool_[host];
  auto& free = free_wire_[host];
  std::uint32_t m;
  if (!free.empty()) {
    m = free.back();
    free.pop_back();
  } else {
    m = static_cast<std::uint32_t>(pool.size());
    pool.emplace_back();
  }
  pool[m] = msg;
  return m;
}

bool PooledMemory::can_accept(std::uint32_t host, Addr line, bool is_write,
                              Cycle now) const {
  (void)is_write;
  const placement::Translation t = stage1_[host].translate(line);
  if (t.tier == 0) {
    const fabric::Router::Route r = shared_map_.route(t.local_line);
    // A dead device is a sink: accept so access() can refuse the
    // transaction with an immediate poison bounce instead of wedging the
    // issuing host behind a credit that will never return. Hosts test
    // death with host_sees_dead() — identical to reading dead_ here (the
    // flip happens inside the pool pump after the hosts stepped fail_at_),
    // but free of any cross-shard read.
    if (host_sees_dead(now) && r.device == fail_dev_) return true;
    if (!fab_[host]->can_send_tx(r.device, now)) return false;
    if (engine_) return credits_[host][r.sub] > 0;
    return shared_ingress_[r.sub][host].size() +
               tx_inflight_shared_[r.sub][host] <
           kIngressDepth;
  }
  const fabric::Router::Route r = private_map_.route(t.local_line);
  if (!fab_[host]->can_send_tx(s_devs_ + r.device, now)) return false;
  return priv_ingress_[host][r.sub].size() + tx_inflight_priv_[host][r.sub] <
         kIngressDepth;
}

void PooledMemory::access(std::uint32_t host, Addr line, bool is_write, Cycle now,
                          std::uint64_t token) {
  const placement::Translation t = stage1_[host].translate(line);
  const bool shared = t.tier == 0;
  const fabric::Router::Route r =
      shared ? shared_map_.route(t.local_line) : private_map_.route(t.local_line);
  const std::uint32_t fab_dev = shared ? r.device : s_devs_ + r.device;

  if (shared && host_sees_dead(now) && r.device == fail_dev_) {
    // Refused transaction to a retired range: reads synthesise a poison
    // response after an unloaded round trip, writes are lost. Host-local
    // (no pool state touched), so the counters live in the host's half.
    ++avail_host_[host].refused_txns;
    if (is_write) {
      ++avail_host_[host].lost_writes;
    } else {
      ++avail_host_[host].bounced_reads;
      out_[host].push_back({token, now + bounce_cycles_, true});
    }
    return;
  }

  DeviceMsg msg;
  msg.local_line = r.local;
  msg.is_write = is_write;
  msg.page = shared ? t.local_line / cfg_.page_lines : 0;
  std::uint32_t bytes = link::kWriteMessageBytes;
  if (!is_write) {
    msg.token = alloc_slot(host, token, now);
    bytes = link::kReadRequestBytes;
  }

  fabric::Fabric& fab = *fab_[host];
  if (fab.direct()) {
    const link::SendResult sr = fab.send_tx(fab_dev, bytes, now, 0);
    msg.arrival = sr.at;
    msg.poisoned = sr.poisoned;
    if (shared) {
      if (engine_) {
        // Cross-shard: the pooled ingress belongs to the pool shard. The
        // send consumed a flow-control credit; the pool returns it when it
        // pops the message. sr.at >= now + quantum by the SerialPipe
        // latency floor, so barrier delivery never arrives late.
        assert(credits_[host][r.sub] > 0);
        --credits_[host][r.sub];
        mail_demand_[host].push_back({msg, r.sub});
      } else {
        shared_ingress_[r.sub][host].push_back(msg);
        shared_wake_[r.sub] = std::min(shared_wake_[r.sub], msg.arrival);
      }
    } else {
      priv_ingress_[host][r.sub].push_back(msg);
      priv_wake_[host][r.sub] = std::min(priv_wake_[host][r.sub], msg.arrival);
    }
  } else {
    WireMsg wm;
    wm.kind = WireMsg::kDemand;
    wm.is_write = is_write;
    wm.shared = shared;
    wm.sub = r.sub;
    wm.slot = static_cast<std::uint32_t>(msg.token);
    wm.line = r.local;
    wm.page = msg.page;
    fab.send_tx(fab_dev, bytes, now, alloc_wire(host, wm));
    ++fabric_msgs_inflight_;
    if (shared) {
      ++tx_inflight_shared_[r.sub][host];
    } else {
      ++tx_inflight_priv_[host][r.sub];
    }
  }
}

void PooledMemory::deliver_inval(std::uint32_t target, std::uint32_t txn,
                                 std::uint32_t sdev, bool dirty, Cycle arrival) {
  host_invals_[target].push_back({arrival, txn, sdev, dirty});
}

void PooledMemory::deliver_ack(std::uint32_t txn, bool dirty, Cycle arrival) {
  dev_acks_.push_back({arrival, txn, dirty});
}

void PooledMemory::start_txn(const Directory::Decision& d, const DeviceMsg& msg,
                             std::uint32_t host, std::uint32_t shared_sub,
                             Cycle now) {
  const std::uint32_t t = alloc_txn();
  CohTxn& x = txns_[t];
  x = CohTxn{};
  x.live = true;
  x.sdev = shared_sub / spd_;
  x.page = msg.page;
  x.send_clean = d.clean_mask;
  x.send_dirty = d.dirty_mask;
  x.acks_pending = popcount64(d.clean_mask | d.dirty_mask);
  x.parked = msg;
  x.park_host = host;
  x.park_sub = shared_sub;
  if (d.dirty_mask != 0) {
    if (d.evicted) {
      // Victim recall: its line 0 stands in for the page's dirty data.
      const fabric::Router::Route wr =
          shared_map_.route(d.evicted_page * cfg_.page_lines);
      x.wb_sub = wr.sub;
      x.wb_line = wr.local;
    } else {
      x.wb_sub = shared_sub;
      x.wb_line = msg.local_line;
    }
  }
  ++ctr_.txns;
  ++txns_per_dev_[x.sdev];
  ++live_txns_;
  pump_txn_sends(t, now);
}

void PooledMemory::pump_txn_sends(std::uint32_t t, Cycle now) {
  CohTxn& x = txns_[t];
  for (std::uint32_t h = 0; h < n_hosts_ && (x.send_clean | x.send_dirty) != 0;
       ++h) {
    const std::uint64_t bit = std::uint64_t{1} << h;
    const bool dirty = (x.send_dirty & bit) != 0;
    if (!dirty && (x.send_clean & bit) == 0) continue;
    // The invalidation rides the target host's return path from the pooled
    // device — the same pipe as its read responses, so invalidation latency
    // is load- and topology-dependent.
    fabric::Fabric& fab = *fab_[h];
    if (!fab.can_send_rx(x.sdev, now)) continue;
    if (fab.direct()) {
      const link::SendResult sr =
          fab.send_rx(x.sdev, link::kReadRequestBytes, now, 0);
      if (engine_) {
        mail_inval_[h].push_back({sr.at, t, x.sdev, dirty});
      } else {
        deliver_inval(h, t, x.sdev, dirty, sr.at);
      }
    } else {
      WireMsg wm;
      wm.kind = WireMsg::kInval;
      wm.dirty = dirty;
      wm.txn = t;
      fab.send_rx(x.sdev, link::kReadRequestBytes, now, alloc_wire(h, wm));
      ++fabric_msgs_inflight_;
    }
    ++ctr_.invals_sent;
    if (dirty) {
      x.send_dirty &= ~bit;
    } else {
      x.send_clean &= ~bit;
    }
  }
}

void PooledMemory::admit_shared(dram::Controller& ctrl, const DeviceMsg& msg,
                                std::uint32_t host, Cycle now) {
  if (msg.is_write) {
    ctrl.enqueue(msg.local_line, true, now, 0);
    ++ctr_.shared_writes;
    ++host_shared_ctr_[host].writes;
  } else {
    // Request-side poison rides the DRAM token (bit 63) so the pool shard
    // never writes into the host-owned read-slot table.
    ctrl.enqueue(msg.local_line, false, now,
                 pack_token(msg.poisoned, host, msg.token));
    ++ctr_.shared_reads;
    ++host_shared_ctr_[host].reads;
  }
  ++host_shared_ctr_[host].shared;
}

Cycle PooledMemory::pump_wire_deliveries(Cycle now) {
  Cycle wake = kNoCycle;
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    fabric::Fabric& fab = *fab_[h];
    if (fab.direct()) continue;
    wake = std::min(wake, fab.tick(now));
    for (const fabric::Delivery& d : fab.tx_deliveries()) {
      const std::uint32_t m = static_cast<std::uint32_t>(d.payload);
      const WireMsg wm = wire_pool_[h][m];
      free_wire_[h].push_back(m);
      --fabric_msgs_inflight_;
      if (wm.kind == WireMsg::kDemand) {
        DeviceMsg msg;
        msg.arrival = d.arrival;
        msg.local_line = wm.line;
        msg.page = wm.page;
        msg.token = wm.slot;
        msg.is_write = wm.is_write;
        msg.poisoned = d.poisoned;
        if (wm.shared && dead_ && wm.sub / spd_ == fail_dev_) {
          // In flight when the device died: bounce at delivery.
          --tx_inflight_shared_[wm.sub][h];
          bounce_msg(h, msg, std::max(d.arrival, now));
        } else if (wm.shared) {
          shared_ingress_[wm.sub][h].push_back(msg);
          shared_wake_[wm.sub] = std::min(shared_wake_[wm.sub], d.arrival);
          --tx_inflight_shared_[wm.sub][h];
        } else {
          priv_ingress_[h][wm.sub].push_back(msg);
          priv_wake_[h][wm.sub] = std::min(priv_wake_[h][wm.sub], d.arrival);
          --tx_inflight_priv_[h][wm.sub];
        }
      } else {
        assert(wm.kind == WireMsg::kAck);
        deliver_ack(wm.txn, wm.dirty, d.arrival);
      }
    }
    fab.tx_deliveries().clear();
    for (const fabric::Delivery& d : fab.rx_deliveries()) {
      const std::uint32_t m = static_cast<std::uint32_t>(d.payload);
      const WireMsg wm = wire_pool_[h][m];
      free_wire_[h].push_back(m);
      --fabric_msgs_inflight_;
      if (wm.kind == WireMsg::kResp) {
        finish_read(h, wm.slot, d.arrival, wm.poisoned || d.poisoned);
      } else {
        assert(wm.kind == WireMsg::kInval);
        deliver_inval(h, wm.txn, txns_[wm.txn].sdev, wm.dirty, d.arrival);
      }
    }
    fab.rx_deliveries().clear();
  }
  return wake;
}

Cycle PooledMemory::tick(Cycle now) {
  Cycle wake = pump_wire_deliveries(now);
  wake = std::min(wake, pool_tick(now));
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    wake = std::min(wake, host_tick(h, now));
  }
  return wake;
}

Cycle PooledMemory::pool_tick(Cycle now) {
  Cycle wake = kNoCycle;
  if (avail_on_) wake = std::min(wake, pump_pool_failure(now));

  // -- Phase B: acks arriving at pooled devices retire invalidations. -----
  {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < dev_acks_.size(); ++i) {
      const DevAck a = dev_acks_[i];
      if (a.arrival > now) {
        dev_acks_[kept++] = a;
        continue;
      }
      CohTxn& x = txns_[a.txn];
      assert(x.live && x.acks_pending > 0);
      --x.acks_pending;
      ++ctr_.invals_acked;
      if (a.dirty) {
        if (dead_ && x.sdev == fail_dev_) {
          // The recalled data's backing store died while the recall was in
          // flight: the dirty page is lost, not written back.
          ++avail_.lost_dirty_pages;
        } else {
          // The recalled line's data came back with the ack; it still has
          // to be written into device DRAM (drained in the sub-channel
          // pass).
          pending_wbs_.push_back({x.wb_sub, x.wb_line});
          shared_wake_[x.wb_sub] = std::min(shared_wake_[x.wb_sub], now);
        }
      }
    }
    dev_acks_.resize(kept);
  }

  // -- Phase C: transactions send remaining invals; completed ones admit
  //    their parked access (in transaction-id order, deterministically). --
  for (std::uint32_t t = 0; t < txns_.size(); ++t) {
    CohTxn& x = txns_[t];
    if (!x.live) continue;
    pump_txn_sends(t, now);
    if ((x.send_clean | x.send_dirty) != 0 || x.acks_pending != 0) continue;
    if (dead_ && x.sdev == fail_dev_) {
      // The device died under this transaction: its directory entry is
      // gone (fail_reset — no unlock) and the parked access has nowhere
      // to go. Recovery rounds park nothing.
      if (!x.recovery) bounce_msg(x.park_host, x.parked, now);
      x.live = false;
      --txns_per_dev_[x.sdev];
      --live_txns_;
      free_txns_.push_back(t);
      continue;
    }
    dram::Controller& ctrl = *shared_ctrls_[x.park_sub];
    if (!ctrl.can_accept(x.parked.is_write)) continue;
    admit_shared(ctrl, x.parked, x.park_host, now);
    shared_wake_[x.park_sub] = std::min(shared_wake_[x.park_sub], now);
    dirs_[x.sdev]->unlock(x.page);
    x.live = false;
    --txns_per_dev_[x.sdev];
    --live_txns_;
    free_txns_.push_back(t);
  }

  // -- Phase D: pooled sub-channels — recall writebacks, merged admission
  //    through the directory, DRAM tick, completions. ---------------------
  for (std::uint32_t sub = 0; sub < s_subs_; ++sub) {
    if (!force_tick_ && shared_wake_[sub] > now) {
      wake = std::min(wake, shared_wake_[sub]);
      continue;
    }
    dram::Controller& ctrl = *shared_ctrls_[sub];
    const std::uint32_t dev = sub / spd_;
    bool wb_waiting = false;
    {
      // Recall data takes priority over new admissions, FIFO per sub.
      std::size_t kept = 0;
      bool blocked = false;
      for (std::size_t i = 0; i < pending_wbs_.size(); ++i) {
        const PendingWb w = pending_wbs_[i];
        if (w.sub != sub || blocked || !ctrl.can_accept(true)) {
          blocked = blocked || (w.sub == sub);
          wb_waiting = wb_waiting || (w.sub == sub);
          pending_wbs_[kept++] = w;
          continue;
        }
        ctrl.enqueue(w.local_line, true, now, 0);
        ++ctr_.recall_writebacks;
      }
      pending_wbs_.resize(kept);
    }

    std::uint64_t skipped = 0;
    while (true) {
      // Earliest-arrival-first merge across the per-host queues; host index
      // breaks ties, so inter-host ordering is deterministic.
      std::uint32_t best = n_hosts_;
      Cycle best_at = kNoCycle;
      for (std::uint32_t h = 0; h < n_hosts_; ++h) {
        if ((skipped >> h) & 1) continue;
        const auto& q = shared_ingress_[sub][h];
        if (q.empty() || q.front().arrival > now) continue;
        if (q.front().arrival < best_at) {
          best_at = q.front().arrival;
          best = h;
        }
      }
      if (best == n_hosts_) break;
      auto& q = shared_ingress_[sub][best];
      const DeviceMsg msg = q.front();
      if (!ctrl.can_accept(msg.is_write)) break;
      // A decision that needs a transaction must be able to start one; gate
      // before access() because the directory transitions state eagerly.
      if (txns_per_dev_[dev] >= cfg_.directory_max_txns) break;
      const Directory::Decision dd = dirs_[dev]->access(msg.page, best, msg.is_write);
      if (dd.blocked) {
        skipped |= std::uint64_t{1} << best;  // Same-page txn in flight.
        continue;
      }
      if (dd.evicted) ++ctr_.dir_evictions;
      if (dd.upgrade_silent) ++ctr_.upgrades_silent;
      if (dd.pingpong) ++ctr_.pingpong_transitions;
      ctr_.recalls_dirty += popcount64(dd.dirty_mask);
      q.pop_front();
      if (engine_) {
        // The pop frees the host's flow-control credit; the return rides
        // the unloaded control latency of the response path.
        mail_credit_[best].push_back({now + credit_lat_, sub});
      }
      if (dd.needs_txn) {
        start_txn(dd, msg, best, sub, now);
        continue;
      }
      admit_shared(ctrl, msg, best, now);
    }

    Cycle sw = ctrl.tick(now);
    for (std::uint32_t h = 0; h < n_hosts_; ++h) {
      const auto& q = shared_ingress_[sub][h];
      if (q.empty()) continue;
      // Future head wakes at its arrival; an arrived-but-blocked head
      // (controller full, directory lock, txn-table gate) retries next
      // cycle — conservative but mode-invariant.
      sw = std::min(sw, q.front().arrival > now ? q.front().arrival : now + 1);
    }
    if (wb_waiting) sw = std::min(sw, now + 1);
    shared_wake_[sub] = sw;
    wake = std::min(wake, sw);

    auto& done = ctrl.completions();
    for (const auto& comp : done) {
      const std::uint32_t h =
          static_cast<std::uint32_t>(comp.token >> 32) & 0x7fffffffu;
      pending_rx_[h].push_back(
          {comp.done, dev, static_cast<std::uint32_t>(comp.token & 0xffffffffu),
           (comp.token >> 63) != 0});
    }
    done.clear();
  }

  // -- Phase F (shared half): ship pooled responses up every return path. -
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    wake = std::min(wake, ship_shared_responses(h, now));
  }

  // -- Wake assembly for the remaining coherence state. -------------------
  if (live_txns_ != 0 || !pending_wbs_.empty()) wake = std::min(wake, now + 1);
  for (const DevAck& a : dev_acks_) {
    wake = std::min(wake, std::max(a.arrival, now + 1));
  }
  return wake;
}

Cycle PooledMemory::ship_shared_responses(std::uint32_t host, Cycle now) {
  Cycle wake = kNoCycle;
  fabric::Fabric& fab = *fab_[host];
  auto& pending = pending_rx_[host];
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const PendingResponse p = pending[i];
    if (dead_ && p.device == fail_dev_) {
      // The data was read before the device died, but its return link is
      // gone: the host port times out and synthesises a poison response.
      // The engine pays the synthesised response's unloaded latency, which
      // also keeps the bounce outside the quantum that produced it.
      ++avail_.bounced_reads;
      const Cycle at = std::max(p.ready, now);
      if (engine_) {
        mail_comp_[host].push_back({at + bounce_rx_lat_, p.slot, true});
      } else {
        finish_read(host, p.slot, at, true);
      }
      continue;
    }
    if (p.ready > now || !fab.can_send_rx(p.device, now)) {
      pending[kept++] = p;
      continue;
    }
    if (fab.direct()) {
      const link::SendResult sr =
          fab.send_rx(p.device, link::kReadResponseBytes, now, 0);
      if (engine_) {
        mail_comp_[host].push_back({sr.at, p.slot, p.poisoned || sr.poisoned});
      } else {
        finish_read(host, p.slot, sr.at, p.poisoned || sr.poisoned);
      }
    } else {
      WireMsg wm;
      wm.kind = WireMsg::kResp;
      wm.slot = p.slot;
      wm.poisoned = p.poisoned;
      fab.send_rx(p.device, link::kReadResponseBytes, now, alloc_wire(host, wm));
      ++fabric_msgs_inflight_;
    }
  }
  pending.resize(kept);
  for (const PendingResponse& p : pending) {
    const Cycle at = p.ready > now ? p.ready : fab.rx_credit_cycle(p.device, now);
    wake = std::min(wake, std::max(at, now + 1));
  }
  return wake;
}

Cycle PooledMemory::host_tick(std::uint32_t host, Cycle now) {
  Cycle wake = kNoCycle;
  fabric::Fabric& fab = *fab_[host];

  // Matured flow-control credits become usable (engine mode only).
  if (engine_ && !pending_credits_[host].empty()) {
    auto& pc = pending_credits_[host];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pc.size(); ++i) {
      const CreditMail c = pc[i];
      if (c.at > now) {
        pc[kept++] = c;
        wake = std::min(wake, c.at);
        continue;
      }
      ++credits_[host][c.sub];
    }
    pc.resize(kept);
  }

  // -- Phase E: private sub-channels (plain CxlMemory-style FIFO). --------
  for (std::uint32_t sub = 0; sub < p_subs_; ++sub) {
    if (!force_tick_ && priv_wake_[host][sub] > now) {
      wake = std::min(wake, priv_wake_[host][sub]);
      continue;
    }
    dram::Controller& ctrl = *priv_ctrls_[host][sub];
    auto& q = priv_ingress_[host][sub];
    while (!q.empty() && q.front().arrival <= now &&
           ctrl.can_accept(q.front().is_write)) {
      const DeviceMsg& msg = q.front();
      if (msg.is_write) {
        ctrl.enqueue(msg.local_line, true, now, 0);
        ++host_priv_ctr_[host].writes;
      } else {
        ctrl.enqueue(msg.local_line, false, now,
                     pack_token(msg.poisoned, host, msg.token));
        ++host_priv_ctr_[host].reads;
      }
      q.pop_front();
    }
    Cycle sw = ctrl.tick(now);
    if (!q.empty()) {
      sw = std::min(sw, q.front().arrival > now ? q.front().arrival : now + 1);
    }
    priv_wake_[host][sub] = sw;
    wake = std::min(wake, sw);

    auto& done = ctrl.completions();
    const std::uint32_t fab_dev = s_devs_ + sub / spd_;
    for (const auto& comp : done) {
      pending_rx_priv_[host].push_back(
          {comp.done, fab_dev,
           static_cast<std::uint32_t>(comp.token & 0xffffffffu),
           (comp.token >> 63) != 0});
    }
    done.clear();
  }

  // -- Phase F (private half): ship responses; private devices never die. -
  {
    auto& pending = pending_rx_priv_[host];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const PendingResponse p = pending[i];
      if (p.ready > now || !fab.can_send_rx(p.device, now)) {
        pending[kept++] = p;
        continue;
      }
      if (fab.direct()) {
        const link::SendResult sr =
            fab.send_rx(p.device, link::kReadResponseBytes, now, 0);
        finish_read(host, p.slot, sr.at, p.poisoned || sr.poisoned);
      } else {
        WireMsg wm;
        wm.kind = WireMsg::kResp;
        wm.slot = p.slot;
        wm.poisoned = p.poisoned;
        fab.send_rx(p.device, link::kReadResponseBytes, now,
                    alloc_wire(host, wm));
        ++fabric_msgs_inflight_;
      }
    }
    pending.resize(kept);
    for (const PendingResponse& p : pending) {
      const Cycle at = p.ready > now ? p.ready : fab.rx_credit_cycle(p.device, now);
      wake = std::min(wake, std::max(at, now + 1));
    }
  }

  // -- Phase G: ack delivered invalidations on the request path. ----------
  {
    auto& invals = host_invals_[host];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < invals.size(); ++i) {
      const HostInval iv = invals[i];
      if (iv.arrival > now || !fab.can_send_tx(iv.sdev, now)) {
        invals[kept++] = iv;
        wake = std::min(
            wake, std::max(iv.arrival > now ? iv.arrival : now + 1, now + 1));
        continue;
      }
      // A dirty recall ack carries the line back; a clean ack is control.
      const std::uint32_t bytes =
          iv.dirty ? link::kWriteMessageBytes : link::kReadRequestBytes;
      if (fab.direct()) {
        const link::SendResult sr = fab.send_tx(iv.sdev, bytes, now, 0);
        if (engine_) {
          mail_ack_[host].push_back({sr.at, iv.txn, iv.dirty});
        } else {
          deliver_ack(iv.txn, iv.dirty, sr.at);
        }
      } else {
        WireMsg wm;
        wm.kind = WireMsg::kAck;
        wm.dirty = iv.dirty;
        wm.txn = iv.txn;
        fab.send_tx(iv.sdev, bytes, now, alloc_wire(host, wm));
        ++fabric_msgs_inflight_;
      }
      ++host_ack_ctr_[host].acks_sent;
      ++host_ack_ctr_[host].invals_received;
    }
    invals.resize(kept);
  }
  return wake;
}

Cycle PooledMemory::exchange_shard_mail(Cycle now) {
  Cycle effect = kNoCycle;
  // Demands and acks first (into the pool shard): an onset-straggler
  // demand bounced here appends its completion to mail_comp_, which the
  // second loop then delivers in the same exchange.
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    for (const DemandMail& dm : mail_demand_[h]) {
      if (dead_ && dm.sub / spd_ == fail_dev_) {
        // Sent before the host shard observed the death: bounce at the
        // barrier and return the credit (the queue it aimed for is gone).
        bounce_msg(h, dm.msg, std::max(dm.msg.arrival, now));
        mail_credit_[h].push_back({now + credit_lat_, dm.sub});
        continue;
      }
      shared_ingress_[dm.sub][h].push_back(dm.msg);
      shared_wake_[dm.sub] = std::min(shared_wake_[dm.sub], dm.msg.arrival);
      effect = std::min(effect, dm.msg.arrival);
    }
    mail_demand_[h].clear();
    for (const AckMail& am : mail_ack_[h]) {
      dev_acks_.push_back({am.arrival, am.txn, am.dirty});
      effect = std::min(effect, am.arrival);
    }
    mail_ack_[h].clear();
  }
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    for (const CompMail& cm : mail_comp_[h]) {
      finish_read(h, cm.slot, cm.done, cm.poisoned);
      effect = std::min(effect, cm.done);
    }
    mail_comp_[h].clear();
    for (const CreditMail& cr : mail_credit_[h]) {
      pending_credits_[h].push_back(cr);
      effect = std::min(effect, cr.at);
    }
    mail_credit_[h].clear();
    for (const InvalMail& im : mail_inval_[h]) {
      host_invals_[h].push_back({im.arrival, im.txn, im.sdev, im.dirty});
      effect = std::min(effect, im.arrival);
    }
    mail_inval_[h].clear();
  }
  return effect;
}

void PooledMemory::bounce_msg(std::uint32_t host, const DeviceMsg& msg,
                              Cycle at) {
  if (msg.is_write) {
    ++avail_.lost_writes;
  } else {
    ++avail_.bounced_reads;
    if (engine_) {
      // The pool shard may not complete a host-owned read slot directly;
      // the poison response crosses back as completion mail, paying the
      // synthesised response's unloaded latency.
      mail_comp_[host].push_back(
          {at + bounce_rx_lat_, static_cast<std::uint32_t>(msg.token), true});
    } else {
      finish_read(host, static_cast<std::uint32_t>(msg.token), at, true);
    }
  }
}

void PooledMemory::pool_fail_onset(Cycle now) {
  dead_ = true;
  ++avail_.devices_offlined;
  // Everything queued at the dead device's sub-channels bounces: reads
  // poison-complete exactly once, writes are lost. Reads already inside
  // its DRAM complete poisoned when their data would have returned (the
  // dead-device branch in the response phase routes around the fabric).
  for (std::uint32_t sub = fail_dev_ * spd_; sub < (fail_dev_ + 1) * spd_;
       ++sub) {
    for (std::uint32_t h = 0; h < n_hosts_; ++h) {
      for (const DeviceMsg& m : shared_ingress_[sub][h]) {
        bounce_msg(h, m, std::max(m.arrival, now));
        if (engine_) mail_credit_[h].push_back({now + credit_lat_, sub});
      }
      shared_ingress_[sub][h].clear();
    }
  }
  // Recall data waiting for a write slot on the dead device is lost.
  {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending_wbs_.size(); ++i) {
      const PendingWb w = pending_wbs_[i];
      if (w.sub / spd_ == fail_dev_) {
        ++avail_.lost_dirty_pages;
        continue;
      }
      pending_wbs_[kept++] = w;
    }
    pending_wbs_.resize(kept);
  }
  // Directory teardown: every cached copy of a page the device backed must
  // be invalidated — the backing store is gone — and modified pages lose
  // their only durable home, so they count as lost dirty data. The
  // invalidations go out as recovery transactions in waves bounded by the
  // transaction table, through the ordinary send/ack machinery, so
  // invals_sent == invals_acked holds across the teardown.
  for (const Directory::Entry& e : dirs_[fail_dev_]->fail_reset()) {
    if (e.state == PageState::kModified) ++avail_.lost_dirty_pages;
    if (e.sharers != 0) recovery_q_.push_back({e.page, e.sharers});
  }
}

Cycle PooledMemory::pump_pool_failure(Cycle now) {
  if (!dead_) {
    if (now < fail_at_) return fail_at_;
    pool_fail_onset(now);
  }
  while (!recovery_q_.empty() &&
         txns_per_dev_[fail_dev_] < cfg_.directory_max_txns) {
    const auto [page, mask] = recovery_q_.front();
    recovery_q_.pop_front();
    const std::uint32_t t = alloc_txn();
    CohTxn& x = txns_[t];
    x = CohTxn{};
    x.live = true;
    x.recovery = true;
    x.sdev = fail_dev_;
    x.page = page;
    x.send_clean = mask;  // Always clean: the dirty data is already lost.
    x.acks_pending = popcount64(mask);
    avail_.recovery_invals += x.acks_pending;
    ++ctr_.txns;
    ++txns_per_dev_[fail_dev_];
    ++live_txns_;
    pump_txn_sends(t, now);
  }
  return recovery_q_.empty() ? kNoCycle : now + 1;
}

ras::RasCounters PooledMemory::ras_counters() const {
  ras::RasCounters sum;
  for (const auto& f : fab_) sum += f->ras_counters();
  return sum;
}

ras::AvailCounters PooledMemory::avail_counters() const {
  ras::AvailCounters sum = avail_;
  for (const auto& a : avail_host_) sum += a;
  return sum;
}

PoolCounters PooledMemory::counters() const {
  PoolCounters c = ctr_;
  for (const HostPrivCtr& p : host_priv_ctr_) {
    c.private_reads += p.reads;
    c.private_writes += p.writes;
  }
  return c;
}

HostCounters PooledMemory::host_counters(std::uint32_t host) const {
  HostCounters c;
  c.reads = host_shared_ctr_[host].reads + host_priv_ctr_[host].reads;
  c.writes = host_shared_ctr_[host].writes + host_priv_ctr_[host].writes;
  c.shared = host_shared_ctr_[host].shared;
  c.invals_received = host_ack_ctr_[host].invals_received;
  c.acks_sent = host_ack_ctr_[host].acks_sent;
  return c;
}

bool PooledMemory::coherence_idle() const {
  if (live_txns_ != 0 || !dev_acks_.empty() || !pending_wbs_.empty()) return false;
  for (const auto& iv : host_invals_) {
    if (!iv.empty()) return false;
  }
  return true;
}

bool PooledMemory::quiescent() const {
  for (std::uint64_t n : inflight_reads_) {
    if (n != 0) return false;
  }
  if (fabric_msgs_inflight_ != 0 || !coherence_idle()) return false;
  if (!recovery_q_.empty()) return false;
  for (const auto& per_host : shared_ingress_) {
    for (const auto& q : per_host) {
      if (!q.empty()) return false;
    }
  }
  for (const auto& per_sub : priv_ingress_) {
    for (const auto& q : per_sub) {
      if (!q.empty()) return false;
    }
  }
  for (const auto& p : pending_rx_) {
    if (!p.empty()) return false;
  }
  for (const auto& p : pending_rx_priv_) {
    if (!p.empty()) return false;
  }
  // Mailbox contents and undrained completions: only meaningful right
  // after a barrier exchange, which is the only place the engine asks.
  // Maturing flow-control credits are deliberately excluded — they are
  // budget, not work, and their maturation is deterministic regardless.
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    if (!mail_demand_[h].empty() || !mail_ack_[h].empty() ||
        !mail_comp_[h].empty() || !mail_credit_[h].empty() ||
        !mail_inval_[h].empty() || !out_[h].empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace coaxial::pool
