#include "workload/arrival.hpp"

#include <cmath>
#include <stdexcept>

#include "common/validate.hpp"

namespace coaxial::workload {

void ArrivalConfig::validate() const {
  constexpr const char* kOwner = "workload::ArrivalConfig";
  validate::require_positive(kOwner, "offered_load", offered_load);
  validate::require_in_range(kOwner, "write_fraction", write_fraction, 0.0, 1.0);
  validate::require_nonzero(kOwner, "footprint_lines", footprint_lines);
  if (process == ArrivalProcessKind::kMmpp) {
    if (!std::isfinite(burst_multiplier) || burst_multiplier < 1.0) {
      validate::fail(kOwner, "burst_multiplier", "must be finite and >= 1",
                     validate::render(burst_multiplier));
    }
    if (!std::isfinite(burst_fraction) || burst_fraction <= 0.0 ||
        burst_fraction >= 1.0) {
      validate::fail(kOwner, "burst_fraction", "must be in (0, 1)",
                     validate::render(burst_fraction));
    }
    validate::require_nonzero(kOwner, "mean_burst_cycles", mean_burst_cycles);
  }
}

ArrivalGenerator::ArrivalGenerator(const ArrivalConfig& cfg, double lines_per_cycle,
                                   std::uint32_t tenant_id, std::uint64_t seed)
    : cfg_(cfg),
      rng_(seed ^ (0x5e7f1ce0ull + (static_cast<std::uint64_t>(tenant_id) << 32))),
      mean_rate_(lines_per_cycle),
      base_line_(static_cast<Addr>(tenant_id) << 44) {
  cfg_.validate();
  if (!(lines_per_cycle > 0.0)) {
    throw std::invalid_argument("arrival rate must be > 0 lines/cycle");
  }
  if (cfg_.process == ArrivalProcessKind::kMmpp) {
    // Split the mean rate into calm/burst rates such that
    //   f * rate_burst + (1 - f) * rate_calm == mean_rate
    // with rate_burst = m * rate_calm:
    const double m = cfg_.burst_multiplier;
    const double f = cfg_.burst_fraction;
    rate_calm_ = mean_rate_ / (f * m + (1.0 - f));
    rate_burst_ = m * rate_calm_;
    enter_state(/*burst=*/false);
  } else {
    rate_calm_ = mean_rate_;
    rate_burst_ = mean_rate_;
  }
}

double ArrivalGenerator::draw_exponential(double rate) {
  // Inverse-CDF; next_double() is in [0, 1), so 1-u is in (0, 1] and the
  // log argument never hits zero.
  return -std::log(1.0 - rng_.next_double()) / rate;
}

void ArrivalGenerator::enter_state(bool burst) {
  in_burst_ = burst;
  // Dwell times are exponential. Burst episodes last mean_burst_cycles B;
  // calm episodes last B * (1-f)/f so the long-run burst share is f.
  const double b = static_cast<double>(cfg_.mean_burst_cycles);
  const double mean_dwell =
      burst ? b : b * (1.0 - cfg_.burst_fraction) / cfg_.burst_fraction;
  state_end_ = t_ + draw_exponential(1.0 / mean_dwell);
}

ServiceRequest ArrivalGenerator::next() {
  if (cfg_.process == ArrivalProcessKind::kMmpp) {
    // Advance across state boundaries until an arrival lands inside the
    // current state. Discarding the partial interarrival at a boundary and
    // redrawing is exact for exponentials (memorylessness).
    for (;;) {
      const double rate = in_burst_ ? rate_burst_ : rate_calm_;
      const double dt = draw_exponential(rate);
      if (t_ + dt <= state_end_) {
        t_ += dt;
        break;
      }
      t_ = state_end_;
      enter_state(!in_burst_);
    }
  } else {
    t_ += draw_exponential(rate_calm_);
  }

  ServiceRequest req;
  req.at = static_cast<Cycle>(t_);
  req.line = base_line_ + rng_.next_below(cfg_.footprint_lines);
  req.is_write = cfg_.write_fraction > 0.0 && rng_.next_double() < cfg_.write_fraction;
  return req;
}

}  // namespace coaxial::workload
