// Synthetic workload generator.
//
// The paper replays recorded SPEC2017 / LIGRA / PARSEC / STREAM / masstree /
// kmeans traces. Those traces are not redistributable, so each workload is
// replaced by a stationary stochastic generator whose parameters reproduce
// the first-order memory behaviour that drives the paper's results: memory
// intensity (ops/instruction), store share, spatial locality (sequential
// streams vs random), a three-tier reuse structure (hot set ~ L2-resident,
// mid set ~ LLC-resident, cold set ~ memory-resident), and load->load
// dependencies (=> memory-level parallelism). Calibration targets are
// Table IV's published (IPC, LLC MPKI) pairs; see
// `bench_tab04_workload_metrics` and EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace coaxial::workload {

enum class InstrKind : std::uint8_t { kAlu, kLoad, kStore };

struct Instr {
  InstrKind kind = InstrKind::kAlu;
  Addr addr = 0;        ///< Byte address (loads/stores).
  Addr pc = 0;          ///< Synthetic PC, used by the MAP-I predictor.
  bool depends_on_prev_load = false;  ///< Pointer-chase dependency.
};

struct WorkloadParams {
  std::string name;
  std::string suite;  ///< SPEC / LIGRA / STREAM / PARSEC / KVS.

  double mem_fraction = 0.25;    ///< Memory ops per instruction.
  double store_fraction = 0.25;  ///< Stores among memory ops.
  double seq_prob = 0.5;         ///< P(mem op continues a sequential stream).
  std::uint32_t streams = 4;     ///< Concurrent sequential streams.

  // Random-access reuse tiers. The random component (1 - seq_prob of memory
  // ops) picks hot with p_hot, mid with p_mid, else cold.
  std::uint32_t hot_kb = 128;     ///< Private-cache-resident tier.
  std::uint32_t mid_kb = 1024;    ///< LLC-resident tier.
  std::uint32_t cold_kb = 65536;  ///< Memory-resident tier (per core).
  double p_hot = 0.3;
  double p_mid = 0.2;

  double dep_prob = 0.1;  ///< P(load depends on the previous load).
  double max_ipc = 3.0;   ///< Front-end/ILP ceiling (no-miss IPC).

  // Cold-tier page skew, for tiered-placement studies (DESIGN.md §10):
  // a `cold_hot_fraction` subset of the cold tier's 4 KiB pages (scattered
  // across the tier, so no contiguous range covers them) absorbs
  // `cold_hot_prob` of the cold random accesses. Both default to 0, which
  // draws nothing from the RNG and leaves legacy streams byte-identical.
  double cold_hot_fraction = 0.0;
  double cold_hot_prob = 0.0;

  /// Temporal burstiness in [0,1): the generator alternates memory-intense
  /// bursts (1/3 of instructions, mem_fraction*(1+2b)) with quieter gaps
  /// (mem_fraction*(1-b)), preserving the average. Real traces are phased;
  /// burstiness drives queuing at moderate utilisation (paper Fig. 2).
  double burstiness = 0.8;

  // Published baseline measurements (Table IV) used as calibration targets.
  double paper_ipc = 0.0;
  double paper_llc_mpki = 0.0;
};

/// Address-tier layout of one core's private region. Exposed so the
/// simulator can pre-warm caches with steady-state content (the substitute
/// for trace checkpoint warmup; see DESIGN.md).
struct Regions {
  Addr hot_base = 0;
  Addr hot_bytes = 0;
  Addr mid_base = 0;
  Addr mid_bytes = 0;
  Addr cold_base = 0;
  Addr cold_bytes = 0;
};

/// Tier layout for `core_id` under `params` (deterministic).
Regions region_layout(const WorkloadParams& params, std::uint32_t core_id);

/// Per-core instance: cores run disjoint address regions (the paper runs
/// one workload instance per core, rate-style).
class Generator {
 public:
  Generator(const WorkloadParams& params, std::uint32_t core_id, std::uint64_t seed);

  /// Produce the next instruction of the stream.
  Instr next();

  /// Chunked synthesis: produce the next `n` instructions into `out`.
  /// Exactly equivalent to `n` next() calls (same RNG draws in the same
  /// order), but the whole chunk is synthesized in one call so the per-
  /// instruction dispatch cost is amortized.
  std::size_t next_batch(Instr* out, std::size_t n);

  const WorkloadParams& params() const { return params_; }

 private:
  WorkloadParams params_;
  Rng rng_;
  Rng phase_rng_;  ///< Seeded without the core id: phases align across
                   ///< cores, like rate-mode replay of one trace (burst
                   ///< alignment is what loads the shared controllers).
  Addr base_hot_, base_mid_, base_cold_;
  Addr hot_bytes_, mid_bytes_, cold_bytes_;
  Addr warm_pages_ = 0;      ///< Skewed cold subset size (0 = no skew).
  Addr cold_page_mask_ = 0;  ///< Pow2-1 page mask for the scatter bijection.
  std::vector<Addr> stream_pos_;  ///< Byte offsets into the cold tier.
  double mem_frac_burst_ = 0;  ///< min(0.9, mem_fraction*(1+2b)), hoisted.
  double mem_frac_calm_ = 0;   ///< min(0.9, mem_fraction*(1-b)), hoisted.
  std::uint32_t next_stream_ = 0;
  bool saw_load_ = false;
  bool in_burst_ = false;
  std::uint32_t phase_left_ = 0;  ///< Instructions left in the current phase.
};

}  // namespace coaxial::workload
