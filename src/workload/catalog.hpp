// The paper's 36-workload evaluation set (Table IV), expressed as synthetic
// generator parameterisations, plus the Fig. 6 mixed-workload sampler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/generator.hpp"

namespace coaxial::workload {

/// All 36 workloads in Table IV order (SPEC, LIGRA, STREAM, KVS, PARSEC).
const std::vector<WorkloadParams>& all_workloads();

/// Lookup by name; throws std::out_of_range for unknown names.
const WorkloadParams& find_workload(const std::string& name);

/// Names of all 36 workloads.
std::vector<std::string> workload_names();

/// Fig. 6: `count` mixes, each `cores` workloads sampled uniformly (with
/// replacement) from the catalog, deterministic in `seed`.
std::vector<std::vector<std::string>> make_mixes(std::uint32_t count, std::uint32_t cores,
                                                 std::uint64_t seed);

/// Cross-device interleave stress ("xdev-stride"): a catalog-external preset
/// whose huge cold footprint, many concurrent streams and high miss rate
/// scatter outstanding misses across pages — under the fabric's per-page
/// interleaving every device behind a switch is hit in parallel. Kept out of
/// all_workloads() so catalog sampling (make_mixes) and the Table IV shape
/// checks are unchanged; find_workload resolves it by name.
const WorkloadParams& interleave_stress();

/// A `cores`-wide heterogeneous mix for the fabric benches: xdev-stride
/// rotated with the catalog's most bandwidth- and latency-sensitive
/// workloads, so switch ports see both bulk streams and dependent reads.
std::vector<WorkloadParams> interleave_stress_mix(std::uint32_t cores);

/// Skewed hot/cold preset ("tiered-hotcold") for the tiering studies: a
/// large memory-resident cold tier where a small, page-sparse warm subset
/// absorbs most cold accesses — the footprint a hot-page migration policy
/// can capture in a small fast tier but static HDM ranges cannot. Catalog-
/// external like interleave_stress(); find_workload resolves it by name.
const WorkloadParams& tiered_hotcold();

/// Wider-warm-set variant ("tiered-hotcold-wide"): the warm subset is a
/// larger slice of the cold tier, stressing fast-tier capacity pressure
/// (promotion churn, LRU demotion, bandwidth spill).
const WorkloadParams& tiered_hotcold_wide();

/// Pooling contention preset ("pool-pingpong") for the multi-host studies
/// (DESIGN.md §12): random-dominated, store-heavy traffic. When the pooled
/// driver redirects a share of it into the hot subset of the shared window,
/// concurrent writers bounce page ownership through the coherence directory
/// (M->M handoffs with dirty recalls). Catalog-external; find_workload
/// resolves it by name.
const WorkloadParams& pool_pingpong();

/// Read-mostly multi-tenant preset ("pool-shared-skew"): dependent reads
/// over a skewed shared working set — sharer lists grow wide, so a single
/// writer triggers broad back-invalidation fan-out while readers mostly
/// coexist in the shared state.
const WorkloadParams& pool_shared_skew();

}  // namespace coaxial::workload
