// The paper's 36-workload evaluation set (Table IV), expressed as synthetic
// generator parameterisations, plus the Fig. 6 mixed-workload sampler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/generator.hpp"

namespace coaxial::workload {

/// All 36 workloads in Table IV order (SPEC, LIGRA, STREAM, KVS, PARSEC).
const std::vector<WorkloadParams>& all_workloads();

/// Lookup by name; throws std::out_of_range for unknown names.
const WorkloadParams& find_workload(const std::string& name);

/// Names of all 36 workloads.
std::vector<std::string> workload_names();

/// Fig. 6: `count` mixes, each `cores` workloads sampled uniformly (with
/// replacement) from the catalog, deterministic in `seed`.
std::vector<std::vector<std::string>> make_mixes(std::uint32_t count, std::uint32_t cores,
                                                 std::uint64_t seed);

}  // namespace coaxial::workload
