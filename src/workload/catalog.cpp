#include "workload/catalog.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace coaxial::workload {

namespace {

/// Shape of a workload's memory behaviour; `mem_fraction` is solved from the
/// Table IV LLC-MPKI target using the first-order model
///
///   MPKI ~= 1000 * mem_frac * (seq/8 + (1-seq) * p_cold)
///
/// where sequential streams miss once per 64 B line (8-word lines) and cold
/// random accesses miss the LLC (cold tier >> LLC share). Hot accesses stay
/// in private caches; mid accesses hit the LLC.
struct Shape {
  const char* name;
  const char* suite;
  double seq;        ///< Sequential share of memory ops.
  double p_hot;      ///< Random-access share to the L2-resident tier.
  double p_mid;      ///< Random-access share to the LLC-resident tier.
  double store;      ///< Store share of memory ops.
  double dep;        ///< P(load depends on previous load).
  double max_ipc;    ///< ILP/front-end ceiling.
  double ipc;        ///< Paper Table IV baseline IPC.
  double mpki;       ///< Paper Table IV baseline LLC MPKI.
  std::uint32_t mid_kb = 1152;
  std::uint32_t hot_kb = 128;
  std::uint32_t cold_kb = 32768;
  double burst = 0.8;  ///< Temporal burstiness (see WorkloadParams).
  double calib = 1.0;  ///< Post-hoc multiplier on the solved mem_fraction,
                       ///< absorbing prefetch overfetch and LLC-pressure
                       ///< effects the first-order solver cannot see.
};

WorkloadParams make(const Shape& s) {
  WorkloadParams p;
  p.name = s.name;
  p.suite = s.suite;
  p.seq_prob = s.seq;
  p.p_hot = s.p_hot;
  p.p_mid = s.p_mid;
  p.store_fraction = s.store;
  p.dep_prob = s.dep;
  p.max_ipc = s.max_ipc;
  p.hot_kb = s.hot_kb;
  p.mid_kb = s.mid_kb;
  p.cold_kb = s.cold_kb;
  p.streams = s.seq > 0.8 ? 12 : 6;
  p.burstiness = s.burst;
  p.paper_ipc = s.ipc;
  p.paper_llc_mpki = s.mpki;

  const double p_cold = std::max(0.0, 1.0 - s.p_hot - s.p_mid);
  // Mid-tier accesses mostly hit the LLC, but random replacement interplay
  // across 12 sharers leaves a residual ~12% miss rate; fold it into the
  // cold term so the solved mem_fraction lands the MPKI target.
  const double cold_eff = p_cold + 0.12 * s.p_mid;
  const double miss_per_memop = s.seq / 8.0 + (1.0 - s.seq) * cold_eff;
  const double mf = s.calib * (s.mpki / 1000.0) / std::max(miss_per_memop, 1e-6);
  p.mem_fraction = std::clamp(mf, 0.02, 0.60);
  return p;
}

std::vector<WorkloadParams> build_catalog() {
  // Shapes chosen per workload class: SPEC HPC codes are stream-dominated;
  // mcf/omnetpp/xalanc/gcc are pointer/dependency-bound with large LLC-
  // resident shares; LIGRA kernels mix sequential offset scans with cold
  // random neighbour gathers; STREAM is pure streaming; masstree chases
  // pointers; kmeans streams centroids. mid_kb tiers are sized so 12
  // instances fit the baseline 24 MB LLC only for LLC-friendly workloads.
  const Shape shapes[] = {
      // name           suite     seq  p_hot p_mid store dep  ipc_cap  IPC   MPKI
      {"lbm",           "SPEC",   0.95, 0.60, 0.20, 0.45, 0.00, 2.0,   0.14, 64, 1152, 128, 49152, 0.35, 0.80},
      {"bwaves",        "SPEC",   0.80, 0.70, 0.25, 0.20, 0.55, 0.36,  0.33, 14, 1152, 128, 32768, 0.85},
      {"cactusBSSN",    "SPEC",   0.70, 0.75, 0.20, 0.25, 0.50, 0.90,  0.68, 8, 1152, 128, 32768, 0.85},
      {"fotonik3d",     "SPEC",   0.85, 0.60, 0.30, 0.30, 0.30, 0.45,  0.32, 22, 1152, 128, 32768, 0.8, 0.90},
      {"cam4",          "SPEC",   0.60, 0.80, 0.15, 0.50, 0.45, 1.10,  0.87, 6},
      {"wrf",           "SPEC",   0.70, 0.70, 0.20, 0.30, 0.45, 0.80,  0.61, 11, 1152, 128, 32768, 0.8, 0.90},
      {"mcf",           "SPEC",   0.20, 0.55, 0.30, 0.15, 0.30, 1.30,  0.79, 13, 1152, 128, 32768, 0.8, 0.81},
      {"roms",          "SPEC",   0.75, 0.75, 0.20, 0.30, 0.45, 0.90,  0.77, 6, 1152, 128, 32768, 0.8, 0.95},
      {"pop2",          "SPEC",   0.60, 0.80, 0.17, 0.30, 0.20, 1.75,  1.50, 3},
      {"omnetpp",       "SPEC",   0.10, 0.55, 0.30, 0.25, 0.80, 0.62,  0.50, 10, 1152, 128, 32768, 0.8, 0.88},
      {"xalancbmk",     "SPEC",   0.15, 0.50, 0.35, 0.20, 0.70, 0.62,  0.50, 12, 1280, 128, 32768, 0.8, 0.86},
      {"gcc",           "SPEC",   0.15, 0.45, 0.42, 0.25, 0.80, 0.33,  0.27, 19, 1280, 128, 32768, 0.8, 1.00},
      {"pagerank-delta","LIGRA",  0.30, 0.40, 0.20, 0.20, 0.45, 0.55,  0.30, 27, 1152, 128, 32768, 0.8, 0.82},
      {"comp-shortcut", "LIGRA",  0.35, 0.30, 0.15, 0.20, 0.10, 2.20,  0.34, 48, 1152, 128, 32768, 0.8, 0.86},
      {"components",    "LIGRA",  0.35, 0.30, 0.15, 0.20, 0.10, 2.20,  0.36, 48, 1152, 128, 32768, 0.8, 0.86},
      {"bc",            "LIGRA",  0.30, 0.35, 0.20, 0.20, 0.20, 1.00,  0.33, 34, 1152, 128, 32768, 0.8, 0.93},
      {"pagerank",      "LIGRA",  0.40, 0.30, 0.20, 0.20, 0.10, 2.20,  0.36, 40, 1152, 128, 32768, 0.8, 0.85},
      {"radii",         "LIGRA",  0.35, 0.35, 0.20, 0.20, 0.10, 2.20,  0.41, 33, 1152, 128, 32768, 0.8, 0.74},
      {"cf",            "LIGRA",  0.40, 0.50, 0.30, 0.25, 0.25, 1.40,  0.80, 12},
      {"bfscc",         "LIGRA",  0.35, 0.45, 0.25, 0.20, 0.20, 1.10,  0.65, 17, 1152, 128, 32768, 0.8, 0.90},
      {"bellmanford",   "LIGRA",  0.40, 0.50, 0.30, 0.20, 0.35, 1.05,  0.82, 9},
      {"bfs",           "LIGRA",  0.35, 0.45, 0.25, 0.15, 0.35, 1.10,  0.66, 15, 1152, 128, 32768, 0.8, 0.90},
      {"bfs-bitvector", "LIGRA",  0.40, 0.50, 0.28, 0.15, 0.10, 2.00,  0.84, 15},
      {"triangle",      "LIGRA",  0.35, 0.40, 0.25, 0.10, 0.15, 1.20,  0.61, 21, 1152, 128, 32768, 0.8, 0.82},
      {"stream-copy",   "STREAM", 0.98, 0.50, 0.30, 0.50, 0.00, 2.00,  0.17, 58, 1152, 128, 32768, 0.25, 0.92},
      {"stream-scale",  "STREAM", 0.98, 0.50, 0.30, 0.50, 0.00, 2.00,  0.21, 48, 1152, 128, 32768, 0.25, 0.95},
      {"stream-add",    "STREAM", 0.98, 0.50, 0.30, 0.34, 0.00, 2.00,  0.16, 69, 1152, 128, 32768, 0.25, 0.88},
      {"stream-triad",  "STREAM", 0.98, 0.50, 0.30, 0.34, 0.00, 2.00,  0.18, 59, 1152, 128, 32768, 0.25, 0.93},
      {"masstree",      "KVS",    0.15, 0.40, 0.25, 0.15, 0.62, 0.50,  0.37, 21, 1152, 128, 32768, 0.8, 0.83},
      {"kmeans",        "KVS",    0.85, 0.50, 0.20, 0.15, 0.05, 2.40,  0.50, 36, 1152, 128, 32768, 0.8, 0.82},
      {"fluidanimate",  "PARSEC", 0.50, 0.60, 0.25, 0.30, 0.50, 0.90,  0.73, 7},
      {"facesim",       "PARSEC", 0.55, 0.60, 0.25, 0.30, 0.50, 0.90,  0.74, 6},
      {"raytrace",      "PARSEC", 0.30, 0.65, 0.25, 0.10, 0.35, 1.40,  1.10, 5},
      {"streamcluster", "PARSEC", 0.70, 0.40, 0.20, 0.10, 0.08, 1.40,  0.95, 14, 1152, 128, 32768, 0.8, 0.90},
      {"canneal",       "PARSEC", 0.10, 0.50, 0.30, 0.15, 0.70, 0.75,  0.61, 7},
  };
  // Note: the paper's prose says "36 diverse workloads" but Table IV lists
  // 35 and the artifact appendix confirms 35 ("8 configurations with 35
  // workloads"); we reproduce the 35 of Table IV.
  std::vector<WorkloadParams> catalog;
  catalog.reserve(std::size(shapes));
  for (const Shape& s : shapes) catalog.push_back(make(s));
  return catalog;
}

}  // namespace

const std::vector<WorkloadParams>& all_workloads() {
  static const std::vector<WorkloadParams> catalog = build_catalog();
  return catalog;
}

const WorkloadParams& find_workload(const std::string& name) {
  for (const auto& w : all_workloads()) {
    if (w.name == name) return w;
  }
  if (name == interleave_stress().name) return interleave_stress();
  if (name == tiered_hotcold().name) return tiered_hotcold();
  if (name == tiered_hotcold_wide().name) return tiered_hotcold_wide();
  if (name == pool_pingpong().name) return pool_pingpong();
  if (name == pool_shared_skew().name) return pool_shared_skew();
  throw std::out_of_range("unknown workload: " + name);
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  names.reserve(all_workloads().size());
  for (const auto& w : all_workloads()) names.push_back(w.name);
  return names;
}

const WorkloadParams& interleave_stress() {
  static const WorkloadParams preset = [] {
    // Mostly-sequential strided scans over a 256 MB cold tier with little
    // hot/mid reuse: nearly every memory op misses the LLC and lands on a
    // different page, so the per-page fabric router fans concurrent
    // requests out across all devices.
    const Shape s = {"xdev-stride", "FABRIC",
                     /*seq=*/0.75, /*p_hot=*/0.10, /*p_mid=*/0.05,
                     /*store=*/0.30, /*dep=*/0.05, /*max_ipc=*/2.0,
                     /*ipc=*/0.20, /*mpki=*/70,
                     /*mid_kb=*/512, /*hot_kb=*/64, /*cold_kb=*/262144,
                     /*burst=*/0.3};
    WorkloadParams p = make(s);
    p.streams = 16;  // Many live streams => many pages touched at once.
    return p;
  }();
  return preset;
}

const WorkloadParams& tiered_hotcold() {
  static const WorkloadParams preset = [] {
    // Random-dominated traffic over a 32 MB/core cold tier whose warm
    // subset (0.5% of pages, ~160 KB/core — far over the per-core LLC
    // share but a few hundred fast-tier frames) absorbs 85% of the cold
    // accesses. The subset must be tight enough that a promoted page's
    // ~9 touches/epoch amortize the 128-line-op page copy within a few
    // epochs, yet page-sparse (hash-scattered) so static HDM ranges
    // cannot cover it. Dependent loads make the capacity tier's extra
    // latency visible, so promoting the warm pages moves IPC.
    const Shape s = {"tiered-hotcold", "TIER",
                     /*seq=*/0.10, /*p_hot=*/0.20, /*p_mid=*/0.10,
                     /*store=*/0.25, /*dep=*/0.50, /*max_ipc=*/2.0,
                     /*ipc=*/0.40, /*mpki=*/40,
                     /*mid_kb=*/1152, /*hot_kb=*/128, /*cold_kb=*/32768,
                     /*burst=*/0.5};
    WorkloadParams p = make(s);
    p.streams = 4;
    p.cold_hot_fraction = 0.005;
    p.cold_hot_prob = 0.85;
    return p;
  }();
  return preset;
}

const WorkloadParams& tiered_hotcold_wide() {
  static const WorkloadParams preset = [] {
    WorkloadParams p = tiered_hotcold();
    p.name = "tiered-hotcold-wide";
    // 3x the warm footprint at a slightly flatter skew: the 12-core warm
    // set (~1.4k pages) overflows a 1024-frame fast tier, so small tiers
    // must demote, while large ones still capture the whole set.
    p.cold_hot_fraction = 0.015;
    p.cold_hot_prob = 0.75;
    return p;
  }();
  return preset;
}

const WorkloadParams& pool_pingpong() {
  static const WorkloadParams preset = [] {
    // Random-dominated and store-heavy: half the memory ops are writes, so
    // once the pooled driver folds a share of them onto the hot shared
    // pages, two or more hosts keep writing the same pages and every write
    // finds the page modified by another owner — the worst case for a
    // sharer-tracking directory (recall + ownership handoff per write).
    // Steady (low burst) so contention pressure is continuous.
    const Shape s = {"pool-pingpong", "POOL",
                     /*seq=*/0.05, /*p_hot=*/0.25, /*p_mid=*/0.15,
                     /*store=*/0.50, /*dep=*/0.20, /*max_ipc=*/2.0,
                     /*ipc=*/0.50, /*mpki=*/50,
                     /*mid_kb=*/1152, /*hot_kb=*/128, /*cold_kb=*/16384,
                     /*burst=*/0.2};
    WorkloadParams p = make(s);
    p.streams = 4;
    return p;
  }();
  return preset;
}

const WorkloadParams& pool_shared_skew() {
  static const WorkloadParams preset = [] {
    // Read-mostly with dependent loads: many hosts accumulate on the hot
    // pages' sharer lists, and the occasional store pays a fan-out of clean
    // back-invalidations proportional to the sharer count. The dependency
    // chain makes invalidation-round latency visible in IPC.
    const Shape s = {"pool-shared-skew", "POOL",
                     /*seq=*/0.20, /*p_hot=*/0.25, /*p_mid=*/0.15,
                     /*store=*/0.12, /*dep=*/0.35, /*max_ipc=*/2.0,
                     /*ipc=*/0.60, /*mpki=*/40,
                     /*mid_kb=*/1152, /*hot_kb=*/128, /*cold_kb=*/32768,
                     /*burst=*/0.4};
    WorkloadParams p = make(s);
    p.streams = 6;
    return p;
  }();
  return preset;
}

std::vector<WorkloadParams> interleave_stress_mix(std::uint32_t cores) {
  const char* rotation[] = {"xdev-stride", "stream-add", "mcf", "pagerank"};
  std::vector<WorkloadParams> mix;
  mix.reserve(cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    mix.push_back(find_workload(rotation[c % std::size(rotation)]));
  }
  return mix;
}

std::vector<std::vector<std::string>> make_mixes(std::uint32_t count, std::uint32_t cores,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  const auto names = workload_names();
  std::vector<std::vector<std::string>> mixes;
  mixes.reserve(count);
  for (std::uint32_t m = 0; m < count; ++m) {
    std::vector<std::string> mix;
    mix.reserve(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
      mix.push_back(names[rng.next_below(names.size())]);
    }
    mixes.push_back(std::move(mix));
  }
  return mixes;
}

}  // namespace coaxial::workload
