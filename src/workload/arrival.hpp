// Open-loop arrival processes for service traffic.
//
// The closed-loop generators (generator.hpp) model cores executing
// instruction streams: request rate is a *consequence* of the memory
// system's speed. Service traffic is the opposite regime — requests arrive
// on their own clock regardless of how the memory system is doing, which is
// what exposes queueing tails as load approaches saturation. This module
// provides seeded arrival processes:
//
//  * kPoisson — exponential interarrivals at a constant mean rate; the
//    standard open-loop null model.
//  * kMmpp — 2-state Markov-modulated Poisson process: a calm state and a
//    burst state whose rate is `burst_multiplier` x the calm rate, with
//    exponentially distributed dwell times shaped so the process spends
//    `burst_fraction` of time bursting while preserving the configured
//    mean rate. Bursty arrivals are what distinguish tail latency from
//    mean latency (the noisy-neighbor scenario).
//
// Arrival times accumulate in continuous time and are quantized to cycles
// (floor), so the measured mean rate converges to the configured rate —
// test_open_loop asserts the conservation. Each tenant's generator is an
// independent seeded stream over a disjoint address region; results are
// deterministic in (config, tenant id, seed) and independent of how the
// consumer interleaves draws with simulation.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace coaxial::workload {

enum class ArrivalProcessKind : std::uint8_t { kPoisson, kMmpp };

struct ArrivalConfig {
  ArrivalProcessKind process = ArrivalProcessKind::kPoisson;

  /// Offered load as a fraction of the memory system's aggregate peak
  /// bandwidth (reads + writes). >1 deliberately overcommits — the
  /// injection queue absorbs the excess and the backpressure counters make
  /// the generated-vs-admitted gap visible.
  double offered_load = 0.10;

  /// Stores among generated requests (posted writes: admitted and counted,
  /// but only reads are latency-tracked — writes produce no completion).
  double write_fraction = 0.0;

  // MMPP shape (ignored by kPoisson).
  double burst_multiplier = 4.0;   ///< Burst-state rate / calm-state rate (>= 1).
  double burst_fraction = 0.25;    ///< Long-run fraction of time in the burst state.
  Cycle mean_burst_cycles = 20'000;  ///< Mean dwell per burst episode.

  /// Uniform-random target region, in cache lines (per tenant, disjoint).
  std::uint64_t footprint_lines = 1u << 20;

  /// Throws std::invalid_argument on degenerate values.
  void validate() const;
};

/// One generated service request.
struct ServiceRequest {
  Cycle at = 0;        ///< Arrival cycle (monotone non-decreasing).
  Addr line = 0;       ///< Target line address.
  bool is_write = false;
};

class ArrivalGenerator {
 public:
  /// `lines_per_cycle` is the mean arrival rate (the driver converts the
  /// config's offered_load against the memory system's peak bandwidth).
  /// Draw streams are independent per (tenant_id, seed).
  ArrivalGenerator(const ArrivalConfig& cfg, double lines_per_cycle,
                   std::uint32_t tenant_id, std::uint64_t seed);

  /// Next request of the stream. Arrival cycles never decrease; multiple
  /// requests may share a cycle at high rates.
  ServiceRequest next();

  /// Configured mean rate in lines/cycle (MMPP included: dwell shaping
  /// preserves the mean).
  double mean_rate() const { return mean_rate_; }

  const ArrivalConfig& config() const { return cfg_; }

  /// Base line address of this tenant's disjoint region.
  Addr region_base() const { return base_line_; }

 private:
  double draw_exponential(double rate);
  void enter_state(bool burst);

  ArrivalConfig cfg_;
  Rng rng_;
  double mean_rate_;
  double rate_calm_;   ///< Calm-state rate (== mean for Poisson).
  double rate_burst_;
  Addr base_line_;
  double t_ = 0.0;          ///< Continuous arrival clock.
  bool in_burst_ = false;
  double state_end_ = 0.0;  ///< Continuous time the current MMPP state ends.
};

}  // namespace coaxial::workload
