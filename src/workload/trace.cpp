#include "workload/trace.hpp"

#include <cstring>

namespace coaxial::workload {

namespace {
constexpr char kMagic[8] = {'C', 'X', 'T', 'R', 'A', 'C', 'E', '1'};

std::uint64_t pack(const Instr& ins) {
  std::uint64_t flags = static_cast<std::uint64_t>(ins.kind) & 0x3;
  if (ins.depends_on_prev_load) flags |= 0x4;
  return (ins.pc << 8) | flags;
}

Instr unpack(std::uint64_t addr, std::uint64_t packed) {
  Instr ins;
  ins.addr = addr;
  ins.kind = static_cast<InstrKind>(packed & 0x3);
  ins.depends_on_prev_load = (packed & 0x4) != 0;
  ins.pc = packed >> 8;
  return ins;
}
}  // namespace

TraceWriter::TraceWriter(const std::string& path)
    : out_(path, std::ios::binary) {
  if (!out_) return;
  out_.write(kMagic, sizeof(kMagic));
  const std::uint64_t placeholder = 0;
  out_.write(reinterpret_cast<const char*>(&placeholder), sizeof(placeholder));
}

TraceWriter::~TraceWriter() {
  if (!finished_) finish();
}

void TraceWriter::append(const Instr& ins) {
  if (!out_ || finished_) return;
  const std::uint64_t packed = pack(ins);
  out_.write(reinterpret_cast<const char*>(&ins.addr), sizeof(ins.addr));
  out_.write(reinterpret_cast<const char*>(&packed), sizeof(packed));
  ++count_;
}

void TraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  if (!out_) return;
  out_.seekp(sizeof(kMagic), std::ios::beg);
  out_.write(reinterpret_cast<const char*>(&count_), sizeof(count_));
  out_.close();
}

TraceReplayer::TraceReplayer(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return;
  records_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Record r;
    in.read(reinterpret_cast<char*>(&r.addr), sizeof(r.addr));
    in.read(reinterpret_cast<char*>(&r.packed), sizeof(r.packed));
    if (!in) {
      records_.clear();  // Truncated trace: treat as unreadable.
      return;
    }
    records_.push_back(r);
  }
}

Instr TraceReplayer::next() {
  if (records_.empty()) return Instr{};
  const Record& r = records_[pos_];
  pos_ = (pos_ + 1) % records_.size();
  return unpack(r.addr, r.packed);
}

std::size_t TraceReplayer::next_batch(Instr* out, std::size_t n) {
  if (records_.empty()) {
    for (std::size_t i = 0; i < n; ++i) out[i] = Instr{};
    return n;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Record& r = records_[pos_];
    pos_ = (pos_ + 1) % records_.size();
    out[i] = unpack(r.addr, r.packed);
  }
  return n;
}

std::uint64_t record_trace(Generator gen, std::uint64_t count, const std::string& path) {
  TraceWriter writer(path);
  if (!writer.ok()) return 0;
  for (std::uint64_t i = 0; i < count; ++i) writer.append(gen.next());
  writer.finish();
  return writer.written();
}

}  // namespace coaxial::workload
