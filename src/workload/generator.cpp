#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

namespace coaxial::workload {

namespace {
// Synthetic PC layout. Distinct PCs per access class give the MAP-I
// predictor a learnable signal: stream and cold accesses (LLC-hostile)
// carry different PCs than hot/mid accesses (LLC-friendly).
constexpr Addr kPcAlu = 0x400000;
constexpr Addr kPcStreamBase = 0x401000;
constexpr Addr kPcHotBase = 0x402000;
constexpr Addr kPcMidBase = 0x403000;
constexpr Addr kPcColdBase = 0x404000;
constexpr std::uint32_t kPcsPerClass = 8;

Addr kb_to_bytes(std::uint32_t kb) {
  const Addr b = static_cast<Addr>(kb) * 1024;
  return std::max<Addr>(b & ~static_cast<Addr>(kLineBytes - 1), kLineBytes);
}
}  // namespace

Regions region_layout(const WorkloadParams& params, std::uint32_t core_id) {
  // Disjoint 4 GB-aligned region per core so instances never share lines
  // (rate-mode execution); tiers are disjoint sub-ranges within the region.
  const Addr region = (static_cast<Addr>(core_id) + 1) << 32;
  Regions r;
  r.hot_base = region;
  r.hot_bytes = kb_to_bytes(params.hot_kb);
  r.mid_base = region + (1ull << 28);
  r.mid_bytes = kb_to_bytes(params.mid_kb);
  r.cold_base = region + (1ull << 29);
  r.cold_bytes = kb_to_bytes(params.cold_kb);
  return r;
}

Generator::Generator(const WorkloadParams& params, std::uint32_t core_id, std::uint64_t seed)
    : params_(params),
      rng_(seed * 0x9e3779b97f4a7c15ull + core_id + 1),
      phase_rng_(seed * 0x9e3779b97f4a7c15ull + 0x5eed) {
  const Regions r = region_layout(params, core_id);
  hot_bytes_ = r.hot_bytes;
  mid_bytes_ = r.mid_bytes;
  cold_bytes_ = r.cold_bytes;
  base_hot_ = r.hot_base;
  base_mid_ = r.mid_base;
  base_cold_ = r.cold_base;

  const double b = params_.burstiness;
  mem_frac_burst_ = std::min(0.9, params_.mem_fraction * (1.0 + 2.0 * b));
  mem_frac_calm_ = std::min(0.9, params_.mem_fraction * (1.0 - b));

  if (params_.cold_hot_fraction > 0 && params_.cold_hot_prob > 0) {
    const Addr cold_pages = cold_bytes_ / 4096;
    warm_pages_ = static_cast<Addr>(params_.cold_hot_fraction *
                                    static_cast<double>(cold_pages));
    // Scatter domain: largest power of two <= cold_pages, so the odd-
    // multiplier hash below is a bijection over it.
    Addr pow2 = 1;
    while (pow2 * 2 <= cold_pages) pow2 *= 2;
    cold_page_mask_ = pow2 - 1;
    if (cold_pages == 0 || warm_pages_ == 0) warm_pages_ = 0;
  }

  const std::uint32_t n_streams = std::max<std::uint32_t>(1, params_.streams);
  stream_pos_.reserve(n_streams);
  for (std::uint32_t s = 0; s < n_streams; ++s) {
    stream_pos_.push_back(rng_.next_below(cold_bytes_) & ~static_cast<Addr>(7));
  }
}

Instr Generator::next() {
  // Burst/gap phase machine: mean burst 3000 instructions, mean gap 6000,
  // so bursts cover 1/3 of instructions.
  if (phase_left_ == 0) {
    in_burst_ = !in_burst_;
    const double mean = in_burst_ ? 3000.0 : 6000.0;
    phase_left_ =
        1 + static_cast<std::uint32_t>(-mean * std::log(1.0 - phase_rng_.next_double()));
  }
  --phase_left_;
  const double mem_frac = in_burst_ ? mem_frac_burst_ : mem_frac_calm_;

  Instr ins;
  if (!rng_.chance(mem_frac)) {
    ins.kind = InstrKind::kAlu;
    ins.pc = kPcAlu;
    return ins;
  }

  const bool is_store = rng_.chance(params_.store_fraction);
  ins.kind = is_store ? InstrKind::kStore : InstrKind::kLoad;

  if (rng_.chance(params_.seq_prob)) {
    // Sequential stream through the cold tier, 8-byte word granularity.
    const std::uint32_t s = next_stream_;
    next_stream_ = (next_stream_ + 1) % static_cast<std::uint32_t>(stream_pos_.size());
    Addr pos = stream_pos_[s] + 8;
    if (pos >= cold_bytes_) pos = 0;
    stream_pos_[s] = pos;
    ins.addr = base_cold_ + pos;
    ins.pc = kPcStreamBase + 8 * (s % kPcsPerClass);
  } else {
    const double r = rng_.next_double();
    Addr base, span, pc_base;
    if (r < params_.p_hot) {
      base = base_hot_;
      span = hot_bytes_;
      pc_base = kPcHotBase;
    } else if (r < params_.p_hot + params_.p_mid) {
      base = base_mid_;
      span = mid_bytes_;
      pc_base = kPcMidBase;
    } else {
      base = base_cold_;
      span = cold_bytes_;
      pc_base = kPcColdBase;
      if (warm_pages_ > 0 && rng_.chance(params_.cold_hot_prob)) {
        // Skewed cold access: pick one of the warm pages and scatter it
        // over the cold tier with an odd-multiplier bijection, so the warm
        // set is page-sparse (a tiering policy must track pages, not
        // ranges, to capture it).
        const Addr widx = rng_.next_below(warm_pages_);
        const Addr page = (widx * 0x9e3779b97f4a7c15ull) & cold_page_mask_;
        ins.addr = base_cold_ + page * 4096 +
                   (rng_.next_below(4096) & ~static_cast<Addr>(7));
        ins.pc = pc_base + 8 * rng_.next_below(kPcsPerClass);
        if (!is_store && saw_load_ && rng_.chance(params_.dep_prob)) {
          ins.depends_on_prev_load = true;
        }
        if (!is_store) saw_load_ = true;
        return ins;
      }
    }
    ins.addr = base + (rng_.next_below(span) & ~static_cast<Addr>(7));
    ins.pc = pc_base + 8 * rng_.next_below(kPcsPerClass);
  }

  // Pointer-chase dependency: the load consumes the most recent load's
  // result (intervening ALU work does not break the chain).
  if (!is_store && saw_load_ && rng_.chance(params_.dep_prob)) {
    ins.depends_on_prev_load = true;
  }
  if (!is_store) saw_load_ = true;
  return ins;
}

std::size_t Generator::next_batch(Instr* out, std::size_t n) {
  // next() is defined in this TU, so the loop body inlines; the only
  // cross-TU cost is one call for the whole chunk.
  for (std::size_t i = 0; i < n; ++i) out[i] = next();
  return n;
}

}  // namespace coaxial::workload
