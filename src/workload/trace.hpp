// Instruction-trace record / replay.
//
// The paper's methodology replays recorded execution traces through the
// simulator. This module provides the equivalent facility: any instruction
// source (including the synthetic generators) can be recorded to a compact
// binary trace, and a TraceReplayer plays a trace back as an instruction
// source — so users with real traces can run them through COAXIAL.
//
// Format: a 16-byte header ("CXTRACE1" + u64 instruction count), then one
// 16-byte record per instruction:
//   u64 addr | u64 packed(pc<<8 | flags)   flags: bit0-1 kind, bit2 dep.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "workload/generator.hpp"

namespace coaxial::workload {

/// Abstract instruction source; Generator and TraceReplayer both satisfy
/// it so the simulation layer can consume either.
class InstrSource {
 public:
  virtual ~InstrSource() = default;
  virtual Instr next() = 0;

  /// Fill `out` with the next `n` instructions of the stream; returns the
  /// count produced (always `n` for the infinite built-in sources). The
  /// core's fetch stage consumes instructions through this batched entry
  /// point to amortize per-instruction virtual dispatch; overrides must
  /// produce exactly the sequence repeated next() calls would.
  virtual std::size_t next_batch(Instr* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = next();
    return n;
  }
};

/// Adapts a synthetic Generator to the InstrSource interface.
class GeneratorSource final : public InstrSource {
 public:
  explicit GeneratorSource(Generator gen) : gen_(std::move(gen)) {}
  Instr next() override { return gen_.next(); }
  std::size_t next_batch(Instr* out, std::size_t n) override {
    return gen_.next_batch(out, n);
  }

 private:
  Generator gen_;
};

/// Writes instructions to a binary trace file.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  bool ok() const { return static_cast<bool>(out_); }
  void append(const Instr& ins);
  std::uint64_t written() const { return count_; }

  /// Flushes the header (with the final count) and closes the file.
  void finish();

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

/// Replays a binary trace, looping back to the start when exhausted (the
/// paper replays fixed-length regions; looping keeps long runs fed).
class TraceReplayer final : public InstrSource {
 public:
  explicit TraceReplayer(const std::string& path);

  bool ok() const { return !records_.empty(); }
  std::uint64_t size() const { return records_.size(); }
  Instr next() override;
  std::size_t next_batch(Instr* out, std::size_t n) override;

 private:
  struct Record {
    std::uint64_t addr;
    std::uint64_t packed;
  };
  std::vector<Record> records_;
  std::size_t pos_ = 0;
};

/// Convenience: record `count` instructions of a generator to `path`.
/// Returns the number written (0 on I/O failure).
std::uint64_t record_trace(Generator gen, std::uint64_t count, const std::string& path);

}  // namespace coaxial::workload
