// 2D-mesh NoC latency model (Table III: 3 cycles per hop).
//
// Twelve tiles (4 columns x 3 rows) each host a core and an LLC slice.
// Memory-controller ports sit on the mesh perimeter and are assigned
// round-robin to edge tiles. The model is latency-only: hop count is the
// Manhattan distance (XY routing); link contention is not modelled (queuing
// is captured at the memory controllers and CXL links — see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace coaxial::noc {

class Mesh {
 public:
  Mesh(std::uint32_t cols = 4, std::uint32_t rows = 3, Cycle cycles_per_hop = 3)
      : cols_(cols), rows_(rows), per_hop_(cycles_per_hop) {}

  std::uint32_t tiles() const { return cols_ * rows_; }

  /// Manhattan distance between two tiles under XY routing.
  std::uint32_t hops(std::uint32_t a, std::uint32_t b) const {
    const std::int32_t ax = static_cast<std::int32_t>(a % cols_);
    const std::int32_t ay = static_cast<std::int32_t>(a / cols_);
    const std::int32_t bx = static_cast<std::int32_t>(b % cols_);
    const std::int32_t by = static_cast<std::int32_t>(b / cols_);
    return static_cast<std::uint32_t>((ax > bx ? ax - bx : bx - ax) +
                                      (ay > by ? ay - by : by - ay));
  }

  Cycle latency(std::uint32_t a, std::uint32_t b) const { return per_hop_ * hops(a, b); }

  /// Home LLC slice for a line: static address-interleaved hash.
  std::uint32_t home_tile(Addr line) const {
    // Mix upper bits so strided streams spread across slices.
    const std::uint64_t h = (line ^ (line >> 7) ^ (line >> 13)) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::uint32_t>(h >> 32) % tiles();
  }

  /// Tile hosting memory port `port` of `total_ports`, spread evenly over
  /// the perimeter so average core-to-MC distance is realistic.
  std::uint32_t memory_tile(std::uint32_t port, std::uint32_t total_ports) const {
    const std::vector<std::uint32_t> edge = edge_tiles();
    if (total_ports == 0) total_ports = 1;
    const std::size_t idx =
        (static_cast<std::size_t>(port) * edge.size() / total_ports) % edge.size();
    return edge[idx];
  }

  Cycle per_hop() const { return per_hop_; }

 private:
  std::vector<std::uint32_t> edge_tiles() const {
    std::vector<std::uint32_t> e;
    for (std::uint32_t t = 0; t < tiles(); ++t) {
      const std::uint32_t x = t % cols_;
      const std::uint32_t y = t / cols_;
      if (x == 0 || y == 0 || x == cols_ - 1 || y == rows_ - 1) e.push_back(t);
    }
    return e;
  }

  std::uint32_t cols_;
  std::uint32_t rows_;
  Cycle per_hop_;
};

}  // namespace coaxial::noc
