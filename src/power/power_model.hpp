// System power / energy-efficiency model (Table V, §VI-F).
//
// Component structure follows the paper for a 144-core Sierra-Forest-class
// server (500 W TDP): a fixed core+L1+L2 block, LLC power scaling with
// capacity (Cacti-derived affine fit through the paper's 288 MB -> 94 W and
// 144 MB -> 51 W points), 1.1 W per DDR5 MC+PHY, 0.2 W per PCIe-5.0 lane
// for CXL interfaces, and DRAM DIMM power from activity counters. The
// simulated 12-core slice's activity is scaled to the full chip.
#pragma once

#include <cstdint>

#include "coaxial/configs.hpp"
#include "dram/dram_power.hpp"

namespace coaxial::power {

struct PowerParams {
  double core_l1_l2_w = 393.0;       ///< 144 cores incl. private caches.
  double ddr_mc_phy_w = 1.083;       ///< Per DDR5 channel (13 W / 12).
  double llc_w_slope_per_mb = 0.2986;
  double llc_w_intercept = 8.0;
  double pcie_w_per_lane = 0.2;
  dram::PowerParams dram;
  std::uint32_t full_chip_cores = 144;
};

struct PowerBreakdown {
  double core_w = 0;
  double ddr_mc_w = 0;
  double llc_w = 0;
  double cxl_interface_w = 0;
  double dram_dimm_w = 0;

  double total_w() const {
    return core_w + ddr_mc_w + llc_w + cxl_interface_w + dram_dimm_w;
  }
};

struct EnergyMetrics {
  PowerBreakdown power;
  double cpi = 0;
  double perf_per_watt = 0;  ///< 1 / (power * CPI), unnormalised.
  double edp = 0;            ///< power * CPI^2 (lower is better).
  double ed2p = 0;           ///< power * CPI^3 (lower is better).
};

/// Compute the full-chip power breakdown for a configuration whose 12-core
/// slice ran with the given aggregated DRAM activity over `elapsed_cycles`.
PowerBreakdown compute_power(const sys::SystemConfig& cfg,
                             const dram::ControllerStats& slice_dram_stats,
                             Cycle elapsed_cycles, const PowerParams& params = {});

/// Energy metrics from a power breakdown and the measured average CPI.
EnergyMetrics compute_energy(const PowerBreakdown& power, double cpi);

}  // namespace coaxial::power
