#include "power/power_model.hpp"

namespace coaxial::power {

PowerBreakdown compute_power(const sys::SystemConfig& cfg,
                             const dram::ControllerStats& slice_dram_stats,
                             Cycle elapsed_cycles, const PowerParams& params) {
  PowerBreakdown b;
  const double scale = static_cast<double>(params.full_chip_cores) /
                       static_cast<double>(cfg.uarch.cores);

  b.core_w = params.core_l1_l2_w;

  // DDR channels live on the Type-3 devices, so a switched fabric scales
  // them with the device count; CXL interface power below stays tied to
  // the host's root-port lanes (the switch draws from the rack budget).
  const std::uint32_t slice_ddr_channels = cfg.topology == sys::Topology::kDirectDdr
                                               ? cfg.ddr_channels
                                               : cfg.cxl_devices() * cfg.ddr_per_device;
  const double full_ddr_channels = slice_ddr_channels * scale;
  b.ddr_mc_w = full_ddr_channels * params.ddr_mc_phy_w;

  const double full_llc_mb =
      static_cast<double>(cfg.uarch.llc_mb_per_core) * params.full_chip_cores;
  b.llc_w = params.llc_w_intercept + params.llc_w_slope_per_mb * full_llc_mb;

  if (cfg.topology == sys::Topology::kCxl) {
    // 8 full-duplex lane pairs per x8 channel (asym repartitions the same
    // 32 pins, so the lane-pair count — and interface power — is unchanged).
    const double full_lanes = 8.0 * cfg.cxl_channels * scale;
    b.cxl_interface_w = full_lanes * params.pcie_w_per_lane;
  }

  // One DIMM per DDR channel; scale the slice's DRAM activity to the chip.
  dram::ControllerStats chip = slice_dram_stats;
  chip.activates = static_cast<std::uint64_t>(chip.activates * scale);
  chip.reads_done = static_cast<std::uint64_t>(chip.reads_done * scale);
  chip.writes_done = static_cast<std::uint64_t>(chip.writes_done * scale);
  chip.refreshes = static_cast<std::uint64_t>(chip.refreshes * scale);
  b.dram_dimm_w = dram::dram_power_w(chip, static_cast<std::uint32_t>(full_ddr_channels),
                                     elapsed_cycles, params.dram);
  return b;
}

EnergyMetrics compute_energy(const PowerBreakdown& power, double cpi) {
  EnergyMetrics m;
  m.power = power;
  m.cpi = cpi;
  const double w = power.total_w();
  m.perf_per_watt = (w > 0 && cpi > 0) ? 1.0 / (w * cpi) : 0.0;
  m.edp = w * cpi * cpi;
  m.ed2p = w * cpi * cpi * cpi;
  return m;
}

}  // namespace coaxial::power
