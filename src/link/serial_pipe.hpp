// Analytic store-and-forward serialising pipe — the per-direction core of
// every fabric segment (CXL root-port links and switch egress ports alike).
//
// A message occupies the pipe for its serialisation time (size / goodput)
// in FIFO order, then spends a fixed latency (port traversals) before
// arriving at the far side. Because the pipe is FIFO, delivery times are
// computed analytically at send time — no per-cycle ticking. Backpressure
// is modelled by refusing new messages once the accumulated serialisation
// backlog exceeds a queue bound, with an exact credit-free cycle so the
// event-driven scheduler can skip blocked cycles.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace coaxial::link {

struct DirectionStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t busy_cycles = 0;   ///< Cycles the serialiser was occupied.
  double queue_delay_sum = 0.0;    ///< Cycles messages waited for the pipe.
};

class SerialPipe {
 public:
  SerialPipe(double goodput_gbps, Cycle fixed_latency_cycles, Cycle max_backlog_cycles)
      : goodput_(goodput_gbps), fixed_latency_(fixed_latency_cycles),
        max_backlog_(max_backlog_cycles) {}

  /// True if the backlog leaves room for another message.
  bool can_send(Cycle now) const { return backlog(now) < max_backlog_; }

  /// Earliest cycle (>= now) at which the pipe has a free credit. The
  /// backlog only decays with time between sends, so this is exact until
  /// the next send.
  Cycle credit_cycle(Cycle now) const {
    if (backlog(now) < max_backlog_) return now;
    return busy_until_ - max_backlog_ + 1;  // backlog >= max implies this > now.
  }

  /// Send a message. Returns the cycle it is delivered at the far side.
  Cycle send(std::uint32_t bytes, Cycle now) {
    // Flit-credit conservation: admission requires a free credit, i.e. the
    // accumulated backlog must be under the bound at send time. A violation
    // means a caller bypassed can_send().
    if (backlog(now) >= max_backlog_) check_violation("send without credit");
    const Cycle ser = serialization_cycles(goodput_, bytes);
    const Cycle start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + ser;
    const Cycle occupancy = backlog(now);
    if (occupancy > max_backlog_seen_) max_backlog_seen_ = occupancy;
    // Queue-occupancy bound: admitting one message may overshoot the bound
    // by at most that message's own serialisation time.
    if (occupancy > max_backlog_ + ser) check_violation("occupancy bound exceeded");
    ++stats_.messages;
    stats_.bytes += bytes;
    stats_.busy_cycles += ser;
    stats_.queue_delay_sum += static_cast<double>(start - now);
    const Cycle delivered = busy_until_ + fixed_latency_;
    if (delivered <= now) check_violation("non-causal delivery");
    return delivered;
  }

  /// Fixed (unloaded) one-way latency for a message of `bytes`:
  /// serialisation + the pipe's fixed latency.
  Cycle unloaded_latency(std::uint32_t bytes) const {
    return serialization_cycles(goodput_, bytes) + fixed_latency_;
  }

  /// Current serialisation backlog in cycles.
  Cycle backlog(Cycle now) const { return busy_until_ > now ? busy_until_ - now : 0; }

  const DirectionStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  double goodput_gbps() const { return goodput_; }
  Cycle fixed_latency() const { return fixed_latency_; }
  Cycle max_backlog() const { return max_backlog_; }

  /// Violations of the credit/occupancy protocol (always zero when callers
  /// gate on can_send()) and the highest backlog observed.
  std::uint64_t violations() const { return violations_; }
  Cycle occupancy_high_water() const { return max_backlog_seen_; }

  /// Register the pipe's traffic counters under `s`. The pipe must outlive
  /// the registry and stay at a stable address (the probes capture `this`).
  void register_stats(const obs::Scope& s) const {
    const DirectionStats& st = stats_;
    s.expose_counter("messages", [&st] { return st.messages; });
    s.expose_counter("bytes", [&st] { return st.bytes; });
    s.expose_counter("busy_cycles", [&st] { return st.busy_cycles; });
    s.expose("queue_delay_sum", [&st] { return st.queue_delay_sum; });
  }

 private:
  void check_violation(const char* what) {
    ++violations_;
#if defined(COAXIAL_ASSERT_TIMING)
    std::fprintf(stderr, "serial pipe invariant violated: %s\n", what);
    std::abort();
#else
    (void)what;
#endif
  }

  double goodput_;
  Cycle fixed_latency_;
  Cycle max_backlog_;
  Cycle busy_until_ = 0;
  DirectionStats stats_;
  std::uint64_t violations_ = 0;
  Cycle max_backlog_seen_ = 0;
};

/// Utilisation of one direction over `elapsed` cycles, in [0, 1].
double direction_utilization(const DirectionStats& st, Cycle elapsed);

}  // namespace coaxial::link
