// Analytic store-and-forward serialising pipe — the per-direction core of
// every fabric segment (CXL root-port links and switch egress ports alike).
//
// A message occupies the pipe for its serialisation time (size / goodput)
// in FIFO order, then spends a fixed latency (port traversals) before
// arriving at the far side. Because the pipe is FIFO, delivery times are
// computed analytically at send time — no per-cycle ticking. Backpressure
// is modelled by refusing new messages once the accumulated serialisation
// backlog exceeds a queue bound, with an exact credit-free cycle so the
// event-driven scheduler can skip blocked cycles.
//
// RAS (optional, armed via arm_faults): each transmission may be corrupted
// by a deterministic per-segment CRC draw; corrupted transmissions are
// replayed from the link-layer retry buffer — each replay re-serialises the
// message and adds a retry latency premium to the pipe's occupancy — and a
// message whose replay budget is exhausted is delivered *poisoned*. A
// down-trained pipe serialises at half goodput from the configured cycle
// on. All of this only lengthens busy_until_, so the credit math (can_send
// / credit_cycle / backlog) is unchanged and stays exact.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "ras/fault_injector.hpp"

namespace coaxial::link {

struct DirectionStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t busy_cycles = 0;   ///< Cycles the serialiser was occupied.
  double queue_delay_sum = 0.0;    ///< Cycles messages waited for the pipe.
};

/// Result of a send: the delivery cycle at the far side, plus whether the
/// message exhausted its link-layer replay budget and arrives poisoned.
/// Implicitly converts to Cycle so fault-oblivious callers keep working.
struct SendResult {
  Cycle at = 0;
  bool poisoned = false;
  constexpr operator Cycle() const { return at; }  // NOLINT(google-explicit-constructor)
};

class SerialPipe {
 public:
  SerialPipe(double goodput_gbps, Cycle fixed_latency_cycles,
             Cycle max_backlog_cycles, std::string name = "pipe")
      : goodput_(goodput_gbps), fixed_latency_(fixed_latency_cycles),
        max_backlog_(max_backlog_cycles), name_(std::move(name)) {}

  /// Arm deterministic fault injection. The segment's draw stream is keyed
  /// by the plan seed and the pipe's name, so arming order is irrelevant.
  /// A plan without link faults leaves the pipe untouched.
  void arm_faults(const ras::FaultPlan& plan) {
    plan.validate();
    if (!plan.link_faults()) return;
    faults_ = std::make_unique<ras::SegmentFaults>(plan, name_);
    downtrain_at_ = plan.downtrain_at_cycle;
  }

  /// True if the backlog leaves room for another message.
  bool can_send(Cycle now) const { return backlog(now) < max_backlog_; }

  /// Earliest cycle (>= now) at which the pipe has a free credit. The
  /// backlog only decays with time between sends, so this is exact until
  /// the next send.
  Cycle credit_cycle(Cycle now) const {
    if (backlog(now) < max_backlog_) return now;
    return busy_until_ - max_backlog_ + 1;  // backlog >= max implies this > now.
  }

  /// Send a message. Returns the cycle it is delivered at the far side and
  /// whether it arrives poisoned (replay budget exhausted).
  SendResult send(std::uint32_t bytes, Cycle now) {
    COAXIAL_PROF_SCOPE(kLinkSerialize);
    // Flit-credit conservation: admission requires a free credit, i.e. the
    // accumulated backlog must be under the bound at send time. A violation
    // means a caller bypassed can_send().
    if (backlog(now) >= max_backlog_) check_violation("send without credit");
    const Cycle ser = ser_cycles(bytes, now);
    Cycle occupancy_cycles = ser;
    bool poisoned = false;
    if (faults_) {
      const std::uint32_t budget = faults_->plan().retry_budget;
      // Transmit up to 1 + budget times; the first clean transmission
      // delivers the message. Every corrupted transmission costs a full
      // re-serialisation plus the retry premium (replay-ack round trip).
      std::uint32_t corrupted = 0;
      while (corrupted <= budget && faults_->corrupt(bytes, now)) ++corrupted;
      if (corrupted > 0) {
        const std::uint32_t replays = corrupted <= budget ? corrupted : budget;
        faults_->counters.crc_errors += corrupted;
        faults_->counters.replays += replays;
        if (corrupted > budget) {
          poisoned = true;
          ++faults_->counters.poisons_injected;
        }
        occupancy_cycles =
            ser * (1 + replays) + faults_->plan().retry_premium_cycles() * replays;
      }
      if (degraded(now)) faults_->counters.degraded_cycles += occupancy_cycles;
    }
    const Cycle start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + occupancy_cycles;
    const Cycle occupancy = backlog(now);
    if (occupancy > max_backlog_seen_) max_backlog_seen_ = occupancy;
    // Queue-occupancy bound: admitting one message may overshoot the bound
    // by at most that message's own occupancy (serialisation + replays).
    if (occupancy > max_backlog_ + occupancy_cycles)
      check_violation("occupancy bound exceeded");
    ++stats_.messages;
    stats_.bytes += bytes;
    stats_.busy_cycles += occupancy_cycles;
    stats_.queue_delay_sum += static_cast<double>(start - now);
    const Cycle delivered = busy_until_ + fixed_latency_;
    if (delivered <= now) check_violation("non-causal delivery");
    return {delivered, poisoned};
  }

  /// Fixed (unloaded, fault-free) one-way latency for a message of `bytes`:
  /// nominal serialisation + the pipe's fixed latency.
  Cycle unloaded_latency(std::uint32_t bytes) const {
    return serialization_cycles(goodput_, bytes) + fixed_latency_;
  }

  /// Current serialisation backlog in cycles.
  Cycle backlog(Cycle now) const { return busy_until_ > now ? busy_until_ - now : 0; }

  const DirectionStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = {};
    // RAS event counters reset with the other stats; the draw counter is
    // simulation state and must keep advancing.
    if (faults_) faults_->counters = {};
  }

  double goodput_gbps() const { return goodput_; }
  Cycle fixed_latency() const { return fixed_latency_; }
  Cycle max_backlog() const { return max_backlog_; }
  const std::string& name() const { return name_; }

  /// True once the pipe has down-trained (serialises at half goodput).
  bool degraded(Cycle now) const { return faults_ && now >= downtrain_at_; }

  /// The segment's RAS counters, or nullptr when faults are not armed.
  const ras::RasCounters* ras() const {
    return faults_ ? &faults_->counters : nullptr;
  }

  /// Violations of the credit/occupancy protocol (always zero when callers
  /// gate on can_send()) and the highest backlog observed.
  std::uint64_t violations() const { return violations_; }
  Cycle occupancy_high_water() const { return max_backlog_seen_; }

  /// Register the pipe's traffic counters under `s`. The pipe must outlive
  /// the registry and stay at a stable address (the probes capture `this`).
  void register_stats(const obs::Scope& s) const {
    const DirectionStats& st = stats_;
    s.expose_counter("messages", [&st] { return st.messages; });
    s.expose_counter("bytes", [&st] { return st.bytes; });
    s.expose_counter("busy_cycles", [&st] { return st.busy_cycles; });
    s.expose("queue_delay_sum", [&st] { return st.queue_delay_sum; });
  }

 private:
  /// Serialisation cycles at `now`, accounting for down-training: a
  /// down-trained lane runs at half its nominal goodput.
  Cycle ser_cycles(std::uint32_t bytes, Cycle now) const {
    return serialization_cycles(degraded(now) ? goodput_ * 0.5 : goodput_,
                                bytes);
  }

  void check_violation(const char* what) {
    ++violations_;
#if defined(COAXIAL_ASSERT_TIMING)
    std::fprintf(stderr, "serial pipe invariant violated: %s (segment '%s')\n",
                 what, name_.c_str());
    std::abort();
#else
    (void)what;
#endif
  }

  double goodput_;
  Cycle fixed_latency_;
  Cycle max_backlog_;
  std::string name_;
  Cycle busy_until_ = 0;
  DirectionStats stats_;
  std::uint64_t violations_ = 0;
  Cycle max_backlog_seen_ = 0;
  std::unique_ptr<ras::SegmentFaults> faults_;
  Cycle downtrain_at_ = kNoCycle;
};

/// Utilisation of one direction over `elapsed` cycles, in [0, 1].
double direction_utilization(const DirectionStats& st, Cycle elapsed);

}  // namespace coaxial::link
