// CXL channel lane configurations and the goodput math from §IV-A / §IV-D.
//
// An x8 PCIe-5.0 channel uses 32 processor pins (4 per lane) and delivers
// 32 GB/s of raw bandwidth per direction. After PCIe/CXL header overheads
// the realised goodput is 26 GB/s in the DRAM-to-CPU (RX) direction and
// 13 GB/s CPU-to-DRAM (TX) [Sharma, HOTI'22]. The asymmetric variant
// re-partitions the same 32 pins as 20 RX + 12 TX for 32/10 GB/s goodput.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "common/validate.hpp"

namespace coaxial::link {

struct LaneConfig {
  double rx_goodput_gbps = 26.0;  ///< Device-to-CPU data goodput (read data).
  double tx_goodput_gbps = 13.0;  ///< CPU-to-device data goodput (writes, requests).
  double port_latency_ns = 12.5;  ///< Per port traversal (flit pack, encode, ...).
  std::uint32_t pins = 32;
  std::uint32_t rx_lanes = 8;
  std::uint32_t tx_lanes = 8;

  /// Standard x8 CXL channel (PCIe 5.0, 1:1 lanes).
  static LaneConfig x8(double port_ns = 12.5) {
    LaneConfig c;
    c.port_latency_ns = port_ns;
    return c;
  }

  /// x4 channel: half the lanes and goodput of x8 (16 pins). Useful for
  /// exploring finer-grained channel provisioning than the paper's default.
  static LaneConfig x4(double port_ns = 12.5) {
    LaneConfig c;
    c.rx_goodput_gbps = 13.0;
    c.tx_goodput_gbps = 6.5;
    c.pins = 16;
    c.rx_lanes = 4;
    c.tx_lanes = 4;
    c.port_latency_ns = port_ns;
    return c;
  }

  /// x16 channel: double the lanes and goodput of x8 (64 pins).
  static LaneConfig x16(double port_ns = 12.5) {
    LaneConfig c;
    c.rx_goodput_gbps = 52.0;
    c.tx_goodput_gbps = 26.0;
    c.pins = 64;
    c.rx_lanes = 16;
    c.tx_lanes = 16;
    c.port_latency_ns = port_ns;
    return c;
  }

  /// Multiplexed (switch-shared) x8 device, as in the paper's 70 ns
  /// discussion: an extra switch hop adds ~5 ns per traversal.
  static LaneConfig x8_switched(double extra_hop_ns = 5.0) {
    return x8(12.5 + extra_hop_ns);
  }

  /// CXL-asym: 20 RX / 12 TX pins within the same 32-pin budget (§IV-D).
  static LaneConfig x8_asym(double port_ns = 12.5) {
    LaneConfig c;
    c.rx_goodput_gbps = 32.0;
    c.tx_goodput_gbps = 10.0;
    c.rx_lanes = 10;
    c.tx_lanes = 6;
    c.port_latency_ns = port_ns;
    return c;
  }

  /// Throws std::invalid_argument on degenerate values (NaN/zero/negative
  /// goodputs, non-finite port latency). Called by CxlLink and Fabric before
  /// any pipe is built.
  void validate() const {
    namespace v = coaxial::validate;
    const char* o = "link::LaneConfig";
    v::require_positive(o, "rx_goodput_gbps", rx_goodput_gbps);
    v::require_positive(o, "tx_goodput_gbps", tx_goodput_gbps);
    v::require_non_negative(o, "port_latency_ns", port_latency_ns);
  }

  Cycle port_latency_cycles() const { return ns_to_cycles(port_latency_ns); }

  /// Cycles to serialise a 64 B line onto the RX pipe (2.5 ns for x8).
  Cycle rx_line_cycles() const { return serialization_cycles(rx_goodput_gbps, kLineBytes); }

  /// Cycles to serialise a 64 B line onto the TX pipe (5.5 ns for x8).
  Cycle tx_line_cycles() const { return serialization_cycles(tx_goodput_gbps, kLineBytes); }

  /// Minimum end-to-end latency a read adds: 4 port traversals plus the
  /// serialisation of the 64 B response on RX (52.5 ns for x8 at 12.5 ns).
  double read_overhead_ns() const {
    return 4.0 * port_latency_ns + cycles_to_ns(rx_line_cycles());
  }
};

/// Message sizes on the wire. Goodput figures already absorb per-flit
/// headers, so a read request is modelled as a single small flit.
inline constexpr std::uint32_t kReadRequestBytes = 16;
inline constexpr std::uint32_t kWriteMessageBytes = kLineBytes;
inline constexpr std::uint32_t kReadResponseBytes = kLineBytes;

}  // namespace coaxial::link
