// Full-duplex CXL channel model.
//
// Each direction is an independent store-and-forward serialising pipe: a
// message occupies the pipe for its serialisation time (size / goodput) in
// FIFO order, then spends two fixed port traversals (egress + ingress,
// 12.5 ns each by default) before arriving at the far side. Because the
// pipe is FIFO, delivery times can be computed analytically at send time —
// no per-cycle ticking. Backpressure is modelled by refusing new messages
// when the accumulated serialisation backlog exceeds a queue bound.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "link/lane_config.hpp"

namespace coaxial::link {

struct DirectionStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t busy_cycles = 0;   ///< Cycles the serialiser was occupied.
  double queue_delay_sum = 0.0;    ///< Cycles messages waited for the pipe.
};

class CxlLink {
 public:
  explicit CxlLink(const LaneConfig& cfg, Cycle max_backlog_cycles = 512)
      : cfg_(cfg), max_backlog_(max_backlog_cycles) {}

  /// True if the direction's backlog leaves room for another message.
  bool can_send_tx(Cycle now) const { return backlog(tx_busy_until_, now) < max_backlog_; }
  bool can_send_rx(Cycle now) const { return backlog(rx_busy_until_, now) < max_backlog_; }

  /// Send CPU->device. Returns the cycle the message is delivered.
  Cycle send_tx(std::uint32_t bytes, Cycle now) {
    return send(tx_busy_until_, tx_stats_, cfg_.tx_goodput_gbps, bytes, now);
  }

  /// Send device->CPU. Returns the cycle the message is delivered.
  Cycle send_rx(std::uint32_t bytes, Cycle now) {
    return send(rx_busy_until_, rx_stats_, cfg_.rx_goodput_gbps, bytes, now);
  }

  const DirectionStats& tx_stats() const { return tx_stats_; }
  const DirectionStats& rx_stats() const { return rx_stats_; }
  const LaneConfig& config() const { return cfg_; }

  /// Fixed (unloaded) one-way latency component for a message of `bytes`:
  /// serialisation + two port traversals.
  Cycle unloaded_one_way(std::uint32_t bytes, double goodput) const {
    return serialization_cycles(goodput, bytes) + 2 * cfg_.port_latency_cycles();
  }

  void reset_stats() {
    tx_stats_ = {};
    rx_stats_ = {};
  }

 private:
  static Cycle backlog(Cycle busy_until, Cycle now) {
    return busy_until > now ? busy_until - now : 0;
  }

  Cycle send(Cycle& busy_until, DirectionStats& st, double goodput, std::uint32_t bytes,
             Cycle now) {
    const Cycle ser = serialization_cycles(goodput, bytes);
    const Cycle start = busy_until > now ? busy_until : now;
    busy_until = start + ser;
    ++st.messages;
    st.bytes += bytes;
    st.busy_cycles += ser;
    st.queue_delay_sum += static_cast<double>(start - now);
    return busy_until + 2 * cfg_.port_latency_cycles();
  }

  LaneConfig cfg_;
  Cycle max_backlog_;
  Cycle tx_busy_until_ = 0;
  Cycle rx_busy_until_ = 0;
  DirectionStats tx_stats_;
  DirectionStats rx_stats_;
};

/// Utilisation of one direction over `elapsed` cycles, in [0, 1].
double direction_utilization(const DirectionStats& st, Cycle elapsed);

}  // namespace coaxial::link
