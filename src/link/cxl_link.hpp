// Full-duplex CXL channel model.
//
// Each direction is an independent store-and-forward serialising pipe
// (link::SerialPipe): a message occupies the pipe for its serialisation
// time (size / goodput) in FIFO order, then spends two fixed port
// traversals (egress + ingress, 12.5 ns each by default) before arriving
// at the far side. Because the pipe is FIFO, delivery times can be
// computed analytically at send time — no per-cycle ticking. Backpressure
// is modelled by refusing new messages when the accumulated serialisation
// backlog exceeds a queue bound.
//
// With a fault plan armed (arm_faults), both directions inject CRC errors,
// replay corrupted flits and down-train per the plan; send results then
// carry a poisoned flag alongside the delivery cycle.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "common/validate.hpp"
#include "link/lane_config.hpp"
#include "link/serial_pipe.hpp"
#include "obs/metrics.hpp"
#include "ras/fault_plan.hpp"

namespace coaxial::link {

class CxlLink {
 public:
  /// `scope`, when valid, registers per-direction traffic counters plus the
  /// flit-credit / queue-occupancy invariant counters at construction, and
  /// names the link's pipes (for fault streams and timing-abort
  /// diagnostics). An inert scope yields the generic name "cxl-link".
  explicit CxlLink(const LaneConfig& cfg, Cycle max_backlog_cycles = 512,
                   obs::Scope scope = {}, std::string name = {})
      : cfg_((cfg.validate(),
              validate::require_nonzero("link::CxlLink", "max_backlog_cycles",
                                        max_backlog_cycles),
              cfg)),
        tx_(cfg.tx_goodput_gbps, 2 * cfg.port_latency_cycles(),
            max_backlog_cycles, pipe_name(name, scope, "tx")),
        rx_(cfg.rx_goodput_gbps, 2 * cfg.port_latency_cycles(),
            max_backlog_cycles, pipe_name(name, scope, "rx")) {
    if (scope.valid()) {
      tx_.register_stats(scope.sub("tx"));
      rx_.register_stats(scope.sub("rx"));
      const obs::Scope inv = scope.sub("invariants");
      inv.expose_counter("violations", [this] { return invariant_violations(); });
      inv.expose_counter("occupancy_high_water",
                         [this] { return static_cast<std::uint64_t>(occupancy_high_water()); });
      inv.expose_counter("occupancy_bound",
                         [this] { return static_cast<std::uint64_t>(tx_.max_backlog()); });
    }
  }

  /// Arm deterministic fault injection on both directions (no-op for a plan
  /// without link faults).
  void arm_faults(const ras::FaultPlan& plan) {
    tx_.arm_faults(plan);
    rx_.arm_faults(plan);
  }

  /// True if the direction's backlog leaves room for another message.
  bool can_send_tx(Cycle now) const { return tx_.can_send(now); }
  bool can_send_rx(Cycle now) const { return rx_.can_send(now); }

  /// Earliest cycle (>= now) at which the direction has a free credit. The
  /// backlog only decays with time between sends, so this is exact until
  /// the next send — the event-driven loop uses it to skip blocked cycles.
  Cycle tx_credit_cycle(Cycle now) const { return tx_.credit_cycle(now); }
  Cycle rx_credit_cycle(Cycle now) const { return rx_.credit_cycle(now); }

  /// Send CPU->device. Returns the delivery cycle (+ poison flag).
  SendResult send_tx(std::uint32_t bytes, Cycle now) { return tx_.send(bytes, now); }

  /// Send device->CPU. Returns the delivery cycle (+ poison flag).
  SendResult send_rx(std::uint32_t bytes, Cycle now) { return rx_.send(bytes, now); }

  const DirectionStats& tx_stats() const { return tx_.stats(); }
  const DirectionStats& rx_stats() const { return rx_.stats(); }
  const LaneConfig& config() const { return cfg_; }
  const SerialPipe& tx_pipe() const { return tx_; }
  const SerialPipe& rx_pipe() const { return rx_; }

  /// Fixed (unloaded) one-way latency component for a message of `bytes`:
  /// serialisation + two port traversals.
  Cycle unloaded_one_way(std::uint32_t bytes, double goodput) const {
    return serialization_cycles(goodput, bytes) + 2 * cfg_.port_latency_cycles();
  }

  void reset_stats() {
    tx_.reset_stats();
    rx_.reset_stats();
  }

  /// RAS events across both directions (all-zero when faults are unarmed).
  ras::RasCounters ras_counters() const {
    ras::RasCounters c;
    if (const ras::RasCounters* t = tx_.ras()) c += *t;
    if (const ras::RasCounters* r = rx_.ras()) c += *r;
    return c;
  }

  /// Invariant-check state: violations of the credit/occupancy protocol
  /// (a send admitted while the direction's backlog had no credit left, or
  /// a non-causal delivery time). Always zero when callers gate on
  /// can_send_tx/can_send_rx.
  std::uint64_t invariant_violations() const { return tx_.violations() + rx_.violations(); }
  /// Highest serialisation backlog observed across both directions.
  Cycle occupancy_high_water() const {
    return tx_.occupancy_high_water() > rx_.occupancy_high_water()
               ? tx_.occupancy_high_water()
               : rx_.occupancy_high_water();
  }

 private:
  static std::string pipe_name(const std::string& name, const obs::Scope& scope,
                               const char* dir) {
    std::string base = name;
    if (base.empty()) base = scope.prefix();
    if (base.empty()) base = "cxl-link";
    return base + "/" + dir;
  }

  LaneConfig cfg_;
  SerialPipe tx_;
  SerialPipe rx_;
};

}  // namespace coaxial::link
