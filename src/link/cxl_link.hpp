// Full-duplex CXL channel model.
//
// Each direction is an independent store-and-forward serialising pipe: a
// message occupies the pipe for its serialisation time (size / goodput) in
// FIFO order, then spends two fixed port traversals (egress + ingress,
// 12.5 ns each by default) before arriving at the far side. Because the
// pipe is FIFO, delivery times can be computed analytically at send time —
// no per-cycle ticking. Backpressure is modelled by refusing new messages
// when the accumulated serialisation backlog exceeds a queue bound.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/units.hpp"
#include "link/lane_config.hpp"
#include "obs/metrics.hpp"

namespace coaxial::link {

struct DirectionStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t busy_cycles = 0;   ///< Cycles the serialiser was occupied.
  double queue_delay_sum = 0.0;    ///< Cycles messages waited for the pipe.
};

class CxlLink {
 public:
  /// `scope`, when valid, registers per-direction traffic counters plus the
  /// flit-credit / queue-occupancy invariant counters at construction.
  explicit CxlLink(const LaneConfig& cfg, Cycle max_backlog_cycles = 512,
                   obs::Scope scope = {})
      : cfg_(cfg), max_backlog_(max_backlog_cycles) {
    if (scope.valid()) {
      register_direction(scope.sub("tx"), tx_stats_);
      register_direction(scope.sub("rx"), rx_stats_);
      const obs::Scope inv = scope.sub("invariants");
      inv.expose_counter("violations", [this] { return invariant_violations_; });
      inv.expose_counter("occupancy_high_water",
                         [this] { return static_cast<std::uint64_t>(max_backlog_seen_); });
      inv.expose_counter("occupancy_bound",
                         [this] { return static_cast<std::uint64_t>(max_backlog_); });
    }
  }

  /// True if the direction's backlog leaves room for another message.
  bool can_send_tx(Cycle now) const { return backlog(tx_busy_until_, now) < max_backlog_; }
  bool can_send_rx(Cycle now) const { return backlog(rx_busy_until_, now) < max_backlog_; }

  /// Earliest cycle (>= now) at which the direction has a free credit. The
  /// backlog only decays with time between sends, so this is exact until
  /// the next send — the event-driven loop uses it to skip blocked cycles.
  Cycle tx_credit_cycle(Cycle now) const { return credit_cycle(tx_busy_until_, now); }
  Cycle rx_credit_cycle(Cycle now) const { return credit_cycle(rx_busy_until_, now); }

  /// Send CPU->device. Returns the cycle the message is delivered.
  Cycle send_tx(std::uint32_t bytes, Cycle now) {
    return send(tx_busy_until_, tx_stats_, cfg_.tx_goodput_gbps, bytes, now);
  }

  /// Send device->CPU. Returns the cycle the message is delivered.
  Cycle send_rx(std::uint32_t bytes, Cycle now) {
    return send(rx_busy_until_, rx_stats_, cfg_.rx_goodput_gbps, bytes, now);
  }

  const DirectionStats& tx_stats() const { return tx_stats_; }
  const DirectionStats& rx_stats() const { return rx_stats_; }
  const LaneConfig& config() const { return cfg_; }

  /// Fixed (unloaded) one-way latency component for a message of `bytes`:
  /// serialisation + two port traversals.
  Cycle unloaded_one_way(std::uint32_t bytes, double goodput) const {
    return serialization_cycles(goodput, bytes) + 2 * cfg_.port_latency_cycles();
  }

  void reset_stats() {
    tx_stats_ = {};
    rx_stats_ = {};
  }

  /// Invariant-check state: violations of the credit/occupancy protocol
  /// (a send admitted while the direction's backlog had no credit left, or
  /// a non-causal delivery time). Always zero when callers gate on
  /// can_send_tx/can_send_rx.
  std::uint64_t invariant_violations() const { return invariant_violations_; }
  /// Highest serialisation backlog observed across both directions.
  Cycle occupancy_high_water() const { return max_backlog_seen_; }

 private:
  static Cycle backlog(Cycle busy_until, Cycle now) {
    return busy_until > now ? busy_until - now : 0;
  }

  Cycle credit_cycle(Cycle busy_until, Cycle now) const {
    if (backlog(busy_until, now) < max_backlog_) return now;
    return busy_until - max_backlog_ + 1;  // backlog >= max implies this > now.
  }

  void register_direction(const obs::Scope& s, const DirectionStats& st) {
    s.expose_counter("messages", [&st] { return st.messages; });
    s.expose_counter("bytes", [&st] { return st.bytes; });
    s.expose_counter("busy_cycles", [&st] { return st.busy_cycles; });
    s.expose("queue_delay_sum", [&st] { return st.queue_delay_sum; });
  }

  void check_violation(const char* what) {
    ++invariant_violations_;
#if defined(COAXIAL_ASSERT_TIMING)
    std::fprintf(stderr, "CXL link invariant violated: %s\n", what);
    std::abort();
#else
    (void)what;
#endif
  }

  Cycle send(Cycle& busy_until, DirectionStats& st, double goodput, std::uint32_t bytes,
             Cycle now) {
    // Flit-credit conservation: admission requires a free credit, i.e. the
    // accumulated backlog must be under the bound at send time. A violation
    // means a caller bypassed can_send_tx/can_send_rx.
    if (backlog(busy_until, now) >= max_backlog_) check_violation("send without credit");
    const Cycle ser = serialization_cycles(goodput, bytes);
    const Cycle start = busy_until > now ? busy_until : now;
    busy_until = start + ser;
    const Cycle occupancy = backlog(busy_until, now);
    if (occupancy > max_backlog_seen_) max_backlog_seen_ = occupancy;
    // Queue-occupancy bound: admitting one message may overshoot the bound
    // by at most that message's own serialisation time.
    if (occupancy > max_backlog_ + ser) check_violation("occupancy bound exceeded");
    ++st.messages;
    st.bytes += bytes;
    st.busy_cycles += ser;
    st.queue_delay_sum += static_cast<double>(start - now);
    const Cycle delivered = busy_until + 2 * cfg_.port_latency_cycles();
    if (delivered <= now) check_violation("non-causal delivery");
    return delivered;
  }

  LaneConfig cfg_;
  Cycle max_backlog_;
  Cycle tx_busy_until_ = 0;
  Cycle rx_busy_until_ = 0;
  DirectionStats tx_stats_;
  DirectionStats rx_stats_;
  std::uint64_t invariant_violations_ = 0;
  Cycle max_backlog_seen_ = 0;
};

/// Utilisation of one direction over `elapsed` cycles, in [0, 1].
double direction_utilization(const DirectionStats& st, Cycle elapsed);

}  // namespace coaxial::link
