#include "link/cxl_link.hpp"

// CxlLink is fully inline (analytic store-and-forward model); this
// translation unit anchors the header for build hygiene and hosts
// out-of-line helpers.

namespace coaxial::link {

/// Utilisation of one direction over `elapsed` cycles, in [0, 1].
double direction_utilization(const DirectionStats& st, Cycle elapsed) {
  if (elapsed == 0) return 0.0;
  return static_cast<double>(st.busy_cycles) / static_cast<double>(elapsed);
}

}  // namespace coaxial::link
