// Fundamental units and conversions for the COAXIAL simulator.
//
// The whole simulator runs in a single clock domain: the CPU clock at
// 2.4 GHz. DDR5-4800's bus clock is also 2.4 GHz (4800 MT/s, DDR), so DRAM
// timing parameters expressed in memory-clock cycles map 1:1 onto simulator
// cycles. Link latencies given in nanoseconds are converted at configuration
// time via `ns_to_cycles`.
#pragma once

#include <cstdint>

namespace coaxial {

using Cycle = std::uint64_t;
using Addr = std::uint64_t;

/// Sentinel for "no cycle" / "not scheduled".
inline constexpr Cycle kNoCycle = ~Cycle{0};

/// Simulator clock frequency (CPU and DDR5-4800 bus clock).
inline constexpr double kClockGhz = 2.4;

/// Duration of one simulator cycle in nanoseconds (~0.4167 ns).
inline constexpr double kNsPerCycle = 1.0 / kClockGhz;

/// Cache line size used throughout the hierarchy and memory system.
inline constexpr std::uint32_t kLineBytes = 64;

/// Convert a nanosecond quantity to whole cycles, rounding to nearest.
constexpr Cycle ns_to_cycles(double ns) {
  return static_cast<Cycle>(ns * kClockGhz + 0.5);
}

/// Convert cycles back to nanoseconds.
constexpr double cycles_to_ns(Cycle c) { return static_cast<double>(c) * kNsPerCycle; }

/// Convert a GB/s bandwidth into the number of cycles needed to serialise
/// `bytes` onto a pipe of that bandwidth (rounded up, at least 1).
constexpr Cycle serialization_cycles(double gbytes_per_s, std::uint32_t bytes) {
  const double ns = static_cast<double>(bytes) / gbytes_per_s;  // GB/s == B/ns
  const Cycle c = static_cast<Cycle>(ns * kClockGhz + 0.999999);
  return c == 0 ? 1 : c;
}

/// Bytes-per-cycle for a given GB/s rating (useful for utilisation math).
constexpr double bytes_per_cycle(double gbytes_per_s) { return gbytes_per_s * kNsPerCycle; }

}  // namespace coaxial
