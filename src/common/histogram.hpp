// Deterministic fixed-bucket histogram for service-latency distributions.
//
// Unlike LatencyHistogram (1-cycle bins, 16k cap — sized for on-chip
// memory latencies), FixedHistogram covers the open-loop service range:
// configurable bucket width and count (default 16 cycles x 4096 buckets
// ~ 27 us) plus an overflow bucket whose percentile representative is the
// exact maximum, so saturated load points still report a meaningful p999.
// Buckets are fixed at construction, values are integers, and merge() is
// associative and commutative — per-tenant histograms can be combined into
// per-core or fleet-wide views in any order with identical results, which
// the svc/* determinism contract relies on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace coaxial {

class FixedHistogram {
 public:
  /// `bucket_width` and `buckets` define the covered range
  /// [0, bucket_width * buckets); larger values land in the overflow
  /// bucket. Both must be nonzero.
  explicit FixedHistogram(std::uint64_t bucket_width = 16, std::size_t buckets = 4096)
      : width_(bucket_width), bins_(buckets, 0) {
    if (bucket_width == 0 || buckets == 0) {
      throw std::invalid_argument("FixedHistogram: bucket_width and buckets must be > 0");
    }
  }

  void add(std::uint64_t value) {
    const std::uint64_t idx = value / width_;
    if (idx < bins_.size()) {
      ++bins_[idx];
    } else {
      ++overflow_;
    }
    sum_ += value;
    max_ = std::max(max_, value);
    ++count_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t overflow_count() const { return overflow_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  std::uint64_t bucket_width() const { return width_; }
  std::size_t buckets() const { return bins_.size(); }

  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1]: the lower edge of the bucket holding
  /// the rank-`floor(q*(count-1))+1` sample (exact for width-1 buckets;
  /// at most one bucket width below the true value otherwise). The
  /// overflow bucket reports the exact maximum, so q -> 1 never
  /// understates a saturated tail.
  std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      cumulative += bins_[i];
      if (cumulative >= target) return static_cast<std::uint64_t>(i) * width_;
    }
    return max_;  // Target rank lies in the overflow bucket.
  }

  /// True when `other` has the same bucket geometry (merge precondition).
  bool same_shape(const FixedHistogram& other) const {
    return width_ == other.width_ && bins_.size() == other.bins_.size();
  }

  /// Accumulate `other` into this histogram. Associative and commutative:
  /// any merge tree over the same multiset of samples yields identical
  /// state. Throws std::invalid_argument on shape mismatch.
  void merge(const FixedHistogram& other) {
    if (!same_shape(other)) {
      throw std::invalid_argument("FixedHistogram::merge: bucket shapes differ");
    }
    for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
    overflow_ += other.overflow_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
  }

  void reset() {
    std::fill(bins_.begin(), bins_.end(), 0);
    overflow_ = 0;
    sum_ = 0;
    max_ = 0;
    count_ = 0;
  }

 private:
  std::uint64_t width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t overflow_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace coaxial
