// Shared config-validation helper: structured error messages for bad
// configuration values, thrown as std::invalid_argument so callers can
// surface them before any simulation state is built.
//
// Every check names the owning config struct and the offending field, so a
// failure reads e.g.:
//   link::LaneConfig: rx_goodput_gbps must be finite and > 0 (got nan)
// Used by link::LaneConfig, fabric::FabricConfig and ras::FaultPlan; new
// config structs should funnel their checks through the same helpers.
#pragma once

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace coaxial::validate {

[[noreturn]] inline void fail(const char* owner, const char* field,
                              const std::string& requirement,
                              const std::string& got) {
  std::ostringstream ss;
  ss << owner << ": " << field << " " << requirement << " (got " << got << ")";
  throw std::invalid_argument(ss.str());
}

inline std::string render(double v) {
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

/// Strictly positive finite double (goodputs, multipliers, latencies that
/// must not collapse a pipe to zero bandwidth). Rejects NaN, +-inf, 0 and
/// negatives.
inline void require_positive(const char* owner, const char* field, double v) {
  if (!std::isfinite(v) || v <= 0.0)
    fail(owner, field, "must be finite and > 0", render(v));
}

/// Finite, >= 0 double (latencies, premiums — zero is a legal model).
inline void require_non_negative(const char* owner, const char* field, double v) {
  if (!std::isfinite(v) || v < 0.0)
    fail(owner, field, "must be finite and >= 0", render(v));
}

/// Finite double in [lo, hi] inclusive (probabilities, rates).
inline void require_in_range(const char* owner, const char* field, double v,
                             double lo, double hi) {
  if (!(std::isfinite(v) && v >= lo && v <= hi)) {
    std::ostringstream req;
    req << "must be in [" << lo << ", " << hi << "]";
    fail(owner, field, req.str(), render(v));
  }
}

/// Non-zero unsigned count (queue bounds, retry budgets, periods).
inline void require_nonzero(const char* owner, const char* field,
                            std::uint64_t v) {
  if (v == 0) fail(owner, field, "must be > 0", "0");
}

/// `field` strictly less than `bound_field` (window lengths vs periods).
inline void require_less(const char* owner, const char* field, std::uint64_t v,
                         const char* bound_field, std::uint64_t bound) {
  if (v >= bound) {
    std::ostringstream req;
    req << "must be < " << bound_field << " (" << bound << ")";
    fail(owner, field, req.str(), std::to_string(v));
  }
}

}  // namespace coaxial::validate
