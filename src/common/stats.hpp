// Statistics primitives: counters, running means, and a latency histogram
// with percentile queries.
//
// The histogram uses fixed-width 1-cycle bins up to a cap and an overflow
// tail; at 2.4 GHz a 16k-cycle cap covers ~6.8 us, far beyond any memory
// latency we model, so percentile error is at most half a cycle.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace coaxial {

/// Running mean over uint64 samples without storing them.
class RunningMean {
 public:
  void add(double v) {
    sum_ += v;
    ++n_;
  }
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  void reset() { sum_ = 0.0; n_ = 0; }

 private:
  double sum_ = 0.0;
  std::uint64_t n_ = 0;
};

/// Fixed-bin histogram for cycle-granularity latency distributions.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::size_t max_cycles = 16384)
      : bins_(max_cycles + 1, 0) {}

  void add(Cycle latency) {
    const std::size_t idx = std::min<std::size_t>(latency, bins_.size() - 1);
    ++bins_[idx];
    sum_ += latency;
    ++count_;
  }

  std::uint64_t count() const { return count_; }

  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Latency (cycles) at quantile q in [0,1]; e.g. q=0.9 for p90.
  Cycle percentile(double q) const {
    if (count_ == 0) return 0;
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      cumulative += bins_[i];
      if (cumulative >= target) return static_cast<Cycle>(i);
    }
    return static_cast<Cycle>(bins_.size() - 1);
  }

  void reset() {
    std::fill(bins_.begin(), bins_.end(), 0);
    sum_ = 0;
    count_ = 0;
  }

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

/// Epoch-based rate estimator: events per cycle over a sliding epoch.
/// Used by CALM to estimate filtered/unfiltered memory bandwidth demand.
class EpochRate {
 public:
  explicit EpochRate(Cycle epoch_length = 4096) : epoch_(epoch_length) {}

  void record(Cycle now, double amount = 1.0) {
    roll(now);
    current_ += amount;
  }

  /// Rate in events (or bytes) per cycle, from the last completed epoch.
  double rate(Cycle now) {
    roll(now);
    return last_rate_;
  }

 private:
  void roll(Cycle now) {
    while (now >= epoch_start_ + epoch_) {
      last_rate_ = current_ / static_cast<double>(epoch_);
      current_ = 0.0;
      epoch_start_ += epoch_;
    }
  }

  Cycle epoch_;
  Cycle epoch_start_ = 0;
  double current_ = 0.0;
  double last_rate_ = 0.0;
};

/// Geometric mean helper for speedup aggregation (paper reports geomeans).
double geomean(const std::vector<double>& xs);

/// Arithmetic mean helper.
double amean(const std::vector<double>& xs);

/// Format helper: fixed-precision double to string (no locale surprises).
std::string fmt(double v, int precision = 2);

}  // namespace coaxial
