// Minimal work-stealing-free thread pool used by the run harness to fan
// simulation runs out across host cores. Each simulation is fully
// self-contained (no shared mutable state), so a plain task queue suffices.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace coaxial {

/// How many intra-run shard workers each simulation may use when `outer`
/// simulations run concurrently (run_many's pool composing with the sharded
/// pump): outer x inner must not oversubscribe the machine. Always >= 1 so a
/// sharded run degrades to the sequential single-worker pump rather than
/// failing. `hardware == 0` (unknown concurrency) conservatively yields 1.
inline std::size_t inner_shard_cap(std::size_t outer, std::size_t hardware) {
  if (outer == 0) outer = 1;
  if (hardware <= outer) return 1;
  return hardware / outer;
}

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = std::thread::hardware_concurrency()) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++outstanding_;
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here (subsequent ones are
  /// dropped); without this, an escaping exception would unwind the worker
  /// thread and terminate the whole process.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
    if (first_exception_) {
      std::exception_ptr e = std::exchange(first_exception_, nullptr);
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (error && !first_exception_) first_exception_ = error;
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_exception_;  ///< First task failure; see wait_idle.
};

}  // namespace coaxial
