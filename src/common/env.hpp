// Environment-variable overrides for run budgets, so the full benchmark
// matrix can be scaled up (paper-fidelity) or down (CI) without recompiling.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace coaxial {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// True when `name` is set to a non-empty value other than "0".
inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
}

/// Instruction budget per core for benchmark runs (paper: 200M).
inline std::uint64_t bench_instr_budget() { return env_u64("COAXIAL_INSTR", 400'000); }

/// Warmup instructions per core for benchmark runs (paper: 50M).
inline std::uint64_t bench_warmup_budget() { return env_u64("COAXIAL_WARMUP", 120'000); }

/// Host worker-thread override for parallel run matrices (benches and
/// bench_walltime). 0 (the default) means hardware_concurrency.
inline std::size_t coaxial_threads() {
  return static_cast<std::size_t>(env_u64("COAXIAL_THREADS", 0));
}

}  // namespace coaxial
