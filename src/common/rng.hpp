// Small, fast, reproducible PRNG (xoshiro256**) for workload generation.
//
// We deliberately avoid <random>'s engines in the simulator hot path:
// xoshiro256** is a few ns per draw and its state is trivially copyable,
// which keeps workload generators cheap to snapshot and replay.
#pragma once

#include <cstdint>

namespace coaxial {

class Rng {
 public:
  /// Seeds the four 64-bit state words from a single seed via splitmix64,
  /// the initialisation recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& w : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Geometric-ish draw: number of failures before first success with
  /// probability p (capped to keep pathological p tiny draws bounded).
  std::uint32_t geometric(double p, std::uint32_t cap = 1024) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return cap;
    std::uint32_t n = 0;
    while (n < cap && !chance(p)) ++n;
    return n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace coaxial
