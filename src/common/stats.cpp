#include "common/stats.hpp"

#include <cmath>
#include <cstdio>

namespace coaxial {

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double amean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace coaxial
