#include "placement/address_map.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace coaxial::placement {

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kStaticInterleave: return "static_interleave";
    case PolicyKind::kHotnessLru: return "hotness_lru";
    case PolicyKind::kBandwidthSpill: return "bandwidth_aware_spill";
  }
  return "unknown";
}

PolicyKind policy_from_name(const std::string& name) {
  if (name == "static_interleave") return PolicyKind::kStaticInterleave;
  if (name == "hotness_lru") return PolicyKind::kHotnessLru;
  if (name == "bandwidth_aware_spill") return PolicyKind::kBandwidthSpill;
  throw std::invalid_argument(
      "TierConfig: unknown policy \"" + name +
      "\" (expected static_interleave | hotness_lru | bandwidth_aware_spill)");
}

void TierConfig::validate() const {
  if (!enabled) return;
  validate::require_nonzero("placement::TierConfig", "epoch_cycles", epoch_cycles);
  validate::require_nonzero("placement::TierConfig", "page_lines", page_lines);
  validate::require_nonzero("placement::TierConfig", "fast_capacity_pages",
                            fast_capacity_pages);
  validate::require_nonzero("placement::TierConfig", "fast_ddr_channels",
                            fast_ddr_channels);
  validate::require_nonzero("placement::TierConfig", "max_concurrent_migrations",
                            max_concurrent_migrations);
  validate::require_in_range("placement::TierConfig", "spill_fraction", spill_fraction,
                             0.0, 1.0);
  validate::require_positive("placement::TierConfig", "spill_fraction", spill_fraction);

  // HDM ranges: page-aligned, non-empty, non-overlapping, and the pinned
  // footprint must fit the fast tier ("capacity < footprint" rejection).
  std::vector<HdmRange> sorted = hdm_fast_ranges;
  std::sort(sorted.begin(), sorted.end(),
            [](const HdmRange& a, const HdmRange& b) { return a.base_line < b.base_line; });
  Addr prev_end = 0;
  bool first = true;
  for (const HdmRange& r : sorted) {
    validate::require_nonzero("placement::TierConfig", "hdm_fast_ranges[].lines",
                              r.lines);
    if (r.base_line % page_lines != 0 || r.lines % page_lines != 0) {
      validate::fail("placement::TierConfig", "hdm_fast_ranges",
                     "must be page-aligned (base_line and lines multiples of page_lines)",
                     std::to_string(r.base_line) + "+" + std::to_string(r.lines));
    }
    if (!first && r.base_line < prev_end) {
      validate::fail("placement::TierConfig", "hdm_fast_ranges", "must not overlap",
                     "range at line " + std::to_string(r.base_line) +
                         " overlaps previous end " + std::to_string(prev_end));
    }
    prev_end = r.base_line + r.lines;
    first = false;
  }
  if (native_fast_pages() > fast_capacity_pages) {
    validate::fail("placement::TierConfig", "fast_capacity_pages",
                   "must cover the HDM-pinned footprint",
                   std::to_string(fast_capacity_pages) + " pages < " +
                       std::to_string(native_fast_pages()) + " pinned");
  }
}

AddressMap AddressMap::passthrough(fabric::Interleave policy, std::uint32_t devices,
                                   std::uint32_t subs_per_device,
                                   std::uint32_t page_lines,
                                   std::uint64_t contiguous_lines) {
  AddressMap m;
  m.tiered_ = false;
  m.devices_ = devices;
  m.router_ = fabric::Router(policy, devices, subs_per_device, page_lines,
                             contiguous_lines);
  return m;
}

AddressMap AddressMap::tiered(const TierConfig& cfg) {
  cfg.validate();
  AddressMap m;
  m.tiered_ = true;
  m.cfg_ = cfg;
  std::vector<HdmRange> sorted = cfg.hdm_fast_ranges;
  std::sort(sorted.begin(), sorted.end(),
            [](const HdmRange& a, const HdmRange& b) { return a.base_line < b.base_line; });
  std::uint64_t frame_base = 0;
  for (const HdmRange& r : sorted) {
    DecodedRange d;
    d.base_page = r.base_line / cfg.page_lines;
    d.pages = r.lines / cfg.page_lines;
    d.frame_base = frame_base;
    frame_base += d.pages;
    m.ranges_.push_back(d);
  }
  m.native_frames_ = static_cast<std::uint32_t>(frame_base);
  m.frames_.resize(cfg.fast_capacity_pages);
  for (const DecodedRange& d : m.ranges_) {
    for (Addr p = 0; p < d.pages; ++p) {
      FrameMeta& f = m.frames_[d.frame_base + p];
      f.page = d.base_page + p;
      f.in_use = true;
    }
  }
  // Free pool: every dynamic frame, as a min-heap so allocation always
  // hands out the lowest id (deterministic regardless of release order).
  m.free_.reserve(cfg.fast_capacity_pages - frame_base);
  for (std::uint64_t f = cfg.fast_capacity_pages; f > frame_base; --f) {
    m.free_.push_back(static_cast<std::uint32_t>(f - 1));
  }
  std::make_heap(m.free_.begin(), m.free_.end(), std::greater<>{});
  return m;
}

void AddressMap::throw_device_bound(std::uint32_t dev) const {
  throw std::logic_error(
      "placement::AddressMap: decoded device " + std::to_string(dev) +
      " >= fabric device count " + std::to_string(device_bound_) +
      " (stage-2 interleave and fabric topology disagree)");
}

int AddressMap::range_of(Addr page) const {
  // Binary search over the sorted ranges (HDM decoders are priority-ordered
  // comparators in hardware; non-overlap makes order irrelevant here).
  int lo = 0, hi = static_cast<int>(ranges_.size()) - 1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    const DecodedRange& r = ranges_[mid];
    if (page < r.base_page) {
      hi = mid - 1;
    } else if (page >= r.base_page + r.pages) {
      lo = mid + 1;
    } else {
      return mid;
    }
  }
  return -1;
}

Translation AddressMap::translate(Addr line) const {
  assert(tiered_);
  const Addr page = line / cfg_.page_lines;
  const Addr offset = line % cfg_.page_lines;
  const auto it = remap_.find(page);
  if (it != remap_.end()) {
    return {0, static_cast<Addr>(it->second) * cfg_.page_lines + offset};
  }
  const int r = range_of(page);
  if (r >= 0) {
    const DecodedRange& d = ranges_[static_cast<std::size_t>(r)];
    return {0, (d.frame_base + (page - d.base_page)) * cfg_.page_lines + offset};
  }
  return {1, line};  // Capacity tier backs the whole address space.
}

std::uint32_t AddressMap::alloc_frame() {
  assert(!free_.empty());
  std::pop_heap(free_.begin(), free_.end(), std::greater<>{});
  const std::uint32_t frame = free_.back();
  free_.pop_back();
  frames_[frame].in_use = true;
  return frame;
}

void AddressMap::push_free(std::uint32_t frame) {
  free_.push_back(frame);
  std::push_heap(free_.begin(), free_.end(), std::greater<>{});
}

void AddressMap::set_migrating(Addr page, bool on) {
  if (on) {
    migrating_.insert(page);
  } else {
    migrating_.erase(page);
  }
}

void AddressMap::install_promotion(Addr page, std::uint32_t frame, std::uint64_t epoch) {
  assert(frame >= native_frames_ && frames_[frame].in_use);
  remap_.emplace(page, frame);
  FrameMeta& f = frames_[frame];
  f.page = page;
  f.last_hot_epoch = epoch;
  f.last_count = 0;
}

void AddressMap::install_demotion(Addr page) {
  const auto it = remap_.find(page);
  assert(it != remap_.end());
  const std::uint32_t frame = it->second;
  remap_.erase(it);
  frames_[frame] = FrameMeta{};
  push_free(frame);
}

void AddressMap::release_frame(std::uint32_t frame) {
  assert(frame >= native_frames_ && frames_[frame].in_use);
  frames_[frame] = FrameMeta{};
  push_free(frame);
}

void AddressMap::touch_resident(Addr page, std::uint64_t epoch, std::uint64_t count) {
  const auto it = remap_.find(page);
  if (it == remap_.end()) return;
  FrameMeta& f = frames_[it->second];
  f.last_hot_epoch = epoch;
  f.last_count = count;
}

}  // namespace coaxial::placement
