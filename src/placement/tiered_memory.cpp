#include "placement/tiered_memory.hpp"

#include <algorithm>
#include <cassert>

namespace coaxial::placement {

TieredMemory::TieredMemory(const TierConfig& cfg, std::unique_ptr<mem::MemorySystem> fast,
                           std::unique_ptr<mem::MemorySystem> capacity, obs::Scope scope)
    : cfg_(cfg),
      amap_(AddressMap::tiered(cfg)),  // Validates cfg.
      fast_(std::move(fast)),
      cap_(std::move(capacity)),
      policy_(make_policy(cfg.policy)),
      next_barrier_(cfg.epoch_cycles) {
  out_.reserve(64);
  if (scope.valid()) mem::register_aggregate_probes(scope, *this);
}

bool TieredMemory::can_accept(Addr line, bool is_write, Cycle now) const {
  // Shootdown: writes to a page mid-copy are refused so the copied image
  // cannot go stale; the caller parks and retries them every cycle, and the
  // migrating mark clears at the install barrier, so progress is bounded.
  if (is_write && amap_.migrating(amap_.page_of(line))) return false;
  const Translation t = amap_.translate(line);
  return t.tier == 0 ? fast_->can_accept(t.local_line, is_write, now)
                     : cap_->can_accept(t.local_line, is_write, now);
}

void TieredMemory::access(Addr line, bool is_write, Cycle now, std::uint64_t token) {
  const Translation t = amap_.translate(line);
  heat_.note(amap_.page_of(line));
  if (t.tier == 0) {
    ++ctr_.fast_accesses;
    ++epoch_fast_;
    fast_->access(t.local_line, is_write, now, token);
  } else {
    ++ctr_.capacity_accesses;
    ++epoch_cap_;
    cap_->access(t.local_line, is_write, now, token);
  }
}

std::uint32_t TieredMemory::port_of(Addr line) const {
  const Translation t = amap_.translate(line);
  return t.tier == 0 ? fast_->port_of(t.local_line)
                     : fast_->ports() + cap_->port_of(t.local_line);
}

Cycle TieredMemory::tick(Cycle now) {
  while (now >= next_barrier_) process_barrier();
  pump_migrations(now);
  Cycle wake = std::min(fast_->tick(now), cap_->tick(now));
  drain_inner(fast_->completions());
  drain_inner(cap_->completions());
  wake = std::min(wake, next_barrier_);
  // Active copy jobs make per-cycle progress (read credits free, completed
  // reads unlock writes), so poll every cycle while any exist.
  if (!active_.empty() || !backlog_.empty()) wake = std::min(wake, now + 1);
  return std::max(wake, now + 1);
}

void TieredMemory::drain_inner(std::vector<mem::MemCompletion>& in) {
  for (const mem::MemCompletion& c : in) {
    if (c.token & kMigFlag) {
      MigrationJob& job = jobs_[static_cast<std::uint32_t>((c.token >> 32) & 0x7fffffffu)];
      job.ready_writes.push_back(static_cast<std::uint32_t>(c.token & 0xffffffffu));
      ++job.reads_done;
    } else {
      out_.push_back(c);
    }
  }
  in.clear();
}

void TieredMemory::pump_migrations(Cycle now) {
  while (active_.size() < cfg_.max_concurrent_migrations && !backlog_.empty()) {
    active_.push_back(backlog_.front());
    backlog_.pop_front();
  }
  for (std::size_t i = 0; i < active_.size();) {
    const std::uint32_t id = active_[i];
    MigrationJob& job = jobs_[id];
    mem::MemorySystem& src = job.promote ? *cap_ : *fast_;
    mem::MemorySystem& dst = job.promote ? *fast_ : *cap_;
    while (job.reads_issued < cfg_.page_lines) {
      const Addr src_line = src_line_of(job, job.reads_issued);
      if (!src.can_accept(src_line, false, now)) break;
      src.access(src_line, false, now,
                 kMigFlag | (static_cast<std::uint64_t>(id) << 32) | job.reads_issued);
      ++job.reads_issued;
      ++ctr_.migration_reads;
      ctr_.migration_bytes += kLineBytes;
    }
    while (job.write_cursor < job.ready_writes.size()) {
      const Addr dst_line = dst_line_of(job, job.ready_writes[job.write_cursor]);
      if (!dst.can_accept(dst_line, true, now)) break;
      dst.access(dst_line, true, now, 0);  // Posted, like demand writebacks.
      ++job.write_cursor;
      ++ctr_.migration_writes;
      ctr_.migration_bytes += kLineBytes;
    }
    if (job.write_cursor == cfg_.page_lines) {
      completed_.push_back(id);
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void TieredMemory::process_barrier() {
  ++epoch_index_;
  ++ctr_.epochs;

  // Publish finished copies first: their pages leave the migrating set, so
  // this epoch's plan sees the post-install remap table.
  for (const std::uint32_t id : completed_) {
    MigrationJob& job = jobs_[id];
    if (job.promote) {
      amap_.install_promotion(job.page, job.frame, epoch_index_);
      ++ctr_.promotions;
    } else {
      amap_.install_demotion(job.page);
      ++ctr_.demotions;
    }
    ++ctr_.installs;
    amap_.set_migrating(job.page, false);
    job = MigrationJob{};
    free_jobs_.push_back(id);
  }
  completed_.clear();

  PolicyInput in;
  in.epoch = epoch_index_;
  for (const PageHeat::Entry& e : heat_.entries()) {
    if (amap_.migrating(e.page)) continue;
    if (amap_.remapped(e.page)) {
      amap_.touch_resident(e.page, epoch_index_, e.count);
      continue;
    }
    if (amap_.native_fast(e.page)) continue;
    in.candidates.push_back({e.page, e.count});
  }
  std::sort(in.candidates.begin(), in.candidates.end(),
            [](const PageCount& a, const PageCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.page < b.page;
            });
  const std::vector<AddressMap::FrameMeta>& frames = amap_.frames();
  for (std::uint32_t f = amap_.native_frames(); f < frames.size(); ++f) {
    const AddressMap::FrameMeta& meta = frames[f];
    // Only published residents: frames reserved for in-flight promotions
    // are in_use but unmapped, and migrating (demoting) pages are spoken for.
    if (!meta.in_use || !amap_.remapped(meta.page)) continue;
    if (amap_.frame_of(meta.page) != f || amap_.migrating(meta.page)) continue;
    in.residents.push_back({meta.page, f, heat_.count_of(meta.page), meta.last_hot_epoch});
  }
  in.free_frames = amap_.free_frames();
  in.fast_accesses = epoch_fast_;
  in.total_accesses = epoch_fast_ + epoch_cap_;

  const PolicyActions acts = policy_->plan(in, cfg_);
  for (const Addr page : acts.promote) {
    if (amap_.remapped(page) || amap_.native_fast(page) || amap_.migrating(page)) continue;
    if (amap_.free_frames() == 0) break;
    start_job(page, amap_.alloc_frame(), /*promote=*/true);
  }
  for (const Addr page : acts.demote) {
    if (!amap_.remapped(page) || amap_.migrating(page)) continue;
    start_job(page, amap_.frame_of(page), /*promote=*/false);
  }

  heat_.clear();
  epoch_fast_ = 0;
  epoch_cap_ = 0;
  next_barrier_ += cfg_.epoch_cycles;
}

void TieredMemory::start_job(Addr page, std::uint32_t frame, bool promote) {
  std::uint32_t id;
  if (!free_jobs_.empty()) {
    id = free_jobs_.back();
    free_jobs_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(jobs_.size());
    jobs_.emplace_back();
  }
  MigrationJob& job = jobs_[id];
  job = MigrationJob{};
  job.page = page;
  job.frame = frame;
  job.promote = promote;
  job.ready_writes.reserve(cfg_.page_lines);
  amap_.set_migrating(page, true);
  backlog_.push_back(id);
  ++ctr_.jobs_started;
}

mem::MemorySnapshot TieredMemory::snapshot() const {
  const mem::MemorySnapshot a = fast_->snapshot();
  const mem::MemorySnapshot b = cap_->snapshot();
  mem::MemorySnapshot s;
  s.reads = a.reads + b.reads;
  s.writes = a.writes + b.writes;
  s.dram_service_sum = a.dram_service_sum + b.dram_service_sum;
  s.dram_queue_sum = a.dram_queue_sum + b.dram_queue_sum;
  s.cxl_interface_sum = a.cxl_interface_sum + b.cxl_interface_sum;
  s.cxl_queue_sum = a.cxl_queue_sum + b.cxl_queue_sum;
  s.data_bus_busy = a.data_bus_busy + b.data_bus_busy;
  s.subchannels = a.subchannels + b.subchannels;
  s.peak_gbps = peak_gbps();
  s.row_hit_rate = aggregate_dram_stats().row_hit_rate();
  return s;
}

void TieredMemory::reset_stats() {
  // Inner-tier DRAM/link accumulators reset with the measurement window;
  // tier counters stay lifetime totals so the conservation invariant
  // (promotions - demotions == live remap occupancy) holds at any sample.
  fast_->reset_stats();
  cap_->reset_stats();
}

dram::ControllerStats TieredMemory::aggregate_dram_stats() const {
  dram::ControllerStats agg = fast_->aggregate_dram_stats();
  mem::accumulate(agg, cap_->aggregate_dram_stats());
  return agg;
}

ras::RasCounters TieredMemory::ras_counters() const {
  ras::RasCounters c = fast_->ras_counters();
  c += cap_->ras_counters();
  return c;
}

TierCounters TieredMemory::tier_counters() const {
  TierCounters c = ctr_;
  c.remap_occupancy = amap_.remap_occupancy();
  return c;
}

}  // namespace coaxial::placement
