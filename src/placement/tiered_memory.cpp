#include "placement/tiered_memory.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace coaxial::placement {

TieredMemory::TieredMemory(const TierConfig& cfg, std::unique_ptr<mem::MemorySystem> fast,
                           std::unique_ptr<mem::MemorySystem> capacity, obs::Scope scope,
                           const ras::FaultPlan& plan)
    : cfg_(cfg),
      amap_(AddressMap::tiered(cfg)),  // Validates cfg.
      fast_(std::move(fast)),
      cap_(std::move(capacity)),
      policy_(make_policy(cfg.policy)),
      next_barrier_(cfg.epoch_cycles) {
  out_.reserve(64);
  if (plan.device_failure()) {
    evac_on_ = true;
    fail_dev_ = plan.fail_device;
    evac_budget_ = plan.evac_pages_per_epoch;
    // This layer owns the evacuation: emergency migrations preempt the
    // steady-state policy, and the capacity tier parks in kEvacuating on a
    // monitor trip until offline_device() below.
    policy_ = std::make_unique<EvacuationPolicy>(std::move(policy_));
    if (plan.fail_mode == ras::FailureMode::kFailing) cap_->set_offline_hold(true);
    // Per-page homing must be well-defined: every line of a tier page has
    // to land on the same capacity device (page-granular interleave with
    // fabric page_lines a multiple of the tier page size).
    for (Addr page = 0; page < 4; ++page) {
      const std::uint32_t dev = cap_->device_of_line(page * cfg_.page_lines);
      for (std::uint32_t l = 1; l < cfg_.page_lines; ++l) {
        if (cap_->device_of_line(page * cfg_.page_lines + l) != dev) {
          throw std::invalid_argument(
              "placement::TieredMemory: device-failure evacuation requires "
              "page-granular capacity interleave (fabric page_lines must be "
              "a multiple of the tier page size)");
        }
      }
    }
  }
  if (scope.valid()) mem::register_aggregate_probes(scope, *this);
}

bool TieredMemory::can_accept(Addr line, bool is_write, Cycle now) const {
  if (evac_on_) {
    // Retired pages and pages stranded on a dead device are sinks, never
    // backpressure: access() converts the touch into an exactly-once poison
    // completion, so callers parked on can_accept() cannot wedge.
    const Addr page = amap_.page_of(line);
    if (retired_.count(page) != 0) return true;
    if (is_write && amap_.migrating(page)) return false;
    const Translation td = amap_.translate(line);
    if (td.tier == 1 &&
        cap_->failure_status().phase >= ras::FailureStatus::Phase::kDraining &&
        page_device(page) == fail_dev_) {
      return true;
    }
    return td.tier == 0 ? fast_->can_accept(td.local_line, is_write, now)
                        : cap_->can_accept(td.local_line, is_write, now);
  }
  // Shootdown: writes to a page mid-copy are refused so the copied image
  // cannot go stale; the caller parks and retries them every cycle, and the
  // migrating mark clears at the install barrier, so progress is bounded.
  if (is_write && amap_.migrating(amap_.page_of(line))) return false;
  const Translation t = amap_.translate(line);
  return t.tier == 0 ? fast_->can_accept(t.local_line, is_write, now)
                     : cap_->can_accept(t.local_line, is_write, now);
}

void TieredMemory::access(Addr line, bool is_write, Cycle now, std::uint64_t token) {
  if (evac_on_) {
    using Phase = ras::FailureStatus::Phase;
    const Addr page = amap_.page_of(line);
    const bool was_retired = retired_.count(page) != 0;
    if (!was_retired) {
      const Translation td = amap_.translate(line);
      if (td.tier == 1 && page_device(page) == fail_dev_) {
        const Phase phase = cap_->failure_status().phase;
        if (phase >= Phase::kDraining) {
          // First touch of a page stranded on the offlined device: its only
          // copy is gone, so it enters the retirement table and this touch
          // (and every later one) becomes a poison MCE instead of a hang.
          retire_page(page);
        } else if (phase == Phase::kFailing) {
          // Still serving, monitor not yet tripped: remember the page so
          // the evacuation walks it off the device at an upcoming barrier.
          // Once the trip fires the work-list is closed — an open-ended
          // workload would otherwise refill it forever and the offline
          // handshake could never complete; pages first touched after the
          // trip take the retire-on-death path instead.
          evac_pending_.insert(page);
        }
      }
    }
    if (was_retired || retired_.count(page) != 0) {
      ++avail_.retired_touches;
      if (!is_write) {
        mem::MemCompletion mc;
        mc.token = token;
        mc.done = now + 1;
        mc.poisoned = true;
        out_.push_back(mc);
      }
      return;  // Writes to retired pages are dropped (data already lost).
    }
  }
  const Translation t = amap_.translate(line);
  heat_.note(amap_.page_of(line));
  if (t.tier == 0) {
    ++ctr_.fast_accesses;
    ++epoch_fast_;
    fast_->access(t.local_line, is_write, now, token);
  } else {
    ++ctr_.capacity_accesses;
    ++epoch_cap_;
    cap_->access(t.local_line, is_write, now, token);
  }
}

std::uint32_t TieredMemory::port_of(Addr line) const {
  const Translation t = amap_.translate(line);
  return t.tier == 0 ? fast_->port_of(t.local_line)
                     : fast_->ports() + cap_->port_of(t.local_line);
}

Cycle TieredMemory::tick(Cycle now) {
  while (now >= next_barrier_) process_barrier();
  pump_migrations(now);
  Cycle wake = std::min(fast_->tick(now), cap_->tick(now));
  drain_inner(fast_->completions());
  drain_inner(cap_->completions());
  wake = std::min(wake, next_barrier_);
  // Active copy jobs make per-cycle progress (read credits free, completed
  // reads unlock writes), so poll every cycle while any exist.
  if (!active_.empty() || !backlog_.empty()) wake = std::min(wake, now + 1);
  return std::max(wake, now + 1);
}

void TieredMemory::drain_inner(std::vector<mem::MemCompletion>& in) {
  for (const mem::MemCompletion& c : in) {
    if (c.token & kMigFlag) {
      MigrationJob& job = jobs_[static_cast<std::uint32_t>((c.token >> 32) & 0x7fffffffu)];
      ++job.reads_done;
      if (c.poisoned && evac_on_) {
        // A corrupt copy read poisons the whole page image: abort the job
        // once its outstanding reads drain (pump_migrations cancels it).
        // Only armed alongside a failure episode so legacy fault plans keep
        // their exact pre-episode behaviour.
        job.aborted = true;
      } else if (!job.aborted) {
        job.ready_writes.push_back(static_cast<std::uint32_t>(c.token & 0xffffffffu));
      }
    } else {
      out_.push_back(c);
    }
  }
  in.clear();
}

void TieredMemory::pump_migrations(Cycle now) {
  while (active_.size() < cfg_.max_concurrent_migrations && !backlog_.empty()) {
    active_.push_back(backlog_.front());
    backlog_.pop_front();
  }
  for (std::size_t i = 0; i < active_.size();) {
    const std::uint32_t id = active_[i];
    MigrationJob& job = jobs_[id];
    if (job.aborted) {
      if (job.reads_done < job.reads_issued) {
        ++i;  // Outstanding copy reads must land before the cancel.
        continue;
      }
      // Cancel: undo the reservation and unblock demand writes. If the
      // source device is already refusing (drained or dead) the page's only
      // good copy is unreachable — retire it; a merely-failing source keeps
      // the page in evac_pending_ so a later epoch retries the copy.
      if (job.promote) amap_.release_frame(job.frame);
      amap_.set_migrating(job.page, false);
      ++avail_.evac_aborts;
      if (job.promote && page_device(job.page) == fail_dev_ &&
          cap_->failure_status().phase >= ras::FailureStatus::Phase::kDraining) {
        retire_page(job.page);
      }
      job = MigrationJob{};
      free_jobs_.push_back(id);
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    mem::MemorySystem& src = job.promote ? *cap_ : *fast_;
    mem::MemorySystem& dst = job.promote ? *fast_ : *cap_;
    while (job.reads_issued < cfg_.page_lines) {
      const Addr src_line = src_line_of(job, job.reads_issued);
      if (!src.can_accept(src_line, false, now)) break;
      src.access(src_line, false, now,
                 kMigFlag | (static_cast<std::uint64_t>(id) << 32) | job.reads_issued);
      ++job.reads_issued;
      ++ctr_.migration_reads;
      ctr_.migration_bytes += kLineBytes;
    }
    while (job.write_cursor < job.ready_writes.size()) {
      const Addr dst_line = dst_line_of(job, job.ready_writes[job.write_cursor]);
      if (!dst.can_accept(dst_line, true, now)) break;
      dst.access(dst_line, true, now, 0);  // Posted, like demand writebacks.
      ++job.write_cursor;
      ++ctr_.migration_writes;
      ctr_.migration_bytes += kLineBytes;
    }
    if (job.write_cursor == cfg_.page_lines) {
      completed_.push_back(id);
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void TieredMemory::process_barrier() {
  using Phase = ras::FailureStatus::Phase;
  ++epoch_index_;
  ++ctr_.epochs;
  const Phase phase = evac_on_ ? cap_->failure_status().phase : Phase::kNone;

  // Publish finished copies first: their pages leave the migrating set, so
  // this epoch's plan sees the post-install remap table.
  for (const std::uint32_t id : completed_) {
    MigrationJob& job = jobs_[id];
    if (evac_on_ && job.promote && retired_.count(job.page) != 0) {
      // Copied cleanly, but a demand touch retired the page while the
      // install waited for the barrier: retirement stays authoritative, so
      // drop the copy instead of resurrecting the page.
      amap_.release_frame(job.frame);
      amap_.set_migrating(job.page, false);
      ++avail_.evac_aborts;
      job = MigrationJob{};
      free_jobs_.push_back(id);
      continue;
    }
    if (job.promote) {
      amap_.install_promotion(job.page, job.frame, epoch_index_);
      ++ctr_.promotions;
    } else {
      amap_.install_demotion(job.page);
      ++ctr_.demotions;
    }
    ++ctr_.installs;
    if (job.evac) {
      // One page made it off the failing device with a live copy.
      ++avail_.evac_pages_out;
      ++avail_.evac_pages_in;
      evac_pending_.erase(job.page);
    }
    amap_.set_migrating(job.page, false);
    job = MigrationJob{};
    free_jobs_.push_back(id);
  }
  completed_.clear();

  PolicyInput in;
  in.epoch = epoch_index_;
  for (const PageHeat::Entry& e : heat_.entries()) {
    if (amap_.migrating(e.page)) continue;
    if (amap_.remapped(e.page)) {
      amap_.touch_resident(e.page, epoch_index_, e.count);
      continue;
    }
    if (amap_.native_fast(e.page)) continue;
    in.candidates.push_back({e.page, e.count});
  }
  std::sort(in.candidates.begin(), in.candidates.end(),
            [](const PageCount& a, const PageCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.page < b.page;
            });
  const std::vector<AddressMap::FrameMeta>& frames = amap_.frames();
  for (std::uint32_t f = amap_.native_frames(); f < frames.size(); ++f) {
    const AddressMap::FrameMeta& meta = frames[f];
    // Only published residents: frames reserved for in-flight promotions
    // are in_use but unmapped, and migrating (demoting) pages are spoken for.
    if (!meta.in_use || !amap_.remapped(meta.page)) continue;
    if (amap_.frame_of(meta.page) != f || amap_.migrating(meta.page)) continue;
    // During a failure episode, pages homed on the failing device are not
    // demotion candidates (their fast copy is the only good one), so keep
    // them out of the victim pool rather than waste demote budget on picks
    // the barrier would refuse below.
    if (evac_on_ && phase != Phase::kNone && page_device(meta.page) == fail_dev_) {
      continue;
    }
    in.residents.push_back({meta.page, f, heat_.count_of(meta.page), meta.last_hot_epoch});
  }
  in.free_frames = amap_.free_frames();
  in.fast_accesses = epoch_fast_;
  in.total_accesses = epoch_fast_ + epoch_cap_;

  if (phase == Phase::kEvacuating) {
    // Emergency work-list: every touched fail-device page still homed there,
    // page-ascending for a deterministic drain order.
    std::vector<Addr> doomed(evac_pending_.begin(), evac_pending_.end());
    std::sort(doomed.begin(), doomed.end());
    for (const Addr page : doomed) {
      if (amap_.remapped(page) || amap_.native_fast(page) || amap_.migrating(page)) {
        continue;
      }
      if (retired_.count(page) != 0) continue;
      in.evacuate.push_back({page, heat_.count_of(page)});
    }
    in.evac_budget = evac_budget_;
  }

  const PolicyActions acts = policy_->plan(in, cfg_);
  // max_migrations_per_epoch caps *outstanding* copy work, not just this
  // epoch's plan: jobs the pump hasn't finished still hold their pages in
  // the migrating set, and planning past them would grow the backlog without
  // bound — every queued page invisible to the next epoch's plan.
  std::uint32_t headroom = cfg_.max_migrations_per_epoch;
  const std::size_t inflight = active_.size() + backlog_.size();
  headroom = inflight >= headroom ? 0u
                                  : headroom - static_cast<std::uint32_t>(inflight);
  std::uint32_t started = 0;
  for (const Addr page : acts.promote) {
    if (headroom == 0) break;
    if (amap_.remapped(page) || amap_.native_fast(page) || amap_.migrating(page)) continue;
    if (amap_.free_frames() == 0) break;
    const bool evac = phase == Phase::kEvacuating && evac_pending_.count(page) != 0;
    start_job(page, amap_.alloc_frame(), /*promote=*/true, evac);
    if (evac) ++avail_.evac_jobs;
    --headroom;
    ++started;
  }
  for (const Addr page : acts.demote) {
    if (headroom == 0) break;
    if (!amap_.remapped(page) || amap_.migrating(page)) continue;
    // Never demote back onto a failing/dead device: the copy would be lost
    // (or immediately need re-evacuation).
    if (evac_on_ && phase != Phase::kNone && page_device(page) == fail_dev_) continue;
    start_job(page, amap_.frame_of(page), /*promote=*/false);
    --headroom;
    ++started;
  }

  if (phase == Phase::kEvacuating && !in.evacuate.empty() && started == 0 &&
      active_.empty() && backlog_.empty()) {
    // Wedged: nothing in flight, and this barrier could not plan a single
    // copy or victim demotion (no free frames and no demotable resident —
    // e.g. every fast frame already holds an evacuated page). The rest of
    // the work-list is unevacuable; retire it (copyless out, conservation
    // intact) so the offline handshake below can complete.
    for (const PageCount& p : in.evacuate) retire_page(p.page);
    in.evacuate.clear();
  }

  // Evacuation complete? Nothing left on the work-list and no copy still in
  // flight from the failing device: hand the device back so it can drain to
  // kDead (the offline handshake, DESIGN.md §13).
  if (phase == Phase::kEvacuating && in.evacuate.empty() && !evac_jobs_live()) {
    cap_->offline_device(fail_dev_);
  }

  heat_.clear();
  epoch_fast_ = 0;
  epoch_cap_ = 0;
  next_barrier_ += cfg_.epoch_cycles;
}

bool TieredMemory::evac_jobs_live() const {
  const auto from_fail_dev = [&](std::uint32_t id) {
    const MigrationJob& j = jobs_[id];
    return j.promote && page_device(j.page) == fail_dev_;
  };
  for (const std::uint32_t id : active_) {
    if (from_fail_dev(id)) return true;
  }
  for (const std::uint32_t id : backlog_) {
    if (from_fail_dev(id)) return true;
  }
  for (const std::uint32_t id : completed_) {
    if (from_fail_dev(id)) return true;
  }
  return false;
}

void TieredMemory::retire_page(Addr page) {
  if (!retired_.insert(page).second) return;
  ++avail_.pages_retired;
  ++avail_.evac_pages_out;  // The page left the device — copyless.
  evac_pending_.erase(page);
}

void TieredMemory::start_job(Addr page, std::uint32_t frame, bool promote, bool evac) {
  std::uint32_t id;
  if (!free_jobs_.empty()) {
    id = free_jobs_.back();
    free_jobs_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(jobs_.size());
    jobs_.emplace_back();
  }
  MigrationJob& job = jobs_[id];
  job = MigrationJob{};
  job.page = page;
  job.frame = frame;
  job.promote = promote;
  job.evac = evac;
  job.ready_writes.reserve(cfg_.page_lines);
  amap_.set_migrating(page, true);
  backlog_.push_back(id);
  ++ctr_.jobs_started;
}

mem::MemorySnapshot TieredMemory::snapshot() const {
  const mem::MemorySnapshot a = fast_->snapshot();
  const mem::MemorySnapshot b = cap_->snapshot();
  mem::MemorySnapshot s;
  s.reads = a.reads + b.reads;
  s.writes = a.writes + b.writes;
  s.dram_service_sum = a.dram_service_sum + b.dram_service_sum;
  s.dram_queue_sum = a.dram_queue_sum + b.dram_queue_sum;
  s.cxl_interface_sum = a.cxl_interface_sum + b.cxl_interface_sum;
  s.cxl_queue_sum = a.cxl_queue_sum + b.cxl_queue_sum;
  s.data_bus_busy = a.data_bus_busy + b.data_bus_busy;
  s.subchannels = a.subchannels + b.subchannels;
  s.peak_gbps = peak_gbps();
  s.row_hit_rate = aggregate_dram_stats().row_hit_rate();
  return s;
}

void TieredMemory::reset_stats() {
  // Inner-tier DRAM/link accumulators reset with the measurement window;
  // tier counters stay lifetime totals so the conservation invariant
  // (promotions - demotions == live remap occupancy) holds at any sample.
  fast_->reset_stats();
  cap_->reset_stats();
}

dram::ControllerStats TieredMemory::aggregate_dram_stats() const {
  dram::ControllerStats agg = fast_->aggregate_dram_stats();
  mem::accumulate(agg, cap_->aggregate_dram_stats());
  return agg;
}

ras::RasCounters TieredMemory::ras_counters() const {
  ras::RasCounters c = fast_->ras_counters();
  c += cap_->ras_counters();
  return c;
}

TierCounters TieredMemory::tier_counters() const {
  TierCounters c = ctr_;
  c.remap_occupancy = amap_.remap_occupancy();
  return c;
}

ras::AvailCounters TieredMemory::avail_counters() const {
  // Device-side episode events (health samples, bounces, lost writes) come
  // from the capacity tier; evacuation/retirement events live here.
  ras::AvailCounters c = fast_->avail_counters();
  c += cap_->avail_counters();
  c += avail_;
  return c;
}

}  // namespace coaxial::placement
