// Pluggable hot-page migration policies (DESIGN.md §10).
//
// A policy sees one epoch's worth of deterministic inputs — sorted
// promotion candidates, current fast-tier residents, free-frame count and
// the epoch's per-tier access split — and returns the promotions and
// demotions to start this epoch. Policies are pure decision functions:
// they never touch the AddressMap or issue traffic themselves, so the
// migration engine stays the single mutation site and scheduler modes
// agree bit-for-bit.
#pragma once

#include <memory>
#include <vector>

#include "common/units.hpp"
#include "placement/tier_config.hpp"

namespace coaxial::placement {

/// A capacity-homed page and its access count this epoch. Candidate lists
/// are pre-sorted by (count desc, page asc) before the policy sees them.
struct PageCount {
  Addr page = 0;
  std::uint64_t count = 0;
};

/// A dynamically remapped fast-tier resident.
struct FrameInfo {
  Addr page = 0;
  std::uint32_t frame = 0;
  std::uint64_t epoch_count = 0;    ///< Touches this epoch (0 = idle).
  std::uint64_t last_hot_epoch = 0; ///< Last epoch with any touch.
};

struct PolicyInput {
  std::uint64_t epoch = 0;
  /// Promotion candidates: capacity-homed, not migrating, count >= 1,
  /// sorted hottest first (ties by page asc). Threshold filtering is the
  /// policy's job so kBandwidthSpill can reason about the full tail.
  std::vector<PageCount> candidates;
  /// Dynamic residents in frame-index order (deterministic iteration).
  std::vector<FrameInfo> residents;
  std::uint32_t free_frames = 0;
  std::uint64_t fast_accesses = 0;   ///< This epoch, tier 0.
  std::uint64_t total_accesses = 0;  ///< This epoch, both tiers.
  /// Emergency evacuation (DESIGN.md §13): capacity pages that must leave a
  /// failing device, sorted by page asc. Empty outside an active episode.
  std::vector<PageCount> evacuate;
  /// Evacuation bandwidth bound: at most this many evacuate pages may be
  /// promoted per epoch (0 = no evacuation this epoch).
  std::uint32_t evac_budget = 0;
};

struct PolicyActions {
  std::vector<Addr> promote;  ///< Pages to copy capacity -> fast.
  std::vector<Addr> demote;   ///< Resident pages to copy fast -> capacity.
};

class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;
  virtual PolicyActions plan(const PolicyInput& in, const TierConfig& cfg) = 0;
};

std::unique_ptr<MigrationPolicy> make_policy(PolicyKind kind);

/// Decorator that prioritises draining a failing device (DESIGN.md §13).
/// While `in.evacuate` is non-empty it plans *only* evacuation work: promote
/// up to min(evac_budget, migration budget, frames obtainable) evacuate
/// pages, demoting idle residents to free frames when the pool runs short.
/// Outside an episode (evacuate empty) it is a transparent pass-through to
/// the wrapped policy, so steady-state behaviour is byte-identical.
class EvacuationPolicy final : public MigrationPolicy {
 public:
  explicit EvacuationPolicy(std::unique_ptr<MigrationPolicy> base)
      : base_(std::move(base)) {}
  PolicyActions plan(const PolicyInput& in, const TierConfig& cfg) override;

 private:
  std::unique_ptr<MigrationPolicy> base_;
};

}  // namespace coaxial::placement
