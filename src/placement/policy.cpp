#include "placement/policy.hpp"

#include <algorithm>

namespace coaxial::placement {
namespace {

/// Idle residents (no touches this epoch), least-recently-hot first with
/// page-ascending tie-break: the deterministic LRU victim order.
std::vector<FrameInfo> idle_victims(const PolicyInput& in) {
  std::vector<FrameInfo> idle;
  for (const FrameInfo& f : in.residents) {
    if (f.epoch_count == 0) idle.push_back(f);
  }
  std::sort(idle.begin(), idle.end(), [](const FrameInfo& a, const FrameInfo& b) {
    if (a.last_hot_epoch != b.last_hot_epoch) return a.last_hot_epoch < b.last_hot_epoch;
    return a.page < b.page;
  });
  return idle;
}

/// Every resident, coldest first (epoch touches, then least-recently-hot,
/// then page ascending). The evacuation emergency path uses this instead of
/// idle_victims: under a saturating workload every fast frame can be warm,
/// and restricting victims to idle residents would starve the evacuation
/// forever — a doomed page beats any merely-warm one.
std::vector<FrameInfo> coldest_victims(const PolicyInput& in) {
  std::vector<FrameInfo> order(in.residents);
  std::sort(order.begin(), order.end(), [](const FrameInfo& a, const FrameInfo& b) {
    if (a.epoch_count != b.epoch_count) return a.epoch_count < b.epoch_count;
    if (a.last_hot_epoch != b.last_hot_epoch) return a.last_hot_epoch < b.last_hot_epoch;
    return a.page < b.page;
  });
  return order;
}

/// Shared promote/demote planner: promote the hottest candidates at or
/// above the threshold into currently-free frames, then spend the rest of
/// the per-epoch budget demoting idle residents so the frames they free
/// are available at the next barrier (a two-phase pipeline: demotions
/// started this epoch install at the next barrier, promotions into those
/// frames start the epoch after).
PolicyActions hotness_plan(const PolicyInput& in, const TierConfig& cfg) {
  PolicyActions out;
  std::uint32_t budget = cfg.max_migrations_per_epoch;
  std::uint32_t free_left = in.free_frames;
  std::size_t next = 0;
  while (next < in.candidates.size() && budget > 0 && free_left > 0) {
    const PageCount& c = in.candidates[next];
    if (c.count < cfg.promote_threshold) break;  // Sorted: rest are colder.
    out.promote.push_back(c.page);
    ++next;
    --budget;
    --free_left;
  }
  // Hot candidates left but no frames: evict idle residents to make room.
  const bool pressure =
      next < in.candidates.size() && in.candidates[next].count >= cfg.promote_threshold;
  if (pressure && budget > 0) {
    for (const FrameInfo& victim : idle_victims(in)) {
      if (budget == 0) break;
      out.demote.push_back(victim.page);
      --budget;
    }
  }
  return out;
}

class StaticInterleavePolicy final : public MigrationPolicy {
 public:
  PolicyActions plan(const PolicyInput&, const TierConfig&) override { return {}; }
};

class HotnessLruPolicy final : public MigrationPolicy {
 public:
  PolicyActions plan(const PolicyInput& in, const TierConfig& cfg) override {
    return hotness_plan(in, cfg);
  }
};

class BandwidthSpillPolicy final : public MigrationPolicy {
 public:
  PolicyActions plan(const PolicyInput& in, const TierConfig& cfg) override {
    // Below the spill target the fast tier is underused: behave like
    // hotness-LRU. At or above it, stop promoting — the capacity tier's
    // independent bandwidth should keep serving the spill share — and
    // drain idle residents to open headroom for future hot sets.
    const double fast_share =
        in.total_accesses == 0
            ? 0.0
            : static_cast<double>(in.fast_accesses) / static_cast<double>(in.total_accesses);
    if (fast_share < cfg.spill_fraction) return hotness_plan(in, cfg);
    PolicyActions out;
    std::uint32_t budget = cfg.max_migrations_per_epoch;
    for (const FrameInfo& victim : idle_victims(in)) {
      if (budget == 0) break;
      out.demote.push_back(victim.page);
      --budget;
    }
    return out;
  }
};

}  // namespace

PolicyActions EvacuationPolicy::plan(const PolicyInput& in, const TierConfig& cfg) {
  if (in.evacuate.empty()) return base_->plan(in, cfg);
  // Emergency mode: every migration slot serves the evacuation. Promote as
  // many doomed pages as the evacuation bandwidth, the per-epoch migration
  // budget and the frame pool allow; when frames run short, demote the
  // coldest residents with the remaining budget so the next barrier has room.
  PolicyActions out;
  std::uint32_t budget = cfg.max_migrations_per_epoch;
  std::uint32_t free_left = in.free_frames;
  std::uint32_t evac_left = in.evac_budget;
  for (const PageCount& p : in.evacuate) {
    if (budget == 0 || free_left == 0 || evac_left == 0) break;
    out.promote.push_back(p.page);
    --budget;
    --free_left;
    --evac_left;
  }
  const bool short_on_frames =
      out.promote.size() < in.evacuate.size() && evac_left > 0 && free_left == 0;
  if (short_on_frames && budget > 0) {
    for (const FrameInfo& victim : coldest_victims(in)) {
      if (budget == 0) break;
      out.demote.push_back(victim.page);
      --budget;
    }
  }
  return out;
}

std::unique_ptr<MigrationPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kStaticInterleave:
      return std::make_unique<StaticInterleavePolicy>();
    case PolicyKind::kHotnessLru:
      return std::make_unique<HotnessLruPolicy>();
    case PolicyKind::kBandwidthSpill:
      return std::make_unique<BandwidthSpillPolicy>();
  }
  return std::make_unique<StaticInterleavePolicy>();
}

}  // namespace coaxial::placement
