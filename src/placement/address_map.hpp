// Two-stage address translation (DESIGN.md §10).
//
// An AddressMap is the single object behind every address-to-device
// decision. It runs in one of two modes:
//
//  * pass-through — stage 2 only: wraps the legacy fabric::Router and
//    reproduces its kLine/kPage/kContiguous arithmetic byte-identically.
//    CxlMemory owns one of these instead of a raw Router.
//  * tiered — stage 1: an HDM-decoder-style range decode assigns each page
//    to tier 0 (fast local DDR) or tier 1 (CXL capacity), with a dynamic
//    per-page remap table layered on top. TieredMemory owns one of these;
//    each tier's memory system then applies its own stage 2 internally.
//
// All mutating calls (remap installs, frame allocation, migrating marks)
// happen only from TieredMemory::tick() at deterministic cycles; the
// translate/route lookups are pure so can_accept() stays const and both
// scheduler modes agree bit-for-bit.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"
#include "fabric/router.hpp"
#include "placement/tier_config.hpp"

namespace coaxial::placement {

/// Stage-1 result: which tier a line lives on and the line index within
/// that tier's local address space.
struct Translation {
  std::uint32_t tier = 1;  ///< 0 = fast local DDR, 1 = capacity.
  Addr local_line = 0;
};

/// Epoch access counters: one note() per demand access, first-touch
/// insertion order (deterministic because the access() call sequence is
/// identical across scheduler modes). Cleared at every epoch barrier.
class PageHeat {
 public:
  void note(Addr page) {
    auto [it, fresh] = index_.try_emplace(page, entries_.size());
    if (fresh) {
      entries_.push_back({page, 1});
    } else {
      ++entries_[it->second].count;
    }
  }

  struct Entry {
    Addr page = 0;
    std::uint64_t count = 0;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  std::uint64_t count_of(Addr page) const {
    auto it = index_.find(page);
    return it == index_.end() ? 0 : entries_[it->second].count;
  }

  void clear() {
    entries_.clear();
    index_.clear();
  }

 private:
  std::vector<Entry> entries_;
  std::unordered_map<Addr, std::size_t> index_;
};

class AddressMap {
 public:
  /// Stage-2 pass-through: byte-identical to the legacy Router wiring.
  static AddressMap passthrough(fabric::Interleave policy, std::uint32_t devices,
                                std::uint32_t subs_per_device, std::uint32_t page_lines,
                                std::uint64_t contiguous_lines);

  /// Stage-1 tiered decode for `cfg` (validates; throws on bad config).
  static AddressMap tiered(const TierConfig& cfg);

  bool tiered_mode() const { return tiered_; }

  // ---- pass-through (stage 2) API ----

  fabric::Router::Route route(Addr line) const {
    fabric::Router::Route r = router_.route(line);
    check_device(r.device);
    return r;
  }
  std::uint32_t device_of(Addr line) const {
    const std::uint32_t dev = router_.device_of(line);
    check_device(dev);
    return dev;
  }
  std::uint32_t devices() const { return devices_; }
  fabric::Interleave interleave() const { return router_.policy(); }

  /// Debug guard against stage-2 / fabric disagreement: once the owning
  /// memory system declares the fabric's device count, any decode landing
  /// at or past it throws std::logic_error in debug builds instead of
  /// silently indexing past the per-device state. 0 (the default) disables
  /// the check; release builds compile it out entirely.
  void set_device_bound(std::uint32_t fabric_devices) {
    device_bound_ = fabric_devices;
  }

  // ---- tiered (stage 1) API: lookups (pure) ----

  Addr page_of(Addr line) const { return line / cfg_.page_lines; }

  /// Remap override first, then the HDM range decode, else capacity
  /// (identity mapping: the capacity tier holds the full address space).
  Translation translate(Addr line) const;

  bool remapped(Addr page) const { return remap_.find(page) != remap_.end(); }
  bool native_fast(Addr page) const { return range_of(page) >= 0; }
  bool migrating(Addr page) const { return migrating_.find(page) != migrating_.end(); }
  std::uint32_t free_frames() const { return static_cast<std::uint32_t>(free_.size()); }
  std::uint64_t remap_occupancy() const { return remap_.size(); }
  std::uint32_t native_frames() const { return native_frames_; }
  std::uint32_t frame_of(Addr page) const { return remap_.at(page); }

  /// Dynamic-frame metadata (index == frame id). Frames below
  /// native_frames() are permanently pinned by HDM ranges.
  struct FrameMeta {
    Addr page = 0;
    bool in_use = false;
    std::uint64_t last_hot_epoch = 0;  ///< Last epoch the page was touched.
    std::uint64_t last_count = 0;      ///< Touches in that epoch.
  };
  const std::vector<FrameMeta>& frames() const { return frames_; }

  // ---- tiered API: mutations (TieredMemory::tick() only) ----

  /// Reserve the lowest free dynamic frame for an in-flight promotion.
  /// The frame is in_use but unmapped until install_promotion().
  std::uint32_t alloc_frame();

  void set_migrating(Addr page, bool on);

  /// Publish a promotion: `page` now reads/writes through `frame`.
  void install_promotion(Addr page, std::uint32_t frame, std::uint64_t epoch);

  /// Publish a demotion: `page` returns to its capacity-identity mapping
  /// and its frame goes back to the free pool.
  void install_demotion(Addr page);

  /// Return a reserved-but-unmapped dynamic frame (from alloc_frame()) to
  /// the free pool without installing anything — an aborted promotion whose
  /// source device died mid-copy (DESIGN.md §13).
  void release_frame(std::uint32_t frame);

  /// Barrier bookkeeping: record that a resident page was hot this epoch.
  void touch_resident(Addr page, std::uint64_t epoch, std::uint64_t count);

  const TierConfig& config() const { return cfg_; }

 private:
  AddressMap() = default;

  // Active in debug builds; COAXIAL_DEVICE_BOUND_CHECK re-enables it in
  // optimised translation units (the negative test compiles with it so the
  // guard is exercised whatever the library build type).
  void check_device(std::uint32_t dev) const {
#if !defined(NDEBUG) || defined(COAXIAL_DEVICE_BOUND_CHECK)
    if (device_bound_ != 0 && dev >= device_bound_) throw_device_bound(dev);
#endif
    (void)dev;
  }

  /// Out-of-line so the header stays free of <stdexcept> formatting.
  [[noreturn]] void throw_device_bound(std::uint32_t dev) const;

  /// Index into ranges_ containing `page`, or -1.
  int range_of(Addr page) const;

  /// Restore the min-heap property after push_back on free_.
  void push_free(std::uint32_t frame);

  // Pass-through state.
  bool tiered_ = false;
  std::uint32_t devices_ = 1;
  std::uint32_t device_bound_ = 0;  ///< Fabric device count; 0 = unchecked.
  fabric::Router router_{fabric::Interleave::kLine, 1, 1, 1, 1};

  // Tiered state.
  TierConfig cfg_;
  struct DecodedRange {
    Addr base_page = 0;
    Addr pages = 0;
    std::uint64_t frame_base = 0;  ///< Prefix sum over preceding ranges.
  };
  std::vector<DecodedRange> ranges_;  ///< Sorted by base_page.
  std::uint32_t native_frames_ = 0;
  std::vector<FrameMeta> frames_;
  std::vector<std::uint32_t> free_;  ///< Min-heap of free dynamic frames.
  std::unordered_map<Addr, std::uint32_t> remap_;  ///< page -> frame.
  std::unordered_set<Addr> migrating_;
};

}  // namespace coaxial::placement
