// Tiered-placement configuration: the host-programmable side of the
// two-stage address translation layer (DESIGN.md §10).
//
// Stage 1 is an HDM-decoder-style range decode that assigns each physical
// page to a *tier* (0 = fast local DDR, 1 = CXL capacity), optionally
// overridden per page by a dynamic remap table the migration engine
// programs at epoch barriers. Stage 2 is the per-tier interleave (the
// legacy fabric::Router modes, unchanged). TierConfig carries everything
// the placement layer needs: the fast tier's size and backing channels,
// the epoch cadence, the migration policy and its budgets, and any
// statically fast-pinned HDM ranges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "common/validate.hpp"

namespace coaxial::placement {

/// Pluggable hot-page migration policies (DESIGN.md §10).
enum class PolicyKind : std::uint8_t {
  kStaticInterleave,  ///< No migration: HDM ranges only (the legacy model).
  kHotnessLru,        ///< Promote hot pages, demote LRU fast residents.
  kBandwidthSpill,    ///< Hotness-LRU capped so a spill share of traffic
                      ///< stays on the capacity tier (bandwidth > latency).
};

const char* policy_name(PolicyKind kind);
/// Inverse of policy_name; throws std::invalid_argument for unknown names.
PolicyKind policy_from_name(const std::string& name);

/// One HDM-decoder range statically pinned to the fast tier. Both bounds
/// are in *lines* and must be page-aligned (multiples of page_lines).
struct HdmRange {
  Addr base_line = 0;
  Addr lines = 0;
};

struct TierConfig {
  bool enabled = false;
  PolicyKind policy = PolicyKind::kHotnessLru;

  /// Fast-tier substrate: local DDR5 channels (2 sub-channels each).
  std::uint32_t fast_ddr_channels = 1;

  /// Migration/remap granularity in lines (64 lines = 4 KiB pages).
  std::uint32_t page_lines = 64;

  /// Fast-tier capacity in pages (frames). Statically pinned HDM ranges
  /// consume frames first; the rest back the dynamic remap table.
  std::uint64_t fast_capacity_pages = 4096;

  /// Epoch length: access counters are sampled and remaps installed only
  /// at cycle boundaries that are multiples of this (the epoch barrier).
  Cycle epoch_cycles = 10'000;

  /// A capacity-homed page must be touched at least this many times in an
  /// epoch to be a promotion candidate.
  std::uint64_t promote_threshold = 4;

  /// Migration jobs (promotions + demotions) started per epoch barrier.
  std::uint32_t max_migrations_per_epoch = 32;

  /// Jobs copying concurrently; the rest queue in a backlog.
  std::uint32_t max_concurrent_migrations = 4;

  /// kBandwidthSpill: stop promoting once the fast tier serves this share
  /// of an epoch's accesses, keeping the remainder spilled to the CXL
  /// tier's independent bandwidth (the COAXIAL insight: aggregate
  /// bandwidth beats all-traffic-on-fastest-tier).
  double spill_fraction = 0.75;

  /// Stage-1 ranges decoded straight to the fast tier (no migration).
  std::vector<HdmRange> hdm_fast_ranges;

  /// Total pages pinned by hdm_fast_ranges.
  std::uint64_t native_fast_pages() const {
    std::uint64_t pages = 0;
    for (const HdmRange& r : hdm_fast_ranges) pages += r.lines / page_lines;
    return pages;
  }

  /// Validate (common/validate.hpp). No-op when disabled; throws
  /// std::invalid_argument with a structured message otherwise.
  void validate() const;
};

/// Aggregated placement/migration events, snapshotted under `tier/*` when
/// tiering is enabled (mirrors ras::RasCounters). All counters mutate only
/// inside tick() at deterministic cycles, never in can_accept(), so both
/// scheduler modes agree bit-for-bit.
struct TierCounters {
  std::uint64_t epochs = 0;         ///< Epoch barriers processed.
  std::uint64_t jobs_started = 0;   ///< Migration jobs created.
  std::uint64_t installs = 0;       ///< Remap installs at barriers.
  std::uint64_t promotions = 0;     ///< Installed capacity -> fast moves.
  std::uint64_t demotions = 0;      ///< Installed fast -> capacity moves.
  std::uint64_t migration_reads = 0;
  std::uint64_t migration_writes = 0;
  std::uint64_t migration_bytes = 0;
  std::uint64_t remap_occupancy = 0;  ///< Live dynamic remap entries.
  std::uint64_t fast_accesses = 0;      ///< Demand accesses served by tier 0.
  std::uint64_t capacity_accesses = 0;  ///< Demand accesses served by tier 1.

  double fast_fraction() const {
    const double total = static_cast<double>(fast_accesses + capacity_accesses);
    return total == 0 ? 0.0 : static_cast<double>(fast_accesses) / total;
  }
};

}  // namespace coaxial::placement
