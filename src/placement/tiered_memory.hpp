// Tiered memory system: a fast local-DDR tier plus a CXL capacity tier
// behind the two-stage AddressMap, with epoch-driven hot-page migration
// (DESIGN.md §10).
//
// Determinism contract (both scheduler modes must agree bit-for-bit):
//  * can_accept() is pure — it translates and delegates, never counts.
//  * All placement state (heat counters aside) mutates only in tick():
//    migration jobs issue copy traffic from the cycle pump, and remap
//    installs happen only at epoch barriers (cycle % epoch_cycles == 0).
//  * Heat counters bump in access(), whose call sequence is identical in
//    both modes.
//  * tick() always returns a wake bound <= the next epoch barrier, so the
//    event-driven scheduler provably reaches every barrier cycle.
//
// Shootdown protocol: while a page is migrating, demand reads keep hitting
// the *source* copy (the remap entry is untouched until the install) and
// demand writes are refused by can_accept() — the caller parks and retries
// them — so the copied image can never go stale.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "coaxial/memory_system.hpp"
#include "obs/metrics.hpp"
#include "placement/address_map.hpp"
#include "placement/policy.hpp"

namespace coaxial::placement {

/// Migration-read tokens set bit 63 so they can never collide with demand
/// tokens (32-bit op ids); bits [62:32] hold the job id, [31:0] the line
/// index within the page.
inline constexpr std::uint64_t kMigFlag = 1ull << 63;

class TieredMemory final : public mem::MemorySystem {
 public:
  /// `fast` serves tier 0 (local DDR), `capacity` tier 1 (the full address
  /// space, identity-mapped). `scope`, when valid, registers the aggregate
  /// read/write/bandwidth probes; the inner systems register their own
  /// subtrees (tier0/..., tier1/...) via the scopes they were built with.
  /// A `plan` with a device-failure episode (DESIGN.md §13) makes this
  /// layer the evacuation owner: the migration policy is wrapped in an
  /// EvacuationPolicy, the capacity tier is parked in kEvacuating on a
  /// monitor trip until evacuation completes, and pages stranded on a dead
  /// device enter the page-retirement table (touches become exactly-once
  /// poison completions). Requires page-granular capacity interleave so a
  /// tier page homes on exactly one device.
  TieredMemory(const TierConfig& cfg, std::unique_ptr<mem::MemorySystem> fast,
               std::unique_ptr<mem::MemorySystem> capacity, obs::Scope scope = {},
               const ras::FaultPlan& plan = {});

  bool can_accept(Addr line, bool is_write, Cycle now) const override;
  void access(Addr line, bool is_write, Cycle now, std::uint64_t token) override;
  Cycle tick(Cycle now) override;
  void set_force_tick(bool force) override {
    fast_->set_force_tick(force);
    cap_->set_force_tick(force);
  }
  std::vector<mem::MemCompletion>& completions() override { return out_; }

  /// Fast-tier ports first, then the capacity tier's (NoC placement treats
  /// them as one pool of memory tiles).
  std::uint32_t ports() const override { return fast_->ports() + cap_->ports(); }
  std::uint32_t port_of(Addr line) const override;

  mem::MemorySnapshot snapshot() const override;
  void reset_stats() override;
  double peak_gbps() const override { return fast_->peak_gbps() + cap_->peak_gbps(); }
  dram::ControllerStats aggregate_dram_stats() const override;
  ras::RasCounters ras_counters() const override;
  TierCounters tier_counters() const override;
  ras::AvailCounters avail_counters() const override;
  ras::FailureStatus failure_status() const override {
    return cap_->failure_status();
  }

  const AddressMap& address_map() const { return amap_; }
  const mem::MemorySystem& fast_tier() const { return *fast_; }
  const mem::MemorySystem& capacity_tier() const { return *cap_; }
  bool page_retired(Addr page) const { return retired_.count(page) != 0; }

 private:
  /// One page copy: reads stream from the source tier (tokens carry the
  /// job id), each completed read unlocks its line's posted write to the
  /// destination. The job is complete once every write is accepted; its
  /// remap installs at the next epoch barrier.
  struct MigrationJob {
    Addr page = 0;
    std::uint32_t frame = 0;
    bool promote = true;
    bool evac = false;     ///< Started by the evacuation (DESIGN.md §13).
    bool aborted = false;  ///< A copy read came back poisoned; cancel.
    std::uint32_t reads_issued = 0;
    std::uint32_t reads_done = 0;
    std::uint32_t write_cursor = 0;          ///< Writes accepted so far.
    std::vector<std::uint32_t> ready_writes; ///< Line idx, completion order.
  };

  void process_barrier();
  void pump_migrations(Cycle now);
  void drain_inner(std::vector<mem::MemCompletion>& in);
  void start_job(Addr page, std::uint32_t frame, bool promote, bool evac = false);

  // ---- device-failure evacuation (DESIGN.md §13) ----
  std::uint32_t page_device(Addr page) const {
    return cap_->device_of_line(page * cfg_.page_lines);
  }
  /// Any promote job still draining the failing device's pages?
  bool evac_jobs_live() const;
  /// Enter `page` into the retirement table (idempotent): later touches
  /// become exactly-once poison completions instead of device traffic.
  void retire_page(Addr page);
  Addr src_line_of(const MigrationJob& job, std::uint32_t idx) const {
    return (job.promote ? job.page : Addr{job.frame}) * cfg_.page_lines + idx;
  }
  Addr dst_line_of(const MigrationJob& job, std::uint32_t idx) const {
    return (job.promote ? Addr{job.frame} : job.page) * cfg_.page_lines + idx;
  }

  TierConfig cfg_;
  AddressMap amap_;
  std::unique_ptr<mem::MemorySystem> fast_;
  std::unique_ptr<mem::MemorySystem> cap_;
  std::unique_ptr<MigrationPolicy> policy_;

  PageHeat heat_;
  std::uint64_t epoch_fast_ = 0;  ///< Demand accesses to tier 0 this epoch.
  std::uint64_t epoch_cap_ = 0;   ///< Demand accesses to tier 1 this epoch.
  std::uint64_t epoch_index_ = 0;
  Cycle next_barrier_ = 0;

  std::vector<MigrationJob> jobs_;     ///< Slot-addressed, recycled.
  std::vector<std::uint32_t> free_jobs_;
  std::deque<std::uint32_t> backlog_;  ///< Planned, waiting for a copy slot.
  std::vector<std::uint32_t> active_;  ///< Copying now (<= max_concurrent).
  std::vector<std::uint32_t> completed_;  ///< Copied, awaiting install.

  TierCounters ctr_;  ///< Lifetime totals (see reset_stats()).
  std::vector<mem::MemCompletion> out_;

  // Device-failure evacuation state. Mutations happen in access() (whose
  // call sequence is identical across scheduler modes, like heat_) and at
  // barriers; the capacity tier's failure phase only changes inside its own
  // tick() at deterministic cycles, so live queries stay mode-agnostic.
  bool evac_on_ = false;           ///< plan.device_failure(), cached.
  std::uint32_t fail_dev_ = 0;     ///< Capacity device planned to fail.
  std::uint32_t evac_budget_ = 0;  ///< Evacuate pages per epoch bound.
  std::unordered_set<Addr> evac_pending_;  ///< Touched fail-device pages.
  std::unordered_set<Addr> retired_;       ///< Page-retirement table.
  ras::AvailCounters avail_;  ///< Evacuation/retirement events (lifetime).
};

}  // namespace coaxial::placement
