#include "core/core.hpp"

#include <algorithm>

#include "obs/profiler.hpp"

namespace coaxial::core {

namespace {
/// Max stalled issues replayed per cycle: bounds both issue bandwidth to the
/// L1 and per-cycle simulation work.
constexpr std::size_t kReplayWidth = 2;
/// Pending-issue queue bound; beyond this, fetch stalls (scheduler full).
constexpr std::size_t kPendingBound = 64;
}  // namespace

Core::Core(std::uint32_t id, const sys::MicroarchConfig& cfg,
           std::unique_ptr<workload::InstrSource> source, double max_ipc)
    : id_(id),
      cfg_(cfg),
      max_ipc_(max_ipc),
      source_(std::move(source)),
      rob_(cfg.rob_entries) {}

Core::Core(std::uint32_t id, const sys::MicroarchConfig& cfg, workload::Generator generator)
    : id_(id),
      cfg_(cfg),
      max_ipc_(generator.params().max_ipc),  // Read before the move below.
      source_(std::make_unique<workload::GeneratorSource>(std::move(generator))),
      rob_(cfg.rob_entries) {}

void Core::tick(Cycle now, MemoryPort& port) {
  COAXIAL_PROF_SCOPE(kCoreTick);
  // Cycles the scheduler skipped still accrue fetch credit. Replay the
  // per-cycle accumulation (rather than multiplying) because repeated FP
  // adds are order-dependent and the bucket must stay bit-identical to a
  // tick-every-cycle run; once the bucket is full, further adds are no-ops.
  const double cap = static_cast<double>(cfg_.fetch_width) * 2.0;
  for (Cycle gap = now - last_tick_; gap > 1 && fetch_credit_ < cap; --gap) {
    fetch_credit_ = std::min(fetch_credit_ + max_ipc_, cap);
  }
  last_tick_ = now;
  retire(now);
  replay(now, port);
  fetch(now, port);
}

Cycle Core::next_wake(Cycle now) const {
  Cycle wake = kNoCycle;
  // Retirement: the head's completion cycle is known (pending loads keep
  // done_cycle == kNoCycle; on_load_complete re-arms the wake instead).
  if (rob_count_ > 0) {
    const Cycle done = rob_[rob_head_].done_cycle;
    if (done != kNoCycle) wake = std::min(wake, std::max(done, now + 1));
  }
  // Stalled issue stream: the front entry gates everything behind it.
  if (!pending_.empty()) {
    const PendingIssue& p = pending_.front();
    const RobEntry& dep = rob_[p.dep_slot == kNoSlot ? 0 : p.dep_slot];
    const bool dep_live = p.dep_slot != kNoSlot && dep.seq == p.dep_seq;
    if (dep_live && dep.done_cycle == kNoCycle) {
      // Producer still in flight: on_load_complete re-arms the wake.
    } else if (dep_live && dep.done_cycle > now) {
      wake = std::min(wake, dep.done_cycle);
    } else if (p.is_store && store_buffer_used_ >= cfg_.store_buffer) {
      // Store buffer full: on_store_complete re-arms the wake.
    } else {
      wake = std::min(wake, now + 1);  // Issueable (or retrying) next cycle.
    }
  }
  // Fetch: count credit-accrual cycles until the bucket reaches one token.
  // The same min(add, cap) sequence is replayed by tick()'s catch-up, so
  // waking exactly then reproduces the bucket bit-for-bit.
  if (max_ipc_ > 0 && !rob_full() && pending_.size() < kPendingBound) {
    const double cap = static_cast<double>(cfg_.fetch_width) * 2.0;
    double credit = fetch_credit_;
    Cycle k = 0;
    do {
      credit = std::min(credit + max_ipc_, cap);
      ++k;
    } while (credit < 1.0 && k < 64);
    wake = std::min(wake, now + k);
  }
  return wake;
}

void Core::retire(Cycle now) {
  for (std::uint32_t i = 0; i < cfg_.retire_width; ++i) {
    if (rob_count_ == 0) return;
    RobEntry& head = rob_[rob_head_];
    if (head.done_cycle == kNoCycle || head.done_cycle > now) return;
    rob_head_ = (rob_head_ + 1) % cfg_.rob_entries;
    --rob_count_;
    ++retired_;
  }
}

bool Core::dep_satisfied(const PendingIssue& p, Cycle now) const {
  if (p.dep_slot == kNoSlot) return true;
  const RobEntry& dep = rob_[p.dep_slot];
  if (dep.seq != p.dep_seq) return true;  // Producer already retired.
  return dep.done_cycle != kNoCycle && dep.done_cycle <= now;
}

void Core::replay(Cycle now, MemoryPort& port) {
  std::size_t issued = 0;
  std::size_t inspected = 0;
  const std::size_t limit = pending_.size();
  while (issued < kReplayWidth && inspected < limit && !pending_.empty()) {
    PendingIssue p = pending_.front();
    ++inspected;
    if (!dep_satisfied(p, now)) break;  // In-order issue of the stalled stream.
    if (p.is_store) {
      if (store_buffer_used_ >= cfg_.store_buffer) break;
      const IssueResult r =
          port.issue_store(id_, p.addr, p.pc, make_store_waiter(id_), now);
      if (r == IssueResult::kRetry) break;
      if (r == IssueResult::kAccepted) ++store_buffer_used_;
      pending_.pop_front();
      ++issued;
    } else {
      const IssueResult r = port.issue_load(
          id_, p.addr, p.pc, make_load_waiter(id_, p.rob_slot), now);
      if (r == IssueResult::kRetry) break;
      if (r == IssueResult::kHitL1) {
        rob_[p.rob_slot].done_cycle = now + cfg_.l1_latency;
      }
      pending_.pop_front();
      ++issued;
    }
  }
}

const workload::Instr& Core::next_instr() {
  if (instr_buf_pos_ == instr_buf_len_) {
    COAXIAL_PROF_SCOPE(kWorkloadGen);
    instr_buf_len_ = source_->next_batch(instr_buf_, kInstrBufCap);
    instr_buf_pos_ = 0;
    if (instr_buf_len_ == 0) {  // Defensive: sources are infinite today.
      instr_buf_[0] = workload::Instr{};
      instr_buf_len_ = 1;
    }
  }
  return instr_buf_[instr_buf_pos_++];
}

void Core::fetch(Cycle now, MemoryPort& port) {
  fetch_credit_ = std::min(fetch_credit_ + max_ipc_,
                           static_cast<double>(cfg_.fetch_width) * 2.0);
  std::uint32_t fetched = 0;
  while (fetched < cfg_.fetch_width && fetch_credit_ >= 1.0 && !rob_full() &&
         pending_.size() < kPendingBound) {
    const workload::Instr& ins = next_instr();
    const std::uint32_t slot = rob_tail_;
    rob_tail_ = (rob_tail_ + 1) % cfg_.rob_entries;
    ++rob_count_;
    rob_[slot].seq = next_seq_++;
    fetch_credit_ -= 1.0;
    ++fetched;

    switch (ins.kind) {
      case workload::InstrKind::kAlu:
        rob_[slot].done_cycle = now + 1;
        break;
      case workload::InstrKind::kStore: {
        // Stores complete architecturally at once; the write (and RFO on
        // miss) proceeds in the background via the store buffer.
        rob_[slot].done_cycle = now + 1;
        PendingIssue p;
        p.addr = ins.addr;
        p.pc = ins.pc;
        p.rob_slot = slot;
        p.is_store = true;
        pending_.push_back(p);
        break;
      }
      case workload::InstrKind::kLoad: {
        rob_[slot].done_cycle = kNoCycle;
        PendingIssue p;
        p.addr = ins.addr;
        p.pc = ins.pc;
        p.rob_slot = slot;
        if (ins.depends_on_prev_load && last_load_slot_ != kNoSlot) {
          p.dep_slot = last_load_slot_;
          p.dep_seq = last_load_seq_;
        }
        last_load_slot_ = slot;
        last_load_seq_ = rob_[slot].seq;
        // Try to issue immediately if nothing is queued ahead of it.
        if (pending_.empty() && dep_satisfied(p, now)) {
          const IssueResult r =
              port.issue_load(id_, p.addr, p.pc, make_load_waiter(id_, slot), now);
          if (r == IssueResult::kHitL1) {
            rob_[slot].done_cycle = now + cfg_.l1_latency;
          } else if (r == IssueResult::kRetry) {
            pending_.push_back(p);
          }
        } else {
          pending_.push_back(p);
        }
        break;
      }
    }
  }
}

void Core::on_load_complete(std::uint64_t waiter, Cycle now) {
  const std::uint32_t slot = waiter_slot(waiter);
  rob_[slot].done_cycle = now;
}

void Core::on_store_complete(Cycle /*now*/) {
  if (store_buffer_used_ > 0) --store_buffer_used_;
}

}  // namespace coaxial::core
