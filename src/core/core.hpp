// Trace-driven out-of-order core model (ChampSim-style).
//
// Models the structures that matter for memory-system studies: a 256-entry
// ROB with 4-wide fetch/retire, a front-end/ILP IPC ceiling, load->load
// dependencies (pointer chasing), and a store buffer that bounds
// outstanding RFOs. Non-memory instructions complete one cycle after
// fetch; loads complete when the memory hierarchy responds; stores retire
// immediately and perform their write (RFO on miss) in the background.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "coaxial/configs.hpp"
#include "common/units.hpp"
#include "workload/trace.hpp"

namespace coaxial::core {

/// How the memory hierarchy responded to an issue attempt.
enum class IssueResult : std::uint8_t {
  kHitL1,     ///< Completes after the L1 hit latency.
  kAccepted,  ///< Miss in flight; completion arrives via callback.
  kRetry,     ///< Structural stall (MSHR full); retry next cycle.
};

/// Interface the simulation layer provides to cores. `waiter` is an opaque
/// token echoed back on completion (encodes ROB slot / store-buffer slot).
class MemoryPort {
 public:
  virtual ~MemoryPort() = default;
  virtual IssueResult issue_load(std::uint32_t core, Addr addr, Addr pc,
                                 std::uint64_t waiter, Cycle now) = 0;
  virtual IssueResult issue_store(std::uint32_t core, Addr addr, Addr pc,
                                  std::uint64_t waiter, Cycle now) = 0;
};

class Core {
 public:
  /// `max_ipc` is the front-end/ILP ceiling (WorkloadParams::max_ipc for
  /// synthetic sources; caller-chosen for trace replay).
  Core(std::uint32_t id, const sys::MicroarchConfig& cfg,
       std::unique_ptr<workload::InstrSource> source, double max_ipc);

  /// Convenience: wrap a synthetic generator.
  Core(std::uint32_t id, const sys::MicroarchConfig& cfg, workload::Generator generator);

  /// One cycle: retire, replay stalled issues, fetch/dispatch. `now` need
  /// not be consecutive with the previous tick: skipped cycles are replayed
  /// for their only per-cycle side effect (fetch-credit accrual) so an
  /// event-driven run is bit-identical to a tick-every-cycle run.
  void tick(Cycle now, MemoryPort& port);

  /// Earliest future cycle at which tick() could make progress, given the
  /// state after the tick at `now` — or kNoCycle if the core is fully
  /// blocked on a callback (load data, store-buffer release), in which case
  /// the caller must re-arm the wake-up when the callback fires.
  Cycle next_wake(Cycle now) const;

  /// Load data arrived: complete the ROB slot encoded in `waiter`.
  void on_load_complete(std::uint64_t waiter, Cycle now);

  /// Store RFO finished: release one store-buffer slot.
  void on_store_complete(Cycle now);

  std::uint64_t retired() const { return retired_; }
  std::uint32_t id() const { return id_; }

  /// RAS: the hierarchy handed this core poisoned data on a demand access.
  /// The sim records the machine-check event and continues (the OS/firmware
  /// would contain it); see DESIGN.md §7.
  void record_machine_check() { ++machine_checks_; }
  std::uint64_t machine_checks() const { return machine_checks_; }

  /// Reset the retirement counter (measurement-window boundary).
  void reset_window() {
    retired_ = 0;
    machine_checks_ = 0;
  }

  /// Encode/decode waiter tokens (core id | kind | slot).
  static std::uint64_t make_load_waiter(std::uint32_t core, std::uint32_t slot) {
    return (static_cast<std::uint64_t>(core) << 32) | slot;
  }
  static std::uint64_t make_store_waiter(std::uint32_t core) {
    return (static_cast<std::uint64_t>(core) << 32) | kStoreFlag;
  }
  static std::uint32_t waiter_core(std::uint64_t w) {
    return static_cast<std::uint32_t>(w >> 32);
  }
  static bool waiter_is_store(std::uint64_t w) {
    return (w & kStoreFlag) != 0;
  }
  static std::uint32_t waiter_slot(std::uint64_t w) {
    return static_cast<std::uint32_t>(w & 0xffffff);
  }

 private:
  static constexpr std::uint64_t kStoreFlag = 1ull << 31;
  static constexpr std::uint32_t kNoSlot = ~0u;

  struct RobEntry {
    Cycle done_cycle = kNoCycle;  ///< kNoCycle while pending.
    std::uint64_t seq = 0;        ///< Instruction sequence number.
  };

  struct PendingIssue {
    Addr addr = 0;
    Addr pc = 0;
    std::uint32_t rob_slot = 0;
    std::uint32_t dep_slot = kNoSlot;  ///< ROB slot of the load this depends on.
    std::uint64_t dep_seq = 0;
    bool is_store = false;
  };

  bool rob_full() const { return rob_count_ == cfg_.rob_entries; }
  void retire(Cycle now);
  void replay(Cycle now, MemoryPort& port);
  void fetch(Cycle now, MemoryPort& port);
  bool dep_satisfied(const PendingIssue& p, Cycle now) const;
  const workload::Instr& next_instr();

  std::uint32_t id_;
  sys::MicroarchConfig cfg_;
  double max_ipc_;  ///< Declared before source_ so the generator ctor can
                    ///< read params before moving the generator.
  std::unique_ptr<workload::InstrSource> source_;

  std::vector<RobEntry> rob_;
  std::uint32_t rob_head_ = 0;
  std::uint32_t rob_tail_ = 0;
  std::uint32_t rob_count_ = 0;
  std::uint64_t next_seq_ = 1;

  std::deque<PendingIssue> pending_;  ///< Issues stalled on deps or structure.
  std::uint32_t store_buffer_used_ = 0;
  std::uint32_t last_load_slot_ = kNoSlot;
  std::uint64_t last_load_seq_ = 0;

  /// Fetch-side instruction buffer: instructions are pulled from the source
  /// in chunks (one virtual call per chunk rather than per instruction).
  /// The consumed sequence is identical to per-instruction next() calls;
  /// the source merely runs ahead of the core by up to a chunk.
  static constexpr std::size_t kInstrBufCap = 64;
  workload::Instr instr_buf_[kInstrBufCap];
  std::size_t instr_buf_pos_ = 0;
  std::size_t instr_buf_len_ = 0;

  double fetch_credit_ = 0.0;  ///< Token bucket enforcing the IPC ceiling.
  Cycle last_tick_ = 0;        ///< For credit catch-up over skipped cycles.
  std::uint64_t retired_ = 0;
  std::uint64_t machine_checks_ = 0;  ///< RAS poison-consumption events.
};

}  // namespace coaxial::core
