// Near-zero-overhead scoped phase profiler for host wall-clock attribution.
//
// The simulator's wall clock is dominated by a handful of hot phases (core
// retire loop, cache accesses, the FR-FCFS issue scan, link serialization,
// the memory pump). This profiler attributes steady_clock time and call
// counts to those phases so optimization work is guided by measurement
// rather than guesses (see DESIGN.md §8 and EXPERIMENTS.md "Wall-clock
// pass").
//
// Cost model:
//  * disabled (default): every COAXIAL_PROF_SCOPE is one predictable branch
//    on a cached bool — no clock reads, no TLS writes. The golden
//    byte-identical guarantee is untouched because nothing is published.
//  * enabled (COAXIAL_PROF=1): two steady_clock reads per outermost scope,
//    accumulated into thread-local counters (no atomics, no locks).
//  * compiled out: defining COAXIAL_NO_PROF turns the macro into nothing.
//
// Accounting contract:
//  * times are inclusive — a scope's time contains its nested scopes;
//  * re-entrant scopes of the same phase count once (only the outermost
//    scope reads the clock), so recursive call chains don't double-count;
//  * `calls` counts every scope entry, including re-entrant ones.
//
// Publication: run_one() snapshots the calling thread's totals around
// System::run and, when enabled, publishes the delta under `host/prof/
// <phase>/{ns,calls}` in the run's metrics registry — an opt-in subtree,
// exactly like `host_seconds`.
#pragma once

#include <chrono>
#include <cstdint>

namespace coaxial::obs {
class Scope;
}

namespace coaxial::obs::prof {

/// Instrumented host phases. Order is the publication order; names live in
/// phase_name() (profiler.cpp).
enum class Phase : std::uint8_t {
  kCoreTick = 0,    ///< Core retire / replay / fetch loop.
  kWorkloadGen,     ///< Instruction synthesis (generator / trace replay).
  kCacheAccess,     ///< Cache tag lookups, writes, fills.
  kMshr,            ///< MSHR allocate / merge / fill service.
  kDramTick,        ///< DRAM controller tick (refresh, drain policy, wake).
  kDramTryIssue,    ///< FR-FCFS issue scan inside the controller tick.
  kLinkSerialize,   ///< SerialPipe flit serialization (CXL link segments).
  kFabricArb,       ///< Switch arbitration / fabric transport tick.
  kMemPump,         ///< System::pump_memory (memory tick + retry queues).
  kEventDrain,      ///< Payload-event drain (fills, arrivals, finishes).
  kSchedDispatch,   ///< Event-driven scheduler pump (System::run step).
  kShardPump,       ///< Sharded pump: one shard's in-quantum work.
  kShardBarrier,    ///< Sharded pump: waiting at the quantum barrier.
  kShardDrain,      ///< Sharded pump: cross-shard mailbox exchange.
  kCount
};

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

/// Stable lowercase slug for the metrics path ("core_tick", "dram_try_issue").
const char* phase_name(Phase p);

/// Whether profiling is active. Initialized once from COAXIAL_PROF; tests
/// and tools may override before timing anything (set_enabled is not
/// thread-safe against concurrently running scopes).
bool enabled();
void set_enabled(bool on);

/// Per-thread accumulated totals; indices follow Phase.
struct Totals {
  std::uint64_t ns[kPhaseCount] = {};
  std::uint64_t calls[kPhaseCount] = {};

  Totals delta_since(const Totals& base) const {
    Totals d;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      d.ns[i] = ns[i] - base.ns[i];
      d.calls[i] = calls[i] - base.calls[i];
    }
    return d;
  }

  /// Fold another thread's totals in (worker threads of a sharded run hand
  /// their deltas to the coordinator, which publishes one merged subtree).
  void add(const Totals& other) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      ns[i] += other.ns[i];
      calls[i] += other.calls[i];
    }
  }
};

namespace detail {

struct ThreadState {
  Totals totals;
  std::uint32_t depth[kPhaseCount] = {};  ///< Re-entrancy guards.
};

ThreadState& tls();

}  // namespace detail

/// Snapshot of the calling thread's totals (cheap copy; delta with
/// Totals::delta_since to bracket a region such as one System::run).
inline Totals thread_totals() { return detail::tls().totals; }

/// Reset the calling thread's totals (test isolation).
void reset_thread_totals();

/// Publish `delta` under `scope` as `<phase>/{ns,calls}` counter pairs
/// (every phase is emitted, including zero ones, so the subtree shape is
/// stable across runs). Callers gate on enabled(): the subtree must not
/// exist in default runs or the golden baseline shape would change.
void publish(const Scope& scope, const Totals& delta);

/// RAII phase scope. Construct via COAXIAL_PROF_SCOPE so the whole thing
/// can be compiled out with COAXIAL_NO_PROF.
class ScopedTimer {
 public:
  explicit ScopedTimer(Phase p) {
    if (!enabled()) return;
    st_ = &detail::tls();
    idx_ = static_cast<std::size_t>(p);
    ++st_->totals.calls[idx_];
    timing_ = st_->depth[idx_]++ == 0;  // Re-entrant: outermost scope times.
    if (timing_) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (st_ == nullptr) return;  // Was disabled at entry; stay inert.
    --st_->depth[idx_];
    if (!timing_) return;
    const auto end = std::chrono::steady_clock::now();
    st_->totals.ns[idx_] += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_).count());
  }

 private:
  detail::ThreadState* st_ = nullptr;
  std::size_t idx_ = 0;
  bool timing_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace coaxial::obs::prof

#ifdef COAXIAL_NO_PROF
#define COAXIAL_PROF_SCOPE(phase)
#else
#define COAXIAL_PROF_CONCAT2(a, b) a##b
#define COAXIAL_PROF_CONCAT(a, b) COAXIAL_PROF_CONCAT2(a, b)
#define COAXIAL_PROF_SCOPE(phase)                                   \
  ::coaxial::obs::prof::ScopedTimer COAXIAL_PROF_CONCAT(            \
      coaxial_prof_scope_, __LINE__)(::coaxial::obs::prof::Phase::phase)
#endif
