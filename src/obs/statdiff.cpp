#include "obs/statdiff.hpp"

#include <cmath>

namespace coaxial::obs {

namespace {

std::string render(const json::Value& v) {
  switch (v.kind) {
    case json::Value::Kind::kNull: return "null";
    case json::Value::Kind::kBool: return v.boolean ? "true" : "false";
    case json::Value::Kind::kString: return "\"" + v.str + "\"";
    case json::Value::Kind::kNumber:
      return v.integral ? json::number(static_cast<std::uint64_t>(v.num))
                        : json::number(v.num);
  }
  return "?";
}

}  // namespace

bool is_glob(const std::string& pattern) {
  return pattern.find_first_of("*?") != std::string::npos;
}

bool glob_match(const std::string& pattern, const std::string& path) {
  // Classic two-pointer matcher with backtracking to the last `*`.
  std::size_t p = 0, s = 0;
  std::size_t star = std::string::npos, star_s = 0;
  while (s < path.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == path[s])) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_s = s;
    } else if (star != std::string::npos) {
      p = star + 1;
      s = ++star_s;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

double DiffOptions::rtol_for(const std::string& path, bool integral) const {
  double tol = integral ? 0.0 : default_rtol;
  for (const DiffRule& rule : rules) {
    const bool matches = is_glob(rule.pattern)
                             ? glob_match(rule.pattern, path)
                             : path.find(rule.pattern) != std::string::npos;
    if (matches) tol = rule.rtol;
  }
  return tol;
}

double relative_error(double a, double b) {
  if (a == b) return 0.0;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return scale == 0.0 ? 0.0 : std::fabs(a - b) / scale;
}

std::vector<Diff> diff_stats(const json::Flat& a, const json::Flat& b,
                             const DiffOptions& opts) {
  std::vector<Diff> out;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      out.push_back({ia->first, render(ia->second), "<missing>", 0.0, "missing"});
      ++ia;
      continue;
    }
    if (ia == a.end() || ib->first < ia->first) {
      out.push_back({ib->first, "<missing>", render(ib->second), 0.0, "missing"});
      ++ib;
      continue;
    }
    const std::string& path = ia->first;
    const json::Value& va = ia->second;
    const json::Value& vb = ib->second;
    ++ia;
    ++ib;

    if (va.kind != vb.kind) {
      out.push_back({path, render(va), render(vb), 0.0, "type"});
      continue;
    }
    switch (va.kind) {
      case json::Value::Kind::kNull:
        break;
      case json::Value::Kind::kBool:
        if (va.boolean != vb.boolean) {
          out.push_back({path, render(va), render(vb), 0.0, "bool"});
        }
        break;
      case json::Value::Kind::kString:
        if (va.str != vb.str) {
          out.push_back({path, render(va), render(vb), 0.0, "string"});
        }
        break;
      case json::Value::Kind::kNumber: {
        const bool integral = va.integral && vb.integral;
        const double tol = opts.rtol_for(path, integral);
        const double rel = relative_error(va.num, vb.num);
        if (rel > tol) {
          out.push_back({path, render(va), render(vb), rel,
                         tol == 0.0 ? "not-exact" : "exceeds-rtol"});
        }
        break;
      }
    }
  }
  return out;
}

std::string to_string(const Diff& d) {
  std::string s = d.path + ": " + d.lhs + " vs " + d.rhs + " (" + d.reason;
  if (d.rel_error > 0.0) s += ", rel=" + json::number(d.rel_error);
  s += ")";
  return s;
}

}  // namespace coaxial::obs
