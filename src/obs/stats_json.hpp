// Canonical JSON emission and parsing for stats trees. No external deps.
//
// Emission is canonical: object keys come from deterministically ordered
// inputs, indentation is fixed, integers print as integers, and doubles
// print with "%.17g" (round-trippable). Two identical simulations therefore
// produce byte-identical documents — the property the determinism and
// golden-regression tests assert.
//
// The parser handles the full JSON value grammar (objects, arrays, strings,
// numbers, booleans, null) and flattens nested documents into a
// slash-joined path -> leaf map (array elements get zero-padded indices),
// which is the representation statdiff compares.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace coaxial::obs::json {

/// Canonical streaming writer. The caller is responsible for well-formed
/// begin/end pairing; keys only inside objects.
class Writer {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& k);
  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::uint64_t v);
  void value(bool v);
  void null();

  /// The accumulated document (call after the outermost end_*).
  const std::string& str() const { return out_; }

 private:
  void comma_and_indent(bool is_close = false);
  void pre_value();

  std::string out_;
  int depth_ = 0;
  bool need_comma_ = false;
  bool after_key_ = false;
};

/// JSON string escaping (control characters, quote, backslash).
std::string escape(const std::string& s);

/// Canonical number text: integers exact, doubles via %.17g; non-finite
/// values become null (JSON has no NaN/Inf).
std::string number(double v);
std::string number(std::uint64_t v);

/// Write a flat metrics snapshot as a nested object tree, splitting paths
/// on '/'. The snapshot's map order makes the output deterministic.
void write_snapshot(Writer& w, const Snapshot& snap);

/// Convenience: a standalone document holding just the snapshot tree.
std::string snapshot_to_json(const Snapshot& snap);

// ----------------------------------------------------------------- parsing

struct Value {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  double num = 0.0;
  bool integral = false;  ///< Number had no '.', 'e', or 'E' in its lexeme.
  bool boolean = false;
  std::string str;
};

/// Flattened document: nested keys joined with '/', array indices as
/// zero-padded 3-digit numbers ("runs/000/...").
using Flat = std::map<std::string, Value>;

/// Parse a JSON document into its flattened form.
/// Throws std::runtime_error with position info on malformed input.
Flat parse_flat(const std::string& text);

}  // namespace coaxial::obs::json
