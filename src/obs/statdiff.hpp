// Tolerance-based comparison of two flattened stats documents.
//
// The comparison rule set mirrors how the golden-regression tests guard
// behaviour: integral leaves (counters, histogram counts, cycle
// percentiles) must match exactly; floating leaves pass within a relative
// tolerance; strings and booleans must match exactly; structural
// differences (a path present on one side only, or with different types)
// always count as diffs. Per-metric overrides select by substring match on
// the path, or by glob when the pattern contains `*` / `?` (so one rule
// like `fabric/*/queue_delay_sum` covers a whole metric subtree) — the
// last matching rule wins, so specific rules can follow a broad default.
//
// Shared by the `statdiff` CLI (tools/statdiff.cpp) and the golden test.
#pragma once

#include <string>
#include <vector>

#include "obs/stats_json.hpp"

namespace coaxial::obs {

struct DiffRule {
  /// Substring of the metric path, or a glob over the full path when it
  /// contains `*` (any run, including `/`) or `?` (any one character).
  std::string pattern;
  double rtol = 0.0;
};

/// True if `pattern` is interpreted as a glob (contains `*` or `?`).
bool is_glob(const std::string& pattern);

/// Glob match of `pattern` against the full `path`. `*` matches any run of
/// characters including `/` (subtree rules stay one-liners); `?` matches
/// exactly one character. Linear-time two-pointer matcher, no regex.
bool glob_match(const std::string& pattern, const std::string& path);

struct DiffOptions {
  /// Relative tolerance applied to non-integral numeric leaves with no
  /// matching rule. Integral leaves stay exact unless a rule matches them.
  double default_rtol = 0.0;
  std::vector<DiffRule> rules;

  double rtol_for(const std::string& path, bool integral) const;
};

struct Diff {
  std::string path;
  std::string lhs;   ///< Rendered left value ("<missing>" when absent).
  std::string rhs;
  double rel_error = 0.0;  ///< For numeric mismatches.
  std::string reason;      ///< "missing", "type", "exceeds-rtol", ...
};

/// All differences between `a` and `b` under `opts`, in path order.
std::vector<Diff> diff_stats(const json::Flat& a, const json::Flat& b,
                             const DiffOptions& opts);

/// Relative error |a-b| / max(|a|, |b|), 0 when both are 0.
double relative_error(double a, double b);

/// One-line rendering of a diff for logs and the CLI.
std::string to_string(const Diff& d);

}  // namespace coaxial::obs
