// Hierarchical metrics registry: the single source of truth for simulation
// statistics.
//
// Components (DRAM controllers, CXL links, caches, CALM, the system loop)
// register instruments at construction under slash-separated paths
// ("mem/dram/ctrl00/reads_done"). Three instrument families:
//
//  * owned instruments — Counter / Gauge / LatencyHistogram allocated by the
//    registry and updated directly on the hot path (stable addresses);
//  * probes — callbacks sampled only at snapshot time, used by components
//    that keep their own internal stats structs (cheap to register, zero
//    hot-path cost);
//  * histogram views — a component-owned LatencyHistogram exposed as
//    count/mean/percentile leaves.
//
// `snapshot()` flattens everything into a deterministic, lexicographically
// ordered path -> value map, which the JSON emitter (stats_json.hpp) turns
// into a nested stats tree. Determinism is load-bearing: the golden and
// determinism tests compare emitted bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/histogram.hpp"
#include "common/stats.hpp"

namespace coaxial::obs {

/// Monotonic integer instrument.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { v_ += delta; }
  void set(std::uint64_t v) { v_ = v; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

/// Point-in-time floating value instrument (also used for accumulating sums
/// of fractional quantities via `add`).
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double delta) { v_ += delta; }
  double value() const { return v_; }
  void reset() { v_ = 0.0; }

 private:
  double v_ = 0.0;
};

/// One flattened metric sample. Integral values (counters, histogram counts
/// and cycle percentiles) are emitted as JSON integers and compared exactly
/// by statdiff; non-integral values go through relative tolerances.
struct MetricValue {
  bool integral = false;
  std::uint64_t count = 0;  ///< Valid when `integral`.
  double value = 0.0;       ///< Valid when `!integral`.

  static MetricValue of(std::uint64_t v) { return {true, v, 0.0}; }
  static MetricValue of(double v) { return {false, 0, v}; }
  double as_double() const { return integral ? static_cast<double>(count) : value; }
};

/// Deterministically ordered flat view of every registered metric.
using Snapshot = std::map<std::string, MetricValue>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Owned instruments. Re-requesting an existing path of the same kind
  /// returns the same instrument; registering a path that already holds a
  /// different kind throws std::invalid_argument.
  Counter& counter(const std::string& path);
  Gauge& gauge(const std::string& path);
  LatencyHistogram& histogram(const std::string& path, std::size_t max_cycles = 16384);

  /// Probes: sampled at snapshot time. Duplicate paths throw.
  void expose(const std::string& path, std::function<double()> probe);
  void expose_counter(const std::string& path, std::function<std::uint64_t()> probe);

  /// Expose a component-owned histogram as count/mean/p50/p90/p99 leaves
  /// under `path`. The histogram must outlive the registry's snapshots.
  void expose_histogram(const std::string& path, const LatencyHistogram& hist);

  /// Expose a component-owned FixedHistogram as count/mean/p50/p90/p99/
  /// p999/max leaves under `path` (the service-latency leaf set; the cycle
  /// percentiles and max are integral, so statdiff compares them exactly).
  /// The histogram must outlive the registry's snapshots.
  void expose_fixed_histogram(const std::string& path, const FixedHistogram& hist);

  bool contains(const std::string& path) const;
  std::size_t size() const;

  Snapshot snapshot() const;

 private:
  void check_fresh(const std::string& path) const;

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> hists_;
  std::map<std::string, std::function<double()>> gauge_probes_;
  std::map<std::string, std::function<std::uint64_t()>> counter_probes_;
  std::map<std::string, const LatencyHistogram*> hist_views_;
  std::map<std::string, const FixedHistogram*> fixed_hist_views_;
};

/// A (registry, path-prefix) handle passed down component constructors.
/// A default-constructed Scope is inert: every registration is a no-op and
/// instrument getters return nullptr, so components remain constructible
/// standalone (unit tests, micro-benches) with zero observability cost.
class Scope {
 public:
  Scope() = default;
  Scope(MetricsRegistry* registry, std::string prefix)
      : reg_(registry), prefix_(std::move(prefix)) {}

  bool valid() const { return reg_ != nullptr; }
  MetricsRegistry* registry() const { return reg_; }
  const std::string& prefix() const { return prefix_; }

  Scope sub(const std::string& name) const {
    return valid() ? Scope(reg_, join(name)) : Scope();
  }

  /// Feature-gated subtree: `sub(name)` when `enabled`, an inert Scope
  /// otherwise. This is the shared "subtree registered only when the
  /// feature is on" pattern (`ras/*`, `tier/*`, `svc/*`, `pool/*`):
  /// registration code stays unconditional while the metrics-tree shape —
  /// and therefore the golden stats document — is untouched whenever the
  /// feature is off.
  Scope sub(const std::string& name, bool enabled) const {
    return enabled ? sub(name) : Scope();
  }

  Counter* counter(const std::string& name) const {
    return valid() ? &reg_->counter(join(name)) : nullptr;
  }
  Gauge* gauge(const std::string& name) const {
    return valid() ? &reg_->gauge(join(name)) : nullptr;
  }
  LatencyHistogram* histogram(const std::string& name,
                              std::size_t max_cycles = 16384) const {
    return valid() ? &reg_->histogram(join(name), max_cycles) : nullptr;
  }
  void expose(const std::string& name, std::function<double()> probe) const {
    if (valid()) reg_->expose(join(name), std::move(probe));
  }
  void expose_counter(const std::string& name,
                      std::function<std::uint64_t()> probe) const {
    if (valid()) reg_->expose_counter(join(name), std::move(probe));
  }
  void expose_histogram(const std::string& name, const LatencyHistogram& hist) const {
    if (valid()) reg_->expose_histogram(join(name), hist);
  }
  void expose_fixed_histogram(const std::string& name, const FixedHistogram& hist) const {
    if (valid()) reg_->expose_fixed_histogram(join(name), hist);
  }

 private:
  std::string join(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "/" + name;
  }

  MetricsRegistry* reg_ = nullptr;
  std::string prefix_;
};

/// Fixed-width decimal index ("00", "01", ...) so sibling instances sort
/// numerically in the lexicographic snapshot order.
std::string idx(std::uint32_t value, int width = 2);

}  // namespace coaxial::obs
