#include "obs/stats_json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace coaxial::obs::json {

// ------------------------------------------------------------------ writer

void Writer::comma_and_indent(bool is_close) {
  if (need_comma_ && !is_close) out_ += ',';
  out_ += '\n';
  out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
}

void Writer::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;  // Value follows "key": on the same line.
  }
  if (depth_ > 0) comma_and_indent();
}

void Writer::begin_object() {
  pre_value();
  out_ += '{';
  ++depth_;
  need_comma_ = false;
}

void Writer::end_object() {
  --depth_;
  if (need_comma_) comma_and_indent(/*is_close=*/true);
  out_ += '}';
  need_comma_ = true;
}

void Writer::begin_array() {
  pre_value();
  out_ += '[';
  ++depth_;
  need_comma_ = false;
}

void Writer::end_array() {
  --depth_;
  if (need_comma_) comma_and_indent(/*is_close=*/true);
  out_ += ']';
  need_comma_ = true;
}

void Writer::key(const std::string& k) {
  comma_and_indent();
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  need_comma_ = true;
  after_key_ = true;
}

void Writer::value(const std::string& v) {
  pre_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  need_comma_ = true;
}

void Writer::value(const char* v) { value(std::string(v)); }

void Writer::value(double v) {
  pre_value();
  out_ += number(v);
  need_comma_ = true;
}

void Writer::value(std::uint64_t v) {
  pre_value();
  out_ += number(v);
  need_comma_ = true;
}

void Writer::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

void Writer::null() {
  pre_value();
  out_ += "null";
  need_comma_ = true;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string number(std::uint64_t v) { return std::to_string(v); }

void write_snapshot(Writer& w, const Snapshot& snap) {
  // The snapshot is sorted by path; emit a nested tree by tracking the
  // group stack (path segments before the leaf) across consecutive keys.
  std::vector<std::string> open;  // Currently open group segments.
  w.begin_object();
  for (const auto& [path, value] : snap) {
    std::vector<std::string> segs;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= path.size(); ++i) {
      if (i == path.size() || path[i] == '/') {
        segs.push_back(path.substr(start, i - start));
        start = i + 1;
      }
    }
    const std::string leaf = segs.back();
    segs.pop_back();

    std::size_t common = 0;
    while (common < open.size() && common < segs.size() && open[common] == segs[common]) {
      ++common;
    }
    while (open.size() > common) {
      w.end_object();
      open.pop_back();
    }
    while (open.size() < segs.size()) {
      w.key(segs[open.size()]);
      w.begin_object();
      open.push_back(segs[open.size()]);
    }
    w.key(leaf);
    if (value.integral) {
      w.value(value.count);
    } else {
      w.value(value.value);
    }
  }
  while (!open.empty()) {
    w.end_object();
    open.pop_back();
  }
  w.end_object();
}

std::string snapshot_to_json(const Snapshot& snap) {
  Writer w;
  write_snapshot(w, snap);
  return w.str() + "\n";
}

// ------------------------------------------------------------------ parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Flat parse() {
    Flat out;
    skip_ws();
    parse_value(out, "");
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) throw std::runtime_error("JSON parse error: unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u digit");
            }
            // Our emitter only escapes control chars; decode BMP as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  void parse_number(Flat& out, const std::string& path) {
    const std::size_t start = pos_;
    bool integral = true;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("bad number");
    Value v;
    v.kind = Value::Kind::kNumber;
    v.integral = integral;
    try {
      v.num = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("unparsable number");
    }
    out[path] = v;
  }

  static std::string join(const std::string& path, const std::string& key) {
    return path.empty() ? key : path + "/" + key;
  }

  void parse_value(Flat& out, const std::string& path) {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return;
      }
      while (true) {
        skip_ws();
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        parse_value(out, join(path, key));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
    } else if (c == '[') {
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return;
      }
      std::uint32_t i = 0;
      while (true) {
        parse_value(out, join(path, idx(i++, 3)));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        break;
      }
    } else if (c == '"') {
      Value v;
      v.kind = Value::Kind::kString;
      v.str = parse_string();
      out[path] = v;
    } else if (consume_literal("true")) {
      Value v;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      out[path] = v;
    } else if (consume_literal("false")) {
      Value v;
      v.kind = Value::Kind::kBool;
      v.boolean = false;
      out[path] = v;
    } else if (consume_literal("null")) {
      out[path] = Value{};
    } else {
      parse_number(out, path);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Flat parse_flat(const std::string& text) { return Parser(text).parse(); }

}  // namespace coaxial::obs::json
