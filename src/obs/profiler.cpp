#include "obs/profiler.hpp"

#include <atomic>

#include "common/env.hpp"
#include "obs/metrics.hpp"

namespace coaxial::obs::prof {

namespace {

// -1 = uninitialized (read COAXIAL_PROF on first query), 0/1 = forced.
std::atomic<int> g_enabled{-1};

constexpr const char* kPhaseNames[kPhaseCount] = {
    "core_tick",      "workload_gen", "cache_access", "mshr",
    "dram_tick",      "dram_try_issue", "link_serialize", "fabric_arb",
    "mem_pump",       "event_drain",  "sched_dispatch",
    "shard/pump",     "shard/barrier_wait", "shard/mailbox_drain",
};

}  // namespace

const char* phase_name(Phase p) { return kPhaseNames[static_cast<std::size_t>(p)]; }

bool enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = env_flag("COAXIAL_PROF") ? 1 : 0;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_enabled(bool on) { g_enabled.store(on ? 1 : 0, std::memory_order_relaxed); }

namespace detail {

ThreadState& tls() {
  thread_local ThreadState state;
  return state;
}

}  // namespace detail

void reset_thread_totals() { detail::tls() = detail::ThreadState{}; }

void publish(const Scope& scope, const Totals& delta) {
  if (!scope.valid()) return;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Scope ph = scope.sub(kPhaseNames[i]);
    ph.counter("ns")->set(delta.ns[i]);
    ph.counter("calls")->set(delta.calls[i]);
  }
}

}  // namespace coaxial::obs::prof
