#include "obs/metrics.hpp"

#include <stdexcept>

namespace coaxial::obs {

void MetricsRegistry::check_fresh(const std::string& path) const {
  if (contains(path)) {
    throw std::invalid_argument("metric path already registered: " + path);
  }
}

Counter& MetricsRegistry::counter(const std::string& path) {
  auto it = counters_.find(path);
  if (it != counters_.end()) return *it->second;
  check_fresh(path);
  return *counters_.emplace(path, std::make_unique<Counter>()).first->second;
}

Gauge& MetricsRegistry::gauge(const std::string& path) {
  auto it = gauges_.find(path);
  if (it != gauges_.end()) return *it->second;
  check_fresh(path);
  return *gauges_.emplace(path, std::make_unique<Gauge>()).first->second;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& path,
                                             std::size_t max_cycles) {
  auto it = hists_.find(path);
  if (it != hists_.end()) return *it->second;
  check_fresh(path);
  return *hists_.emplace(path, std::make_unique<LatencyHistogram>(max_cycles))
              .first->second;
}

void MetricsRegistry::expose(const std::string& path, std::function<double()> probe) {
  check_fresh(path);
  gauge_probes_.emplace(path, std::move(probe));
}

void MetricsRegistry::expose_counter(const std::string& path,
                                     std::function<std::uint64_t()> probe) {
  check_fresh(path);
  counter_probes_.emplace(path, std::move(probe));
}

void MetricsRegistry::expose_histogram(const std::string& path,
                                       const LatencyHistogram& hist) {
  check_fresh(path);
  hist_views_.emplace(path, &hist);
}

void MetricsRegistry::expose_fixed_histogram(const std::string& path,
                                             const FixedHistogram& hist) {
  check_fresh(path);
  fixed_hist_views_.emplace(path, &hist);
}

bool MetricsRegistry::contains(const std::string& path) const {
  return counters_.count(path) != 0 || gauges_.count(path) != 0 ||
         hists_.count(path) != 0 || gauge_probes_.count(path) != 0 ||
         counter_probes_.count(path) != 0 || hist_views_.count(path) != 0 ||
         fixed_hist_views_.count(path) != 0;
}

std::size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + hists_.size() + gauge_probes_.size() +
         counter_probes_.size() + hist_views_.size() + fixed_hist_views_.size();
}

namespace {
void flatten_hist(Snapshot& out, const std::string& path, const LatencyHistogram& h) {
  out[path + "/count"] = MetricValue::of(h.count());
  out[path + "/mean"] = MetricValue::of(h.mean());
  out[path + "/p50"] = MetricValue::of(static_cast<std::uint64_t>(h.percentile(0.50)));
  out[path + "/p90"] = MetricValue::of(static_cast<std::uint64_t>(h.percentile(0.90)));
  out[path + "/p99"] = MetricValue::of(static_cast<std::uint64_t>(h.percentile(0.99)));
}

void flatten_fixed_hist(Snapshot& out, const std::string& path, const FixedHistogram& h) {
  out[path + "/count"] = MetricValue::of(h.count());
  out[path + "/mean"] = MetricValue::of(h.mean());
  out[path + "/p50"] = MetricValue::of(h.percentile(0.50));
  out[path + "/p90"] = MetricValue::of(h.percentile(0.90));
  out[path + "/p99"] = MetricValue::of(h.percentile(0.99));
  out[path + "/p999"] = MetricValue::of(h.percentile(0.999));
  out[path + "/max"] = MetricValue::of(h.max());
}
}  // namespace

Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  for (const auto& [path, c] : counters_) out[path] = MetricValue::of(c->value());
  for (const auto& [path, g] : gauges_) out[path] = MetricValue::of(g->value());
  for (const auto& [path, probe] : counter_probes_) out[path] = MetricValue::of(probe());
  for (const auto& [path, probe] : gauge_probes_) out[path] = MetricValue::of(probe());
  for (const auto& [path, h] : hists_) flatten_hist(out, path, *h);
  for (const auto& [path, h] : hist_views_) flatten_hist(out, path, *h);
  for (const auto& [path, h] : fixed_hist_views_) flatten_fixed_hist(out, path, *h);
  return out;
}

std::string idx(std::uint32_t value, int width) {
  std::string s = std::to_string(value);
  while (static_cast<int>(s.size()) < width) s.insert(s.begin(), '0');
  return s;
}

}  // namespace coaxial::obs
