// Set-associative write-back cache tag/state array.
//
// This class is purely functional (tags, LRU state, dirty bits); access
// *timing* — hit latencies, MSHR occupancy, NoC traversal — is composed by
// the simulation layer, which lets the same class serve as L1D, L2, and an
// LLC slice. Addresses are cache-line indices (byte address >> 6).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/replacement.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace coaxial::cache {

struct Eviction {
  Addr line = 0;
  bool dirty = false;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;
  std::uint64_t writes = 0;

  double miss_ratio() const {
    const double total = static_cast<double>(hits + misses);
    return total == 0 ? 0.0 : static_cast<double>(misses) / total;
  }
};

class Cache {
 public:
  /// `size_bytes` must be a multiple of `ways * kLineBytes`. `scope`, when
  /// valid, registers this cache's hit/miss/fill/eviction counters into the
  /// metrics registry at construction.
  Cache(std::size_t size_bytes, std::uint32_t ways,
        ReplacementPolicy policy = ReplacementPolicy::kLru, obs::Scope scope = {});

  /// Tag probe without state update (used by the CALM oracle predictor).
  bool probe(Addr line) const;

  /// Lookup for a read; updates recency on hit.
  bool lookup(Addr line);

  /// Lookup for a write; marks the line dirty on hit, updates recency.
  bool write(Addr line);

  /// Insert `line` (optionally dirty, optionally carrying RAS poison).
  /// Returns the victim if a valid line was displaced. The caller decides
  /// what a dirty victim means (write back to the next level or to memory).
  std::optional<Eviction> fill(Addr line, bool dirty, bool poisoned = false);

  /// True if `line` is present and holds poisoned data. Pure query (no
  /// recency update); callers typically scrub after recording the event.
  bool poisoned(Addr line) const;

  /// Clear the poison bit on `line` (machine-check recovery scrub). No-op
  /// if the line is absent.
  void clear_poison(Addr line);

  /// Mark an existing line dirty (e.g. store completing after an RFO fill).
  /// No-op if the line is absent.
  void mark_dirty(Addr line);

  /// Remove `line` if present; returns its eviction record.
  std::optional<Eviction> invalidate(Addr line);

  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }
  std::size_t size_bytes() const;
  ReplacementPolicy policy() const { return policy_; }

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  // Tag/metadata state is split structure-of-arrays style: the hot path is
  // the associative tag scan (every lookup/write/fill walks a whole set on
  // a miss), and with tags packed 8 per host cache line a 16-way set costs
  // 2 line touches instead of the 6 an array-of-structs layout pays. The
  // replacement stamps and dirty/poison flags live in parallel arrays and
  // are only touched on a hit or a fill decision. An invalid way is encoded
  // as the reserved tag kInvalidTag (no line index reaches ~0: addresses
  // are byte addresses >> 6, so the top 6 bits are always clear).
  static constexpr Addr kInvalidTag = ~static_cast<Addr>(0);
  static constexpr std::size_t kNoWay = ~static_cast<std::size_t>(0);

  /// Flags array bit layout.
  static constexpr std::uint8_t kDirty = 1u << 0;
  static constexpr std::uint8_t kPoisoned = 1u << 1;

  std::uint32_t set_index(Addr line) const { return static_cast<std::uint32_t>(line) & set_mask_; }
  std::size_t find(Addr line) const;        ///< Way index, or kNoWay.
  void touch(std::size_t idx);              ///< Policy hit-promotion.
  std::size_t select_victim(std::size_t base);  ///< Victim within a full set.

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint32_t set_mask_;
  ReplacementPolicy policy_;
  /// Sets fill ways front-to-back and only invalidate() punches holes, so
  /// while this is false the first invalid way in a scan proves no valid
  /// way (and hence no match) exists beyond it — scans of partially-filled
  /// sets stop early instead of walking all ways.
  bool holes_possible_ = false;
  std::uint64_t tick_ = 0;  ///< Monotonic recency stamp (LRU).
  Rng rng_{0xcace};         ///< Victim choice for the Random policy.
  std::vector<Addr> tags_;           ///< kInvalidTag = way not valid.
  std::vector<std::uint64_t> repl_;  ///< Policy metadata (see replacement.hpp).
  std::vector<std::uint8_t> flags_;  ///< kDirty | kPoisoned.
  CacheStats stats_;
};

}  // namespace coaxial::cache
