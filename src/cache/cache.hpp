// Set-associative write-back cache tag/state array.
//
// This class is purely functional (tags, LRU state, dirty bits); access
// *timing* — hit latencies, MSHR occupancy, NoC traversal — is composed by
// the simulation layer, which lets the same class serve as L1D, L2, and an
// LLC slice. Addresses are cache-line indices (byte address >> 6).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/replacement.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace coaxial::cache {

struct Eviction {
  Addr line = 0;
  bool dirty = false;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;
  std::uint64_t writes = 0;

  double miss_ratio() const {
    const double total = static_cast<double>(hits + misses);
    return total == 0 ? 0.0 : static_cast<double>(misses) / total;
  }
};

class Cache {
 public:
  /// `size_bytes` must be a multiple of `ways * kLineBytes`. `scope`, when
  /// valid, registers this cache's hit/miss/fill/eviction counters into the
  /// metrics registry at construction.
  Cache(std::size_t size_bytes, std::uint32_t ways,
        ReplacementPolicy policy = ReplacementPolicy::kLru, obs::Scope scope = {});

  /// Tag probe without state update (used by the CALM oracle predictor).
  bool probe(Addr line) const;

  /// Lookup for a read; updates recency on hit.
  bool lookup(Addr line);

  /// Lookup for a write; marks the line dirty on hit, updates recency.
  bool write(Addr line);

  /// Insert `line` (optionally dirty, optionally carrying RAS poison).
  /// Returns the victim if a valid line was displaced. The caller decides
  /// what a dirty victim means (write back to the next level or to memory).
  std::optional<Eviction> fill(Addr line, bool dirty, bool poisoned = false);

  /// True if `line` is present and holds poisoned data. Pure query (no
  /// recency update); callers typically scrub after recording the event.
  bool poisoned(Addr line) const;

  /// Clear the poison bit on `line` (machine-check recovery scrub). No-op
  /// if the line is absent.
  void clear_poison(Addr line);

  /// Mark an existing line dirty (e.g. store completing after an RFO fill).
  /// No-op if the line is absent.
  void mark_dirty(Addr line);

  /// Remove `line` if present; returns its eviction record.
  std::optional<Eviction> invalidate(Addr line);

  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }
  std::size_t size_bytes() const;
  ReplacementPolicy policy() const { return policy_; }

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct Way {
    Addr tag = 0;
    ReplState repl;  ///< Policy-specific metadata (see replacement.hpp).
    bool valid = false;
    bool dirty = false;
    bool poisoned = false;  ///< RAS: data poisoned end-to-end (DESIGN.md §7).
  };

  std::uint32_t set_index(Addr line) const { return static_cast<std::uint32_t>(line) & set_mask_; }
  Way* find(Addr line);
  const Way* find(Addr line) const;
  void touch(Way& way);          ///< Policy hit-promotion.
  Way* select_victim(Way* base); ///< Policy victim selection within a set.

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint32_t set_mask_;
  ReplacementPolicy policy_;
  std::uint64_t tick_ = 0;  ///< Monotonic recency stamp (LRU).
  Rng rng_{0xcace};         ///< Victim choice for the Random policy.
  std::vector<Way> array_;
  CacheStats stats_;
};

}  // namespace coaxial::cache
