#include "cache/cache.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/profiler.hpp"

namespace coaxial::cache {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(std::size_t size_bytes, std::uint32_t ways, ReplacementPolicy policy,
             obs::Scope scope)
    : ways_(ways), policy_(policy) {
  if (ways == 0 || size_bytes % (static_cast<std::size_t>(ways) * kLineBytes) != 0) {
    throw std::invalid_argument("cache size must be a multiple of ways * line size");
  }
  sets_ = static_cast<std::uint32_t>(size_bytes / (static_cast<std::size_t>(ways) * kLineBytes));
  if (!is_pow2(sets_)) throw std::invalid_argument("cache set count must be a power of two");
  set_mask_ = sets_ - 1;
  const std::size_t n = static_cast<std::size_t>(sets_) * ways_;
  tags_.assign(n, kInvalidTag);
  repl_.assign(n, 0);
  flags_.assign(n, 0);
  if (scope.valid()) {
    scope.expose_counter("hits", [this] { return stats_.hits; });
    scope.expose_counter("misses", [this] { return stats_.misses; });
    scope.expose_counter("fills", [this] { return stats_.fills; });
    scope.expose_counter("evictions", [this] { return stats_.evictions; });
    scope.expose_counter("dirty_evictions", [this] { return stats_.dirty_evictions; });
    scope.expose_counter("writes", [this] { return stats_.writes; });
  }
}

std::size_t Cache::size_bytes() const {
  return static_cast<std::size_t>(sets_) * ways_ * kLineBytes;
}

std::size_t Cache::find(Addr line) const {
  // kInvalidTag never equals a real line index, so no separate valid check.
  const std::size_t base = static_cast<std::size_t>(set_index(line)) * ways_;
  const Addr* tags = &tags_[base];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (tags[w] == line) return base + w;
    if (tags[w] == kInvalidTag && !holes_possible_) return kNoWay;
  }
  return kNoWay;
}

bool Cache::probe(Addr line) const { return find(line) != kNoWay; }

void Cache::touch(std::size_t idx) {
  switch (policy_) {
    case ReplacementPolicy::kLru:
      repl_[idx] = ++tick_;
      break;
    case ReplacementPolicy::kSrrip:
      repl_[idx] = 0;  // Near-immediate re-reference on hit.
      break;
    case ReplacementPolicy::kRandom:
      break;
  }
}

std::size_t Cache::select_victim(std::size_t base) {
  // Only called on a full set, so every way in [base, base + ways_) is valid.
  switch (policy_) {
    case ReplacementPolicy::kLru: {
      std::size_t victim = base;
      for (std::uint32_t w = 1; w < ways_; ++w) {
        if (repl_[base + w] < repl_[victim]) victim = base + w;
      }
      return victim;
    }
    case ReplacementPolicy::kSrrip:
      // Find a distant-future line, aging the whole set until one appears.
      for (;;) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
          if (repl_[base + w] >= kSrripMax) return base + w;
        }
        for (std::uint32_t w = 0; w < ways_; ++w) ++repl_[base + w];
      }
    case ReplacementPolicy::kRandom:
      return base + rng_.next_below(ways_);
  }
  return base;
}

bool Cache::lookup(Addr line) {
  COAXIAL_PROF_SCOPE(kCacheAccess);
  const std::size_t idx = find(line);
  if (idx != kNoWay) {
    touch(idx);
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

bool Cache::write(Addr line) {
  COAXIAL_PROF_SCOPE(kCacheAccess);
  ++stats_.writes;
  const std::size_t idx = find(line);
  if (idx != kNoWay) {
    touch(idx);
    flags_[idx] |= kDirty;
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

std::optional<Eviction> Cache::fill(Addr line, bool dirty, bool poisoned) {
  COAXIAL_PROF_SCOPE(kCacheAccess);
  ++stats_.fills;
  // One pass over the set resolves both the duplicate-fill check and the
  // first-invalid-way search (the common case walks the ways once, not
  // twice). Policy victim selection still runs only on a full set.
  const std::size_t base = static_cast<std::size_t>(set_index(line)) * ways_;
  const Addr* tags = &tags_[base];
  std::size_t victim = kNoWay;
  // For LRU the victim of a full set is the argmin recency stamp, which the
  // duplicate scan can carry along for free (same order, same strict-<
  // tie-break as select_victim) — a full-set LRU fill then walks the set
  // once instead of twice. lru_victim is only meaningful when the set turns
  // out to be full (every way valid), which is exactly when it gets used.
  const bool lru = policy_ == ReplacementPolicy::kLru;
  std::size_t lru_victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (tags[w] == line) {
      // Duplicate fill (e.g. CALM race where LLC and memory both return):
      // refresh recency, merge dirtiness and poison, no eviction.
      touch(base + w);
      flags_[base + w] |=
          static_cast<std::uint8_t>((dirty ? kDirty : 0) | (poisoned ? kPoisoned : 0));
      return std::nullopt;
    }
    if (tags[w] == kInvalidTag) {
      if (victim == kNoWay) victim = base + w;
      if (!holes_possible_) break;  // No valid way (so no duplicate) beyond.
    } else if (lru && repl_[base + w] < repl_[lru_victim]) {
      lru_victim = base + w;
    }
  }
  if (victim == kNoWay) victim = lru ? lru_victim : select_victim(base);
  std::optional<Eviction> evicted;
  if (tags_[victim] != kInvalidTag) {
    evicted = Eviction{tags_[victim], (flags_[victim] & kDirty) != 0};
    ++stats_.evictions;
    if (flags_[victim] & kDirty) ++stats_.dirty_evictions;
  }
  tags_[victim] = line;
  flags_[victim] =
      static_cast<std::uint8_t>((dirty ? kDirty : 0) | (poisoned ? kPoisoned : 0));
  repl_[victim] = policy_ == ReplacementPolicy::kSrrip ? kSrripInsert : ++tick_;
  return evicted;
}

bool Cache::poisoned(Addr line) const {
  const std::size_t idx = find(line);
  return idx != kNoWay && (flags_[idx] & kPoisoned) != 0;
}

void Cache::clear_poison(Addr line) {
  const std::size_t idx = find(line);
  if (idx != kNoWay) flags_[idx] &= static_cast<std::uint8_t>(~kPoisoned);
}

void Cache::mark_dirty(Addr line) {
  const std::size_t idx = find(line);
  if (idx != kNoWay) flags_[idx] |= kDirty;
}

std::optional<Eviction> Cache::invalidate(Addr line) {
  const std::size_t idx = find(line);
  if (idx != kNoWay) {
    Eviction ev{tags_[idx], (flags_[idx] & kDirty) != 0};
    tags_[idx] = kInvalidTag;
    flags_[idx] = 0;
    holes_possible_ = true;  // This set may now have a valid way past a hole.
    return ev;
  }
  return std::nullopt;
}

}  // namespace coaxial::cache
