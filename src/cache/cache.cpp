#include "cache/cache.hpp"

#include <cassert>
#include <stdexcept>

namespace coaxial::cache {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(std::size_t size_bytes, std::uint32_t ways, ReplacementPolicy policy,
             obs::Scope scope)
    : ways_(ways), policy_(policy) {
  if (ways == 0 || size_bytes % (static_cast<std::size_t>(ways) * kLineBytes) != 0) {
    throw std::invalid_argument("cache size must be a multiple of ways * line size");
  }
  sets_ = static_cast<std::uint32_t>(size_bytes / (static_cast<std::size_t>(ways) * kLineBytes));
  if (!is_pow2(sets_)) throw std::invalid_argument("cache set count must be a power of two");
  set_mask_ = sets_ - 1;
  array_.resize(static_cast<std::size_t>(sets_) * ways_);
  if (scope.valid()) {
    scope.expose_counter("hits", [this] { return stats_.hits; });
    scope.expose_counter("misses", [this] { return stats_.misses; });
    scope.expose_counter("fills", [this] { return stats_.fills; });
    scope.expose_counter("evictions", [this] { return stats_.evictions; });
    scope.expose_counter("dirty_evictions", [this] { return stats_.dirty_evictions; });
    scope.expose_counter("writes", [this] { return stats_.writes; });
  }
}

std::size_t Cache::size_bytes() const {
  return static_cast<std::size_t>(sets_) * ways_ * kLineBytes;
}

Cache::Way* Cache::find(Addr line) {
  Way* base = &array_[static_cast<std::size_t>(set_index(line)) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == line) return &base[w];
  }
  return nullptr;
}

const Cache::Way* Cache::find(Addr line) const {
  return const_cast<Cache*>(this)->find(line);
}

bool Cache::probe(Addr line) const { return find(line) != nullptr; }

void Cache::touch(Way& way) {
  switch (policy_) {
    case ReplacementPolicy::kLru:
      way.repl.value = ++tick_;
      break;
    case ReplacementPolicy::kSrrip:
      way.repl.value = 0;  // Near-immediate re-reference on hit.
      break;
    case ReplacementPolicy::kRandom:
      break;
  }
}

Cache::Way* Cache::select_victim(Way* base) {
  switch (policy_) {
    case ReplacementPolicy::kLru: {
      Way* victim = base;
      for (std::uint32_t w = 1; w < ways_; ++w) {
        if (base[w].repl.value < victim->repl.value) victim = &base[w];
      }
      return victim;
    }
    case ReplacementPolicy::kSrrip:
      // Find a distant-future line, aging the whole set until one appears.
      for (;;) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
          if (base[w].repl.value >= kSrripMax) return &base[w];
        }
        for (std::uint32_t w = 0; w < ways_; ++w) ++base[w].repl.value;
      }
    case ReplacementPolicy::kRandom:
      return &base[rng_.next_below(ways_)];
  }
  return base;
}

bool Cache::lookup(Addr line) {
  if (Way* w = find(line)) {
    touch(*w);
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

bool Cache::write(Addr line) {
  ++stats_.writes;
  if (Way* w = find(line)) {
    touch(*w);
    w->dirty = true;
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

std::optional<Eviction> Cache::fill(Addr line, bool dirty, bool poisoned) {
  ++stats_.fills;
  if (Way* existing = find(line)) {
    // Duplicate fill (e.g. CALM race where LLC and memory both return):
    // refresh recency, merge dirtiness and poison, no eviction.
    touch(*existing);
    existing->dirty = existing->dirty || dirty;
    existing->poisoned = existing->poisoned || poisoned;
    return std::nullopt;
  }
  Way* base = &array_[static_cast<std::size_t>(set_index(line)) * ways_];
  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
  }
  if (victim == nullptr) victim = select_victim(base);
  std::optional<Eviction> evicted;
  if (victim->valid) {
    evicted = Eviction{victim->tag, victim->dirty};
    ++stats_.evictions;
    if (victim->dirty) ++stats_.dirty_evictions;
  }
  victim->valid = true;
  victim->tag = line;
  victim->dirty = dirty;
  victim->poisoned = poisoned;
  victim->repl.value =
      policy_ == ReplacementPolicy::kSrrip ? kSrripInsert : ++tick_;
  return evicted;
}

bool Cache::poisoned(Addr line) const {
  const Way* w = find(line);
  return w != nullptr && w->poisoned;
}

void Cache::clear_poison(Addr line) {
  if (Way* w = find(line)) w->poisoned = false;
}

void Cache::mark_dirty(Addr line) {
  if (Way* w = find(line)) w->dirty = true;
}

std::optional<Eviction> Cache::invalidate(Addr line) {
  if (Way* w = find(line)) {
    Eviction ev{w->tag, w->dirty};
    w->valid = false;
    w->dirty = false;
    w->poisoned = false;
    return ev;
  }
  return std::nullopt;
}

}  // namespace coaxial::cache
