// Replacement policies for the set-associative cache.
//
// LRU is the paper's configuration; SRRIP (Jaleel et al., ISCA'10) and
// Random are provided for ablation studies (bench_ablations) — streaming
// workloads interact very differently with scan-resistant policies, which
// changes how much LLC capacity matters to COAXIAL-4x's halved LLC.
#pragma once

#include <cstdint>

namespace coaxial::cache {

enum class ReplacementPolicy : std::uint8_t {
  kLru,     ///< Least-recently-used (default; matches the paper).
  kSrrip,   ///< Static re-reference interval prediction, 2-bit RRPV.
  kRandom,  ///< Uniform random victim.
};

/// Per-line replacement metadata, interpreted per policy:
/// LRU: monotonic recency stamp (higher = more recent).
/// SRRIP: re-reference prediction value in [0, 3] (3 = distant).
/// Random: unused.
struct ReplState {
  std::uint64_t value = 0;
};

inline constexpr std::uint64_t kSrripMax = 3;       ///< Distant future.
inline constexpr std::uint64_t kSrripInsert = 2;    ///< Long re-reference.

}  // namespace coaxial::cache
