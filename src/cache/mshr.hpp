// Miss Status Holding Registers: track outstanding misses per cache level
// and merge secondary misses to the same line.
//
// The MSHR is the structural limiter of memory-level parallelism at each
// level — when it fills, further misses stall at that level, which is how
// the simulator reproduces per-workload MLP limits.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "obs/profiler.hpp"

namespace coaxial::cache {

enum class MshrOutcome : std::uint8_t {
  kMerged,     ///< A miss to this line is already outstanding; waiter attached.
  kAllocated,  ///< New entry allocated; the caller must forward the miss.
  kFull,       ///< No free entry; the access must be retried.
};

class Mshr {
 public:
  explicit Mshr(std::size_t capacity) : capacity_(capacity) {}

  /// Record a miss for `line`, attaching `waiter` (an opaque id the owner
  /// uses to resume whoever was blocked on this line).
  MshrOutcome on_miss(Addr line, std::uint64_t waiter) {
    COAXIAL_PROF_SCOPE(kMshr);
    auto it = entries_.find(line);
    if (it != entries_.end()) {
      it->second.push_back(waiter);
      ++merged_;
      return MshrOutcome::kMerged;
    }
    if (entries_.size() >= capacity_) {
      ++rejected_;
      return MshrOutcome::kFull;
    }
    entries_.emplace(line, std::vector<std::uint64_t>{waiter});
    ++allocated_;
    return MshrOutcome::kAllocated;
  }

  bool holds(Addr line) const { return entries_.count(line) != 0; }

  /// Fill for `line`: pops the entry and returns all waiters (empty if the
  /// line was not outstanding, which callers treat as a stray fill).
  std::vector<std::uint64_t> on_fill(Addr line) {
    COAXIAL_PROF_SCOPE(kMshr);
    auto it = entries_.find(line);
    if (it == entries_.end()) return {};
    std::vector<std::uint64_t> waiters = std::move(it->second);
    entries_.erase(it);
    return waiters;
  }

  std::size_t in_flight() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return entries_.size() >= capacity_; }

  std::uint64_t merged() const { return merged_; }
  std::uint64_t allocations() const { return allocated_; }
  std::uint64_t rejections() const { return rejected_; }

 private:
  std::size_t capacity_;
  std::unordered_map<Addr, std::vector<std::uint64_t>> entries_;
  std::uint64_t merged_ = 0;
  std::uint64_t allocated_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace coaxial::cache
