// Per-bank DRAM state machine bookkeeping.
//
// Each bank tracks its open row and the earliest cycle at which each command
// class may next be issued to it. Cross-bank constraints (tRRD, tFAW, tCCD,
// bus turnaround) live in the controller.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace coaxial::dram {

struct Bank {
  bool open = false;
  std::uint32_t row = 0;

  Cycle next_act = 0;  ///< Earliest ACT (after tRP from PRE, or tRC from ACT).
  Cycle next_rd = 0;   ///< Earliest read CAS (after tRCD).
  Cycle next_wr = 0;   ///< Earliest write CAS (after tRCD).
  Cycle next_pre = 0;  ///< Earliest PRE (after tRAS / tRTP / tWR).

  bool row_hit(std::uint32_t r) const { return open && row == r; }
};

}  // namespace coaxial::dram
