// Line-address to DRAM-coordinate mapping for one sub-channel.
//
// The memory system stripes cache lines across sub-channels at line
// granularity *before* this mapper sees the address, so the mapper works on
// a controller-local line index. Layout (low to high bits):
//
//   column | bank-group | bank | row
//
// so that sequential controller-local lines fill a row buffer before moving
// to the next bank, preserving row locality under fine-grained channel
// interleaving. A XOR fold of low row bits into the bank index spreads
// row-conflict streams across banks (permutation-based interleaving).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "dram/timing.hpp"

namespace coaxial::dram {

/// Disable via AddressMap's constructor for ablation studies.
struct Coord {
  std::uint32_t rank = 0;
  std::uint32_t bank_group = 0;
  std::uint32_t bank = 0;  ///< Bank index within the group.
  std::uint32_t row = 0;
  std::uint32_t column = 0;

  /// Flat bank id within the rank.
  std::uint32_t flat_bank(const Geometry& g) const {
    return bank_group * g.banks_per_group + bank;
  }
  /// Flat bank id across all ranks of the sub-channel.
  std::uint32_t flat_bank_all(const Geometry& g) const {
    return rank * g.banks() + flat_bank(g);
  }
};

class AddressMap {
 public:
  explicit AddressMap(const Geometry& g, bool permutation_interleave = true)
      : geom_(g), permute_(permutation_interleave) {}

  Coord map(Addr local_line) const {
    Coord c;
    Addr rest = local_line;
    c.column = static_cast<std::uint32_t>(rest % geom_.columns);
    rest /= geom_.columns;
    std::uint32_t flat = static_cast<std::uint32_t>(rest % geom_.banks());
    rest /= geom_.banks();
    // Rank sits between bank and row: streams alternate ranks at a
    // banks*columns granularity, exposing rank-switch costs under load.
    c.rank = static_cast<std::uint32_t>(rest % geom_.ranks);
    rest /= geom_.ranks;
    c.row = static_cast<std::uint32_t>(rest % geom_.rows);
    if (permute_) {
      // Permutation-based interleaving: decorrelate bank from row so strided
      // row-conflict patterns still exploit bank-level parallelism.
      flat = (flat ^ (c.row & (geom_.banks() - 1))) % geom_.banks();
    }
    c.bank_group = flat / geom_.banks_per_group;
    c.bank = flat % geom_.banks_per_group;
    return c;
  }

  const Geometry& geometry() const { return geom_; }
  bool permutation_interleave() const { return permute_; }

 private:
  Geometry geom_;
  bool permute_;
};

}  // namespace coaxial::dram
