#include "dram/controller.hpp"

#include <algorithm>

namespace coaxial::dram {

namespace {
/// FR-FCFS fairness guard: only the oldest `kScanWindow` entries of a queue
/// compete for issue, bounding both starvation and per-tick scan cost.
constexpr std::size_t kScanWindow = 16;
}  // namespace

Controller::Controller(const Timing& timing, const Geometry& geometry,
                       std::size_t read_queue_depth, std::size_t write_queue_depth,
                       obs::Scope scope)
    : timing_(timing),
      amap_(geometry, geometry.permutation_interleave),
      read_depth_(read_queue_depth),
      write_depth_(write_queue_depth),
      banks_(geometry.total_banks()),
      bank_last_use_(geometry.total_banks(), 0),
      next_act_rank_(geometry.ranks, 0),
      next_act_group_(static_cast<std::size_t>(geometry.ranks) * geometry.bank_groups, 0),
      next_cas_rank_(geometry.ranks, 0),
      next_cas_group_(static_cast<std::size_t>(geometry.ranks) * geometry.bank_groups, 0),
      next_rd_after_wr_group_(static_cast<std::size_t>(geometry.ranks) * geometry.bank_groups, 0),
      faw_(geometry.ranks),
      next_refresh_(timing.refi),
      checker_(timing, geometry) {
  read_q_.reserve(read_depth_);
  write_q_.reserve(write_depth_);
  completions_.reserve(16);
  if (scope.valid()) {
    scope.expose_counter("reads_done", [this] { return stats_.reads_done; });
    scope.expose_counter("writes_done", [this] { return stats_.writes_done; });
    scope.expose_counter("reads_forwarded", [this] { return stats_.reads_forwarded; });
    scope.expose_counter("row_hits", [this] { return stats_.row_hits; });
    scope.expose_counter("row_misses", [this] { return stats_.row_misses; });
    scope.expose_counter("row_conflicts", [this] { return stats_.row_conflicts; });
    scope.expose_counter("activates", [this] { return stats_.activates; });
    scope.expose_counter("precharges", [this] { return stats_.precharges; });
    scope.expose_counter("refreshes", [this] { return stats_.refreshes; });
    scope.expose_counter("data_bus_busy_cycles",
                         [this] { return stats_.data_bus_busy_cycles; });
    scope.expose("read_queue_delay_sum", [this] { return stats_.read_queue_delay_sum; });
    scope.expose("read_service_sum", [this] { return stats_.read_service_sum; });
    scope.expose_histogram("read_latency", read_hist_);
    const obs::Scope inv = scope.sub("invariants");
    inv.expose_counter("violations", [this] { return checker_.violations(); });
    inv.expose_counter("trc", [this] { return checker_.trc_violations(); });
    inv.expose_counter("trcd", [this] { return checker_.trcd_violations(); });
    inv.expose_counter("trp", [this] { return checker_.trp_violations(); });
    inv.expose_counter("tras", [this] { return checker_.tras_violations(); });
    inv.expose_counter("tccd_l", [this] { return checker_.tccd_violations(); });
    inv.expose_counter("tfaw", [this] { return checker_.tfaw_violations(); });
    inv.expose_counter("refresh", [this] { return checker_.refresh_violations(); });
  }
}

bool Controller::can_accept(bool is_write) const {
  return is_write ? write_q_.size() < write_depth_ : read_q_.size() < read_depth_;
}

bool Controller::enqueue(Addr local_line, bool is_write, Cycle now, std::uint64_t token) {
  if (!can_accept(is_write)) return false;
  if (!is_write) {
    // Write-to-read forwarding: a read that hits a queued write is served
    // from the controller's write buffer without touching DRAM.
    for (const Request& w : write_q_) {
      if (w.local_line == local_line) {
        completions_.push_back({token, now + 1, 1, 0});
        ++stats_.reads_forwarded;
        read_hist_.add(1);
        return true;
      }
    }
  }
  Request req;
  req.coord = amap_.map(local_line);
  req.arrival = now;
  req.token = token;
  req.local_line = local_line;
  (is_write ? write_q_ : read_q_).push_back(req);
  return true;
}

Cycle Controller::tick(Cycle now) {
  if (now >= next_refresh_) refresh_pending_ = true;
  if (refresh_pending_) {
    if (try_refresh(now)) return now + 1;
    // While waiting to close banks for refresh we still allow CAS commands
    // below, so in-flight row hits drain naturally; ACTs are suppressed by
    // try_prep's refresh check.
  }
  if (read_q_.empty() && write_q_.empty()) {
    // Nothing to schedule; opportunistically close idled rows so the next
    // burst starts from precharged banks (adaptive open-page).
    if (open_banks_ > 0) idle_precharge(now);
    return compute_wake(now);
  }

  // Write-drain watermark policy (DRAMsim3-style): drain once the write
  // queue crosses half full (or reads are absent), down to 1/8. Frequent
  // read/write turnarounds are a first-order capacity loss on real
  // controllers; modelling them matters for the loaded-latency curve.
  if (!draining_writes_) {
    if (write_q_.size() >= write_depth_ / 2 || (read_q_.empty() && !write_q_.empty())) {
      draining_writes_ = true;
    }
  } else {
    if (write_q_.size() <= write_depth_ / 8 && !read_q_.empty()) draining_writes_ = false;
    if (write_q_.empty()) draining_writes_ = false;
  }

  if (draining_writes_) {
    if (try_issue(write_q_, /*is_write=*/true, now)) return now + 1;
    if (try_issue(read_q_, /*is_write=*/false, now)) return now + 1;
  } else {
    if (try_issue(read_q_, /*is_write=*/false, now)) return now + 1;
    if (try_issue(write_q_, /*is_write=*/true, now)) return now + 1;
  }
  idle_precharge(now);
  return compute_wake(now);
}

Cycle Controller::cas_ready_cycle(const Request& req, bool is_write, Cycle now) const {
  const Geometry& g = amap_.geometry();
  const Bank& b = banks_[req.coord.flat_bank_all(g)];
  Cycle t = std::max(now + 1, is_write ? b.next_wr : b.next_rd);
  t = std::max(t, next_cas_rank_[req.coord.rank]);
  const std::size_t rg = static_cast<std::size_t>(req.coord.rank) * g.bank_groups +
                         req.coord.bank_group;
  t = std::max(t, next_cas_group_[rg]);
  if (g.ranks > 1 && req.coord.rank != last_cas_rank_) {
    t = std::max(t, last_cas_end_ + timing_.cs);
  }
  if (is_write) {
    t = std::max(t, next_wr_bus_);
  } else {
    t = std::max(t, std::max(next_rd_bus_, next_rd_after_wr_group_[rg]));
  }
  return t;
}

Cycle Controller::prep_ready_cycle(const Request& req, Cycle now) const {
  const Geometry& g = amap_.geometry();
  const Bank& b = banks_[req.coord.flat_bank_all(g)];
  if (b.open && b.row != req.coord.row) return std::max(now + 1, b.next_pre);
  if (!b.open) {
    const std::size_t rg = static_cast<std::size_t>(req.coord.rank) * g.bank_groups +
                           req.coord.bank_group;
    Cycle t = std::max(now + 1, b.next_act);
    t = std::max(t, std::max(next_act_rank_[req.coord.rank], next_act_group_[rg]));
    const FawWindow& faw = faw_[req.coord.rank];
    if (faw.acts[faw.pos] != 0) t = std::max(t, faw.acts[faw.pos] + timing_.faw);
    return t;
  }
  return kNoCycle;  // Open on the right row: the CAS candidate covers it.
}

Cycle Controller::compute_wake(Cycle now) const {
  // Every constraint that gated an issue this cycle is a timestamp frozen
  // until the controller acts again, so the min over all candidates is a
  // sound wake-up: nothing can become issueable earlier.
  Cycle wake = kNoCycle;
  if (refresh_pending_) {
    // Blocked on closing banks (or on their PRE/ACT timing) for refresh.
    bool any_open = false;
    for (const Bank& b : banks_) {
      if (!b.open) continue;
      any_open = true;
      wake = std::min(wake, std::max(now + 1, b.next_pre));
    }
    if (!any_open) {
      Cycle ready = now + 1;
      for (const Bank& b : banks_) ready = std::max(ready, b.next_act);
      wake = std::min(wake, ready);
    }
  } else {
    wake = std::min(wake, std::max(now + 1, next_refresh_));
  }
  const auto queue_candidates = [&](const std::vector<Request>& q, bool is_write) {
    const std::size_t window = std::min(q.size(), kScanWindow);
    for (std::size_t i = 0; i < window; ++i) {
      const Request& req = q[i];
      const Bank& b = banks_[req.coord.flat_bank_all(amap_.geometry())];
      if (b.row_hit(req.coord.row)) {
        wake = std::min(wake, cas_ready_cycle(req, is_write, now));
      } else if (!refresh_pending_) {
        wake = std::min(wake, prep_ready_cycle(req, now));
      }
    }
  };
  queue_candidates(read_q_, /*is_write=*/false);
  queue_candidates(write_q_, /*is_write=*/true);
  if (timing_.idle_precharge != 0 && open_banks_ > 0) {
    for (std::uint32_t i = 0; i < banks_.size(); ++i) {
      const Bank& b = banks_[i];
      if (!b.open) continue;
      const Cycle eligible =
          std::max(b.next_pre, bank_last_use_[i] + timing_.idle_precharge);
      wake = std::min(wake, std::max(now + 1, eligible));
    }
  }
  return wake;
}

void Controller::idle_precharge(Cycle now) {
  // Adaptive open-page: close a bank whose open row has been idle, so
  // lightly-loaded (and random) traffic pays ACT+CAS rather than
  // PRE+ACT+CAS (the paper's ~40 ns unloaded latency). Disabled when
  // timing_.idle_precharge is 0.
  if (timing_.idle_precharge == 0) return;
  for (std::uint32_t i = 0; i < banks_.size(); ++i) {
    Bank& b = banks_[i];
    if (b.open && now >= b.next_pre && now - bank_last_use_[i] >= timing_.idle_precharge) {
      b.open = false;
      --open_banks_;
      b.next_act = std::max(b.next_act, now + timing_.rp);
      ++stats_.precharges;
      checker_.on_pre(i, now);
      return;  // One command per cycle.
    }
  }
}

bool Controller::try_refresh(Cycle now) {
  // Close all open banks first (respecting per-bank PRE timing), then hold
  // the whole rank for tRFC.
  bool any_open = false;
  for (std::uint32_t i = 0; i < banks_.size(); ++i) {
    Bank& b = banks_[i];
    if (!b.open) continue;
    any_open = true;
    if (now >= b.next_pre) {
      b.open = false;
      --open_banks_;
      b.next_act = std::max(b.next_act, now + timing_.rp);
      ++stats_.precharges;
      checker_.on_pre(i, now);
      return true;  // One command per cycle.
    }
  }
  if (any_open) return false;
  // All banks closed: wait until every bank may legally accept an ACT, which
  // guarantees preceding PREs have completed, then refresh.
  Cycle ready = now;
  for (const Bank& b : banks_) ready = std::max(ready, b.next_act);
  if (ready > now) return false;
  for (Bank& b : banks_) b.next_act = now + timing_.rfc;
  ++stats_.refreshes;
  checker_.on_refresh(now, next_refresh_);
  next_refresh_ += timing_.refi;
  refresh_pending_ = false;
  return true;
}

bool Controller::cas_ready(const Request& req, bool is_write, Cycle now) const {
  const Geometry& g = amap_.geometry();
  const Bank& b = banks_[req.coord.flat_bank_all(g)];
  if (!b.row_hit(req.coord.row)) return false;
  if (now < (is_write ? b.next_wr : b.next_rd)) return false;
  if (now < next_cas_rank_[req.coord.rank]) return false;
  const std::size_t rg = static_cast<std::size_t>(req.coord.rank) * g.bank_groups +
                         req.coord.bank_group;
  if (now < next_cas_group_[rg]) return false;
  // Rank-to-rank bus turnaround (tCS): switching ranks mid-stream stalls
  // the shared data bus briefly — the 2DPC bandwidth cost.
  if (g.ranks > 1 && req.coord.rank != last_cas_rank_ && now < last_cas_end_ + timing_.cs) {
    return false;
  }
  if (is_write) {
    if (now < next_wr_bus_) return false;
  } else {
    if (now < next_rd_bus_) return false;
    if (now < next_rd_after_wr_group_[rg]) return false;
  }
  return true;
}

void Controller::issue_cas(Request& req, bool is_write, Cycle now) {
  const Geometry& g = amap_.geometry();
  Bank& b = banks_[req.coord.flat_bank_all(g)];
  bank_last_use_[req.coord.flat_bank_all(g)] = now;
  checker_.on_cas(req.coord, is_write, now);

  // Row-locality classification at service time: a request that needed no
  // preparatory command of its own rode an already-open row.
  Cycle ideal_service = timing_.cl + timing_.bl;
  if (req.needed_pre) {
    ++stats_.row_conflicts;
    ideal_service += timing_.rp + timing_.rcd;
  } else if (req.needed_act) {
    ++stats_.row_misses;
    ideal_service += timing_.rcd;
  } else {
    ++stats_.row_hits;
  }

  next_cas_rank_[req.coord.rank] = now + timing_.ccd_s;
  const std::size_t rg0 = static_cast<std::size_t>(req.coord.rank) * g.bank_groups +
                          req.coord.bank_group;
  next_cas_group_[rg0] = now + timing_.ccd_l;
  stats_.data_bus_busy_cycles += timing_.bl;
  last_cas_end_ = now + timing_.bl;
  last_cas_rank_ = req.coord.rank;

  if (is_write) {
    const Cycle data_end = now + timing_.cwl + timing_.bl;
    b.next_pre = std::max(b.next_pre, data_end + timing_.wr);
    // tWTR starts at the end of write data (within the written rank).
    for (std::uint32_t grp = 0; grp < g.bank_groups; ++grp) {
      const Cycle wtr = (grp == req.coord.bank_group) ? timing_.wtr_l : timing_.wtr_s;
      const std::size_t rg = static_cast<std::size_t>(req.coord.rank) * g.bank_groups + grp;
      next_rd_after_wr_group_[rg] = std::max(next_rd_after_wr_group_[rg], data_end + wtr);
    }
    next_rd_bus_ = std::max(next_rd_bus_, data_end + timing_.wtr_s);
    ++stats_.writes_done;
  } else {
    b.next_pre = std::max(b.next_pre, now + timing_.rtp);
    next_wr_bus_ = std::max(next_wr_bus_, now + timing_.rtw);
    const Cycle done = now + timing_.cl + timing_.bl;
    const Cycle total = done - req.arrival;
    const Cycle ideal = std::min(ideal_service, total);
    completions_.push_back({req.token, done, ideal, total - ideal});
    read_hist_.add(total);
    stats_.read_service_sum += static_cast<double>(ideal);
    stats_.read_queue_delay_sum += static_cast<double>(total - ideal);
    ++stats_.reads_done;
  }
}

bool Controller::try_prep(Request& req, Cycle now) {
  if (refresh_pending_) return false;  // Don't open new rows ahead of refresh.
  const Geometry& g = amap_.geometry();
  Bank& b = banks_[req.coord.flat_bank_all(g)];

  if (b.open && b.row != req.coord.row) {
    if (now < b.next_pre) return false;
    b.open = false;
    --open_banks_;
    b.next_act = std::max(b.next_act, now + timing_.rp);
    ++stats_.precharges;
    checker_.on_pre(req.coord.flat_bank_all(g), now);
    req.needed_pre = true;
    return true;
  }
  if (!b.open) {
    const std::size_t rg = static_cast<std::size_t>(req.coord.rank) * g.bank_groups +
                           req.coord.bank_group;
    if (now < b.next_act || now < next_act_rank_[req.coord.rank] ||
        now < next_act_group_[rg]) {
      return false;
    }
    // tFAW: at most four ACTs per rank in any window (slot 0 = "never used").
    FawWindow& faw = faw_[req.coord.rank];
    if (faw.acts[faw.pos] != 0 && now < faw.acts[faw.pos] + timing_.faw) {
      return false;
    }
    faw.acts[faw.pos] = now;
    faw.pos = (faw.pos + 1) % 4;

    b.open = true;
    ++open_banks_;
    b.row = req.coord.row;
    b.next_rd = now + timing_.rcd;
    b.next_wr = now + timing_.rcd;
    b.next_pre = std::max(b.next_pre, now + timing_.ras);
    b.next_act = now + timing_.rc();
    next_act_rank_[req.coord.rank] = now + timing_.rrd_s;
    next_act_group_[rg] = now + timing_.rrd_l;
    ++stats_.activates;
    checker_.on_act(req.coord, now);
    req.needed_act = true;
    return true;
  }
  return false;  // Bank already open on the right row; CAS timing pending.
}

bool Controller::try_issue(std::vector<Request>& queue, bool is_write, Cycle now) {
  if (queue.empty()) return false;
  const std::size_t window = std::min(queue.size(), kScanWindow);

  // Pass 1 (FR): oldest row-hit whose CAS can issue right now.
  for (std::size_t i = 0; i < window; ++i) {
    if (cas_ready(queue[i], is_write, now)) {
      Request req = queue[i];
      issue_cas(req, is_write, now);
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }

  // Pass 2 (FCFS): oldest request that needs a preparatory ACT/PRE.
  for (std::size_t i = 0; i < window; ++i) {
    Request& req = queue[i];
    const Bank& b = banks_[req.coord.flat_bank_all(amap_.geometry())];
    if (b.row_hit(req.coord.row)) continue;  // Just waiting on CAS timing.
    if (try_prep(req, now)) return true;
  }
  return false;
}

}  // namespace coaxial::dram
