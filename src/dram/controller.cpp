#include "dram/controller.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "obs/profiler.hpp"

namespace coaxial::dram {

namespace {
/// FR-FCFS fairness guard: only the oldest `kScanWindow` entries of a queue
/// compete for issue, bounding both starvation and per-tick scan cost.
constexpr std::size_t kScanWindow = 16;
}  // namespace

Controller::Controller(const Timing& timing, const Geometry& geometry,
                       std::size_t read_queue_depth, std::size_t write_queue_depth,
                       obs::Scope scope)
    : timing_(timing),
      amap_(geometry, geometry.permutation_interleave),
      read_depth_(read_queue_depth),
      write_depth_(write_queue_depth),
      banks_(geometry.total_banks()),
      bank_last_use_(geometry.total_banks(), 0),
      idle_eligible_(geometry.total_banks(), kNoCycle),
      next_act_rank_(geometry.ranks, 0),
      next_act_group_(static_cast<std::size_t>(geometry.ranks) * geometry.bank_groups, 0),
      next_cas_rank_(geometry.ranks, 0),
      next_cas_group_(static_cast<std::size_t>(geometry.ranks) * geometry.bank_groups, 0),
      next_rd_after_wr_group_(static_cast<std::size_t>(geometry.ranks) * geometry.bank_groups, 0),
      faw_(geometry.ranks),
      next_refresh_(timing.refi),
      checker_(timing, geometry) {
  read_q_.reserve(read_depth_);
  write_q_.reserve(write_depth_);
  completions_.reserve(16);
  // Escape hatch / A-B switch: COAXIAL_NO_READY_CACHE=1 forces the brute
  // rescan every tick. Results must be identical either way (the cache only
  // skips provably fruitless scans); see test_perf_invariants.
  ready_cache_enabled_ = !env_flag("COAXIAL_NO_READY_CACHE");
  if (scope.valid()) {
    scope.expose_counter("reads_done", [this] { return stats_.reads_done; });
    scope.expose_counter("writes_done", [this] { return stats_.writes_done; });
    scope.expose_counter("reads_forwarded", [this] { return stats_.reads_forwarded; });
    scope.expose_counter("row_hits", [this] { return stats_.row_hits; });
    scope.expose_counter("row_misses", [this] { return stats_.row_misses; });
    scope.expose_counter("row_conflicts", [this] { return stats_.row_conflicts; });
    scope.expose_counter("activates", [this] { return stats_.activates; });
    scope.expose_counter("precharges", [this] { return stats_.precharges; });
    scope.expose_counter("refreshes", [this] { return stats_.refreshes; });
    scope.expose_counter("data_bus_busy_cycles",
                         [this] { return stats_.data_bus_busy_cycles; });
    scope.expose("read_queue_delay_sum", [this] { return stats_.read_queue_delay_sum; });
    scope.expose("read_service_sum", [this] { return stats_.read_service_sum; });
    scope.expose_histogram("read_latency", read_hist_);
    const obs::Scope inv = scope.sub("invariants");
    inv.expose_counter("violations", [this] { return checker_.violations(); });
    inv.expose_counter("trc", [this] { return checker_.trc_violations(); });
    inv.expose_counter("trcd", [this] { return checker_.trcd_violations(); });
    inv.expose_counter("trp", [this] { return checker_.trp_violations(); });
    inv.expose_counter("tras", [this] { return checker_.tras_violations(); });
    inv.expose_counter("tccd_l", [this] { return checker_.tccd_violations(); });
    inv.expose_counter("tfaw", [this] { return checker_.tfaw_violations(); });
    inv.expose_counter("refresh", [this] { return checker_.refresh_violations(); });
  }
}

bool Controller::can_accept(bool is_write) const {
  return is_write ? write_q_.size() < write_depth_ : read_q_.size() < read_depth_;
}

bool Controller::enqueue(Addr local_line, bool is_write, Cycle now, std::uint64_t token) {
  if (!can_accept(is_write)) return false;
  if (!is_write) {
    // Write-to-read forwarding: a read that hits a queued write is served
    // from the controller's write buffer without touching DRAM. The line
    // index makes the check O(1) instead of a write-queue scan.
    auto it = write_lines_.find(local_line);
    if (it != write_lines_.end() && it->second > 0) {
      completions_.push_back({token, now + 1, 1, 0});
      ++stats_.reads_forwarded;
      read_hist_.add(1);
      return true;
    }
  }
  Request req;
  req.coord = amap_.map(local_line);
  req.flat_bank = req.coord.flat_bank_all(amap_.geometry());
  req.rg = req.coord.rank * amap_.geometry().bank_groups + req.coord.bank_group;
  req.arrival = now;
  req.token = token;
  req.local_line = local_line;
  (is_write ? write_q_ : read_q_).push_back(req);
  if (is_write) ++write_lines_[local_line];
  // A new candidate entered the queue window: the cached next-ready cycle
  // for that queue no longer bounds it, and neither does the whole-tick
  // wake bound (drain-mode watermarks also depend on queue depth).
  queue_ready_[is_write ? 1 : 0] = 0;
  wake_cache_ = 0;
  return true;
}

Cycle Controller::tick(Cycle now) {
  // Whole-tick fast path (see wake_cache_ in the header): before the cached
  // bound, a full tick issues nothing, mutates nothing, and returns this
  // same bound — so skip it entirely. Checked before the profiler scope:
  // a few-ns early return is not worth attributing.
  if (ready_cache_enabled_ && wake_cache_ != 0 && now < wake_cache_) {
    return wake_cache_;
  }
  COAXIAL_PROF_SCOPE(kDramTick);
  if (now >= next_refresh_ && !refresh_pending_) {
    // Arming refresh changes which candidates a scan may consider (ACTs are
    // suppressed), so cached per-queue bounds from before the transition
    // no longer mirror a fresh scan. Drop them to keep cached and brute-
    // force wake bounds bit-identical.
    refresh_pending_ = true;
    note_command();
  }
  if (refresh_pending_) {
    if (try_refresh(now)) return now + 1;
    // While waiting to close banks for refresh we still allow CAS commands
    // below, so in-flight row hits drain naturally; ACTs are suppressed by
    // try_prep's refresh check.
  }
  if (read_q_.empty() && write_q_.empty()) {
    // Nothing to schedule; opportunistically close idled rows so the next
    // burst starts from precharged banks (adaptive open-page).
    if (open_banks_ > 0) idle_precharge(now);
    return compute_wake(now);
  }

  // Write-drain watermark policy (DRAMsim3-style): drain once the write
  // queue crosses half full (or reads are absent), down to 1/8. Frequent
  // read/write turnarounds are a first-order capacity loss on real
  // controllers; modelling them matters for the loaded-latency curve.
  if (!draining_writes_) {
    if (write_q_.size() >= write_depth_ / 2 || (read_q_.empty() && !write_q_.empty())) {
      draining_writes_ = true;
    }
  } else {
    if (write_q_.size() <= write_depth_ / 8 && !read_q_.empty()) draining_writes_ = false;
    if (write_q_.empty()) draining_writes_ = false;
  }

  if (draining_writes_) {
    if (try_issue(write_q_, /*is_write=*/true, now)) return now + 1;
    if (try_issue(read_q_, /*is_write=*/false, now)) return now + 1;
  } else {
    if (try_issue(read_q_, /*is_write=*/false, now)) return now + 1;
    if (try_issue(write_q_, /*is_write=*/true, now)) return now + 1;
  }
  idle_precharge(now);
  return compute_wake(now);
}

Cycle Controller::cas_earliest(const Request& req, bool is_write) const {
  const Geometry& g = amap_.geometry();
  const Bank& b = banks_[req.flat_bank];
  Cycle t = is_write ? b.next_wr : b.next_rd;
  t = std::max(t, next_cas_rank_[req.coord.rank]);
  const std::size_t rg = req.rg;
  t = std::max(t, next_cas_group_[rg]);
  // Rank-to-rank bus turnaround (tCS): switching ranks mid-stream stalls
  // the shared data bus briefly — the 2DPC bandwidth cost.
  if (g.ranks > 1 && req.coord.rank != last_cas_rank_) {
    t = std::max(t, last_cas_end_ + timing_.cs);
  }
  if (is_write) {
    t = std::max(t, next_wr_bus_);
  } else {
    t = std::max(t, std::max(next_rd_bus_, next_rd_after_wr_group_[rg]));
  }
  return t;
}

Cycle Controller::prep_earliest(const Request& req) const {
  const Bank& b = banks_[req.flat_bank];
  if (b.open && b.row != req.coord.row) return b.next_pre;
  if (!b.open) {
    const std::size_t rg = req.rg;
    Cycle t = std::max(b.next_act, next_act_rank_[req.coord.rank]);
    t = std::max(t, next_act_group_[rg]);
    // tFAW: at most four ACTs per rank in any window (slot 0 = "never used").
    const FawWindow& faw = faw_[req.coord.rank];
    if (faw.acts[faw.pos] != 0) t = std::max(t, faw.acts[faw.pos] + timing_.faw);
    return t;
  }
  return kNoCycle;  // Open on the right row: the CAS candidate covers it.
}

Cycle Controller::compute_wake(Cycle now) const {
  // Every constraint that gated an issue this cycle is a timestamp frozen
  // until the controller acts again, so the min over all candidates is a
  // sound wake-up: nothing can become issueable earlier.
  Cycle wake = kNoCycle;
  if (refresh_pending_) {
    // Blocked on closing banks (or on their PRE/ACT timing) for refresh.
    bool any_open = false;
    for (const Bank& b : banks_) {
      if (!b.open) continue;
      any_open = true;
      wake = std::min(wake, std::max(now + 1, b.next_pre));
    }
    if (!any_open) {
      Cycle ready = now + 1;
      for (const Bank& b : banks_) ready = std::max(ready, b.next_act);
      wake = std::min(wake, ready);
    }
  } else {
    wake = std::min(wake, std::max(now + 1, next_refresh_));
  }
  const auto queue_candidates = [&](const std::vector<Request>& q, bool is_write) {
    // A still-valid cached bound is exact, not just conservative: it was a
    // min over frozen candidate timestamps, none of which were floored (a
    // floored candidate would have expired the cache), and refresh_pending_
    // cannot have changed inside a validity window (the transition clears
    // the cache). So reuse it instead of rescanning the window.
    const std::size_t qi = is_write ? 1 : 0;
    if (ready_cache_enabled_ && queue_ready_[qi] != 0 && now < queue_ready_[qi]) {
      wake = std::min(wake, queue_ready_[qi]);
      return;
    }
    const std::size_t window = std::min(q.size(), kScanWindow);
    Cycle q_ready = kNoCycle;
    for (std::size_t i = 0; i < window; ++i) {
      const Request& req = q[i];
      const Bank& b = banks_[req.flat_bank];
      if (b.row_hit(req.coord.row)) {
        q_ready = std::min(q_ready, std::max(now + 1, cas_earliest(req, is_write)));
      } else if (!refresh_pending_) {
        const Cycle t = prep_earliest(req);
        if (t != kNoCycle) q_ready = std::min(q_ready, std::max(now + 1, t));
      }
    }
    // Cache the per-queue bound: until q_ready (and absent any command or
    // enqueue, which clear it) a scan of this queue cannot issue anything.
    queue_ready_[is_write ? 1 : 0] = q_ready;
    wake = std::min(wake, q_ready);
  };
  queue_candidates(read_q_, /*is_write=*/false);
  queue_candidates(write_q_, /*is_write=*/true);
  if (timing_.idle_precharge != 0 && open_banks_ > 0) {
    if (ready_cache_enabled_ && idle_ready_ != 0) {
      // Still-valid eligibility bound (bank state unchanged since it was
      // computed); kNoCycle means "no open bank can become eligible" and
      // the min is then a no-op.
      wake = std::min(wake, std::max(now + 1, idle_ready_));
    } else {
      Cycle raw_min = kNoCycle;
      for (const Cycle eligible : idle_eligible_) raw_min = std::min(raw_min, eligible);
      idle_ready_ = raw_min;
      if (raw_min != kNoCycle) wake = std::min(wake, std::max(now + 1, raw_min));
    }
  }
  wake_cache_ = wake;
  return wake;
}

void Controller::idle_precharge(Cycle now) {
  // Adaptive open-page: close a bank whose open row has been idle, so
  // lightly-loaded (and random) traffic pays ACT+CAS rather than
  // PRE+ACT+CAS (the paper's ~40 ns unloaded latency). Disabled when
  // timing_.idle_precharge is 0.
  if (timing_.idle_precharge == 0) return;
  if (open_banks_ == 0) return;
  // A still-valid eligibility bound (no command has touched bank state since
  // it was computed) in the future proves this scan would close nothing.
  if (ready_cache_enabled_ && idle_ready_ != 0 && now < idle_ready_) return;
  // Closed banks sit at kNoCycle in idle_eligible_, so one contiguous pass
  // replaces the open-bank walk over scattered Bank structs; iteration order
  // (and hence which eligible bank closes first) is unchanged.
  Cycle raw_min = kNoCycle;
  const std::size_t n = idle_eligible_.size();
  for (std::uint32_t i = 0; i < n; ++i) {
    const Cycle eligible = idle_eligible_[i];
    if (eligible <= now) {
      Bank& b = banks_[i];
      b.open = false;
      --open_banks_;
      idle_eligible_[i] = kNoCycle;
      b.next_act = std::max(b.next_act, now + timing_.rp);
      ++stats_.precharges;
      checker_.on_pre(i, now);
      note_command();
      return;  // One command per cycle.
    }
    raw_min = std::min(raw_min, eligible);
  }
  // Failed scan: every open bank's eligibility is a frozen future timestamp,
  // so the accumulated min doubles as the cache compute_wake reuses — the
  // idle scan runs once per tick instead of twice.
  idle_ready_ = raw_min;
}

bool Controller::try_refresh(Cycle now) {
  // Close all open banks first (respecting per-bank PRE timing), then hold
  // the whole rank for tRFC.
  bool any_open = false;
  for (std::uint32_t i = 0; i < banks_.size(); ++i) {
    Bank& b = banks_[i];
    if (!b.open) continue;
    any_open = true;
    if (now >= b.next_pre) {
      b.open = false;
      --open_banks_;
      idle_eligible_[i] = kNoCycle;
      b.next_act = std::max(b.next_act, now + timing_.rp);
      ++stats_.precharges;
      checker_.on_pre(i, now);
      note_command();
      return true;  // One command per cycle.
    }
  }
  if (any_open) return false;
  // All banks closed: wait until every bank may legally accept an ACT, which
  // guarantees preceding PREs have completed, then refresh.
  Cycle ready = now;
  for (const Bank& b : banks_) ready = std::max(ready, b.next_act);
  if (ready > now) return false;
  for (Bank& b : banks_) b.next_act = now + timing_.rfc;
  ++stats_.refreshes;
  checker_.on_refresh(now, next_refresh_);
  next_refresh_ += timing_.refi;
  refresh_pending_ = false;
  note_command();
  return true;
}

void Controller::issue_cas(Request& req, bool is_write, Cycle now) {
  const Geometry& g = amap_.geometry();
  Bank& b = banks_[req.flat_bank];
  bank_last_use_[req.flat_bank] = now;
  checker_.on_cas(req.coord, is_write, now);

  // Row-locality classification at service time: a request that needed no
  // preparatory command of its own rode an already-open row.
  Cycle ideal_service = timing_.cl + timing_.bl;
  if (req.needed_pre) {
    ++stats_.row_conflicts;
    ideal_service += timing_.rp + timing_.rcd;
  } else if (req.needed_act) {
    ++stats_.row_misses;
    ideal_service += timing_.rcd;
  } else {
    ++stats_.row_hits;
  }

  next_cas_rank_[req.coord.rank] = now + timing_.ccd_s;
  const std::size_t rg0 = req.rg;
  next_cas_group_[rg0] = now + timing_.ccd_l;
  stats_.data_bus_busy_cycles += timing_.bl;
  last_cas_end_ = now + timing_.bl;
  last_cas_rank_ = req.coord.rank;

  if (is_write) {
    const Cycle data_end = now + timing_.cwl + timing_.bl;
    b.next_pre = std::max(b.next_pre, data_end + timing_.wr);
    idle_eligible_[req.flat_bank] = std::max(b.next_pre, now + timing_.idle_precharge);
    // tWTR starts at the end of write data (within the written rank).
    for (std::uint32_t grp = 0; grp < g.bank_groups; ++grp) {
      const Cycle wtr = (grp == req.coord.bank_group) ? timing_.wtr_l : timing_.wtr_s;
      const std::size_t rg = static_cast<std::size_t>(req.coord.rank) * g.bank_groups + grp;
      next_rd_after_wr_group_[rg] = std::max(next_rd_after_wr_group_[rg], data_end + wtr);
    }
    next_rd_bus_ = std::max(next_rd_bus_, data_end + timing_.wtr_s);
    ++stats_.writes_done;
  } else {
    b.next_pre = std::max(b.next_pre, now + timing_.rtp);
    idle_eligible_[req.flat_bank] = std::max(b.next_pre, now + timing_.idle_precharge);
    next_wr_bus_ = std::max(next_wr_bus_, now + timing_.rtw);
    const Cycle done = now + timing_.cl + timing_.bl;
    const Cycle total = done - req.arrival;
    const Cycle ideal = std::min(ideal_service, total);
    completions_.push_back({req.token, done, ideal, total - ideal});
    read_hist_.add(total);
    stats_.read_service_sum += static_cast<double>(ideal);
    stats_.read_queue_delay_sum += static_cast<double>(total - ideal);
    ++stats_.reads_done;
  }
}

void Controller::commit_prep(Request& req, Cycle now) {
  // Caller established legality via prep_earliest(req) <= now (and no
  // pending refresh); this is the mutating tail only.
  Bank& b = banks_[req.flat_bank];

  if (b.open) {  // Wrong row (right-row banks never reach commit_prep).
    b.open = false;
    --open_banks_;
    idle_eligible_[req.flat_bank] = kNoCycle;
    b.next_act = std::max(b.next_act, now + timing_.rp);
    ++stats_.precharges;
    checker_.on_pre(req.flat_bank, now);
    req.needed_pre = true;
    return;
  }
  const std::size_t rg = req.rg;
  FawWindow& faw = faw_[req.coord.rank];
  faw.acts[faw.pos] = now;
  faw.pos = (faw.pos + 1) % 4;

  b.open = true;
  ++open_banks_;
  b.row = req.coord.row;
  b.next_rd = now + timing_.rcd;
  b.next_wr = now + timing_.rcd;
  b.next_pre = std::max(b.next_pre, now + timing_.ras);
  idle_eligible_[req.flat_bank] =
      std::max(b.next_pre, bank_last_use_[req.flat_bank] + timing_.idle_precharge);
  b.next_act = now + timing_.rc();
  next_act_rank_[req.coord.rank] = now + timing_.rrd_s;
  next_act_group_[rg] = now + timing_.rrd_l;
  ++stats_.activates;
  checker_.on_act(req.coord, now);
  req.needed_act = true;
}

bool Controller::try_issue(std::vector<Request>& queue, bool is_write, Cycle now) {
  if (queue.empty()) {
    // Mirror what a scan of the empty window would conclude, so
    // compute_wake's cached reuse sees the same bound a cold scan stores.
    queue_ready_[is_write ? 1 : 0] = kNoCycle;
    return false;
  }
  // Fast path: a prior failed scan proved nothing in this queue's window can
  // issue before queue_ready_; any invalidating event (command issued,
  // request enqueued) cleared the cache, so a live bound lets us skip the
  // rescan without changing any decision.
  const std::size_t qi = is_write ? 1 : 0;
  if (ready_cache_enabled_ && queue_ready_[qi] != 0 && now < queue_ready_[qi]) {
    return false;
  }
  COAXIAL_PROF_SCOPE(kDramTryIssue);
  const std::size_t window = std::min(queue.size(), kScanWindow);
  // The scan accumulates the queue's earliest-possible next command as it
  // decides; a failed scan therefore leaves a fresh per-queue bound behind
  // for free, and compute_wake never has to rescan the window.
  Cycle q_ready = kNoCycle;

  // Pass 1 (FR): oldest row-hit whose CAS can issue right now. A CAS needs
  // an open row, so with every bank closed the scan cannot find one. The
  // per-candidate row-hit verdicts are carried into pass 2 as a bitmask
  // (window <= 16, and no command lands between the passes, so bank state —
  // and with it every verdict — is frozen): pass 2 then skips its own bank
  // loads. Zero-initialised, the mask is also right when pass 1 is skipped
  // outright: no open bank means no row hit anywhere.
  std::uint32_t hit_mask = 0;
  static_assert(kScanWindow <= 32, "row-hit mask is a uint32_t");
  if (open_banks_ > 0) {
    for (std::size_t i = 0; i < window; ++i) {
      const Request& cand = queue[i];
      if (!banks_[cand.flat_bank].row_hit(cand.coord.row)) {
        continue;
      }
      hit_mask |= 1u << i;
      const Cycle t = cas_earliest(cand, is_write);
      if (t <= now) {
        Request req = cand;
        issue_cas(req, is_write, now);
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
        if (is_write) {
          auto it = write_lines_.find(req.local_line);
          if (it != write_lines_.end() && --it->second == 0) write_lines_.erase(it);
        }
        note_command();
        return true;
      }
      q_ready = std::min(q_ready, t);
    }
  }

  // Pass 2 (FCFS): oldest request that needs a preparatory ACT/PRE. ACTs
  // and PREs for new rows are suppressed while a refresh is pending, and
  // (mirroring that) pending refresh also drops their wake candidates.
  // With a refresh pending the loop body is all `continue`s (prep wake
  // candidates are dropped too, mirroring the suppressed commands).
  if (!refresh_pending_) {
    for (std::size_t i = 0; i < window; ++i) {
      Request& req = queue[i];
      if (hit_mask & (1u << i)) continue;  // Just waiting on CAS timing.
      const Cycle t = prep_earliest(req);
      if (t <= now) {
        commit_prep(req, now);
        note_command();
        return true;
      }
      q_ready = std::min(q_ready, t);
    }
  }

  queue_ready_[qi] = q_ready;
  return false;
}

}  // namespace coaxial::dram
