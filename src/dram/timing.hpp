// DDR5-4800 timing parameter set.
//
// All values are in memory-bus-clock cycles. DDR5-4800 runs its bus at
// 2400 MHz, which equals the simulator's global 2.4 GHz clock, so these are
// simulator cycles directly (tCK = 0.4167 ns). Values follow the Micron
// DDR5-4800B speed grade (CL40-39-39) and JESD79-5B, as used by the paper's
// DRAMsim3 configuration.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace coaxial::dram {

struct Timing {
  // Core access timings.
  Cycle cl = 40;     ///< CAS latency (read command to first data beat).
  Cycle cwl = 38;    ///< CAS write latency.
  Cycle rcd = 39;    ///< ACT to internal read/write.
  Cycle rp = 39;     ///< PRE to ACT on the same bank.
  Cycle ras = 77;    ///< ACT to PRE (32 ns).
  Cycle bl = 8;      ///< Burst duration: BL16 on a 32-bit sub-channel, 2 beats/cycle.

  // Bank/rank-level spacing.
  Cycle ccd_s = 8;   ///< CAS-to-CAS, different bank group.
  Cycle ccd_l = 12;  ///< CAS-to-CAS, same bank group (5 ns).
  Cycle rrd_s = 8;   ///< ACT-to-ACT, different bank group.
  Cycle rrd_l = 12;  ///< ACT-to-ACT, same bank group (5 ns).
  Cycle faw = 32;    ///< Four-activate window (13.3 ns).

  // Read/write turnaround and recovery.
  Cycle wr = 72;     ///< Write recovery (30 ns): last write beat to PRE.
  Cycle rtp = 18;    ///< Read to PRE (7.5 ns).
  Cycle wtr_s = 6;   ///< Write-to-read, different bank group (2.5 ns).
  Cycle wtr_l = 24;  ///< Write-to-read, same bank group (10 ns).
  Cycle rtw = 14;    ///< Read-to-write bus turnaround (CL - CWL + BL + 4).

  // Refresh (16 Gb die, all-bank refresh).
  Cycle refi = 9360;  ///< Average periodic refresh interval (3.9 us).
  Cycle rfc = 708;    ///< Refresh cycle time (295 ns).

  /// Adaptive open-page: precharge a bank whose row has idled this long
  /// (0 disables; pure open-page). See bench_ablations.
  Cycle idle_precharge = 150;

  /// Rank-to-rank data-bus switch penalty (applies with 2+ ranks, i.e.
  /// 2DPC configurations — the source of the ~15% bandwidth cost the
  /// paper cites for capacity-optimised DIMM population, SIV-E).
  Cycle cs = 4;

  Cycle rc() const { return ras + rp; }
};

/// Geometry of one DDR5 sub-channel (the independently scheduled unit).
struct Geometry {
  std::uint32_t bank_groups = 8;
  std::uint32_t banks_per_group = 4;
  std::uint32_t rows = 65536;
  std::uint32_t columns = 128;  ///< 64 B line-columns per row => 8 KB row buffer.
  std::uint32_t ranks = 1;      ///< 1 = 1DPC (paper config); 2 = 2DPC.
  bool permutation_interleave = true;  ///< XOR-fold row bits into the bank index.

  std::uint32_t banks() const { return bank_groups * banks_per_group; }
  std::uint32_t total_banks() const { return banks() * ranks; }
};

/// Peak data bandwidth of one 32-bit DDR5-4800 sub-channel in GB/s.
inline constexpr double kSubChannelPeakGBps = 19.2;

/// Peak data bandwidth of one full DDR5-4800 channel (two sub-channels).
inline constexpr double kChannelPeakGBps = 38.4;

}  // namespace coaxial::dram
