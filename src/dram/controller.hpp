// FR-FCFS memory controller for one DDR5 sub-channel.
//
// Models: separate read/write queues with write-drain watermarks, row-buffer
// management (open-page policy), bank/rank timing constraints (tRCD, tRP,
// tRAS, tCCD_S/L, tRRD_S/L, tFAW, tWR, tRTP, tWTR_S/L, read/write bus
// turnaround), all-bank refresh every tREFI, and write-to-read forwarding.
//
// The controller issues at most one command per cycle (command bus). Reads
// complete at CAS + CL + BL (data fully transferred); writes are posted and
// complete on enqueue from the requester's perspective.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "dram/address_map.hpp"
#include "dram/bank.hpp"
#include "dram/timing.hpp"
#include "dram/timing_check.hpp"
#include "obs/metrics.hpp"

namespace coaxial::dram {

/// A finished read, reported back to the owner of the controller, with
/// its latency decomposed into unloaded service vs queuing (forwarded
/// reads report 1 cycle of service, no queuing).
struct Completion {
  std::uint64_t token = 0;
  Cycle done = 0;
  Cycle service = 0;      ///< Unloaded (row-state-dependent) component.
  Cycle queue_delay = 0;  ///< Everything above the unloaded component.
};

struct ControllerStats {
  std::uint64_t reads_done = 0;
  std::uint64_t writes_done = 0;
  std::uint64_t reads_forwarded = 0;  ///< Served from the write queue.
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;  ///< CAS that needed ACT (bank was closed).
  std::uint64_t row_conflicts = 0;  ///< CAS that needed PRE + ACT.
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t data_bus_busy_cycles = 0;
  double read_queue_delay_sum = 0;   ///< Cycles spent queued, reads.
  double read_service_sum = 0;       ///< Ideal unloaded service component, reads.

  double row_hit_rate() const {
    const double total = static_cast<double>(row_hits + row_misses + row_conflicts);
    return total == 0 ? 0.0 : static_cast<double>(row_hits) / total;
  }
};

class Controller {
 public:
  /// `scope`, when valid, registers this controller's counters, read-latency
  /// histogram, and timing-invariant violation counters into the metrics
  /// registry at construction.
  Controller(const Timing& timing, const Geometry& geometry,
             std::size_t read_queue_depth = 64, std::size_t write_queue_depth = 64,
             obs::Scope scope = {});

  /// True if a read/write can be enqueued this cycle.
  bool can_accept(bool is_write) const;

  /// Enqueue a request. `token` is echoed in the read completion.
  /// Returns false (and does nothing) if the relevant queue is full.
  bool enqueue(Addr local_line, bool is_write, Cycle now, std::uint64_t token);

  /// Advance one cycle: refresh management + at most one command issue.
  /// Returns the earliest future cycle at which the controller could act
  /// again (command issue, refresh deadline, idle-row precharge). The bound
  /// is conservative (never later than the true next action), so callers
  /// may skip ticking until then without changing any decision — the basis
  /// of the event-driven System loop.
  Cycle tick(Cycle now);

  /// Read completions produced since the last drain (in completion order).
  std::vector<Completion>& completions() { return completions_; }

  const ControllerStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; read_hist_.reset(); }

  /// Read latency distribution (arrival to data), for load-latency curves.
  const LatencyHistogram& read_latency_hist() const { return read_hist_; }

  /// Shadow timing-invariant checker (tRC/tRCD/tRP/tRAS/tCCD_L/tFAW,
  /// refresh deadlines). Violation counts should always be zero.
  const TimingChecker& timing_checker() const { return checker_; }

  std::size_t read_queue_size() const { return read_q_.size(); }
  std::size_t write_queue_size() const { return write_q_.size(); }
  bool idle() const { return read_q_.empty() && write_q_.empty(); }

  const Timing& timing() const { return timing_; }

  /// Test hook: disable the per-queue next-ready cache so invariant tests
  /// can compare the cached fast path against the brute-force rescan. The
  /// cache is a pure scan-skipping device; scheduling decisions must be
  /// identical either way.
  void set_ready_cache(bool on) {
    ready_cache_enabled_ = on;
    queue_ready_[0] = queue_ready_[1] = 0;
    wake_cache_ = 0;
    idle_ready_ = 0;
  }

 private:
  struct Request {
    Coord coord;
    Cycle arrival = 0;
    std::uint64_t token = 0;
    Addr local_line = 0;
    std::uint32_t flat_bank = 0;  ///< coord.flat_bank_all(), cached at enqueue.
    std::uint32_t rg = 0;         ///< rank * bank_groups + bank_group, ditto.
    bool needed_act = false;  ///< An ACT was issued on this request's behalf.
    bool needed_pre = false;  ///< A PRE was issued on this request's behalf.
  };

  // Scheduling helpers. Each returns true if a command was issued.
  bool try_refresh(Cycle now);
  bool try_issue(std::vector<Request>& queue, bool is_write, Cycle now);
  void issue_cas(Request& req, bool is_write, Cycle now);
  void commit_prep(Request& req, Cycle now);
  void idle_precharge(Cycle now);

  // Earliest legal cycles for a candidate's next command, as a raw max over
  // frozen constraint timestamps (no now+1 floor). One computation serves
  // both the issue decision (earliest <= now) and, on a failed scan, the
  // wake bound (earliest > now, so the floor would be a no-op anyway) —
  // keeping the two paths bit-identical by construction instead of by
  // maintaining hand-written bool/cycle mirrors.
  Cycle cas_earliest(const Request& req, bool is_write) const;
  Cycle prep_earliest(const Request& req) const;

  // Wake-cycle lower bound for the event-driven loop: when could the
  // command that tick() just declined become issueable?
  Cycle compute_wake(Cycle now) const;

  Timing timing_;
  AddressMap amap_;
  std::size_t read_depth_;
  std::size_t write_depth_;

  std::vector<Bank> banks_;
  std::vector<Cycle> bank_last_use_;  ///< For idle-bank precharge.
  // Exact per-bank idle-precharge eligibility, mirrored incrementally:
  // max(next_pre, last_use + tIdle) while the bank is open, kNoCycle when
  // closed. Updated at the only sites that move a bank's open/next_pre/
  // last_use state (CAS, PRE, ACT, refresh), it turns the idle-precharge
  // scans from a walk over scattered Bank structs into a contiguous min
  // scan. Not a cache: always exact, so both ready-cache modes share it.
  std::vector<Cycle> idle_eligible_;
  std::vector<Request> read_q_;
  std::vector<Request> write_q_;
  std::vector<Completion> completions_;

  // Rank-level constraint state (indexed by rank, or rank*groups+group).
  std::vector<Cycle> next_act_rank_;          ///< tRRD_S from any ACT, per rank.
  std::vector<Cycle> next_act_group_;         ///< tRRD_L within a group.
  std::vector<Cycle> next_cas_rank_;          ///< tCCD_S from any CAS, per rank.
  std::vector<Cycle> next_cas_group_;         ///< tCCD_L within a group.
  Cycle next_rd_bus_ = 0;                     ///< Bus turnaround: earliest read CAS.
  Cycle next_wr_bus_ = 0;                     ///< Bus turnaround: earliest write CAS.
  std::vector<Cycle> next_rd_after_wr_group_; ///< tWTR_L within a group.
  struct FawWindow {
    Cycle acts[4] = {0, 0, 0, 0};
    std::uint32_t pos = 0;
  };
  std::vector<FawWindow> faw_;                ///< tFAW window per rank.
  // Shared data bus: rank switches pay tCS after the previous burst.
  Cycle last_cas_end_ = 0;
  std::uint32_t last_cas_rank_ = 0;

  std::uint32_t open_banks_ = 0;  ///< Fast gate for idle-precharge scans.

  // Per-queue next-ready cache ([0]=read, [1]=write). When a tick's scan of
  // a queue issues nothing, compute_wake records the earliest cycle any
  // window candidate could become issueable; until then — and as long as no
  // command issues and nothing is enqueued (every such event clears the
  // cache via note_command/enqueue) — try_issue skips its O(window) rescan.
  // 0 means "unknown, must scan". Scheduling decisions are unchanged: the
  // cache only elides scans that provably cannot issue.
  mutable Cycle queue_ready_[2] = {0, 0};
  // Whole-tick wake cache: compute_wake's result is a min over *every*
  // action the next tick could take (CAS/ACT/PRE candidates in both scan
  // windows, refresh arming and progress, idle-bank precharge), each a
  // frozen timestamp. While now < wake_cache_ and no command has issued and
  // nothing was enqueued, the full tick body is provably a no-op and would
  // return exactly this bound again (every candidate is a genuine future
  // timestamp, unaffected by the now+1 floor), so tick() returns it
  // directly. 0 means "invalid, run the full tick".
  mutable Cycle wake_cache_ = 0;
  // Earliest cycle any open bank becomes idle-precharge eligible (raw min
  // over frozen per-bank state), or kNoCycle when no bank can. Valid until
  // a command changes bank state; enqueues don't affect it. Lets
  // idle_precharge() skip its all-banks scan.
  mutable Cycle idle_ready_ = 0;
  bool ready_cache_enabled_ = true;
  void note_command() {
    queue_ready_[0] = queue_ready_[1] = 0;
    wake_cache_ = 0;
    idle_ready_ = 0;
  }

  /// Lines with a queued write, for O(1) write-to-read forwarding checks
  /// (count, since the queue may briefly hold two writes to one line).
  std::unordered_map<Addr, std::uint32_t> write_lines_;

  // Refresh state.
  Cycle next_refresh_ = 0;
  bool refresh_pending_ = false;

  // Write-drain policy state.
  bool draining_writes_ = false;

  ControllerStats stats_;
  LatencyHistogram read_hist_;
  TimingChecker checker_;
};

}  // namespace coaxial::dram
