// Shadow DRAM-timing invariant checker.
//
// Tracks command history independently of the controller's scheduling state
// and verifies, at command-issue time, the protocol constraints that the
// scheduler is supposed to honour: per-bank tRC / tRCD / tRP / tRAS,
// same-bank-group tCCD_L, the per-rank four-activate window (tFAW), and the
// refresh deadline (a refresh may never slip more than one tREFI past its
// scheduled point). Violations feed counters that the controller registers
// into the metrics registry; with -DCOAXIAL_ASSERT_TIMING=ON (or in any
// build defining COAXIAL_ASSERT_TIMING) a violation additionally aborts
// with a diagnostic, so regressions in the scheduler fail loudly in CI.
//
// The checker is deliberately redundant with the controller's own
// bookkeeping — that redundancy is the point: it catches bugs where the
// scheduler's `next_*` state and the protocol disagree.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/units.hpp"
#include "dram/address_map.hpp"
#include "dram/timing.hpp"

namespace coaxial::dram {

class TimingChecker {
 public:
  TimingChecker(const Timing& timing, const Geometry& geometry)
      : timing_(timing),
        geometry_(geometry),
        last_act_(geometry.total_banks(), kNoCycle),
        last_pre_(geometry.total_banks(), kNoCycle),
        last_cas_group_(static_cast<std::size_t>(geometry.ranks) * geometry.bank_groups,
                        kNoCycle),
        faw_history_(geometry.ranks) {}

  void on_act(const Coord& c, Cycle now) {
    const std::uint32_t bank = c.flat_bank_all(geometry_);
    if (last_act_[bank] != kNoCycle) {
      const Cycle gap = now - last_act_[bank];
      if (gap < min_act_gap_) min_act_gap_ = gap;
      if (gap < timing_.rc()) violate("tRC", bank, gap, timing_.rc(), &trc_violations_);
    }
    if (last_pre_[bank] != kNoCycle && now - last_pre_[bank] < timing_.rp) {
      violate("tRP", bank, now - last_pre_[bank], timing_.rp, &trp_violations_);
    }
    FawRing& ring = faw_history_[c.rank];
    if (ring.acts[ring.pos] != kNoCycle && now - ring.acts[ring.pos] < timing_.faw) {
      violate("tFAW", c.rank, now - ring.acts[ring.pos], timing_.faw, &tfaw_violations_);
    }
    ring.acts[ring.pos] = now;
    ring.pos = (ring.pos + 1) % 4;
    last_act_[bank] = now;
  }

  /// `bank` is the flat all-rank bank index (precharge sites iterate banks
  /// directly, without a Coord).
  void on_pre(std::uint32_t bank, Cycle now) {
    if (last_act_[bank] != kNoCycle && now - last_act_[bank] < timing_.ras) {
      violate("tRAS", bank, now - last_act_[bank], timing_.ras, &tras_violations_);
    }
    last_pre_[bank] = now;
  }

  void on_cas(const Coord& c, bool /*is_write*/, Cycle now) {
    const std::uint32_t bank = c.flat_bank_all(geometry_);
    if (last_act_[bank] != kNoCycle && now - last_act_[bank] < timing_.rcd) {
      violate("tRCD", bank, now - last_act_[bank], timing_.rcd, &trcd_violations_);
    }
    const std::size_t rg =
        static_cast<std::size_t>(c.rank) * geometry_.bank_groups + c.bank_group;
    if (last_cas_group_[rg] != kNoCycle && now - last_cas_group_[rg] < timing_.ccd_l) {
      violate("tCCD_L", static_cast<std::uint32_t>(rg), now - last_cas_group_[rg],
              timing_.ccd_l, &tccd_violations_);
    }
    last_cas_group_[rg] = now;
  }

  /// `deadline` is the refresh's scheduled point (the controller's
  /// pre-increment next_refresh_). Draining may delay it, but never by more
  /// than a full interval.
  void on_refresh(Cycle now, Cycle deadline) {
    if (now > deadline + timing_.refi) {
      violate("tREFI-deadline", 0, now - deadline, timing_.refi, &refresh_violations_);
    }
  }

  std::uint64_t violations() const {
    return trc_violations_ + trcd_violations_ + trp_violations_ + tras_violations_ +
           tccd_violations_ + tfaw_violations_ + refresh_violations_;
  }
  std::uint64_t trc_violations() const { return trc_violations_; }
  std::uint64_t trcd_violations() const { return trcd_violations_; }
  std::uint64_t trp_violations() const { return trp_violations_; }
  std::uint64_t tras_violations() const { return tras_violations_; }
  std::uint64_t tccd_violations() const { return tccd_violations_; }
  std::uint64_t tfaw_violations() const { return tfaw_violations_; }
  std::uint64_t refresh_violations() const { return refresh_violations_; }

  /// Smallest observed same-bank ACT-to-ACT gap (kNoCycle if no bank saw a
  /// second ACT). The property test asserts this never dips below tRC.
  Cycle min_act_gap() const { return min_act_gap_; }

 private:
  void violate(const char* what, std::uint32_t where, Cycle got, Cycle need,
               std::uint64_t* counter) {
    ++*counter;
#if defined(COAXIAL_ASSERT_TIMING)
    std::fprintf(stderr,
                 "DRAM timing invariant violated: %s at unit %u: gap %llu < %llu\n",
                 what, where, static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(need));
    std::abort();
#else
    (void)what;
    (void)where;
    (void)got;
    (void)need;
#endif
  }

  struct FawRing {
    Cycle acts[4] = {kNoCycle, kNoCycle, kNoCycle, kNoCycle};
    std::uint32_t pos = 0;
  };

  Timing timing_;
  Geometry geometry_;
  std::vector<Cycle> last_act_;   ///< Per flat bank (all ranks).
  std::vector<Cycle> last_pre_;
  std::vector<Cycle> last_cas_group_;  ///< Per (rank, bank group).
  std::vector<FawRing> faw_history_;   ///< Per rank.

  Cycle min_act_gap_ = kNoCycle;
  std::uint64_t trc_violations_ = 0;
  std::uint64_t trcd_violations_ = 0;
  std::uint64_t trp_violations_ = 0;
  std::uint64_t tras_violations_ = 0;
  std::uint64_t tccd_violations_ = 0;
  std::uint64_t tfaw_violations_ = 0;
  std::uint64_t refresh_violations_ = 0;
};

}  // namespace coaxial::dram
