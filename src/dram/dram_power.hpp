// DRAM DIMM power from activity counters.
//
// A per-command energy model in the spirit of DRAMsim3's power engine:
// background (static) power per DIMM plus activation and read/write CAS
// energies. Constants solve Table V's two endpoints — a 12-DIMM baseline
// at ~54 % utilisation drawing 146 W and a 48-DIMM COAXIAL system at
// higher total traffic drawing 358 W — and land at physically sensible
// values (~20 nJ per 64 B access including I/O and termination).
#pragma once

#include "common/units.hpp"
#include "dram/controller.hpp"

namespace coaxial::dram {

struct PowerParams {
  double background_w_per_dimm = 4.6;  ///< Idle RDIMM (devices + RCD + PMIC).
  double energy_act_nj = 10.0;         ///< Per ACT (row open + precharge).
  double energy_cas_nj = 20.0;         ///< Per 64 B read/write burst, incl. I/O.
  double energy_ref_nj = 1500.0;       ///< Per all-bank refresh.
};

/// Total DRAM power in watts for `dimms` DIMMs whose aggregated controller
/// activity over `elapsed_cycles` is `stats`.
inline double dram_power_w(const ControllerStats& stats, std::uint32_t dimms,
                           Cycle elapsed_cycles, const PowerParams& p = {}) {
  if (elapsed_cycles == 0) return p.background_w_per_dimm * dimms;
  const double seconds = static_cast<double>(elapsed_cycles) * kNsPerCycle * 1e-9;
  const double dynamic_j =
      (static_cast<double>(stats.activates) * p.energy_act_nj +
       static_cast<double>(stats.reads_done + stats.writes_done) * p.energy_cas_nj +
       static_cast<double>(stats.refreshes) * p.energy_ref_nj) *
      1e-9;
  return p.background_w_per_dimm * dimms + dynamic_j / seconds;
}

}  // namespace coaxial::dram
