#include "dram/dram_power.hpp"

// dram_power_w is inline (header-only math); this TU anchors the header.
