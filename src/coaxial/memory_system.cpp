#include "coaxial/memory_system.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "ras/fault_injector.hpp"

namespace coaxial::mem {

namespace {
/// Device-side ingress buffer bound per sub-channel (CXL controller message
/// queue, §V "the CXL controller maintains message queues to buffer
/// requests").
constexpr std::size_t kDeviceIngressDepth = 64;
}  // namespace

void accumulate(dram::ControllerStats& into, const dram::ControllerStats& from) {
  into.reads_done += from.reads_done;
  into.writes_done += from.writes_done;
  into.reads_forwarded += from.reads_forwarded;
  into.row_hits += from.row_hits;
  into.row_misses += from.row_misses;
  into.row_conflicts += from.row_conflicts;
  into.activates += from.activates;
  into.precharges += from.precharges;
  into.refreshes += from.refreshes;
  into.data_bus_busy_cycles += from.data_bus_busy_cycles;
  into.read_queue_delay_sum += from.read_queue_delay_sum;
  into.read_service_sum += from.read_service_sum;
}

/// Aggregate probes common to all topologies, sampled from snapshot() at
/// registry-snapshot time (zero hot-path cost).
void register_aggregate_probes(const obs::Scope& scope, const MemorySystem& mem) {
  scope.expose_counter("reads", [&mem] { return mem.snapshot().reads; });
  scope.expose_counter("writes", [&mem] { return mem.snapshot().writes; });
  scope.expose("dram_service_sum", [&mem] { return mem.snapshot().dram_service_sum; });
  scope.expose("dram_queue_sum", [&mem] { return mem.snapshot().dram_queue_sum; });
  scope.expose("cxl_interface_sum", [&mem] { return mem.snapshot().cxl_interface_sum; });
  scope.expose("cxl_queue_sum", [&mem] { return mem.snapshot().cxl_queue_sum; });
  scope.expose("data_bus_busy", [&mem] { return mem.snapshot().data_bus_busy; });
  scope.expose("row_hit_rate", [&mem] { return mem.snapshot().row_hit_rate; });
  scope.expose_counter("subchannels", [&mem] { return mem.snapshot().subchannels; });
  scope.expose("peak_gbps", [&mem] { return mem.peak_gbps(); });
}

// ---------------------------------------------------------------- baseline

DirectDdrMemory::DirectDdrMemory(std::uint32_t channels, const dram::Timing& timing,
                                 const dram::Geometry& geometry, obs::Scope scope)
    : channels_(channels) {
  const std::uint32_t n_sub = channels * 2;
  ctrls_.reserve(n_sub);
  for (std::uint32_t i = 0; i < n_sub; ++i) {
    ctrls_.push_back(std::make_unique<dram::Controller>(
        timing, geometry, 64, 64, scope.sub("dram/ctrl" + obs::idx(i))));
  }
  ctrl_wake_.assign(n_sub, 0);
  out_.reserve(64);
  if (scope.valid()) register_aggregate_probes(scope, *this);
}

bool DirectDdrMemory::can_accept(Addr line, bool is_write, Cycle) const {
  return ctrls_[line % subchannels()]->can_accept(is_write);
}

void DirectDdrMemory::access(Addr line, bool is_write, Cycle now, std::uint64_t token) {
  const std::uint32_t sub = static_cast<std::uint32_t>(line % subchannels());
  const Addr local = line / subchannels();
  const bool ok = ctrls_[sub]->enqueue(local, is_write, now, token);
  assert(ok && "caller must check can_accept first");
  (void)ok;
  ctrl_wake_[sub] = now;  // New work (or a forwarded completion) to process.
}

Cycle DirectDdrMemory::tick(Cycle now) {
  Cycle wake = kNoCycle;
  for (std::size_t i = 0; i < ctrls_.size(); ++i) {
    if (!force_tick_ && ctrl_wake_[i] > now) {
      // Controller is provably inert until its cached wake cycle; skipping
      // it cannot change results (its constraint timestamps are frozen and
      // it has no pending completions).
      wake = std::min(wake, ctrl_wake_[i]);
      continue;
    }
    dram::Controller& c = *ctrls_[i];
    ctrl_wake_[i] = c.tick(now);
    wake = std::min(wake, ctrl_wake_[i]);
    auto& done = c.completions();
    for (const auto& comp : done) {
      out_.push_back({comp.token, comp.done, comp.service, comp.queue_delay, 0, 0});
    }
    done.clear();
  }
  return wake;
}

MemorySnapshot DirectDdrMemory::snapshot() const {
  MemorySnapshot s;
  const dram::ControllerStats agg = aggregate_dram_stats();
  s.reads = agg.reads_done + agg.reads_forwarded;
  s.writes = agg.writes_done;
  s.dram_service_sum = agg.read_service_sum;
  s.dram_queue_sum = agg.read_queue_delay_sum;
  s.data_bus_busy = static_cast<double>(agg.data_bus_busy_cycles);
  s.subchannels = subchannels();
  s.peak_gbps = peak_gbps();
  s.row_hit_rate = agg.row_hit_rate();
  return s;
}

void DirectDdrMemory::reset_stats() {
  for (auto& c : ctrls_) c->reset_stats();
}

dram::ControllerStats DirectDdrMemory::aggregate_dram_stats() const {
  dram::ControllerStats agg;
  for (const auto& c : ctrls_) accumulate(agg, c->stats());
  return agg;
}

// ----------------------------------------------------------------- COAXIAL

CxlMemory::CxlMemory(std::uint32_t cxl_channels, std::uint32_t ddr_per_device,
                     const link::LaneConfig& lanes, const dram::Timing& timing,
                     const dram::Geometry& geometry, obs::Scope scope,
                     const ras::FaultPlan& plan)
    : CxlMemory(fabric::FabricConfig::direct(), cxl_channels, ddr_per_device, lanes,
                timing, geometry, scope, plan) {}

CxlMemory::CxlMemory(const fabric::FabricConfig& fab, std::uint32_t cxl_channels,
                     std::uint32_t ddr_per_device, const link::LaneConfig& lanes,
                     const dram::Timing& timing, const dram::Geometry& geometry,
                     obs::Scope scope, const ras::FaultPlan& plan)
    : CxlMemory(fab, cxl_channels, ddr_per_device, lanes,
                placement::AddressMap::passthrough(
                    fab.interleave, fab.devices != 0 ? fab.devices : cxl_channels,
                    ddr_per_device * 2, fab.page_lines, fab.contiguous_lines),
                timing, geometry, scope, plan) {}

CxlMemory::CxlMemory(const fabric::FabricConfig& fab, std::uint32_t cxl_channels,
                     std::uint32_t ddr_per_device, const link::LaneConfig& lanes,
                     placement::AddressMap stage2, const dram::Timing& timing,
                     const dram::Geometry& geometry, obs::Scope scope,
                     const ras::FaultPlan& plan)
    : ddr_per_device_(ddr_per_device),
      subchannels_per_device_(ddr_per_device * 2),
      lane_cfg_(lanes),
      plan_(plan),
      fabric_(std::make_unique<fabric::Fabric>(fab, cxl_channels, lanes, scope)),
      amap_(std::move(stage2)) {
  if (amap_.tiered_mode()) {
    throw std::invalid_argument(
        "CxlMemory: stage-2 AddressMap must be in pass-through mode "
        "(tiered decode belongs to placement::TieredMemory)");
  }
  if (amap_.devices() != fabric_->devices()) {
    throw std::invalid_argument(
        "CxlMemory: AddressMap devices (" + std::to_string(amap_.devices()) +
        ") must match fabric devices (" + std::to_string(fabric_->devices()) + ")");
  }
  // Debug guard: any decode past the fabric's device list now throws
  // instead of silently misrouting into per-device state.
  amap_.set_device_bound(fabric_->devices());
  plan_.validate();
  fabric_->arm_faults(plan_);
  n_devices_ = fabric_->devices();
  plan_.validate_devices(n_devices_);
  avail_on_ = plan_.device_failure();
  fail_stream_ = ras::mix_u64(plan_.seed ^ ras::fnv1a("device/fail"));
  fixed_read_overhead_ = fabric_->unloaded_tx_cycles(link::kReadRequestBytes) +
                         fabric_->unloaded_rx_cycles(link::kReadResponseBytes);
  pending_responses_.resize(n_devices_);
  const std::uint32_t n_sub = subchannels();
  ctrls_.reserve(n_sub);
  device_ingress_.resize(n_sub);
  for (std::uint32_t i = 0; i < n_sub; ++i) {
    ctrls_.push_back(std::make_unique<dram::Controller>(
        timing, geometry, 64, 64, scope.sub("dram/ctrl" + obs::idx(i))));
  }
  sub_wake_.assign(n_sub, 0);
  fabric_tx_inflight_.assign(n_sub, 0);
  sub_reads_outstanding_.assign(n_sub, 0);
  out_.reserve(64);
  inflight_.reserve(256);
  free_slots_.reserve(256);
  if (scope.valid()) register_aggregate_probes(scope, *this);
}

std::uint32_t CxlMemory::alloc_slot(std::uint64_t token) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(inflight_.size());
    inflight_.emplace_back();
    slot_token_.emplace_back();
  }
  slot_token_[slot] = token;
  return slot;
}

std::uint32_t CxlMemory::alloc_fmsg(const FabricTxMsg& msg) {
  std::uint32_t m;
  if (!free_fmsgs_.empty()) {
    m = free_fmsgs_.back();
    free_fmsgs_.pop_back();
  } else {
    m = static_cast<std::uint32_t>(fmsg_pool_.size());
    fmsg_pool_.emplace_back();
  }
  fmsg_pool_[m] = msg;
  return m;
}

bool CxlMemory::can_accept(Addr line, bool is_write, Cycle now) const {
  const fabric::Router::Route r = amap_.route(line);
  // A refused device is a sink, never backpressure: access() completes the
  // read poisoned (or loses the write) immediately, so callers that park on
  // can_accept() can never wedge behind a dead device.
  if (dev_refuses(r.device)) return true;
  if (!fabric_->can_send_tx(r.device, now)) return false;
  (void)is_write;
  // In-fabric messages already own an ingress slot so switched deliveries
  // can never overshoot the device-side bound (always zero when direct).
  return device_ingress_[r.sub].size() + fabric_tx_inflight_[r.sub] < kDeviceIngressDepth;
}

void CxlMemory::access(Addr line, bool is_write, Cycle now, std::uint64_t token) {
  const fabric::Router::Route r = amap_.route(line);
  if (dev_refuses(r.device)) {
    if (is_write) {
      ++avail_.lost_writes;
      return;
    }
    // Host-side error response: the root port synthesizes a poisoned
    // completion after the unloaded round-trip — no slot, no fabric
    // traffic, no hang (DESIGN.md §13).
    MemCompletion mc;
    mc.token = token;
    mc.done = now + fixed_read_overhead_;
    mc.cxl_interface = fixed_read_overhead_;
    mc.poisoned = true;
    out_.push_back(mc);
    ++avail_.bounced_reads;
    return;
  }

  DeviceMsg msg;
  msg.local_line = r.local;
  msg.is_write = is_write;
  std::uint32_t bytes = link::kWriteMessageBytes;
  if (is_write) {
    msg.token = 0;
  } else {
    const std::uint32_t slot = alloc_slot(token);
    InflightRead& fl = inflight_[slot];
    fl = InflightRead{};  // Slots are recycled; clear stale RAS state.
    fl.start = now;
    fl.device = r.device;
    fl.sub = r.sub;
    fl.local_line = r.local;
    if (plan_.watchdog()) fl.deadline = now + plan_.timeout_cycles;
    msg.token = slot;
    bytes = link::kReadRequestBytes;
  }
  if (fabric_->direct()) {
    const link::SendResult sr = fabric_->send_tx(r.device, bytes, now, 0);
    msg.arrival = sr.at;
    msg.poisoned = sr.poisoned;
    device_ingress_[r.sub].push_back(msg);
    // The sub-channel must be processed when the message lands on the device.
    sub_wake_[r.sub] = std::min(sub_wake_[r.sub], msg.arrival);
  } else {
    // Park the request while it crosses the switched fabric; the delivery
    // drained in tick() completes the enqueue into the device ingress.
    const std::uint32_t m =
        alloc_fmsg({msg.local_line, msg.token, r.sub, is_write, false});
    fabric_->send_tx(r.device, bytes, now, m);
    ++fabric_tx_inflight_[r.sub];
  }
}

void CxlMemory::finish_read(std::uint32_t slot, Cycle arrival, bool wire_poisoned) {
  InflightRead& info = inflight_[slot];
  const double total = static_cast<double>(arrival - info.start);
  const double dram_internal = static_cast<double>(info.dram_ready - info.dram_enqueue);
  const double fixed = static_cast<double>(fixed_read_overhead_);
  const double cxl_queue = std::max(0.0, total - dram_internal - fixed);
  cxl_interface_sum_ += fixed;
  cxl_queue_sum_ += cxl_queue;
  dram_internal_sum_ += dram_internal;
  ++reads_done_;

  MemCompletion mc;
  mc.token = slot_token_[slot];
  mc.done = arrival;
  mc.dram_service = info.dram_service;
  // Device-side scheduling beyond the unloaded component counts as
  // DRAM queuing; ingress/link/switch waits count as CXL queuing.
  mc.dram_queue = info.dram_queue;
  mc.cxl_interface = fixed_read_overhead_;
  mc.cxl_queue = static_cast<Cycle>(cxl_queue);
  mc.poisoned = wire_poisoned || info.req_poisoned;
  out_.push_back(mc);
  info.deadline = kNoCycle;  // Stop the watchdog; the slot is free again.
  info.dup_pending = false;
  free_slots_.push_back(slot);
}

void CxlMemory::bounce_read(std::uint32_t slot, Cycle done) {
  ++avail_.bounced_reads;
  finish_read(slot, done, /*wire_poisoned=*/true);
}

void CxlMemory::offline_device(std::uint32_t device) {
  if (!avail_on_ || device != plan_.fail_device) return;
  // The evacuation owner is done moving pages; stop parking and drain out.
  if (fail_phase_ == ras::FailureStatus::Phase::kEvacuating) {
    fail_phase_ = ras::FailureStatus::Phase::kDraining;
  }
}

void CxlMemory::fail_onset(Cycle now) {
  using Phase = ras::FailureStatus::Phase;
  const std::uint32_t dev = plan_.fail_device;
  if (plan_.fail_mode == ras::FailureMode::kFailing) {
    fail_phase_ = Phase::kFailing;
    next_health_sample_ = plan_.fail_at_cycle + plan_.health_period_cycles;
    return;
  }
  // Surprise removal: the device vanishes this cycle. Everything queued at
  // its ingress bounces; DRAM work already inside it keeps "draining" but
  // its data can never cross the dead link, so those responses complete
  // poisoned too (the host watchdog path synthesizes the error response).
  fail_phase_ = Phase::kDead;
  hard_dead_ = true;
  for (std::uint32_t sub = dev * subchannels_per_device_;
       sub < (dev + 1) * subchannels_per_device_; ++sub) {
    auto& ingress = device_ingress_[sub];
    while (!ingress.empty()) {
      const DeviceMsg& msg = ingress.front();
      if (msg.is_write) {
        ++avail_.lost_writes;
      } else if (msg.dup) {
        ++ras_dev_.dup_drops;  // The original slot bounces elsewhere.
      } else {
        bounce_read(static_cast<std::uint32_t>(msg.token),
                    std::max(msg.arrival, now));
      }
      ingress.pop_front();
    }
  }
  auto& pending = pending_responses_[dev];
  for (const PendingResponse& p : pending) {
    const std::uint32_t slot = static_cast<std::uint32_t>(p.token);
    InflightRead& info = inflight_[slot];
    info.dram_ready = p.ready;
    info.dram_service = p.dram_service;
    info.dram_queue = p.dram_queue;
    bounce_read(slot, std::max(p.ready, now));
  }
  pending.clear();
  fabric_->set_link_down(dev);
  ++avail_.devices_offlined;
}

Cycle CxlMemory::pump_failure(Cycle now) {
  using Phase = ras::FailureStatus::Phase;
  if (fail_phase_ == Phase::kNone) {
    if (now < plan_.fail_at_cycle) return plan_.fail_at_cycle;
    fail_onset(now);
  }
  Cycle wake = kNoCycle;
  if (fail_phase_ == Phase::kFailing || fail_phase_ == Phase::kEvacuating) {
    // Health monitor: EWMA of the per-window read-error fraction, sampled
    // on a fixed grid so both scheduler modes observe identical windows.
    while (next_health_sample_ <= now) {
      const double frac = win_reads_ == 0 ? 0.0
                                          : static_cast<double>(win_errors_) /
                                                static_cast<double>(win_reads_);
      health_ewma_ = plan_.health_ewma_alpha * frac +
                     (1.0 - plan_.health_ewma_alpha) * health_ewma_;
      win_errors_ = 0;
      win_reads_ = 0;
      ++avail_.health_samples;
      next_health_sample_ += plan_.health_period_cycles;
      if (fail_phase_ == Phase::kFailing &&
          health_ewma_ >= plan_.health_threshold) {
        ++avail_.monitor_trips;
        // With an offline hold the placement layer evacuates first and
        // calls offline_device(); otherwise drain immediately.
        fail_phase_ = offline_hold_ ? Phase::kEvacuating : Phase::kDraining;
      }
    }
    if (fail_phase_ == Phase::kFailing || fail_phase_ == Phase::kEvacuating) {
      wake = std::min(wake, next_health_sample_);
    }
  }
  if (fail_phase_ == Phase::kDraining) {
    // Graceful offline: new work already bounces at access(); once nothing
    // of the device's remains in flight anywhere it goes dead for good.
    const std::uint32_t dev = plan_.fail_device;
    bool idle = pending_responses_[dev].empty();
    for (std::uint32_t sub = dev * subchannels_per_device_;
         idle && sub < (dev + 1) * subchannels_per_device_; ++sub) {
      idle = device_ingress_[sub].empty() && fabric_tx_inflight_[sub] == 0 &&
             sub_reads_outstanding_[sub] == 0;
    }
    if (idle) {
      fail_phase_ = Phase::kDead;
      fabric_->set_link_down(dev);
      ++avail_.devices_offlined;
    } else {
      wake = std::min(wake, now + 1);  // Poll the drain until it empties.
    }
  }
  return wake;
}

Cycle CxlMemory::tick(Cycle now) {
  Cycle wake = kNoCycle;
  if (avail_on_) wake = std::min(wake, pump_failure(now));
  if (!fabric_->direct()) {
    wake = std::min(wake, fabric_->tick(now));
    // Requests that finished crossing the fabric land in the device
    // ingress; responses that reached the host complete their read.
    for (const fabric::Delivery& d : fabric_->tx_deliveries()) {
      const FabricTxMsg& fm = fmsg_pool_[static_cast<std::uint32_t>(d.payload)];
      if (dev_dead(d.device)) {
        // The device died while this request was crossing the fabric:
        // bounce it at the dead link instead of admitting it.
        if (fm.is_write) {
          ++avail_.lost_writes;
        } else if (fm.dup) {
          ++ras_dev_.dup_drops;  // The original slot bounces on its own.
        } else {
          bounce_read(static_cast<std::uint32_t>(fm.token), std::max(d.arrival, now));
        }
        --fabric_tx_inflight_[fm.sub];
        free_fmsgs_.push_back(static_cast<std::uint32_t>(d.payload));
        continue;
      }
      device_ingress_[fm.sub].push_back(
          {d.arrival, fm.local_line, fm.token, fm.is_write, d.poisoned, fm.dup});
      sub_wake_[fm.sub] = std::min(sub_wake_[fm.sub], d.arrival);
      --fabric_tx_inflight_[fm.sub];
      free_fmsgs_.push_back(static_cast<std::uint32_t>(d.payload));
    }
    fabric_->tx_deliveries().clear();
    for (const fabric::Delivery& d : fabric_->rx_deliveries()) {
      finish_read(static_cast<std::uint32_t>(d.payload), d.arrival, d.poisoned);
    }
    fabric_->rx_deliveries().clear();
  }
  for (std::uint32_t sub = 0; sub < subchannels(); ++sub) {
    if (!force_tick_ && sub_wake_[sub] > now) {
      // No ingress arrival and no controller deadline before the cached
      // wake: the sub-channel is inert and produces no completions.
      wake = std::min(wake, sub_wake_[sub]);
      continue;
    }
    dram::Controller& ctrl = *ctrls_[sub];
    auto& ingress = device_ingress_[sub];
    const std::uint32_t dev = sub / subchannels_per_device_;
    const bool dead = dev_dead(dev);
    if (dead) {
      // Defensive drain: the onset sweep and delivery bounce should leave a
      // dead device's ingress empty, but anything that slips through bounces
      // here rather than wedging the sub-channel.
      while (!ingress.empty()) {
        const DeviceMsg& msg = ingress.front();
        if (msg.is_write) {
          ++avail_.lost_writes;
        } else if (msg.dup) {
          ++ras_dev_.dup_drops;
        } else {
          bounce_read(static_cast<std::uint32_t>(msg.token),
                      std::max(msg.arrival, now));
        }
        ingress.pop_front();
      }
    }
    // A stalled device freezes its ingress entirely (no admissions, no
    // duplicate drops) — a pure function of `now`, so both scheduler modes
    // agree; in-flight DRAM work keeps progressing.
    const bool stalled = !dead && plan_.in_stall(now, dev);
    // Admit delivered messages into the DRAM controller in FIFO order.
    while (!stalled && !ingress.empty() && ingress.front().arrival <= now) {
      const DeviceMsg& msg = ingress.front();
      if (msg.dup) {
        // Watchdog duplicate: the original still owns the inflight slot and
        // the DRAM request; absorb the duplicate here so nothing is ever
        // serviced twice.
        ++ras_dev_.dup_drops;
        ingress.pop_front();
        continue;
      }
      if (!ctrl.can_accept(msg.is_write)) break;
      if (!msg.is_write) {
        inflight_[msg.token].device_arrival = msg.arrival;
        inflight_[msg.token].dram_enqueue = now;
        // A poisoned request still reads DRAM; the response carries poison.
        if (msg.poisoned) inflight_[msg.token].req_poisoned = true;
        if (dev_failing(dev)) {
          // A failing device corrupts reads at an escalating rate; errors
          // surface as poisoned responses and feed the health monitor.
          ++win_reads_;
          if (ras::draw_unit(fail_stream_, fail_draws_++) <
              plan_.fail_error_rate_at(now)) {
            inflight_[msg.token].req_poisoned = true;
            ++win_errors_;
            ++avail_.fail_errors;
          }
        }
        ++sub_reads_outstanding_[sub];
      } else if (msg.poisoned) {
        ++ras_dev_.poisoned_writes;
      }
      ctrl.enqueue(msg.local_line, msg.is_write, now, msg.token);
      ingress.pop_front();
    }
    const Cycle ctrl_wake = ctrl.tick(now);
    Cycle sw = ctrl_wake;
    if (!ingress.empty()) {
      // A blocked-but-arrived head retries when the controller next acts
      // (queue slots free only on CAS issue); a future head at its arrival;
      // a stall-blocked head when the stall window closes.
      const Cycle arrival = ingress.front().arrival;
      if (arrival > now) {
        sw = std::min(sw, arrival);
      } else if (stalled) {
        sw = std::min(sw, plan_.stall_end(now, dev));
      }
    }
    sub_wake_[sub] = sw;
    wake = std::min(wake, sw);

    auto& done = ctrl.completions();
    for (const auto& comp : done) {
      pending_responses_[dev].push_back(
          {comp.done, comp.token, comp.service, comp.queue_delay});
      --sub_reads_outstanding_[sub];  // Controllers only complete reads.
    }
    done.clear();
  }

  // Ship ready responses back into each device's return path.
  for (std::uint32_t dev = 0; dev < n_devices_; ++dev) {
    auto& pending = pending_responses_[dev];
    if (dev_dead(dev)) {
      // Data that finished inside a dead device can never cross the downed
      // link: complete the reads poisoned instead (exactly-once, host-side).
      for (const PendingResponse& p : pending) {
        const std::uint32_t slot = static_cast<std::uint32_t>(p.token);
        InflightRead& info = inflight_[slot];
        info.dram_ready = p.ready;
        info.dram_service = p.dram_service;
        info.dram_queue = p.dram_queue;
        bounce_read(slot, std::max(p.ready, now));
      }
      pending.clear();
      continue;
    }
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].ready > now || !fabric_->can_send_rx(dev, now)) {
        ++i;
        continue;
      }
      const std::uint32_t slot = static_cast<std::uint32_t>(pending[i].token);
      InflightRead& info = inflight_[slot];
      info.dram_ready = pending[i].ready;
      info.dram_service = pending[i].dram_service;
      info.dram_queue = pending[i].dram_queue;
      const link::SendResult sr =
          fabric_->send_rx(dev, link::kReadResponseBytes, now, slot);
      // Direct links deliver analytically at send time; switched responses
      // finish when the fabric drains them at the host.
      if (sr.at != kNoCycle) finish_read(slot, sr.at, sr.poisoned);
      pending[i] = pending.back();
      pending.pop_back();
    }
    // Responses still parked: wake at their ready cycle, or — if ready but
    // the return path is out of credit — at the cycle the credit frees
    // (exact for direct links: rx_busy_until_ only moves on sends, which
    // happen in this loop; conservative next-cycle retry through switches).
    for (const PendingResponse& p : pending) {
      const Cycle at = p.ready > now ? p.ready : fabric_->rx_credit_cycle(dev, now);
      wake = std::min(wake, std::max(at, now + 1));
    }
  }
  if (plan_.watchdog()) wake = std::min(wake, pump_watchdog(now));
  return wake;
}

Cycle CxlMemory::pump_watchdog(Cycle now) {
  Cycle wake = kNoCycle;
  for (std::uint32_t slot = 0; slot < inflight_.size(); ++slot) {
    InflightRead& fl = inflight_[slot];
    if (fl.deadline == kNoCycle) continue;  // Free slot or watchdog retired.
    if (!fl.dup_pending && fl.deadline > now) {
      wake = std::min(wake, fl.deadline);
      continue;
    }
    if (!fl.dup_pending) {
      fl.dup_pending = true;
      ++ras_dev_.timeouts;
    }
    // Reissue a duplicate request when the tx plane and the device ingress
    // have room; otherwise retry next cycle. Duplicates cost request
    // bandwidth and an ingress slot but are dropped at admission, so the
    // original (which is never cancelled) stays the only serviced copy.
    const bool room = device_ingress_[fl.sub].size() + fabric_tx_inflight_[fl.sub] <
                      kDeviceIngressDepth;
    if (!room || !fabric_->can_send_tx(fl.device, now)) {
      wake = std::min(wake, now + 1);
      continue;
    }
    if (fabric_->direct()) {
      const link::SendResult sr =
          fabric_->send_tx(fl.device, link::kReadRequestBytes, now, 0);
      device_ingress_[fl.sub].push_back(
          {sr.at, fl.local_line, slot, false, sr.poisoned, true});
      sub_wake_[fl.sub] = std::min(sub_wake_[fl.sub], sr.at);
    } else {
      const std::uint32_t m = alloc_fmsg({fl.local_line, slot, fl.sub, false, true});
      fabric_->send_tx(fl.device, link::kReadRequestBytes, now, m);
      ++fabric_tx_inflight_[fl.sub];
    }
    ++ras_dev_.backoff_retries;
    fl.dup_pending = false;
    ++fl.reissues;
    if (fl.reissues >= plan_.max_reissues) {
      fl.deadline = kNoCycle;  // Budget spent: trust the original to land.
      continue;
    }
    // Exponential backoff, capped: timeout * 2^reissues (saturating).
    Cycle backoff = plan_.backoff_cap_cycles;
    if (fl.reissues < 63) {
      const Cycle scaled = plan_.timeout_cycles << fl.reissues;
      if ((scaled >> fl.reissues) == plan_.timeout_cycles && scaled < backoff) {
        backoff = scaled;
      }
    }
    fl.deadline = now + backoff;
    wake = std::min(wake, fl.deadline);
  }
  return wake;
}

MemorySnapshot CxlMemory::snapshot() const {
  MemorySnapshot s;
  const dram::ControllerStats agg = aggregate_dram_stats();
  s.reads = agg.reads_done + agg.reads_forwarded;
  s.writes = agg.writes_done;
  s.dram_service_sum = agg.read_service_sum;
  s.dram_queue_sum = agg.read_queue_delay_sum;
  s.cxl_interface_sum = cxl_interface_sum_;
  s.cxl_queue_sum = cxl_queue_sum_;
  s.data_bus_busy = static_cast<double>(agg.data_bus_busy_cycles);
  s.subchannels = subchannels();
  s.peak_gbps = peak_gbps();
  s.row_hit_rate = agg.row_hit_rate();
  return s;
}

void CxlMemory::reset_stats() {
  for (auto& c : ctrls_) c->reset_stats();
  fabric_->reset_stats();
  // avail_ is intentionally NOT reset: the failure-lifecycle counters are
  // lifetime quantities whose conservation invariants (e.g. evac_pages_out
  // == evac_pages_in + pages_retired) must hold across warmup resets.
  ras_dev_ = {};
  cxl_interface_sum_ = 0;
  cxl_queue_sum_ = 0;
  dram_internal_sum_ = 0;
  reads_done_ = 0;
}

dram::ControllerStats CxlMemory::aggregate_dram_stats() const {
  dram::ControllerStats agg;
  for (const auto& c : ctrls_) accumulate(agg, c->stats());
  return agg;
}

ras::RasCounters CxlMemory::ras_counters() const {
  ras::RasCounters c = fabric_->ras_counters();
  c += ras_dev_;
  return c;
}

}  // namespace coaxial::mem
