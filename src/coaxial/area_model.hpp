// Silicon area model (Table I / §IV-B).
//
// Relative component areas derived from Golden Cove (Intel 10 nm) and Zen 3
// (TSMC 7 nm) die shots, all normalised to 1 MB of LLC. These are paper
// inputs, not measured outputs; the model reproduces Table II's relative
// die-area column for each server design.
#pragma once

#include <cstdint>

namespace coaxial::area {

inline constexpr double kLlcPerMb = 1.0;
inline constexpr double kCore = 6.5;        ///< Zen 3 core incl. 512 KB L2.
inline constexpr double kPciePhyCtrl = 5.9; ///< x8 PCIe PHY + controller.
inline constexpr double kDdrPhyCtrl = 10.8; ///< DDR channel PHY + controller.

struct ServerArea {
  std::uint32_t cores = 144;
  std::uint32_t llc_mb = 288;
  std::uint32_t ddr_channels = 12;
  std::uint32_t cxl_x8_channels = 0;

  double total() const {
    return cores * kCore + llc_mb * kLlcPerMb + ddr_channels * kDdrPhyCtrl +
           cxl_x8_channels * kPciePhyCtrl;
  }
};

/// Area of a design relative to the DDR baseline (Table II column).
inline double relative_area(const ServerArea& design, const ServerArea& baseline) {
  return design.total() / baseline.total();
}

}  // namespace coaxial::area
