#include "coaxial/calm.hpp"

#include <algorithm>

namespace coaxial::calm {

Decider::Decider(const CalmConfig& cfg, double peak_bytes_per_cycle, std::uint32_t num_l2,
                 std::uint64_t seed, obs::Scope scope)
    : cfg_(cfg), rng_(seed) {
  share_bytes_per_cycle_ =
      cfg.r_fraction * peak_bytes_per_cycle / std::max<std::uint32_t>(num_l2, 1);
  l2_.reserve(num_l2);
  for (std::uint32_t i = 0; i < num_l2; ++i) l2_.emplace_back(cfg.epoch_cycles);
  // MAP-I counters start weakly predicting "miss": bandwidth-rich systems
  // prefer false positives over false negatives (§VI-B).
  mapi_table_.assign(cfg.mapi_entries, cfg.mapi_threshold);
  if (scope.valid()) {
    scope.expose_counter("decisions", [this] { return stats_.decisions; });
    scope.expose_counter("probes", [this] { return stats_.probes; });
    scope.expose_counter("true_positives", [this] { return stats_.true_positives; });
    scope.expose_counter("false_positives", [this] { return stats_.false_positives; });
    scope.expose_counter("true_negatives", [this] { return stats_.true_negatives; });
    scope.expose_counter("false_negatives", [this] { return stats_.false_negatives; });
  }
}

bool Decider::decide(std::uint32_t l2_id, Addr line, Addr pc, Cycle now,
                     const cache::Cache& llc) {
  ++stats_.decisions;
  switch (cfg_.policy) {
    case Policy::kNone:
      return false;
    case Policy::kOracle:
      return !llc.probe(line);
    case Policy::kMapI:
      return mapi_predicts_miss(pc);
    case Policy::kHybrid:
      return mapi_predicts_miss(pc) && regulator_grants(l2_id, now);
    case Policy::kRegulated:
      return regulator_grants(l2_id, now);
  }
  return false;
}

bool Decider::mapi_predicts_miss(Addr pc) const {
  const std::size_t idx = (pc >> 3) & (mapi_table_.size() - 1);
  return mapi_table_[idx] >= cfg_.mapi_threshold;
}

bool Decider::regulator_grants(std::uint32_t l2_id, Cycle now) {
  L2State& st = l2_[l2_id];
  const double bw_filtered = st.filtered.rate(now);
  const double bw_unfiltered = st.unfiltered.rate(now);
  if (bw_filtered >= share_bytes_per_cycle_) return false;  // Already saturated.
  if (bw_unfiltered <= 0.0) return true;  // No estimate yet: probe freely.
  const double p = std::min(1.0, (share_bytes_per_cycle_ - bw_filtered) / bw_unfiltered);
  return rng_.chance(p);
}

void Decider::on_llc_result(std::uint32_t l2_id, Addr pc, bool llc_hit, bool did_probe,
                            Cycle now) {
  if (did_probe) {
    ++stats_.probes;
    if (llc_hit) {
      ++stats_.false_positives;
    } else {
      ++stats_.true_positives;
    }
  } else {
    if (llc_hit) {
      ++stats_.true_negatives;
    } else {
      ++stats_.false_negatives;
    }
  }

  if (cfg_.policy == Policy::kMapI || cfg_.policy == Policy::kHybrid) {
    const std::size_t idx = (pc >> 3) & (mapi_table_.size() - 1);
    std::uint8_t& ctr = mapi_table_[idx];
    if (llc_hit) {
      if (ctr > 0) --ctr;
    } else {
      if (ctr < 7) ++ctr;
    }
  }

  if (l2_id < l2_.size()) {
    L2State& st = l2_[l2_id];
    st.unfiltered.record(now, kLineBytes);
    if (!llc_hit) st.filtered.record(now, kLineBytes);
  }
}

BandwidthRegulator::BandwidthRegulator(double peak_bytes_per_cycle,
                                       std::uint32_t tenants, double r_fraction,
                                       Cycle burst_cycles) {
  share_ = r_fraction * peak_bytes_per_cycle / std::max<std::uint32_t>(tenants, 1);
  cap_ = share_ * static_cast<double>(burst_cycles);
  // Buckets start full: a tenant may burst immediately at t=0, matching the
  // steady-state behaviour of a long-idle bucket.
  buckets_.assign(tenants, Bucket{cap_, 0});
}

void BandwidthRegulator::accrue(std::uint32_t tenant, Cycle now) {
  Bucket& b = buckets_[tenant];
  if (now > b.last) {
    b.credit = std::min(cap_, b.credit + share_ * static_cast<double>(now - b.last));
    b.last = now;
  }
}

bool BandwidthRegulator::has_credit(std::uint32_t tenant, double bytes, Cycle now) {
  accrue(tenant, now);
  return buckets_[tenant].credit >= bytes;
}

void BandwidthRegulator::consume(std::uint32_t tenant, double bytes, Cycle now) {
  accrue(tenant, now);
  buckets_[tenant].credit -= bytes;
}

}  // namespace coaxial::calm
