// CALM: Concurrent Access of LLC and Memory (§IV-C).
//
// On an L2 miss the decider chooses whether to probe memory in parallel
// with the LLC lookup, removing LLC latency from the critical path of
// (predicted) LLC misses at the cost of memory bandwidth when the
// prediction is wrong. Three mechanisms from the paper:
//
//  * CALM_R  — bandwidth-regulated: each L2 estimates its LLC-filtered and
//    unfiltered memory bandwidth demand over epochs; if the filtered demand
//    is below its share of R% of peak memory bandwidth, the miss performs
//    CALM with probability min(1, (R - bw_filtered) / bw_unfiltered).
//  * MAP-I   — PC-indexed 3-bit-counter predictor of LLC misses
//    (Qureshi & Loh, MICRO'12), requiring the PC at the L2.
//  * Oracle  — ideal predictor that peeks the LLC tag array.
//
// False positive = CALM probe that hits in the LLC (wasted bandwidth).
// False negative = skipped probe that misses in the LLC (serialised access).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace coaxial::calm {

enum class Policy : std::uint8_t {
  kNone,       ///< Serial LLC-then-memory access (baseline behaviour).
  kRegulated,  ///< CALM_R.
  kMapI,       ///< MAP-I PC-based predictor.
  kHybrid,     ///< MAP-I prediction gated by CALM_R's bandwidth budget —
               ///< accuracy of the predictor without its bandwidth risk
               ///< (extension; the paper evaluates the two separately).
  kOracle,     ///< Ideal predictor.
};

struct CalmConfig {
  Policy policy = Policy::kNone;
  double r_fraction = 0.70;  ///< R as a fraction of peak memory bandwidth.
  Cycle epoch_cycles = 8192;
  std::uint32_t mapi_entries = 1024;  ///< Power of two.
  std::uint8_t mapi_threshold = 4;    ///< Counter >= threshold => predict miss.
};

struct CalmStats {
  std::uint64_t decisions = 0;        ///< L2 misses that consulted CALM.
  std::uint64_t probes = 0;           ///< CALM memory probes issued.
  std::uint64_t true_positives = 0;   ///< Probe issued, LLC missed.
  std::uint64_t false_positives = 0;  ///< Probe issued, LLC hit (wasted BW).
  std::uint64_t true_negatives = 0;   ///< No probe, LLC hit.
  std::uint64_t false_negatives = 0;  ///< No probe, LLC missed (serialised).

  double false_positive_rate() const {
    return decisions == 0 ? 0.0
                          : static_cast<double>(false_positives) /
                                static_cast<double>(decisions);
  }
  double false_negative_rate() const {
    return decisions == 0 ? 0.0
                          : static_cast<double>(false_negatives) /
                                static_cast<double>(decisions);
  }
};

class Decider {
 public:
  /// `peak_bytes_per_cycle` is the memory system's aggregate DRAM-side peak;
  /// each of the `num_l2` controllers regulates against its fair share.
  /// `scope`, when valid, registers the confusion-matrix counters into the
  /// metrics registry at construction.
  Decider(const CalmConfig& cfg, double peak_bytes_per_cycle, std::uint32_t num_l2,
          std::uint64_t seed = 0xca1f, obs::Scope scope = {});

  /// Decide at L2-miss time whether to probe memory concurrently.
  /// `llc` is consulted only by the oracle policy.
  bool decide(std::uint32_t l2_id, Addr line, Addr pc, Cycle now, const cache::Cache& llc);

  /// Report the LLC outcome of a decided miss (updates estimators,
  /// predictor state, and the confusion-matrix stats).
  void on_llc_result(std::uint32_t l2_id, Addr pc, bool llc_hit, bool did_probe, Cycle now);

  const CalmStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  Policy policy() const { return cfg_.policy; }

 private:
  bool mapi_predicts_miss(Addr pc) const;
  bool regulator_grants(std::uint32_t l2_id, Cycle now);

  struct L2State {
    EpochRate filtered;    ///< Bytes/cycle of L2 misses that also miss LLC.
    EpochRate unfiltered;  ///< Bytes/cycle of all L2 misses.
    L2State(Cycle epoch) : filtered(epoch), unfiltered(epoch) {}
  };

  CalmConfig cfg_;
  double share_bytes_per_cycle_;  ///< R * peak / num_l2.
  std::vector<L2State> l2_;
  std::vector<std::uint8_t> mapi_table_;
  Rng rng_;
  CalmStats stats_;
};

/// Deterministic per-tenant token-bucket bandwidth regulator — the CALM_R
/// budget idea applied at admission time instead of probe time. Each tenant
/// accrues credit at its fair share of `r_fraction` x peak bandwidth and may
/// burst up to `burst_cycles` worth of accumulated share; an admission that
/// lacks credit is held in its injection queue (counted as a regulation
/// stall, distinct from memory backpressure).
///
/// Credit accrual is lazy: it happens only inside has_credit()/consume(),
/// from the recorded last-accrual cycle to `now`. Because the open-loop
/// driver attempts admission at exactly the same cycles in event-driven and
/// lockstep modes (every cycle while a tenant queue is non-empty), the
/// accrual arithmetic — and therefore every admission decision — is
/// byte-identical across modes.
class BandwidthRegulator {
 public:
  /// Each of `tenants` gets share = r_fraction * peak_bytes_per_cycle /
  /// tenants, with a credit cap of share * burst_cycles bytes.
  BandwidthRegulator(double peak_bytes_per_cycle, std::uint32_t tenants,
                     double r_fraction, Cycle burst_cycles);

  /// True when `tenant` currently holds at least `bytes` of credit.
  /// Accrues credit up to `now`; does not consume.
  bool has_credit(std::uint32_t tenant, double bytes, Cycle now);

  /// Deduct `bytes` from the tenant's bucket (may go slightly negative if
  /// the caller skipped has_credit; the driver never does).
  void consume(std::uint32_t tenant, double bytes, Cycle now);

  double share_bytes_per_cycle() const { return share_; }
  double credit_cap_bytes() const { return cap_; }
  std::uint32_t tenants() const { return static_cast<std::uint32_t>(buckets_.size()); }

 private:
  void accrue(std::uint32_t tenant, Cycle now);

  struct Bucket {
    double credit = 0.0;
    Cycle last = 0;
  };
  double share_ = 0.0;
  double cap_ = 0.0;
  std::vector<Bucket> buckets_;
};

}  // namespace coaxial::calm
