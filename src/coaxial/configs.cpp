#include "coaxial/configs.hpp"

#include <vector>

namespace coaxial::sys {

std::unique_ptr<mem::MemorySystem> SystemConfig::make_memory(obs::Scope scope) const {
  if (topology == Topology::kDirectDdr) {
    return std::make_unique<mem::DirectDdrMemory>(ddr_channels, dram_timing, dram_geometry,
                                                  scope);
  }
  const link::LaneConfig lanes =
      asym_lanes ? link::LaneConfig::x8_asym(cxl_port_ns) : link::LaneConfig::x8(cxl_port_ns);
  return std::make_unique<mem::CxlMemory>(fabric, cxl_channels, ddr_per_device, lanes,
                                          dram_timing, dram_geometry, scope, fault_plan);
}

double SystemConfig::peak_memory_gbps() const {
  const std::uint32_t ddr =
      topology == Topology::kDirectDdr ? ddr_channels : cxl_devices() * ddr_per_device;
  return ddr * dram::kChannelPeakGBps;
}

namespace {
SystemConfig coaxial_base(const char* name, std::uint32_t cxl_channels,
                          std::uint32_t llc_mb_per_core) {
  SystemConfig c;
  c.name = name;
  c.topology = Topology::kCxl;
  c.cxl_channels = cxl_channels;
  c.uarch.llc_mb_per_core = llc_mb_per_core;
  c.calm.policy = calm::Policy::kRegulated;
  c.calm.r_fraction = 0.70;
  return c;
}
}  // namespace

SystemConfig baseline_ddr() {
  SystemConfig c;
  c.name = "DDR-baseline";
  c.topology = Topology::kDirectDdr;
  c.ddr_channels = 1;
  c.uarch.llc_mb_per_core = 2;
  c.calm.policy = calm::Policy::kNone;
  return c;
}

SystemConfig coaxial_2x() { return coaxial_base("COAXIAL-2x", 2, 2); }

SystemConfig coaxial_4x() { return coaxial_base("COAXIAL-4x", 4, 1); }

SystemConfig coaxial_5x() { return coaxial_base("COAXIAL-5x", 5, 2); }

SystemConfig coaxial_asym() {
  SystemConfig c = coaxial_base("COAXIAL-asym", 4, 1);
  c.ddr_per_device = 2;
  c.asym_lanes = true;
  return c;
}

SystemConfig coaxial_star(std::uint32_t devices, std::uint32_t host_links) {
  SystemConfig c = coaxial_base(
      ("COAXIAL-star" + std::to_string(devices) + "x" + std::to_string(host_links)).c_str(),
      host_links, 1);
  c.fabric = fabric::FabricConfig::star(devices, host_links);
  c.fabric.interleave = fabric::Interleave::kPage;
  return c;
}

SystemConfig coaxial_tree(std::uint32_t devices, std::uint32_t host_links,
                          std::uint32_t leaf_switches) {
  SystemConfig c = coaxial_base(
      ("COAXIAL-tree" + std::to_string(devices) + "x" + std::to_string(host_links)).c_str(),
      host_links, 1);
  c.fabric = fabric::FabricConfig::tree(devices, host_links, leaf_switches);
  c.fabric.interleave = fabric::Interleave::kPage;
  return c;
}

std::vector<SystemConfig> all_configs() {
  return {baseline_ddr(), coaxial_5x(), coaxial_2x(), coaxial_4x(), coaxial_asym()};
}

ras::FaultPlan ras_crc_noise(double bit_error_rate) {
  ras::FaultPlan p;
  p.bit_error_rate = bit_error_rate;
  return p;
}

ras::FaultPlan ras_flaky_device(std::uint32_t device) {
  ras::FaultPlan p;
  p.stall_period_cycles = 20'000;
  p.stall_len_cycles = 2'000;
  p.stall_device = device;
  p.timeout_cycles = 4'000;
  p.max_reissues = 4;
  p.backoff_cap_cycles = 64'000;
  return p;
}

ras::FaultPlan ras_downtrain(Cycle at_cycle) {
  ras::FaultPlan p;
  p.downtrain_at_cycle = at_cycle;
  return p;
}

ras::FaultPlan ras_stress() {
  ras::FaultPlan p = ras_flaky_device(0);
  p.bit_error_rate = 3e-5;
  p.burst_multiplier = 10.0;
  p.burst_period_cycles = 50'000;
  p.burst_len_cycles = 5'000;
  p.downtrain_at_cycle = 100'000;
  return p;
}

}  // namespace coaxial::sys
