#include "coaxial/configs.hpp"

#include <utility>
#include <vector>

#include "placement/tiered_memory.hpp"

namespace coaxial::sys {

namespace {
/// The capacity side of the address space: the plain (non-tiered) topology
/// a SystemConfig describes, with the stage-2 AddressMap injected
/// explicitly so every address-to-device decision goes through placement.
std::unique_ptr<mem::MemorySystem> make_flat_memory(const SystemConfig& cfg,
                                                    obs::Scope scope) {
  if (cfg.topology == Topology::kDirectDdr) {
    return std::make_unique<mem::DirectDdrMemory>(cfg.ddr_channels, cfg.dram_timing,
                                                  cfg.dram_geometry, scope);
  }
  const link::LaneConfig lanes = cfg.asym_lanes ? link::LaneConfig::x8_asym(cfg.cxl_port_ns)
                                                : link::LaneConfig::x8(cfg.cxl_port_ns);
  placement::AddressMap stage2 = placement::AddressMap::passthrough(
      cfg.fabric.interleave, cfg.cxl_devices(), cfg.ddr_per_device * 2,
      cfg.fabric.page_lines, cfg.fabric.contiguous_lines);
  return std::make_unique<mem::CxlMemory>(cfg.fabric, cfg.cxl_channels, cfg.ddr_per_device,
                                          lanes, std::move(stage2), cfg.dram_timing,
                                          cfg.dram_geometry, scope, cfg.fault_plan);
}
}  // namespace

std::unique_ptr<mem::MemorySystem> SystemConfig::make_memory(obs::Scope scope) const {
  if (!tiering.enabled) return make_flat_memory(*this, scope);
  tiering.validate();
  auto fast = std::make_unique<mem::DirectDdrMemory>(
      tiering.fast_ddr_channels, dram_timing, dram_geometry, scope.sub("tier0"));
  return std::make_unique<placement::TieredMemory>(
      tiering, std::move(fast), make_flat_memory(*this, scope.sub("tier1")), scope,
      fault_plan);
}

double SystemConfig::peak_memory_gbps() const {
  const std::uint32_t ddr =
      topology == Topology::kDirectDdr ? ddr_channels : cxl_devices() * ddr_per_device;
  return ddr * dram::kChannelPeakGBps;
}

namespace {
SystemConfig coaxial_base(const char* name, std::uint32_t cxl_channels,
                          std::uint32_t llc_mb_per_core) {
  SystemConfig c;
  c.name = name;
  c.topology = Topology::kCxl;
  c.cxl_channels = cxl_channels;
  c.uarch.llc_mb_per_core = llc_mb_per_core;
  c.calm.policy = calm::Policy::kRegulated;
  c.calm.r_fraction = 0.70;
  return c;
}
}  // namespace

SystemConfig baseline_ddr() {
  SystemConfig c;
  c.name = "DDR-baseline";
  c.topology = Topology::kDirectDdr;
  c.ddr_channels = 1;
  c.uarch.llc_mb_per_core = 2;
  c.calm.policy = calm::Policy::kNone;
  return c;
}

SystemConfig coaxial_2x() { return coaxial_base("COAXIAL-2x", 2, 2); }

SystemConfig coaxial_4x() { return coaxial_base("COAXIAL-4x", 4, 1); }

SystemConfig coaxial_5x() { return coaxial_base("COAXIAL-5x", 5, 2); }

SystemConfig coaxial_asym() {
  SystemConfig c = coaxial_base("COAXIAL-asym", 4, 1);
  c.ddr_per_device = 2;
  c.asym_lanes = true;
  return c;
}

SystemConfig coaxial_star(std::uint32_t devices, std::uint32_t host_links) {
  SystemConfig c = coaxial_base(
      ("COAXIAL-star" + std::to_string(devices) + "x" + std::to_string(host_links)).c_str(),
      host_links, 1);
  c.fabric = fabric::FabricConfig::star(devices, host_links);
  c.fabric.interleave = fabric::Interleave::kPage;
  return c;
}

SystemConfig coaxial_tree(std::uint32_t devices, std::uint32_t host_links,
                          std::uint32_t leaf_switches) {
  SystemConfig c = coaxial_base(
      ("COAXIAL-tree" + std::to_string(devices) + "x" + std::to_string(host_links)).c_str(),
      host_links, 1);
  c.fabric = fabric::FabricConfig::tree(devices, host_links, leaf_switches);
  c.fabric.interleave = fabric::Interleave::kPage;
  return c;
}

SystemConfig coaxial_tiered(placement::PolicyKind policy, std::uint64_t fast_pages,
                            Cycle epoch_cycles) {
  SystemConfig c = coaxial_4x();
  c.name = std::string("COAXIAL-tiered-") + placement::policy_name(policy);
  c.tiering.enabled = true;
  c.tiering.policy = policy;
  c.tiering.fast_ddr_channels = 1;
  c.tiering.fast_capacity_pages = fast_pages;
  c.tiering.epoch_cycles = epoch_cycles;
  // A sweep-friendly migration posture: promote on a handful of touches in
  // one epoch (the tiered-hotcold warm pages average ~9 accesses/epoch, so
  // genuinely warm pages clear this while one-off cold pages do not), and
  // cap migration traffic at 16 page copies (~2k line-ops) per 10k-cycle
  // epoch so the copies never swamp demand bandwidth — a few-hundred-page
  // warm set still turns over within the first fifth of a standard run.
  c.tiering.promote_threshold = 4;
  c.tiering.max_migrations_per_epoch = 16;
  return c;
}

std::vector<SystemConfig> all_configs() {
  return {baseline_ddr(), coaxial_5x(), coaxial_2x(), coaxial_4x(), coaxial_asym()};
}

pool::PoolConfig coaxial_pooled(std::uint32_t n_hosts, double share_fraction,
                                std::uint32_t shared_devices,
                                std::uint32_t private_devices) {
  pool::PoolConfig c;
  c.name = "COAXIAL-pooled" + std::to_string(n_hosts) + "h";
  c.n_hosts = n_hosts;
  c.shared_devices = shared_devices;
  c.private_devices = private_devices;
  c.share_fraction = share_fraction;
  return c;
}

pool::PoolConfig coaxial_pooled_switched(std::uint32_t n_hosts,
                                         double share_fraction,
                                         std::uint32_t shared_devices,
                                         std::uint32_t private_devices) {
  pool::PoolConfig c =
      coaxial_pooled(n_hosts, share_fraction, shared_devices, private_devices);
  c.name = "COAXIAL-pooled" + std::to_string(n_hosts) + "h-sw";
  c.fabric_kind = fabric::TopologyKind::kStar;
  return c;
}

ras::FaultPlan ras_crc_noise(double bit_error_rate) {
  ras::FaultPlan p;
  p.bit_error_rate = bit_error_rate;
  return p;
}

ras::FaultPlan ras_flaky_device(std::uint32_t device) {
  ras::FaultPlan p;
  p.stall_period_cycles = 20'000;
  p.stall_len_cycles = 2'000;
  p.stall_device = device;
  p.timeout_cycles = 4'000;
  p.max_reissues = 4;
  p.backoff_cap_cycles = 64'000;
  return p;
}

ras::FaultPlan ras_downtrain(Cycle at_cycle) {
  ras::FaultPlan p;
  p.downtrain_at_cycle = at_cycle;
  return p;
}

ras::FaultPlan ras_stress() {
  ras::FaultPlan p = ras_flaky_device(0);
  p.bit_error_rate = 3e-5;
  p.burst_multiplier = 10.0;
  p.burst_period_cycles = 50'000;
  p.burst_len_cycles = 5'000;
  p.downtrain_at_cycle = 100'000;
  return p;
}

ras::FaultPlan ras_device_loss(std::uint32_t device, Cycle at_cycle) {
  ras::FaultPlan p;
  p.fail_mode = ras::FailureMode::kSurpriseRemoval;
  p.fail_device = device;
  p.fail_at_cycle = at_cycle;
  return p;
}

ras::FaultPlan ras_failing_evac(std::uint32_t device, Cycle at_cycle) {
  ras::FaultPlan p;
  p.fail_mode = ras::FailureMode::kFailing;
  p.fail_device = device;
  p.fail_at_cycle = at_cycle;
  // Ramp to a 2% read-error rate over 10k cycles; the EWMA (half-weight on
  // the newest 2k-cycle window) crosses the 0.2% threshold a window or two
  // into the ramp. 2% keeps evacuation feasible: a 64-line page copy is
  // clean with probability 0.98^64 ~ 0.27, so aborted jobs converge over
  // retries instead of livelocking the offline handshake.
  p.fail_error_rate = 0.02;
  p.fail_ramp_cycles = 10'000;
  p.health_period_cycles = 2'000;
  p.health_ewma_alpha = 0.5;
  p.health_threshold = 0.002;
  p.evac_pages_per_epoch = 8;
  return p;
}

SystemConfig coaxial_tiered_failover(ras::FailureMode mode, Cycle at_cycle) {
  SystemConfig c = coaxial_tiered();
  c.name = "COAXIAL-tiered-failover";
  // Page-granular capacity interleave: a tier page homes on exactly one
  // device — the precondition for per-device evacuation and retirement.
  c.fabric.interleave = fabric::Interleave::kPage;
  c.fabric.page_lines = c.tiering.page_lines;
  c.fault_plan = mode == ras::FailureMode::kSurpriseRemoval
                     ? ras_device_loss(1, at_cycle)
                     : ras_failing_evac(1, at_cycle);
  return c;
}

pool::PoolConfig coaxial_pooled_faulty(std::uint32_t n_hosts, Cycle at_cycle) {
  pool::PoolConfig c = coaxial_pooled(n_hosts);
  c.name = "COAXIAL-pooled" + std::to_string(n_hosts) + "h-faulty";
  c.fault_plan = ras_device_loss(1, at_cycle);
  c.fault_plan.bit_error_rate = 1e-5;  // CRC noise on every host head too.
  return c;
}

}  // namespace coaxial::sys
