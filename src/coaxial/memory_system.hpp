// Memory-system topologies: direct DDR attachment (baseline, Fig. 3a) and
// CXL-attached Type-3 devices (COAXIAL, Fig. 3b).
//
// Both expose the same port-based interface to the on-chip hierarchy: lines
// are striped across all DDR sub-channels at line granularity; each
// topology reports which NoC port a line routes through so the simulation
// layer can add mesh latency. Reads complete asynchronously via drained
// completions (whose `done` cycle may be in the future — the caller
// schedules accordingly); writes are posted with backpressure.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "dram/controller.hpp"
#include "fabric/fabric.hpp"
#include "fabric/router.hpp"
#include "link/cxl_link.hpp"
#include "obs/metrics.hpp"
#include "placement/address_map.hpp"
#include "ras/fault_plan.hpp"

namespace coaxial::mem {

struct MemCompletion {
  std::uint64_t token = 0;
  Cycle done = 0;  ///< May be later than the current cycle.
  // Per-read latency decomposition (cycles), so the consumer can account
  // demand and prefetch traffic separately.
  Cycle dram_service = 0;
  Cycle dram_queue = 0;
  Cycle cxl_interface = 0;  ///< Fixed port + serialisation component.
  Cycle cxl_queue = 0;      ///< Link/device queuing component.
  bool poisoned = false;    ///< Data is poisoned (RAS replay budget exhausted).
};

/// Aggregated snapshot for reporting (averages are over completed reads).
struct MemorySnapshot {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double dram_service_sum = 0;    ///< Cycles: unloaded DRAM service, reads.
  double dram_queue_sum = 0;      ///< Cycles: queuing at DRAM controllers, reads.
  double cxl_interface_sum = 0;   ///< Cycles: fixed CXL port+serialisation, reads.
  double cxl_queue_sum = 0;       ///< Cycles: CXL link/device queuing, reads.
  double data_bus_busy = 0;       ///< Sum of DRAM data-bus busy cycles.
  std::uint64_t subchannels = 0;
  double peak_gbps = 0;           ///< Aggregate DRAM-side peak bandwidth.
  double row_hit_rate = 0;

  /// Average DRAM-side bus utilisation in [0,1] over `elapsed` cycles.
  double utilization(Cycle elapsed) const {
    if (elapsed == 0 || subchannels == 0) return 0.0;
    return data_bus_busy / (static_cast<double>(elapsed) * static_cast<double>(subchannels));
  }

  /// Achieved bandwidth in GB/s over `elapsed` cycles.
  double achieved_gbps(Cycle elapsed) const {
    if (elapsed == 0) return 0.0;
    const double bytes = static_cast<double>(reads + writes) * kLineBytes;
    return bytes / (static_cast<double>(elapsed) * kNsPerCycle);
  }
};

class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  /// Backpressure check for the port a line maps to.
  virtual bool can_accept(Addr line, bool is_write, Cycle now) const = 0;

  /// Issue an access. Reads echo `token` in a completion; writes are posted.
  virtual void access(Addr line, bool is_write, Cycle now, std::uint64_t token) = 0;

  /// Advance controllers/devices by one cycle. Returns the earliest future
  /// cycle at which any internal component could act (conservative lower
  /// bound); the caller need not tick again before then unless it issues a
  /// new access in the meantime.
  virtual Cycle tick(Cycle now) = 0;

  /// Disable the per-sub-channel wake caching so every tick() advances
  /// every controller (the pre-scheduler reference behaviour, used by the
  /// event-driven-vs-forced equivalence test).
  virtual void set_force_tick(bool force) = 0;

  /// Completions produced since the last drain (caller takes ownership).
  virtual std::vector<MemCompletion>& completions() = 0;

  /// Number of NoC-visible memory ports and the port a line routes through.
  virtual std::uint32_t ports() const = 0;
  virtual std::uint32_t port_of(Addr line) const = 0;

  virtual MemorySnapshot snapshot() const = 0;
  virtual void reset_stats() = 0;

  /// Aggregate DRAM-side peak bandwidth (GB/s), for utilisation targets.
  virtual double peak_gbps() const = 0;

  /// DRAM activity counters for the power model (aggregated).
  virtual dram::ControllerStats aggregate_dram_stats() const = 0;

  /// Aggregated RAS events (all-zero for topologies without fault support
  /// or with faults disabled).
  virtual ras::RasCounters ras_counters() const { return {}; }

  /// Aggregated placement/migration events (all-zero unless the system is
  /// a placement::TieredMemory with tiering enabled).
  virtual placement::TierCounters tier_counters() const { return {}; }

  // ---- Device-failure lifecycle (DESIGN.md §13; inert defaults) ----------

  /// Availability events (all-zero without a device-failure episode).
  virtual ras::AvailCounters avail_counters() const { return {}; }

  /// Current health/offlining state of the planned failure episode.
  virtual ras::FailureStatus failure_status() const { return {}; }

  /// Evacuation handshake: the placement layer finished moving pages off
  /// `device`; the device may stop accepting work and drain to kDead.
  virtual void offline_device(std::uint32_t device) { (void)device; }

  /// When set (before the episode onset), a monitor trip parks the device
  /// in kEvacuating — still serving, waiting for offline_device() — instead
  /// of draining immediately. The placement layer sets this when it owns
  /// the evacuation.
  virtual void set_offline_hold(bool hold) { (void)hold; }

  /// Device index a line routes to (0 for single-device topologies). Used
  /// by the evacuation policy to find pages homed on the failing device.
  virtual std::uint32_t device_of_line(Addr line) const {
    (void)line;
    return 0;
  }
};

/// Fold one controller-stats sample into an aggregate.
void accumulate(dram::ControllerStats& into, const dram::ControllerStats& from);

/// Register the aggregate read/write/latency/bandwidth probes every
/// topology exposes at its scope root (sampled from snapshot() lazily).
void register_aggregate_probes(const obs::Scope& scope, const MemorySystem& mem);

/// Baseline: `channels` DDR5 channels (2 sub-channels each) on package pins.
class DirectDdrMemory final : public MemorySystem {
 public:
  /// `scope`, when valid, registers per-sub-channel controller metrics under
  /// `dram/ctrlNN` plus aggregate read/write/bandwidth probes.
  explicit DirectDdrMemory(std::uint32_t channels, const dram::Timing& timing = {},
                           const dram::Geometry& geometry = {}, obs::Scope scope = {});

  bool can_accept(Addr line, bool is_write, Cycle now) const override;
  void access(Addr line, bool is_write, Cycle now, std::uint64_t token) override;
  Cycle tick(Cycle now) override;
  void set_force_tick(bool force) override { force_tick_ = force; }
  std::vector<MemCompletion>& completions() override { return out_; }
  std::uint32_t ports() const override { return channels_; }
  std::uint32_t port_of(Addr line) const override {
    return static_cast<std::uint32_t>(line % subchannels()) / 2;
  }
  MemorySnapshot snapshot() const override;
  void reset_stats() override;
  double peak_gbps() const override { return channels_ * dram::kChannelPeakGBps; }
  dram::ControllerStats aggregate_dram_stats() const override;

  std::uint32_t subchannels() const { return static_cast<std::uint32_t>(ctrls_.size()); }
  const dram::Controller& controller(std::uint32_t i) const { return *ctrls_[i]; }

 private:
  std::uint32_t channels_;
  std::vector<std::unique_ptr<dram::Controller>> ctrls_;
  std::vector<Cycle> ctrl_wake_;  ///< Next cycle each controller could act.
  std::vector<MemCompletion> out_;
  bool force_tick_ = false;
};

/// COAXIAL: Type-3 devices hosting `ddr_per_device` DDR5 channels each
/// (1 normally, 2 for COAXIAL-asym), reached through a fabric::Fabric —
/// direct x8 CXL links by default, or switched star/tree topologies with
/// more devices than root ports. Cross-device placement is delegated to a
/// pass-through placement::AddressMap wrapping the stage-2 fabric::Router
/// (per-line by default; per-page / contiguous for the switched configs).
class CxlMemory final : public MemorySystem {
 public:
  /// Legacy direct wiring: `cxl_channels` x8 links, one device per link.
  /// `scope`, when valid, registers per-link metrics under `cxl/linkNN`,
  /// per-sub-channel controller metrics under `dram/ctrlNN`, and aggregate
  /// read/write/bandwidth probes.
  CxlMemory(std::uint32_t cxl_channels, std::uint32_t ddr_per_device,
            const link::LaneConfig& lanes, const dram::Timing& timing = {},
            const dram::Geometry& geometry = {}, obs::Scope scope = {},
            const ras::FaultPlan& plan = {});

  /// General form: topology and interleaving from `fab` (zero counts
  /// inherit `cxl_channels`). Switched fabrics additionally register
  /// per-switch/per-port metrics under `fabric/*`. A `plan` with faults
  /// enabled arms CRC/replay/down-training on every fabric segment, device
  /// stall windows, and the request-timeout watchdog (DESIGN.md §7).
  CxlMemory(const fabric::FabricConfig& fab, std::uint32_t cxl_channels,
            std::uint32_t ddr_per_device, const link::LaneConfig& lanes,
            const dram::Timing& timing = {}, const dram::Geometry& geometry = {},
            obs::Scope scope = {}, const ras::FaultPlan& plan = {});

  /// Injection form: cross-device placement comes from a caller-built
  /// stage-2 AddressMap (pass-through mode; its device count must match
  /// the fabric's). The other constructors delegate here after building
  /// the map from `fab`'s interleave fields.
  CxlMemory(const fabric::FabricConfig& fab, std::uint32_t cxl_channels,
            std::uint32_t ddr_per_device, const link::LaneConfig& lanes,
            placement::AddressMap stage2, const dram::Timing& timing = {},
            const dram::Geometry& geometry = {}, obs::Scope scope = {},
            const ras::FaultPlan& plan = {});

  bool can_accept(Addr line, bool is_write, Cycle now) const override;
  void access(Addr line, bool is_write, Cycle now, std::uint64_t token) override;
  Cycle tick(Cycle now) override;
  void set_force_tick(bool force) override { force_tick_ = force; }
  std::vector<MemCompletion>& completions() override { return out_; }
  std::uint32_t ports() const override { return fabric_->host_links(); }
  std::uint32_t port_of(Addr line) const override {
    return fabric_->root_port_of(amap_.device_of(line));
  }
  MemorySnapshot snapshot() const override;
  void reset_stats() override;
  double peak_gbps() const override {
    return static_cast<double>(n_devices_ * ddr_per_device_) * dram::kChannelPeakGBps;
  }
  dram::ControllerStats aggregate_dram_stats() const override;

  std::uint32_t devices() const { return n_devices_; }
  std::uint32_t subchannels() const { return n_devices_ * subchannels_per_device_; }
  const fabric::Fabric& fabric() const { return *fabric_; }
  /// Direct-topology accessor for the per-channel link (legacy tests/benches).
  const link::CxlLink& channel_link(std::uint32_t i) const {
    return fabric_->direct_link(i);
  }

  /// Fixed unloaded read overhead of the CXL path, in cycles (≈52.5 ns for
  /// a direct x8 link; switched topologies add 2 switch-port traversals
  /// plus one re-serialisation per hop each way).
  Cycle read_interface_cycles() const { return fixed_read_overhead_; }

  const ras::FaultPlan& fault_plan() const { return plan_; }
  ras::RasCounters ras_counters() const override;

  // ---- Device-failure lifecycle (DESIGN.md §13) --------------------------
  ras::AvailCounters avail_counters() const override { return avail_; }
  ras::FailureStatus failure_status() const override {
    return {fail_phase_, plan_.fail_device};
  }
  void offline_device(std::uint32_t device) override;
  void set_offline_hold(bool hold) override { offline_hold_ = hold; }
  std::uint32_t device_of_line(Addr line) const override {
    return amap_.device_of(line);
  }

 private:
  struct DeviceMsg {
    Cycle arrival = 0;
    Addr local_line = 0;
    std::uint64_t token = 0;
    bool is_write = false;
    bool poisoned = false;  ///< Request corrupted beyond replay en route.
    bool dup = false;       ///< Watchdog duplicate: dropped at admission.
  };
  struct PendingResponse {
    Cycle ready = 0;
    std::uint64_t token = 0;
    Cycle dram_service = 0;
    Cycle dram_queue = 0;
  };
  struct InflightRead {
    Cycle start = 0;
    Cycle device_arrival = 0;
    Cycle dram_enqueue = 0;
    // DRAM-side results, staged here while the response crosses a switched
    // fabric (the direct path reads them straight off PendingResponse).
    Cycle dram_ready = 0;
    Cycle dram_service = 0;
    Cycle dram_queue = 0;
    // RAS state: the watchdog deadline (kNoCycle = unwatched/free slot),
    // reissues so far, and the route needed to reissue a duplicate.
    Cycle deadline = kNoCycle;
    std::uint32_t reissues = 0;
    bool dup_pending = false;   ///< Deadline expired, duplicate not yet sent.
    bool req_poisoned = false;  ///< Request arrived poisoned; response inherits.
    std::uint32_t device = 0;
    std::uint32_t sub = 0;
    Addr local_line = 0;
  };
  /// Request payload parked while a message crosses a switched fabric.
  struct FabricTxMsg {
    Addr local_line = 0;
    std::uint64_t token = 0;
    std::uint32_t sub = 0;
    bool is_write = false;
    bool dup = false;
  };

  std::uint32_t ddr_per_device_;
  std::uint32_t subchannels_per_device_;
  std::uint32_t n_devices_ = 0;
  link::LaneConfig lane_cfg_;
  Cycle fixed_read_overhead_ = 0;
  ras::FaultPlan plan_;
  ras::RasCounters ras_dev_;  ///< Device/watchdog events (timeouts, dups, ...).

  std::unique_ptr<fabric::Fabric> fabric_;
  placement::AddressMap amap_;  ///< Stage-2 pass-through placement.
  std::vector<std::unique_ptr<dram::Controller>> ctrls_;           // per sub-channel
  std::vector<std::deque<DeviceMsg>> device_ingress_;              // per sub-channel
  std::vector<Cycle> sub_wake_;  // next cycle each sub-channel could act
  std::vector<std::uint32_t> fabric_tx_inflight_;  // per sub-channel, switched only
  std::vector<std::vector<PendingResponse>> pending_responses_;    // per device
  bool force_tick_ = false;
  std::vector<MemCompletion> out_;
  std::vector<InflightRead> inflight_;  // slot-addressed by internal id
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint64_t> slot_token_;
  std::vector<FabricTxMsg> fmsg_pool_;  // switched-fabric request cookies
  std::vector<std::uint32_t> free_fmsgs_;

  // Read-latency decomposition accumulators (see MemorySnapshot).
  double cxl_interface_sum_ = 0;
  double cxl_queue_sum_ = 0;
  double dram_internal_sum_ = 0;  // redundant check vs controller sums
  std::uint64_t reads_done_ = 0;

  // Device-failure lifecycle state (DESIGN.md §13). All mutations happen in
  // tick()/access() at deterministic cycles; can_accept stays pure.
  bool avail_on_ = false;  ///< plan_.device_failure(), cached.
  ras::FailureStatus::Phase fail_phase_ = ras::FailureStatus::Phase::kNone;
  bool offline_hold_ = false;   ///< Placement layer owns the evacuation.
  bool hard_dead_ = false;      ///< Surprise removal (vs drained offline).
  std::uint64_t fail_stream_ = 0;  ///< Counter-based read-error draw stream.
  std::uint64_t fail_draws_ = 0;
  Cycle next_health_sample_ = kNoCycle;
  double health_ewma_ = 0.0;
  std::uint64_t win_errors_ = 0, win_reads_ = 0;  ///< Current monitor window.
  std::vector<std::uint32_t> sub_reads_outstanding_;  ///< Reads inside DRAM.
  ras::AvailCounters avail_;

  /// New demand work to `dev` is refused: reads poison-complete at the host
  /// root port, writes are lost (kDraining and kDead).
  bool dev_refuses(std::uint32_t dev) const {
    return avail_on_ && dev == plan_.fail_device &&
           fail_phase_ >= ras::FailureStatus::Phase::kDraining;
  }
  /// The device is gone: everything still queued or arriving bounces.
  bool dev_dead(std::uint32_t dev) const {
    return avail_on_ && dev == plan_.fail_device &&
           fail_phase_ == ras::FailureStatus::Phase::kDead;
  }
  /// Reads on `dev` draw against the escalating failing-device error rate.
  bool dev_failing(std::uint32_t dev) const {
    return avail_on_ && dev == plan_.fail_device &&
           (fail_phase_ == ras::FailureStatus::Phase::kFailing ||
            fail_phase_ == ras::FailureStatus::Phase::kEvacuating);
  }
  /// Episode onset + monitor sampling + drain-to-dead transitions; returns
  /// a conservative wake bound for the episode machinery.
  Cycle pump_failure(Cycle now);
  void fail_onset(Cycle now);
  /// Poison-complete a read at `done` without touching the fabric, counting
  /// it as bounced; writes are counted lost by the callers directly.
  void bounce_read(std::uint32_t slot, Cycle done);

  std::uint32_t alloc_slot(std::uint64_t token);
  std::uint32_t alloc_fmsg(const FabricTxMsg& msg);
  /// Emit the completion + latency decomposition for a read whose response
  /// reaches the host at `arrival` (identical math on both fabric shapes).
  /// `wire_poisoned` marks poison picked up on the return path; the
  /// completion is also poisoned when the request arrived poisoned.
  void finish_read(std::uint32_t slot, Cycle arrival, bool wire_poisoned = false);
  /// Timeout watchdog: reissue duplicate requests for expired reads with
  /// capped exponential backoff. Returns a conservative wake bound.
  Cycle pump_watchdog(Cycle now);
};

}  // namespace coaxial::mem
