// Named system configurations (Tables II and III).
//
// The paper simulates a 12-core slice of the 144-core server: 1 DDR5-4800
// channel for the baseline, and 2/4/5 CXL channels (or 4 CXL-asym channels
// with 2 DDR channels each) for the COAXIAL variants. LLC is 2 MB/core for
// the baseline and COAXIAL-2x/-5x, 1 MB/core for COAXIAL-4x/-asym.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.hpp"
#include "coaxial/calm.hpp"
#include "coaxial/memory_system.hpp"
#include "dram/timing.hpp"
#include "common/units.hpp"
#include "fabric/topology.hpp"
#include "link/lane_config.hpp"
#include "placement/tier_config.hpp"
#include "pool/pool_config.hpp"
#include "ras/fault_plan.hpp"

namespace coaxial::sys {

enum class Topology : std::uint8_t { kDirectDdr, kCxl };

struct MicroarchConfig {
  std::uint32_t cores = 12;
  std::uint32_t active_cores = 12;
  std::uint32_t rob_entries = 256;
  std::uint32_t fetch_width = 4;
  std::uint32_t retire_width = 4;
  std::uint32_t store_buffer = 16;

  std::uint32_t l1_kb = 32;
  std::uint32_t l1_ways = 8;
  Cycle l1_latency = 4;
  std::uint32_t l1_mshrs = 16;

  std::uint32_t l2_kb = 512;
  std::uint32_t l2_ways = 8;
  Cycle l2_latency = 8;
  std::uint32_t l2_mshrs = 32;

  std::uint32_t llc_mb_per_core = 2;
  std::uint32_t llc_ways = 16;
  Cycle llc_latency = 20;
  std::uint32_t llc_mshrs_per_slice = 64;

  Cycle noc_cycles_per_hop = 3;

  /// L2 stream prefetcher: lines fetched ahead per stream advance
  /// (0 disables the prefetcher; 2 matches a ChampSim-style default).
  std::uint32_t prefetch_degree = 2;
  std::uint32_t prefetch_streams = 16;  ///< Tracked streams per core.

  /// LLC replacement policy (L1/L2 stay LRU; the LLC is where policy
  /// interacts with COAXIAL's halved capacity — see bench_ablations).
  cache::ReplacementPolicy llc_replacement = cache::ReplacementPolicy::kLru;
};

struct SystemConfig {
  std::string name;
  MicroarchConfig uarch;

  Topology topology = Topology::kDirectDdr;
  std::uint32_t ddr_channels = 1;       ///< Direct-DDR topology.
  std::uint32_t cxl_channels = 4;       ///< CXL topology.
  std::uint32_t ddr_per_device = 1;     ///< DDR channels per Type-3 device.
  bool asym_lanes = false;
  double cxl_port_ns = 12.5;            ///< 12.5 => 50 ns premium; 17.5 => 70 ns.

  /// CXL fabric beyond the root ports: direct point-to-point by default;
  /// star/tree presets put switches (and a cross-device interleaving
  /// policy) between `cxl_channels` root ports and `fabric.devices`
  /// Type-3 devices.
  fabric::FabricConfig fabric;

  calm::CalmConfig calm;

  /// DRAM substrate knobs (timings, geometry, permutation interleave,
  /// idle-precharge) — defaults match the paper; see bench_ablations.
  dram::Timing dram_timing;
  dram::Geometry dram_geometry;

  /// RAS fault-injection plan (DESIGN.md §7). Inert by default; applies to
  /// the CXL topologies only (direct-DDR has no serial links to fault).
  ras::FaultPlan fault_plan;

  /// Tiered placement (DESIGN.md §10). Disabled by default — the memory
  /// system is then the plain topology above with a pass-through
  /// AddressMap, byte-identical to the pre-tiering model. When enabled,
  /// `tiering.fast_ddr_channels` local DDR channels become tier 0 and the
  /// topology above becomes the capacity tier behind hot-page migration.
  placement::TierConfig tiering;

  /// Construct the memory system this configuration describes. `scope`,
  /// when valid, is the registry subtree the memory system registers into.
  std::unique_ptr<mem::MemorySystem> make_memory(obs::Scope scope = {}) const;

  /// Aggregate DRAM-side peak bandwidth (GB/s).
  double peak_memory_gbps() const;

  /// Type-3 device count the fabric resolves to (== cxl_channels when
  /// direct or unset).
  std::uint32_t cxl_devices() const {
    return fabric.devices != 0 ? fabric.devices : cxl_channels;
  }
};

/// Table II/III configurations, scaled to the simulated 12-core slice.
/// All COAXIAL variants default to CALM_70% as in the paper (§IV-C).
SystemConfig baseline_ddr();
SystemConfig coaxial_2x();
SystemConfig coaxial_4x();   ///< "COAXIAL" without qualifier.
SystemConfig coaxial_5x();   ///< Iso-pin variant (17% extra die area).
SystemConfig coaxial_asym();

/// Switched COAXIAL: `devices` Type-3 devices behind one shared CXL switch
/// reached through `host_links` x8 root ports (scales device count past the
/// pin budget at a 2x25 ns per-hop premium). Per-page cross-device
/// interleaving keeps spatial locality device-local.
SystemConfig coaxial_star(std::uint32_t devices = 8, std::uint32_t host_links = 4);

/// Two-level switched fabric: root ports -> spine switch -> `leaf_switches`
/// leaf switches -> `devices` devices (two hop premiums each way).
SystemConfig coaxial_tree(std::uint32_t devices = 8, std::uint32_t host_links = 4,
                          std::uint32_t leaf_switches = 2);

/// Tiered COAXIAL: one fast local DDR5 channel (tier 0) in front of the
/// COAXIAL-4x CXL substrate (tier 1), with `fast_pages` 4 KiB frames of
/// migration headroom and the given hot-page policy sampling every
/// `epoch_cycles` (DESIGN.md §10).
SystemConfig coaxial_tiered(
    placement::PolicyKind policy = placement::PolicyKind::kHotnessLru,
    std::uint64_t fast_pages = 4096, Cycle epoch_cycles = 10'000);

/// All five evaluated configurations in Table II order.
std::vector<SystemConfig> all_configs();

/// Multi-host pooled COAXIAL (DESIGN.md §12): `n_hosts` host slices, each
/// with `private_devices` private Type-3 devices, sharing `shared_devices`
/// pooled devices guarded by per-device coherence directories. Every host
/// redirects `share_fraction` of its memory ops into the shared window
/// (hot-subset skewed), which is what generates directory traffic.
pool::PoolConfig coaxial_pooled(std::uint32_t n_hosts = 2,
                                double share_fraction = 0.5,
                                std::uint32_t shared_devices = 2,
                                std::uint32_t private_devices = 1);

/// Switched variant: each host reaches its devices through a shared CXL
/// switch, so back-invalidations and recall acks pay the switch hops too.
pool::PoolConfig coaxial_pooled_switched(std::uint32_t n_hosts = 2,
                                         double share_fraction = 0.5,
                                         std::uint32_t shared_devices = 4,
                                         std::uint32_t private_devices = 1);

// ---- Named RAS fault presets (assign to SystemConfig::fault_plan) ----

/// Uniform CRC bit-error noise on every fabric segment, absorbed by
/// link-layer retry (poison only at extreme BER).
ras::FaultPlan ras_crc_noise(double bit_error_rate = 1e-5);

/// One device that periodically stops accepting requests; the host-side
/// watchdog reissues timed-out reads with capped exponential backoff.
ras::FaultPlan ras_flaky_device(std::uint32_t device = 0);

/// A link that down-trains mid-run to half goodput (graceful degradation).
ras::FaultPlan ras_downtrain(Cycle at_cycle = 100'000);

/// Everything at once: bursty CRC noise, a flaky device, a mid-run
/// down-train, and the watchdog — the bench/CI stress scenario.
ras::FaultPlan ras_stress();

/// Planned surprise removal (DESIGN.md §13): `device` vanishes at
/// `at_cycle`; in-flight and future accesses complete poisoned.
ras::FaultPlan ras_device_loss(std::uint32_t device = 1, Cycle at_cycle = 60'000);

/// Planned failing device: an escalating read-error rate trips the health
/// monitor, which evacuates the device's pages and then retires it.
/// Meaningful with the tiered topology (the placement layer owns
/// evacuation).
ras::FaultPlan ras_failing_evac(std::uint32_t device = 1, Cycle at_cycle = 30'000);

/// Tiered COAXIAL with a planned capacity-device failure: page-granular
/// capacity interleave (each page homes on one device) plus the failure
/// preset for `mode` — the bench_availability scenario.
SystemConfig coaxial_tiered_failover(
    ras::FailureMode mode = ras::FailureMode::kFailing, Cycle at_cycle = 30'000);

/// Pooled COAXIAL under fire: CRC noise on every host head plus a planned
/// surprise removal of shared device 1 (directory recovery, lost-dirty
/// accounting, refused transactions — DESIGN.md §13).
pool::PoolConfig coaxial_pooled_faulty(std::uint32_t n_hosts = 2,
                                       Cycle at_cycle = 40'000);

}  // namespace coaxial::sys
