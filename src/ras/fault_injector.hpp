// Counter-based deterministic fault draws.
//
// Each fault-armed segment (one SerialPipe direction) owns a SegmentFaults
// instance whose random stream is keyed by (plan seed XOR fnv1a(segment
// name)) and advanced by a plain counter — the splitmix64 finalizer turns
// (stream, counter) into an i.i.d. uniform draw. Because the stream depends
// only on the segment's *name* and the draw index, results are invariant
// under component construction order, scheduler mode (event-driven vs
// forced lockstep) and whatever the workload RNG does.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/units.hpp"
#include "ras/fault_plan.hpp"

namespace coaxial::ras {

/// splitmix64 finalizer: bijective avalanche mix of a 64-bit value.
inline constexpr std::uint64_t mix_u64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a segment name — stable across runs and platforms.
inline constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Uniform draw in [0, 1) from (stream, counter).
inline double draw_unit(std::uint64_t stream, std::uint64_t counter) {
  // Top 53 bits of the mixed value give a dyadic rational in [0, 1).
  return static_cast<double>(mix_u64(stream ^ mix_u64(counter)) >> 11) *
         0x1.0p-53;
}

/// Per-segment fault state: a copy of the plan, the segment's private draw
/// stream, and the segment's RAS event counters. Owned by SerialPipe when
/// the plan has link faults enabled.
class SegmentFaults {
 public:
  SegmentFaults(const FaultPlan& plan, std::string_view segment_name)
      : plan_(plan), stream_(mix_u64(plan.seed ^ fnv1a(segment_name))) {}

  /// Decide whether one transmission of a `bytes`-sized message starting at
  /// `now` is corrupted. Consumes one draw per transmission with a non-zero
  /// corruption probability.
  bool corrupt(std::uint32_t bytes, Cycle now) {
    const double ber = plan_.ber_at(now);
    if (ber <= 0.0) return false;
    const double p_clean_bit = 1.0 - ber;
    const double p_corrupt =
        1.0 - std::pow(p_clean_bit, 8.0 * static_cast<double>(bytes));
    return draw_unit(stream_, counter_++) < p_corrupt;
  }

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t draws() const { return counter_; }

  RasCounters counters;

 private:
  FaultPlan plan_;
  std::uint64_t stream_;
  std::uint64_t counter_ = 0;
};

}  // namespace coaxial::ras
