// Deterministic fault plan for the CXL transport stack.
//
// A FaultPlan is a small value type carried in SystemConfig and copied into
// every component that injects or recovers from faults. It describes four
// orthogonal fault classes:
//
//   * CRC bit errors   — every transmission of a message on a SerialPipe is
//     corrupted with probability 1-(1-BER)^bits; corrupted transmissions are
//     replayed from the link-layer retry buffer (retry_budget times, each
//     adding a retry latency premium) and delivered *poisoned* once the
//     budget is exhausted. Burst windows multiply the BER periodically.
//   * Lane down-training — from `downtrain_at_cycle` on, every armed pipe
//     serialises at half its nominal goodput (graceful degradation).
//   * Device stalls    — periodic windows during which a CXL device accepts
//     no new requests from its ingress queue (admission freezes; in-flight
//     DRAM work continues).
//   * Request timeouts — a per-read watchdog in CxlMemory reissues the
//     request with capped exponential backoff; duplicates are dropped at the
//     device so a request is never serviced twice (see DESIGN.md §7).
//   * Device-failure episodes — at a planned cycle one device either dies
//     permanently (surprise removal: in-flight and future accesses complete
//     poisoned) or starts failing (escalating read-error rate that trips the
//     host-side health monitor, which drains/evacuates/retires the device).
//     See DESIGN.md §13.
//
// Determinism contract: all randomness is drawn from counter-based streams
// keyed by (plan seed, segment name) — see fault_injector.hpp — so results
// are independent of the workload RNG, of component construction order, and
// of the event-driven vs forced-lockstep scheduler mode.
#pragma once

#include <cstdint>
#include <limits>

#include "common/units.hpp"
#include "common/validate.hpp"

namespace coaxial::ras {

/// Sentinel for stall_device: stall windows apply to every device.
inline constexpr std::uint32_t kAllDevices = std::numeric_limits<std::uint32_t>::max();

/// How a planned device-failure episode unfolds (DESIGN.md §13).
enum class FailureMode : std::uint8_t {
  kNone = 0,         ///< No episode planned.
  kSurpriseRemoval,  ///< Device vanishes at fail_at_cycle; everything poisons.
  kFailing,          ///< Escalating error rate; the health monitor offlines it.
};

/// Health/offlining state a device-owning memory system publishes so the
/// placement layer can drive evacuation (DESIGN.md §13):
///
///   kNone --(surprise at fail_at)--------------------------------> kDead
///   kNone --(failing at fail_at)--> kFailing --(EWMA >= threshold)
///       --> kEvacuating (offline hold set: placement drains the pages)
///       --> kDraining (offline_device(): no new work, queued work finishes)
///       --> kDead (idle: link down, later touches poison-bounce)
///
/// Without an offline hold the monitor trip goes straight to kDraining.
struct FailureStatus {
  enum class Phase : std::uint8_t { kNone = 0, kFailing, kEvacuating, kDraining, kDead };
  Phase phase = Phase::kNone;
  std::uint32_t device = 0;  ///< Meaningful when phase != kNone.
};

struct FaultPlan {
  /// Seed for the fault-draw streams; independent of the workload RNG seed.
  std::uint64_t seed = 0xC0A71A5Full;

  // --- CRC bit errors + link-layer retry ---------------------------------
  double bit_error_rate = 0.0;   ///< Per wire bit, [0, 1]. 0 = no CRC faults.
  double burst_multiplier = 1.0; ///< BER multiplier inside burst windows.
  Cycle burst_period_cycles = 0; ///< Burst window every N cycles (0 = none).
  Cycle burst_len_cycles = 0;    ///< Burst window length (< period).
  std::uint32_t retry_budget = 8;  ///< Replays before a message poisons.
  double retry_latency_ns = 100.0; ///< Premium per replay (ack round-trip).

  // --- Graceful degradation ----------------------------------------------
  Cycle downtrain_at_cycle = kNoCycle; ///< Halve goodput from here (kNoCycle = never).

  // --- Device stalls -----------------------------------------------------
  Cycle stall_period_cycles = 0;  ///< Stall window every N cycles (0 = none).
  Cycle stall_len_cycles = 0;     ///< Stall window length (< period).
  std::uint32_t stall_device = kAllDevices; ///< Device index, or kAllDevices.

  // --- Request-timeout watchdog ------------------------------------------
  Cycle timeout_cycles = 0;        ///< Read deadline (0 = watchdog off).
  std::uint32_t max_reissues = 4;  ///< Reissues before the watchdog gives up.
  Cycle backoff_cap_cycles = 65536; ///< Cap on the doubled timeout.

  // --- Device-failure episode (DESIGN.md §13) ----------------------------
  FailureMode fail_mode = FailureMode::kNone;
  Cycle fail_at_cycle = kNoCycle;   ///< Episode onset (kNoCycle = never).
  std::uint32_t fail_device = 0;    ///< Device index (bounds-checked by owner).
  double fail_error_rate = 0.02;    ///< kFailing: read-poison prob at full ramp.
  Cycle fail_ramp_cycles = 20'000;  ///< kFailing: error rate ramps 0 -> rate.
  Cycle health_period_cycles = 2'000; ///< Monitor sampling cadence.
  double health_ewma_alpha = 0.3;     ///< EWMA weight of the newest window.
  double health_threshold = 0.005;    ///< Offline when EWMA error frac >= this.
  std::uint32_t evac_pages_per_epoch = 8; ///< Evacuation bandwidth bound.

  // --- Feature predicates ------------------------------------------------
  bool link_faults() const {
    return bit_error_rate > 0.0 || downtrain_at_cycle != kNoCycle;
  }
  bool stalls() const { return stall_period_cycles != 0; }
  bool watchdog() const { return timeout_cycles != 0; }
  /// A device-failure episode is planned.
  bool device_failure() const {
    return fail_mode != FailureMode::kNone && fail_at_cycle != kNoCycle;
  }
  /// Any fault class active. When false the plan is inert: no ras/* metrics
  /// are registered and no timing or behaviour changes anywhere.
  bool enabled() const {
    return link_faults() || stalls() || watchdog() || device_failure();
  }

  Cycle retry_premium_cycles() const { return ns_to_cycles(retry_latency_ns); }

  bool in_burst(Cycle now) const {
    if (burst_period_cycles == 0) return false;
    return now % burst_period_cycles < burst_len_cycles;
  }

  /// Effective per-bit error rate at `now` (burst windows applied), clamped
  /// to [0, 1].
  double ber_at(Cycle now) const {
    const double ber =
        in_burst(now) ? bit_error_rate * burst_multiplier : bit_error_rate;
    return ber > 1.0 ? 1.0 : ber;
  }

  /// A surprise-removed device is gone for good from its onset cycle on.
  bool surprise_dead(Cycle now, std::uint32_t device) const {
    return fail_mode == FailureMode::kSurpriseRemoval && device_failure() &&
           device == fail_device && now >= fail_at_cycle;
  }

  bool in_stall(Cycle now, std::uint32_t device) const {
    if (surprise_dead(now, device)) return true;  // Stalled forever.
    if (stall_period_cycles == 0) return false;
    if (stall_device != kAllDevices && stall_device != device) return false;
    return now % stall_period_cycles < stall_len_cycles;
  }

  /// First cycle >= now at which `device` is not stalled. Identity when the
  /// device is not currently stalled; kNoCycle when it never recovers (a
  /// surprise-removed device must not produce periodic wake cycles, and no
  /// wake this function returns may lie in the past).
  Cycle stall_end(Cycle now, std::uint32_t device) const {
    if (surprise_dead(now, device)) return kNoCycle;
    if (!in_stall(now, device)) return now;
    const Cycle end = now - now % stall_period_cycles + stall_len_cycles;
    // The device dies before the periodic window would close: this stall
    // never ends, so don't hand the scheduler a wake inside the dead zone.
    if (surprise_dead(end, device)) return kNoCycle;
    return end < now ? now : end;
  }

  /// kFailing: probability that a read admitted to the failing device's DRAM
  /// at `now` returns poisoned. Ramps linearly from 0 at onset to
  /// fail_error_rate after fail_ramp_cycles (a pure function of now, so both
  /// scheduler modes draw identically).
  double fail_error_rate_at(Cycle now) const {
    if (fail_mode != FailureMode::kFailing || !device_failure() ||
        now < fail_at_cycle) {
      return 0.0;
    }
    if (fail_ramp_cycles == 0) return fail_error_rate;
    const Cycle into = now - fail_at_cycle;
    if (into >= fail_ramp_cycles) return fail_error_rate;
    return fail_error_rate * static_cast<double>(into) /
           static_cast<double>(fail_ramp_cycles);
  }

  /// Throws std::invalid_argument on degenerate values. Called by every
  /// component that arms faults, so a bad plan fails before any state is
  /// built.
  void validate() const {
    namespace v = coaxial::validate;
    const char* o = "ras::FaultPlan";
    v::require_in_range(o, "bit_error_rate", bit_error_rate, 0.0, 1.0);
    v::require_non_negative(o, "burst_multiplier", burst_multiplier);
    v::require_non_negative(o, "retry_latency_ns", retry_latency_ns);
    if (bit_error_rate > 0.0)
      v::require_nonzero(o, "retry_budget", retry_budget);
    if (burst_period_cycles != 0) {
      v::require_nonzero(o, "burst_len_cycles", burst_len_cycles);
      v::require_less(o, "burst_len_cycles", burst_len_cycles,
                      "burst_period_cycles", burst_period_cycles);
    }
    if (stall_period_cycles != 0) {
      v::require_nonzero(o, "stall_len_cycles", stall_len_cycles);
      v::require_less(o, "stall_len_cycles", stall_len_cycles,
                      "stall_period_cycles", stall_period_cycles);
    }
    if (timeout_cycles != 0) {
      v::require_nonzero(o, "max_reissues", max_reissues);
      if (backoff_cap_cycles < timeout_cycles)
        coaxial::validate::fail(o, "backoff_cap_cycles",
                                "must be >= timeout_cycles",
                                std::to_string(backoff_cap_cycles));
    }
    if (fail_mode != FailureMode::kNone) {
      // An episode at cycle 0 would fail the device before construction
      // completes (and before any wake bound can be armed for it).
      if (fail_at_cycle == 0) {
        v::fail(o, "fail_at_cycle", "must be a planned cycle >= 1", "0");
      }
      v::require_nonzero(o, "evac_pages_per_epoch", evac_pages_per_epoch);
      if (fail_mode == FailureMode::kFailing) {
        v::require_in_range(o, "fail_error_rate", fail_error_rate, 0.0, 1.0);
        v::require_positive(o, "fail_error_rate", fail_error_rate);
        v::require_nonzero(o, "health_period_cycles", health_period_cycles);
        v::require_in_range(o, "health_ewma_alpha", health_ewma_alpha, 0.0, 1.0);
        v::require_positive(o, "health_ewma_alpha", health_ewma_alpha);
        v::require_in_range(o, "health_threshold", health_threshold, 0.0, 1.0);
        v::require_positive(o, "health_threshold", health_threshold);
      }
    }
  }

  /// Bounds check done by the component that knows its device count (the
  /// plan itself cannot): fail_device must index a real device.
  void validate_devices(std::uint32_t n_devices) const {
    if (device_failure() && fail_device >= n_devices) {
      coaxial::validate::fail("ras::FaultPlan", "fail_device",
                              "must be < device count " + std::to_string(n_devices),
                              std::to_string(fail_device));
    }
  }
};

/// Aggregated RAS event counters, summed across pipes / devices for the
/// `ras/*` metrics subtree. Every field is an event count (never a per-tick
/// accumulation), so event-driven and forced-lockstep runs agree exactly.
struct RasCounters {
  std::uint64_t crc_errors = 0;       ///< Corrupted transmissions (incl. replays).
  std::uint64_t replays = 0;          ///< Link-layer replays performed.
  std::uint64_t poisons_injected = 0; ///< Messages delivered poisoned by a pipe.
  std::uint64_t degraded_cycles = 0;  ///< Serialiser busy cycles while down-trained.
  std::uint64_t timeouts = 0;         ///< Watchdog deadline expiries.
  std::uint64_t backoff_retries = 0;  ///< Duplicate requests reissued.
  std::uint64_t dup_drops = 0;        ///< Duplicates dropped at device ingress.
  std::uint64_t poisoned_writes = 0;  ///< Poisoned write messages absorbed.

  RasCounters& operator+=(const RasCounters& o) {
    crc_errors += o.crc_errors;
    replays += o.replays;
    poisons_injected += o.poisons_injected;
    degraded_cycles += o.degraded_cycles;
    timeouts += o.timeouts;
    backoff_retries += o.backoff_retries;
    dup_drops += o.dup_drops;
    poisoned_writes += o.poisoned_writes;
    return *this;
  }
};

/// Device-failure lifecycle counters for the `ras/avail/*` subtree
/// (DESIGN.md §13). Every field is an event count. Conservation invariant,
/// held exactly at quiescence:
///   evac_pages_out == evac_pages_in + pages_retired
/// (every page that left the failed device either landed on a survivor or
/// was retired — no page is both, none is neither).
struct AvailCounters {
  std::uint64_t fail_errors = 0;      ///< Reads poisoned by the failing device.
  std::uint64_t health_samples = 0;   ///< Monitor EWMA windows sampled.
  std::uint64_t monitor_trips = 0;    ///< Threshold crossings (offlining starts).
  std::uint64_t devices_offlined = 0; ///< Devices that reached kDead.
  std::uint64_t bounced_reads = 0;    ///< Reads poison-completed by a dead device.
  std::uint64_t lost_writes = 0;      ///< Writes absorbed by a dead device.
  std::uint64_t evac_jobs = 0;        ///< Evacuation migrations started.
  std::uint64_t evac_aborts = 0;      ///< Evacuation copies that read poison.
  std::uint64_t evac_pages_out = 0;   ///< Pages resolved off the failed device.
  std::uint64_t evac_pages_in = 0;    ///< Pages landed on survivors.
  std::uint64_t pages_retired = 0;    ///< Pages whose only copy died.
  std::uint64_t retired_touches = 0;  ///< Accesses absorbed by the retirement table.
  std::uint64_t lost_dirty_pages = 0; ///< Pool: dirty pages on a dead device.
  std::uint64_t recovery_invals = 0;  ///< Pool: directory-recovery invalidations.
  std::uint64_t refused_txns = 0;     ///< Pool: accesses refused to retired ranges.

  AvailCounters& operator+=(const AvailCounters& o) {
    fail_errors += o.fail_errors;
    health_samples += o.health_samples;
    monitor_trips += o.monitor_trips;
    devices_offlined += o.devices_offlined;
    bounced_reads += o.bounced_reads;
    lost_writes += o.lost_writes;
    evac_jobs += o.evac_jobs;
    evac_aborts += o.evac_aborts;
    evac_pages_out += o.evac_pages_out;
    evac_pages_in += o.evac_pages_in;
    pages_retired += o.pages_retired;
    retired_touches += o.retired_touches;
    lost_dirty_pages += o.lost_dirty_pages;
    recovery_invals += o.recovery_invals;
    refused_txns += o.refused_txns;
    return *this;
  }
};

}  // namespace coaxial::ras
