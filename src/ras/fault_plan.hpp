// Deterministic fault plan for the CXL transport stack.
//
// A FaultPlan is a small value type carried in SystemConfig and copied into
// every component that injects or recovers from faults. It describes four
// orthogonal fault classes:
//
//   * CRC bit errors   — every transmission of a message on a SerialPipe is
//     corrupted with probability 1-(1-BER)^bits; corrupted transmissions are
//     replayed from the link-layer retry buffer (retry_budget times, each
//     adding a retry latency premium) and delivered *poisoned* once the
//     budget is exhausted. Burst windows multiply the BER periodically.
//   * Lane down-training — from `downtrain_at_cycle` on, every armed pipe
//     serialises at half its nominal goodput (graceful degradation).
//   * Device stalls    — periodic windows during which a CXL device accepts
//     no new requests from its ingress queue (admission freezes; in-flight
//     DRAM work continues).
//   * Request timeouts — a per-read watchdog in CxlMemory reissues the
//     request with capped exponential backoff; duplicates are dropped at the
//     device so a request is never serviced twice (see DESIGN.md §7).
//
// Determinism contract: all randomness is drawn from counter-based streams
// keyed by (plan seed, segment name) — see fault_injector.hpp — so results
// are independent of the workload RNG, of component construction order, and
// of the event-driven vs forced-lockstep scheduler mode.
#pragma once

#include <cstdint>
#include <limits>

#include "common/units.hpp"
#include "common/validate.hpp"

namespace coaxial::ras {

/// Sentinel for stall_device: stall windows apply to every device.
inline constexpr std::uint32_t kAllDevices = std::numeric_limits<std::uint32_t>::max();

struct FaultPlan {
  /// Seed for the fault-draw streams; independent of the workload RNG seed.
  std::uint64_t seed = 0xC0A71A5Full;

  // --- CRC bit errors + link-layer retry ---------------------------------
  double bit_error_rate = 0.0;   ///< Per wire bit, [0, 1]. 0 = no CRC faults.
  double burst_multiplier = 1.0; ///< BER multiplier inside burst windows.
  Cycle burst_period_cycles = 0; ///< Burst window every N cycles (0 = none).
  Cycle burst_len_cycles = 0;    ///< Burst window length (< period).
  std::uint32_t retry_budget = 8;  ///< Replays before a message poisons.
  double retry_latency_ns = 100.0; ///< Premium per replay (ack round-trip).

  // --- Graceful degradation ----------------------------------------------
  Cycle downtrain_at_cycle = kNoCycle; ///< Halve goodput from here (kNoCycle = never).

  // --- Device stalls -----------------------------------------------------
  Cycle stall_period_cycles = 0;  ///< Stall window every N cycles (0 = none).
  Cycle stall_len_cycles = 0;     ///< Stall window length (< period).
  std::uint32_t stall_device = kAllDevices; ///< Device index, or kAllDevices.

  // --- Request-timeout watchdog ------------------------------------------
  Cycle timeout_cycles = 0;        ///< Read deadline (0 = watchdog off).
  std::uint32_t max_reissues = 4;  ///< Reissues before the watchdog gives up.
  Cycle backoff_cap_cycles = 65536; ///< Cap on the doubled timeout.

  // --- Feature predicates ------------------------------------------------
  bool link_faults() const {
    return bit_error_rate > 0.0 || downtrain_at_cycle != kNoCycle;
  }
  bool stalls() const { return stall_period_cycles != 0; }
  bool watchdog() const { return timeout_cycles != 0; }
  /// Any fault class active. When false the plan is inert: no ras/* metrics
  /// are registered and no timing or behaviour changes anywhere.
  bool enabled() const { return link_faults() || stalls() || watchdog(); }

  Cycle retry_premium_cycles() const { return ns_to_cycles(retry_latency_ns); }

  bool in_burst(Cycle now) const {
    if (burst_period_cycles == 0) return false;
    return now % burst_period_cycles < burst_len_cycles;
  }

  /// Effective per-bit error rate at `now` (burst windows applied), clamped
  /// to [0, 1].
  double ber_at(Cycle now) const {
    const double ber =
        in_burst(now) ? bit_error_rate * burst_multiplier : bit_error_rate;
    return ber > 1.0 ? 1.0 : ber;
  }

  bool in_stall(Cycle now, std::uint32_t device) const {
    if (stall_period_cycles == 0) return false;
    if (stall_device != kAllDevices && stall_device != device) return false;
    return now % stall_period_cycles < stall_len_cycles;
  }

  /// First cycle >= now at which `device` is not stalled. Identity when the
  /// device is not currently stalled.
  Cycle stall_end(Cycle now, std::uint32_t device) const {
    if (!in_stall(now, device)) return now;
    return now - now % stall_period_cycles + stall_len_cycles;
  }

  /// Throws std::invalid_argument on degenerate values. Called by every
  /// component that arms faults, so a bad plan fails before any state is
  /// built.
  void validate() const {
    namespace v = coaxial::validate;
    const char* o = "ras::FaultPlan";
    v::require_in_range(o, "bit_error_rate", bit_error_rate, 0.0, 1.0);
    v::require_non_negative(o, "burst_multiplier", burst_multiplier);
    v::require_non_negative(o, "retry_latency_ns", retry_latency_ns);
    if (bit_error_rate > 0.0)
      v::require_nonzero(o, "retry_budget", retry_budget);
    if (burst_period_cycles != 0) {
      v::require_nonzero(o, "burst_len_cycles", burst_len_cycles);
      v::require_less(o, "burst_len_cycles", burst_len_cycles,
                      "burst_period_cycles", burst_period_cycles);
    }
    if (stall_period_cycles != 0) {
      v::require_nonzero(o, "stall_len_cycles", stall_len_cycles);
      v::require_less(o, "stall_len_cycles", stall_len_cycles,
                      "stall_period_cycles", stall_period_cycles);
    }
    if (timeout_cycles != 0) {
      v::require_nonzero(o, "max_reissues", max_reissues);
      if (backoff_cap_cycles < timeout_cycles)
        coaxial::validate::fail(o, "backoff_cap_cycles",
                                "must be >= timeout_cycles",
                                std::to_string(backoff_cap_cycles));
    }
  }
};

/// Aggregated RAS event counters, summed across pipes / devices for the
/// `ras/*` metrics subtree. Every field is an event count (never a per-tick
/// accumulation), so event-driven and forced-lockstep runs agree exactly.
struct RasCounters {
  std::uint64_t crc_errors = 0;       ///< Corrupted transmissions (incl. replays).
  std::uint64_t replays = 0;          ///< Link-layer replays performed.
  std::uint64_t poisons_injected = 0; ///< Messages delivered poisoned by a pipe.
  std::uint64_t degraded_cycles = 0;  ///< Serialiser busy cycles while down-trained.
  std::uint64_t timeouts = 0;         ///< Watchdog deadline expiries.
  std::uint64_t backoff_retries = 0;  ///< Duplicate requests reissued.
  std::uint64_t dup_drops = 0;        ///< Duplicates dropped at device ingress.
  std::uint64_t poisoned_writes = 0;  ///< Poisoned write messages absorbed.

  RasCounters& operator+=(const RasCounters& o) {
    crc_errors += o.crc_errors;
    replays += o.replays;
    poisons_injected += o.poisons_injected;
    degraded_cycles += o.degraded_cycles;
    timeouts += o.timeouts;
    backoff_retries += o.backoff_retries;
    dup_drops += o.dup_drops;
    poisoned_writes += o.poisoned_writes;
    return *this;
  }
};

}  // namespace coaxial::ras
