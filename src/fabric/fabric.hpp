// The routed host<->device fabric: topology + links + switches.
//
// One Fabric instance replaces the implicit one-CxlLink-per-device wiring
// in coaxial::CxlMemory. Direct topologies are a thin pass-through over
// real CxlLink objects (registered at the legacy `cxl/linkNN` metric paths,
// so golden stats are byte-identical); switched topologies route messages
// through per-plane Switch nodes and surface deliveries asynchronously via
// tick(). One code path serves both shapes at the call site:
//
//   if (fabric.can_send_tx(dev, now)) fabric.send_tx(dev, bytes, now, cookie);
//   ... fabric.tick(now); drain tx_deliveries()/rx_deliveries() ...
//
// Latency model per segment (P = link port traversal, S = switch port
// traversal, both fixed): host<->switch and switch<->device segments cost
// P+S / S+P on top of their store-and-forward serialisation; a
// switch<->switch segment costs 2S. An unloaded one-way trip through k
// switches is therefore (k+1) serialisations + 2P + 2kS — each switch hop
// adds exactly two port traversals plus one re-serialisation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "fabric/switch.hpp"
#include "fabric/topology.hpp"
#include "link/cxl_link.hpp"
#include "link/lane_config.hpp"
#include "obs/metrics.hpp"
#include "ras/fault_plan.hpp"

namespace coaxial::fabric {

/// A message that finished crossing the fabric during tick(). `arrival` may
/// be in the future (store-and-forward delivery time of the final segment).
struct Delivery {
  Cycle arrival = 0;
  std::uint32_t device = 0;
  std::uint64_t payload = 0;
  bool poisoned = false;  ///< Message exhausted a replay budget en route.
};

class Fabric {
 public:
  /// `cfg` is resolved against `default_channels` (zero counts inherit it).
  /// `scope`, when valid, registers direct links at `cxl/linkNN` and
  /// switched-plane metrics under `fabric/*`.
  Fabric(const FabricConfig& cfg, std::uint32_t default_channels,
         const link::LaneConfig& lanes, obs::Scope scope = {});

  /// Arm deterministic fault injection on every segment (direct links,
  /// injection pipes and switch egress pipes). No-op for a plan without
  /// link faults; call once, before the first send.
  void arm_faults(const ras::FaultPlan& plan);

  /// RAS events summed over every segment (all-zero when unarmed).
  ras::RasCounters ras_counters() const;

  /// Surprise-removal admission control (DESIGN.md §13): a downed link
  /// accepts no new messages in either direction. Messages already buffered
  /// in switch planes keep draining — their Deliveries still surface — so
  /// the owner must bounce them at drain time. Idempotent.
  void set_link_down(std::uint32_t dev) { link_down_[dev] = true; }
  bool link_down(std::uint32_t dev) const { return link_down_[dev]; }

  bool direct() const { return topo_.n_switches == 0; }
  std::uint32_t devices() const { return topo_.n_devices; }
  std::uint32_t host_links() const { return topo_.host_links; }
  std::uint32_t root_port_of(std::uint32_t dev) const { return topo_.root_port_of(dev); }
  const Topology& topology() const { return topo_; }
  const FabricConfig& config() const { return cfg_; }

  // ------------------------------------------------ host -> device (down)
  bool can_send_tx(std::uint32_t dev, Cycle now) const;
  /// Direct: returns the device-arrival cycle (classic analytic link) plus
  /// the message's poison flag. Switched: enqueues into the fabric and
  /// returns kNoCycle — the arrival (and poison state) surfaces through
  /// tx_deliveries() during a later tick().
  link::SendResult send_tx(std::uint32_t dev, std::uint32_t bytes, Cycle now,
                           std::uint64_t payload);

  // ------------------------------------------------ device -> host (up)
  bool can_send_rx(std::uint32_t dev, Cycle now) const;
  link::SendResult send_rx(std::uint32_t dev, std::uint32_t bytes, Cycle now,
                           std::uint64_t payload);
  /// Earliest cycle (>= now) the device's return-path injection point could
  /// have a free credit again.
  Cycle rx_credit_cycle(std::uint32_t dev, Cycle now) const;

  /// Advance the switched planes (downstream order, so a hop's output lands
  /// in the next hop's ingress before that hop computes its wake). Fills
  /// tx_deliveries()/rx_deliveries(); returns a conservative wake bound.
  /// Direct fabrics have no buffered state and return kNoCycle.
  Cycle tick(Cycle now);
  std::vector<Delivery>& tx_deliveries() { return tx_out_; }
  std::vector<Delivery>& rx_deliveries() { return rx_out_; }

  /// Unloaded one-way latency for a message of `bytes` (uniform across
  /// devices by construction): per-hop serialisation plus all fixed port
  /// traversals.
  Cycle unloaded_tx_cycles(std::uint32_t bytes) const;
  Cycle unloaded_rx_cycles(std::uint32_t bytes) const;

  /// Direct-mode access to the underlying per-channel link (legacy API).
  const link::CxlLink& direct_link(std::uint32_t i) const { return *direct_links_[i]; }

  void reset_stats();

 private:
  std::uint32_t leaf_of(std::uint32_t dev) const { return dev / devs_per_leaf_; }
  std::uint32_t leaf_port_of(std::uint32_t dev) const { return dev % devs_per_leaf_; }

  FabricConfig cfg_;
  Topology topo_;
  link::LaneConfig lanes_;
  std::vector<bool> link_down_;  ///< Per-device surprise-removal latch.
  std::uint32_t hops_ = 0;           ///< Switches on every host<->device path.
  std::uint32_t devs_per_leaf_ = 1;  ///< Devices per last-level switch.

  // Direct pass-through.
  std::vector<std::unique_ptr<link::CxlLink>> direct_links_;

  // Switched planes. Injection pipes live at the sender (host / device);
  // every later segment's pipe is the egress of the switch that drives it.
  std::vector<std::unique_ptr<link::SerialPipe>> host_tx_;  ///< Host root-port egress.
  std::vector<std::unique_ptr<link::SerialPipe>> dev_up_;   ///< Device uplink egress.
  std::unique_ptr<Switch> root_down_, root_up_;
  std::vector<std::unique_ptr<Switch>> leaf_down_, leaf_up_;

  std::vector<Delivery> tx_out_, rx_out_;
};

}  // namespace coaxial::fabric
