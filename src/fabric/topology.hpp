// CXL fabric topology descriptions (§IV-A scaled-out configurations).
//
// The fabric generalises the host<->device connection from N independent
// point-to-point links into a routed tree: the host's root ports feed
// either devices directly (kDirect, the paper's default wiring), a single
// shared switch (kStar, more devices than root ports), or a two-level
// switch hierarchy (kTree, rack-scale fan-out). Topologies are described
// by a small config struct, expanded into an explicit node graph, and
// validated at construction — dangling switches, unreachable devices and
// parent cycles are rejected with std::invalid_argument.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace coaxial::fabric {

enum class TopologyKind : std::uint8_t { kDirect, kStar, kTree };

/// Cross-device interleaving policy used by fabric::Router.
enum class Interleave : std::uint8_t {
  kLine,        ///< Stripe lines across all sub-channels (legacy wiring).
  kPage,        ///< Stripe fixed-size pages round-robin across devices.
  kContiguous,  ///< Carve the address space into contiguous per-device extents.
};

struct FabricConfig {
  TopologyKind kind = TopologyKind::kDirect;
  std::uint32_t devices = 0;     ///< Type-3 devices; 0 => one per host link.
  std::uint32_t host_links = 0;  ///< Root ports; 0 => one per device.
  std::uint32_t leaf_switches = 2;  ///< Second-level switches (kTree only).

  /// Per switch-port traversal latency; every switch hop costs two
  /// traversals (ingress + egress), 2x25 ns by default. Overridable for
  /// Fig. 10-style latency sweeps.
  double switch_port_ns = 25.0;
  std::uint32_t switch_queue_depth = 64;  ///< Per-ingress-port message bound.
  Cycle switch_max_backlog_cycles = 512;  ///< Egress serialisation backlog bound.

  Interleave interleave = Interleave::kLine;
  std::uint32_t page_lines = 64;  ///< kPage granularity (64 lines = 4 KiB).
  std::uint64_t contiguous_lines = 1ull << 24;  ///< kContiguous extent (1 GiB).

  Cycle switch_port_cycles() const { return ns_to_cycles(switch_port_ns); }
  bool switched() const { return kind != TopologyKind::kDirect; }

  /// Presets. Counts of 0 inherit the memory system's channel count.
  static FabricConfig direct() { return {}; }
  static FabricConfig star(std::uint32_t devices, std::uint32_t host_links) {
    FabricConfig c;
    c.kind = TopologyKind::kStar;
    c.devices = devices;
    c.host_links = host_links;
    return c;
  }
  static FabricConfig tree(std::uint32_t devices, std::uint32_t host_links,
                           std::uint32_t leaf_switches = 2) {
    FabricConfig c;
    c.kind = TopologyKind::kTree;
    c.devices = devices;
    c.host_links = host_links;
    c.leaf_switches = leaf_switches;
    return c;
  }
};

/// Fill in defaulted (zero) device / host-link counts: a direct fabric gets
/// one device per host link; switched fabrics default both to
/// `default_channels` when unset.
FabricConfig resolve(FabricConfig cfg, std::uint32_t default_channels);

/// Explicit, validated node graph expanded from a FabricConfig. Node 0 is
/// the host; switches follow in breadth-first order (root switch first),
/// then devices. Every non-host node names its upstream parent; the
/// downstream routing tables are derived from the parent edges.
struct Topology {
  enum class NodeKind : std::uint8_t { kHost, kSwitch, kDevice };
  struct Node {
    NodeKind kind = NodeKind::kDevice;
    std::int32_t parent = -1;  ///< Upstream node index (host: -1).
  };

  std::vector<Node> nodes;
  std::uint32_t host_links = 0;
  std::uint32_t n_switches = 0;
  std::uint32_t n_devices = 0;

  std::uint32_t switch_node(std::uint32_t s) const { return 1 + s; }
  std::uint32_t device_node(std::uint32_t d) const { return 1 + n_switches + d; }

  /// Host root port a device's traffic enters and leaves through. Static
  /// modulo assignment keeps return routing deterministic.
  std::uint32_t root_port_of(std::uint32_t dev) const { return dev % host_links; }

  /// Number of switches on the host->device path.
  std::uint32_t hops(std::uint32_t dev) const;

  /// Expand a (resolved) config into a validated topology.
  static Topology build(const FabricConfig& cfg);

  /// Structural validation: exactly one host at index 0, parents in range
  /// and acyclic, every device reaches the host, no childless (dangling)
  /// switch, devices are leaves. Throws std::invalid_argument.
  void validate() const;
};

}  // namespace coaxial::fabric
