// One directional plane of a CXL switch.
//
// A physical switch carries two independent directional planes (host->device
// "down" and device->host "up"); fabric::Fabric instantiates one Switch per
// plane. Each plane has per-input-port FIFO ingress queues (bounded message
// count) feeding per-output-port store-and-forward egress pipes that reuse
// the LaneConfig goodput math via link::SerialPipe. Arbitration across
// input ports contending for the same egress is deterministic round-robin:
// the per-egress cursor advances past each forwarded port, so the order is
// a pure function of prior traffic — no host state, no randomness.
//
// Wake-bound contract (same as CxlLink/dram::Controller): tick() returns a
// conservative lower bound on the next cycle any queued message could move,
// so the event-driven scheduler can skip the cycles in between and stay
// byte-identical with COAXIAL_TICK_EVERY_CYCLE=1.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "link/serial_pipe.hpp"
#include "obs/metrics.hpp"
#include "ras/fault_plan.hpp"

namespace coaxial::fabric {

/// One message traversing the fabric. `ready` is the cycle the message has
/// fully arrived at the current node; `payload` is an opaque caller cookie
/// carried end to end.
struct FabricMsg {
  Cycle ready = 0;
  std::uint32_t dest = 0;  ///< Destination device id.
  std::uint32_t bytes = 0;
  std::uint64_t payload = 0;
  bool poisoned = false;   ///< Sticky: set by any faulting segment en route.
};

class Switch {
 public:
  /// `scope`, when valid, registers per-ingress-port queue counters under
  /// `inNN/` and per-egress-port pipe traffic under `outNN/`. `name` is the
  /// switch plane's canonical identity (e.g. "fabric/sw00/down") used for
  /// fault-stream keying and timing-abort diagnostics; it defaults to the
  /// scope prefix, or "switch" when that is empty.
  Switch(std::uint32_t in_ports, std::uint32_t out_ports, double egress_goodput_gbps,
         Cycle egress_fixed_latency, Cycle egress_max_backlog,
         std::uint32_t queue_depth, obs::Scope scope = {}, std::string name = {})
      : in_ports_(in_ports), out_ports_(out_ports), queue_depth_(queue_depth),
        in_q_(in_ports), enqueued_(in_ports, 0), queue_high_water_(in_ports, 0),
        rr_(out_ports, 0) {
    if (name.empty()) name = scope.prefix().empty() ? "switch" : scope.prefix();
    pipes_.reserve(out_ports);
    for (std::uint32_t o = 0; o < out_ports; ++o) {
      pipes_.emplace_back(egress_goodput_gbps, egress_fixed_latency, egress_max_backlog,
                          name + "/out" + obs::idx(o));
    }
    if (scope.valid()) {
      for (std::uint32_t p = 0; p < in_ports_; ++p) {
        const obs::Scope in = scope.sub("in" + obs::idx(p));
        in.expose_counter("enqueued", [this, p] { return enqueued_[p]; });
        in.expose_counter("queue_high_water", [this, p] { return queue_high_water_[p]; });
      }
      for (std::uint32_t o = 0; o < out_ports_; ++o) {
        pipes_[o].register_stats(scope.sub("out" + obs::idx(o)));
      }
    }
  }

  std::uint32_t in_ports() const { return in_ports_; }
  std::uint32_t out_ports() const { return out_ports_; }

  /// Arm deterministic fault injection on every egress pipe (no-op for a
  /// plan without link faults).
  void arm_faults(const ras::FaultPlan& plan) {
    for (link::SerialPipe& p : pipes_) p.arm_faults(plan);
  }

  /// True if ingress port `p` has room for another message. Occupancy
  /// counts in-flight messages (enqueued with a future `ready`), so the
  /// bound caps buffering plus wire, like the device ingress queues.
  bool can_enqueue(std::uint32_t p) const { return in_q_[p].size() < queue_depth_; }

  void enqueue(std::uint32_t p, const FabricMsg& msg) {
    in_q_[p].push_back(msg);
    ++enqueued_[p];
    if (in_q_[p].size() > queue_high_water_[p]) {
      queue_high_water_[p] = in_q_[p].size();
    }
  }

  const link::SerialPipe& egress(std::uint32_t o) const { return pipes_[o]; }

  /// Forward ready ingress heads through their egress pipes.
  /// `out_port_of(msg)` maps a message to its egress port;
  /// `downstream_ready(out)` gates on room at the next hop;
  /// `deliver(out, msg, arrival)` consumes the forwarded message. Each
  /// egress keeps forwarding while it has serialisation credit and the
  /// downstream hop has room; a head parked for a different egress never
  /// blocks this one, but does block later messages on its own input port
  /// (input-queued head-of-line blocking). Returns a conservative wake
  /// bound over all still-queued messages.
  template <class OutPortOf, class DownstreamReady, class Deliver>
  Cycle tick(Cycle now, OutPortOf&& out_port_of, DownstreamReady&& downstream_ready,
             Deliver&& deliver) {
    for (std::uint32_t out = 0; out < out_ports_; ++out) {
      bool open = pipes_[out].can_send(now) && downstream_ready(out);
      bool progress = true;
      while (open && progress) {
        progress = false;
        for (std::uint32_t k = 0; k < in_ports_; ++k) {
          const std::uint32_t p = (rr_[out] + k) % in_ports_;
          std::deque<FabricMsg>& q = in_q_[p];
          if (q.empty() || q.front().ready > now || out_port_of(q.front()) != out) {
            continue;
          }
          FabricMsg msg = q.front();
          q.pop_front();
          const link::SendResult res = pipes_[out].send(msg.bytes, now);
          msg.poisoned = msg.poisoned || res.poisoned;
          deliver(out, msg, res.at);
          rr_[out] = (p + 1) % in_ports_;
          progress = true;
          break;
        }
        if (progress) open = pipes_[out].can_send(now) && downstream_ready(out);
      }
    }
    // Conservative wake: a future head wakes at its arrival; a ready head
    // that could not move (egress backlog or downstream full) retries next
    // cycle — the blocking state may change at any downstream drain.
    Cycle wake = kNoCycle;
    for (const std::deque<FabricMsg>& q : in_q_) {
      if (q.empty()) continue;
      const Cycle at = q.front().ready > now ? q.front().ready : now + 1;
      if (at < wake) wake = at;
    }
    return wake;
  }

  void reset_stats() {
    for (link::SerialPipe& p : pipes_) p.reset_stats();
    enqueued_.assign(in_ports_, 0);
    queue_high_water_.assign(in_ports_, 0);
  }

  /// RAS events across all egress pipes (all-zero when faults are unarmed).
  ras::RasCounters ras_counters() const {
    ras::RasCounters c;
    for (const link::SerialPipe& p : pipes_)
      if (const ras::RasCounters* r = p.ras()) c += *r;
    return c;
  }

  /// Sum of egress-pipe protocol violations (always zero when the fabric
  /// gates on can_send/can_enqueue).
  std::uint64_t violations() const {
    std::uint64_t n = 0;
    for (const link::SerialPipe& p : pipes_) n += p.violations();
    return n;
  }

 private:
  std::uint32_t in_ports_;
  std::uint32_t out_ports_;
  std::size_t queue_depth_;
  std::vector<std::deque<FabricMsg>> in_q_;
  std::vector<std::uint64_t> enqueued_;
  std::vector<std::size_t> queue_high_water_;
  std::vector<std::uint32_t> rr_;  ///< Per-egress round-robin cursor.
  std::vector<link::SerialPipe> pipes_;
};

}  // namespace coaxial::fabric
