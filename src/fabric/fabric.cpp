#include "fabric/fabric.hpp"

#include <algorithm>
#include <string>

#include "obs/profiler.hpp"

namespace coaxial::fabric {

Fabric::Fabric(const FabricConfig& cfg, std::uint32_t default_channels,
               const link::LaneConfig& lanes, obs::Scope scope)
    : cfg_(resolve(cfg, default_channels)), topo_(Topology::build(cfg_)), lanes_(lanes) {
  lanes_.validate();
  link_down_.assign(topo_.n_devices, false);
  if (direct()) {
    direct_links_.reserve(topo_.n_devices);
    for (std::uint32_t i = 0; i < topo_.n_devices; ++i) {
      const std::string tag = "cxl/link" + obs::idx(i);
      direct_links_.push_back(std::make_unique<link::CxlLink>(
          lanes_, cfg_.switch_max_backlog_cycles, scope.sub(tag), tag));
    }
    return;
  }

  const Cycle P = lanes_.port_latency_cycles();
  const Cycle S = cfg_.switch_port_cycles();
  const Cycle backlog = cfg_.switch_max_backlog_cycles;
  const std::uint32_t depth = cfg_.switch_queue_depth;
  const bool tree = cfg_.kind == TopologyKind::kTree;
  hops_ = tree ? 2 : 1;
  devs_per_leaf_ = tree ? topo_.n_devices / cfg_.leaf_switches : topo_.n_devices;

  const obs::Scope fs = scope.sub("fabric");
  if (fs.valid()) {
    const obs::Scope topo = fs.sub("topology");
    topo.expose_counter("devices", [this] { return std::uint64_t{topo_.n_devices}; });
    topo.expose_counter("host_links", [this] { return std::uint64_t{topo_.host_links}; });
    topo.expose_counter("switches", [this] { return std::uint64_t{topo_.n_switches}; });
  }

  // Injection pipes: host root ports (down) and device uplinks (up). Each
  // crosses one link port (P) and one switch ingress port (S).
  host_tx_.reserve(topo_.host_links);
  for (std::uint32_t l = 0; l < topo_.host_links; ++l) {
    const std::string tag = "fabric/host" + obs::idx(l) + "/tx";
    host_tx_.push_back(std::make_unique<link::SerialPipe>(lanes_.tx_goodput_gbps, P + S,
                                                          backlog, tag));
    host_tx_.back()->register_stats(fs.sub("host" + obs::idx(l) + "/tx"));
  }
  dev_up_.reserve(topo_.n_devices);
  for (std::uint32_t d = 0; d < topo_.n_devices; ++d) {
    const std::string tag = "fabric/dev" + obs::idx(d) + "/up";
    dev_up_.push_back(std::make_unique<link::SerialPipe>(lanes_.rx_goodput_gbps, P + S,
                                                         backlog, tag));
    dev_up_.back()->register_stats(fs.sub("dev" + obs::idx(d) + "/up"));
  }

  // Root switch planes. The egress pipe models the segment it drives:
  // switch->device is S+P, switch->switch is 2S.
  const Cycle root_down_fixed = tree ? 2 * S : S + P;
  root_down_ = std::make_unique<Switch>(topo_.host_links,
                                        tree ? cfg_.leaf_switches : topo_.n_devices,
                                        lanes_.tx_goodput_gbps, root_down_fixed, backlog,
                                        depth, fs.sub("sw00/down"), "fabric/sw00/down");
  root_up_ = std::make_unique<Switch>(tree ? cfg_.leaf_switches : topo_.n_devices,
                                      topo_.host_links, lanes_.rx_goodput_gbps, S + P,
                                      backlog, depth, fs.sub("sw00/up"), "fabric/sw00/up");
  if (tree) {
    for (std::uint32_t i = 0; i < cfg_.leaf_switches; ++i) {
      const std::string tag = "sw" + obs::idx(1 + i);
      leaf_down_.push_back(std::make_unique<Switch>(
          1u, devs_per_leaf_, lanes_.tx_goodput_gbps, S + P, backlog, depth,
          fs.sub(tag + "/down"), "fabric/" + tag + "/down"));
      leaf_up_.push_back(std::make_unique<Switch>(
          devs_per_leaf_, 1u, lanes_.rx_goodput_gbps, 2 * S, backlog, depth,
          fs.sub(tag + "/up"), "fabric/" + tag + "/up"));
    }
  }
}

void Fabric::arm_faults(const ras::FaultPlan& plan) {
  plan.validate();
  if (!plan.link_faults()) return;
  for (auto& l : direct_links_) l->arm_faults(plan);
  for (auto& p : host_tx_) p->arm_faults(plan);
  for (auto& p : dev_up_) p->arm_faults(plan);
  if (root_down_) root_down_->arm_faults(plan);
  if (root_up_) root_up_->arm_faults(plan);
  for (auto& s : leaf_down_) s->arm_faults(plan);
  for (auto& s : leaf_up_) s->arm_faults(plan);
}

ras::RasCounters Fabric::ras_counters() const {
  ras::RasCounters c;
  for (const auto& l : direct_links_) c += l->ras_counters();
  for (const auto& p : host_tx_)
    if (const ras::RasCounters* r = p->ras()) c += *r;
  for (const auto& p : dev_up_)
    if (const ras::RasCounters* r = p->ras()) c += *r;
  if (root_down_) c += root_down_->ras_counters();
  if (root_up_) c += root_up_->ras_counters();
  for (const auto& s : leaf_down_) c += s->ras_counters();
  for (const auto& s : leaf_up_) c += s->ras_counters();
  return c;
}

bool Fabric::can_send_tx(std::uint32_t dev, Cycle now) const {
  if (link_down_[dev]) return false;
  if (direct()) return direct_links_[dev]->can_send_tx(now);
  const std::uint32_t port = topo_.root_port_of(dev);
  return host_tx_[port]->can_send(now) && root_down_->can_enqueue(port);
}

link::SendResult Fabric::send_tx(std::uint32_t dev, std::uint32_t bytes, Cycle now,
                                 std::uint64_t payload) {
  if (direct()) return direct_links_[dev]->send_tx(bytes, now);
  const std::uint32_t port = topo_.root_port_of(dev);
  const link::SendResult ready = host_tx_[port]->send(bytes, now);
  root_down_->enqueue(port, {ready.at, dev, bytes, payload, ready.poisoned});
  return {kNoCycle, false};
}

bool Fabric::can_send_rx(std::uint32_t dev, Cycle now) const {
  if (link_down_[dev]) return false;
  if (direct()) return direct_links_[dev]->can_send_rx(now);
  if (!dev_up_[dev]->can_send(now)) return false;
  return cfg_.kind == TopologyKind::kTree
             ? leaf_up_[leaf_of(dev)]->can_enqueue(leaf_port_of(dev))
             : root_up_->can_enqueue(dev);
}

link::SendResult Fabric::send_rx(std::uint32_t dev, std::uint32_t bytes, Cycle now,
                                 std::uint64_t payload) {
  if (direct()) return direct_links_[dev]->send_rx(bytes, now);
  const link::SendResult ready = dev_up_[dev]->send(bytes, now);
  const FabricMsg msg{ready.at, dev, bytes, payload, ready.poisoned};
  if (cfg_.kind == TopologyKind::kTree) {
    leaf_up_[leaf_of(dev)]->enqueue(leaf_port_of(dev), msg);
  } else {
    root_up_->enqueue(dev, msg);
  }
  return {kNoCycle, false};
}

Cycle Fabric::rx_credit_cycle(std::uint32_t dev, Cycle now) const {
  if (direct()) return direct_links_[dev]->rx_credit_cycle(now);
  if (can_send_rx(dev, now)) return now;
  // Blocked on the uplink pipe: its credit cycle is exact. Blocked on a
  // full switch ingress queue: retry next cycle (it drains via ticks).
  const Cycle at = dev_up_[dev]->credit_cycle(now);
  return at > now ? at : now + 1;
}

Cycle Fabric::tick(Cycle now) {
  if (direct()) return kNoCycle;
  COAXIAL_PROF_SCOPE(kFabricArb);
  Cycle wake = kNoCycle;
  const bool tree = cfg_.kind == TopologyKind::kTree;

  // Down plane, downstream order: root first so its output lands in leaf
  // ingress before the leaves compute their wake bounds.
  if (tree) {
    wake = std::min(
        wake, root_down_->tick(
                  now, [this](const FabricMsg& m) { return leaf_of(m.dest); },
                  [this](std::uint32_t out) { return leaf_down_[out]->can_enqueue(0); },
                  [this](std::uint32_t out, const FabricMsg& m, Cycle arrival) {
                    leaf_down_[out]->enqueue(
                        0, {arrival, m.dest, m.bytes, m.payload, m.poisoned});
                  }));
    for (auto& leaf : leaf_down_) {
      wake = std::min(
          wake, leaf->tick(
                    now, [this](const FabricMsg& m) { return leaf_port_of(m.dest); },
                    [](std::uint32_t) { return true; },
                    [this](std::uint32_t, const FabricMsg& m, Cycle arrival) {
                      tx_out_.push_back({arrival, m.dest, m.payload, m.poisoned});
                    }));
    }
  } else {
    wake = std::min(
        wake, root_down_->tick(
                  now, [](const FabricMsg& m) { return m.dest; },
                  [](std::uint32_t) { return true; },
                  [this](std::uint32_t, const FabricMsg& m, Cycle arrival) {
                    tx_out_.push_back({arrival, m.dest, m.payload, m.poisoned});
                  }));
  }

  // Up plane, downstream order: leaves feed the root, the root delivers.
  if (tree) {
    for (std::uint32_t i = 0; i < leaf_up_.size(); ++i) {
      wake = std::min(
          wake, leaf_up_[i]->tick(
                    now, [](const FabricMsg&) { return 0u; },
                    [this, i](std::uint32_t) { return root_up_->can_enqueue(i); },
                    [this, i](std::uint32_t, const FabricMsg& m, Cycle arrival) {
                      root_up_->enqueue(
                          i, {arrival, m.dest, m.bytes, m.payload, m.poisoned});
                    }));
    }
  }
  wake = std::min(
      wake, root_up_->tick(
                now, [this](const FabricMsg& m) { return topo_.root_port_of(m.dest); },
                [](std::uint32_t) { return true; },
                [this](std::uint32_t, const FabricMsg& m, Cycle arrival) {
                  rx_out_.push_back({arrival, m.dest, m.payload, m.poisoned});
                }));
  return wake;
}

Cycle Fabric::unloaded_tx_cycles(std::uint32_t bytes) const {
  if (direct()) return direct_links_[0]->unloaded_one_way(bytes, lanes_.tx_goodput_gbps);
  const Cycle ser = serialization_cycles(lanes_.tx_goodput_gbps, bytes);
  return (hops_ + 1) * ser + 2 * lanes_.port_latency_cycles() +
         2 * hops_ * cfg_.switch_port_cycles();
}

Cycle Fabric::unloaded_rx_cycles(std::uint32_t bytes) const {
  if (direct()) return direct_links_[0]->unloaded_one_way(bytes, lanes_.rx_goodput_gbps);
  const Cycle ser = serialization_cycles(lanes_.rx_goodput_gbps, bytes);
  return (hops_ + 1) * ser + 2 * lanes_.port_latency_cycles() +
         2 * hops_ * cfg_.switch_port_cycles();
}

void Fabric::reset_stats() {
  for (auto& l : direct_links_) l->reset_stats();
  for (auto& p : host_tx_) p->reset_stats();
  for (auto& p : dev_up_) p->reset_stats();
  if (root_down_) root_down_->reset_stats();
  if (root_up_) root_up_->reset_stats();
  for (auto& s : leaf_down_) s->reset_stats();
  for (auto& s : leaf_up_) s->reset_stats();
}

}  // namespace coaxial::fabric
