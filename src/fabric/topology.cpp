#include "fabric/topology.hpp"

#include <stdexcept>
#include <string>

#include "common/validate.hpp"

namespace coaxial::fabric {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("fabric topology: " + what);
}

}  // namespace

FabricConfig resolve(FabricConfig cfg, std::uint32_t default_channels) {
  if (cfg.kind == TopologyKind::kDirect) {
    // A direct fabric is the legacy wiring: one device per root port.
    const std::uint32_t n = cfg.devices ? cfg.devices : default_channels;
    cfg.devices = n;
    cfg.host_links = n;
    return cfg;
  }
  if (cfg.devices == 0) cfg.devices = default_channels;
  if (cfg.host_links == 0) cfg.host_links = default_channels;
  return cfg;
}

std::uint32_t Topology::hops(std::uint32_t dev) const {
  std::uint32_t n = 0;
  std::int32_t at = nodes[device_node(dev)].parent;
  while (at >= 0 && nodes[static_cast<std::size_t>(at)].kind == NodeKind::kSwitch) {
    ++n;
    at = nodes[static_cast<std::size_t>(at)].parent;
  }
  return n;
}

Topology Topology::build(const FabricConfig& cfg) {
  // Value validation (shared helper; structural checks follow below). The
  // backlog bound and queue depth must be non-zero or every pipe/port is
  // permanently out of credit; the port latency must be a real duration.
  {
    namespace v = coaxial::validate;
    const char* o = "fabric::FabricConfig";
    v::require_non_negative(o, "switch_port_ns", cfg.switch_port_ns);
    v::require_nonzero(o, "switch_queue_depth", cfg.switch_queue_depth);
    v::require_nonzero(o, "switch_max_backlog_cycles", cfg.switch_max_backlog_cycles);
    if (cfg.interleave == Interleave::kPage)
      v::require_nonzero(o, "page_lines", cfg.page_lines);
    if (cfg.interleave == Interleave::kContiguous)
      v::require_nonzero(o, "contiguous_lines", cfg.contiguous_lines);
  }
  if (cfg.devices == 0) fail("no devices");
  if (cfg.host_links == 0) fail("no host links");

  Topology t;
  t.host_links = cfg.host_links;
  t.n_devices = cfg.devices;
  switch (cfg.kind) {
    case TopologyKind::kDirect:
      if (cfg.devices != cfg.host_links) {
        fail("direct fabric needs one host link per device");
      }
      t.n_switches = 0;
      break;
    case TopologyKind::kStar:
      t.n_switches = 1;
      break;
    case TopologyKind::kTree:
      if (cfg.leaf_switches == 0) fail("tree fabric needs at least one leaf switch");
      if (cfg.devices % cfg.leaf_switches != 0) {
        fail("tree fabric needs devices divisible by leaf switches");
      }
      t.n_switches = 1 + cfg.leaf_switches;
      break;
  }
  if (cfg.switched() && cfg.host_links > cfg.devices) {
    fail("switched fabric with more host links than devices");
  }

  t.nodes.resize(1 + t.n_switches + t.n_devices);
  t.nodes[0] = {NodeKind::kHost, -1};
  for (std::uint32_t s = 0; s < t.n_switches; ++s) {
    // Root switch hangs off the host; leaves hang off the root switch.
    const std::int32_t parent = s == 0 ? 0 : static_cast<std::int32_t>(t.switch_node(0));
    t.nodes[t.switch_node(s)] = {NodeKind::kSwitch, parent};
  }
  for (std::uint32_t d = 0; d < t.n_devices; ++d) {
    std::int32_t parent = 0;  // Direct: straight to the host.
    if (cfg.kind == TopologyKind::kStar) {
      parent = static_cast<std::int32_t>(t.switch_node(0));
    } else if (cfg.kind == TopologyKind::kTree) {
      const std::uint32_t per_leaf = cfg.devices / cfg.leaf_switches;
      parent = static_cast<std::int32_t>(t.switch_node(1 + d / per_leaf));
    }
    t.nodes[t.device_node(d)] = {NodeKind::kDevice, parent};
  }
  t.validate();
  return t;
}

void Topology::validate() const {
  if (nodes.size() != std::size_t{1} + n_switches + n_devices) {
    fail("node count does not match declared shape");
  }
  if (nodes.empty() || nodes[0].kind != NodeKind::kHost || nodes[0].parent != -1) {
    fail("node 0 must be the parentless host");
  }
  if (host_links == 0) fail("no host links");
  if (n_devices == 0) fail("no devices");

  std::vector<std::uint32_t> children(nodes.size(), 0);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.kind == NodeKind::kHost) fail("multiple hosts");
    const bool expect_switch = i < std::size_t{1} + n_switches;
    if (expect_switch != (n.kind == NodeKind::kSwitch)) {
      fail("nodes must be ordered host, switches, devices");
    }
    if (n.parent < 0 || static_cast<std::size_t>(n.parent) >= nodes.size()) {
      fail("dangling port: parent out of range");
    }
    if (nodes[static_cast<std::size_t>(n.parent)].kind == NodeKind::kDevice) {
      fail("devices are leaves and cannot be parents");
    }
    ++children[static_cast<std::size_t>(n.parent)];
  }
  // Every device must reach the host; the walk is bounded by the node
  // count, so exceeding it means the parent edges form a cycle.
  for (std::uint32_t d = 0; d < n_devices; ++d) {
    std::int32_t at = nodes[device_node(d)].parent;
    std::size_t steps = 0;
    while (at > 0) {
      if (++steps > nodes.size()) fail("cycle in parent edges");
      at = nodes[static_cast<std::size_t>(at)].parent;
    }
    if (at != 0) fail("device cannot reach the host");
  }
  for (std::uint32_t s = 0; s < n_switches; ++s) {
    // A switch nobody hangs off has dangling downstream ports; it can also
    // hide a parent cycle among switches, which the device walk misses.
    if (children[switch_node(s)] == 0) fail("dangling switch with no children");
    std::int32_t at = nodes[switch_node(s)].parent;
    std::size_t steps = 0;
    while (at > 0) {
      if (++steps > nodes.size()) fail("cycle in parent edges");
      at = nodes[static_cast<std::size_t>(at)].parent;
    }
    if (at != 0) fail("switch cannot reach the host");
  }
}

}  // namespace coaxial::fabric
