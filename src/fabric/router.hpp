// Cross-device address interleaving (fabric routing function).
//
// Maps a physical line address to (device, global sub-channel, device-local
// line) under a pluggable policy. Within a device, lines always stripe
// across its sub-channels at line granularity; the policy decides how the
// global address space is distributed across devices:
//
//   kLine        lines stripe across ALL sub-channels of all devices —
//                bit-identical to the legacy one-link-per-device wiring.
//   kPage        fixed-size pages (default 4 KiB) round-robin across
//                devices, keeping spatial locality device-local.
//   kContiguous  large contiguous extents per device (capacity-mode NUMA
//                placement), round-robin at extent granularity.
//
// The Router is the stage-2 backend of the two-stage translation layer
// (placement::AddressMap, DESIGN.md §10): stage 1 picks a tier, the tier's
// Router spreads the tier-local address space across its devices.
#pragma once

#include "common/units.hpp"
#include "fabric/topology.hpp"

namespace coaxial::fabric {

class Router {
 public:
  struct Route {
    std::uint32_t device = 0;
    std::uint32_t sub = 0;  ///< Global sub-channel index (device-major).
    Addr local = 0;         ///< Line index local to the sub-channel.
  };

  Router(Interleave policy, std::uint32_t devices, std::uint32_t subs_per_device,
         std::uint32_t page_lines, std::uint64_t contiguous_lines)
      : policy_(policy), devices_(devices), spd_(subs_per_device),
        n_sub_(devices * subs_per_device),
        page_lines_(page_lines == 0 ? 1 : page_lines),
        contiguous_lines_(contiguous_lines == 0 ? 1 : contiguous_lines) {}

  Route route(Addr line) const {
    switch (policy_) {
      case Interleave::kPage:
        return split(line / page_lines_, line % page_lines_, page_lines_);
      case Interleave::kContiguous:
        return split(line / contiguous_lines_, line % contiguous_lines_,
                     contiguous_lines_);
      case Interleave::kLine:
      default: {
        // Legacy striping: the device owns a contiguous run of the global
        // sub-channel index space.
        const std::uint32_t sub = static_cast<std::uint32_t>(line % n_sub_);
        return {sub / spd_, sub, line / n_sub_};
      }
    }
  }

  std::uint32_t device_of(Addr line) const { return route(line).device; }
  Interleave policy() const { return policy_; }

 private:
  /// Common round-robin-at-`grain` split: block index chooses the device;
  /// the device-local flat line then stripes across its sub-channels.
  Route split(Addr block, Addr offset, Addr grain) const {
    const std::uint32_t dev = static_cast<std::uint32_t>(block % devices_);
    const Addr local_flat = (block / devices_) * grain + offset;
    return {dev, dev * spd_ + static_cast<std::uint32_t>(local_flat % spd_),
            local_flat / spd_};
  }

  Interleave policy_;
  std::uint32_t devices_;
  std::uint32_t spd_;
  std::uint64_t n_sub_;
  Addr page_lines_;
  Addr contiguous_lines_;
};

}  // namespace coaxial::fabric
