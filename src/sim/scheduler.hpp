// Deterministic discrete-event scheduler: the wake-up spine of the system.
//
// Components implement Schedulable and register wake-ups; the System event
// pump asks for the next populated cycle, jumps `now` straight to it, and
// dispatches everything due. Entries are ordered by (cycle, priority, seq):
// the sequence number is a per-scheduler monotonic counter, so ties at the
// same (cycle, priority) always dispatch in registration order — identical
// on every platform and independent of heap internals.
//
// Cancellation is lazy: cancel() tombstones the token and the entry is
// discarded when it surfaces, keeping both operations O(log n).
//
// Note: this heap carries only component wake-ups, which are idempotent
// ("run your cycle handler at cycle T"). Payload events (cache fills, NoC
// arrivals, memory ops) stay on the System's own event queue, whose legacy
// same-cycle ordering is results-affecting and therefore preserved as-is.
// That payload queue is also why single-host System runs stay sequential:
// its same-cycle tie-break (heap insertion order) is global state that a
// partition would have to reproduce exactly. The sharded parallel pump
// (DESIGN.md §14, sim/shard.hpp) therefore targets sim::PooledSystem,
// whose per-host slices own disjoint state by construction.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace coaxial::sim {

/// A component that can be woken at a scheduled cycle. Wake-ups are
/// level-triggered: being woken with nothing to do must be harmless.
class Schedulable {
 public:
  virtual ~Schedulable() = default;
  virtual void on_wake(Cycle now) = 0;
};

class Scheduler {
 public:
  using Token = std::uint64_t;
  static constexpr Token kNoToken = 0;

  /// Register a wake-up for `who` at `cycle`. Lower `priority` dispatches
  /// first within a cycle; equal (cycle, priority) dispatch in registration
  /// order. Returns a token usable with cancel().
  Token schedule(Cycle cycle, std::uint32_t priority, Schedulable* who) {
    const Token token = ++last_token_;
    heap_.push(Entry{cycle, priority, token, who});
    cancelled_.push_back(false);  // Slot for this token; see cancel().
    ++live_;
    ++n_scheduled_;
    return token;
  }

  /// Drop a still-pending wake-up. The token must not have been dispatched
  /// or cancelled already (callers track liveness; see System::WakeSlot).
  /// Tombstones live in a flat bit-vector indexed by token (tokens are
  /// dense and monotonic), so cancel and the per-pop liveness test in
  /// prune() are branch-predictable O(1) bit ops — this is the scheduler's
  /// hottest edge, hit on every re-arm of a pending wake-up.
  void cancel(Token token) {
    if (token == kNoToken) return;
    cancelled_[token - 1] = true;
    --live_;
    ++n_cancelled_;
  }

  /// Earliest cycle holding a live entry, or kNoCycle if none.
  Cycle next_cycle() {
    prune();
    return heap_.empty() ? kNoCycle : heap_.top().cycle;
  }

  /// Pop and dispatch every live entry with cycle <= now, including entries
  /// registered at <= now by the handlers themselves (same-cycle chaining).
  /// Returns the number of entries dispatched.
  std::size_t dispatch_due(Cycle now) {
    std::size_t n = 0;
    for (;;) {
      prune();
      if (heap_.empty() || heap_.top().cycle > now) break;
      const Entry e = heap_.top();
      heap_.pop();
      --live_;
      ++n_dispatched_;
      ++n;
      e.who->on_wake(now);
    }
    return n;
  }

  bool empty() {
    prune();
    return heap_.empty();
  }
  std::size_t live() const { return live_; }
  std::uint64_t scheduled() const { return n_scheduled_; }
  std::uint64_t dispatched() const { return n_dispatched_; }
  std::uint64_t cancelled() const { return n_cancelled_; }

 private:
  struct Entry {
    Cycle cycle = 0;
    std::uint32_t priority = 0;
    Token token = kNoToken;
    Schedulable* who = nullptr;
    bool operator>(const Entry& o) const {
      if (cycle != o.cycle) return cycle > o.cycle;
      if (priority != o.priority) return priority > o.priority;
      return token > o.token;
    }
  };

  /// Discard tombstoned entries sitting on top of the heap.
  void prune() {
    while (!heap_.empty() && cancelled_[heap_.top().token - 1]) heap_.pop();
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  /// Tombstone bit per issued token (index token-1); grows with schedule().
  /// ~1 MiB per 8M wake-ups, reclaimed with the Scheduler at end of run.
  std::vector<bool> cancelled_;
  Token last_token_ = kNoToken;
  std::size_t live_ = 0;
  std::uint64_t n_scheduled_ = 0;
  std::uint64_t n_dispatched_ = 0;
  std::uint64_t n_cancelled_ = 0;
};

}  // namespace coaxial::sim
