#include "sim/shard.hpp"

#include <utility>

namespace coaxial::sim::shard {

WorkerTeam::WorkerTeam(std::size_t workers, std::size_t shards)
    : workers_(workers == 0 ? 1 : workers), shards_(shards) {
  if (workers_ > shards_ && shards_ != 0) workers_ = shards_;
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerTeam::~WorkerTeam() {
  if (!threads_.empty()) shutdown();
}

void WorkerTeam::worker_loop(std::size_t w) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      COAXIAL_PROF_SCOPE(kShardBarrier);
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) {
        worker_totals_.add(obs::prof::thread_totals());
        return;
      }
      seen = generation_;
      fn = fn_;
    }
    std::exception_ptr error;
    try {
      COAXIAL_PROF_SCOPE(kShardPump);
      for (std::size_t s = w; s < shards_; s += workers_) (*fn)(s);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_exception_) first_exception_ = error;
      if (++done_ == workers_ - 1) done_cv_.notify_one();
    }
  }
}

void WorkerTeam::round(const std::function<void(std::size_t)>& fn) {
  if (threads_.empty()) {
    COAXIAL_PROF_SCOPE(kShardPump);
    for (std::size_t s = 0; s < shards_; ++s) fn(s);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    done_ = 0;
    ++generation_;
  }
  start_cv_.notify_all();
  std::exception_ptr error;
  try {
    COAXIAL_PROF_SCOPE(kShardPump);
    for (std::size_t s = 0; s < shards_; s += workers_) fn(s);
  } catch (...) {
    error = std::current_exception();
  }
  {
    COAXIAL_PROF_SCOPE(kShardBarrier);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return done_ == workers_ - 1; });
    if (!error && first_exception_) {
      error = std::exchange(first_exception_, nullptr);
    }
  }
  if (error) std::rethrow_exception(error);
}

obs::prof::Totals WorkerTeam::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  return worker_totals_;
}

}  // namespace coaxial::sim::shard
