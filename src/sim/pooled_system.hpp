// Multi-host pooled-memory driver (DESIGN.md §12, §14).
//
// Ticks N host slices against one pool::PooledMemory. Each slice is the
// closed-loop core model from sim::System reduced to one core: a
// workload::Generator stream, an IPC credit bucket, a bounded window of
// outstanding reads, and load->load dependency stalls. A per-slice share
// RNG redirects a configured fraction of memory ops from the slice's
// private region into the shared pooled window (with a hot contended
// subset), which is what exercises the coherence directory.
//
// Two pumps:
//
//  * Direct fabrics run under the sharded quantum engine (DESIGN.md §14):
//    the system is partitioned into one pool shard plus one shard per host
//    slice, each pumped independently inside quanta of Q =
//    PooledMemory::min_cross_shard_latency() cycles, with mailboxes drained
//    at the barrier between quanta. One worker (the default) runs every
//    shard inline on the calling thread; set_workers(N) pumps shards on N
//    threads. The schedule of (shard, cycle) work and every barrier
//    decision is a pure function of simulation state — never of the worker
//    count — so every worker count produces byte-identical stats.
//  * Switched fabrics keep the sequential per-cycle pump: a switch
//    arbitrates both directions of every host in one shared structure, so
//    it cannot be split into independently-pumped shards. Requesting more
//    than one worker on a switched pool throws.
//
// Determinism (both pumps): slices are stepped in host order every cycle
// while retiring (each live slice arms a now+1 wake), so per-step stall
// counters are identical whether the scheduler runs event-driven or with
// COAXIAL_TICK_EVERY_CYCLE=1; event skipping only compresses idle gaps —
// the engine additionally rounds skips down to quantum boundaries so both
// modes observe every barrier predicate transition at the same barrier.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "pool/pooled_memory.hpp"
#include "workload/generator.hpp"

namespace coaxial::sim {

/// Measurement-window results of one pooled run.
struct PooledStats {
  Cycle window_cycles = 0;  ///< Joint window (all hosts warm .. all done).
  Cycle total_cycles = 0;   ///< Full run including warmup and drain.
  std::uint64_t instructions = 0;  ///< Window retirements, summed over hosts.
  std::vector<double> host_ipc;    ///< Per-host window IPC.
  double ipc_mean = 0;
  double read_p50_ns = 0;  ///< Merged read-latency percentiles (window).
  double read_p99_ns = 0;
  pool::PoolCounters pool;  ///< Lifetime protocol totals at end of run.
};

/// N closed-loop host slices sharing a pooled CXL memory.
class PooledSystem {
 public:
  PooledSystem(const pool::PoolConfig& cfg, std::uint64_t seed);

  /// Run until every host has retired warmup + measure instructions, then
  /// drain the memory system to quiescence. The measurement window opens
  /// when the last host crosses `warmup_instr` and closes when the last
  /// host crosses the full budget.
  PooledStats run(std::uint64_t warmup_instr, std::uint64_t measure_instr);

  /// Force the per-cycle scheduler (also via COAXIAL_TICK_EVERY_CYCLE=1).
  void set_tick_every_cycle(bool on) { tick_every_cycle_ = on; }

  /// Request N shard workers for the quantum engine (clamped to the shard
  /// count, n_hosts + 1). The default 1 pumps every shard inline. Throws
  /// from run() when N > 1 on a switched (engine-incapable) pool.
  void set_workers(std::uint32_t n) { workers_ = n == 0 ? 1 : n; }
  /// Workers actually used by the last run() (1 for the sequential pump).
  std::uint32_t effective_workers() const { return effective_workers_; }
  /// The engine's conservative lookahead in cycles (0 when the fabric is
  /// switched and the engine cannot run).
  Cycle lookahead() const;
  /// Summed profiler totals of the worker threads of the last run (the
  /// coordinator's phases are in its own thread-local totals).
  const obs::prof::Totals& worker_prof_totals() const {
    return worker_prof_totals_;
  }

  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const pool::PooledMemory& memory() const { return *memory_; }
  const pool::PoolConfig& config() const { return cfg_; }

 private:
  struct Slot {
    Cycle start = 0;
    Cycle done = kNoCycle;
    bool busy = false;
  };

  struct Slice {
    std::unique_ptr<workload::Generator> gen;
    Rng share_rng{0};
    workload::Instr cur;         ///< Buffered head instruction.
    Addr cur_line = 0;           ///< Its post-redirect line address.
    bool cur_valid = false;
    bool cur_shared = false;
    double credit = 0;
    Cycle last_step = 0;
    std::vector<Slot> slots;     ///< host_window outstanding reads.
    std::vector<std::uint32_t> free_slots;
    std::uint32_t busy_slots = 0;
    std::uint32_t last_load_slot = 0;
    bool last_load_valid = false;
    bool halted = false;
    Cycle halt_at = kNoCycle;    ///< Cycle the budget was crossed (exact).
    std::uint64_t retired = 0;
    std::uint64_t retired_base = 0;  ///< Snapshot at window open.
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t shared_ops = 0;    ///< Accesses redirected to the pool.
    std::uint64_t poisons = 0;       ///< Poisoned read completions consumed.
    std::uint64_t bp_stall_cycles = 0;      ///< Memory would not accept.
    std::uint64_t dep_stall_cycles = 0;     ///< Load->load dependency.
    std::uint64_t window_stall_cycles = 0;  ///< All read slots busy.
    FixedHistogram lat;  ///< Read latency, cycles, window-issued only.
  };

  void step(Cycle now);
  void step_slice(std::uint32_t h, Cycle now);
  void drain_completions(std::uint32_t h);
  void fetch(Slice& s, std::uint32_t h);
  Cycle next_event_after(Cycle now) const;
  PooledStats run_sequential(std::uint64_t warmup_instr, bool force);
  PooledStats run_quantum(std::uint64_t warmup_instr, bool force);
  PooledStats assemble_stats(Cycle window_end, Cycle total) const;
  void register_metrics();

  pool::PoolConfig cfg_;
  std::uint64_t seed_ = 0;
  Addr private_lines_ = 0;
  bool tick_every_cycle_ = false;
  std::uint32_t workers_ = 1;
  std::uint32_t effective_workers_ = 1;
  obs::prof::Totals worker_prof_totals_;

  // The registry must outlive (so: precede) everything that registers.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<pool::PooledMemory> memory_;
  std::vector<Slice> slices_;

  Cycle mem_wake_ = 0;
  std::uint64_t budget_ = 0;  ///< Per-host warmup + measure retirements.
  bool window_open_ = false;
  Cycle window_start_ = 0;
};

}  // namespace coaxial::sim
