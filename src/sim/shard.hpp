// Conservative-lookahead sharded simulation support (DESIGN.md §14).
//
// A sharded run partitions one simulated system into shards that own
// disjoint component state (for sim::PooledSystem: one shard per host
// slice, plus one shard for the pooled device side). Each shard pumps its
// own cycles independently inside a time quantum Q, where Q is the minimum
// latency any cross-shard message can have (derived from the CXL fabric's
// unloaded serialization + port latencies). Because every cross-shard
// message sent at cycle c arrives no earlier than c + Q, a message sent
// anywhere inside quantum [T, T+Q) arrives at or after T + Q — so shards
// never need to see each other's state mid-quantum. Cross-shard messages
// accumulate in per-(src,dst) outboxes and are drained by the coordinator
// at the barrier between quanta, in a fixed (source-index, FIFO) order.
//
// Determinism: shard-local pumping is sequential per shard, mailbox drain
// order is fixed, and all global predicates (measurement-window open,
// termination) are evaluated only at barriers while every shard is paused.
// No decision anywhere depends on the worker count or on thread timing, so
// any worker count produces byte-identical stats — including one worker,
// which is the default and spawns no threads at all.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

#include "obs/profiler.hpp"

namespace coaxial::sim::shard {

/// A persistent team of workers executing one "round" (quantum) at a time.
/// Shard s is owned by worker (s % workers); worker 0 is the calling
/// (coordinator) thread, so `workers == 1` spawns no threads and runs every
/// shard inline — the sequential pump is literally the one-worker case.
class WorkerTeam {
 public:
  WorkerTeam(std::size_t workers, std::size_t shards);
  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;
  ~WorkerTeam();

  /// Run fn(s) for every shard, each worker pumping its owned shards in
  /// ascending shard order; blocks until the whole round is done. The first
  /// exception thrown by any shard is rethrown here once the round settles.
  void round(const std::function<void(std::size_t)>& fn);

  /// Join the workers and return their summed profiler totals (the
  /// coordinator's own phases live in its thread-local totals already).
  obs::prof::Totals shutdown();

  std::size_t workers() const { return workers_; }

 private:
  void worker_loop(std::size_t w);

  std::size_t workers_ = 1;
  std::size_t shards_ = 0;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t done_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_exception_;
  obs::prof::Totals worker_totals_;
};

}  // namespace coaxial::sim::shard
