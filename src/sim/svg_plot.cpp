#include "sim/svg_plot.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace coaxial::report {

namespace {

constexpr int kWidth = 1200;
constexpr int kHeight = 420;
constexpr int kMarginLeft = 70;
constexpr int kMarginRight = 30;
constexpr int kMarginTop = 40;
constexpr int kMarginBottom = 110;

const char* kPalette[] = {"#4878a8", "#e07b39", "#5a9e6f", "#b85c8a",
                          "#8866aa", "#999944"};

double nice_max(double v) {
  if (v <= 0) return 1.0;
  const double mag = std::pow(10.0, std::floor(std::log10(v)));
  for (double m : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 7.5, 10.0}) {
    if (mag * m >= v) return mag * m;
  }
  return 10.0 * mag;
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

void emit_frame(std::ostream& os, const std::string& title, double y_max,
                const std::string& y_label) {
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << kWidth << "' height='"
     << kHeight << "' font-family='sans-serif' font-size='12'>\n"
     << "<rect width='100%' height='100%' fill='white'/>\n"
     << "<text x='" << kWidth / 2 << "' y='22' text-anchor='middle' font-size='16'>"
     << escape(title) << "</text>\n";
  const int plot_h = kHeight - kMarginTop - kMarginBottom;
  // Horizontal gridlines and y-axis labels.
  for (int i = 0; i <= 4; ++i) {
    const double frac = i / 4.0;
    const int y = kMarginTop + static_cast<int>(plot_h * (1.0 - frac));
    os << "<line x1='" << kMarginLeft << "' y1='" << y << "' x2='"
       << kWidth - kMarginRight << "' y2='" << y
       << "' stroke='#dddddd' stroke-width='1'/>\n"
       << "<text x='" << kMarginLeft - 8 << "' y='" << y + 4
       << "' text-anchor='end'>" << frac * y_max << "</text>\n";
  }
  if (!y_label.empty()) {
    os << "<text x='16' y='" << kMarginTop + plot_h / 2
       << "' text-anchor='middle' transform='rotate(-90 16 "
       << kMarginTop + plot_h / 2 << ")'>" << escape(y_label) << "</text>\n";
  }
}

void emit_legend(std::ostream& os, const std::vector<Series>& series) {
  int x = kMarginLeft;
  for (std::size_t s = 0; s < series.size(); ++s) {
    os << "<rect x='" << x << "' y='" << kHeight - 18 << "' width='12' height='12' fill='"
       << kPalette[s % 6] << "'/>\n"
       << "<text x='" << x + 16 << "' y='" << kHeight - 8 << "'>"
       << escape(series[s].name) << "</text>\n";
    x += 22 + static_cast<int>(series[s].name.size()) * 7;
  }
}

}  // namespace

bool write_bar_chart_svg(const std::string& path, const std::string& title,
                         const std::vector<std::string>& categories,
                         const std::vector<Series>& series, double reference) {
  if (categories.empty() || series.empty()) return false;
  std::ofstream f(path);
  if (!f) return false;

  double max_v = reference;
  for (const auto& s : series) {
    for (double v : s.y) max_v = std::max(max_v, v);
  }
  const double y_max = nice_max(max_v * 1.05);

  std::ostringstream os;
  emit_frame(os, title, y_max, "");

  const int plot_w = kWidth - kMarginLeft - kMarginRight;
  const int plot_h = kHeight - kMarginTop - kMarginBottom;
  const double group_w = static_cast<double>(plot_w) / categories.size();
  const double bar_w = std::max(1.0, group_w * 0.8 / series.size());

  for (std::size_t c = 0; c < categories.size(); ++c) {
    for (std::size_t s = 0; s < series.size(); ++s) {
      if (c >= series[s].y.size()) continue;
      const double v = std::max(0.0, series[s].y[c]);
      const double h = plot_h * std::min(1.0, v / y_max);
      const double x = kMarginLeft + c * group_w + group_w * 0.1 + s * bar_w;
      const double y = kMarginTop + plot_h - h;
      os << "<rect x='" << x << "' y='" << y << "' width='" << bar_w << "' height='"
         << h << "' fill='" << kPalette[s % 6] << "'/>\n";
    }
    const double cx = kMarginLeft + c * group_w + group_w / 2;
    os << "<text x='" << cx << "' y='" << kMarginTop + plot_h + 10
       << "' text-anchor='end' transform='rotate(-55 " << cx << " "
       << kMarginTop + plot_h + 10 << ")'>" << escape(categories[c]) << "</text>\n";
  }
  if (reference > 0.0 && reference <= y_max) {
    const int y = kMarginTop + static_cast<int>(plot_h * (1.0 - reference / y_max));
    os << "<line x1='" << kMarginLeft << "' y1='" << y << "' x2='"
       << kWidth - kMarginRight << "' y2='" << y
       << "' stroke='#cc3333' stroke-dasharray='6,4'/>\n";
  }
  emit_legend(os, series);
  os << "</svg>\n";
  f << os.str();
  return static_cast<bool>(f);
}

bool write_line_chart_svg(const std::string& path, const std::string& title,
                          const std::vector<double>& x, const std::vector<Series>& series,
                          const std::string& x_label, const std::string& y_label) {
  if (x.size() < 2 || series.empty()) return false;
  std::ofstream f(path);
  if (!f) return false;

  double max_v = 0;
  for (const auto& s : series) {
    for (double v : s.y) max_v = std::max(max_v, v);
  }
  const double y_max = nice_max(max_v * 1.05);
  const double x_min = *std::min_element(x.begin(), x.end());
  const double x_max = *std::max_element(x.begin(), x.end());
  const double x_span = std::max(1e-12, x_max - x_min);

  std::ostringstream os;
  emit_frame(os, title, y_max, y_label);
  const int plot_w = kWidth - kMarginLeft - kMarginRight;
  const int plot_h = kHeight - kMarginTop - kMarginBottom;

  for (std::size_t s = 0; s < series.size(); ++s) {
    os << "<polyline fill='none' stroke='" << kPalette[s % 6]
       << "' stroke-width='2' points='";
    for (std::size_t i = 0; i < x.size() && i < series[s].y.size(); ++i) {
      const double px = kMarginLeft + plot_w * (x[i] - x_min) / x_span;
      const double py =
          kMarginTop + plot_h * (1.0 - std::min(1.0, series[s].y[i] / y_max));
      os << px << "," << py << " ";
    }
    os << "'/>\n";
  }
  for (int i = 0; i <= 4; ++i) {
    const double frac = i / 4.0;
    const double px = kMarginLeft + plot_w * frac;
    os << "<text x='" << px << "' y='" << kMarginTop + plot_h + 18
       << "' text-anchor='middle'>" << x_min + frac * x_span << "</text>\n";
  }
  os << "<text x='" << kMarginLeft + plot_w / 2 << "' y='" << kMarginTop + plot_h + 38
     << "' text-anchor='middle'>" << escape(x_label) << "</text>\n";
  emit_legend(os, series);
  os << "</svg>\n";
  f << os.str();
  return static_cast<bool>(f);
}

}  // namespace coaxial::report
