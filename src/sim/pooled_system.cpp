#include "sim/pooled_system.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/env.hpp"
#include "common/validate.hpp"
#include "sim/shard.hpp"
#include "workload/catalog.hpp"

namespace coaxial::sim {

PooledSystem::PooledSystem(const pool::PoolConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed) {
  cfg_.validate();
  if (!cfg_.enabled()) {
    throw std::invalid_argument("sim::PooledSystem: n_hosts == 0");
  }
  private_lines_ = cfg_.private_pages * cfg_.page_lines;

  const obs::Scope pool = obs::Scope(&metrics_, "").sub("pool", cfg_.enabled());
  memory_ = std::make_unique<pool::PooledMemory>(cfg_, pool.sub("mem"));

  // Cross-check the declared engine lookahead against the fabric-derived
  // one (DESIGN.md §14): a declaration below the true minimum would
  // silently waste lookahead, one above it would let a message arrive
  // inside the quantum that sent it and break the byte-identical contract.
  // Switched fabrics never run the engine, so their declaration is inert.
  if (memory_->engine_capable() && cfg_.shard_min_latency_cycles != 0) {
    const Cycle derived = memory_->min_cross_shard_latency();
    const Cycle declared = cfg_.shard_min_latency_cycles;
    if (declared < derived) {
      validate::fail("sim::PooledSystem", "shard_min_latency_cycles",
                     "is below the fabric's minimum cross-shard latency — the "
                     "declaration would silently waste lookahead; declare the "
                     "derived value or 0",
                     std::to_string(declared) + " < " + std::to_string(derived));
    }
    if (declared > derived) {
      validate::fail("sim::PooledSystem", "shard_min_latency_cycles",
                     "exceeds the fabric's minimum cross-shard latency — a "
                     "quantum that long would deliver messages late and break "
                     "the deterministic-parallel contract",
                     std::to_string(declared) + " > " + std::to_string(derived));
    }
  }

  const workload::WorkloadParams& wp = workload::find_workload(cfg_.workload);
  slices_.reserve(cfg_.n_hosts);
  for (std::uint32_t h = 0; h < cfg_.n_hosts; ++h) {
    Slice s;
    s.gen = std::make_unique<workload::Generator>(wp, h, seed);
    // The share redirect draws from its own stream so turning sharing on or
    // off for one host never perturbs another host's instruction sequence.
    s.share_rng = Rng(seed ^ (0x9e3779b97f4a7c15ull * (h + 1)));
    s.credit = wp.max_ipc;
    s.slots.resize(cfg_.host_window);
    s.free_slots.reserve(cfg_.host_window);
    for (std::uint32_t i = cfg_.host_window; i > 0; --i) {
      s.free_slots.push_back(i - 1);
    }
    slices_.push_back(std::move(s));
  }
  register_metrics();
}

Cycle PooledSystem::lookahead() const {
  return memory_->engine_capable() ? memory_->min_cross_shard_latency() : 0;
}

void PooledSystem::fetch(Slice& s, std::uint32_t h) {
  s.cur = s.gen->next();
  if (s.cur.kind != workload::InstrKind::kAlu) {
    Addr line = (s.cur.addr / kLineBytes) % private_lines_;
    bool shared = false;
    const double f = cfg_.host_share_fraction(h);
    // Hosts pinned at fraction 0 never touch the share RNG at all, so a
    // victim tenant's whole access stream is independent of its neighbours.
    if (f > 0.0 && s.share_rng.chance(f)) {
      shared = true;
      const bool hot = cfg_.shared_hot_pages != 0 &&
                       s.share_rng.chance(cfg_.shared_hot_prob);
      const Addr page = hot ? s.share_rng.next_below(cfg_.shared_hot_pages)
                            : s.share_rng.next_below(cfg_.shared_pages);
      line = pool::kPoolSharedBaseLine + page * cfg_.page_lines +
             s.share_rng.next_below(cfg_.page_lines);
    }
    s.cur_line = line;
    s.cur_shared = shared;
  }
  s.cur_valid = true;
}

void PooledSystem::step_slice(std::uint32_t h, Cycle now) {
  Slice& s = slices_[h];
  if (s.halted) return;

  // Free read slots whose completions have landed.
  if (s.busy_slots != 0) {
    for (std::uint32_t i = 0; i < s.slots.size(); ++i) {
      Slot& sl = s.slots[i];
      if (sl.busy && sl.done != kNoCycle && sl.done <= now) {
        sl.busy = false;
        s.free_slots.push_back(i);
        --s.busy_slots;
      }
    }
  }

  const double max_ipc = s.gen->params().max_ipc;
  if (now > s.last_step) {
    s.credit = std::min(
        max_ipc, s.credit + max_ipc * static_cast<double>(now - s.last_step));
    s.last_step = now;
  }

  while (s.credit >= 1.0) {
    if (!s.cur_valid) fetch(s, h);
    if (s.cur.kind == workload::InstrKind::kLoad) {
      if (s.cur.depends_on_prev_load && s.last_load_valid &&
          s.slots[s.last_load_slot].busy) {
        ++s.dep_stall_cycles;
        return;
      }
      if (s.free_slots.empty()) {
        ++s.window_stall_cycles;
        return;
      }
      if (!memory_->can_accept(h, s.cur_line, false, now)) {
        ++s.bp_stall_cycles;
        return;
      }
      const std::uint32_t slot = s.free_slots.back();
      s.free_slots.pop_back();
      s.slots[slot] = {now, kNoCycle, true};
      ++s.busy_slots;
      memory_->access(h, s.cur_line, false, now, slot);
      s.last_load_slot = slot;
      s.last_load_valid = true;
      ++s.reads;
      if (s.cur_shared) ++s.shared_ops;
    } else if (s.cur.kind == workload::InstrKind::kStore) {
      if (!memory_->can_accept(h, s.cur_line, true, now)) {
        ++s.bp_stall_cycles;
        return;
      }
      memory_->access(h, s.cur_line, true, now, 0);
      ++s.writes;
      if (s.cur_shared) ++s.shared_ops;
    }
    s.cur_valid = false;
    s.credit -= 1.0;
    ++s.retired;
    if (s.retired >= budget_) {
      s.halted = true;
      s.halt_at = now;
      return;
    }
  }
}

void PooledSystem::drain_completions(std::uint32_t h) {
  Slice& s = slices_[h];
  auto& done = memory_->completions(h);
  for (const pool::HostCompletion& c : done) {
    Slot& sl = s.slots[static_cast<std::uint32_t>(c.token)];
    sl.done = c.done;
    if (c.poisoned) ++s.poisons;
    if (window_open_ && sl.start >= window_start_) {
      s.lat.add(c.done - sl.start);
    }
  }
  done.clear();
}

void PooledSystem::step(Cycle now) {
  for (std::uint32_t h = 0; h < cfg_.n_hosts; ++h) step_slice(h, now);
  mem_wake_ = memory_->tick(now);
  for (std::uint32_t h = 0; h < cfg_.n_hosts; ++h) drain_completions(h);
}

Cycle PooledSystem::next_event_after(Cycle now) const {
  Cycle next = mem_wake_;
  for (const Slice& s : slices_) {
    if (!s.halted) return std::min(next, now + 1);
  }
  return next;
}

PooledStats PooledSystem::run(std::uint64_t warmup_instr,
                              std::uint64_t measure_instr) {
  budget_ = warmup_instr + measure_instr;
  const bool force = tick_every_cycle_ || env_flag("COAXIAL_TICK_EVERY_CYCLE");
  memory_->set_force_tick(force);
  if (memory_->engine_capable()) return run_quantum(warmup_instr, force);
  if (workers_ > 1) {
    throw std::invalid_argument(
        "sim::PooledSystem: shard workers require a direct fabric (a switch "
        "arbitrates all hosts in one shared structure and cannot be sharded)");
  }
  effective_workers_ = 1;
  return run_sequential(warmup_instr, force);
}

PooledStats PooledSystem::run_sequential(std::uint64_t warmup_instr,
                                         bool force) {
  Cycle now = 0;
  Cycle window_end = 0;
  Cycle total = 0;
  bool window_closed = false;
  while (true) {
    step(now);
    if (!window_open_) {
      bool all_warm = true;
      for (const Slice& s : slices_) {
        all_warm = all_warm && s.retired >= warmup_instr;
      }
      if (all_warm) {
        window_open_ = true;
        window_start_ = now;
        for (Slice& s : slices_) s.retired_base = s.retired;
      }
    }
    if (window_open_ && !window_closed) {
      bool all_done = true;
      for (const Slice& s : slices_) all_done = all_done && s.halted;
      if (all_done) {
        window_closed = true;
        window_end = now;
      }
    }
    if (window_closed && memory_->quiescent()) {
      total = now;
      break;
    }
    const Cycle next = next_event_after(now);
    now = (force || next == kNoCycle) ? now + 1 : std::max(next, now + 1);
  }
  return assemble_stats(window_end, total);
}

// Sharded quantum engine (DESIGN.md §14). Shard 0 is the pool side —
// the heaviest partition, owned by the coordinator so its pump overlaps
// the workers' host pumps; shards 1..N are the host slices. Inside a
// quantum [t, t+Q) every shard advances its own cycles (hosts step their
// slice every cycle while it retires; both sides event-skip when idle,
// clamped to the quantum). All cross-shard effects ride mailboxes drained
// at the barrier, and every barrier decision — window open/close,
// termination, the next quantum to simulate — is taken by the coordinator
// alone from state that is a pure function of the simulation, never of
// the worker count. Idle gaps are skipped in whole quanta (jumps round
// down to the barrier grid) so the event-driven and tick-every-cycle
// schedules visit the same barriers and agree byte-for-byte.
PooledStats PooledSystem::run_quantum(std::uint64_t warmup_instr, bool force) {
  memory_->set_engine(true);
  const Cycle q = memory_->min_cross_shard_latency();
  const std::size_t n_shards = static_cast<std::size_t>(cfg_.n_hosts) + 1;
  shard::WorkerTeam team(workers_, n_shards);
  effective_workers_ = static_cast<std::uint32_t>(team.workers());

  // Next cycle each shard needs to run (kNoCycle = asleep until mail).
  std::vector<Cycle> shard_next(n_shards, 0);
  Cycle t = 0;
  Cycle window_end = 0;
  Cycle total = 0;
  bool window_closed = false;

  while (true) {
    const Cycle t_end = t + q;
    const auto pump = [&](std::size_t sh) {
      if (sh == 0) {
        Cycle c = force ? t : std::max(t, shard_next[0]);
        while (c < t_end) {
          const Cycle w = memory_->pool_tick(c);
          if (force) {
            ++c;
            continue;
          }
          if (w == kNoCycle) {
            c = kNoCycle;
            break;
          }
          c = std::max(w, c + 1);
        }
        shard_next[0] = c;
        return;
      }
      const std::uint32_t h = static_cast<std::uint32_t>(sh - 1);
      // Completions delivered at the barrier must reach the slice's slot
      // table even when this shard is otherwise asleep.
      drain_completions(h);
      Cycle c = force ? t : std::max(t, shard_next[sh]);
      while (c < t_end) {
        drain_completions(h);
        step_slice(h, c);
        const Cycle w = memory_->host_tick(h, c);
        if (force || !slices_[h].halted) {
          ++c;  // A retiring slice steps every cycle.
          continue;
        }
        if (w == kNoCycle) {
          c = kNoCycle;
          break;
        }
        c = std::max(w, c + 1);
      }
      shard_next[sh] = c;
    };
    team.round(pump);

    // Barrier: every shard is paused. Mail exchange, global predicates and
    // the jump decision are coordinator-only and see a consistent system.
    Cycle effect;
    {
      COAXIAL_PROF_SCOPE(kShardDrain);
      effect = memory_->exchange_shard_mail(t_end);
    }
    if (!window_open_) {
      bool all_warm = true;
      for (const Slice& s : slices_) {
        all_warm = all_warm && s.retired >= warmup_instr;
      }
      if (all_warm) {
        window_open_ = true;
        window_start_ = t_end;  // Barrier-rounded (the engine's grid).
        for (Slice& s : slices_) s.retired_base = s.retired;
      }
    }
    if (window_open_ && !window_closed) {
      bool all_done = true;
      for (const Slice& s : slices_) all_done = all_done && s.halted;
      if (all_done) {
        window_closed = true;
        // Exact: the cycle the last slice crossed its budget. A degenerate
        // warmup==budget run can halt before the window's barrier opens it.
        for (const Slice& s : slices_) {
          window_end = std::max(window_end, s.halt_at);
        }
        window_end = std::max(window_end, window_start_);
      }
    }
    if (window_closed && memory_->quiescent()) {
      total = t_end;
      break;
    }
    // Jump: skip whole quanta nobody needs, rounding down to the barrier
    // grid so both scheduler modes visit identical barrier sequences.
    Cycle global_next = effect;
    for (const Cycle c : shard_next) global_next = std::min(global_next, c);
    if (effect != kNoCycle) {
      for (Cycle& c : shard_next) c = std::min(c, effect);
    }
    if (force || global_next == kNoCycle) {
      t = t_end;
    } else {
      t = std::max(t_end, global_next / q * q);
    }
  }
  worker_prof_totals_ = team.shutdown();
  return assemble_stats(window_end, total);
}

PooledStats PooledSystem::assemble_stats(Cycle window_end, Cycle total) const {
  PooledStats st;
  st.window_cycles = window_end - window_start_;
  st.total_cycles = total;
  FixedHistogram merged;
  double ipc_sum = 0;
  for (const Slice& s : slices_) {
    const std::uint64_t instr = s.retired - s.retired_base;
    st.instructions += instr;
    const double ipc = st.window_cycles != 0
                           ? static_cast<double>(instr) /
                                 static_cast<double>(st.window_cycles)
                           : 0.0;
    st.host_ipc.push_back(ipc);
    ipc_sum += ipc;
    merged.merge(s.lat);
  }
  st.ipc_mean = ipc_sum / static_cast<double>(cfg_.n_hosts);
  if (merged.count() != 0) {
    st.read_p50_ns = cycles_to_ns(merged.percentile(0.50));
    st.read_p99_ns = cycles_to_ns(merged.percentile(0.99));
  }
  st.pool = memory_->counters();
  return st;
}

void PooledSystem::register_metrics() {
  const obs::Scope pool = obs::Scope(&metrics_, "").sub("pool", cfg_.enabled());
  const pool::PooledMemory* mem = memory_.get();
  const std::uint32_t s_devs = cfg_.shared_devices;
  const std::uint32_t n_hosts = cfg_.n_hosts;

  pool.expose_counter("hosts", [n_hosts] { return std::uint64_t{n_hosts}; });

  pool.expose_counter("dir/occupancy", [mem, s_devs] {
    std::uint64_t v = 0;
    for (std::uint32_t d = 0; d < s_devs; ++d) v += mem->directory(d).occupancy();
    return v;
  });
  pool.expose_counter("dir/inserts", [mem, s_devs] {
    std::uint64_t v = 0;
    for (std::uint32_t d = 0; d < s_devs; ++d) v += mem->directory(d).inserts();
    return v;
  });
  pool.expose_counter("dir/evictions", [mem, s_devs] {
    std::uint64_t v = 0;
    for (std::uint32_t d = 0; d < s_devs; ++d) v += mem->directory(d).evictions();
    return v;
  });
  for (std::uint32_t d = 0; d < s_devs; ++d) {
    const obs::Scope ds = pool.sub("dev/" + obs::idx(d));
    ds.expose_counter("occupancy",
                      [mem, d] { return std::uint64_t{mem->directory(d).occupancy()}; });
    ds.expose_counter("inserts", [mem, d] { return mem->directory(d).inserts(); });
    ds.expose_counter("evictions",
                      [mem, d] { return mem->directory(d).evictions(); });
  }

  // Counter structs are assembled by value from their per-shard halves, so
  // the probes call the accessor per sample instead of caching a pointer.
  const obs::Scope coh = pool.sub("coh");
  coh.expose_counter("txns", [mem] { return mem->counters().txns; });
  coh.expose_counter("invals_sent", [mem] { return mem->counters().invals_sent; });
  coh.expose_counter("invals_acked",
                     [mem] { return mem->counters().invals_acked; });
  coh.expose_counter("recalls_dirty",
                     [mem] { return mem->counters().recalls_dirty; });
  coh.expose_counter("recall_writebacks",
                     [mem] { return mem->counters().recall_writebacks; });
  coh.expose_counter("upgrades_silent",
                     [mem] { return mem->counters().upgrades_silent; });
  coh.expose_counter("pingpong",
                     [mem] { return mem->counters().pingpong_transitions; });

  const obs::Scope adm = pool.sub("admitted");
  adm.expose_counter("shared_reads",
                     [mem] { return mem->counters().shared_reads; });
  adm.expose_counter("shared_writes",
                     [mem] { return mem->counters().shared_writes; });
  adm.expose_counter("private_reads",
                     [mem] { return mem->counters().private_reads; });
  adm.expose_counter("private_writes",
                     [mem] { return mem->counters().private_writes; });

  for (std::uint32_t h = 0; h < n_hosts; ++h) {
    const obs::Scope hs = pool.sub("host/" + obs::idx(h));
    const Slice* s = &slices_[h];
    hs.expose_counter("instructions", [s] { return s->retired; });
    hs.expose_counter("reads", [s] { return s->reads; });
    hs.expose_counter("writes", [s] { return s->writes; });
    hs.expose_counter("shared", [s] { return s->shared_ops; });
    hs.expose_counter("bp_stall_cycles", [s] { return s->bp_stall_cycles; });
    hs.expose_counter("dep_stall_cycles", [s] { return s->dep_stall_cycles; });
    hs.expose_counter("window_stall_cycles",
                      [s] { return s->window_stall_cycles; });
    hs.expose_counter("invals_received",
                      [mem, h] { return mem->host_counters(h).invals_received; });
    hs.expose_counter("acks_sent",
                      [mem, h] { return mem->host_counters(h).acks_sent; });
    hs.expose_fixed_histogram("lat", s->lat);
  }

  // RAS observability is opt-in with the fault plan, like sim::System's
  // ras/* subtree: fault-free pooled runs keep their metric-tree shape.
  const obs::Scope rs =
      obs::Scope(&metrics_, "").sub("ras", cfg_.fault_plan.enabled());
  rs.expose_counter("crc_errors",
                    [mem] { return mem->ras_counters().crc_errors; });
  rs.expose_counter("replays", [mem] { return mem->ras_counters().replays; });
  rs.expose_counter("poisons_injected",
                    [mem] { return mem->ras_counters().poisons_injected; });
  rs.expose_counter("degraded_cycles",
                    [mem] { return mem->ras_counters().degraded_cycles; });
  const std::vector<Slice>* sl = &slices_;
  rs.expose_counter("poisons_consumed", [sl] {
    std::uint64_t total = 0;
    for (const Slice& s : *sl) total += s.poisons;
    return total;
  });
  // Device-failure lifecycle (DESIGN.md §13), pool-relevant fields only.
  const obs::Scope av = rs.sub("avail", cfg_.fault_plan.device_failure());
  av.expose_counter("devices_offlined",
                    [mem] { return mem->avail_counters().devices_offlined; });
  av.expose_counter("bounced_reads",
                    [mem] { return mem->avail_counters().bounced_reads; });
  av.expose_counter("lost_writes",
                    [mem] { return mem->avail_counters().lost_writes; });
  av.expose_counter("lost_dirty_pages",
                    [mem] { return mem->avail_counters().lost_dirty_pages; });
  av.expose_counter("recovery_invals",
                    [mem] { return mem->avail_counters().recovery_invals; });
  av.expose_counter("refused_txns",
                    [mem] { return mem->avail_counters().refused_txns; });
}

}  // namespace coaxial::sim
