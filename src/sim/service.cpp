#include "sim/service.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/env.hpp"
#include "common/validate.hpp"

namespace coaxial::sim {

void ServiceConfig::validate() const {
  constexpr const char* kOwner = "sim::ServiceConfig";
  validate::require_nonzero(kOwner, "measure_cycles", measure_cycles);
  validate::require_nonzero(kOwner, "hist_bucket_cycles", hist_bucket_cycles);
  validate::require_nonzero(kOwner, "hist_buckets", hist_buckets);
  if (regulate) {
    validate::require_positive(kOwner, "reg_fraction", reg_fraction);
    validate::require_nonzero(kOwner, "reg_burst_cycles", reg_burst_cycles);
  }
  for (const ServiceTenant& t : tenants) {
    t.arrival.validate();
    for (const SloTarget& s : t.slo) {
      validate::require_in_range(kOwner, "slo.quantile", s.quantile, 0.0, 1.0);
      validate::require_positive(kOwner, "slo.target_ns", s.target_ns);
    }
  }
}

ServiceDriver::ServiceDriver(const sys::SystemConfig& cfg, const ServiceConfig& svc,
                             std::uint64_t seed)
    : cfg_(cfg),
      svc_(svc),
      seed_(seed),
      all_lat_(svc.hist_bucket_cycles, svc.hist_buckets) {
  svc_.validate();
  if (!svc_.enabled()) {
    throw std::invalid_argument("ServiceDriver needs at least one tenant");
  }
  horizon_ = svc_.warmup_cycles + svc_.measure_cycles;

  memory_ = cfg_.make_memory(obs::Scope(&metrics_, "mem"));

  const double peak_bpc = bytes_per_cycle(memory_->peak_gbps());
  const std::uint32_t n = static_cast<std::uint32_t>(svc_.tenants.size());
  if (svc_.regulate) {
    regulator_ = std::make_unique<calm::BandwidthRegulator>(
        peak_bpc, n, svc_.reg_fraction, svc_.reg_burst_cycles);
  }

  tenants_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TenantState& t = tenants_.emplace_back(svc_.hist_bucket_cycles, svc_.hist_buckets);
    const workload::ArrivalConfig& a = svc_.tenants[i].arrival;
    const double rate = a.offered_load * peak_bpc / kLineBytes;
    t.gen = std::make_unique<workload::ArrivalGenerator>(a, rate, i, seed_);
    t.next = t.gen->next();
    t.exhausted = t.next.at >= horizon_;
  }

  register_metrics();
}

void ServiceDriver::register_metrics() {
  // Everything lives under svc/*, behind the shared feature-gated Scope
  // (obs::Scope::sub(name, enabled)); the subtree exists only when an
  // open-loop config was supplied, which is what keeps the closed-loop
  // golden stats tree byte-identical (the golden-inertness test).
  const obs::Scope svc = obs::Scope(&metrics_, "").sub("svc", svc_.enabled());
  svc.expose_counter("horizon_cycles", [this] { return horizon_; });
  svc.expose_counter("warmup_cycles", [this] { return svc_.warmup_cycles; });
  svc.expose_counter("tenants", [this] {
    return static_cast<std::uint64_t>(tenants_.size());
  });

  auto sum = [this](std::uint64_t TenantState::* field) {
    std::uint64_t v = 0;
    for (const TenantState& t : tenants_) v += t.*field;
    return v;
  };
  const obs::Scope all = svc.sub("all");
  all.expose_counter("generated", [sum] { return sum(&TenantState::generated); });
  all.expose_counter("admitted", [sum] { return sum(&TenantState::admitted); });
  all.expose_counter("completed", [sum] { return sum(&TenantState::completed); });
  all.expose_counter("reg_stall_cycles",
                     [sum] { return sum(&TenantState::reg_stall_cycles); });
  all.expose_counter("bp_stall_cycles",
                     [sum] { return sum(&TenantState::bp_stall_cycles); });
  all.expose_counter("backlog_at_end", [this] {
    std::uint64_t v = 0;
    for (const TenantState& t : tenants_) v += t.queue.size();
    return v;
  });
  all.expose_fixed_histogram("lat", all_lat_);

  for (std::uint32_t i = 0; i < tenants_.size(); ++i) {
    // tenants_ is fully built before this loop and never resized after, so
    // the captured element pointers stay valid for the registry's lifetime.
    const TenantState* t = &tenants_[i];
    const obs::Scope tn = svc.sub("tenant/" + obs::idx(i));
    tn.expose_counter("generated", [t] { return t->generated; });
    tn.expose_counter("admitted", [t] { return t->admitted; });
    tn.expose_counter("reads", [t] { return t->reads; });
    tn.expose_counter("writes", [t] { return t->writes; });
    tn.expose_counter("completed", [t] { return t->completed; });
    tn.expose_counter("reg_stall_cycles", [t] { return t->reg_stall_cycles; });
    tn.expose_counter("bp_stall_cycles", [t] { return t->bp_stall_cycles; });
    tn.expose_counter("backlog_at_end", [t] {
      return static_cast<std::uint64_t>(t->queue.size());
    });
    tn.expose_fixed_histogram("lat", t->lat);
  }
}

void ServiceDriver::step(Cycle now) {
  // Phase 1: move due arrivals into the per-tenant injection queues.
  // Arrivals are generated only for cycles inside [0, horizon); the
  // pre-drawn first request at/past the horizon is discarded uncounted.
  for (TenantState& t : tenants_) {
    while (!t.exhausted && t.next.at <= now) {
      ++t.generated;
      t.queue.push_back({t.next.at, t.next.line, t.next.is_write});
      t.next = t.gen->next();
      if (t.next.at >= horizon_) t.exhausted = true;
    }
  }

  // Phase 2: admission, tenants in index order, head-of-line per tenant.
  // A blocked head charges exactly one stall cycle to whichever resource
  // denied it (regulation credit vs memory backpressure). Attempt cycles —
  // every cycle a queue is non-empty before the horizon — are identical in
  // event-driven and lockstep modes, which keeps the regulator's lazy
  // credit accrual byte-identical across modes.
  if (now < horizon_) {
    for (std::uint32_t i = 0; i < tenants_.size(); ++i) {
      TenantState& t = tenants_[i];
      while (!t.queue.empty()) {
        const Queued& head = t.queue.front();
        if (regulator_ != nullptr &&
            !regulator_->has_credit(i, kLineBytes, now)) {
          ++t.reg_stall_cycles;
          break;
        }
        if (!memory_->can_accept(head.line, head.is_write, now)) {
          ++t.bp_stall_cycles;
          break;
        }
        if (regulator_ != nullptr) regulator_->consume(i, kLineBytes, now);
        ++t.admitted;
        if (head.is_write) {
          ++t.writes;
          memory_->access(head.line, /*is_write=*/true, now, /*token=*/0);
        } else {
          ++t.reads;
          std::uint32_t slot;
          if (!free_slots_.empty()) {
            slot = free_slots_.back();
            free_slots_.pop_back();
          } else {
            slot = static_cast<std::uint32_t>(inflight_.size());
            inflight_.emplace_back();
          }
          inflight_[slot] = {i, head.at, true};
          ++inflight_count_;
          memory_->access(head.line, /*is_write=*/false, now, slot);
        }
        t.queue.pop_front();
      }
    }
  }

  // Phase 3: advance the memory system (after admission, so the wake bound
  // accounts for the accesses just issued).
  mem_wake_ = memory_->tick(now);

  // Phase 4: drain read completions. Latency is arrival-to-`done` — both
  // endpoints are mode-invariant, so the histograms never see which cycle
  // the host happened to drain on.
  auto& comps = memory_->completions();
  for (const mem::MemCompletion& c : comps) {
    Inflight& fl = inflight_[static_cast<std::size_t>(c.token)];
    TenantState& t = tenants_[fl.tenant];
    ++t.completed;
    if (fl.at >= svc_.warmup_cycles) t.lat.add(c.done - fl.at);
    fl.used = false;
    free_slots_.push_back(static_cast<std::uint32_t>(c.token));
    --inflight_count_;
  }
  comps.clear();
}

Cycle ServiceDriver::next_event_after(Cycle now) const {
  Cycle next = kNoCycle;
  for (const TenantState& t : tenants_) {
    if (!t.exhausted) next = std::min(next, t.next.at);
    // A non-empty queue retries admission every cycle until the horizon.
    if (!t.queue.empty() && now + 1 < horizon_) next = std::min(next, now + 1);
  }
  if (mem_wake_ != kNoCycle) next = std::min(next, mem_wake_);
  return next;
}

void ServiceDriver::run() {
  if (env_flag("COAXIAL_TICK_EVERY_CYCLE")) tick_every_cycle_ = true;
  memory_->set_force_tick(tick_every_cycle_);

  Cycle now = 0;
  while (now < horizon_ || inflight_count_ > 0) {
    step(now);
    if (tick_every_cycle_) {
      ++now;
      continue;
    }
    const Cycle next = next_event_after(now);
    if (next == kNoCycle) {
      if (inflight_count_ > 0) {
        throw std::logic_error(
            "ServiceDriver: memory went idle with reads inflight");
      }
      if (now >= horizon_) break;
      now = horizon_;  // Nothing can happen before the horizon: idle out.
    } else {
      now = std::max(next, now + 1);
    }
  }

  // Merge order is fixed (tenant index), though any order would produce
  // identical bytes — merge is associative and commutative.
  all_lat_.reset();
  for (const TenantState& t : tenants_) all_lat_.merge(t.lat);
  evaluate_slos();

  stats_ = {};
  stats_.cycles = svc_.measure_cycles;
  for (const TenantState& t : tenants_) {
    stats_.generated += t.generated;
    stats_.admitted += t.admitted;
    stats_.completed += t.completed;
    stats_.backlog_at_end += t.queue.size();
    stats_.reg_stall_cycles += t.reg_stall_cycles;
    stats_.bp_stall_cycles += t.bp_stall_cycles;
  }
  // Offered/achieved rates are over the full arrival horizon (warmup only
  // gates what the histograms record).
  const double horizon_ns = cycles_to_ns(horizon_);
  stats_.offered_gbps = static_cast<double>(stats_.generated) * kLineBytes / horizon_ns;
  stats_.achieved_gbps = static_cast<double>(stats_.admitted) * kLineBytes / horizon_ns;
  stats_.p50_ns = cycles_to_ns(all_lat_.percentile(0.50));
  stats_.p90_ns = cycles_to_ns(all_lat_.percentile(0.90));
  stats_.p99_ns = cycles_to_ns(all_lat_.percentile(0.99));
  stats_.p999_ns = cycles_to_ns(all_lat_.percentile(0.999));
  stats_.max_ns = cycles_to_ns(all_lat_.max());
  stats_.mean_ns = all_lat_.mean() * kNsPerCycle;
  stats_.mem = memory_->snapshot();
}

void ServiceDriver::evaluate_slos() {
  slo_.clear();
  for (std::uint32_t i = 0; i < tenants_.size(); ++i) {
    const std::vector<SloTarget>& targets = svc_.tenants[i].slo;
    for (std::uint32_t j = 0; j < targets.size(); ++j) {
      SloCheck c;
      c.tenant = i;
      c.quantile = targets[j].quantile;
      c.target_ns = targets[j].target_ns;
      c.achieved_ns = cycles_to_ns(tenants_[i].lat.percentile(c.quantile));
      c.pass = c.achieved_ns <= c.target_ns;
      slo_.push_back(c);

      const std::string base =
          "svc/tenant/" + obs::idx(i) + "/slo/" + obs::idx(j);
      metrics_.gauge(base + "/quantile").set(c.quantile);
      metrics_.gauge(base + "/target_ns").set(c.target_ns);
      metrics_.gauge(base + "/achieved_ns").set(c.achieved_ns);
      metrics_.counter(base + "/pass").set(c.pass ? 1 : 0);
    }
  }
}

}  // namespace coaxial::sim
