#include "sim/system.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/env.hpp"
#include "obs/profiler.hpp"

namespace coaxial::sim {

namespace {

mem::MemorySnapshot snapshot_delta(const mem::MemorySnapshot& now,
                                   const mem::MemorySnapshot& base) {
  mem::MemorySnapshot d = now;
  d.reads -= base.reads;
  d.writes -= base.writes;
  d.dram_service_sum -= base.dram_service_sum;
  d.dram_queue_sum -= base.dram_queue_sum;
  d.cxl_interface_sum -= base.cxl_interface_sum;
  d.cxl_queue_sum -= base.cxl_queue_sum;
  d.data_bus_busy -= base.data_bus_busy;
  return d;
}

calm::CalmStats calm_delta(const calm::CalmStats& now, const calm::CalmStats& base) {
  calm::CalmStats d;
  d.decisions = now.decisions - base.decisions;
  d.probes = now.probes - base.probes;
  d.true_positives = now.true_positives - base.true_positives;
  d.false_positives = now.false_positives - base.false_positives;
  d.true_negatives = now.true_negatives - base.true_negatives;
  d.false_negatives = now.false_negatives - base.false_negatives;
  return d;
}

constexpr Cycle kRetryInterval = 2;  ///< L2-MSHR-full replay spacing.

}  // namespace

void System::build_shared_structures() {
  const sys::MicroarchConfig& u = cfg_.uarch;
  cfg_.fault_plan.validate();  // Fail fast even for topologies that ignore it.
  cfg_.tiering.validate();
  ras_enabled_ = cfg_.fault_plan.enabled();
  const obs::Scope root(&metrics_, "");
  memory_ = cfg_.make_memory(root.sub("mem"));
  calm_ = std::make_unique<calm::Decider>(
      cfg_.calm, bytes_per_cycle(memory_->peak_gbps()), u.cores, seed_ ^ 0xca1f,
      root.sub("calm"));
  for (std::uint32_t c = 0; c < u.cores; ++c) {
    l1_.push_back(std::make_unique<cache::Cache>(u.l1_kb * 1024ull, u.l1_ways,
                                                 cache::ReplacementPolicy::kLru,
                                                 root.sub("cache/l1/" + obs::idx(c))));
    l1_mshr_.push_back(std::make_unique<cache::Mshr>(u.l1_mshrs));
    l2_.push_back(std::make_unique<cache::Cache>(u.l2_kb * 1024ull, u.l2_ways,
                                                 cache::ReplacementPolicy::kLru,
                                                 root.sub("cache/l2/" + obs::idx(c))));
    l2_mshr_.push_back(std::make_unique<cache::Mshr>(u.l2_mshrs));
    llc_.push_back(std::make_unique<cache::Cache>(
        static_cast<std::size_t>(u.llc_mb_per_core) << 20, u.llc_ways,
        u.llc_replacement, root.sub("cache/llc/" + obs::idx(c))));
    llc_mshr_.push_back(std::make_unique<cache::Mshr>(u.llc_mshrs_per_slice));
  }
  // Measurement-window accumulators live in the registry so RunStats is a
  // view over it rather than a parallel set of hand-summed fields.
  const obs::Scope run = root.sub("run");
  ops_finished_ = run.counter("l2_miss/ops");
  lat_total_sum_ = run.gauge("l2_miss/lat_total_sum");
  lat_onchip_sum_ = run.gauge("l2_miss/lat_onchip_sum");
  lat_pending_sum_ = run.gauge("l2_miss/lat_pending_sum");
  lat_dram_service_sum_ = run.gauge("l2_miss/lat_dram_service_sum");
  lat_dram_queue_sum_ = run.gauge("l2_miss/lat_dram_queue_sum");
  lat_cxl_interface_sum_ = run.gauge("l2_miss/lat_cxl_interface_sum");
  lat_cxl_queue_sum_ = run.gauge("l2_miss/lat_cxl_queue_sum");
  llc_hits_ = run.counter("llc/hits");
  llc_misses_ = run.counter("llc/misses");
  l2_miss_hist_ = run.histogram("l2_miss/latency_cycles");
  // RAS observability is opt-in with the fault plan: the feature-gated
  // Scope is inert for fault-free runs, so the metrics-tree shape (and the
  // golden baseline) is unchanged while registration stays unconditional.
  const obs::Scope rs = root.sub("ras", ras_enabled_);
  rs.expose_counter("crc_errors",
                    [this] { return memory_->ras_counters().crc_errors; });
  rs.expose_counter("replays", [this] { return memory_->ras_counters().replays; });
  rs.expose_counter("poisons_injected",
                    [this] { return memory_->ras_counters().poisons_injected; });
  rs.expose_counter("degraded_cycles",
                    [this] { return memory_->ras_counters().degraded_cycles; });
  rs.expose_counter("timeouts", [this] { return memory_->ras_counters().timeouts; });
  rs.expose_counter("backoff_retries",
                    [this] { return memory_->ras_counters().backoff_retries; });
  rs.expose_counter("dup_drops", [this] { return memory_->ras_counters().dup_drops; });
  rs.expose_counter("poisoned_writes",
                    [this] { return memory_->ras_counters().poisoned_writes; });
  // Machine checks fired by cores consuming poisoned data (measurement
  // window; reset with the other per-window core counters).
  rs.expose_counter("poisons_consumed", [this] {
    std::uint64_t total = 0;
    for (const auto& core : cores_) total += core->machine_checks();
    return total;
  });
  for (std::uint32_t c = 0; c < u.cores; ++c) {
    rs.expose_counter("core/" + obs::idx(c) + "/machine_checks",
                      [this, c] { return cores_[c]->machine_checks(); });
  }
  // Device-failure lifecycle (DESIGN.md §13): gated one level deeper on a
  // planned episode, so plain CRC/stall plans keep their metric-tree shape.
  const obs::Scope av = rs.sub("avail", cfg_.fault_plan.device_failure());
  av.expose_counter("fail_errors",
                    [this] { return memory_->avail_counters().fail_errors; });
  av.expose_counter("health_samples",
                    [this] { return memory_->avail_counters().health_samples; });
  av.expose_counter("monitor_trips",
                    [this] { return memory_->avail_counters().monitor_trips; });
  av.expose_counter("devices_offlined",
                    [this] { return memory_->avail_counters().devices_offlined; });
  av.expose_counter("bounced_reads",
                    [this] { return memory_->avail_counters().bounced_reads; });
  av.expose_counter("lost_writes",
                    [this] { return memory_->avail_counters().lost_writes; });
  av.expose_counter("evac_jobs",
                    [this] { return memory_->avail_counters().evac_jobs; });
  av.expose_counter("evac_aborts",
                    [this] { return memory_->avail_counters().evac_aborts; });
  av.expose_counter("evac_pages_out",
                    [this] { return memory_->avail_counters().evac_pages_out; });
  av.expose_counter("evac_pages_in",
                    [this] { return memory_->avail_counters().evac_pages_in; });
  av.expose_counter("pages_retired",
                    [this] { return memory_->avail_counters().pages_retired; });
  av.expose_counter("retired_touches",
                    [this] { return memory_->avail_counters().retired_touches; });
  // Like ras/*, the tier/* subtree is opt-in with the feature. Counters are
  // lifetime totals sampled at snapshot time.
  const obs::Scope ts = root.sub("tier", cfg_.tiering.enabled);
  ts.expose_counter("epochs", [this] { return memory_->tier_counters().epochs; });
  ts.expose_counter("jobs_started",
                    [this] { return memory_->tier_counters().jobs_started; });
  ts.expose_counter("installs", [this] { return memory_->tier_counters().installs; });
  ts.expose_counter("promotions",
                    [this] { return memory_->tier_counters().promotions; });
  ts.expose_counter("demotions",
                    [this] { return memory_->tier_counters().demotions; });
  ts.expose_counter("migration_reads",
                    [this] { return memory_->tier_counters().migration_reads; });
  ts.expose_counter("migration_writes",
                    [this] { return memory_->tier_counters().migration_writes; });
  ts.expose_counter("migration_bytes",
                    [this] { return memory_->tier_counters().migration_bytes; });
  ts.expose_counter("remap_occupancy",
                    [this] { return memory_->tier_counters().remap_occupancy; });
  ts.expose_counter("fast/accesses",
                    [this] { return memory_->tier_counters().fast_accesses; });
  ts.expose_counter("capacity/accesses",
                    [this] { return memory_->tier_counters().capacity_accesses; });
  ts.expose("fast/fraction",
            [this] { return memory_->tier_counters().fast_fraction(); });
  for (std::uint32_t p = 0; p < memory_->ports(); ++p) {
    port_tile_.push_back(mesh_.memory_tile(p, memory_->ports()));
  }
  stream_table_.assign(u.cores,
                       std::vector<Addr>(std::max(1u, u.prefetch_streams), ~Addr{0}));
  stream_victim_.assign(u.cores, 0);
  // Hot-path containers: size once so steady state never reallocates.
  ops_.reserve(1024);
  free_ops_.reserve(1024);
  pending_mem_.reserve(256);
  pending_wb_.reserve(256);

  // Wake-up spine: one pending-wake slot per phase (events, pump, cores).
  core_slots_.resize(u.cores);
}

System::System(const sys::SystemConfig& cfg,
               const std::vector<workload::WorkloadParams>& per_core_workloads,
               std::uint64_t seed)
    : cfg_(cfg),
      mesh_(4, 3, cfg.uarch.noc_cycles_per_hop),
      n_slices_(cfg.uarch.cores),
      seed_(seed),
      wl_params_(per_core_workloads) {
  assert(per_core_workloads.size() >= cfg_.uarch.cores);
  build_shared_structures();
  for (std::uint32_t c = 0; c < cfg_.uarch.cores; ++c) {
    cores_.push_back(std::make_unique<core::Core>(
        c, cfg_.uarch, workload::Generator(per_core_workloads[c], c, seed)));
  }
}

System::System(const sys::SystemConfig& cfg,
               std::vector<std::unique_ptr<workload::InstrSource>> sources,
               const std::vector<double>& max_ipc, std::uint64_t seed)
    : cfg_(cfg),
      mesh_(4, 3, cfg.uarch.noc_cycles_per_hop),
      n_slices_(cfg.uarch.cores),
      seed_(seed) {
  assert(sources.size() >= cfg_.uarch.cores);
  assert(max_ipc.size() >= cfg_.uarch.cores);
  build_shared_structures();
  for (std::uint32_t c = 0; c < cfg_.uarch.cores; ++c) {
    cores_.push_back(std::make_unique<core::Core>(c, cfg_.uarch, std::move(sources[c]),
                                                  max_ipc[c]));
  }
}

System::~System() = default;

// ------------------------------------------------------------- op lifetime

std::uint32_t System::alloc_op() {
  if (!free_ops_.empty()) {
    const std::uint32_t id = free_ops_.back();
    free_ops_.pop_back();
    ops_[id] = MemOp{};
    return id;
  }
  ops_.emplace_back();
  return static_cast<std::uint32_t>(ops_.size() - 1);
}

void System::free_op(std::uint32_t id) {
  ops_[id].free = true;
  free_ops_.push_back(id);
}

void System::maybe_free_joined_op(std::uint32_t id) {
  MemOp& op = ops_[id];
  if (!op.finished) return;
  // A CALM op lives until both legs have landed so the late leg can be
  // recognised and discarded; serial ops have a single (memory) leg.
  if (op.calm && !(op.llc_resolved && op.mem_arrived)) return;
  free_op(id);
}

// ---------------------------------------------------------- wake-up spine

Cycle System::next_wake_cycle() const {
  Cycle next = std::min(events_slot_.at, pump_slot_.at);
  const std::uint32_t active = cfg_.uarch.active_cores;
  for (std::uint32_t c = 0; c < active; ++c) {
    next = std::min(next, core_slots_[c].at);
  }
  return next;
}

void System::dispatch_due(Cycle now) {
  // Repeated min-extraction in phase order: after every handler returns,
  // rescan from the first phase, because a handler may have armed an
  // earlier phase (or itself) at the current cycle. Each slot maps to a
  // unique phase priority, so this is exactly the dispatch order a
  // (cycle, priority) heap would produce.
  const std::uint32_t active = cfg_.uarch.active_cores;
  for (;;) {
    if (events_slot_.at <= now) {
      events_slot_.at = kNoCycle;
      ++sched_dispatches_;
      wake_events(now);
      continue;
    }
    if (pump_slot_.at <= now) {
      pump_slot_.at = kNoCycle;
      ++sched_dispatches_;
      wake_pump(now);
      continue;
    }
    std::uint32_t c = 0;
    while (c < active && core_slots_[c].at > now) ++c;
    if (c == active) return;
    core_slots_[c].at = kNoCycle;
    ++sched_dispatches_;
    wake_core(c, now);
  }
}

void System::wake_events(Cycle now) {
  COAXIAL_PROF_SCOPE(kEventDrain);
  events_slot_ = WakeSlot{};
  // The drain consumes same-cycle events pushed by its own handlers, so
  // schedule() must not re-arm the slot for those (it would fire a second,
  // redundant drain this cycle and leak the slot's dedupe invariant).
  in_events_drain_ = true;
  while (!events_.empty() && events_.top().cycle <= now) {
    const Event ev = events_.top();
    events_.pop();
    handle_event(ev);
  }
  in_events_drain_ = false;
  if (!events_.empty()) {
    arm(events_slot_, events_.top().cycle);
  }
}

void System::wake_pump(Cycle now) {
  pump_slot_ = WakeSlot{};
  pump_memory(now);  // Re-arms the slot from the memory system's own bound.
}

void System::wake_core(std::uint32_t c, Cycle now) {
  core_slots_[c] = WakeSlot{};
  cores_[c]->tick(now, *this);
  arm(core_slots_[c], cores_[c]->next_wake(now));
}

// ------------------------------------------------------------- event plumbing

void System::schedule(Cycle cycle, EventKind kind, std::uint32_t a, Addr line,
                      std::uint64_t aux) {
  events_.push(Event{cycle, kind, a, line, aux});
  if (in_events_drain_ && cycle <= now_) return;  // Active drain consumes it.
  // Events landing at or before the current cycle outside the drain phase
  // are handled at the next cycle's drain, exactly as the legacy loop did.
  arm(events_slot_, std::max(cycle, now_ + 1));
}

void System::handle_event(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kL2Lookup:
      handle_l2_lookup(ev.cycle, ev.a, ev.line, static_cast<Addr>(ev.aux));
      break;
    case EventKind::kLlcResult:
      handle_llc_result(ev.cycle, ev.a);
      break;
    case EventKind::kMemIssue: {
      MemOp& op = ops_[ev.a];
      if (op.t_mem_attempt == 0) op.t_mem_attempt = ev.cycle;
      if (memory_->can_accept(op.line, /*is_write=*/false, ev.cycle)) {
        op.t_mem_issued = ev.cycle;
        memory_->access(op.line, /*is_write=*/false, ev.cycle, ev.a);
        // The memory system has new work: make sure the pump runs this
        // cycle so controllers see it on the legacy schedule.
        arm(pump_slot_, now_);
      } else {
        park_pending_mem(ev.a, PendingStage::kNeedAdmission, ev.cycle);
      }
      break;
    }
    case EventKind::kMemArrive:
      handle_mem_arrive(ev.cycle, ev.a);
      break;
    case EventKind::kOpFinish:
      finish_op(ev.cycle, ev.a, /*data_from_memory=*/ev.aux != 0);
      break;
    case EventKind::kL1Fill:
      fill_l1(ev.a, ev.line, ev.cycle);
      break;
  }
}

// --------------------------------------------------------------- MemoryPort

core::IssueResult System::issue_load(std::uint32_t c, Addr addr, Addr pc,
                                     std::uint64_t waiter, Cycle now) {
  const Addr line = addr / kLineBytes;
  cache::Mshr& mshr = *l1_mshr_[c];
  if (mshr.holds(line)) {
    mshr.on_miss(line, waiter);
    return core::IssueResult::kAccepted;
  }
  if (l1_[c]->lookup(line)) return core::IssueResult::kHitL1;
  if (mshr.full()) return core::IssueResult::kRetry;
  mshr.on_miss(line, waiter);
  schedule(now + cfg_.uarch.l1_latency, EventKind::kL2Lookup, c, line, pc);
  return core::IssueResult::kAccepted;
}

core::IssueResult System::issue_store(std::uint32_t c, Addr addr, Addr pc,
                                      std::uint64_t waiter, Cycle now) {
  const Addr line = addr / kLineBytes;
  cache::Mshr& mshr = *l1_mshr_[c];
  if (mshr.holds(line)) {
    mshr.on_miss(line, waiter);
    return core::IssueResult::kAccepted;
  }
  if (l1_[c]->write(line)) return core::IssueResult::kHitL1;
  if (mshr.full()) return core::IssueResult::kRetry;
  // Write-allocate: fetch ownership of the line (RFO), then mark dirty.
  mshr.on_miss(line, waiter);
  schedule(now + cfg_.uarch.l1_latency, EventKind::kL2Lookup, c, line, pc);
  return core::IssueResult::kAccepted;
}

// ------------------------------------------------------------- L2 and below

void System::handle_l2_lookup(Cycle t, std::uint32_t c, Addr line, Addr pc) {
  maybe_prefetch(t, c, line);
  if (l2_[c]->lookup(line)) {
    // Demand hit on a line a prefetch filled poisoned: the core consumes
    // the poison (machine check), then the detecting level scrubs it.
    if (ras_enabled_ && l2_[c]->poisoned(line)) {
      cores_[c]->record_machine_check();
      l2_[c]->clear_poison(line);
    }
    schedule(t + cfg_.uarch.l2_latency, EventKind::kL1Fill, c, line);
    return;
  }
  cache::Mshr& mshr = *l2_mshr_[c];
  if (mshr.holds(line)) {
    mshr.on_miss(line, 0);
    return;  // Same-line op already in flight; L2 fill will satisfy the L1.
  }
  if (mshr.full()) {
    // Structural stall: replay shortly. A replayed lookup may legitimately
    // hit if the line was filled in the meantime.
    schedule(t + kRetryInterval, EventKind::kL2Lookup, c, line, pc);
    return;
  }
  mshr.on_miss(line, 0);
  issue_l2_miss_op(t, c, line, pc, /*prefetch=*/false);
}

void System::maybe_prefetch(Cycle t, std::uint32_t c, Addr line) {
  // ChampSim-style L2 stream prefetcher: a demand access to the successor
  // of a tracked line advances the stream and prefetches the next
  // `prefetch_degree` lines into L2/LLC.
  if (cfg_.uarch.prefetch_degree == 0) return;
  auto& table = stream_table_[c];
  for (Addr& last : table) {
    if (last + 1 != line) continue;
    last = line;
    cache::Mshr& mshr = *l2_mshr_[c];
    for (std::uint32_t d = 1; d <= cfg_.uarch.prefetch_degree; ++d) {
      const Addr target = line + d;
      // Keep prefetches from starving demand misses of MSHR capacity.
      if (mshr.in_flight() * 4 >= mshr.capacity() * 3) return;
      if (mshr.holds(target) || l2_[c]->probe(target)) continue;
      mshr.on_miss(target, 0);
      ++prefetches_issued_;
      issue_l2_miss_op(t, c, target, /*pc=*/0, /*prefetch=*/true);
    }
    return;
  }
  // New candidate stream: displace round-robin.
  table[stream_victim_[c]] = line;
  stream_victim_[c] = (stream_victim_[c] + 1) % static_cast<std::uint32_t>(table.size());
}

void System::issue_l2_miss_op(Cycle t, std::uint32_t c, Addr line, Addr pc,
                              bool prefetch) {
  const std::uint32_t op_id = alloc_op();
  MemOp& op = ops_[op_id];
  op.line = line;
  op.pc = pc;
  op.core = c;
  op.port = memory_->port_of(line);
  op.prefetch = prefetch;
  op.t_start = t + cfg_.uarch.l2_latency;  // Miss determined after L2 lookup.

  const std::uint32_t slice = llc_slice(line);
  if (!prefetch) {
    op.calm = calm_->decide(c, line, pc, op.t_start, *llc_[slice]);
    if (op.calm) {
      // Concurrent probe: request travels core tile -> memory port tile.
      schedule(op.t_start + mesh_.latency(c, port_tile_[op.port]), EventKind::kMemIssue,
               op_id);
    }
  }
  schedule(op.t_start + mesh_.latency(c, slice) + cfg_.uarch.llc_latency,
           EventKind::kLlcResult, op_id);
}

void System::handle_llc_result(Cycle t, std::uint32_t op_id) {
  MemOp& op = ops_[op_id];
  const std::uint32_t slice = llc_slice(op.line);
  const bool hit = llc_[slice]->lookup(op.line);
  op.llc_resolved = true;
  op.llc_hit = hit;
  op.llc_leg_at_core = t + mesh_.latency(slice, op.core);
  if (!op.prefetch) calm_->on_llc_result(op.core, op.pc, hit, op.calm, t);
  // LLC hit/miss statistics (and thus MPKI) count demand and prefetch
  // lookups alike, matching how an LLC-side counter (and Table IV) sees it.
  if (hit) {
    llc_hits_->inc();
    op.onchip_cycles = mesh_.latency(op.core, slice) + cfg_.uarch.llc_latency +
                       mesh_.latency(slice, op.core);
    schedule(op.llc_leg_at_core, EventKind::kOpFinish, op_id, 0, /*from_memory=*/0);
    return;
  }
  llc_misses_->inc();
  if (op.calm) {
    if (op.mem_arrived) {
      // Memory beat the LLC miss-ack: the ack is the critical path (§IV-C:
      // CALM always awaits the LLC response).
      const Cycle finish = std::max(op.mem_leg_at_core, op.llc_leg_at_core);
      op.onchip_cycles = mesh_.latency(op.core, port_tile_[op.port]) +
                         mesh_.latency(port_tile_[op.port], op.core) +
                         (finish - op.mem_leg_at_core);
      schedule(finish, EventKind::kOpFinish, op_id, 0, /*from_memory=*/1);
    }
    return;  // Else: memory leg in flight; it will complete the join.
  }
  // Serial path: LLC slice forwards the miss to the memory controller.
  op.onchip_cycles = mesh_.latency(op.core, slice) + cfg_.uarch.llc_latency +
                     mesh_.latency(slice, port_tile_[op.port]) +
                     mesh_.latency(port_tile_[op.port], op.core);
  cache::Mshr& mshr = *llc_mshr_[slice];
  if (mshr.holds(op.line)) {
    mshr.on_miss(op.line, op_id);  // Piggyback on the in-flight fetch.
    return;
  }
  if (mshr.full()) {
    park_pending_mem(op_id, PendingStage::kNeedLlcMshr, t);
    return;
  }
  mshr.on_miss(op.line, op_id);
  schedule(t + mesh_.latency(slice, port_tile_[op.port]), EventKind::kMemIssue, op_id);
}

void System::handle_mem_arrive(Cycle t, std::uint32_t op_id) {
  MemOp& op = ops_[op_id];
  op.mem_arrived = true;
  op.mem_leg_at_core = t;
  if (!op.calm) {
    finish_op(t, op_id, /*data_from_memory=*/true);
    return;
  }
  if (!op.llc_resolved) return;  // LLC leg will complete the join.
  if (op.llc_hit) {
    // False positive: LLC already served the op; the (possibly stale)
    // memory response is discarded. Bandwidth was spent regardless.
    maybe_free_joined_op(op_id);
    return;
  }
  const Cycle finish = std::max(t, op.llc_leg_at_core);
  op.onchip_cycles = mesh_.latency(op.core, port_tile_[op.port]) +
                     mesh_.latency(port_tile_[op.port], op.core) + (finish - t);
  if (finish == t) {
    finish_op(t, op_id, /*data_from_memory=*/true);
  } else {
    schedule(finish, EventKind::kOpFinish, op_id, 0, /*from_memory=*/1);
  }
}

void System::finish_op(Cycle t, std::uint32_t op_id, bool data_from_memory) {
  MemOp& op = ops_[op_id];
  if (op.finished) {
    maybe_free_joined_op(op_id);
    return;
  }
  op.finished = true;

  if (!op.prefetch) {
    // Latency accounting (measurement window only; ops straddling the
    // boundary contribute fully — negligible at the budgets used).
    ops_finished_->inc();
    l2_miss_hist_->add(t - op.t_start);
    lat_total_sum_->add(static_cast<double>(t - op.t_start));
    lat_onchip_sum_->add(static_cast<double>(op.onchip_cycles));
    if (op.t_mem_issued > op.t_mem_attempt && op.t_mem_attempt != 0) {
      lat_pending_sum_->add(static_cast<double>(op.t_mem_issued - op.t_mem_attempt));
    }
    // Memory-side components of this demand op's own read (zero for LLC
    // hits and for CALM ops served by the LLC whose probe is discarded).
    if (data_from_memory) {
      lat_dram_service_sum_->add(static_cast<double>(op.mem_dram_service));
      lat_dram_queue_sum_->add(static_cast<double>(op.mem_dram_queue));
      lat_cxl_interface_sum_->add(static_cast<double>(op.mem_cxl_interface));
      lat_cxl_queue_sum_->add(static_cast<double>(op.mem_cxl_queue));
    }
  }

  if (ras_enabled_) {
    if (data_from_memory && op.mem_poisoned && !op.prefetch) {
      // A demand op consumed poisoned memory data: machine check, then the
      // hardware scrubs the line before it enters the hierarchy. Prefetch
      // ops skip this branch and fill the poison silently — the event fires
      // only when a later demand access consumes the line.
      cores_[op.core]->record_machine_check();
      op.mem_poisoned = false;
    } else if (!data_from_memory && !op.prefetch) {
      // Data served from the LLC (hit or piggyback on an in-flight fetch):
      // consume any poison parked there by an earlier prefetch fill.
      const std::uint32_t slice = llc_slice(op.line);
      if (llc_[slice]->poisoned(op.line)) {
        cores_[op.core]->record_machine_check();
        llc_[slice]->clear_poison(op.line);
      }
    }
  }

  if (data_from_memory) fill_llc_from_memory(op_id, t);

  // Fill L2, then L1 (waking the core's waiters; prefetches stop at L2).
  if (auto victim = l2_[op.core]->fill(op.line, /*dirty=*/false,
                                       data_from_memory && op.mem_poisoned)) {
    l2_victim(op.core, *victim, t);
  }
  l2_mshr_[op.core]->on_fill(op.line);
  // A demand miss may have merged into an in-flight prefetch at the L2
  // MSHR; its L1 waiters must still be served when the prefetch lands.
  if (!op.prefetch || l1_mshr_[op.core]->holds(op.line)) {
    fill_l1(op.core, op.line, t);
  }

  maybe_free_joined_op(op_id);
}

void System::fill_llc_from_memory(std::uint32_t op_id, Cycle t) {
  MemOp& op = ops_[op_id];
  const std::uint32_t slice = llc_slice(op.line);
  if (auto victim = llc_[slice]->fill(op.line, /*dirty=*/false, op.mem_poisoned)) {
    llc_victim(slice, *victim, t);
  }
  // Release the slice MSHR entry and complete any piggybacked ops.
  for (std::uint64_t waiter : llc_mshr_[slice]->on_fill(op.line)) {
    const std::uint32_t waiting_op = static_cast<std::uint32_t>(waiter);
    if (waiting_op == op_id) continue;
    // Data is now in the LLC; the piggybacked op finishes here too (its
    // own L2/L1 fills happen inside finish_op).
    finish_op(t, waiting_op, /*data_from_memory=*/false);
  }
}

void System::fill_l1(std::uint32_t c, Addr line, Cycle t) {
  // A demand miss that merged into a poisoned prefetch fill consumes the
  // poison here, when the L2 copy is handed up to the waiters. The L1 fill
  // below is always clean (machine check + scrub happen at this boundary),
  // so the L1 never holds poison and its hit path needs no check.
  if (ras_enabled_ && l2_[c]->poisoned(line)) {
    cores_[c]->record_machine_check();
    l2_[c]->clear_poison(line);
  }
  if (auto victim = l1_[c]->fill(line, /*dirty=*/false)) {
    if (victim->dirty) {
      // Write the dirty victim into L2 (allocate on miss).
      if (!l2_[c]->write(victim->line)) {
        if (auto l2v = l2_[c]->fill(victim->line, /*dirty=*/true)) {
          l2_victim(c, *l2v, t);
        }
      }
    }
  }
  for (std::uint64_t waiter : l1_mshr_[c]->on_fill(line)) {
    if (core::Core::waiter_is_store(waiter)) {
      l1_[c]->mark_dirty(line);
      cores_[c]->on_store_complete(t);
    } else {
      cores_[c]->on_load_complete(waiter, t);
    }
  }
  // Waiter callbacks happen in the event-drain phase; the core's own phase
  // is later in the same cycle, so it can react immediately (legacy cores
  // ticked every cycle and saw completions the cycle they landed).
  arm(core_slots_[c], now_);
}

void System::l2_victim(std::uint32_t /*core*/, const cache::Eviction& ev, Cycle t) {
  if (!ev.dirty) return;  // Non-inclusive: clean victims are dropped.
  const std::uint32_t slice = llc_slice(ev.line);
  if (llc_[slice]->write(ev.line)) return;  // Present in LLC: merge dirty.
  if (auto victim = llc_[slice]->fill(ev.line, /*dirty=*/true)) {
    llc_victim(slice, *victim, t);
  }
}

void System::llc_victim(std::uint32_t /*slice*/, const cache::Eviction& ev, Cycle /*t*/) {
  if (!ev.dirty) return;
  pending_wb_.push_back(ev.line);
  arm(pump_slot_, now_);  // Issue the WB this cycle.
}

void System::park_pending_mem(std::uint32_t op_id, PendingStage stage, Cycle /*t*/) {
  pending_mem_.push_back({op_id, stage});
  // The pump retries parked ops every cycle, starting this one (parks only
  // happen in the event-drain phase, which precedes the pump).
  arm(pump_slot_, now_);
}

// --------------------------------------------------------------- main loop

void System::pump_memory(Cycle now) {
  COAXIAL_PROF_SCOPE(kMemPump);
  // Drain memory completions into arrival events (NoC: port -> core).
  const Cycle mem_wake = memory_->tick(now);
  auto& comps = memory_->completions();
  for (const auto& c : comps) {
    const std::uint32_t op_id = static_cast<std::uint32_t>(c.token);
    MemOp& op = ops_[op_id];
    op.mem_dram_service = c.dram_service;
    op.mem_dram_queue = c.dram_queue;
    op.mem_cxl_interface = c.cxl_interface;
    op.mem_cxl_queue = c.cxl_queue;
    op.mem_poisoned = c.poisoned;
    schedule(c.done + mesh_.latency(port_tile_[op.port], op.core), EventKind::kMemArrive,
             op_id);
  }
  comps.clear();

  // Retry parked ops (oldest first) and writebacks.
  bool issued = false;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_mem_.size(); ++i) {
    PendingMem p = pending_mem_[i];
    MemOp& op = ops_[p.op];
    bool done = false;
    if (p.stage == PendingStage::kNeedLlcMshr) {
      cache::Mshr& mshr = *llc_mshr_[llc_slice(op.line)];
      if (mshr.holds(op.line)) {
        mshr.on_miss(op.line, p.op);
        done = true;
      } else if (!mshr.full()) {
        mshr.on_miss(op.line, p.op);
        p.stage = PendingStage::kNeedAdmission;
      }
    }
    if (!done && p.stage == PendingStage::kNeedAdmission) {
      if (op.t_mem_attempt == 0) op.t_mem_attempt = now;
      if (memory_->can_accept(op.line, /*is_write=*/false, now)) {
        op.t_mem_issued = now;
        memory_->access(op.line, /*is_write=*/false, now, p.op);
        done = true;
        issued = true;
      }
    }
    if (!done) pending_mem_[kept++] = p;
  }
  pending_mem_.resize(kept);

  kept = 0;
  for (std::size_t i = 0; i < pending_wb_.size(); ++i) {
    const Addr line = pending_wb_[i];
    if (memory_->can_accept(line, /*is_write=*/true, now)) {
      memory_->access(line, /*is_write=*/true, now, 0);
      issued = true;
    } else {
      pending_wb_[kept++] = line;
    }
  }
  pending_wb_.resize(kept);

  // Self-schedule: the memory system's own bound, tightened to the very
  // next cycle when new work just entered it or parked ops must retry.
  Cycle wake = mem_wake;
  if (issued || !pending_mem_.empty() || !pending_wb_.empty()) {
    wake = std::min(wake, now + 1);
  }
  arm(pump_slot_, wake);
}

void System::reset_window_stats() {
  window_start_ = now_;
  snap_at_window_ = memory_->snapshot();
  ops_finished_->reset();
  lat_total_sum_->reset();
  lat_onchip_sum_->reset();
  lat_pending_sum_->reset();
  lat_dram_service_sum_->reset();
  lat_dram_queue_sum_->reset();
  lat_cxl_interface_sum_->reset();
  lat_cxl_queue_sum_->reset();
  llc_hits_->reset();
  llc_misses_->reset();
  prefetch_window_base_ = prefetches_issued_;
  l2_miss_hist_->reset();
  for (auto& c : cores_) c->reset_window();
  stats_ = RunStats{};
  stats_.calm = calm_->stats();  // Base for the delta at collection.
}

void System::collect_window_stats() {
  stats_.cycles = now_ - window_start_;
  stats_.l2_miss_ops = ops_finished_->value();
  stats_.lat_total_sum = lat_total_sum_->value();
  stats_.lat_onchip_sum = lat_onchip_sum_->value();
  stats_.lat_pending_sum = lat_pending_sum_->value();
  stats_.lat_dram_service_sum = lat_dram_service_sum_->value();
  stats_.lat_dram_queue_sum = lat_dram_queue_sum_->value();
  stats_.lat_cxl_interface_sum = lat_cxl_interface_sum_->value();
  stats_.lat_cxl_queue_sum = lat_cxl_queue_sum_->value();
  stats_.llc_hits = llc_hits_->value();
  stats_.llc_misses = llc_misses_->value();
  stats_.prefetches = prefetches_issued_ - prefetch_window_base_;
  stats_.lat_p50_ns = cycles_to_ns(l2_miss_hist_->percentile(0.50));
  stats_.lat_p90_ns = cycles_to_ns(l2_miss_hist_->percentile(0.90));
  stats_.lat_p99_ns = cycles_to_ns(l2_miss_hist_->percentile(0.99));
  stats_.mem = snapshot_delta(memory_->snapshot(), snap_at_window_);
  stats_.calm = calm_delta(calm_->stats(), stats_.calm);
  // Scheduler activity is whole-run (warmup included): skipping happens
  // during warmup too and that is part of the wall-clock story.
  stats_.sched_events = sched_dispatches_;
  stats_.sched_cycles_dispatched = sched_cycles_dispatched_;
  stats_.sched_cycles_skipped = sched_cycles_skipped_;
}

void System::publish_run_metrics() {
  // Window results and derived figures, so a registry snapshot after run()
  // carries everything the CSV emitters and RunStats helpers compute.
  const obs::Scope run(&metrics_, "run");
  run.counter("cycles")->set(stats_.cycles);
  run.counter("instructions")->set(stats_.instructions);
  run.counter("prefetches")->set(stats_.prefetches);
  run.gauge("ipc_per_core")->set(stats_.ipc_per_core);
  for (std::size_t c = 0; c < stats_.core_ipc.size(); ++c) {
    run.gauge("core_ipc/" + obs::idx(static_cast<std::uint32_t>(c)))
        ->set(stats_.core_ipc[c]);
  }
  run.gauge("lat/p50_ns")->set(stats_.lat_p50_ns);
  run.gauge("lat/p90_ns")->set(stats_.lat_p90_ns);
  run.gauge("lat/p99_ns")->set(stats_.lat_p99_ns);
  run.gauge("lat/avg_total_ns")->set(stats_.avg_total_ns());
  run.gauge("lat/avg_onchip_ns")->set(stats_.avg_onchip_ns());
  run.gauge("lat/avg_pending_ns")->set(stats_.avg_pending_ns());
  run.gauge("lat/avg_dram_service_ns")->set(stats_.avg_dram_service_ns());
  run.gauge("lat/avg_dram_queue_ns")->set(stats_.avg_dram_queue_ns());
  run.gauge("lat/avg_cxl_interface_ns")->set(stats_.avg_cxl_interface_ns());
  run.gauge("lat/avg_cxl_queue_ns")->set(stats_.avg_cxl_queue_ns());
  run.gauge("llc/miss_ratio")->set(stats_.llc_miss_ratio());
  run.gauge("llc/mpki")->set(stats_.llc_mpki());
  run.gauge("bw/read_gbps")->set(stats_.read_gbps());
  run.gauge("bw/write_gbps")->set(stats_.write_gbps());
  run.gauge("bw/utilization")->set(stats_.bandwidth_utilization());
  // Memory-system deltas over the window (the cumulative counters live
  // under `mem/`; these are the RunStats view of the same quantities).
  const obs::Scope m = run.sub("mem");
  m.counter("reads")->set(stats_.mem.reads);
  m.counter("writes")->set(stats_.mem.writes);
  m.gauge("dram_service_sum")->set(stats_.mem.dram_service_sum);
  m.gauge("dram_queue_sum")->set(stats_.mem.dram_queue_sum);
  m.gauge("cxl_interface_sum")->set(stats_.mem.cxl_interface_sum);
  m.gauge("cxl_queue_sum")->set(stats_.mem.cxl_queue_sum);
  m.gauge("data_bus_busy")->set(stats_.mem.data_bus_busy);
  m.gauge("row_hit_rate")->set(stats_.mem.row_hit_rate);
  const obs::Scope cs = run.sub("calm");
  cs.counter("decisions")->set(stats_.calm.decisions);
  cs.counter("probes")->set(stats_.calm.probes);
  cs.counter("true_positives")->set(stats_.calm.true_positives);
  cs.counter("false_positives")->set(stats_.calm.false_positives);
  cs.counter("true_negatives")->set(stats_.calm.true_negatives);
  cs.counter("false_negatives")->set(stats_.calm.false_negatives);
  // Scheduler telemetry is opt-in: registering it unconditionally would
  // change the metrics tree shape and break golden-baseline comparisons.
  if (env_flag("COAXIAL_SCHED_STATS")) {
    const obs::Scope sc(&metrics_, "sim/sched");
    sc.counter("events_dispatched")->set(stats_.sched_events);
    sc.counter("cycles_dispatched")->set(stats_.sched_cycles_dispatched);
    sc.counter("cycles_skipped")->set(stats_.sched_cycles_skipped);
    sc.gauge("skip_ratio")->set(stats_.sched_skip_ratio());
  }
}

void System::prewarm_caches(std::uint64_t seed) {
  if (wl_params_.empty()) return;  // Trace-driven runs: no layout knowledge.
  // Seed caches with approximate steady-state content before the timed
  // warmup. This substitutes for trace-checkpoint warmup: filling a 24 MB
  // LLC through low-MPKI workloads would need tens of millions of timed
  // instructions. Hot-tier lines go to L1/L2, mid-tier lines to the LLC,
  // and the remaining LLC capacity is filled with cold-tier lines (which a
  // stationary generator is about to stream over anyway). Lines are marked
  // dirty with the workload's store probability so write-back traffic is
  // active from the start of measurement.
  Rng rng(seed ^ 0x77a3);
  const std::uint32_t active = cfg_.uarch.active_cores;
  const std::uint64_t llc_lines_total =
      (static_cast<std::uint64_t>(cfg_.uarch.llc_mb_per_core) << 20) / kLineBytes *
      n_slices_;
  const std::uint64_t llc_share = llc_lines_total / std::max(1u, active);

  for (std::uint32_t c = 0; c < active; ++c) {
    const workload::WorkloadParams& p = wl_params_[c];
    const workload::Regions r = workload::region_layout(p, c);
    const double dirty_p = p.store_fraction;

    auto fill_llc = [&](Addr line, bool dirty) {
      const std::uint32_t slice = llc_slice(line);
      llc_[slice]->fill(line, dirty);  // Pre-warm displacements are dropped.
    };

    // Mid tier: LLC-resident by construction (if it fits the core's share).
    const std::uint64_t mid_lines = r.mid_bytes / kLineBytes;
    const std::uint64_t mid_insert = std::min(mid_lines, llc_share);
    for (std::uint64_t i = 0; i < mid_insert; ++i) {
      fill_llc(r.mid_base / kLineBytes + i, rng.chance(dirty_p));
    }
    // Cold tier: fill the rest of the share with random cold lines.
    const std::uint64_t cold_lines = r.cold_bytes / kLineBytes;
    for (std::uint64_t i = mid_insert; i < llc_share; ++i) {
      fill_llc(r.cold_base / kLineBytes + rng.next_below(cold_lines),
               rng.chance(dirty_p));
    }

    // Hot tier: private caches. L2 first (sequential), most-recent into L1.
    const std::uint64_t hot_lines = r.hot_bytes / kLineBytes;
    const std::uint64_t l2_lines =
        static_cast<std::uint64_t>(cfg_.uarch.l2_kb) * 1024 / kLineBytes;
    const std::uint64_t l1_lines =
        static_cast<std::uint64_t>(cfg_.uarch.l1_kb) * 1024 / kLineBytes;
    for (std::uint64_t i = 0; i < std::min(hot_lines, l2_lines); ++i) {
      l2_[c]->fill(r.hot_base / kLineBytes + i, rng.chance(dirty_p));
    }
    for (std::uint64_t i = 0; i < std::min(hot_lines, l1_lines); ++i) {
      l1_[c]->fill(r.hot_base / kLineBytes + rng.next_below(hot_lines),
                   rng.chance(dirty_p));
    }
  }
  for (auto& cache : l1_) cache->reset_stats();
  for (auto& cache : l2_) cache->reset_stats();
  for (auto& cache : llc_) cache->reset_stats();
}

void System::set_tick_every_cycle(bool v) {
  tick_every_cycle_ = v;
  memory_->set_force_tick(v);
}

void System::run(std::uint64_t warmup_instr, std::uint64_t measure_instr) {
  if (env_flag("COAXIAL_TICK_EVERY_CYCLE")) set_tick_every_cycle(true);
  prewarm_caches(seed_);
  const std::uint32_t active = cfg_.uarch.active_cores;
  auto all_reached = [&](std::uint64_t target) {
    for (std::uint32_t c = 0; c < active; ++c) {
      if (cores_[c]->retired() < target) return false;
    }
    return true;
  };

  if (!tick_every_cycle_) {
    // Prime the spine: the pump and every active core get an initial
    // wake-up; everything after that is self- or callback-scheduled.
    arm(pump_slot_, now_ + 1);
    for (std::uint32_t c = 0; c < active; ++c) {
      arm(core_slots_[c], now_ + 1);
    }
  }

  auto step = [&] {
    if (tick_every_cycle_) {
      // Reference loop: advance every phase every cycle.
      ++now_;
      {
        COAXIAL_PROF_SCOPE(kEventDrain);
        while (!events_.empty() && events_.top().cycle <= now_) {
          const Event ev = events_.top();
          events_.pop();
          handle_event(ev);
        }
      }
      pump_memory(now_);
      for (std::uint32_t c = 0; c < active; ++c) cores_[c]->tick(now_, *this);
      return;
    }
    // Event-driven loop: jump straight to the next populated cycle and
    // dispatch its due wake-ups in phase order (events, pump, cores).
    const Cycle next = next_wake_cycle();
    if (next == kNoCycle) {
      // Every in-flight chain ends in a wake-up or callback; an empty
      // scheduler with unfinished cores means a lost wake-up (a bug).
      throw std::logic_error("System: scheduler drained before cores finished");
    }
    sched_cycles_skipped_ += next - now_ - 1;
    now_ = next;
    ++sched_cycles_dispatched_;
    COAXIAL_PROF_SCOPE(kSchedDispatch);
    dispatch_due(now_);
  };

  // Warmup phase.
  if (warmup_instr > 0) {
    while (!all_reached(warmup_instr)) step();
  }
  reset_window_stats();

  // Measurement phase: per-core IPC uses each core's own completion cycle.
  std::vector<Cycle> finish_cycle(active, 0);
  std::uint32_t remaining = active;
  while (remaining > 0) {
    step();
    for (std::uint32_t c = 0; c < active; ++c) {
      if (finish_cycle[c] == 0 && cores_[c]->retired() >= measure_instr) {
        finish_cycle[c] = now_;
        --remaining;
      }
    }
  }
  collect_window_stats();

  stats_.core_ipc.resize(active);
  double ipc_sum = 0;
  std::uint64_t instr = 0;
  for (std::uint32_t c = 0; c < active; ++c) {
    const double cycles = static_cast<double>(finish_cycle[c] - window_start_);
    stats_.core_ipc[c] = static_cast<double>(measure_instr) / cycles;
    ipc_sum += stats_.core_ipc[c];
    instr += measure_instr;
  }
  stats_.instructions = instr;
  stats_.ipc_per_core = ipc_sum / static_cast<double>(active);
  publish_run_metrics();
}

}  // namespace coaxial::sim
