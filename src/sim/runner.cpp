#include "sim/runner.hpp"

#include <stdexcept>

#include "common/thread_pool.hpp"

namespace coaxial::sim {

RunRequest homogeneous(const sys::SystemConfig& cfg, const std::string& workload,
                       std::uint64_t warmup, std::uint64_t measure, std::uint64_t seed) {
  RunRequest r;
  r.config = cfg;
  r.workloads = {workload};
  r.warmup_instr = warmup;
  r.measure_instr = measure;
  r.seed = seed;
  return r;
}

RunResult run_one(const RunRequest& request) {
  const std::uint32_t cores = request.config.uarch.cores;
  std::vector<workload::WorkloadParams> per_core;
  per_core.reserve(cores);
  if (request.workloads.empty()) {
    throw std::invalid_argument("RunRequest needs at least one workload name");
  }
  for (std::uint32_t c = 0; c < cores; ++c) {
    const std::string& name = request.workloads.size() == 1
                                  ? request.workloads.front()
                                  : request.workloads[c % request.workloads.size()];
    per_core.push_back(workload::find_workload(name));
  }

  System system(request.config, per_core, request.seed);
  system.run(request.warmup_instr, request.measure_instr);

  RunResult result;
  result.config_name = request.config.name;
  result.workload_name =
      request.workloads.size() == 1 ? request.workloads.front() : "mix";
  result.stats = system.stats();
  return result;
}

std::vector<RunResult> run_many(const std::vector<RunRequest>& requests,
                                std::size_t threads) {
  std::vector<RunResult> results(requests.size());
  ThreadPool pool(threads == 0 ? std::thread::hardware_concurrency() : threads);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    pool.submit([&, i] { results[i] = run_one(requests[i]); });
  }
  pool.wait_idle();
  return results;
}

}  // namespace coaxial::sim
