#include "sim/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "obs/profiler.hpp"
#include "obs/stats_json.hpp"

namespace coaxial::sim {

RunRequest homogeneous(const sys::SystemConfig& cfg, const std::string& workload,
                       std::uint64_t warmup, std::uint64_t measure, std::uint64_t seed) {
  RunRequest r;
  r.config = cfg;
  r.workloads = {workload};
  r.warmup_instr = warmup;
  r.measure_instr = measure;
  r.seed = seed;
  return r;
}

namespace {

/// Open-loop dispatch: arrival processes drive the memory system directly;
/// the run ends at the simulated-time horizon (plus inflight drain), not at
/// a per-core instruction count.
RunResult run_service(const RunRequest& request) {
  ServiceDriver driver(request.config, request.service, request.seed);
  const auto wall_start = std::chrono::steady_clock::now();
  driver.run();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  RunResult result;
  result.config_name = request.config.name;
  result.workload_name = request.service.name;
  result.seed = request.seed;
  result.open_loop = true;
  result.warmup_cycles = request.service.warmup_cycles;
  result.measure_cycles = request.service.measure_cycles;
  result.host_seconds = wall.count();
  result.service = driver.stats();
  result.slo = driver.slo_checks();
  result.metrics = driver.metrics().snapshot();
  return result;
}

/// Multi-host pooled dispatch: the pool config names its own workload and
/// the instruction budgets apply per host slice. The metrics snapshot
/// carries the whole pool/* subtree, so the JSON document shape is the same
/// as any closed-loop run.
RunResult run_pooled(const RunRequest& request) {
  PooledSystem system(request.pool, request.seed);
  // Shard-worker resolution (DESIGN.md §14): an explicit request wins over
  // COAXIAL_SHARDS; the harness cap (run_many) bounds both. An explicit
  // multi-worker request on a switched pool is an error (run() throws); an
  // env-derived one is clamped so COAXIAL_SHARDS=N batch runs keep working
  // across mixed topologies.
  const bool explicit_shards = request.shards != 0;
  std::uint32_t want =
      explicit_shards ? request.shards
                      : static_cast<std::uint32_t>(env_u64("COAXIAL_SHARDS", 1));
  if (want == 0) want = 1;
  if (request.shard_cap != 0) want = std::min(want, request.shard_cap);
  if (want > 1 && !explicit_shards && system.lookahead() == 0) want = 1;
  system.set_workers(want);

  const obs::prof::Totals prof_base = obs::prof::thread_totals();
  const auto wall_start = std::chrono::steady_clock::now();
  const PooledStats stats =
      system.run(request.warmup_instr, request.measure_instr);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  if (obs::prof::enabled()) {
    // Coordinator-thread phases plus the shard workers' folded totals;
    // opt-in like host_seconds, so default trees keep their shape.
    obs::prof::Totals delta = obs::prof::thread_totals().delta_since(prof_base);
    delta.add(system.worker_prof_totals());
    obs::prof::publish(obs::Scope(&system.metrics(), "host/prof"), delta);
  }

  RunResult result;
  result.config_name = request.pool.name;
  result.workload_name = request.pool.workload;
  result.seed = request.seed;
  result.warmup_instr = request.warmup_instr;
  result.measure_instr = request.measure_instr;
  result.host_seconds = wall.count();
  result.shards = system.effective_workers();
  result.pooled = stats;
  result.metrics = system.metrics().snapshot();
  return result;
}

}  // namespace

RunResult run_one(const RunRequest& request) {
  if (request.pool.enabled()) return run_pooled(request);
  if (request.service.enabled()) return run_service(request);
  const std::uint32_t cores = request.config.uarch.cores;
  std::vector<workload::WorkloadParams> per_core;
  per_core.reserve(cores);
  if (request.workloads.empty()) {
    throw std::invalid_argument("RunRequest needs at least one workload name");
  }
  sys::SystemConfig cfg = request.config;
  const bool tier_override = !request.tier_policy.empty() ||
                             request.tier_fast_pages != 0 ||
                             request.tier_epoch_cycles != 0;
  if (tier_override) {
    if (!cfg.tiering.enabled) {
      throw std::invalid_argument(
          "RunRequest: tiering overrides require a config with tiering enabled");
    }
    if (!request.tier_policy.empty()) {
      cfg.tiering.policy = placement::policy_from_name(request.tier_policy);
    }
    if (request.tier_fast_pages != 0) {
      cfg.tiering.fast_capacity_pages = request.tier_fast_pages;
    }
    if (request.tier_epoch_cycles != 0) {
      cfg.tiering.epoch_cycles = request.tier_epoch_cycles;
    }
    cfg.tiering.validate();  // Reject bad sweeps before spending a run.
  }
  // Catalog lookups are string-keyed; resolve each distinct name once and
  // reuse the params across cores (mixes repeat a handful of names).
  std::unordered_map<std::string, workload::WorkloadParams> by_name;
  for (std::uint32_t c = 0; c < cores; ++c) {
    const std::string& name = request.workloads.size() == 1
                                  ? request.workloads.front()
                                  : request.workloads[c % request.workloads.size()];
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      it = by_name.emplace(name, workload::find_workload(name)).first;
    }
    per_core.push_back(it->second);
  }

  System system(cfg, per_core, request.seed);
  const obs::prof::Totals prof_base = obs::prof::thread_totals();
  const auto wall_start = std::chrono::steady_clock::now();
  system.run(request.warmup_instr, request.measure_instr);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  if (obs::prof::enabled()) {
    // Opt-in phase breakdown for this run, published like host_seconds:
    // never part of default runs, so the golden tree shape is untouched.
    obs::prof::publish(obs::Scope(&system.metrics(), "host/prof"),
                       obs::prof::thread_totals().delta_since(prof_base));
  }

  RunResult result;
  result.config_name = cfg.name;
  result.workload_name = request.workloads.size() == 1
                             ? request.workloads.front()
                             : "mix-" + std::to_string(request.mix_id);
  result.seed = request.seed;
  result.warmup_instr = request.warmup_instr;
  result.measure_instr = request.measure_instr;
  result.host_seconds = wall.count();
  result.stats = system.stats();
  result.metrics = system.metrics().snapshot();
  return result;
}

std::vector<RunRequest> golden_requests() {
  // Small budgets keep the golden test fast while still exercising both
  // topologies (direct DDR and CXL-attached) plus the asymmetric-lane
  // variant. Changing this set invalidates tests/golden/baseline.json.
  return {
      homogeneous(sys::baseline_ddr(), "canneal", 500, 2000, /*seed=*/7),
      homogeneous(sys::coaxial_4x(), "lbm", 500, 2000, /*seed=*/7),
      homogeneous(sys::coaxial_asym(), "stream-copy", 500, 2000, /*seed=*/7),
  };
}

std::vector<RunResult> run_many(const std::vector<RunRequest>& requests,
                                std::size_t threads) {
  std::vector<RunResult> results(requests.size());
  ThreadPool pool(threads == 0 ? std::thread::hardware_concurrency() : threads);
  // Outer run-level parallelism composes with intra-run shard workers;
  // cap the inner count so outer x inner never oversubscribes the machine.
  // Caps are pure scheduling — they cannot change any run's stats.
  const std::uint32_t cap = static_cast<std::uint32_t>(
      inner_shard_cap(pool.size(), std::thread::hardware_concurrency()));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    pool.submit([&, i, cap] {
      RunRequest req = requests[i];
      if (req.shard_cap == 0 || cap < req.shard_cap) req.shard_cap = cap;
      results[i] = run_one(req);
    });
  }
  pool.wait_idle();
  return results;
}

// ------------------------------------------------------------- JSON export

namespace {

void write_run(obs::json::Writer& w, const RunResult& r, const StatsJsonOptions& opts) {
  w.begin_object();
  w.key("config");
  w.value(r.config_name);
  w.key("workload");
  w.value(r.workload_name);
  w.key("seed");
  w.value(r.seed);
  if (r.open_loop) {
    // Open-loop runs are bounded by simulated time, not instruction counts;
    // closed-loop runs keep the original keys so the golden document stays
    // byte-identical.
    w.key("open_loop");
    w.value(true);
    w.key("warmup_cycles");
    w.value(r.warmup_cycles);
    w.key("measure_cycles");
    w.value(r.measure_cycles);
  } else {
    w.key("warmup_instr");
    w.value(r.warmup_instr);
    w.key("measure_instr");
    w.value(r.measure_instr);
  }
  if (opts.include_host_seconds) {
    // Host timing is non-deterministic; emitting it by default would break
    // the byte-identical guarantee the determinism/golden tests rely on.
    // The effective shard-worker count rides the same opt-in: it is
    // machine-local scheduling, not simulation state (and the determinism
    // tests prove the rest of the document is identical across counts).
    w.key("host_seconds");
    w.value(r.host_seconds);
    w.key("shards");
    w.value(std::uint64_t{r.shards});
  }
  w.key("metrics");
  obs::json::write_snapshot(w, r.metrics);
  w.end_object();
}

}  // namespace

std::string stats_json(const std::vector<RunResult>& results,
                       const StatsJsonOptions& options) {
  obs::json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("coaxial-stats-v1");
  w.key("runs");
  w.begin_array();
  for (const RunResult& r : results) write_run(w, r, options);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string stats_json(const RunResult& result, const StatsJsonOptions& options) {
  return stats_json(std::vector<RunResult>{result}, options);
}

bool write_stats_json(const std::vector<RunResult>& results, const std::string& path,
                      const StatsJsonOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string doc = stats_json(results, options);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace coaxial::sim
