// Minimal SVG chart emission — the reproduction's analogue of the
// artifact's plot_all.py: bench harnesses can drop bar/line charts next to
// their CSVs so figures regenerate without any external tooling.
#pragma once

#include <string>
#include <vector>

namespace coaxial::report {

struct Series {
  std::string name;
  std::vector<double> y;
};

/// Grouped bar chart (one bar group per category, one bar per series).
/// `reference` draws a horizontal dashed line (e.g. speedup = 1.0).
/// Returns true if the file was written.
bool write_bar_chart_svg(const std::string& path, const std::string& title,
                         const std::vector<std::string>& categories,
                         const std::vector<Series>& series, double reference = 0.0);

/// Line chart over a shared x axis.
bool write_line_chart_svg(const std::string& path, const std::string& title,
                          const std::vector<double>& x, const std::vector<Series>& series,
                          const std::string& x_label, const std::string& y_label);

}  // namespace coaxial::report
