// Full-system assembly and cycle loop: cores + private L1D/L2 + distributed
// shared non-inclusive LLC + 2D-mesh NoC latency + CALM + memory system.
//
// L1 hits are handled inline; everything below L1 flows through a small
// event heap (L2 lookup, LLC lookup/response, memory arrival), which keeps
// per-cycle work proportional to actual memory traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "coaxial/calm.hpp"
#include "coaxial/configs.hpp"
#include "coaxial/memory_system.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/core.hpp"
#include "noc/mesh.hpp"
#include "obs/metrics.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace coaxial::sim {

/// Measurement-window results of one simulation.
struct RunStats {
  Cycle cycles = 0;                    ///< Wall cycles of the window.
  std::uint64_t instructions = 0;      ///< Retired across active cores.
  std::vector<double> core_ipc;        ///< Per active core.
  double ipc_per_core = 0;             ///< Harmonic-consistent average.

  // L2-miss transaction accounting (demand loads + RFOs).
  std::uint64_t l2_miss_ops = 0;
  double lat_total_sum = 0;    ///< Cycles, L2-miss to data-at-core.
  double lat_onchip_sum = 0;   ///< NoC + LLC on the critical path.
  double lat_pending_sum = 0;  ///< Waiting for memory-system admission.
  // Demand-only memory-side components (prefetch traffic excluded), from
  // per-completion breakdowns.
  double lat_dram_service_sum = 0;
  double lat_dram_queue_sum = 0;
  double lat_cxl_interface_sum = 0;
  double lat_cxl_queue_sum = 0;

  std::uint64_t llc_hits = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t prefetches = 0;  ///< Stream prefetches issued in the window.

  // Scheduler activity over the whole run (warmup + measurement): wake-up
  // events dispatched, cycles actually simulated vs skipped outright. All
  // zero in forced tick-every-cycle mode.
  std::uint64_t sched_events = 0;
  std::uint64_t sched_cycles_dispatched = 0;
  std::uint64_t sched_cycles_skipped = 0;
  double sched_skip_ratio() const {
    const double total =
        static_cast<double>(sched_cycles_dispatched + sched_cycles_skipped);
    return total == 0 ? 0.0 : static_cast<double>(sched_cycles_skipped) / total;
  }

  // Demand L2-miss latency percentiles over the window (ns).
  double lat_p50_ns = 0;
  double lat_p90_ns = 0;
  double lat_p99_ns = 0;

  mem::MemorySnapshot mem;  ///< Deltas over the window.
  calm::CalmStats calm;

  double avg_l2_miss_latency_cycles() const {
    return l2_miss_ops == 0 ? 0.0 : lat_total_sum / static_cast<double>(l2_miss_ops);
  }
  double llc_miss_ratio() const {
    const double t = static_cast<double>(llc_hits + llc_misses);
    return t == 0 ? 0.0 : static_cast<double>(llc_misses) / t;
  }
  /// LLC misses per kilo-instruction (the Table IV metric).
  double llc_mpki() const {
    return instructions == 0
               ? 0.0
               : 1000.0 * static_cast<double>(llc_misses) / static_cast<double>(instructions);
  }
  double read_gbps() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(mem.reads) * kLineBytes /
                             (static_cast<double>(cycles) * kNsPerCycle);
  }
  double write_gbps() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(mem.writes) * kLineBytes /
                             (static_cast<double>(cycles) * kNsPerCycle);
  }
  double bandwidth_utilization() const { return mem.utilization(cycles); }

  // Per-demand-op average latency components, in ns (Fig. 5 middle).
  // Prefetch traffic is excluded here; it still appears in `mem`'s
  // aggregate sums and in bandwidth/utilisation figures.
  double avg_onchip_ns() const { return avg_ns(lat_onchip_sum); }
  double avg_pending_ns() const { return avg_ns(lat_pending_sum); }
  double avg_dram_service_ns() const { return avg_ns(lat_dram_service_sum); }
  double avg_dram_queue_ns() const { return avg_ns(lat_dram_queue_sum); }
  double avg_cxl_interface_ns() const { return avg_ns(lat_cxl_interface_sum); }
  double avg_cxl_queue_ns() const { return avg_ns(lat_cxl_queue_sum); }
  double avg_total_ns() const { return avg_ns(lat_total_sum); }

 private:
  double avg_ns(double sum_cycles) const {
    return l2_miss_ops == 0 ? 0.0
                            : cycles_to_ns(static_cast<Cycle>(1)) * sum_cycles /
                                  static_cast<double>(l2_miss_ops);
  }
};

class System : public core::MemoryPort {
 public:
  /// `per_core_workloads` must contain exactly `cfg.uarch.cores` entries
  /// (inactive cores' entries are ignored).
  System(const sys::SystemConfig& cfg,
         const std::vector<workload::WorkloadParams>& per_core_workloads,
         std::uint64_t seed = 42);

  /// Trace-driven construction: one instruction source per core plus its
  /// IPC ceiling. Cache pre-warm is skipped (a trace's address layout is
  /// unknown); use a longer timed warmup instead.
  System(const sys::SystemConfig& cfg,
         std::vector<std::unique_ptr<workload::InstrSource>> sources,
         const std::vector<double>& max_ipc, std::uint64_t seed = 42);
  ~System() override;

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Warm up, reset stats, then run until every active core retires
  /// `measure_instr` more instructions.
  void run(std::uint64_t warmup_instr, std::uint64_t measure_instr);

  /// Disable idle-cycle skipping: advance every component every cycle (the
  /// pre-scheduler reference loop). Call before run(). Also selectable via
  /// the COAXIAL_TICK_EVERY_CYCLE environment variable; used by the
  /// event-driven-vs-forced equivalence test and for A/B timing.
  void set_tick_every_cycle(bool v);
  bool tick_every_cycle() const { return tick_every_cycle_; }

  const RunStats& stats() const { return stats_; }
  const sys::SystemConfig& config() const { return cfg_; }

  // MemoryPort (called by cores).
  core::IssueResult issue_load(std::uint32_t core, Addr addr, Addr pc,
                               std::uint64_t waiter, Cycle now) override;
  core::IssueResult issue_store(std::uint32_t core, Addr addr, Addr pc,
                                std::uint64_t waiter, Cycle now) override;

  /// Current simulated cycle (for tests).
  Cycle now() const { return now_; }

  /// Cumulative DRAM activity counters (for the power model).
  dram::ControllerStats dram_activity() const { return memory_->aggregate_dram_stats(); }

  /// The memory system (for tests and power accounting).
  const mem::MemorySystem& memory() const { return *memory_; }

  /// The metrics registry every component registered into at construction.
  /// `metrics().snapshot()` after run() yields the full stats tree
  /// (including the `run/` subtree of window results published by run()).
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  enum class EventKind : std::uint8_t {
    kL2Lookup,
    kLlcResult,
    kMemIssue,
    kMemArrive,
    kOpFinish,
    kL1Fill,
  };

  struct Event {
    Cycle cycle;
    EventKind kind;
    std::uint32_t a;  ///< Op id, or core id for kL1Fill.
    Addr line;        ///< Used by kL2Lookup / kL1Fill.
    std::uint64_t aux;  ///< PC for kL2Lookup; finish time semantics vary.
    bool operator>(const Event& o) const { return cycle > o.cycle; }
  };

  struct MemOp {
    Addr line = 0;
    Addr pc = 0;
    std::uint32_t core = 0;
    std::uint32_t port = 0;
    bool calm = false;
    bool prefetch = false;  ///< L2 stream prefetch: fills caches, wakes no one.
    bool mem_poisoned = false;  ///< RAS: the memory response carried poison.
    bool llc_hit = false;
    bool llc_resolved = false;
    bool mem_arrived = false;
    bool finished = false;
    bool free = false;
    Cycle t_start = 0;         ///< L2-miss time.
    Cycle t_mem_attempt = 0;   ///< First admission attempt.
    Cycle t_mem_issued = 0;
    Cycle llc_leg_at_core = 0; ///< When the LLC response reaches the core.
    Cycle mem_leg_at_core = 0;
    Cycle onchip_cycles = 0;   ///< Deterministic NoC+LLC component.
    // Memory-side breakdown of this op's own read (from MemCompletion).
    Cycle mem_dram_service = 0;
    Cycle mem_dram_queue = 0;
    Cycle mem_cxl_interface = 0;
    Cycle mem_cxl_queue = 0;
  };

  /// Ops parked for memory admission, with the resource they wait on.
  enum class PendingStage : std::uint8_t { kNeedLlcMshr, kNeedAdmission };
  struct PendingMem {
    std::uint32_t op = 0;
    PendingStage stage = PendingStage::kNeedAdmission;
  };

  // ---- wake-up spine (discrete-event loop; see DESIGN.md) ----
  //
  // Each simulated cycle has three phases, replayed in the legacy order:
  // payload events drain first, then the memory pump, then cores in index
  // order. The System's schedulables are a small fixed set (one event
  // drain, one pump, one slot per core), so instead of a priority heap the
  // spine keeps one pending wake-up cycle per slot: arming is a min, the
  // next populated cycle is a min-scan over ~n_cores slots, and dispatch
  // rescans in phase order after every handler — exactly the repeated
  // min-extraction a (cycle, priority) heap performs, since each slot has
  // a unique phase priority. This removes heap push/pop/tombstone traffic
  // from the hottest loop in the simulator.

  /// At most one pending wake-up per phase slot; arm() dedupes by keeping
  /// the earlier of the armed and requested cycles, and dispatch clears the
  /// slot (at = kNoCycle) before invoking the handler.
  struct WakeSlot {
    Cycle at = kNoCycle;
  };

  void arm(WakeSlot& slot, Cycle cycle) {
    // In forced mode the main loop drives every phase every cycle itself.
    if (tick_every_cycle_ || cycle == kNoCycle) return;
    if (cycle < slot.at) slot.at = cycle;
  }
  Cycle next_wake_cycle() const;
  void dispatch_due(Cycle now);
  void wake_events(Cycle now);
  void wake_pump(Cycle now);
  void wake_core(std::uint32_t c, Cycle now);

  void schedule(Cycle cycle, EventKind kind, std::uint32_t a, Addr line = 0,
                std::uint64_t aux = 0);
  void handle_event(const Event& ev);
  void handle_l2_lookup(Cycle t, std::uint32_t core, Addr line, Addr pc);
  void maybe_prefetch(Cycle t, std::uint32_t core, Addr line);
  void issue_l2_miss_op(Cycle t, std::uint32_t core, Addr line, Addr pc, bool prefetch);
  void handle_llc_result(Cycle t, std::uint32_t op_id);
  void handle_mem_arrive(Cycle t, std::uint32_t op_id);
  void finish_op(Cycle t, std::uint32_t op_id, bool data_from_memory);
  void fill_l1(std::uint32_t core, Addr line, Cycle t);
  void fill_llc_from_memory(std::uint32_t op_id, Cycle t);
  void l2_victim(std::uint32_t core, const cache::Eviction& ev, Cycle t);
  void llc_victim(std::uint32_t slice, const cache::Eviction& ev, Cycle t);
  void park_pending_mem(std::uint32_t op_id, PendingStage stage, Cycle t);
  void pump_memory(Cycle now);
  std::uint32_t alloc_op();
  void free_op(std::uint32_t id);
  void maybe_free_joined_op(std::uint32_t id);
  void reset_window_stats();
  void collect_window_stats();
  void publish_run_metrics();
  void prewarm_caches(std::uint64_t seed);
  void build_shared_structures();

  std::uint32_t llc_slice(Addr line) const { return mesh_.home_tile(line) % n_slices_; }

  sys::SystemConfig cfg_;
  noc::Mesh mesh_;
  std::uint32_t n_slices_;
  std::uint64_t seed_;
  std::vector<workload::WorkloadParams> wl_params_;

  /// Declared before the components so probes registered by them are
  /// destroyed (with the registry) only after the components they sample.
  obs::MetricsRegistry metrics_;

  std::vector<std::unique_ptr<core::Core>> cores_;
  std::vector<std::unique_ptr<cache::Cache>> l1_;
  std::vector<std::unique_ptr<cache::Mshr>> l1_mshr_;
  std::vector<std::unique_ptr<cache::Cache>> l2_;
  std::vector<std::unique_ptr<cache::Mshr>> l2_mshr_;
  std::vector<std::unique_ptr<cache::Cache>> llc_;
  std::vector<std::unique_ptr<cache::Mshr>> llc_mshr_;
  std::unique_ptr<mem::MemorySystem> memory_;
  std::unique_ptr<calm::Decider> calm_;
  std::vector<std::uint32_t> port_tile_;  ///< NoC tile of each memory port.

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::vector<MemOp> ops_;
  std::vector<std::uint32_t> free_ops_;
  std::vector<PendingMem> pending_mem_;  ///< Ops awaiting memory admission.
  std::vector<Addr> pending_wb_;         ///< LLC dirty victims awaiting issue.

  // Wake-up spine state. The legacy payload-event heap (events_) keeps its
  // cycle-only ordering — same-cycle pop order there is results-affecting —
  // while the slots carry idempotent component wake-ups only.
  bool tick_every_cycle_ = false;
  bool ras_enabled_ = false;  ///< cfg_.fault_plan.enabled(), cached.
  bool in_events_drain_ = false;
  WakeSlot events_slot_;
  WakeSlot pump_slot_;
  std::vector<WakeSlot> core_slots_;
  std::uint64_t sched_dispatches_ = 0;  ///< Handler invocations (telemetry).
  std::uint64_t sched_cycles_dispatched_ = 0;
  std::uint64_t sched_cycles_skipped_ = 0;

  Cycle now_ = 0;
  Cycle window_start_ = 0;
  mem::MemorySnapshot snap_at_window_;
  RunStats stats_;

  /// Per-core stream-prefetcher state: last line of each tracked stream.
  std::vector<std::vector<Addr>> stream_table_;
  std::vector<std::uint32_t> stream_victim_;
  std::uint64_t prefetches_issued_ = 0;

  // Window accumulators: registry-owned instruments under `run/` (set up in
  // build_shared_structures; RunStats is materialised from them at
  // collect_window_stats time).
  obs::Counter* ops_finished_ = nullptr;
  obs::Gauge* lat_total_sum_ = nullptr;
  obs::Gauge* lat_onchip_sum_ = nullptr;
  obs::Gauge* lat_pending_sum_ = nullptr;
  obs::Gauge* lat_dram_service_sum_ = nullptr;
  obs::Gauge* lat_dram_queue_sum_ = nullptr;
  obs::Gauge* lat_cxl_interface_sum_ = nullptr;
  obs::Gauge* lat_cxl_queue_sum_ = nullptr;
  obs::Counter* llc_hits_ = nullptr;
  obs::Counter* llc_misses_ = nullptr;
  std::uint64_t prefetch_window_base_ = 0;
  LatencyHistogram* l2_miss_hist_ = nullptr;
};

}  // namespace coaxial::sim
