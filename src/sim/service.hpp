// Open-loop service driver: seeded arrival processes feeding a MemorySystem
// directly, with per-request injection-to-completion latency tracking and an
// SLO harness.
//
// Where System models cores whose request rate is throttled by the memory
// system (closed loop), ServiceDriver models service traffic: `tenants`
// independent arrival streams (Poisson or MMPP) each offering a configured
// fraction of the memory system's peak bandwidth, regardless of how the
// memory system keeps up. Requests that cannot be admitted queue per tenant;
// generated vs admitted counts, regulation stalls and backpressure stalls
// are all reported separately, so saturation is visible as a growing
// generated-admitted gap rather than silently squashed load.
//
// Per-read latency (admission wait + memory service, measured from arrival
// to completion `done` cycle) feeds per-tenant FixedHistograms exported
// under `svc/*` in the coaxial-stats-v1 schema — registered only when the
// driver exists, so the golden (closed-loop) stats tree is untouched.
//
// Determinism contract: results are byte-identical for identical
// (SystemConfig, ServiceConfig, seed), and identical between the
// event-driven loop and COAXIAL_TICK_EVERY_CYCLE=1 lockstep. Everything is
// keyed off arrival/admission/`done` cycles (mode-invariant quantities);
// the driver never reads "which cycle did the host happen to look".
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "coaxial/calm.hpp"
#include "coaxial/configs.hpp"
#include "coaxial/memory_system.hpp"
#include "common/histogram.hpp"
#include "obs/metrics.hpp"
#include "workload/arrival.hpp"

namespace coaxial::sim {

/// One declared service-level objective: "quantile q of this tenant's
/// latency distribution must be <= target_ns".
struct SloTarget {
  double quantile = 0.99;
  double target_ns = 1000.0;
};

/// One open-loop traffic source plus its declared objectives.
struct ServiceTenant {
  workload::ArrivalConfig arrival;
  std::vector<SloTarget> slo;  ///< May be empty (no objectives declared).
};

struct ServiceConfig {
  std::string name = "svc";  ///< Reported as the run's workload name.
  std::vector<ServiceTenant> tenants;

  Cycle warmup_cycles = 0;          ///< Completions injected before this are dropped.
  Cycle measure_cycles = 200'000;   ///< Arrival horizon past warmup.

  /// CALM_R-style per-tenant token-bucket bandwidth regulation at the
  /// injection queues (the noisy-neighbor QoS knob).
  bool regulate = false;
  double reg_fraction = 0.70;   ///< R as a fraction of peak memory bandwidth.
  Cycle reg_burst_cycles = 8192;  ///< Credit cap, in cycles of fair share.

  /// Latency histogram geometry (cycles). Defaults cover ~27 us.
  Cycle hist_bucket_cycles = 16;
  std::uint32_t hist_buckets = 4096;

  /// Open-loop mode is on iff at least one tenant is configured.
  bool enabled() const { return !tenants.empty(); }
  void validate() const;
};

/// Outcome of one declared SLO after a run.
struct SloCheck {
  std::uint32_t tenant = 0;
  double quantile = 0.0;
  double target_ns = 0.0;
  double achieved_ns = 0.0;
  bool pass = false;
};

/// Measurement-window results of one open-loop run (the service analogue of
/// RunStats; reads come from the per-tenant "all" merge).
struct ServiceStats {
  Cycle cycles = 0;  ///< Measurement window length.
  std::uint64_t generated = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;  ///< Reads completed inside the window.
  std::uint64_t backlog_at_end = 0;
  std::uint64_t reg_stall_cycles = 0;  ///< Head-of-queue cycles denied by regulation.
  std::uint64_t bp_stall_cycles = 0;   ///< Head-of-queue cycles denied by backpressure.
  double offered_gbps = 0.0;   ///< Generated load (reads+writes).
  double achieved_gbps = 0.0;  ///< Admitted load (reads+writes).
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double max_ns = 0.0;
  double mean_ns = 0.0;
  mem::MemorySnapshot mem;  ///< Deltas over the window.
};

class ServiceDriver {
 public:
  ServiceDriver(const sys::SystemConfig& cfg, const ServiceConfig& svc,
                std::uint64_t seed = 42);

  /// Force lockstep ticking (also selectable via COAXIAL_TICK_EVERY_CYCLE,
  /// read inside run()). Call before run().
  void set_tick_every_cycle(bool v) { tick_every_cycle_ = v; }

  /// Generate arrivals over [0, warmup + measure), admit against the
  /// memory system, drain completions, then run the tail until every
  /// admitted read has completed. Arrival and injection stop at the
  /// horizon; leftover queue occupancy is reported as backlog.
  void run();

  const ServiceStats& stats() const { return stats_; }
  const std::vector<SloCheck>& slo_checks() const { return slo_; }
  const ServiceConfig& service_config() const { return svc_; }
  const sys::SystemConfig& config() const { return cfg_; }

  /// Per-tenant / merged latency histograms (valid after run()).
  const FixedHistogram& tenant_latency(std::uint32_t tenant) const {
    return tenants_[tenant].lat;
  }
  const FixedHistogram& all_latency() const { return all_lat_; }

  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  struct Queued {
    Cycle at = 0;  ///< Arrival cycle (latency epoch).
    Addr line = 0;
    bool is_write = false;
  };
  struct TenantState {
    std::unique_ptr<workload::ArrivalGenerator> gen;
    workload::ServiceRequest next;  ///< Pre-drawn head of the arrival stream.
    bool exhausted = false;         ///< next.at reached the horizon.
    std::deque<Queued> queue;
    FixedHistogram lat;
    // Counters (mirrored into the registry via probes).
    std::uint64_t generated = 0;
    std::uint64_t admitted = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t completed = 0;
    std::uint64_t reg_stall_cycles = 0;
    std::uint64_t bp_stall_cycles = 0;
    TenantState(Cycle bucket, std::uint32_t buckets) : lat(bucket, buckets) {}
  };

  void step(Cycle now);            ///< One cycle: arrivals, admission, tick, drain.
  Cycle next_event_after(Cycle now) const;
  void evaluate_slos();
  void register_metrics();

  sys::SystemConfig cfg_;
  ServiceConfig svc_;
  std::uint64_t seed_;
  Cycle horizon_ = 0;

  /// Declared before the memory system so probes it registered are
  /// destroyed only after it (same ordering rule as System).
  obs::MetricsRegistry metrics_;

  std::unique_ptr<mem::MemorySystem> memory_;
  std::unique_ptr<calm::BandwidthRegulator> regulator_;
  std::vector<TenantState> tenants_;
  FixedHistogram all_lat_;  ///< Merge of every tenant (same shape).

  /// token -> (tenant, arrival cycle) for inflight reads.
  struct Inflight {
    std::uint32_t tenant = 0;
    Cycle at = 0;
    bool used = false;
  };
  std::vector<Inflight> inflight_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t inflight_count_ = 0;

  bool tick_every_cycle_ = false;
  Cycle mem_wake_ = 0;

  ServiceStats stats_;
  std::vector<SloCheck> slo_;
};

}  // namespace coaxial::sim
