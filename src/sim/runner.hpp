// Run harness: builds systems for (configuration, workload) pairs, runs the
// measurement protocol, and fans independent runs out over a thread pool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coaxial/configs.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace coaxial::sim {

struct RunRequest {
  sys::SystemConfig config;
  std::vector<std::string> workloads;  ///< One per core; a single name is
                                       ///< replicated across all cores.
  std::uint64_t warmup_instr = 120'000;
  std::uint64_t measure_instr = 400'000;
  std::uint64_t seed = 42;
};

struct RunResult {
  std::string config_name;
  std::string workload_name;  ///< Single name or "mix-<i>".
  RunStats stats;
};

/// Run one simulation synchronously.
RunResult run_one(const RunRequest& request);

/// Run many simulations, using up to `threads` host threads (0 = hardware
/// concurrency). Results are returned in request order.
std::vector<RunResult> run_many(const std::vector<RunRequest>& requests,
                                std::size_t threads = 0);

/// Convenience: request for one workload replicated on all cores.
RunRequest homogeneous(const sys::SystemConfig& cfg, const std::string& workload,
                       std::uint64_t warmup, std::uint64_t measure,
                       std::uint64_t seed = 42);

}  // namespace coaxial::sim
