// Run harness: builds systems for (configuration, workload) pairs, runs the
// measurement protocol, and fans independent runs out over a thread pool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coaxial/configs.hpp"
#include "obs/metrics.hpp"
#include "sim/pooled_system.hpp"
#include "sim/service.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace coaxial::sim {

struct RunRequest {
  sys::SystemConfig config;
  std::vector<std::string> workloads;  ///< One per core; a single name is
                                       ///< replicated across all cores.
  std::uint64_t warmup_instr = 120'000;
  std::uint64_t measure_instr = 400'000;
  std::uint64_t seed = 42;
  std::uint32_t mix_id = 0;  ///< Names multi-workload requests "mix-<i>".

  /// Open-loop service traffic. When `service.enabled()` (any tenant
  /// configured), the run is an open-loop ServiceDriver run: the instruction
  /// budgets and workload names above are ignored, and end-of-run is defined
  /// by the simulated-time horizon instead of per-core trace length.
  ServiceConfig service;

  /// Multi-host pooled-memory run. When `pool.enabled()` (n_hosts > 0) the
  /// run is a sim::PooledSystem run: `config` and `workloads` above are
  /// ignored (the pool config carries its own workload name) and the
  /// instruction budgets apply per host slice. Checked before `service`.
  pool::PoolConfig pool;

  /// Tiering overrides applied on top of `config.tiering` (sweep knobs for
  /// benches/tools; defaults leave the config untouched). `tier_policy`
  /// must be a placement::policy_from_name() name; zero budget values keep
  /// the config's. Overrides require `config.tiering.enabled`.
  std::string tier_policy;
  std::uint64_t tier_fast_pages = 0;
  Cycle tier_epoch_cycles = 0;

  /// Intra-run shard workers for pooled runs (DESIGN.md §14). 0 reads
  /// COAXIAL_SHARDS (default 1: the sequential inline pump). Any worker
  /// count yields byte-identical stats. Explicitly requesting > 1 on a
  /// switched pool throws; an env-derived value is clamped to 1 there.
  std::uint32_t shards = 0;
  /// Harness cap on effective shard workers (0 = uncapped). run_many sets
  /// it from inner_shard_cap() so outer runs x inner shard workers never
  /// oversubscribe the machine.
  std::uint32_t shard_cap = 0;
};

struct RunResult {
  std::string config_name;
  std::string workload_name;  ///< Single name, "mix-<i>", or the service name.
  std::uint64_t seed = 0;
  // Closed-loop budget (valid when !open_loop): instructions per core.
  std::uint64_t warmup_instr = 0;
  std::uint64_t measure_instr = 0;
  // Open-loop budget (valid when open_loop): simulated-cycle horizon.
  bool open_loop = false;
  Cycle warmup_cycles = 0;
  Cycle measure_cycles = 0;
  double host_seconds = 0;  ///< Host wall-clock spent inside run().
  std::uint32_t shards = 1;   ///< Effective shard workers (pooled runs).
  RunStats stats;             ///< Closed-loop window results (zero when open_loop).
  ServiceStats service;       ///< Open-loop window results (zero otherwise).
  PooledStats pooled;         ///< Multi-host pooled results (zero otherwise).
  std::vector<SloCheck> slo;  ///< Declared-SLO outcomes (open-loop only).
  obs::Snapshot metrics;  ///< Full registry snapshot taken after run().
};

/// Run one simulation synchronously.
RunResult run_one(const RunRequest& request);

/// Run many simulations, using up to `threads` host threads (0 = hardware
/// concurrency). Results are returned in request order.
std::vector<RunResult> run_many(const std::vector<RunRequest>& requests,
                                std::size_t threads = 0);

/// Convenience: request for one workload replicated on all cores.
RunRequest homogeneous(const sys::SystemConfig& cfg, const std::string& workload,
                       std::uint64_t warmup, std::uint64_t measure,
                       std::uint64_t seed = 42);

/// The (config, workload) triplet pinned by tests/golden/baseline.json.
/// Shared by the golden-regression test and tools/golden_run so both always
/// describe the same runs.
std::vector<RunRequest> golden_requests();

/// Optional fields of the stats JSON document. Everything that is not
/// deterministic (host timing) is opt-in so the default document stays
/// byte-identical for identical runs.
struct StatsJsonOptions {
  bool include_host_seconds = false;  ///< Emit per-run `host_seconds`.
};

/// Canonical JSON stats document ("coaxial-stats-v1") for one run or a batch.
/// Byte-identical for identical runs — the determinism and golden-regression
/// tests compare these documents directly.
std::string stats_json(const RunResult& result, const StatsJsonOptions& options = {});
std::string stats_json(const std::vector<RunResult>& results,
                       const StatsJsonOptions& options = {});

/// Write `stats_json(results, options)` to `path`. Returns false on I/O
/// failure.
bool write_stats_json(const std::vector<RunResult>& results, const std::string& path,
                      const StatsJsonOptions& options = {});

}  // namespace coaxial::sim
