// Plain-text table and CSV emission for benchmark harnesses.
//
// Each bench prints the paper element's rows/series to stdout and writes a
// CSV with the same data next to the binary (path printed), so plots can be
// regenerated without re-running simulations.
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace coaxial::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Render with aligned columns to `os`.
  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], cells[i].size());
      }
    };
    widen(headers_);
    for (const auto& r : rows_) widen(r);

    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : std::string{};
        os << std::left << std::setw(static_cast<int>(width[i]) + 2) << c;
      }
      os << '\n';
    };
    emit(headers_);
    std::string rule;
    for (std::size_t i = 0; i < width.size(); ++i) rule += std::string(width[i] + 2, '-');
    os << rule << '\n';
    for (const auto& r : rows_) emit(r);
  }

  /// Write as CSV; returns true on success.
  bool write_csv(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) f << ',';
        f << cells[i];
      }
      f << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
    return static_cast<bool>(f);
  }

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string num(double v, int precision = 2) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace coaxial::report
