#include "cache/mshr.hpp"

#include <gtest/gtest.h>

namespace coaxial::cache {
namespace {

TEST(Mshr, AllocatesNewEntry) {
  Mshr m(4);
  EXPECT_EQ(m.on_miss(10, 1), MshrOutcome::kAllocated);
  EXPECT_TRUE(m.holds(10));
  EXPECT_EQ(m.in_flight(), 1u);
}

TEST(Mshr, MergesSecondaryMiss) {
  Mshr m(4);
  m.on_miss(10, 1);
  EXPECT_EQ(m.on_miss(10, 2), MshrOutcome::kMerged);
  EXPECT_EQ(m.in_flight(), 1u);  // Still one entry.
  EXPECT_EQ(m.merged(), 1u);
}

TEST(Mshr, RejectsWhenFull) {
  Mshr m(2);
  m.on_miss(1, 1);
  m.on_miss(2, 2);
  EXPECT_TRUE(m.full());
  EXPECT_EQ(m.on_miss(3, 3), MshrOutcome::kFull);
  EXPECT_EQ(m.rejections(), 1u);
  // But merging into an existing entry still works at capacity.
  EXPECT_EQ(m.on_miss(1, 4), MshrOutcome::kMerged);
}

TEST(Mshr, FillReturnsAllWaitersInOrder) {
  Mshr m(4);
  m.on_miss(7, 100);
  m.on_miss(7, 200);
  m.on_miss(7, 300);
  const auto waiters = m.on_fill(7);
  ASSERT_EQ(waiters.size(), 3u);
  EXPECT_EQ(waiters[0], 100u);
  EXPECT_EQ(waiters[1], 200u);
  EXPECT_EQ(waiters[2], 300u);
  EXPECT_FALSE(m.holds(7));
  EXPECT_EQ(m.in_flight(), 0u);
}

TEST(Mshr, StrayFillReturnsEmpty) {
  Mshr m(4);
  EXPECT_TRUE(m.on_fill(42).empty());
}

TEST(Mshr, CapacityFreedAfterFill) {
  Mshr m(1);
  m.on_miss(1, 1);
  EXPECT_EQ(m.on_miss(2, 2), MshrOutcome::kFull);
  m.on_fill(1);
  EXPECT_EQ(m.on_miss(2, 2), MshrOutcome::kAllocated);
}

TEST(Mshr, CountsAllocations) {
  Mshr m(8);
  for (Addr line = 0; line < 5; ++line) m.on_miss(line, line);
  EXPECT_EQ(m.allocations(), 5u);
  EXPECT_EQ(m.capacity(), 8u);
}

class MshrStress : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MshrStress, InFlightNeverExceedsCapacity) {
  const std::size_t cap = GetParam();
  Mshr m(cap);
  std::uint64_t pending_lines = 0;
  for (Addr line = 0; line < 1000; ++line) {
    const auto r = m.on_miss(line % (cap * 2), line);
    if (r == MshrOutcome::kAllocated) ++pending_lines;
    EXPECT_LE(m.in_flight(), cap);
    if (line % 3 == 0 && m.holds(line % (cap * 2))) {
      m.on_fill(line % (cap * 2));
    }
  }
  (void)pending_lines;
}

INSTANTIATE_TEST_SUITE_P(Caps, MshrStress, ::testing::Values(1u, 2u, 8u, 16u, 64u));

}  // namespace
}  // namespace coaxial::cache
