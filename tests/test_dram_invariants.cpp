// Property tests for the shadow timing-invariant checkers.
//
// The positive half drives the real FR-FCFS controller with randomized
// request streams and asserts the shadow TimingChecker never fires — the
// scheduler's bookkeeping and the protocol must agree on every command it
// issues. The negative half feeds the checker (and the CXL link) malformed
// command sequences directly and asserts each invariant actually trips, so
// a silently-broken checker can't green-light a broken scheduler.
#include <random>

#include <gtest/gtest.h>

#include "dram/controller.hpp"
#include "dram/timing_check.hpp"
#include "link/cxl_link.hpp"

namespace coaxial::dram {
namespace {

// ------------------------------------------------- controller property test

struct StreamParams {
  std::uint64_t seed = 1;
  double enqueue_prob = 0.5;   ///< Chance of an enqueue attempt per cycle.
  double write_frac = 0.3;
  Addr addr_space = 1 << 20;   ///< Local line addresses drawn from [0, N).
  Cycle cycles = 30000;
};

// Drives a controller with a random request stream and returns it for
// inspection. Starts at cycle 1: cycle 0 is indistinguishable from
// "never" in some of the controller's next_* state.
void drive(Controller& ctrl, const StreamParams& p) {
  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<Addr> addr(0, p.addr_space - 1);
  std::uint64_t token = 0;
  for (Cycle now = 1; now <= p.cycles; ++now) {
    if (coin(rng) < p.enqueue_prob) {
      const bool is_write = coin(rng) < p.write_frac;
      if (ctrl.can_accept(is_write)) {
        ctrl.enqueue(addr(rng), is_write, now, token++);
      }
    }
    ctrl.tick(now);
    ctrl.completions().clear();
  }
}

TEST(DramInvariants, RandomStreamsNeverFireChecker) {
  const Timing timing;      // DDR5-4800 defaults.
  const Geometry geometry;  // 8 groups x 4 banks.
  for (std::uint64_t seed : {1ull, 42ull, 1337ull}) {
    Controller ctrl(timing, geometry);
    StreamParams p;
    p.seed = seed;
    drive(ctrl, p);
    const TimingChecker& chk = ctrl.timing_checker();
    EXPECT_EQ(chk.violations(), 0u) << "seed " << seed;
    EXPECT_GT(ctrl.stats().reads_done, 0u) << "seed " << seed;
    EXPECT_GT(ctrl.stats().activates, 0u) << "seed " << seed;
  }
}

TEST(DramInvariants, HighLoadKeepsActToActSpacingAboveTrc) {
  const Timing timing;
  const Geometry geometry;
  Controller ctrl(timing, geometry);
  StreamParams p;
  p.seed = 7;
  p.enqueue_prob = 0.95;       // Saturate the queues.
  p.addr_space = 1 << 12;      // Small footprint: lots of bank reuse.
  drive(ctrl, p);
  const TimingChecker& chk = ctrl.timing_checker();
  EXPECT_EQ(chk.violations(), 0u);
  // Under this load some bank must see repeated activates; their spacing
  // must honour tRC (= tRAS + tRP = 116 cycles for DDR5-4800).
  ASSERT_NE(chk.min_act_gap(), kNoCycle) << "no bank saw two ACTs";
  EXPECT_GE(chk.min_act_gap(), timing.rc());
}

TEST(DramInvariants, WriteHeavyStreamsAlsoClean) {
  const Timing timing;
  const Geometry geometry;
  Controller ctrl(timing, geometry);
  StreamParams p;
  p.seed = 99;
  p.write_frac = 0.9;          // Exercise write drain + turnaround paths.
  p.enqueue_prob = 0.8;
  drive(ctrl, p);
  EXPECT_EQ(ctrl.timing_checker().violations(), 0u);
  EXPECT_GT(ctrl.stats().writes_done, 0u);
}

// ------------------------------------------------ checker negative coverage

Coord bank0() { return Coord{0, 0, 0, 0, 0}; }

TEST(TimingChecker, ActToActBelowTrcCounts) {
  const Timing t;
  TimingChecker chk(t, Geometry{});
  chk.on_act(bank0(), 100);
  chk.on_act(bank0(), 100 + t.rc() - 1);
  EXPECT_EQ(chk.trc_violations(), 1u);
  EXPECT_EQ(chk.violations(), 1u);
  EXPECT_EQ(chk.min_act_gap(), t.rc() - 1);
}

TEST(TimingChecker, ActToActAtExactlyTrcIsLegal) {
  const Timing t;
  TimingChecker chk(t, Geometry{});
  chk.on_act(bank0(), 100);
  chk.on_act(bank0(), 100 + t.rc());
  EXPECT_EQ(chk.violations(), 0u);
  EXPECT_EQ(chk.min_act_gap(), t.rc());
}

TEST(TimingChecker, CasBeforeTrcdCounts) {
  const Timing t;
  TimingChecker chk(t, Geometry{});
  chk.on_act(bank0(), 100);
  chk.on_cas(bank0(), /*is_write=*/false, 100 + t.rcd - 1);
  EXPECT_EQ(chk.trcd_violations(), 1u);
  chk.on_act(bank0(), 5000);
  chk.on_cas(bank0(), /*is_write=*/false, 5000 + t.rcd);
  EXPECT_EQ(chk.trcd_violations(), 1u);  // At-boundary CAS is legal.
}

TEST(TimingChecker, ActBeforeTrpAfterPrechargeCounts) {
  const Timing t;
  const Geometry g;
  TimingChecker chk(t, g);
  chk.on_pre(bank0().flat_bank_all(g), 200);
  chk.on_act(bank0(), 200 + t.rp - 1);
  EXPECT_EQ(chk.trp_violations(), 1u);
}

TEST(TimingChecker, PrechargeBeforeTrasCounts) {
  const Timing t;
  const Geometry g;
  TimingChecker chk(t, g);
  chk.on_act(bank0(), 100);
  chk.on_pre(bank0().flat_bank_all(g), 100 + t.ras - 1);
  EXPECT_EQ(chk.tras_violations(), 1u);
}

TEST(TimingChecker, SameGroupCasWithinCcdLCounts) {
  const Timing t;
  TimingChecker chk(t, Geometry{});
  Coord a = bank0();
  Coord b = bank0();
  b.bank = 1;  // Different bank, same bank group -> tCCD_L applies.
  chk.on_cas(a, false, 1000);
  chk.on_cas(b, false, 1000 + t.ccd_l - 1);
  EXPECT_EQ(chk.tccd_violations(), 1u);
  Coord c = bank0();
  c.bank_group = 1;  // Different group: only tCCD_S, checker stays quiet.
  chk.on_cas(c, false, 1000 + t.ccd_l);
  EXPECT_EQ(chk.tccd_violations(), 1u);
}

TEST(TimingChecker, FifthActInsideFawWindowCounts) {
  const Timing t;
  TimingChecker chk(t, Geometry{});
  // Four ACTs to distinct banks, tightly spaced but individually legal.
  for (std::uint32_t i = 0; i < 4; ++i) {
    Coord c = bank0();
    c.bank_group = i * 2;  // Distinct groups: no tRRD_L/tCCD_L interference.
    chk.on_act(c, 1000 + i);
  }
  EXPECT_EQ(chk.tfaw_violations(), 0u);
  Coord fifth = bank0();
  fifth.bank_group = 1;
  chk.on_act(fifth, 1000 + t.faw - 1);  // < faw after the window's first ACT.
  EXPECT_EQ(chk.tfaw_violations(), 1u);
}

TEST(TimingChecker, RefreshPastDeadlineSlackCounts) {
  const Timing t;
  TimingChecker chk(t, Geometry{});
  chk.on_refresh(/*now=*/t.refi + 100, /*deadline=*/100);  // Exactly one tREFI late: legal.
  EXPECT_EQ(chk.refresh_violations(), 0u);
  chk.on_refresh(/*now=*/2 * t.refi + 201, /*deadline=*/t.refi + 200);
  EXPECT_EQ(chk.refresh_violations(), 1u);
}

// ------------------------------------------------------- CXL link invariants

TEST(CxlLinkInvariants, GatedSendsNeverViolate) {
  link::CxlLink link(link::LaneConfig::x8(), /*max_backlog_cycles=*/64);
  Cycle now = 1;
  for (int i = 0; i < 2000; ++i) {
    if (link.can_send_tx(now)) link.send_tx(link::kWriteMessageBytes, now);
    if (link.can_send_rx(now)) link.send_rx(link::kReadResponseBytes, now);
    now += (i % 3 == 0) ? 1 : 0;  // Bursts of same-cycle sends.
  }
  EXPECT_EQ(link.invariant_violations(), 0u);
  EXPECT_LE(link.occupancy_high_water(), 64u + link.config().rx_line_cycles() +
                                             link.config().tx_line_cycles());
}

TEST(CxlLinkInvariants, BypassingCreditGateTrips) {
  link::CxlLink link(link::LaneConfig::x8(), /*max_backlog_cycles=*/4);
  const Cycle now = 1;
  // Flood one direction without consulting can_send_tx. Once the backlog
  // saturates, each further admission is a credit violation.
  while (link.can_send_tx(now)) link.send_tx(link::kWriteMessageBytes, now);
  EXPECT_EQ(link.invariant_violations(), 0u);
  link.send_tx(link::kWriteMessageBytes, now);
  EXPECT_GE(link.invariant_violations(), 1u);
  EXPECT_GT(link.occupancy_high_water(), 4u);
}

}  // namespace
}  // namespace coaxial::dram
