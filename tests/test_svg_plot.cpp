#include "sim/svg_plot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace coaxial::report {
namespace {

class SvgTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string slurp() {
    std::ifstream f(path_);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
  }
  std::string path_ = "/tmp/coaxial_test_plot.svg";
};

TEST_F(SvgTest, BarChartWritesWellFormedSvg) {
  ASSERT_TRUE(write_bar_chart_svg(path_, "Speedup", {"a", "b", "c"},
                                  {{"COAXIAL-4x", {1.2, 0.9, 3.0}}}, 1.0));
  const std::string svg = slurp();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Speedup"), std::string::npos);
  EXPECT_NE(svg.find("COAXIAL-4x"), std::string::npos);
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);  // Reference line.
  // One rect per (category, series) plus background.
  EXPECT_GE(static_cast<int>(std::count(svg.begin(), svg.end(), 'r')), 3);
}

TEST_F(SvgTest, BarChartMultiSeries) {
  ASSERT_TRUE(write_bar_chart_svg(path_, "t", {"w1", "w2"},
                                  {{"s1", {1, 2}}, {"s2", {2, 1}}, {"s3", {3, 3}}}));
  const std::string svg = slurp();
  EXPECT_NE(svg.find("s1"), std::string::npos);
  EXPECT_NE(svg.find("s3"), std::string::npos);
}

TEST_F(SvgTest, BarChartRejectsEmptyInput) {
  EXPECT_FALSE(write_bar_chart_svg(path_, "t", {}, {{"s", {}}}));
  EXPECT_FALSE(write_bar_chart_svg(path_, "t", {"a"}, {}));
}

TEST_F(SvgTest, EscapesMarkupInLabels) {
  ASSERT_TRUE(write_bar_chart_svg(path_, "a<b&c>", {"x<y"}, {{"s&t", {1.0}}}));
  const std::string svg = slurp();
  EXPECT_EQ(svg.find("a<b"), std::string::npos);
  EXPECT_NE(svg.find("a&lt;b&amp;c&gt;"), std::string::npos);
}

TEST_F(SvgTest, LineChartWritesPolylines) {
  ASSERT_TRUE(write_line_chart_svg(path_, "load-latency", {10, 20, 30, 40},
                                   {{"avg", {50, 60, 90, 200}}, {"p90", {60, 90, 160, 400}}},
                                   "util %", "latency ns"));
  const std::string svg = slurp();
  EXPECT_EQ(std::count(svg.begin(), svg.end(), '\n') > 10, true);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("util %"), std::string::npos);
  EXPECT_NE(svg.find("latency ns"), std::string::npos);
}

TEST_F(SvgTest, LineChartNeedsTwoPoints) {
  EXPECT_FALSE(write_line_chart_svg(path_, "t", {1.0}, {{"s", {1.0}}}, "x", "y"));
}

TEST_F(SvgTest, BadPathReturnsFalse) {
  EXPECT_FALSE(write_bar_chart_svg("/nonexistent-dir/x.svg", "t", {"a"}, {{"s", {1}}}));
}

TEST_F(SvgTest, ZeroAndNegativeValuesClampToBaseline) {
  ASSERT_TRUE(write_bar_chart_svg(path_, "t", {"a", "b"}, {{"s", {0.0, -5.0}}}));
  const std::string svg = slurp();
  EXPECT_NE(svg.find("</svg>"), std::string::npos);  // No NaN explosions.
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace coaxial::report
