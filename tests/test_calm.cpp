#include "coaxial/calm.hpp"

#include <gtest/gtest.h>

#include "cache/cache.hpp"

namespace coaxial::calm {
namespace {

cache::Cache make_llc() { return cache::Cache(64 * 1024, 16); }

TEST(Calm, NonePolicyNeverProbes) {
  CalmConfig cfg;
  cfg.policy = Policy::kNone;
  Decider d(cfg, 16.0, 12);
  auto llc = make_llc();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(d.decide(0, i, 0x400, i, llc));
  }
  EXPECT_EQ(d.stats().decisions, 100u);
  EXPECT_EQ(d.stats().probes, 0u);
}

TEST(Calm, OraclePeeksLlcExactly) {
  CalmConfig cfg;
  cfg.policy = Policy::kOracle;
  Decider d(cfg, 16.0, 12);
  auto llc = make_llc();
  llc.fill(5, false);
  EXPECT_FALSE(d.decide(0, 5, 0x400, 0, llc));   // Present: no probe.
  EXPECT_TRUE(d.decide(0, 99, 0x400, 0, llc));   // Absent: probe.
}

TEST(Calm, MapIStartsPredictingMiss) {
  CalmConfig cfg;
  cfg.policy = Policy::kMapI;
  Decider d(cfg, 16.0, 12);
  auto llc = make_llc();
  EXPECT_TRUE(d.decide(0, 1, 0x400, 0, llc));
}

TEST(Calm, MapILearnsHitsPerPc) {
  CalmConfig cfg;
  cfg.policy = Policy::kMapI;
  Decider d(cfg, 16.0, 12);
  auto llc = make_llc();
  const Addr pc = 0x408;
  // Train: this PC always hits the LLC.
  for (int i = 0; i < 16; ++i) d.on_llc_result(0, pc, /*llc_hit=*/true, true, i);
  EXPECT_FALSE(d.decide(0, 1, pc, 100, llc));
  // A different PC (different table index) still predicts miss.
  EXPECT_TRUE(d.decide(0, 1, pc + 8, 100, llc));
}

TEST(Calm, MapIRelearnsMisses) {
  CalmConfig cfg;
  cfg.policy = Policy::kMapI;
  Decider d(cfg, 16.0, 12);
  auto llc = make_llc();
  const Addr pc = 0x410;
  for (int i = 0; i < 16; ++i) d.on_llc_result(0, pc, true, true, i);
  ASSERT_FALSE(d.decide(0, 1, pc, 100, llc));
  for (int i = 0; i < 16; ++i) d.on_llc_result(0, pc, false, false, 100 + i);
  EXPECT_TRUE(d.decide(0, 1, pc, 200, llc));
}

TEST(Calm, RegulatedProbesWhenBandwidthIsFree) {
  CalmConfig cfg;
  cfg.policy = Policy::kRegulated;
  cfg.r_fraction = 0.7;
  Decider d(cfg, /*peak B/cyc=*/16.0, /*num_l2=*/1);
  auto llc = make_llc();
  // No recorded traffic: estimators are zero -> probability 1.
  int probes = 0;
  for (int i = 0; i < 100; ++i) {
    if (d.decide(0, i, 0x400, i, llc)) ++probes;
  }
  EXPECT_EQ(probes, 100);
}

TEST(Calm, RegulatedStopsWhenFilteredBandwidthSaturates) {
  CalmConfig cfg;
  cfg.policy = Policy::kRegulated;
  cfg.r_fraction = 0.5;
  cfg.epoch_cycles = 128;
  Decider d(cfg, 16.0, 1);  // Share = 8 B/cycle.
  auto llc = make_llc();
  // Record an epoch of LLC-missing traffic far above the share:
  // one 64 B miss per cycle = 64 B/cycle filtered demand.
  for (Cycle t = 0; t < 256; ++t) d.on_llc_result(0, 0x400, /*llc_hit=*/false, true, t);
  // Decide within the epoch right after training (estimates are fresh;
  // after an idle epoch the estimate decays by design).
  int probes = 0;
  for (int i = 0; i < 100; ++i) {
    if (d.decide(0, i, 0x400, 260 + i % 60, llc)) ++probes;
  }
  EXPECT_EQ(probes, 0);
}

TEST(Calm, RegulatedPartialProbability) {
  CalmConfig cfg;
  cfg.policy = Policy::kRegulated;
  cfg.r_fraction = 0.5;
  cfg.epoch_cycles = 1024;
  Decider d(cfg, 16.0, 1);  // Share = 8 B/cycle.
  auto llc = make_llc();
  // One L2 miss every 4 cycles (unfiltered 16 B/cycle); one in four of
  // those misses the LLC (filtered 4 B/cycle) => p = (8-4)/16 = 0.25.
  for (Cycle t = 0; t < 2048; t += 4) {
    const bool miss = (t % 16) == 0;
    d.on_llc_result(0, 0x400, !miss, true, t);
  }
  int probes = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (d.decide(0, i, 0x400, 2050 + i % 512, llc)) ++probes;
  }
  EXPECT_NEAR(static_cast<double>(probes) / n, 0.25, 0.05);
}

TEST(Calm, ConfusionMatrixConsistency) {
  CalmConfig cfg;
  cfg.policy = Policy::kOracle;
  Decider d(cfg, 16.0, 2);
  auto llc = make_llc();
  llc.fill(1, false);
  // Probe + miss, probe + hit, no-probe + hit, no-probe + miss.
  d.on_llc_result(0, 0x400, false, true, 1);
  d.on_llc_result(0, 0x400, true, true, 2);
  d.on_llc_result(1, 0x400, true, false, 3);
  d.on_llc_result(1, 0x400, false, false, 4);
  const CalmStats& s = d.stats();
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_EQ(s.true_negatives, 1u);
  EXPECT_EQ(s.false_negatives, 1u);
  EXPECT_EQ(s.probes, 2u);
}

TEST(Calm, RatesComputedOverDecisions) {
  CalmStats s;
  s.decisions = 10;
  s.false_positives = 2;
  s.false_negatives = 3;
  EXPECT_DOUBLE_EQ(s.false_positive_rate(), 0.2);
  EXPECT_DOUBLE_EQ(s.false_negative_rate(), 0.3);
  EXPECT_EQ(CalmStats{}.false_positive_rate(), 0.0);
}

TEST(Calm, ResetStatsClears) {
  CalmConfig cfg;
  cfg.policy = Policy::kOracle;
  Decider d(cfg, 16.0, 1);
  auto llc = make_llc();
  d.decide(0, 1, 0x400, 0, llc);
  d.reset_stats();
  EXPECT_EQ(d.stats().decisions, 0u);
}

class CalmThreshold : public ::testing::TestWithParam<double> {};

TEST_P(CalmThreshold, HigherRProbesAtLeastAsOften) {
  const double r = GetParam();
  auto run = [&](double r_frac) {
    CalmConfig cfg;
    cfg.policy = Policy::kRegulated;
    cfg.r_fraction = r_frac;
    cfg.epoch_cycles = 512;
    Decider d(cfg, 16.0, 1);
    auto llc = make_llc();
    for (Cycle t = 0; t < 1024; ++t) {
      d.on_llc_result(0, 0x400, (t % 3) != 0, true, t);
    }
    int probes = 0;
    for (int i = 0; i < 2000; ++i) {
      if (d.decide(0, i, 0x400, 2000, llc)) ++probes;
    }
    return probes;
  };
  EXPECT_GE(run(r) + 60, run(r - 0.2));  // Allow sampling noise.
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CalmThreshold, ::testing::Values(0.5, 0.6, 0.7, 0.9));

}  // namespace
}  // namespace coaxial::calm
// -- Hybrid policy (extension) ----------------------------------------------

namespace coaxial::calm {
namespace {

TEST(CalmHybrid, RequiresBothPredictorAndBudget) {
  CalmConfig cfg;
  cfg.policy = Policy::kHybrid;
  cfg.r_fraction = 0.5;
  cfg.epoch_cycles = 128;
  Decider d(cfg, 16.0, 1);
  auto llc = cache::Cache(64 * 1024, 16);
  // Fresh state: MAP-I predicts miss and budget is free -> probes.
  EXPECT_TRUE(d.decide(0, 1, 0x400, 0, llc));
  // Train the PC to hit: predictor vetoes even with free budget.
  for (int i = 0; i < 16; ++i) d.on_llc_result(0, 0x400, true, true, i);
  EXPECT_FALSE(d.decide(0, 1, 0x400, 20, llc));
  // Saturate the budget on a miss-predicting PC: regulator vetoes.
  for (Cycle t = 0; t < 256; ++t) d.on_llc_result(0, 0x500, false, true, t);
  EXPECT_FALSE(d.decide(0, 1, 0x500, 300, llc));
}

TEST(CalmHybrid, TrainsLikeMapI) {
  CalmConfig cfg;
  cfg.policy = Policy::kHybrid;
  Decider d(cfg, 1e9, 1);  // Effectively unlimited budget.
  auto llc = cache::Cache(64 * 1024, 16);
  const Addr pc = 0x600;
  for (int i = 0; i < 16; ++i) d.on_llc_result(0, pc, true, true, i);
  EXPECT_FALSE(d.decide(0, 1, pc, 100, llc));
  for (int i = 0; i < 16; ++i) d.on_llc_result(0, pc, false, false, 200 + i);
  EXPECT_TRUE(d.decide(0, 1, pc, 300, llc));
}

}  // namespace
}  // namespace coaxial::calm
