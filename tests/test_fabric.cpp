// CXL fabric subsystem tests: topology construction + validation, the
// cross-device interleaving policies, deterministic round-robin switch
// arbitration, per-hop latency additivity in exact cycle math, and
// byte-identical fabric/* metrics across repeated runs.
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "coaxial/memory_system.hpp"
#include "fabric/fabric.hpp"
#include "fabric/router.hpp"
#include "fabric/switch.hpp"
#include "fabric/topology.hpp"
#include "link/lane_config.hpp"
#include "obs/stats_json.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace coaxial::fabric {
namespace {

// ---------------------------------------------------------------- topology

TEST(Topology, DirectShape) {
  const Topology t = Topology::build(resolve(FabricConfig::direct(), 4));
  EXPECT_EQ(t.n_devices, 4u);
  EXPECT_EQ(t.host_links, 4u);
  EXPECT_EQ(t.n_switches, 0u);
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(t.hops(d), 0u);
    EXPECT_EQ(t.root_port_of(d), d);
    EXPECT_EQ(t.nodes[t.device_node(d)].parent, 0);
  }
}

TEST(Topology, StarShape) {
  const Topology t = Topology::build(FabricConfig::star(8, 4));
  EXPECT_EQ(t.n_devices, 8u);
  EXPECT_EQ(t.host_links, 4u);
  EXPECT_EQ(t.n_switches, 1u);
  for (std::uint32_t d = 0; d < 8; ++d) {
    EXPECT_EQ(t.hops(d), 1u);
    EXPECT_EQ(t.root_port_of(d), d % 4);
  }
}

TEST(Topology, TreeShape) {
  const Topology t = Topology::build(FabricConfig::tree(8, 4, 2));
  EXPECT_EQ(t.n_switches, 3u);  // Spine + 2 leaves.
  for (std::uint32_t d = 0; d < 8; ++d) EXPECT_EQ(t.hops(d), 2u);
  // Devices 0-3 hang off leaf switch 1, devices 4-7 off leaf switch 2.
  EXPECT_EQ(t.nodes[t.device_node(0)].parent, static_cast<std::int32_t>(t.switch_node(1)));
  EXPECT_EQ(t.nodes[t.device_node(7)].parent, static_cast<std::int32_t>(t.switch_node(2)));
}

TEST(Topology, ResolveFillsDefaults) {
  const FabricConfig direct = resolve(FabricConfig::direct(), 5);
  EXPECT_EQ(direct.devices, 5u);
  EXPECT_EQ(direct.host_links, 5u);
  FabricConfig star;
  star.kind = TopologyKind::kStar;
  const FabricConfig r = resolve(star, 4);
  EXPECT_EQ(r.devices, 4u);
  EXPECT_EQ(r.host_links, 4u);
}

TEST(Topology, BuildRejectsBadConfigs) {
  EXPECT_THROW(Topology::build(FabricConfig::star(0, 2)), std::invalid_argument);
  EXPECT_THROW(Topology::build(FabricConfig::star(8, 0)), std::invalid_argument);
  // More root ports than devices: some host links would dangle.
  EXPECT_THROW(Topology::build(FabricConfig::star(2, 4)), std::invalid_argument);
  // Devices must distribute evenly across leaf switches.
  EXPECT_THROW(Topology::build(FabricConfig::tree(8, 4, 3)), std::invalid_argument);
  EXPECT_THROW(Topology::build(FabricConfig::tree(8, 4, 0)), std::invalid_argument);
  // Direct fabric is strictly one link per device.
  FabricConfig direct;
  direct.devices = 4;
  direct.host_links = 2;
  EXPECT_THROW(Topology::build(direct), std::invalid_argument);
}

TEST(Topology, ValidateRejectsDanglingPortsAndCycles) {
  // Hand-built host + 2 switches + 1 device so validate() sees raw graphs.
  const auto base = [] {
    Topology t;
    t.host_links = 1;
    t.n_switches = 2;
    t.n_devices = 1;
    t.nodes = {{Topology::NodeKind::kHost, -1},
               {Topology::NodeKind::kSwitch, 0},
               {Topology::NodeKind::kSwitch, 1},
               {Topology::NodeKind::kDevice, 2}};
    return t;
  };
  EXPECT_NO_THROW(base().validate());

  Topology dangling_parent = base();
  dangling_parent.nodes[3].parent = 9;  // Parent port out of range.
  EXPECT_THROW(dangling_parent.validate(), std::invalid_argument);

  Topology childless = base();
  childless.nodes[3].parent = 1;  // Switch 2 loses its only child.
  EXPECT_THROW(childless.validate(), std::invalid_argument);

  Topology cycle = base();
  cycle.nodes[1].parent = 2;  // Switches parent each other.
  cycle.nodes[2].parent = 1;
  EXPECT_THROW(cycle.validate(), std::invalid_argument);

  Topology device_parent = base();
  device_parent.nodes[2].parent = 3;  // A device cannot be a parent.
  EXPECT_THROW(device_parent.validate(), std::invalid_argument);

  Topology two_hosts = base();
  two_hosts.nodes[1] = {Topology::NodeKind::kHost, 0};
  EXPECT_THROW(two_hosts.validate(), std::invalid_argument);
}

// ------------------------------------------------------------------ router

TEST(Router, LineInterleaveMatchesLegacyWiring) {
  // 4 devices x 2 sub-channels: the legacy mapping was
  // sub = line % 8, dev = sub / 2, local = line / 8.
  const Router r(Interleave::kLine, 4, 2, 64, 1 << 20);
  for (Addr line = 0; line < 1000; ++line) {
    const Router::Route route = r.route(line);
    EXPECT_EQ(route.sub, line % 8);
    EXPECT_EQ(route.device, (line % 8) / 2);
    EXPECT_EQ(route.local, line / 8);
  }
}

TEST(Router, PageInterleaveRoundRobinsPagesAcrossDevices) {
  const Router r(Interleave::kPage, 4, 2, /*page_lines=*/4, 1 << 20);
  // Pages of 4 lines: lines 0-3 -> dev0, 4-7 -> dev1, ..., 16-19 -> dev0.
  const std::uint32_t expected[] = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
                                    3, 3, 3, 3, 0, 0, 0, 0};
  for (Addr line = 0; line < 20; ++line) {
    EXPECT_EQ(r.route(line).device, expected[line]) << "line " << line;
  }
  // Within a device, consecutive local lines stripe across its sub-channels.
  EXPECT_EQ(r.route(0).sub, 0u);
  EXPECT_EQ(r.route(1).sub, 1u);
  EXPECT_EQ(r.route(2).sub, 0u);
  EXPECT_EQ(r.route(4).sub, 2u);  // Device 1 owns global subs 2 and 3.
  EXPECT_EQ(r.route(5).sub, 3u);
}

TEST(Router, ContiguousInterleaveCarvesExtents) {
  const Router r(Interleave::kContiguous, 2, 2, 64, /*contiguous_lines=*/8);
  for (Addr line = 0; line < 8; ++line) EXPECT_EQ(r.route(line).device, 0u);
  for (Addr line = 8; line < 16; ++line) EXPECT_EQ(r.route(line).device, 1u);
  for (Addr line = 16; line < 24; ++line) EXPECT_EQ(r.route(line).device, 0u);
}

TEST(Router, AllPoliciesAreInjective) {
  // Distinct lines must land on distinct (sub, local) slots — a collision
  // would silently alias two addresses onto one DRAM location.
  for (const Interleave policy :
       {Interleave::kLine, Interleave::kPage, Interleave::kContiguous}) {
    const Router r(policy, 4, 2, 4, 8);
    std::set<std::pair<std::uint32_t, Addr>> seen;
    for (Addr line = 0; line < 4096; ++line) {
      const Router::Route route = r.route(line);
      EXPECT_EQ(route.sub / 2, route.device);
      EXPECT_TRUE(seen.insert({route.sub, route.local}).second)
          << "aliased line " << line;
    }
  }
}

// ------------------------------------------------------------------ switch

TEST(Switch, RoundRobinAlternatesBetweenContendingInputs) {
  // Two ingress ports contending for one egress: forwarding must alternate
  // 0,1,0,1,... regardless of enqueue order.
  Switch sw(2, 1, /*goodput=*/26.0, /*fixed=*/10, /*backlog=*/10000, /*depth=*/64);
  for (int i = 0; i < 4; ++i) {
    sw.enqueue(0, {/*ready=*/0, /*dest=*/0, /*bytes=*/64, /*payload=*/0});
    sw.enqueue(1, {/*ready=*/0, /*dest=*/0, /*bytes=*/64, /*payload=*/1});
  }
  std::vector<std::uint64_t> order;
  sw.tick(
      100, [](const FabricMsg&) { return 0u; }, [](std::uint32_t) { return true; },
      [&order](std::uint32_t, const FabricMsg& m, Cycle) { order.push_back(m.payload); });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 0, 1, 0, 1, 0, 1}));
}

TEST(Switch, EgressBacklogBoundsForwardingAndWakes) {
  // Egress backlog of 12 cycles fits two 6-cycle messages per burst; the
  // rest stay queued and the wake bound asks for an immediate retry.
  Switch sw(1, 1, /*goodput=*/26.0, /*fixed=*/10, /*backlog=*/12, /*depth=*/64);
  for (int i = 0; i < 5; ++i) sw.enqueue(0, {0, 0, 64, static_cast<std::uint64_t>(i)});
  int delivered = 0;
  const Cycle wake = sw.tick(
      100, [](const FabricMsg&) { return 0u; }, [](std::uint32_t) { return true; },
      [&delivered](std::uint32_t, const FabricMsg&, Cycle) { ++delivered; });
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(wake, 101u);
}

TEST(Switch, FutureHeadSetsWakeToItsArrival) {
  Switch sw(1, 1, 26.0, 10, 10000, 64);
  sw.enqueue(0, {/*ready=*/500, 0, 64, 0});
  int delivered = 0;
  const Cycle wake = sw.tick(
      100, [](const FabricMsg&) { return 0u; }, [](std::uint32_t) { return true; },
      [&delivered](std::uint32_t, const FabricMsg&, Cycle) { ++delivered; });
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(wake, 500u);
}

// ------------------------------------------------- latency additivity

/// Tick the fabric every cycle until `out` has a delivery; returns it.
Delivery run_until_delivery(Fabric& f, std::vector<Delivery>& out, Cycle start) {
  for (Cycle now = start; now < start + 100000; ++now) {
    f.tick(now);
    if (!out.empty()) {
      const Delivery d = out.front();
      out.clear();
      return d;
    }
  }
  ADD_FAILURE() << "no delivery";
  return {};
}

TEST(Fabric, OneSwitchPathAddsTwoPortTraversalsPlusReserialisation) {
  // Unloaded 1-switch latency = direct + 2 switch-port traversals + one
  // store-and-forward re-serialisation (the switch must receive the whole
  // message before it re-serialises it onto the next segment).
  const link::LaneConfig lanes = link::LaneConfig::x8();
  const Cycle S = FabricConfig().switch_port_cycles();

  Fabric direct(FabricConfig::direct(), 1, lanes);
  Fabric star(FabricConfig::star(1, 1), 1, lanes);

  const Cycle t0 = 1000;
  const Cycle direct_arrival = direct.send_tx(0, link::kReadRequestBytes, t0, 0);
  const Cycle ser = serialization_cycles(lanes.tx_goodput_gbps, link::kReadRequestBytes);
  EXPECT_EQ(direct_arrival, t0 + ser + 2 * lanes.port_latency_cycles());

  star.send_tx(0, link::kReadRequestBytes, t0, 7);
  const Delivery d = run_until_delivery(star, star.tx_deliveries(), t0);
  EXPECT_EQ(d.payload, 7u);
  EXPECT_EQ(d.arrival, direct_arrival + 2 * S + ser);

  // The advertised unloaded latencies agree with the measured path.
  EXPECT_EQ(star.unloaded_tx_cycles(link::kReadRequestBytes),
            direct.unloaded_tx_cycles(link::kReadRequestBytes) + 2 * S + ser);
  EXPECT_EQ(d.arrival, t0 + star.unloaded_tx_cycles(link::kReadRequestBytes));
}

TEST(Fabric, TwoLevelPathAddsOneMoreHopExactly) {
  const link::LaneConfig lanes = link::LaneConfig::x8();
  const Cycle S = FabricConfig().switch_port_cycles();
  const Cycle ser = serialization_cycles(lanes.rx_goodput_gbps, link::kReadResponseBytes);

  Fabric star(FabricConfig::star(2, 1), 2, lanes);
  Fabric tree(FabricConfig::tree(2, 1, 2), 2, lanes);

  const Cycle t0 = 500;
  star.send_rx(0, link::kReadResponseBytes, t0, 1);
  tree.send_rx(0, link::kReadResponseBytes, t0, 1);
  const Cycle star_arrival = run_until_delivery(star, star.rx_deliveries(), t0).arrival;
  const Cycle tree_arrival = run_until_delivery(tree, tree.rx_deliveries(), t0).arrival;
  EXPECT_EQ(tree_arrival, star_arrival + 2 * S + ser);
  EXPECT_EQ(star_arrival, t0 + star.unloaded_rx_cycles(link::kReadResponseBytes));
  EXPECT_EQ(tree_arrival, t0 + tree.unloaded_rx_cycles(link::kReadResponseBytes));
}

TEST(CxlMemoryFabric, UnloadedReadLatencyIsDirectPlusHopPremiums) {
  // End-to-end through CxlMemory: a single unloaded read over a 1-device
  // star must complete exactly (ser_tx + 2S) + (ser_rx + 2S) cycles after
  // the equivalent direct read.
  const link::LaneConfig lanes = link::LaneConfig::x8();
  const Cycle S = FabricConfig().switch_port_cycles();
  const Cycle ser_tx = serialization_cycles(lanes.tx_goodput_gbps, link::kReadRequestBytes);
  const Cycle ser_rx = serialization_cycles(lanes.rx_goodput_gbps, link::kReadResponseBytes);

  const auto run_one = [&](const FabricConfig& fab) {
    mem::CxlMemory m(fab, 1, 1, lanes);
    m.access(0, false, 10, 1);
    for (Cycle now = 10; now < 5000; ++now) {
      m.tick(now);
      for (const auto& comp : m.completions()) {
        if (comp.token == 1) return comp.done;
      }
      m.completions().clear();
    }
    return kNoCycle;
  };

  const Cycle direct_done = run_one(FabricConfig::direct());
  const Cycle star_done = run_one(FabricConfig::star(1, 1));
  ASSERT_NE(direct_done, kNoCycle);
  ASSERT_NE(star_done, kNoCycle);
  EXPECT_EQ(star_done, direct_done + (ser_tx + 2 * S) + (ser_rx + 2 * S));

  mem::CxlMemory direct_mem(FabricConfig::direct(), 1, 1, lanes);
  mem::CxlMemory star_mem(FabricConfig::star(1, 1), 1, 1, lanes);
  EXPECT_EQ(star_mem.read_interface_cycles(),
            direct_mem.read_interface_cycles() + ser_tx + ser_rx + 4 * S);
}

// ----------------------------------------------- end-to-end + determinism

TEST(CxlMemoryFabric, RandomReadsCompleteAcrossStarAndTree) {
  for (const auto& fab : {FabricConfig::star(8, 4), FabricConfig::tree(8, 4, 2)}) {
    mem::CxlMemory m(fab, 4, 1, link::LaneConfig::x8());
    EXPECT_EQ(m.devices(), 8u);
    EXPECT_EQ(m.ports(), 4u);
    EXPECT_EQ(m.subchannels(), 16u);
    std::uint64_t issued = 0, completed = 0;
    Addr line = 0;
    for (Cycle now = 10; now < 60000; ++now) {
      if (issued < 200 && m.can_accept(line, false, now)) {
        m.access(line, false, now, issued);
        ++issued;
        line += 37;  // Co-prime stride, touches every device.
      }
      m.tick(now);
      completed += m.completions().size();
      m.completions().clear();
    }
    EXPECT_EQ(issued, 200u);
    EXPECT_EQ(completed, 200u);
    EXPECT_EQ(m.snapshot().reads, 200u);
  }
}

TEST(CxlMemoryFabric, PortOfFollowsRouterAndRootAssignment) {
  FabricConfig fab = FabricConfig::star(8, 4);
  fab.interleave = Interleave::kPage;
  fab.page_lines = 4;
  mem::CxlMemory m(fab, 4, 1, link::LaneConfig::x8());
  // Page p lands on device p%8, which enters through root port (p%8)%4.
  for (Addr line = 0; line < 64; ++line) {
    EXPECT_EQ(m.port_of(line), ((line / 4) % 8) % 4) << "line " << line;
  }
}

std::string run_star_system(const std::string& wl) {
  sys::SystemConfig cfg = sys::coaxial_star(8, 4);
  std::vector<workload::WorkloadParams> per_core(cfg.uarch.cores,
                                                 workload::find_workload(wl));
  sim::System s(cfg, per_core, /*seed=*/13);
  s.run(/*warmup_instr=*/300, /*measure_instr=*/1500);
  return obs::json::snapshot_to_json(s.metrics().snapshot());
}

TEST(CxlMemoryFabric, FabricMetricsAreByteIdenticalAcrossRuns) {
  // Round-robin arbitration is deterministic: identical seeds must produce
  // identical documents, including every fabric/* subtree, byte for byte.
  const std::string a = run_star_system("lbm");
  const std::string b = run_star_system("lbm");
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"fabric\""), std::string::npos);
  EXPECT_NE(a.find("\"sw00\""), std::string::npos);
  // Switched topologies must not register the direct-link metric paths.
  EXPECT_EQ(a.find("cxl/link"), std::string::npos);
}

}  // namespace
}  // namespace coaxial::fabric
