// Two-stage address translation and tiered placement (DESIGN.md §10):
// config validation, pass-through Router equivalence, tiered translate
// arithmetic, migration determinism across scheduler modes, remap-table
// conservation, and the RunRequest sweep knobs. Lives in the `tier` label
// so the ASan CI pass runs it.
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "obs/stats_json.hpp"
#include "placement/address_map.hpp"
#include "placement/policy.hpp"
#include "placement/tiered_memory.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace coaxial::placement {
namespace {

TierConfig small_tiered() {
  TierConfig cfg;
  cfg.enabled = true;
  cfg.page_lines = 64;
  cfg.fast_capacity_pages = 8;
  cfg.epoch_cycles = 1000;
  return cfg;
}

// ---------------------------------------------------------- config checks

TEST(TierConfig, DisabledConfigValidatesVacuously) {
  TierConfig cfg;
  cfg.epoch_cycles = 0;  // Would be rejected if enabled.
  EXPECT_NO_THROW(cfg.validate());
}

TEST(TierConfig, RejectsZeroEpochLength) {
  TierConfig cfg = small_tiered();
  cfg.epoch_cycles = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(TierConfig, RejectsZeroCapacityAndChannels) {
  TierConfig cfg = small_tiered();
  cfg.fast_capacity_pages = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_tiered();
  cfg.fast_ddr_channels = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_tiered();
  cfg.max_concurrent_migrations = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(TierConfig, RejectsBadSpillFraction) {
  TierConfig cfg = small_tiered();
  cfg.spill_fraction = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.spill_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(TierConfig, RejectsOverlappingHdmRanges) {
  TierConfig cfg = small_tiered();
  cfg.hdm_fast_ranges = {{0, 128}, {64, 128}};  // Pages [0,2) and [1,3).
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.hdm_fast_ranges = {{64, 64}, {0, 64}};  // Unsorted but disjoint: fine.
  EXPECT_NO_THROW(cfg.validate());
}

TEST(TierConfig, RejectsMisalignedHdmRanges) {
  TierConfig cfg = small_tiered();
  cfg.hdm_fast_ranges = {{32, 64}};  // base not page-aligned
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.hdm_fast_ranges = {{64, 32}};  // length not page-aligned
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(TierConfig, RejectsCapacitySmallerThanPinnedFootprint) {
  TierConfig cfg = small_tiered();  // 8 frames.
  cfg.hdm_fast_ranges = {{0, 64 * 9}};  // 9 pinned pages.
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.hdm_fast_ranges = {{0, 64 * 8}};  // Exactly the capacity: fine.
  EXPECT_NO_THROW(cfg.validate());
}

TEST(TierConfig, PolicyNamesRoundTrip) {
  for (const PolicyKind k : {PolicyKind::kStaticInterleave, PolicyKind::kHotnessLru,
                             PolicyKind::kBandwidthSpill}) {
    EXPECT_EQ(policy_from_name(policy_name(k)), k);
  }
  EXPECT_THROW(policy_from_name("bogus"), std::invalid_argument);
}

// ------------------------------------------- stage-2 pass-through fidelity

void expect_passthrough_matches_router(fabric::Interleave mode) {
  const std::uint32_t devices = 8, spd = 2;
  const std::uint32_t page_lines = 64;
  const std::uint64_t contiguous = 1ull << 24;
  const fabric::Router router(mode, devices, spd, page_lines, contiguous);
  const AddressMap amap =
      AddressMap::passthrough(mode, devices, spd, page_lines, contiguous);
  EXPECT_FALSE(amap.tiered_mode());
  EXPECT_EQ(amap.devices(), devices);
  EXPECT_EQ(amap.interleave(), mode);
  // Dense low lines, page/extent boundaries, and large sparse lines.
  std::vector<Addr> samples;
  for (Addr l = 0; l < 4096; ++l) samples.push_back(l);
  for (Addr l = 0; l < 64; ++l) {
    samples.push_back(l * page_lines + l % 3);
    samples.push_back(l * contiguous + l);
    samples.push_back((l + 1) * 0x9e3779b97f4a7c15ull % (1ull << 40));
  }
  for (const Addr line : samples) {
    const fabric::Router::Route want = router.route(line);
    const fabric::Router::Route got = amap.route(line);
    EXPECT_EQ(got.device, want.device) << "line " << line;
    EXPECT_EQ(got.sub, want.sub) << "line " << line;
    EXPECT_EQ(got.local, want.local) << "line " << line;
    EXPECT_EQ(amap.device_of(line), want.device) << "line " << line;
  }
}

TEST(AddressMapPassthrough, LineInterleaveMatchesRouter) {
  expect_passthrough_matches_router(fabric::Interleave::kLine);
}

TEST(AddressMapPassthrough, PageInterleaveMatchesRouter) {
  expect_passthrough_matches_router(fabric::Interleave::kPage);
}

TEST(AddressMapPassthrough, ContiguousInterleaveMatchesRouter) {
  expect_passthrough_matches_router(fabric::Interleave::kContiguous);
}

// ------------------------------------------------- tiered translate logic

TEST(AddressMapTiered, IdentityToCapacityWithoutRangesOrRemaps) {
  const AddressMap amap = AddressMap::tiered(small_tiered());
  EXPECT_TRUE(amap.tiered_mode());
  for (const Addr line : {Addr{0}, Addr{63}, Addr{64}, Addr{123456789}}) {
    const Translation t = amap.translate(line);
    EXPECT_EQ(t.tier, 1u);
    EXPECT_EQ(t.local_line, line);
  }
  EXPECT_EQ(amap.native_frames(), 0u);
  EXPECT_EQ(amap.free_frames(), 8u);
}

TEST(AddressMapTiered, HdmRangesDecodeToFastFrames) {
  TierConfig cfg = small_tiered();
  // Pages [2,4) and [10,11) pinned fast -> frames 0,1 then 2.
  cfg.hdm_fast_ranges = {{10 * 64, 64}, {2 * 64, 2 * 64}};
  const AddressMap amap = AddressMap::tiered(cfg);
  EXPECT_EQ(amap.native_frames(), 3u);
  EXPECT_EQ(amap.free_frames(), 5u);
  EXPECT_TRUE(amap.native_fast(2));
  EXPECT_TRUE(amap.native_fast(3));
  EXPECT_TRUE(amap.native_fast(10));
  EXPECT_FALSE(amap.native_fast(4));
  // Ranges sort by base: page 2 -> frame 0, page 3 -> frame 1, page 10 -> 2.
  EXPECT_EQ(amap.translate(2 * 64 + 5).tier, 0u);
  EXPECT_EQ(amap.translate(2 * 64 + 5).local_line, Addr{0 * 64 + 5});
  EXPECT_EQ(amap.translate(3 * 64 + 63).local_line, Addr{1 * 64 + 63});
  EXPECT_EQ(amap.translate(10 * 64).local_line, Addr{2 * 64});
  EXPECT_EQ(amap.translate(4 * 64).tier, 1u);
}

TEST(AddressMapTiered, PromotionInstallAndDemotionRestoreIdentity) {
  TierConfig cfg = small_tiered();
  cfg.hdm_fast_ranges = {{0, 2 * 64}};  // Frames 0,1 pinned; 2..7 dynamic.
  AddressMap amap = AddressMap::tiered(cfg);
  const Addr page = 1000;
  EXPECT_FALSE(amap.remapped(page));

  const std::uint32_t frame = amap.alloc_frame();
  EXPECT_EQ(frame, 2u);  // Lowest dynamic frame first, deterministically.
  amap.set_migrating(page, true);
  EXPECT_TRUE(amap.migrating(page));
  // Mid-copy: translation still goes to the capacity source.
  EXPECT_EQ(amap.translate(page * 64 + 7).tier, 1u);

  amap.install_promotion(page, frame, /*epoch=*/1);
  amap.set_migrating(page, false);
  EXPECT_TRUE(amap.remapped(page));
  EXPECT_EQ(amap.frame_of(page), frame);
  EXPECT_EQ(amap.remap_occupancy(), 1u);
  const Translation t = amap.translate(page * 64 + 7);
  EXPECT_EQ(t.tier, 0u);
  EXPECT_EQ(t.local_line, Addr{2 * 64 + 7});

  amap.install_demotion(page);
  EXPECT_FALSE(amap.remapped(page));
  EXPECT_EQ(amap.remap_occupancy(), 0u);
  EXPECT_EQ(amap.translate(page * 64 + 7).tier, 1u);
  EXPECT_EQ(amap.translate(page * 64 + 7).local_line, page * 64 + 7);
  EXPECT_EQ(amap.alloc_frame(), 2u);  // Freed frame is reused lowest-first.
}

// ------------------------------------------------------- migration engine

/// Tiered overlay used by the determinism tests: tiny fast tier, short
/// epochs, aggressive promotion so a 2500-instruction run migrates plenty.
sys::SystemConfig tiered_over(sys::SystemConfig base, PolicyKind policy) {
  base.name += "+tier-" + std::string(policy_name(policy));
  base.tiering.enabled = true;
  base.tiering.policy = policy;
  base.tiering.fast_ddr_channels = 1;
  base.tiering.fast_capacity_pages = 64;
  base.tiering.epoch_cycles = 300;
  base.tiering.promote_threshold = 1;
  base.tiering.max_migrations_per_epoch = 8;
  base.tiering.max_concurrent_migrations = 2;
  return base;
}

std::string run_document(const sys::SystemConfig& cfg, const std::string& wl,
                         bool forced, Cycle* end_cycle, TierCounters* ctr = nullptr) {
  std::vector<workload::WorkloadParams> per_core(cfg.uarch.cores,
                                                 workload::find_workload(wl));
  sim::System s(cfg, per_core, /*seed=*/7);
  if (forced) s.set_tick_every_cycle(true);
  s.run(/*warmup_instr=*/500, /*measure_instr=*/2000);
  *end_cycle = s.now();
  if (ctr) *ctr = s.memory().tier_counters();
  return obs::json::snapshot_to_json(s.metrics().snapshot());
}

void expect_modes_equivalent_with_migration(const sys::SystemConfig& cfg,
                                            const std::string& wl) {
  Cycle end_event = 0, end_forced = 0;
  TierCounters ev{}, fo{};
  const std::string doc_event = run_document(cfg, wl, false, &end_event, &ev);
  const std::string doc_forced = run_document(cfg, wl, true, &end_forced, &fo);
  EXPECT_EQ(end_event, end_forced) << cfg.name << "/" << wl;
  EXPECT_EQ(doc_event, doc_forced) << cfg.name << "/" << wl;
  // The equivalence must hold *under load*: the run has to have actually
  // installed promotions, or the test proves nothing about migration.
  EXPECT_GT(ev.promotions, 0u) << cfg.name << "/" << wl;
  EXPECT_EQ(ev.promotions, fo.promotions) << cfg.name << "/" << wl;
}

TEST(TieringEquivalence, DdrOnlyMatchesForcedTicking) {
  expect_modes_equivalent_with_migration(
      tiered_over(sys::baseline_ddr(), PolicyKind::kHotnessLru), "tiered-hotcold");
}

TEST(TieringEquivalence, CxlMatchesForcedTicking) {
  expect_modes_equivalent_with_migration(
      tiered_over(sys::coaxial_4x(), PolicyKind::kHotnessLru), "tiered-hotcold");
}

TEST(TieringEquivalence, SwitchedFabricMatchesForcedTicking) {
  expect_modes_equivalent_with_migration(
      tiered_over(sys::coaxial_star(8, 4), PolicyKind::kHotnessLru), "tiered-hotcold");
}

TEST(TieringEquivalence, BandwidthSpillMatchesForcedTicking) {
  expect_modes_equivalent_with_migration(
      tiered_over(sys::coaxial_4x(), PolicyKind::kBandwidthSpill), "tiered-hotcold");
}

TEST(TieringEquivalence, RepeatedRunsAreByteIdentical) {
  const sys::SystemConfig cfg = tiered_over(sys::coaxial_4x(), PolicyKind::kHotnessLru);
  Cycle end_a = 0, end_b = 0;
  const std::string a = run_document(cfg, "tiered-hotcold", false, &end_a);
  const std::string b = run_document(cfg, "tiered-hotcold", false, &end_b);
  EXPECT_EQ(end_a, end_b);
  EXPECT_EQ(a, b);
}

TEST(TieringInvariants, RemapConservationAndCounterConsistency) {
  const sys::SystemConfig cfg = tiered_over(sys::coaxial_4x(), PolicyKind::kHotnessLru);
  std::vector<workload::WorkloadParams> per_core(
      cfg.uarch.cores, workload::find_workload("tiered-hotcold"));
  sim::System s(cfg, per_core, /*seed=*/7);
  s.run(/*warmup_instr=*/500, /*measure_instr=*/2000);
  const TierCounters c = s.memory().tier_counters();
  ASSERT_GT(c.epochs, 0u);
  ASSERT_GT(c.promotions, 0u);
  // Counters are lifetime totals, so every installed promotion that was not
  // later demoted is exactly one live remap entry.
  EXPECT_EQ(c.promotions - c.demotions, c.remap_occupancy);
  EXPECT_EQ(c.installs, c.promotions + c.demotions);
  EXPECT_GE(c.jobs_started, c.installs);
  // Each installed page copy moved page_lines lines each way.
  EXPECT_GE(c.migration_reads, c.installs * cfg.tiering.page_lines);
  EXPECT_GE(c.migration_writes, c.installs * cfg.tiering.page_lines);
  EXPECT_EQ(c.migration_bytes,
            (c.migration_reads + c.migration_writes) * kLineBytes);
  // The whole point: the hot set actually lands in the fast tier.
  EXPECT_GT(c.fast_accesses, 0u);
}

TEST(TieringInvariants, StaticPolicyNeverMigrates) {
  const sys::SystemConfig cfg =
      tiered_over(sys::coaxial_4x(), PolicyKind::kStaticInterleave);
  std::vector<workload::WorkloadParams> per_core(
      cfg.uarch.cores, workload::find_workload("tiered-hotcold"));
  sim::System s(cfg, per_core, /*seed=*/7);
  s.run(/*warmup_instr=*/500, /*measure_instr=*/2000);
  const TierCounters c = s.memory().tier_counters();
  EXPECT_GT(c.epochs, 0u);
  EXPECT_EQ(c.jobs_started, 0u);
  EXPECT_EQ(c.remap_occupancy, 0u);
  EXPECT_EQ(c.migration_bytes, 0u);
}

TEST(TieringMetrics, TierSubtreeAppearsOnlyWhenEnabled) {
  const sys::SystemConfig plain_cfg = sys::coaxial_4x();
  const std::vector<workload::WorkloadParams> per_core(
      plain_cfg.uarch.cores, workload::find_workload("tiered-hotcold"));
  sim::System plain(plain_cfg, per_core, 7);
  EXPECT_FALSE(plain.metrics().contains("tier/promotions"));
  sim::System tiered(tiered_over(plain_cfg, PolicyKind::kHotnessLru), per_core, 7);
  EXPECT_TRUE(tiered.metrics().contains("tier/promotions"));
  EXPECT_TRUE(tiered.metrics().contains("tier/fast/fraction"));
  EXPECT_TRUE(tiered.metrics().contains("mem/tier0/dram/ctrl00/reads_done"));
  EXPECT_TRUE(tiered.metrics().contains("mem/tier1/dram/ctrl00/reads_done"));
}

// -------------------------------------------------------- runner knobs

TEST(TieringRunner, OverridesRequireTieredConfig) {
  sim::RunRequest req =
      sim::homogeneous(sys::coaxial_4x(), "tiered-hotcold", 200, 500);
  req.tier_policy = "hotness_lru";
  EXPECT_THROW(sim::run_one(req), std::invalid_argument);
}

TEST(TieringRunner, RejectsUnknownPolicyAndBadBudgets) {
  sim::RunRequest req =
      sim::homogeneous(sys::coaxial_tiered(), "tiered-hotcold", 200, 500);
  req.tier_policy = "bogus-policy";
  EXPECT_THROW(sim::run_one(req), std::invalid_argument);

  sim::RunRequest bad_cfg =
      sim::homogeneous(sys::coaxial_tiered(), "tiered-hotcold", 200, 500);
  bad_cfg.config.tiering.epoch_cycles = 0;
  EXPECT_THROW(sim::run_one(bad_cfg), std::invalid_argument);
}

TEST(TieringRunner, OverridesApplyToTheRun) {
  sim::RunRequest req =
      sim::homogeneous(sys::coaxial_tiered(PolicyKind::kStaticInterleave),
                       "tiered-hotcold", 500, 2000);
  req.seed = 7;
  req.config.tiering.promote_threshold = 1;  // Short run: promote eagerly.
  req.tier_policy = "hotness_lru";
  req.tier_fast_pages = 64;
  req.tier_epoch_cycles = 300;
  const sim::RunResult r = sim::run_one(req);
  // The static config would never migrate; the overridden run does.
  EXPECT_GT(r.metrics.at("tier/promotions").count, 0u);
}

TEST(TieringRunner, InjectedCxlAddressMapMustMatchFabric) {
  const link::LaneConfig lanes = link::LaneConfig::x8(12.5);
  EXPECT_THROW(mem::CxlMemory(fabric::FabricConfig::direct(), 4, 1, lanes,
                              AddressMap::passthrough(fabric::Interleave::kLine,
                                                      /*devices=*/5, 2, 64, 1ull << 24)),
               std::invalid_argument);
  EXPECT_THROW(mem::CxlMemory(fabric::FabricConfig::direct(), 4, 1, lanes,
                              AddressMap::tiered(small_tiered())),
               std::invalid_argument);
}

}  // namespace
}  // namespace coaxial::placement
