#include "coaxial/memory_system.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "link/lane_config.hpp"

namespace coaxial::mem {
namespace {

/// Tick until the read completion for `token` is drained or deadline hits.
/// Returns the completion's done cycle (kNoCycle on timeout).
Cycle run_until_read(MemorySystem& m, std::uint64_t token, Cycle start, Cycle deadline) {
  Cycle result = kNoCycle;
  for (Cycle now = start; now < start + deadline; ++now) {
    m.tick(now);
    for (const auto& comp : m.completions()) {
      if (comp.token == token) result = comp.done;
    }
    m.completions().clear();
    if (result != kNoCycle) return result;
  }
  return kNoCycle;
}

TEST(DirectDdrMemory, BasicReadCompletes) {
  DirectDdrMemory m(1);
  ASSERT_TRUE(m.can_accept(0, false, 10));
  m.access(0, false, 10, 1);
  const Cycle done = run_until_read(m, 1, 10, 2000);
  ASSERT_NE(done, kNoCycle);
  // ACT + CAS + data: ~36 ns unloaded.
  EXPECT_NEAR(cycles_to_ns(done - 10), 36.5, 5.0);
}

TEST(DirectDdrMemory, SubchannelAndPortMapping) {
  DirectDdrMemory m(2);
  EXPECT_EQ(m.subchannels(), 4u);
  EXPECT_EQ(m.ports(), 2u);
  // Line-granularity striping across sub-channels; two sub-channels/port.
  std::map<std::uint32_t, int> port_counts;
  for (Addr line = 0; line < 400; ++line) {
    const std::uint32_t p = m.port_of(line);
    EXPECT_LT(p, 2u);
    ++port_counts[p];
  }
  EXPECT_EQ(port_counts[0], 200);
  EXPECT_EQ(port_counts[1], 200);
}

TEST(DirectDdrMemory, PeakBandwidthScalesWithChannels) {
  EXPECT_DOUBLE_EQ(DirectDdrMemory(1).peak_gbps(), 38.4);
  EXPECT_DOUBLE_EQ(DirectDdrMemory(4).peak_gbps(), 153.6);
}

TEST(DirectDdrMemory, WritesArePostedAndCounted) {
  DirectDdrMemory m(1);
  for (Addr line = 0; line < 20; ++line) m.access(line, true, 10, 0);
  for (Cycle now = 10; now < 30000; ++now) {
    m.tick(now);
    m.completions().clear();
  }
  EXPECT_EQ(m.snapshot().writes, 20u);
}

TEST(DirectDdrMemory, SnapshotCountsReads) {
  DirectDdrMemory m(1);
  m.access(1, false, 10, 5);
  run_until_read(m, 5, 10, 2000);
  const MemorySnapshot s = m.snapshot();
  EXPECT_EQ(s.reads, 1u);
  EXPECT_GT(s.dram_service_sum, 0.0);
  EXPECT_EQ(s.subchannels, 2u);
}

TEST(CxlMemory, ReadIncludesInterfaceOverhead) {
  CxlMemory m(1, 1, link::LaneConfig::x8());
  m.access(0, false, 10, 1);
  const Cycle done = run_until_read(m, 1, 10, 4000);
  ASSERT_NE(done, kNoCycle);
  const double ns = cycles_to_ns(done - 10);
  // DRAM (~36.5 ns) + CXL fixed (~53 ns).
  EXPECT_GT(ns, 80.0);
  EXPECT_LT(ns, 110.0);
  EXPECT_NEAR(cycles_to_ns(m.read_interface_cycles()), 52.9, 1.5);
}

TEST(CxlMemory, SeventyNsPremiumRaisesLatency) {
  CxlMemory fast(1, 1, link::LaneConfig::x8(12.5));
  CxlMemory slow(1, 1, link::LaneConfig::x8(17.5));
  fast.access(0, false, 10, 1);
  slow.access(0, false, 10, 1);
  const Cycle f = run_until_read(fast, 1, 10, 4000);
  const Cycle s = run_until_read(slow, 1, 10, 4000);
  ASSERT_NE(f, kNoCycle);
  ASSERT_NE(s, kNoCycle);
  // 4 ports x 5 ns extra = 20 ns = 48 cycles.
  EXPECT_NEAR(static_cast<double>(s - f), 48.0, 6.0);
}

TEST(CxlMemory, AsymTopologyHasTwoDdrPerDevice) {
  CxlMemory m(4, 2, link::LaneConfig::x8_asym());
  EXPECT_EQ(m.subchannels(), 16u);
  EXPECT_EQ(m.ports(), 4u);
  EXPECT_DOUBLE_EQ(m.peak_gbps(), 8 * 38.4);
}

TEST(CxlMemory, PortOfGroupsSubchannelsByDevice) {
  CxlMemory m(4, 1, link::LaneConfig::x8());
  std::set<std::uint32_t> ports;
  for (Addr line = 0; line < 8; ++line) {
    const std::uint32_t p = m.port_of(line);
    EXPECT_LT(p, 4u);
    ports.insert(p);
  }
  EXPECT_EQ(ports.size(), 4u);
}

TEST(CxlMemory, AllRandomReadsComplete) {
  CxlMemory m(2, 1, link::LaneConfig::x8());
  Rng rng(3);
  std::set<std::uint64_t> outstanding;
  std::uint64_t next_token = 1;
  Cycle now = 1;
  std::uint64_t issued = 0;
  while (issued < 1000 || !outstanding.empty()) {
    if (issued < 1000 && rng.chance(0.08)) {
      const Addr line = rng.next_below(1 << 22);
      if (m.can_accept(line, false, now)) {
        m.access(line, false, now, next_token);
        outstanding.insert(next_token++);
        ++issued;
      }
    }
    m.tick(now);
    for (const auto& comp : m.completions()) {
      ASSERT_EQ(outstanding.erase(comp.token), 1u);
      EXPECT_GE(comp.done, now);
    }
    m.completions().clear();
    ++now;
    ASSERT_LT(now, 5'000'000u) << "reads starved";
  }
  const MemorySnapshot s = m.snapshot();
  EXPECT_EQ(s.reads, 1000u);
  EXPECT_GT(s.cxl_interface_sum, 0.0);
}

TEST(CxlMemory, WritesConsumeTxAndComplete) {
  CxlMemory m(1, 1, link::LaneConfig::x8());
  for (Addr line = 0; line < 30; ++line) m.access(line, true, 10, 0);
  for (Cycle now = 10; now < 50000; ++now) {
    m.tick(now);
    m.completions().clear();
  }
  EXPECT_EQ(m.snapshot().writes, 30u);
  EXPECT_GE(m.channel_link(0).tx_stats().bytes, 30u * 64);
}

TEST(CxlMemory, BackpressureUnderTxFlood) {
  CxlMemory m(1, 1, link::LaneConfig::x8());
  Cycle now = 10;
  int accepted = 0;
  while (m.can_accept(accepted, true, now) && accepted < 100000) {
    m.access(accepted, true, now, 0);
    ++accepted;
  }
  EXPECT_LT(accepted, 100000);  // Link backlog or ingress bound must engage.
}

TEST(CxlMemory, SnapshotUtilizationBounded) {
  CxlMemory m(1, 1, link::LaneConfig::x8());
  Rng rng(4);
  Cycle now = 1;
  for (; now < 100000; ++now) {
    if (m.can_accept(now, false, now)) m.access(rng.next_below(1 << 20), false, now, now);
    m.tick(now);
    m.completions().clear();
  }
  const double util = m.snapshot().utilization(now);
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0);
}

TEST(CxlMemory, BreakdownSumsAreConsistent) {
  CxlMemory m(1, 1, link::LaneConfig::x8());
  Rng rng(5);
  std::map<std::uint64_t, Cycle> issue_time;
  double total_latency = 0;
  std::uint64_t completed = 0, token = 1;
  Cycle now = 1;
  while (completed < 300) {
    if (rng.chance(0.05)) {
      const Addr line = rng.next_below(1 << 20);
      if (m.can_accept(line, false, now)) {
        issue_time[token] = now;
        m.access(line, false, now, token++);
      }
    }
    m.tick(now);
    for (const auto& comp : m.completions()) {
      total_latency += static_cast<double>(comp.done - issue_time.at(comp.token));
      ++completed;
    }
    m.completions().clear();
    ++now;
  }
  const MemorySnapshot s = m.snapshot();
  const double parts =
      s.dram_service_sum + s.dram_queue_sum + s.cxl_interface_sum + s.cxl_queue_sum;
  // Completion ordering slack: parts computed at RX-send time vs completion
  // at arrival; allow small tolerance plus forwarded reads.
  EXPECT_NEAR(parts, total_latency, total_latency * 0.1 + 50);
}

TEST(MemorySnapshot, AchievedGbps) {
  MemorySnapshot s;
  s.reads = 1000;
  s.writes = 500;
  // 1500 lines x 64 B over 96000 cycles (40 us).
  EXPECT_NEAR(s.achieved_gbps(96000), 1500.0 * 64 / 40000.0, 1e-6);
  EXPECT_EQ(s.achieved_gbps(0), 0.0);
}

}  // namespace
}  // namespace coaxial::mem
