#include "link/cxl_link.hpp"

#include <gtest/gtest.h>

#include "link/lane_config.hpp"

namespace coaxial::link {
namespace {

TEST(LaneConfig, X8GoodputsMatchPaper) {
  const LaneConfig c = LaneConfig::x8();
  EXPECT_DOUBLE_EQ(c.rx_goodput_gbps, 26.0);
  EXPECT_DOUBLE_EQ(c.tx_goodput_gbps, 13.0);
  EXPECT_EQ(c.pins, 32u);
  EXPECT_EQ(c.port_latency_cycles(), 30u);  // 12.5 ns.
}

TEST(LaneConfig, AsymGoodputsMatchPaper) {
  const LaneConfig c = LaneConfig::x8_asym();
  EXPECT_DOUBLE_EQ(c.rx_goodput_gbps, 32.0);
  EXPECT_DOUBLE_EQ(c.tx_goodput_gbps, 10.0);
  EXPECT_EQ(c.pins, 32u);  // Same pin budget, repartitioned.
}

TEST(LaneConfig, SerializationTimesMatchPaper) {
  const LaneConfig x8 = LaneConfig::x8();
  // 2.5 ns RX (6 cycles), 5.5 ns-ish TX (12 cycles = 5 ns).
  EXPECT_EQ(x8.rx_line_cycles(), 6u);
  EXPECT_EQ(x8.tx_line_cycles(), 12u);
  const LaneConfig asym = LaneConfig::x8_asym();
  EXPECT_EQ(asym.rx_line_cycles(), 5u);   // 2 ns.
  EXPECT_EQ(asym.tx_line_cycles(), 16u);  // 6.4 ns (paper: ~9 ns with headers).
}

TEST(LaneConfig, ReadOverheadIs52ns) {
  // 4 x 12.5 ns ports + 2.5 ns RX serialisation = 52.5 ns.
  EXPECT_NEAR(LaneConfig::x8().read_overhead_ns(), 52.5, 0.1);
}

TEST(LaneConfig, PortLatencyScalesOverhead) {
  EXPECT_NEAR(LaneConfig::x8(17.5).read_overhead_ns(), 72.5, 0.1);
  EXPECT_NEAR(LaneConfig::x8(2.5).read_overhead_ns(), 12.5, 0.1);
}

TEST(CxlLink, UnloadedDeliveryTime) {
  CxlLink link(LaneConfig::x8());
  const Cycle arrival = link.send_rx(kLineBytes, 100);
  // Serialisation (6) + 2 ports (60).
  EXPECT_EQ(arrival, 100u + 6 + 60);
}

TEST(CxlLink, DirectionsAreIndependent) {
  CxlLink link(LaneConfig::x8());
  const Cycle rx1 = link.send_rx(kLineBytes, 100);
  const Cycle tx1 = link.send_tx(kLineBytes, 100);
  EXPECT_EQ(rx1, 100u + 6 + 60);
  EXPECT_EQ(tx1, 100u + 12 + 60);  // TX slower serialisation, same ports.
}

TEST(CxlLink, BackToBackMessagesSerialize) {
  CxlLink link(LaneConfig::x8());
  const Cycle first = link.send_rx(kLineBytes, 100);
  const Cycle second = link.send_rx(kLineBytes, 100);
  EXPECT_EQ(second, first + 6);  // One extra serialisation slot.
}

TEST(CxlLink, FifoOrderPreserved) {
  CxlLink link(LaneConfig::x8());
  Cycle prev = 0;
  for (int i = 0; i < 50; ++i) {
    const Cycle arrival = link.send_rx(kLineBytes, 100);
    EXPECT_GT(arrival, prev);
    prev = arrival;
  }
}

TEST(CxlLink, PipeDrainsDuringIdle) {
  CxlLink link(LaneConfig::x8());
  link.send_rx(kLineBytes, 100);
  // After a long idle gap, the next message sees an empty pipe again.
  const Cycle arrival = link.send_rx(kLineBytes, 10000);
  EXPECT_EQ(arrival, 10000u + 6 + 60);
}

TEST(CxlLink, BackpressureKicksInAtBacklogBound) {
  CxlLink link(LaneConfig::x8(), /*max_backlog_cycles=*/50);
  Cycle now = 100;
  int sent = 0;
  while (link.can_send_rx(now) && sent < 1000) {
    link.send_rx(kLineBytes, now);
    ++sent;
  }
  EXPECT_LT(sent, 1000);
  EXPECT_GE(sent, 50 / 6);
  // Backlog clears with time.
  EXPECT_TRUE(link.can_send_rx(now + 1000));
}

TEST(CxlLink, SaturationRefusalThenCreditRetryDrainsFifo) {
  CxlLink link(LaneConfig::x8(), /*max_backlog_cycles=*/48);
  const Cycle t0 = 1000;
  const Cycle ser = 6;  // 64 B at 26 GB/s.
  int sent = 0;
  while (link.can_send_rx(t0)) {
    link.send_rx(kLineBytes, t0);
    ++sent;
  }
  EXPECT_EQ(sent, 8);  // 8 x 6 cycles of backlog reaches the 48-cycle bound.
  EXPECT_FALSE(link.can_send_rx(t0));

  // The advertised credit cycle is exact: one message's worth of backlog
  // decays after a single cycle, and the retry is admitted there.
  const Cycle credit = link.rx_credit_cycle(t0);
  EXPECT_EQ(credit, t0 + 1);
  EXPECT_TRUE(link.can_send_rx(credit));
  const Cycle arrival = link.send_rx(kLineBytes, credit);
  // FIFO: the retried message serialises behind the entire parked backlog.
  EXPECT_EQ(arrival, t0 + 9 * ser + 60);

  // Accounting stays consistent through saturation: busy time is exactly
  // messages x serialisation, queue delay is the sum of FIFO waits.
  const DirectionStats& st = link.rx_stats();
  EXPECT_EQ(st.messages, 9u);
  EXPECT_EQ(st.bytes, 9u * kLineBytes);
  EXPECT_EQ(st.busy_cycles, 9u * ser);
  // Message i of the burst waited i*ser at t0; the retry waited 47 cycles
  // (48 cycles of backlog minus the one cycle that decayed).
  EXPECT_DOUBLE_EQ(st.queue_delay_sum, (6 + 12 + 18 + 24 + 30 + 36 + 42) + 47.0);
  EXPECT_EQ(link.invariant_violations(), 0u);
  // Admission may overshoot the bound by at most the message's own
  // serialisation time: 47 remaining + 6 new = 53.
  EXPECT_EQ(link.occupancy_high_water(), 53u);

  // Once the pipe drains the link is unloaded again, with no extra waits.
  EXPECT_TRUE(link.can_send_rx(arrival + 1000));
  EXPECT_EQ(link.send_rx(kLineBytes, arrival + 1000), arrival + 1000 + ser + 60);
  EXPECT_DOUBLE_EQ(link.rx_stats().queue_delay_sum, 215.0);
}

TEST(SerialPipe, CreditCycleIsFirstSendableCycle) {
  SerialPipe pipe(/*goodput=*/26.0, /*fixed=*/60, /*max_backlog=*/30);
  const Cycle t0 = 500;
  while (pipe.can_send(t0)) pipe.send(kLineBytes, t0);
  const Cycle credit = pipe.credit_cycle(t0);
  for (Cycle c = t0; c < credit; ++c) EXPECT_FALSE(pipe.can_send(c));
  EXPECT_TRUE(pipe.can_send(credit));
  EXPECT_EQ(pipe.violations(), 0u);
}

TEST(CxlLink, StatsTrackBytesAndMessages) {
  CxlLink link(LaneConfig::x8());
  link.send_rx(64, 10);
  link.send_rx(64, 10);
  link.send_tx(16, 10);
  EXPECT_EQ(link.rx_stats().messages, 2u);
  EXPECT_EQ(link.rx_stats().bytes, 128u);
  EXPECT_EQ(link.tx_stats().messages, 1u);
  EXPECT_EQ(link.tx_stats().bytes, 16u);
  EXPECT_EQ(link.rx_stats().busy_cycles, 12u);
}

TEST(CxlLink, QueueDelayAccumulates) {
  CxlLink link(LaneConfig::x8());
  link.send_rx(kLineBytes, 100);
  link.send_rx(kLineBytes, 100);  // Waits 6 cycles.
  EXPECT_DOUBLE_EQ(link.rx_stats().queue_delay_sum, 6.0);
}

TEST(CxlLink, ResetStatsClears) {
  CxlLink link(LaneConfig::x8());
  link.send_rx(64, 10);
  link.reset_stats();
  EXPECT_EQ(link.rx_stats().messages, 0u);
  EXPECT_EQ(link.rx_stats().bytes, 0u);
}

TEST(CxlLink, UtilizationHelper) {
  DirectionStats st;
  st.busy_cycles = 50;
  EXPECT_DOUBLE_EQ(direction_utilization(st, 100), 0.5);
  EXPECT_DOUBLE_EQ(direction_utilization(st, 0), 0.0);
}

class LinkThroughput : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LinkThroughput, SaturatedPipeMatchesGoodput) {
  // Send back-to-back messages for a long window; achieved bytes/ns must
  // approach the configured goodput.
  CxlLink link(LaneConfig::x8(), /*max_backlog_cycles=*/1u << 30);
  const std::uint32_t bytes = GetParam();
  const int n = 10000;
  Cycle last = 0;
  for (int i = 0; i < n; ++i) last = link.send_rx(bytes, 0);
  const double ns = cycles_to_ns(last);
  const double gbps = static_cast<double>(bytes) * n / ns;
  EXPECT_NEAR(gbps, 26.0, 26.0 * 0.25);  // Within rounding granularity.
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinkThroughput, ::testing::Values(64u, 128u, 256u));

}  // namespace
}  // namespace coaxial::link
// -- Extended lane configurations ------------------------------------------

namespace coaxial::link {
namespace {

TEST(LaneConfig, X4IsHalfOfX8) {
  const LaneConfig c = LaneConfig::x4();
  EXPECT_DOUBLE_EQ(c.rx_goodput_gbps, 13.0);
  EXPECT_DOUBLE_EQ(c.tx_goodput_gbps, 6.5);
  EXPECT_EQ(c.pins, 16u);
}

TEST(LaneConfig, X16IsDoubleOfX8) {
  const LaneConfig c = LaneConfig::x16();
  EXPECT_DOUBLE_EQ(c.rx_goodput_gbps, 52.0);
  EXPECT_EQ(c.pins, 64u);
  // Wider link: faster line serialisation.
  EXPECT_LT(c.rx_line_cycles(), LaneConfig::x8().rx_line_cycles());
}

TEST(LaneConfig, SwitchedAddsHopLatency) {
  EXPECT_GT(LaneConfig::x8_switched().read_overhead_ns(),
            LaneConfig::x8().read_overhead_ns());
  EXPECT_NEAR(LaneConfig::x8_switched(5.0).read_overhead_ns() -
                  LaneConfig::x8().read_overhead_ns(),
              20.0, 0.5);  // 4 traversals x 5 ns.
}

TEST(LaneConfig, BandwidthPerPinOrdering) {
  // All symmetric widths deliver the same goodput per pin.
  const double x4 = LaneConfig::x4().rx_goodput_gbps / LaneConfig::x4().pins;
  const double x8 = LaneConfig::x8().rx_goodput_gbps / LaneConfig::x8().pins;
  const double x16 = LaneConfig::x16().rx_goodput_gbps / LaneConfig::x16().pins;
  EXPECT_NEAR(x4, x8, 1e-9);
  EXPECT_NEAR(x16, x8, 0.001);
}

}  // namespace
}  // namespace coaxial::link
