// Regression tests for the paper's qualitative claims — the "shape" results
// that must hold for the reproduction to be meaningful. These run small
// budgets, so thresholds are deliberately loose; the bench harnesses give
// the quantitative picture.
#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "sim/runner.hpp"
#include "workload/catalog.hpp"

namespace coaxial {
namespace {

sim::RunStats run(const sys::SystemConfig& cfg, const std::string& wl,
                  std::uint64_t seed = 42) {
  return sim::run_one(sim::homogeneous(cfg, wl, 20000, 50000, seed)).stats;
}

// §VI-A: bandwidth-bound workloads speed up drastically on COAXIAL-4x.
TEST(PaperShapes, StreamingWinsBig) {
  for (const char* wl : {"stream-copy", "stream-add", "lbm"}) {
    const double base = run(sys::baseline_ddr(), wl).ipc_per_core;
    const double coax = run(sys::coaxial_4x(), wl).ipc_per_core;
    EXPECT_GT(coax / base, 1.8) << wl;
  }
}

// §VI-A: latency-bound, LLC-friendly workloads lose (gcc: -26% in paper).
TEST(PaperShapes, GccClassLoses) {
  for (const char* wl : {"gcc", "xalancbmk", "omnetpp"}) {
    const double base = run(sys::baseline_ddr(), wl).ipc_per_core;
    const double coax = run(sys::coaxial_4x(), wl).ipc_per_core;
    EXPECT_LT(coax / base, 1.0) << wl;
    EXPECT_GT(coax / base, 0.6) << wl << " (loss should be bounded)";
  }
}

// §VI-A: COAXIAL operates at lower relative utilisation despite moving
// more absolute bytes on bandwidth-bound workloads.
TEST(PaperShapes, UtilizationDropsTrafficRises) {
  const auto base = run(sys::baseline_ddr(), "stream-triad");
  const auto coax = run(sys::coaxial_4x(), "stream-triad");
  EXPECT_LT(coax.bandwidth_utilization(), base.bandwidth_utilization());
  EXPECT_GT(coax.read_gbps() + coax.write_gbps(),
            base.read_gbps() + base.write_gbps());
}

// §VI-C: the design ordering asym >= 4x >= 2x on a bandwidth-bound workload.
TEST(PaperShapes, DesignOrderingOnStreaming) {
  const double base = run(sys::baseline_ddr(), "stream-scale").ipc_per_core;
  const double c2 = run(sys::coaxial_2x(), "stream-scale").ipc_per_core / base;
  const double c4 = run(sys::coaxial_4x(), "stream-scale").ipc_per_core / base;
  const double ca = run(sys::coaxial_asym(), "stream-scale").ipc_per_core / base;
  EXPECT_GT(c2, 1.0);
  EXPECT_GT(c4, c2);
  EXPECT_GE(ca, c4 * 0.95);  // Asym at least matches 4x.
}

// §VI-D: higher CXL latency premium monotonically shrinks the win.
TEST(PaperShapes, LatencyPremiumGradient) {
  auto with_port = [](double ns) {
    auto c = sys::coaxial_4x();
    c.cxl_port_ns = ns;
    return c;
  };
  const double base = run(sys::baseline_ddr(), "pagerank").ipc_per_core;
  const double s10 = run(with_port(2.5), "pagerank").ipc_per_core / base;
  const double s50 = run(with_port(12.5), "pagerank").ipc_per_core / base;
  const double s70 = run(with_port(17.5), "pagerank").ipc_per_core / base;
  EXPECT_GT(s10, s50);
  EXPECT_GT(s50 * 1.02, s70);
}

// §VI-E: at one active core, COAXIAL generally loses.
TEST(PaperShapes, SingleCoreSlowdown) {
  auto one = [](sys::SystemConfig c) {
    c.uarch.active_cores = 1;
    return c;
  };
  const double base = run(one(sys::baseline_ddr()), "kmeans").ipc_per_core;
  const double coax = run(one(sys::coaxial_4x()), "kmeans").ipc_per_core;
  EXPECT_LT(coax / base, 1.0);
}

// §VI-B: CALM probes cost bandwidth but cut on-chip latency on COAXIAL.
TEST(PaperShapes, CalmTradesBandwidthForLatency) {
  auto serial = sys::coaxial_4x();
  serial.calm.policy = calm::Policy::kNone;
  const auto with_calm = run(sys::coaxial_4x(), "stream-copy");
  const auto without = run(serial, "stream-copy");
  EXPECT_LT(with_calm.avg_onchip_ns(), without.avg_onchip_ns());
  EXPECT_GE(with_calm.ipc_per_core, without.ipc_per_core * 0.97);
}

// §IV-D: read traffic dominates writes across the suite (R:W ~3.7:1 avg).
TEST(PaperShapes, ReadsDominateWrites) {
  double ratio_sum = 0;
  const std::vector<std::string> sample = {"lbm", "pagerank", "mcf", "kmeans",
                                           "fluidanimate"};
  for (const auto& wl : sample) {
    const auto st = run(sys::baseline_ddr(), wl);
    ratio_sum += st.read_gbps() / std::max(st.write_gbps(), 1e-9);
  }
  EXPECT_GT(ratio_sum / sample.size(), 2.0);
}

}  // namespace
}  // namespace coaxial
