// Host phase profiler: inertness when disabled (the default), inclusive
// nested-scope accounting, and opt-in publication under host/prof/*.
//
// The load-bearing property is the first one: with the profiler compiled in
// but disabled, runs must stay byte-identical to each other and must not
// grow a host/prof subtree — the golden baseline depends on it.
#include <string>

#include <gtest/gtest.h>

#include "obs/profiler.hpp"
#include "sim/runner.hpp"

namespace coaxial {
namespace {

using obs::prof::Phase;
using obs::prof::ScopedTimer;

/// Restores the global enable flag so tests can't leak state at each other.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::prof::reset_thread_totals(); }
  void TearDown() override {
    obs::prof::set_enabled(false);
    obs::prof::reset_thread_totals();
  }
};

sim::RunRequest small_request() {
  return sim::homogeneous(sys::baseline_ddr(), "canneal", /*warmup=*/100,
                          /*measure=*/500, /*seed=*/7);
}

TEST_F(ProfilerTest, DisabledScopesAreInert) {
  obs::prof::set_enabled(false);
  {
    ScopedTimer a(Phase::kCoreTick);
    ScopedTimer b(Phase::kCacheAccess);
    ScopedTimer c(Phase::kCoreTick);  // Re-entrant while disabled.
  }
  const obs::prof::Totals t = obs::prof::thread_totals();
  for (std::size_t i = 0; i < obs::prof::kPhaseCount; ++i) {
    EXPECT_EQ(t.ns[i], 0u);
    EXPECT_EQ(t.calls[i], 0u);
  }
}

TEST_F(ProfilerTest, StatsJsonByteIdenticalWithProfilerCompiledInButOff) {
  obs::prof::set_enabled(false);
  const std::string a = sim::stats_json(sim::run_one(small_request()));
  const std::string b = sim::stats_json(sim::run_one(small_request()));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("host/prof"), std::string::npos);
}

TEST_F(ProfilerTest, ProfSubtreeOnlyUnderOptIn) {
  obs::prof::set_enabled(false);
  const sim::RunResult off = sim::run_one(small_request());
  obs::prof::set_enabled(true);
  const sim::RunResult on = sim::run_one(small_request());
  obs::prof::set_enabled(false);

  bool saw_prof = false;
  obs::Snapshot on_stripped;
  for (const auto& [path, value] : on.metrics) {
    if (path.rfind("host/prof/", 0) == 0) {
      saw_prof = true;
      continue;
    }
    on_stripped.emplace(path, value);
  }
  EXPECT_TRUE(saw_prof) << "enabled run must publish host/prof/*";
  EXPECT_TRUE(on.metrics.count("host/prof/core_tick/ns"));
  EXPECT_TRUE(on.metrics.count("host/prof/dram_try_issue/calls"));
  for (const auto& [path, value] : off.metrics) {
    EXPECT_EQ(path.rfind("host/prof/", 0), std::string::npos)
        << "disabled run leaked " << path;
  }

  // Enabling the profiler must not perturb the simulation: every simulated
  // metric matches the disabled run exactly.
  ASSERT_EQ(on_stripped.size(), off.metrics.size());
  auto it = off.metrics.begin();
  for (const auto& [path, value] : on_stripped) {
    EXPECT_EQ(path, it->first);
    if (value.integral) {
      EXPECT_EQ(value.count, it->second.count) << path;
    } else {
      EXPECT_DOUBLE_EQ(value.value, it->second.value) << path;
    }
    ++it;
  }
}

TEST_F(ProfilerTest, CallsCountEveryEntryNsCountOutermostOnly) {
  obs::prof::set_enabled(true);
  obs::prof::reset_thread_totals();
  {
    ScopedTimer outer(Phase::kCoreTick);
    {
      ScopedTimer inner(Phase::kCoreTick);  // Re-entrant: counted, not timed.
      ScopedTimer other(Phase::kCacheAccess);
      volatile std::uint64_t sink = 0;
      for (int i = 0; i < 10000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    }
  }
  const obs::prof::Totals t = obs::prof::thread_totals();
  const auto core = static_cast<std::size_t>(Phase::kCoreTick);
  const auto cache = static_cast<std::size_t>(Phase::kCacheAccess);
  EXPECT_EQ(t.calls[core], 2u);
  EXPECT_EQ(t.calls[cache], 1u);
  // Inclusive accounting: the outer kCoreTick span contains the kCacheAccess
  // span, and the re-entrant inner scope added no second measurement.
  EXPECT_GE(t.ns[core], t.ns[cache]);
}

TEST_F(ProfilerTest, ThreadTotalsDeltaBracketsARegion) {
  obs::prof::set_enabled(true);
  obs::prof::reset_thread_totals();
  { ScopedTimer s(Phase::kMemPump); }
  const obs::prof::Totals base = obs::prof::thread_totals();
  { ScopedTimer s(Phase::kMemPump); }
  { ScopedTimer s(Phase::kMemPump); }
  const obs::prof::Totals d = obs::prof::thread_totals().delta_since(base);
  EXPECT_EQ(d.calls[static_cast<std::size_t>(Phase::kMemPump)], 2u);
}

}  // namespace
}  // namespace coaxial
