#include "coaxial/configs.hpp"

#include <gtest/gtest.h>

#include "coaxial/area_model.hpp"

namespace coaxial::sys {
namespace {

TEST(Configs, BaselineMatchesTableIII) {
  const SystemConfig c = baseline_ddr();
  EXPECT_EQ(c.topology, Topology::kDirectDdr);
  EXPECT_EQ(c.ddr_channels, 1u);
  EXPECT_EQ(c.uarch.cores, 12u);
  EXPECT_EQ(c.uarch.llc_mb_per_core, 2u);
  EXPECT_EQ(c.uarch.rob_entries, 256u);
  EXPECT_EQ(c.uarch.fetch_width, 4u);
  EXPECT_EQ(c.calm.policy, calm::Policy::kNone);
  EXPECT_DOUBLE_EQ(c.peak_memory_gbps(), 38.4);
}

TEST(Configs, Coaxial4xMatchesTableII) {
  const SystemConfig c = coaxial_4x();
  EXPECT_EQ(c.topology, Topology::kCxl);
  EXPECT_EQ(c.cxl_channels, 4u);
  EXPECT_EQ(c.ddr_per_device, 1u);
  EXPECT_EQ(c.uarch.llc_mb_per_core, 1u);  // Halved LLC.
  EXPECT_EQ(c.calm.policy, calm::Policy::kRegulated);
  EXPECT_DOUBLE_EQ(c.calm.r_fraction, 0.70);
  EXPECT_DOUBLE_EQ(c.peak_memory_gbps(), 4 * 38.4);
}

TEST(Configs, Coaxial2xKeepsLlc) {
  const SystemConfig c = coaxial_2x();
  EXPECT_EQ(c.cxl_channels, 2u);
  EXPECT_EQ(c.uarch.llc_mb_per_core, 2u);
}

TEST(Configs, Coaxial5xIsIsoPin) {
  const SystemConfig c = coaxial_5x();
  EXPECT_EQ(c.cxl_channels, 5u);
  EXPECT_EQ(c.uarch.llc_mb_per_core, 2u);
  EXPECT_DOUBLE_EQ(c.peak_memory_gbps(), 5 * 38.4);
}

TEST(Configs, AsymHasTwoDdrPerDevice) {
  const SystemConfig c = coaxial_asym();
  EXPECT_TRUE(c.asym_lanes);
  EXPECT_EQ(c.cxl_channels, 4u);
  EXPECT_EQ(c.ddr_per_device, 2u);
  EXPECT_EQ(c.uarch.llc_mb_per_core, 1u);
  EXPECT_DOUBLE_EQ(c.peak_memory_gbps(), 8 * 38.4);
}

TEST(Configs, MakeMemoryBuildsMatchingTopology) {
  auto base = baseline_ddr().make_memory();
  EXPECT_EQ(base->ports(), 1u);
  EXPECT_DOUBLE_EQ(base->peak_gbps(), 38.4);

  auto coax = coaxial_4x().make_memory();
  EXPECT_EQ(coax->ports(), 4u);
  EXPECT_DOUBLE_EQ(coax->peak_gbps(), 4 * 38.4);

  auto asym = coaxial_asym().make_memory();
  EXPECT_EQ(asym->ports(), 4u);
  EXPECT_DOUBLE_EQ(asym->peak_gbps(), 8 * 38.4);
}

TEST(Configs, AllConfigsAreTableIIOrder) {
  const auto configs = all_configs();
  ASSERT_EQ(configs.size(), 5u);
  EXPECT_EQ(configs[0].name, "DDR-baseline");
  EXPECT_EQ(configs[1].name, "COAXIAL-5x");
  EXPECT_EQ(configs[2].name, "COAXIAL-2x");
  EXPECT_EQ(configs[3].name, "COAXIAL-4x");
  EXPECT_EQ(configs[4].name, "COAXIAL-asym");
}

TEST(AreaModel, TableIIRelativeAreas) {
  const area::ServerArea baseline{144, 288, 12, 0};
  EXPECT_NEAR(area::relative_area({144, 288, 0, 60}, baseline), 1.17, 0.01);
  EXPECT_NEAR(area::relative_area({144, 288, 0, 24}, baseline), 1.01, 0.01);
  EXPECT_NEAR(area::relative_area({144, 144, 0, 48}, baseline), 1.01, 0.01);
}

TEST(AreaModel, ComponentConstantsMatchTableI) {
  EXPECT_DOUBLE_EQ(area::kLlcPerMb, 1.0);
  EXPECT_DOUBLE_EQ(area::kCore, 6.5);
  EXPECT_DOUBLE_EQ(area::kPciePhyCtrl, 5.9);
  EXPECT_DOUBLE_EQ(area::kDdrPhyCtrl, 10.8);
  // The paper's 55% claim: x8 PCIe is ~55% of a DDR controller's area.
  EXPECT_NEAR(area::kPciePhyCtrl / area::kDdrPhyCtrl, 0.55, 0.01);
}

}  // namespace
}  // namespace coaxial::sys
