#include "common/units.hpp"

#include <gtest/gtest.h>

namespace coaxial {
namespace {

TEST(Units, ClockConstantsAreConsistent) {
  EXPECT_DOUBLE_EQ(kNsPerCycle, 1.0 / kClockGhz);
  EXPECT_NEAR(kNsPerCycle, 0.41667, 1e-4);
}

TEST(Units, NsToCyclesRoundsToNearest) {
  EXPECT_EQ(ns_to_cycles(0.0), 0u);
  EXPECT_EQ(ns_to_cycles(1.0), 2u);    // 2.4 cycles -> 2
  EXPECT_EQ(ns_to_cycles(12.5), 30u);  // CXL port latency: exactly 30 cycles.
  EXPECT_EQ(ns_to_cycles(50.0), 120u);
}

TEST(Units, CyclesToNsInverts) {
  for (Cycle c : {Cycle{1}, Cycle{10}, Cycle{100}, Cycle{1000}}) {
    EXPECT_EQ(ns_to_cycles(cycles_to_ns(c)), c);
  }
}

TEST(Units, SerializationCyclesMatchesPaperNumbers) {
  // 64 B at 26 GB/s RX goodput = 2.46 ns ~= 6 cycles (2.5 ns).
  EXPECT_EQ(serialization_cycles(26.0, 64), 6u);
  // 64 B at 13 GB/s TX goodput = 4.9 ns -> 12 cycles.
  EXPECT_EQ(serialization_cycles(13.0, 64), 12u);
  // 64 B at 32 GB/s (asym RX) = 2 ns -> 5 cycles.
  EXPECT_EQ(serialization_cycles(32.0, 64), 5u);
}

TEST(Units, SerializationCyclesNeverZero) {
  EXPECT_GE(serialization_cycles(1000.0, 1), 1u);
  EXPECT_GE(serialization_cycles(26.0, 1), 1u);
}

TEST(Units, BytesPerCycle) {
  // 38.4 GB/s channel at 2.4 GHz = 16 B per cycle.
  EXPECT_NEAR(bytes_per_cycle(38.4), 16.0, 1e-9);
}

class SerializationMonotonic : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SerializationMonotonic, MoreBytesNeverFewerCycles) {
  const std::uint32_t bytes = GetParam();
  EXPECT_LE(serialization_cycles(26.0, bytes), serialization_cycles(26.0, bytes + 64));
  EXPECT_LE(serialization_cycles(13.0, bytes), serialization_cycles(13.0, bytes + 64));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerializationMonotonic,
                         ::testing::Values(1u, 16u, 64u, 128u, 256u, 4096u));

}  // namespace
}  // namespace coaxial
