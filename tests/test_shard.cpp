// Sharded quantum engine (DESIGN.md §14): conservative-lookahead derivation
// and validation, worker-count independence of the stats document, the
// switched-fabric guard rails, and the outer-pool x inner-shard cap.
//
// The load-bearing property is byte-identity: the parallel pump must be a
// pure scheduling change. Every test here compares full canonical JSON
// documents, not individual counters, so any divergence — a reordered
// mailbox drain, a worker-count-dependent barrier decision — fails loudly.
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "common/thread_pool.hpp"
#include "obs/stats_json.hpp"
#include "sim/pooled_system.hpp"
#include "sim/runner.hpp"

namespace coaxial {
namespace {

pool::PoolConfig small_pool(std::uint32_t hosts) {
  pool::PoolConfig c = sys::coaxial_pooled(hosts, /*share_fraction=*/0.5);
  // Shrunk footprints (as in test_pool.cpp) so short runs still collide on
  // the hot shared pages and the directory actually ping-pongs.
  c.private_pages = 1 << 12;
  c.shared_pages = 256;
  c.shared_hot_pages = 4;
  c.shared_hot_prob = 0.9;
  return c;
}

pool::PoolConfig faulty_pool(std::uint32_t hosts) {
  pool::PoolConfig c = sys::coaxial_pooled_faulty(hosts, /*at_cycle=*/4'000);
  c.private_pages = 1 << 12;
  c.shared_pages = 256;
  c.shared_hot_pages = 4;
  c.shared_hot_prob = 0.9;
  return c;
}

sim::RunRequest pooled_request(const pool::PoolConfig& cfg,
                               std::uint32_t shards) {
  sim::RunRequest req;
  req.pool = cfg;
  req.warmup_instr = 300;
  req.measure_instr = 1'500;
  req.seed = 7;
  req.shards = shards;
  return req;
}

// ------------------------------------------------------ lookahead derivation

TEST(ShardLookahead, DirectFabricDerivesPositiveQuantum) {
  sim::PooledSystem s(small_pool(2), /*seed=*/7);
  // The quantum is the fabric's minimum cross-shard delivery latency; a
  // direct point-to-point CXL hop is always multiple cycles.
  EXPECT_GT(s.lookahead(), 1u);
}

TEST(ShardLookahead, SwitchedFabricCannotRunTheEngine) {
  sim::PooledSystem s(sys::coaxial_pooled_switched(2), /*seed=*/7);
  EXPECT_EQ(s.lookahead(), 0u);
}

TEST(ShardLookahead, DeclaredLatencyMatchingDerivedIsAccepted) {
  pool::PoolConfig cfg = small_pool(2);
  const Cycle derived = sim::PooledSystem(cfg, /*seed=*/7).lookahead();
  cfg.shard_min_latency_cycles = derived;
  sim::PooledSystem s(cfg, /*seed=*/7);
  EXPECT_EQ(s.lookahead(), derived);
}

TEST(ShardLookahead, DeclaredLatencyBelowDerivedIsRejected) {
  // A declared minimum below the true fabric latency would be accepted by a
  // naive engine and silently waste lookahead; the config layer must refuse
  // it instead of letting the mismatch hide.
  pool::PoolConfig cfg = small_pool(2);
  const Cycle derived = sim::PooledSystem(cfg, /*seed=*/7).lookahead();
  ASSERT_GT(derived, 1u);  // Otherwise `derived - 1` would be the 0 sentinel.
  cfg.shard_min_latency_cycles = derived - 1;
  EXPECT_THROW(sim::PooledSystem(cfg, /*seed=*/7), std::invalid_argument);
}

TEST(ShardLookahead, DeclaredLatencyAboveDerivedIsRejected) {
  // The opposite direction is worse: a too-large quantum would deliver
  // cross-shard messages later than the fabric actually can, changing
  // results. Also a hard configuration error.
  pool::PoolConfig cfg = small_pool(2);
  const Cycle derived = sim::PooledSystem(cfg, /*seed=*/7).lookahead();
  cfg.shard_min_latency_cycles = derived + 1;
  EXPECT_THROW(sim::PooledSystem(cfg, /*seed=*/7), std::invalid_argument);
}

// -------------------------------------------------- worker-count invariance

TEST(ShardDeterminism, WorkerCountNeverChangesThePooledDocument) {
  const std::string base = stats_json(sim::run_one(pooled_request(
      small_pool(4), /*shards=*/1)));
  ASSERT_FALSE(base.empty());
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    EXPECT_EQ(base, stats_json(sim::run_one(pooled_request(small_pool(4), n))))
        << "document diverged at " << n << " shard workers";
  }
}

TEST(ShardDeterminism, WorkerCountInvariantUnderDeviceFailure) {
  // The RAS path exercises the straggler protocol: demands in flight toward
  // a device that dies mid-quantum must bounce at the barrier with the same
  // timing every worker count observes.
  sim::PooledSystem seq(faulty_pool(2), /*seed=*/7);
  seq.run(/*warmup_instr=*/300, /*measure_instr=*/1'500);
  const std::string base = obs::json::snapshot_to_json(seq.metrics().snapshot());
  const ras::AvailCounters av = seq.memory().avail_counters();
  // The scenario must actually fire, or this test proves nothing.
  ASSERT_GT(av.devices_offlined, 0u);
  EXPECT_GT(av.bounced_reads + av.refused_txns, 0u);
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    sim::PooledSystem par(faulty_pool(2), /*seed=*/7);
    par.set_workers(n);
    par.run(300, 1'500);
    EXPECT_EQ(base, obs::json::snapshot_to_json(par.metrics().snapshot()))
        << "document diverged at " << n << " shard workers";
  }
}

TEST(ShardDeterminism, EffectiveWorkersAreClampedToShardCount) {
  // 2 hosts -> 3 shards; asking for 8 workers must report 3, and the team
  // must still produce the sequential document (checked above).
  sim::PooledSystem s(small_pool(2), /*seed=*/7);
  s.set_workers(8);
  s.run(300, 1'500);
  EXPECT_EQ(s.effective_workers(), 3u);
}

// ------------------------------------------------------ switched guard rails

TEST(ShardGuards, ExplicitWorkersOnSwitchedPoolThrow) {
  sim::RunRequest req = pooled_request(sys::coaxial_pooled_switched(2),
                                       /*shards=*/2);
  EXPECT_THROW(sim::run_one(req), std::invalid_argument);
}

TEST(ShardGuards, EnvWorkersOnSwitchedPoolClampToSequential) {
  // COAXIAL_SHARDS=N applies to a whole batch; a switched pool in the batch
  // must clamp to the sequential pump instead of killing the run.
  ::setenv("COAXIAL_SHARDS", "4", /*overwrite=*/1);
  sim::RunRequest req = pooled_request(sys::coaxial_pooled_switched(2),
                                       /*shards=*/0);
  const sim::RunResult res = sim::run_one(req);
  ::unsetenv("COAXIAL_SHARDS");
  EXPECT_EQ(res.shards, 1u);
}

TEST(ShardGuards, EnvWorkersDriveDirectPools) {
  ::setenv("COAXIAL_SHARDS", "2", /*overwrite=*/1);
  const sim::RunResult res = sim::run_one(pooled_request(small_pool(2), 0));
  ::unsetenv("COAXIAL_SHARDS");
  EXPECT_EQ(res.shards, 2u);
  // And the env-driven run matches the explicit sequential one.
  EXPECT_EQ(stats_json(res),
            stats_json(sim::run_one(pooled_request(small_pool(2), 1))));
}

// ------------------------------------------------- outer x inner worker cap

TEST(ShardCap, InnerShardCapNeverOversubscribes) {
  // outer pool threads x inner shard workers <= hardware threads.
  EXPECT_EQ(inner_shard_cap(/*outer=*/1, /*hardware=*/8), 8u);
  EXPECT_EQ(inner_shard_cap(2, 8), 4u);
  EXPECT_EQ(inner_shard_cap(3, 8), 2u);
  EXPECT_EQ(inner_shard_cap(8, 8), 1u);
  EXPECT_EQ(inner_shard_cap(16, 8), 1u);  // Oversubscribed outer: no inner.
  EXPECT_EQ(inner_shard_cap(0, 8), 8u);   // 0 outer means one pool thread.
  EXPECT_EQ(inner_shard_cap(4, 1), 1u);   // Single-CPU box: always inline.
}

TEST(ShardCap, RunManyCapsWorkersWithoutChangingStats) {
  // A batch on a 2-thread pool halves each run's shard budget; the stats
  // must not notice (caps are pure scheduling).
  const std::vector<sim::RunRequest> reqs = {
      pooled_request(small_pool(2), /*shards=*/8),
      pooled_request(small_pool(4), /*shards=*/8),
  };
  const std::vector<sim::RunResult> batch = sim::run_many(reqs, /*threads=*/2);
  ASSERT_EQ(batch.size(), 2u);
  const std::uint32_t hw = std::thread::hardware_concurrency();
  for (const sim::RunResult& r : batch) {
    EXPECT_LE(r.shards * 2u, std::max(hw, 2u));
  }
  EXPECT_EQ(stats_json(batch[0]),
            stats_json(sim::run_one(pooled_request(small_pool(2), 1))));
  EXPECT_EQ(stats_json(batch[1]),
            stats_json(sim::run_one(pooled_request(small_pool(4), 1))));
}

TEST(ShardCap, ExplicitRequestCapBoundsEnvAndRequest) {
  sim::RunRequest req = pooled_request(small_pool(2), /*shards=*/8);
  req.shard_cap = 2;
  const sim::RunResult res = sim::run_one(req);
  EXPECT_EQ(res.shards, 2u);
}

}  // namespace
}  // namespace coaxial
