#include "core/core.hpp"

#include <gtest/gtest.h>

#include <deque>

namespace coaxial::core {
namespace {

using workload::WorkloadParams;

/// Scriptable memory port: answers issue attempts from a queue of canned
/// results and records accepted waiters so tests can complete them later.
class FakePort : public MemoryPort {
 public:
  IssueResult load_response = IssueResult::kHitL1;
  IssueResult store_response = IssueResult::kHitL1;

  IssueResult issue_load(std::uint32_t, Addr addr, Addr, std::uint64_t waiter,
                         Cycle) override {
    ++loads;
    last_load_addr = addr;
    if (load_response == IssueResult::kAccepted) accepted_loads.push_back(waiter);
    return load_response;
  }
  IssueResult issue_store(std::uint32_t, Addr, Addr, std::uint64_t, Cycle) override {
    ++stores;
    if (store_response == IssueResult::kAccepted) ++outstanding_stores;
    return store_response;
  }

  int loads = 0;
  int stores = 0;
  int outstanding_stores = 0;
  Addr last_load_addr = 0;
  std::deque<std::uint64_t> accepted_loads;
};

WorkloadParams alu_only() {
  WorkloadParams p;
  p.mem_fraction = 0.0;
  p.max_ipc = 4.0;
  p.burstiness = 0.0;
  return p;
}

WorkloadParams loads_only(double dep = 0.0) {
  WorkloadParams p;
  p.mem_fraction = 1.0;
  p.store_fraction = 0.0;
  p.seq_prob = 1.0;
  p.streams = 1;
  p.dep_prob = dep;
  p.max_ipc = 4.0;
  p.burstiness = 0.0;
  return p;
}

sys::MicroarchConfig small_uarch() {
  sys::MicroarchConfig u;
  u.rob_entries = 32;
  u.store_buffer = 4;
  return u;
}

TEST(Core, AluStreamRetiresAtFullWidth) {
  Core core(0, small_uarch(), workload::Generator(alu_only(), 0, 1));
  FakePort port;
  for (Cycle t = 1; t <= 100; ++t) core.tick(t, port);
  // 4-wide with 1-cycle latency: close to 4 IPC after pipeline fill.
  EXPECT_GE(core.retired(), 380u);
  EXPECT_EQ(port.loads, 0);
}

TEST(Core, MaxIpcCeilingThrottlesFetch) {
  auto p = alu_only();
  p.max_ipc = 1.0;
  Core core(0, small_uarch(), workload::Generator(p, 0, 1));
  FakePort port;
  for (Cycle t = 1; t <= 200; ++t) core.tick(t, port);
  EXPECT_NEAR(static_cast<double>(core.retired()), 200.0, 12.0);
}

TEST(Core, L1HitLoadsRetireAfterHitLatency) {
  Core core(0, small_uarch(), workload::Generator(loads_only(), 0, 1));
  FakePort port;
  port.load_response = IssueResult::kHitL1;
  for (Cycle t = 1; t <= 200; ++t) core.tick(t, port);
  EXPECT_GT(core.retired(), 300u);  // Pipelined 4-cycle hits barely stall.
}

TEST(Core, OutstandingMissBlocksRetirementUntilCompleted) {
  Core core(0, small_uarch(), workload::Generator(loads_only(), 0, 1));
  FakePort port;
  port.load_response = IssueResult::kAccepted;
  for (Cycle t = 1; t <= 100; ++t) core.tick(t, port);
  // Nothing can retire: every load is waiting on memory.
  EXPECT_EQ(core.retired(), 0u);
  ASSERT_FALSE(port.accepted_loads.empty());
  // Complete the first load: retirement resumes for it.
  core.on_load_complete(port.accepted_loads.front(), 100);
  for (Cycle t = 101; t <= 105; ++t) core.tick(t, port);
  EXPECT_GE(core.retired(), 1u);
}

TEST(Core, RobCapsOutstandingLoads) {
  Core core(0, small_uarch(), workload::Generator(loads_only(), 0, 1));
  FakePort port;
  port.load_response = IssueResult::kAccepted;
  for (Cycle t = 1; t <= 500; ++t) core.tick(t, port);
  // At most ROB-size loads can be in flight.
  EXPECT_LE(port.accepted_loads.size(), 32u);
}

TEST(Core, RetryBacksOffAndRetries) {
  Core core(0, small_uarch(), workload::Generator(loads_only(), 0, 1));
  FakePort port;
  port.load_response = IssueResult::kRetry;
  for (Cycle t = 1; t <= 50; ++t) core.tick(t, port);
  const int attempts_during_stall = port.loads;
  EXPECT_GT(attempts_during_stall, 5);  // Keeps retrying.
  port.load_response = IssueResult::kHitL1;
  for (Cycle t = 51; t <= 150; ++t) core.tick(t, port);
  EXPECT_GT(core.retired(), 0u);
}

TEST(Core, DependentLoadWaitsForProducer) {
  Core core(0, small_uarch(), workload::Generator(loads_only(/*dep=*/1.0), 0, 1));
  FakePort port;
  port.load_response = IssueResult::kAccepted;
  for (Cycle t = 1; t <= 50; ++t) core.tick(t, port);
  // Fully serialized chain: only the first load may issue.
  EXPECT_EQ(port.accepted_loads.size(), 1u);
  core.on_load_complete(port.accepted_loads.front(), 50);
  port.accepted_loads.clear();
  for (Cycle t = 51; t <= 60; ++t) core.tick(t, port);
  EXPECT_EQ(port.accepted_loads.size(), 1u);  // Next link of the chain.
}

TEST(Core, StoresRetireWithoutWaiting) {
  WorkloadParams p = loads_only();
  p.store_fraction = 1.0;
  Core core(0, small_uarch(), workload::Generator(p, 0, 1));
  FakePort port;
  port.store_response = IssueResult::kAccepted;  // All stores miss (RFO).
  for (Cycle t = 1; t <= 20; ++t) core.tick(t, port);
  EXPECT_GT(core.retired(), 0u);  // Stores don't block the ROB head.
}

TEST(Core, StoreBufferBoundsOutstandingRfos) {
  WorkloadParams p = loads_only();
  p.store_fraction = 1.0;
  Core core(0, small_uarch(), workload::Generator(p, 0, 1));
  FakePort port;
  port.store_response = IssueResult::kAccepted;
  for (Cycle t = 1; t <= 200; ++t) core.tick(t, port);
  EXPECT_LE(port.outstanding_stores, 4);  // store_buffer = 4.
  // Draining the buffer lets more stores issue.
  const int before = port.stores;
  core.on_store_complete(201);
  core.on_store_complete(201);
  for (Cycle t = 201; t <= 210; ++t) core.tick(t, port);
  EXPECT_GT(port.stores, before);
}

TEST(Core, WaiterEncodingRoundTrips) {
  const std::uint64_t lw = Core::make_load_waiter(7, 123);
  EXPECT_EQ(Core::waiter_core(lw), 7u);
  EXPECT_EQ(Core::waiter_slot(lw), 123u);
  EXPECT_FALSE(Core::waiter_is_store(lw));
  const std::uint64_t sw = Core::make_store_waiter(11);
  EXPECT_EQ(Core::waiter_core(sw), 11u);
  EXPECT_TRUE(Core::waiter_is_store(sw));
}

TEST(Core, ResetWindowZeroesRetiredOnly) {
  Core core(0, small_uarch(), workload::Generator(alu_only(), 0, 1));
  FakePort port;
  for (Cycle t = 1; t <= 50; ++t) core.tick(t, port);
  ASSERT_GT(core.retired(), 0u);
  core.reset_window();
  EXPECT_EQ(core.retired(), 0u);
  for (Cycle t = 51; t <= 100; ++t) core.tick(t, port);
  EXPECT_GT(core.retired(), 100u);  // Keeps executing.
}

class CoreIpcCeiling : public ::testing::TestWithParam<double> {};

TEST_P(CoreIpcCeiling, RealizedIpcTracksCeiling) {
  auto p = alu_only();
  p.max_ipc = GetParam();
  Core core(0, small_uarch(), workload::Generator(p, 0, 1));
  FakePort port;
  const Cycle horizon = 2000;
  for (Cycle t = 1; t <= horizon; ++t) core.tick(t, port);
  const double ipc = static_cast<double>(core.retired()) / horizon;
  EXPECT_NEAR(ipc, GetParam(), GetParam() * 0.05 + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Ceilings, CoreIpcCeiling,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 3.0));

}  // namespace
}  // namespace coaxial::core
