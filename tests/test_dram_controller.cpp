#include "dram/controller.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"

namespace coaxial::dram {
namespace {

/// Tick the controller until `token`'s completion appears or `deadline`
/// cycles pass. Returns the completion cycle (kNoCycle on timeout).
Cycle run_until_done(Controller& c, std::uint64_t token, Cycle start, Cycle deadline) {
  for (Cycle now = start; now < start + deadline; ++now) {
    c.tick(now);
    for (const auto& comp : c.completions()) {
      if (comp.token == token) {
        const Cycle done = comp.done;
        c.completions().clear();
        return done;
      }
    }
    c.completions().clear();
  }
  return kNoCycle;
}

TEST(DramController, UnloadedReadLatencyIsActPlusCas) {
  Timing t;
  Controller c(t, Geometry{});
  ASSERT_TRUE(c.enqueue(0, false, 10, 1));
  const Cycle done = run_until_done(c, 1, 10, 1000);
  ASSERT_NE(done, kNoCycle);
  // ACT at 11 (one cycle after enqueue tick), CAS after tRCD, data after
  // CL + BL: total ~= 1 + tRCD + CL + BL.
  const Cycle expected = t.rcd + t.cl + t.bl;
  EXPECT_GE(done - 10, expected);
  EXPECT_LE(done - 10, expected + 4);
}

TEST(DramController, RowHitIsFasterThanRowMiss) {
  Timing t;
  Controller c(t, Geometry{});
  c.enqueue(0, false, 10, 1);
  const Cycle first = run_until_done(c, 1, 10, 1000);
  ASSERT_NE(first, kNoCycle);
  // Second read to the same row (next column): row buffer hit.
  c.enqueue(1, false, first, 2);
  const Cycle second = run_until_done(c, 2, first, 1000);
  ASSERT_NE(second, kNoCycle);
  EXPECT_LT(second - first, t.rcd + t.cl + t.bl);
  EXPECT_GE(second - first, t.cl + t.bl);
  EXPECT_GE(c.stats().row_hits, 1u);
}

TEST(DramController, RowConflictPaysPrecharge) {
  Timing t;
  Geometry g;
  Controller c(t, g);
  c.enqueue(0, false, 10, 1);
  const Cycle first = run_until_done(c, 1, 10, 1000);
  // Same bank, different row: columns*banks lines ahead has the same
  // post-permutation bank only if the XOR fold matches; search for one.
  AddressMap amap(g);
  const Coord c0 = amap.map(0);
  Addr conflict_line = 0;
  for (Addr cand = g.columns * g.banks(); cand < g.columns * g.banks() * 64;
       cand += g.columns) {
    const Coord cc = amap.map(cand);
    if (cc.flat_bank(g) == c0.flat_bank(g) && cc.row != c0.row) {
      conflict_line = cand;
      break;
    }
  }
  ASSERT_NE(conflict_line, 0u);
  c.enqueue(conflict_line, false, first, 2);
  const Cycle second = run_until_done(c, 2, first, 2000);
  ASSERT_NE(second, kNoCycle);
  EXPECT_GE(second - first, t.rp + t.rcd + t.cl + t.bl);
  EXPECT_GE(c.stats().row_conflicts, 1u);
}

TEST(DramController, WriteToReadForwarding) {
  Controller c(Timing{}, Geometry{});
  c.enqueue(42, true, 10, 0);
  c.enqueue(42, false, 11, 7);
  // The read must complete almost immediately from the write queue.
  bool found = false;
  for (const auto& comp : c.completions()) {
    if (comp.token == 7) {
      EXPECT_LE(comp.done, 12u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(c.stats().reads_forwarded, 1u);
}

TEST(DramController, WritesEventuallyDrain) {
  Controller c(Timing{}, Geometry{});
  for (std::uint64_t i = 0; i < 40; ++i) c.enqueue(i * 7, true, 10, 0);
  for (Cycle now = 10; now < 20000; ++now) {
    c.tick(now);
    c.completions().clear();
  }
  EXPECT_EQ(c.stats().writes_done, 40u);
  EXPECT_EQ(c.write_queue_size(), 0u);
}

TEST(DramController, ReadsPrioritizedOverWritesBelowWatermark) {
  Controller c(Timing{}, Geometry{});
  for (std::uint64_t i = 0; i < 8; ++i) c.enqueue(1000 + i * 300, true, 10, 0);
  c.enqueue(0, false, 10, 99);
  const Cycle done = run_until_done(c, 99, 10, 2000);
  ASSERT_NE(done, kNoCycle);
  // The read must not wait for all eight writes (8 conflict writes would
  // take far longer than one read's ACT+CAS).
  EXPECT_LE(done - 10, 400u);
}

TEST(DramController, BackpressureWhenQueueFull) {
  Controller c(Timing{}, Geometry{}, /*read_queue_depth=*/4, /*write_queue_depth=*/4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(c.enqueue(i * 1000, false, 10, i));
  }
  EXPECT_FALSE(c.can_accept(false));
  EXPECT_FALSE(c.enqueue(9999, false, 10, 50));
  EXPECT_TRUE(c.can_accept(true));  // Write queue independent.
}

TEST(DramController, RefreshHappensPeriodically) {
  Timing t;
  Controller c(t, Geometry{});
  const Cycle horizon = t.refi * 5 + 1000;
  for (Cycle now = 1; now < horizon; ++now) {
    if (now % 500 == 0 && c.can_accept(false)) c.enqueue(now, false, now, now);
    c.tick(now);
    c.completions().clear();
  }
  EXPECT_GE(c.stats().refreshes, 4u);
  EXPECT_LE(c.stats().refreshes, 6u);
}

TEST(DramController, AllReadsCompleteUnderRandomLoad) {
  Controller c(Timing{}, Geometry{});
  Rng rng(5);
  std::set<std::uint64_t> outstanding;
  std::uint64_t next_token = 1;
  Cycle now = 1;
  std::uint64_t issued = 0;
  while (issued < 2000 || !outstanding.empty()) {
    if (issued < 2000 && rng.chance(0.1) && c.can_accept(false)) {
      c.enqueue(rng.next_below(1 << 24), false, now, next_token);
      outstanding.insert(next_token++);
      ++issued;
    }
    c.tick(now);
    for (const auto& comp : c.completions()) {
      ASSERT_EQ(outstanding.erase(comp.token), 1u) << "duplicate completion";
      EXPECT_GE(comp.done, now);
    }
    c.completions().clear();
    ++now;
    ASSERT_LT(now, 10'000'000u) << "reads starved";
  }
  EXPECT_EQ(c.stats().reads_done + c.stats().reads_forwarded, 2000u);
}

TEST(DramController, ServicePlusQueueEqualsTotalLatency) {
  Controller c(Timing{}, Geometry{});
  Rng rng(6);
  Cycle now = 1;
  double total_from_hist = 0;
  std::uint64_t done = 0;
  for (; done < 500; ++now) {
    if (rng.chance(0.15) && c.can_accept(false)) {
      c.enqueue(rng.next_below(1 << 20), false, now, now);
    }
    c.tick(now);
    done = c.stats().reads_done;
    c.completions().clear();
  }
  total_from_hist = c.read_latency_hist().mean() *
                    static_cast<double>(c.read_latency_hist().count());
  const double parts = c.stats().read_service_sum + c.stats().read_queue_delay_sum;
  // Forwarded reads enter the histogram but not the service/queue split.
  const double forwarded = static_cast<double>(c.stats().reads_forwarded);
  EXPECT_NEAR(parts + forwarded, total_from_hist, total_from_hist * 0.01 + 1);
}

TEST(DramController, DataBusUtilizationBounded) {
  Timing t;
  Controller c(t, Geometry{});
  Rng rng(8);
  const Cycle horizon = 200000;
  for (Cycle now = 1; now < horizon; ++now) {
    if (c.can_accept(false)) c.enqueue(rng.next_below(1 << 22), false, now, now);
    c.tick(now);
    c.completions().clear();
  }
  EXPECT_LE(c.stats().data_bus_busy_cycles, horizon);
  // Saturating offered load must achieve a decent fraction of the bus.
  EXPECT_GT(static_cast<double>(c.stats().data_bus_busy_cycles) / horizon, 0.4);
}

TEST(DramController, SequentialTrafficHasHighRowHitRate) {
  Controller c(Timing{}, Geometry{});
  Cycle now = 1;
  Addr line = 0;
  while (c.stats().reads_done < 2000) {
    if (c.can_accept(false)) {
      c.enqueue(line, false, now, line);
      ++line;
    }
    c.tick(now);
    c.completions().clear();
    ++now;
  }
  EXPECT_GT(c.stats().row_hit_rate(), 0.8);
}

TEST(DramController, RandomTrafficHasLowRowHitRate) {
  Controller c(Timing{}, Geometry{});
  Rng rng(10);
  Cycle now = 1;
  while (c.stats().reads_done < 2000) {
    if (c.can_accept(false)) c.enqueue(rng.next_u64() >> 24, false, now, now);
    c.tick(now);
    c.completions().clear();
    ++now;
  }
  EXPECT_LT(c.stats().row_hit_rate(), 0.2);
}

class DramLoadLatency : public ::testing::TestWithParam<double> {};

TEST_P(DramLoadLatency, LatencyGrowsWithLoad) {
  // Property: average latency at load p must be >= latency at load p/2.
  auto measure = [](double arrival_prob) {
    Controller c(Timing{}, Geometry{});
    Rng rng(12);
    for (Cycle now = 1; now < 150000; ++now) {
      if (rng.chance(arrival_prob) && c.can_accept(false)) {
        c.enqueue(rng.next_u64() >> 24, false, now, now);
      }
      c.tick(now);
      c.completions().clear();
    }
    return c.read_latency_hist().mean();
  };
  const double p = GetParam();
  EXPECT_GE(measure(p) * 1.02, measure(p / 2));
}

INSTANTIATE_TEST_SUITE_P(Loads, DramLoadLatency, ::testing::Values(0.02, 0.05, 0.08));

TEST(DramController, IdleControllerDoesNothing) {
  Controller c(Timing{}, Geometry{});
  for (Cycle now = 1; now < 1000; ++now) c.tick(now);
  EXPECT_TRUE(c.idle());
  EXPECT_EQ(c.stats().reads_done, 0u);
  EXPECT_EQ(c.stats().activates, 0u);
}

TEST(DramController, ResetStatsClearsCountersOnly) {
  Controller c(Timing{}, Geometry{});
  c.enqueue(0, false, 1, 1);
  run_until_done(c, 1, 1, 1000);
  EXPECT_GT(c.stats().reads_done, 0u);
  c.reset_stats();
  EXPECT_EQ(c.stats().reads_done, 0u);
  EXPECT_EQ(c.read_latency_hist().count(), 0u);
}

TEST(DramController, ActivatesMatchRowMissesPlusConflicts) {
  Controller c(Timing{}, Geometry{});
  Rng rng(14);
  Cycle now = 1;
  while (c.stats().reads_done < 1000) {
    if (rng.chance(0.05) && c.can_accept(false)) {
      c.enqueue(rng.next_below(1 << 18), false, now, now);
    }
    c.tick(now);
    c.completions().clear();
    ++now;
  }
  // Every serviced non-hit needs an ACT; idle precharge may add a few PREs
  // but ACT count should be within the classified non-hit arrivals.
  EXPECT_GT(c.stats().activates, 0u);
  EXPECT_LE(c.stats().activates,
            c.stats().row_misses + c.stats().row_conflicts + c.stats().refreshes + 64);
}

}  // namespace
}  // namespace coaxial::dram
