#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <optional>

#include "common/rng.hpp"

namespace coaxial::cache {
namespace {

TEST(Cache, RejectsInvalidGeometry) {
  EXPECT_THROW(Cache(1000, 8), std::invalid_argument);   // Not a multiple.
  EXPECT_THROW(Cache(64 * 8, 0), std::invalid_argument); // Zero ways.
  EXPECT_THROW(Cache(64 * 3, 1), std::invalid_argument); // 3 sets: not pow2.
}

TEST(Cache, GeometryDerivation) {
  Cache c(32 * 1024, 8);  // L1: 32 KB, 8-way.
  EXPECT_EQ(c.sets(), 64u);
  EXPECT_EQ(c.ways(), 8u);
  EXPECT_EQ(c.size_bytes(), 32u * 1024);
}

TEST(Cache, MissThenHitAfterFill) {
  Cache c(4096, 4);
  EXPECT_FALSE(c.lookup(100));
  c.fill(100, false);
  EXPECT_TRUE(c.lookup(100));
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, ProbeDoesNotPerturbState) {
  Cache c(4096, 2);  // 32 sets, 2 ways.
  // Fill a set with two lines; probing must not change LRU order.
  c.fill(0, false);
  c.fill(32, false);  // Same set (set index = line & 31).
  ASSERT_TRUE(c.probe(0));
  ASSERT_TRUE(c.probe(0));  // Repeated probes.
  // Fill a third line: victim must be line 0 (LRU), not 32.
  const auto ev = c.fill(64, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 0u);
}

TEST(Cache, LookupUpdatesRecency) {
  Cache c(4096, 2);
  c.fill(0, false);
  c.fill(32, false);
  EXPECT_TRUE(c.lookup(0));  // 0 becomes MRU.
  const auto ev = c.fill(64, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 32u);
}

TEST(Cache, WriteMarksDirty) {
  Cache c(4096, 2);
  c.fill(5, false);
  EXPECT_TRUE(c.write(5));
  const auto ev = c.invalidate(5);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
}

TEST(Cache, FillDirtyPropagatesToEviction) {
  Cache c(4096, 1);  // Direct-mapped: 64 sets.
  c.fill(7, true);
  const auto ev = c.fill(7 + 64, false);  // Same set.
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 7u);
  EXPECT_TRUE(ev->dirty);
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, CleanEvictionNotDirty) {
  Cache c(4096, 1);
  c.fill(7, false);
  const auto ev = c.fill(7 + 64, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->dirty);
}

TEST(Cache, DuplicateFillMergesDirtyAndEvictsNothing) {
  Cache c(4096, 2);
  c.fill(9, false);
  const auto ev = c.fill(9, true);  // CALM race duplicate.
  EXPECT_FALSE(ev.has_value());
  const auto inv = c.invalidate(9);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(inv->dirty);
}

TEST(Cache, InvalidateAbsentLineReturnsNothing) {
  Cache c(4096, 2);
  EXPECT_FALSE(c.invalidate(123).has_value());
}

TEST(Cache, MarkDirtyOnAbsentLineIsNoop) {
  Cache c(4096, 2);
  c.mark_dirty(55);  // Must not crash or create the line.
  EXPECT_FALSE(c.probe(55));
}

TEST(Cache, WriteMissDoesNotAllocate) {
  Cache c(4096, 2);
  EXPECT_FALSE(c.write(77));  // Allocation is the caller's job (RFO).
  EXPECT_FALSE(c.probe(77));
}

TEST(Cache, EvictionOnlyWithinSameSet) {
  Cache c(4096, 1);  // 64 sets, direct-mapped.
  c.fill(0, false);
  EXPECT_FALSE(c.fill(1, false).has_value());  // Different set: no victim.
  EXPECT_TRUE(c.probe(0));
  EXPECT_TRUE(c.probe(1));
}

// Reference-model property test: compare against an explicit per-set LRU
// list model under random traffic.
class CacheVsReference : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheVsReference, MatchesLruReferenceModel) {
  const std::uint32_t ways = GetParam();
  const std::uint32_t sets = 16;
  Cache c(static_cast<std::size_t>(sets) * ways * kLineBytes, ways);
  ASSERT_EQ(c.sets(), sets);

  // Reference: per-set list, front = MRU.
  std::vector<std::list<Addr>> ref(sets);
  auto ref_touch = [&](Addr line) -> bool {  // Returns hit.
    auto& set = ref[line % sets];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (*it == line) {
        set.erase(it);
        set.push_front(line);
        return true;
      }
    }
    return false;
  };
  auto ref_fill = [&](Addr line) -> std::optional<Addr> {
    auto& set = ref[line % sets];
    if (ref_touch(line)) return std::nullopt;
    set.push_front(line);
    if (set.size() > ways) {
      const Addr victim = set.back();
      set.pop_back();
      return victim;
    }
    return std::nullopt;
  };

  Rng rng(GetParam() * 1000 + 5);
  for (int i = 0; i < 20000; ++i) {
    const Addr line = rng.next_below(sets * ways * 3);
    if (rng.chance(0.5)) {
      EXPECT_EQ(c.lookup(line), ref_touch(line)) << "op " << i << " line " << line;
    } else {
      const auto victim = c.fill(line, false);
      const auto ref_victim = ref_fill(line);
      ASSERT_EQ(victim.has_value(), ref_victim.has_value()) << "op " << i;
      if (victim) {
        EXPECT_EQ(victim->line, *ref_victim) << "op " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheVsReference, ::testing::Values(1u, 2u, 4u, 8u, 16u));

class CacheOccupancy : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheOccupancy, NeverExceedsCapacity) {
  const std::uint32_t ways = GetParam();
  Cache c(static_cast<std::size_t>(8) * ways * kLineBytes, ways);
  Rng rng(99);
  std::uint64_t resident = 0;
  for (int i = 0; i < 5000; ++i) {
    const Addr line = rng.next_below(1024);
    const bool was_present = c.probe(line);
    const auto ev = c.fill(line, rng.chance(0.3));
    if (!was_present) ++resident;
    if (ev) --resident;
    EXPECT_LE(resident, static_cast<std::uint64_t>(8) * ways);
  }
  EXPECT_EQ(c.stats().fills, 5000u);
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheOccupancy, ::testing::Values(1u, 2u, 4u, 16u));

TEST(Cache, StatsAccumulateAndReset) {
  Cache c(4096, 4);
  c.lookup(1);
  c.fill(1, false);
  c.lookup(1);
  c.write(1);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().writes, 1u);
  EXPECT_GT(c.stats().miss_ratio(), 0.0);
  c.reset_stats();
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_TRUE(c.probe(1));  // Contents survive a stats reset.
}

}  // namespace
}  // namespace coaxial::cache
// -- Replacement-policy variants -------------------------------------------

namespace coaxial::cache {
namespace {

TEST(CachePolicy, SrripEvictsScansBeforeReusedLines) {
  Cache c(4096, 4, ReplacementPolicy::kSrrip);  // 16 sets.
  // Fill a set and promote two lines via hits.
  c.fill(0, false);
  c.fill(16, false);
  c.fill(32, false);
  c.fill(48, false);
  c.lookup(0);
  c.lookup(16);
  // A new fill must victimise one of the never-reused lines (32 or 48).
  const auto ev = c.fill(64, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->line == 32 || ev->line == 48) << "evicted " << ev->line;
  EXPECT_TRUE(c.probe(0));
  EXPECT_TRUE(c.probe(16));
}

TEST(CachePolicy, RandomStaysWithinSet) {
  Cache c(4096, 2, ReplacementPolicy::kRandom);  // 32 sets.
  c.fill(0, false);
  c.fill(32, false);
  const auto ev = c.fill(64, false);  // Same set as 0 and 32.
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->line == 0 || ev->line == 32);
}

class PolicyInvariants : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(PolicyInvariants, HitAfterFillAndBoundedOccupancy) {
  Cache c(8192, 4, GetParam());
  Rng rng(31);
  std::uint64_t resident = 0;
  for (int i = 0; i < 10000; ++i) {
    const Addr line = rng.next_below(512);
    const bool was_present = c.probe(line);
    c.fill(line, false);
    EXPECT_TRUE(c.probe(line));  // A fill always lands.
    if (!was_present) ++resident;
    // Occupancy can never exceed capacity regardless of policy.
    EXPECT_LE(c.stats().fills - c.stats().evictions,
              static_cast<std::uint64_t>(c.sets()) * c.ways() + c.stats().fills -
                  c.stats().evictions);  // (trivially true; guards underflow)
  }
  EXPECT_EQ(c.policy(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyInvariants,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kSrrip,
                                           ReplacementPolicy::kRandom));

}  // namespace
}  // namespace coaxial::cache
