// FixedHistogram unit tests: exact percentiles on hand-computed
// distributions, bucket-boundary edge cases, merge associativity across
// tenants/cores, and overflow-bucket behaviour.
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.hpp"

namespace coaxial {
namespace {

TEST(FixedHistogram, RejectsDegenerateGeometry) {
  EXPECT_THROW(FixedHistogram(0, 16), std::invalid_argument);
  EXPECT_THROW(FixedHistogram(16, 0), std::invalid_argument);
}

TEST(FixedHistogram, EmptyHistogramReportsZeros) {
  FixedHistogram h(16, 64);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(0.999), 0u);
}

TEST(FixedHistogram, ExactPercentilesWithUnitBuckets) {
  // Width-1 buckets make the histogram lossless, so percentiles must match
  // the rank rule target = floor(q*(count-1)) + 1 applied to the sorted
  // samples exactly. Samples: 1..100.
  FixedHistogram h(1, 128);
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(0.0), 1u);     // rank 1
  EXPECT_EQ(h.percentile(0.50), 50u);   // floor(0.5*99)+1 = 50
  EXPECT_EQ(h.percentile(0.90), 90u);   // floor(0.9*99)+1 = 90
  EXPECT_EQ(h.percentile(0.99), 99u);   // floor(0.99*99)+1 = 99
  EXPECT_EQ(h.percentile(0.999), 99u);  // floor(0.999*99)+1 = 99
  EXPECT_EQ(h.percentile(1.0), 100u);   // rank 100
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(FixedHistogram, HandComputedSkewedDistribution) {
  // 99 fast samples at 10 cycles and one slow sample at 500: p50/p90/p99
  // stay in the fast bucket; only the top rank reaches the slow one.
  FixedHistogram h(1, 1024);
  for (int i = 0; i < 99; ++i) h.add(10);
  h.add(500);
  EXPECT_EQ(h.percentile(0.50), 10u);
  EXPECT_EQ(h.percentile(0.90), 10u);
  EXPECT_EQ(h.percentile(0.99), 10u);   // rank floor(.99*99)+1 = 99: fast
  EXPECT_EQ(h.percentile(0.999), 10u);  // rank floor(.999*99)+1 = 99: fast
  EXPECT_EQ(h.percentile(1.0), 500u);   // rank 100: the slow sample
}

TEST(FixedHistogram, BucketBoundaryValuesLandInLowerEdgeBucket) {
  FixedHistogram h(16, 8);
  h.add(15);  // bucket 0: [0, 16)
  h.add(16);  // bucket 1: [16, 32)
  h.add(31);  // bucket 1
  h.add(32);  // bucket 2
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.overflow_count(), 0u);
  // Percentiles report the lower edge of the holding bucket.
  EXPECT_EQ(h.percentile(0.0), 0u);    // rank 1 -> bucket 0
  EXPECT_EQ(h.percentile(0.50), 16u);  // rank 2 -> bucket 1
  EXPECT_EQ(h.percentile(1.0), 32u);   // rank 4 -> bucket 2
}

TEST(FixedHistogram, LastInRangeValueIsNotOverflow) {
  FixedHistogram h(16, 4);  // covers [0, 64)
  h.add(63);
  EXPECT_EQ(h.overflow_count(), 0u);
  h.add(64);
  EXPECT_EQ(h.overflow_count(), 1u);
}

TEST(FixedHistogram, OverflowBucketReportsExactMax) {
  FixedHistogram h(16, 4);  // covers [0, 64)
  h.add(1);
  h.add(1000);
  h.add(70'000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.overflow_count(), 2u);
  // Ranks 2 and 3 live in the overflow bucket: both report the exact
  // maximum rather than a clamped range edge, so a saturated tail never
  // reads as "64 cycles".
  EXPECT_EQ(h.percentile(0.50), 70'000u);
  EXPECT_EQ(h.percentile(0.999), 70'000u);
  EXPECT_EQ(h.max(), 70'000u);
  EXPECT_EQ(h.sum(), 71'001u);
}

TEST(FixedHistogram, MergeRequiresSameShape) {
  FixedHistogram a(16, 64);
  FixedHistogram b(16, 32);
  FixedHistogram c(8, 64);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
  EXPECT_FALSE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
  FixedHistogram d(16, 64);
  EXPECT_TRUE(a.same_shape(d));
  EXPECT_NO_THROW(a.merge(d));
}

bool identical(const FixedHistogram& a, const FixedHistogram& b) {
  if (a.count() != b.count() || a.sum() != b.sum() || a.max() != b.max() ||
      a.overflow_count() != b.overflow_count()) {
    return false;
  }
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    if (a.percentile(q) != b.percentile(q)) return false;
  }
  return true;
}

TEST(FixedHistogram, MergeIsAssociativeAndCommutative) {
  // Three per-tenant histograms over distinct sample sets; every merge tree
  // must produce an identical combined view.
  auto make = [](std::uint64_t base, std::uint64_t step, int n) {
    FixedHistogram h(4, 256);
    for (int i = 0; i < n; ++i) h.add(base + step * static_cast<std::uint64_t>(i));
    return h;
  };
  const FixedHistogram t0 = make(3, 7, 40);
  const FixedHistogram t1 = make(100, 13, 25);
  const FixedHistogram t2 = make(900, 31, 10);  // Includes overflow (>1024).

  FixedHistogram left(4, 256);  // (t0 + t1) + t2
  left.merge(t0);
  left.merge(t1);
  left.merge(t2);

  FixedHistogram right(4, 256);  // t0 + (t1 + t2), built via a temp.
  FixedHistogram t12(4, 256);
  t12.merge(t1);
  t12.merge(t2);
  right.merge(t0);
  right.merge(t12);

  FixedHistogram reversed(4, 256);  // t2 + t1 + t0
  reversed.merge(t2);
  reversed.merge(t1);
  reversed.merge(t0);

  EXPECT_TRUE(identical(left, right));
  EXPECT_TRUE(identical(left, reversed));

  // And the merged view equals adding every sample into one histogram.
  FixedHistogram direct(4, 256);
  for (int i = 0; i < 40; ++i) direct.add(3 + 7 * static_cast<std::uint64_t>(i));
  for (int i = 0; i < 25; ++i) direct.add(100 + 13 * static_cast<std::uint64_t>(i));
  for (int i = 0; i < 10; ++i) direct.add(900 + 31 * static_cast<std::uint64_t>(i));
  EXPECT_TRUE(identical(left, direct));
}

TEST(FixedHistogram, ResetClearsEverything) {
  FixedHistogram h(16, 8);
  h.add(5);
  h.add(1'000'000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(0.999), 0u);
  // Geometry survives reset.
  EXPECT_EQ(h.bucket_width(), 16u);
  EXPECT_EQ(h.buckets(), 8u);
}

TEST(FixedHistogram, PercentilesMonotoneInQuantile) {
  FixedHistogram h(8, 128);
  std::uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    h.add((x >> 33) % 2000);  // Some samples overflow the 1024-cycle range.
  }
  std::uint64_t prev = 0;
  for (double q : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const std::uint64_t v = h.percentile(q);
    EXPECT_GE(v, prev) << "quantile " << q;
    prev = v;
  }
}

}  // namespace
}  // namespace coaxial
