// Device-failure lifecycle tests (DESIGN.md §13): FaultPlan episode-field
// validation, stall/wake interaction with surprise removal, directory
// fail_reset, scheduler-mode byte-equivalence straight through a failure
// (single-host direct + switched, pooled with CRC noise on top), placement
// evacuation conservation, the zero-lost-update property (every non-retired
// page readable after evacuation), and statdiff glob coverage of the
// ras/avail/* subtree. Lives in the `avail` label so the ASan CI pass runs
// it.
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "obs/statdiff.hpp"
#include "obs/stats_json.hpp"
#include "placement/tiered_memory.hpp"
#include "pool/directory.hpp"
#include "pool/pool_config.hpp"
#include "sim/pooled_system.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace coaxial {
namespace {

using ras::FailureMode;
using ras::FaultPlan;

// ---------------------------------------------------------- plan validation

FaultPlan failing_plan() {
  FaultPlan p;
  p.fail_mode = FailureMode::kFailing;
  p.fail_at_cycle = 1'000;
  p.fail_device = 1;
  return p;
}

TEST(FaultPlanFailure, EpisodeAtCycleZeroRejected) {
  FaultPlan p = failing_plan();
  p.fail_at_cycle = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(FaultPlanFailure, ZeroEvacuationBandwidthRejected) {
  FaultPlan p = failing_plan();
  p.evac_pages_per_epoch = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  // Surprise removal needs the bound too: stranded pages retire per epoch.
  p = failing_plan();
  p.fail_mode = FailureMode::kSurpriseRemoval;
  p.evac_pages_per_epoch = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(FaultPlanFailure, DeviceIndexMustBeInBounds) {
  FaultPlan p = failing_plan();
  EXPECT_NO_THROW(p.validate_devices(4));
  p.fail_device = 4;
  EXPECT_THROW(p.validate_devices(4), std::invalid_argument);
  // Without a planned episode the device index is never dereferenced.
  p.fail_mode = FailureMode::kNone;
  EXPECT_NO_THROW(p.validate_devices(4));
}

TEST(FaultPlanFailure, FailingRatesAndMonitorKnobsRangeChecked) {
  for (const auto& [field, value] :
       std::map<std::string, double>{{"fail_error_rate", 0.0},
                                     {"fail_error_rate", 1.5},
                                     {"health_ewma_alpha", 0.0},
                                     {"health_threshold", 0.0}}) {
    FaultPlan p = failing_plan();
    if (field == "fail_error_rate") p.fail_error_rate = value;
    if (field == "health_ewma_alpha") p.health_ewma_alpha = value;
    if (field == "health_threshold") p.health_threshold = value;
    EXPECT_THROW(p.validate(), std::invalid_argument) << field << "=" << value;
  }
  FaultPlan p = failing_plan();
  p.health_period_cycles = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(FaultPlanFailure, NoOnsetMeansInert) {
  FaultPlan p = failing_plan();
  p.fail_at_cycle = kNoCycle;
  EXPECT_FALSE(p.device_failure());
  EXPECT_FALSE(p.enabled());
  EXPECT_NO_THROW(p.validate());
}

TEST(PoolConfigFailure, GracefulEvacuationRejectedInPools) {
  // Pools support surprise removal only: evacuation is a single-host
  // tiering feature (the fabric manager has no per-page migration path).
  pool::PoolConfig c = sys::coaxial_pooled(2);
  c.fault_plan = sys::ras_failing_evac(1, 1'000);
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.fault_plan = sys::ras_device_loss(1, 1'000);
  EXPECT_NO_THROW(c.validate());
}

TEST(PoolConfigFailure, FailDeviceMustIndexASharedDevice) {
  pool::PoolConfig c = sys::coaxial_pooled(2);  // 2 shared devices.
  c.fault_plan = sys::ras_device_loss(/*device=*/2, 1'000);
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

// ------------------------------------------- stall/wake with a dead device

TEST(FaultPlanFailure, SurpriseDeadDeviceStallsForever) {
  FaultPlan p;
  p.fail_mode = FailureMode::kSurpriseRemoval;
  p.fail_at_cycle = 50;
  p.fail_device = 1;
  // No periodic stall windows armed: the dead device must still read as
  // stalled without tripping the period-modulo arithmetic.
  EXPECT_FALSE(p.in_stall(49, 1));
  EXPECT_TRUE(p.in_stall(50, 1));
  EXPECT_TRUE(p.in_stall(1'000'000, 1));
  EXPECT_EQ(p.stall_end(50, 1), kNoCycle);
  EXPECT_EQ(p.stall_end(1'000'000, 1), kNoCycle);
  // Survivors are untouched.
  EXPECT_FALSE(p.in_stall(60, 0));
  EXPECT_EQ(p.stall_end(60, 0), Cycle{60});
}

TEST(FaultPlanFailure, StallEndNeverReturnsAPastWake) {
  // Periodic stalls on every device *plus* a surprise removal of device 1:
  // whatever the phase, stall_end is monotone (>= now) or kNoCycle — the
  // scheduler arms wake bounds from it and a past wake would deadlock the
  // event-driven mode.
  FaultPlan p;
  p.stall_period_cycles = 100;
  p.stall_len_cycles = 10;
  p.fail_mode = FailureMode::kSurpriseRemoval;
  p.fail_at_cycle = 105;  // Mid-window of the second stall period.
  p.fail_device = 1;
  for (Cycle now = 0; now < 500; ++now) {
    for (std::uint32_t dev = 0; dev < 3; ++dev) {
      const Cycle end = p.stall_end(now, dev);
      EXPECT_TRUE(end == kNoCycle || end >= now)
          << "now=" << now << " dev=" << dev << " end=" << end;
      if (end != kNoCycle && end != now) {
        EXPECT_FALSE(p.in_stall(end, dev)) << "now=" << now << " dev=" << dev;
      }
    }
  }
}

// ----------------------------------------------------- directory fail_reset

TEST(DirectoryFailReset, SnapshotsInSlotOrderAndClears) {
  pool::Directory d(/*capacity=*/4, /*n_hosts=*/4);
  d.access(10, 0, true);   // M, owner 0 (slot 0).
  d.access(20, 1, false);  // S, sharer 1 (slot 1).
  d.access(20, 2, false);  // + sharer 2.
  ASSERT_TRUE(d.access(10, 1, true).needs_txn);  // Lock slot 0.
  const std::vector<pool::Directory::Entry> snap = d.fail_reset();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].page, 10u);  // Slot order, locked entries included.
  EXPECT_TRUE(snap[0].locked);
  EXPECT_EQ(snap[1].page, 20u);
  EXPECT_EQ(snap[1].sharers, (std::uint64_t{1} << 1) | (std::uint64_t{1} << 2));
  EXPECT_EQ(d.occupancy(), 0u);
  EXPECT_EQ(d.find(10), nullptr);
  EXPECT_EQ(d.find(20), nullptr);
  // The directory is immediately usable again (free list rebuilt).
  EXPECT_FALSE(d.access(30, 3, false).blocked);
  EXPECT_EQ(d.occupancy(), 1u);
}

// --------------------------------------- single-host scheduler equivalence

/// Shrunk failover config: tiny fast tier, short epochs, an episode early
/// enough that a 2500-instruction run drives the whole lifecycle.
sys::SystemConfig failover_small(FailureMode mode) {
  sys::SystemConfig c = sys::coaxial_tiered_failover(mode, /*at_cycle=*/1'000);
  c.tiering.fast_capacity_pages = 64;
  c.tiering.epoch_cycles = 300;
  c.tiering.promote_threshold = 1;
  c.tiering.max_migrations_per_epoch = 8;
  c.tiering.max_concurrent_migrations = 2;
  if (mode == FailureMode::kFailing) {
    // Sensitive monitor, survivable error rate: 2% per read trips a 0.2%
    // threshold within a window or two, yet a 64-line page copy still
    // succeeds with probability 0.98^64 ~ 0.27, so aborted evacuation
    // jobs retry to completion instead of livelocking.
    c.fault_plan.fail_error_rate = 0.02;
    c.fault_plan.fail_ramp_cycles = 400;
    c.fault_plan.health_period_cycles = 200;
    c.fault_plan.health_ewma_alpha = 0.5;
    c.fault_plan.health_threshold = 0.002;
  }
  return c;
}

std::string run_document(const sys::SystemConfig& cfg, bool forced,
                         Cycle* end_cycle, ras::AvailCounters* av = nullptr) {
  std::vector<workload::WorkloadParams> per_core(
      cfg.uarch.cores, workload::find_workload("tiered-hotcold"));
  sim::System s(cfg, per_core, /*seed=*/7);
  if (forced) s.set_tick_every_cycle(true);
  s.run(/*warmup_instr=*/500, /*measure_instr=*/5000);
  *end_cycle = s.now();
  if (av != nullptr) *av = s.memory().avail_counters();
  return obs::json::snapshot_to_json(s.metrics().snapshot());
}

void expect_modes_equivalent_through_failure(const sys::SystemConfig& cfg) {
  Cycle end_event = 0, end_forced = 0;
  ras::AvailCounters ev{}, fo{};
  const std::string a = run_document(cfg, /*forced=*/false, &end_event, &ev);
  const std::string b = run_document(cfg, /*forced=*/true, &end_forced, &fo);
  EXPECT_EQ(end_event, end_forced) << cfg.name;
  EXPECT_EQ(a, b) << cfg.name;
  // The equivalence must hold *through* the episode: the device has to have
  // actually died, or the test proves nothing about the failure path.
  EXPECT_EQ(ev.devices_offlined, 1u) << cfg.name;
  EXPECT_EQ(fo.devices_offlined, 1u) << cfg.name;
}

TEST(AvailEquivalence, SurpriseRemovalMatchesForcedTicking) {
  expect_modes_equivalent_through_failure(failover_small(FailureMode::kSurpriseRemoval));
}

TEST(AvailEquivalence, FailingEvacuationMatchesForcedTicking) {
  const sys::SystemConfig cfg = failover_small(FailureMode::kFailing);
  Cycle end = 0;
  ras::AvailCounters av{};
  expect_modes_equivalent_through_failure(cfg);
  run_document(cfg, /*forced=*/false, &end, &av);
  // The graceful path must have exercised the monitor and the evacuation.
  EXPECT_EQ(av.monitor_trips, 1u);
  EXPECT_GT(av.health_samples, 0u);
  EXPECT_GT(av.fail_errors, 0u);
  EXPECT_GT(av.evac_pages_out, 0u);
}

TEST(AvailEquivalence, SwitchedFabricMatchesForcedTicking) {
  sys::SystemConfig cfg = failover_small(FailureMode::kSurpriseRemoval);
  cfg.name += "-sw";
  cfg.fabric = fabric::FabricConfig::star(/*devices=*/8, /*host_links=*/4);
  cfg.fabric.interleave = fabric::Interleave::kPage;
  cfg.fabric.page_lines = cfg.tiering.page_lines;
  expect_modes_equivalent_through_failure(cfg);
}

TEST(AvailEquivalence, RepeatedRunsAreByteIdentical) {
  const sys::SystemConfig cfg = failover_small(FailureMode::kFailing);
  Cycle end_a = 0, end_b = 0;
  const std::string a = run_document(cfg, false, &end_a);
  const std::string b = run_document(cfg, false, &end_b);
  EXPECT_EQ(end_a, end_b);
  EXPECT_EQ(a, b);
}

TEST(AvailMetrics, AvailSubtreeAppearsOnlyWithAnEpisode) {
  const std::vector<workload::WorkloadParams> per_core(
      12, workload::find_workload("tiered-hotcold"));
  // CRC noise alone arms ras/* but not ras/avail/*.
  sys::SystemConfig noisy = sys::coaxial_tiered();
  noisy.fault_plan = sys::ras_crc_noise(1e-5);
  sim::System crc(noisy, per_core, 7);
  EXPECT_TRUE(crc.metrics().contains("ras/crc_errors"));
  EXPECT_FALSE(crc.metrics().contains("ras/avail/devices_offlined"));
  sim::System failing(failover_small(FailureMode::kFailing), per_core, 7);
  EXPECT_TRUE(failing.metrics().contains("ras/avail/monitor_trips"));
  EXPECT_TRUE(failing.metrics().contains("ras/avail/evac_pages_out"));
}

// ----------------------------- evacuation conservation + zero lost update

TEST(AvailInvariants, EvacuationConservesPagesExactly) {
  const sys::SystemConfig cfg = failover_small(FailureMode::kFailing);
  std::vector<workload::WorkloadParams> per_core(
      cfg.uarch.cores, workload::find_workload("tiered-hotcold"));
  sim::System s(cfg, per_core, /*seed=*/7);
  s.run(500, 5000);
  const ras::AvailCounters av = s.memory().avail_counters();
  ASSERT_GT(av.evac_pages_out, 0u);
  // Every page that left the failing device either landed on a survivor or
  // was retired — no page is both, none is neither.
  EXPECT_EQ(av.evac_pages_out, av.evac_pages_in + av.pages_retired);
  EXPECT_EQ(av.monitor_trips, 1u);
  EXPECT_EQ(av.devices_offlined, 1u);
  EXPECT_EQ(s.memory().failure_status().phase, ras::FailureStatus::Phase::kDead);
}

/// Minimal cycle-by-cycle driver over a bare TieredMemory, for page-exact
/// post-mortem probing no full-system run can do.
struct MiniDriver {
  explicit MiniDriver(mem::MemorySystem& m) : mem(m) {}
  mem::MemorySystem& mem;
  Cycle now = 0;
  std::uint64_t next_token = 1;
  std::vector<mem::MemCompletion> done;

  void step() {
    mem.tick(now);
    auto& out = mem.completions();
    done.insert(done.end(), out.begin(), out.end());
    out.clear();
    ++now;
  }
  void run_until(Cycle end) {
    while (now < end) step();
  }
  /// Issue a read and spin to its completion; returns the poison flag.
  bool read_poisoned(Addr line) {
    while (!mem.can_accept(line, /*is_write=*/false, now)) step();
    const std::uint64_t token = next_token++;
    mem.access(line, /*is_write=*/false, now, token);
    for (Cycle guard = 0; guard < 100'000; ++guard) {
      for (const mem::MemCompletion& c : done) {
        if (c.token == token) return c.poisoned;
      }
      step();
    }
    ADD_FAILURE() << "read of line " << line << " never completed";
    return true;
  }
};

/// Bare failover stack: 4 capacity devices behind page interleave, a tiny
/// fast tier, and the static policy so the *only* migrations are the
/// evacuation's.
std::unique_ptr<placement::TieredMemory> mini_failover(const FaultPlan& plan,
                                                       std::uint32_t fast_pages = 8) {
  placement::TierConfig tc;
  tc.enabled = true;
  tc.policy = placement::PolicyKind::kStaticInterleave;
  tc.page_lines = 64;
  tc.fast_capacity_pages = fast_pages;
  tc.epoch_cycles = 200;
  tc.max_migrations_per_epoch = 8;
  tc.max_concurrent_migrations = 2;
  auto fast = std::make_unique<mem::DirectDdrMemory>(1);
  fabric::FabricConfig fab = fabric::FabricConfig::direct();
  fab.interleave = fabric::Interleave::kPage;
  fab.page_lines = tc.page_lines;
  auto cap = std::make_unique<mem::CxlMemory>(fab, /*cxl_channels=*/4, 1,
                                              link::LaneConfig::x8(12.5),
                                              dram::Timing{}, dram::Geometry{},
                                              obs::Scope{}, plan);
  return std::make_unique<placement::TieredMemory>(tc, std::move(fast), std::move(cap),
                                                   obs::Scope{}, plan);
}

TEST(AvailInvariants, EveryNonRetiredPageReadableAfterEvacuation) {
  FaultPlan plan;
  plan.fail_mode = FailureMode::kFailing;
  plan.fail_at_cycle = 400;
  plan.fail_device = 1;
  plan.fail_error_rate = 0.02;  // Low enough that some page copies succeed.
  plan.fail_ramp_cycles = 0;    // Full rate from onset.
  plan.health_period_cycles = 100;
  plan.health_ewma_alpha = 1.0;  // Trip on the first bad window.
  plan.health_threshold = 0.004;
  plan.evac_pages_per_epoch = 8;

  auto tm = mini_failover(plan);
  MiniDriver d(*tm);
  // Pages p with p % 4 == 1 home on device 1 under page interleave.
  const std::vector<Addr> doomed = {1, 5, 9, 13};
  const std::vector<Addr> safe = {0, 2, 7};
  // Touch the doomed pages repeatedly through the failing window so the
  // monitor sees errors and the evacuation learns every page.
  using Phase = ras::FailureStatus::Phase;
  for (Cycle guard = 0; guard < 60'000; ++guard) {
    const Phase phase = tm->failure_status().phase;
    if (phase == Phase::kDead) break;
    if (phase != Phase::kDraining && d.now % 16 == 0) {
      for (const Addr page : doomed) {
        const Addr line = page * 64 + (d.now / 16) % 64;
        if (tm->can_accept(line, false, d.now)) {
          tm->access(line, false, d.now, d.next_token++);
        }
      }
    }
    d.step();
  }
  ASSERT_EQ(tm->failure_status().phase, Phase::kDead);
  d.run_until(d.now + 2'000);  // Let straggler completions drain.
  d.done.clear();

  const ras::AvailCounters av = tm->avail_counters();
  EXPECT_EQ(av.monitor_trips, 1u);
  EXPECT_EQ(av.devices_offlined, 1u);
  EXPECT_EQ(av.evac_pages_out, av.evac_pages_in + av.pages_retired);
  // Zero lost update: every touched page is either retired (reads poison,
  // exactly the MCE contract) or evacuated (reads complete clean off the
  // survivor tier). Pages on surviving devices are plain reads throughout.
  std::uint64_t retired_seen = 0;
  for (const Addr page : doomed) {
    const bool retired = tm->page_retired(page);
    EXPECT_EQ(d.read_poisoned(page * 64 + 3), retired) << "page " << page;
    retired_seen += retired ? 1 : 0;
  }
  for (const Addr page : safe) {
    EXPECT_FALSE(tm->page_retired(page));
    EXPECT_FALSE(d.read_poisoned(page * 64 + 3)) << "page " << page;
  }
  EXPECT_EQ(retired_seen, av.pages_retired);
  // Retired touches were absorbed by the table, not the dead device.
  EXPECT_EQ(tm->avail_counters().retired_touches,
            av.retired_touches + retired_seen);
}

TEST(AvailInvariants, SurpriseRemovalRetiresOnFirstTouch) {
  FaultPlan plan = sys::ras_device_loss(/*device=*/1, /*at_cycle=*/300);
  auto tm = mini_failover(plan);
  MiniDriver d(*tm);
  // Touch page 1 (device 1) before the removal: it completes clean.
  EXPECT_FALSE(d.read_poisoned(1 * 64));
  d.run_until(2'000);  // Device 1 is now gone; let the drain settle.
  // First touch after death discovers the loss: poison, page retired.
  EXPECT_TRUE(d.read_poisoned(1 * 64 + 1));
  EXPECT_TRUE(tm->page_retired(1));
  // Later touches are absorbed by the retirement table, still poisoned.
  EXPECT_TRUE(d.read_poisoned(1 * 64 + 2));
  EXPECT_GE(tm->avail_counters().retired_touches, 1u);
  // Survivors are untouched by the episode.
  EXPECT_FALSE(d.read_poisoned(2 * 64));
  EXPECT_EQ(tm->avail_counters().devices_offlined, 1u);
  EXPECT_EQ(tm->avail_counters().monitor_trips, 0u);
}

// ------------------------------------------------ pooled composition (RAS)

pool::PoolConfig faulty_pool(std::uint32_t hosts) {
  pool::PoolConfig c = sys::coaxial_pooled(hosts, /*share_fraction=*/0.5);
  c.name += "-faulty";
  // Shrink footprints so short test runs still collide on the hot pages.
  c.private_pages = 1 << 12;
  c.shared_pages = 256;
  c.shared_hot_pages = 4;
  c.shared_hot_prob = 0.9;
  // CRC noise on every host head *and* a surprise removal of shared device
  // 1 mid-run: the composition the fleet actually fears.
  c.fault_plan = sys::ras_device_loss(/*device=*/1, /*at_cycle=*/1'500);
  c.fault_plan.bit_error_rate = 3e-5;
  return c;
}

std::string pooled_document(sim::PooledSystem& s, bool forced, sim::PooledStats* out) {
  if (forced) s.set_tick_every_cycle(true);
  const sim::PooledStats st = s.run(/*warmup_instr=*/300, /*measure_instr=*/1500);
  if (out != nullptr) *out = st;
  return obs::json::snapshot_to_json(s.metrics().snapshot());
}

void expect_pooled_modes_equivalent(const pool::PoolConfig& cfg) {
  sim::PooledStats ev, fo;
  sim::PooledSystem a(cfg, /*seed=*/7), b(cfg, /*seed=*/7);
  const std::string doc_a = pooled_document(a, /*forced=*/false, &ev);
  const std::string doc_b = pooled_document(b, /*forced=*/true, &fo);
  EXPECT_EQ(ev.total_cycles, fo.total_cycles) << cfg.name;
  EXPECT_EQ(doc_a, doc_b) << cfg.name;
  // Under real load, through a real death.
  EXPECT_GT(ev.pool.invals_sent, 0u) << cfg.name;
  EXPECT_EQ(a.memory().avail_counters().devices_offlined, 1u) << cfg.name;
}

TEST(PooledAvail, SchedulerModesMatchThroughDeviceLossDirect) {
  expect_pooled_modes_equivalent(faulty_pool(2));
}

TEST(PooledAvail, SchedulerModesMatchThroughDeviceLossSwitched) {
  pool::PoolConfig cfg = faulty_pool(2);
  cfg.name += "-sw";
  cfg.fabric_kind = fabric::TopologyKind::kStar;
  expect_pooled_modes_equivalent(cfg);
}

TEST(PooledAvail, DirectoryRecoveryConservesInvalidations) {
  const pool::PoolConfig cfg = faulty_pool(2);
  sim::PooledSystem s(cfg, /*seed=*/7);
  const sim::PooledStats st = s.run(300, 1500);
  const ras::AvailCounters av = s.memory().avail_counters();
  EXPECT_TRUE(s.memory().device_dead());
  EXPECT_EQ(av.devices_offlined, 1u);
  // Exactly-once delivery still holds with a dead device in the pool:
  // recovery invalidations ride the same wire/ack protocol as demand ones.
  EXPECT_EQ(st.pool.invals_sent, st.pool.invals_acked);
  // Dirty recalls whose destination died are discarded (and counted): the
  // failure-free equality relaxes to >=, never <, and every missing
  // writeback is accounted as a lost dirty page (which also counts M
  // entries snapshot at the directory reset).
  EXPECT_GE(st.pool.recalls_dirty, st.pool.recall_writebacks);
  EXPECT_LE(st.pool.recalls_dirty - st.pool.recall_writebacks, av.lost_dirty_pages);
  // The dead device's directory was reset and refuses new residents.
  EXPECT_EQ(s.memory().directory(cfg.fault_plan.fail_device).occupancy(), 0u);
  // Both hosts survive and make progress.
  ASSERT_EQ(st.host_ipc.size(), 2u);
  EXPECT_GT(st.host_ipc[0], 0.0);
  EXPECT_GT(st.host_ipc[1], 0.0);
  // CRC noise composed with the failure (the satellite's whole point).
  EXPECT_GT(s.memory().ras_counters().crc_errors, 0u);
}

TEST(PooledAvail, PooledAvailMetricsRegistered) {
  sim::PooledSystem s(faulty_pool(2), /*seed=*/7);
  s.run(100, 400);
  const obs::Snapshot snap = s.metrics().snapshot();
  bool saw_offlined = false, saw_ras = false;
  for (const auto& [path, value] : snap) {
    (void)value;
    saw_offlined = saw_offlined || path == "ras/avail/devices_offlined";
    saw_ras = saw_ras || path == "ras/crc_errors";
  }
  EXPECT_TRUE(saw_offlined);
  EXPECT_TRUE(saw_ras);
}

// -------------------------------------------------- statdiff glob coverage

TEST(StatDiffAvail, GlobRulePinsAvailSubtreeExact) {
  using obs::DiffOptions;
  using obs::diff_stats;
  EXPECT_TRUE(obs::glob_match("ras/avail/*", "ras/avail/evac_pages_out"));
  EXPECT_TRUE(obs::glob_match("ras/avail/*", "ras/avail/pages_retired"));
  EXPECT_FALSE(obs::glob_match("ras/avail/*", "ras/crc_errors"));
  // A float leaf under ras/avail/ must not be softened by the document-wide
  // tolerance once the CI pin rule (`ras/avail/*=0`) is appended.
  const obs::json::Flat a =
      obs::json::parse_flat(R"({"ras": {"avail": {"ewma": 0.01}}, "ipc": 1.0})");
  const obs::json::Flat b = obs::json::parse_flat(
      R"({"ras": {"avail": {"ewma": 0.0100001}}, "ipc": 1.0000001})");
  DiffOptions opts;
  opts.default_rtol = 1e-4;
  EXPECT_TRUE(diff_stats(a, b, opts).empty());
  opts.rules.push_back({"ras/avail/*", 0.0});
  const auto diffs = diff_stats(a, b, opts);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].path, "ras/avail/ewma");
}

}  // namespace
}  // namespace coaxial
