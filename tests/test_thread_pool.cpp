// ThreadPool exception-safety regression tests.
//
// Historically a task that threw unwound the worker thread itself: the
// uncaught exception hit std::thread's backstop and std::terminate killed
// the whole process (and, because outstanding_ was never decremented,
// wait_idle would have deadlocked even without the terminate). The pool now
// captures the first task exception and rethrows it from wait_idle(); these
// tests pin that contract.
#include <atomic>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"

namespace coaxial {
namespace {

TEST(ThreadPool, TaskExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle swallowed the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPool, OnlyFirstExceptionIsRethrownAndOthersRunToCompletion) {
  ThreadPool pool(1);  // Single worker: deterministic task order.
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([&] { ++ran; });
  pool.submit([&] {
    ++ran;
    throw std::runtime_error("second");
  });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle swallowed the task exceptions";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // A failure must not wedge the queue: later tasks still ran.
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, PoolIsReusableAfterAFailure) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The captured exception was consumed; the pool keeps working.
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, CleanRunsStillWaitForEverything) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
}  // namespace coaxial
