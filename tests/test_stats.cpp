#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace coaxial {
namespace {

TEST(RunningMean, EmptyIsZero) {
  RunningMean m;
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.count(), 0u);
}

TEST(RunningMean, ComputesMean) {
  RunningMean m;
  for (double v : {1.0, 2.0, 3.0, 4.0}) m.add(v);
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
  EXPECT_EQ(m.count(), 4u);
  EXPECT_DOUBLE_EQ(m.sum(), 10.0);
}

TEST(RunningMean, ResetClears) {
  RunningMean m;
  m.add(5.0);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.mean(), 0.0);
}

TEST(LatencyHistogram, MeanMatchesSamples) {
  LatencyHistogram h;
  for (Cycle c : {10u, 20u, 30u}) h.add(c);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(LatencyHistogram, PercentileOfConstant) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.add(42);
  EXPECT_EQ(h.percentile(0.5), 42u);
  EXPECT_EQ(h.percentile(0.9), 42u);
  EXPECT_EQ(h.percentile(0.99), 42u);
}

TEST(LatencyHistogram, PercentileOfUniform) {
  LatencyHistogram h;
  for (Cycle c = 1; c <= 1000; ++c) h.add(c);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 500.0, 2.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.9)), 900.0, 2.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.99)), 990.0, 2.0);
}

TEST(LatencyHistogram, PercentilesAreMonotonic) {
  LatencyHistogram h;
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) h.add(rng.next_below(2000));
  Cycle prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const Cycle p = h.percentile(q);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(LatencyHistogram, OverflowBinCapturesLargeValues) {
  LatencyHistogram h(128);
  h.add(1'000'000);
  EXPECT_EQ(h.percentile(0.99), 128u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(LatencyHistogram, EmptyPercentileIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(0.9), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.add(10);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(EpochRate, ReportsLastCompletedEpoch) {
  EpochRate r(100);
  for (Cycle t = 0; t < 100; ++t) r.record(t, 2.0);
  // First epoch not yet rolled: rate still 0 until we query past it.
  EXPECT_DOUBLE_EQ(r.rate(100), 2.0);
}

TEST(EpochRate, IdleEpochDropsRate) {
  EpochRate r(100);
  for (Cycle t = 0; t < 100; ++t) r.record(t, 1.0);
  EXPECT_DOUBLE_EQ(r.rate(150), 1.0);
  // Next epoch has no events.
  EXPECT_DOUBLE_EQ(r.rate(250), 0.0);
}

TEST(EpochRate, SkipsMultipleEpochs) {
  EpochRate r(10);
  r.record(0, 5.0);
  EXPECT_DOUBLE_EQ(r.rate(1000), 0.0);  // Many empty epochs since.
}

TEST(Geomean, KnownValues) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geomean({1.0, 2.0, 4.0}), 2.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}

TEST(Amean, KnownValues) {
  EXPECT_DOUBLE_EQ(amean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(amean({}), 0.0);
}

TEST(Fmt, FormatsPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace coaxial
