// Deeper DRAM-controller properties: bank-level parallelism, read/write
// turnaround, refresh cadence, and per-completion latency decomposition.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "dram/address_map.hpp"
#include "dram/controller.hpp"

namespace coaxial::dram {
namespace {

/// Find `n` local lines that map to pairwise-distinct banks.
std::vector<Addr> distinct_bank_lines(const Geometry& g, std::size_t n) {
  AddressMap amap(g);
  std::vector<Addr> lines;
  std::set<std::uint32_t> banks;
  for (Addr cand = 0; lines.size() < n; cand += g.columns) {
    const std::uint32_t b = amap.map(cand).flat_bank(g);
    if (banks.insert(b).second) lines.push_back(cand);
  }
  return lines;
}

Cycle drain_all(Controller& c, std::size_t expected, Cycle start, Cycle deadline) {
  std::size_t done = 0;
  Cycle last = 0;
  for (Cycle now = start; now < start + deadline; ++now) {
    c.tick(now);
    for (const auto& comp : c.completions()) {
      ++done;
      last = std::max(last, comp.done);
    }
    c.completions().clear();
    if (done >= expected) return last;
  }
  return kNoCycle;
}

TEST(DramProperties, BankLevelParallelismOverlapsActivations) {
  // Eight row-miss reads to different banks must finish far faster than
  // eight serialized ones (8 * tRC would be ~930 cycles).
  Timing t;
  Geometry g;
  Controller c(t, g);
  const auto lines = distinct_bank_lines(g, 8);
  for (std::size_t i = 0; i < lines.size(); ++i) c.enqueue(lines[i], false, 1, i);
  const Cycle last = drain_all(c, 8, 1, 4000);
  ASSERT_NE(last, kNoCycle);
  // Lower bound: bus serialisation of 8 lines; upper: well under serial tRC.
  EXPECT_GE(last - 1, 8 * t.bl);
  EXPECT_LT(last - 1, 4 * t.rc());
}

TEST(DramProperties, SameBankConflictsSerializeOnTrc) {
  Timing t;
  Geometry g;
  AddressMap amap(g);
  // Four different rows of one bank.
  std::vector<Addr> lines;
  const std::uint32_t bank0 = amap.map(0).flat_bank(g);
  for (Addr cand = 0; lines.size() < 4; cand += g.columns) {
    const Coord coord = amap.map(cand);
    if (coord.flat_bank(g) == bank0) lines.push_back(cand);
  }
  Controller c(t, g);
  for (std::size_t i = 0; i < lines.size(); ++i) c.enqueue(lines[i], false, 1, i);
  const Cycle last = drain_all(c, 4, 1, 10000);
  ASSERT_NE(last, kNoCycle);
  EXPECT_GE(last - 1, 3 * t.rc());  // Each successive row pays the full cycle.
}

TEST(DramProperties, MixedReadWriteSlowerThanReadOnly) {
  auto run = [](double write_share) {
    Timing t;
    Controller c(t, Geometry{});
    Rng rng(3);
    for (Cycle now = 1; now < 120000; ++now) {
      if (rng.chance(0.08) && c.can_accept(rng.chance(write_share))) {
        c.enqueue(rng.next_below(1 << 20), rng.chance(write_share), now, now);
      }
      c.tick(now);
      c.completions().clear();
    }
    return c.read_latency_hist().mean();
  };
  // Bus turnarounds (tWTR/tRTW) make mixed traffic slower for reads.
  EXPECT_GT(run(0.35), run(0.0) * 1.02);
}

TEST(DramProperties, RefreshCadenceMatchesTrefi) {
  Timing t;
  Controller c(t, Geometry{});
  Rng rng(5);
  const Cycle horizon = t.refi * 20;
  for (Cycle now = 1; now < horizon; ++now) {
    if (rng.chance(0.02) && c.can_accept(false)) {
      c.enqueue(rng.next_below(1 << 20), false, now, now);
    }
    c.tick(now);
    c.completions().clear();
  }
  EXPECT_NEAR(static_cast<double>(c.stats().refreshes), 19.0, 2.0);
}

TEST(DramProperties, CompletionBreakdownSumsToLatency) {
  Timing t;
  Controller c(t, Geometry{});
  Rng rng(7);
  std::map<std::uint64_t, Cycle> arrivals;
  std::uint64_t token = 1;
  std::uint64_t checked = 0;
  for (Cycle now = 1; now < 200000 && checked < 500; ++now) {
    if (rng.chance(0.06) && c.can_accept(false)) {
      arrivals[token] = now;
      c.enqueue(rng.next_below(1 << 20), false, now, token++);
    }
    c.tick(now);
    for (const auto& comp : c.completions()) {
      const Cycle total = comp.done - arrivals.at(comp.token);
      EXPECT_EQ(comp.service + comp.queue_delay, total) << "token " << comp.token;
      EXPECT_GE(comp.service, t.cl + t.bl);
      ++checked;
    }
    c.completions().clear();
  }
  EXPECT_GE(checked, 500u);
}

TEST(DramProperties, ServiceComponentReflectsRowState) {
  Timing t;
  Controller c(t, Geometry{});
  // First access: row miss (ACT needed).
  c.enqueue(0, false, 1, 1);
  Cycle miss_service = 0, hit_service = 0;
  for (Cycle now = 1; now < 2000; ++now) {
    c.tick(now);
    for (const auto& comp : c.completions()) {
      if (comp.token == 1) {
        miss_service = comp.service;
        c.enqueue(1, false, now, 2);  // Same row: hit.
      }
      if (comp.token == 2) hit_service = comp.service;
    }
    c.completions().clear();
    if (hit_service) break;
  }
  EXPECT_EQ(miss_service, t.rcd + t.cl + t.bl);
  EXPECT_EQ(hit_service, t.cl + t.bl);
}

TEST(DramProperties, NoPermutationKeepsStridedStreamsInOneBank) {
  Geometry g;
  g.permutation_interleave = false;
  AddressMap amap(g, g.permutation_interleave);
  const Addr row_stride = static_cast<Addr>(g.columns) * g.banks();
  std::set<std::uint32_t> banks;
  for (Addr i = 0; i < 64; ++i) banks.insert(amap.map(i * row_stride).flat_bank(g));
  EXPECT_EQ(banks.size(), 1u);  // All rows of the same bank: worst case.
}

TEST(DramProperties, IdlePrechargeDisabledKeepsRowsOpen) {
  Timing t;
  t.idle_precharge = 0;
  Controller c(t, Geometry{});
  c.enqueue(0, false, 1, 1);
  for (Cycle now = 1; now < 5000; ++now) {
    c.tick(now);
    c.completions().clear();
  }
  // Long idle gap, then same row again: still a hit (row never closed).
  c.enqueue(1, false, 5000, 2);
  Cycle done = 0;
  for (Cycle now = 5000; now < 6000 && done == 0; ++now) {
    c.tick(now);
    for (const auto& comp : c.completions()) {
      if (comp.token == 2) {
        EXPECT_EQ(comp.service, t.cl + t.bl);  // Row hit.
        done = comp.done;
      }
    }
    c.completions().clear();
  }
  ASSERT_NE(done, 0u);
}

TEST(DramProperties, IdlePrechargeClosesIdleRows) {
  Timing t;  // idle_precharge = 150 by default.
  Controller c(t, Geometry{});
  c.enqueue(0, false, 1, 1);
  for (Cycle now = 1; now < 5000; ++now) {
    c.tick(now);
    c.completions().clear();
  }
  c.enqueue(1, false, 5000, 2);
  bool checked = false;
  for (Cycle now = 5000; now < 6000 && !checked; ++now) {
    c.tick(now);
    for (const auto& comp : c.completions()) {
      if (comp.token == 2) {
        EXPECT_EQ(comp.service, t.rcd + t.cl + t.bl);  // Row was closed.
        checked = true;
      }
    }
    c.completions().clear();
  }
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace coaxial::dram
// -- Multi-rank (2DPC) support ----------------------------------------------

namespace coaxial::dram {
namespace {

TEST(DramRanks, TwoRankGeometryDoublesBanksAndMapsInRange) {
  Geometry g;
  g.ranks = 2;
  EXPECT_EQ(g.total_banks(), 64u);
  AddressMap amap(g);
  bool saw_rank1 = false;
  for (Addr line = 0; line < 1 << 20; line += 4097) {
    const Coord c = amap.map(line);
    EXPECT_LT(c.rank, 2u);
    EXPECT_LT(c.flat_bank_all(g), g.total_banks());
    if (c.rank == 1) saw_rank1 = true;
  }
  EXPECT_TRUE(saw_rank1);
}

TEST(DramRanks, SingleRankNeverMapsToRankOne) {
  Geometry g;  // ranks = 1.
  AddressMap amap(g);
  for (Addr line = 0; line < 100000; line += 991) {
    EXPECT_EQ(amap.map(line).rank, 0u);
  }
}

TEST(DramRanks, RankAlternationPaysSwitchPenalty) {
  // Two row-hit streams: one within a single rank, one alternating ranks
  // every access. The alternating stream must sustain lower throughput
  // because of the tCS bus turnaround (the 2DPC bandwidth cost, SIV-E).
  Geometry g;
  g.ranks = 2;
  AddressMap amap(g);

  // Find one line in each rank, same-row-hit streams (consecutive columns).
  Addr rank0_base = 0, rank1_base = 0;
  bool found1 = false;
  for (Addr cand = 0; !found1; cand += g.columns) {
    if (amap.map(cand).rank == 1) {
      rank1_base = cand;
      found1 = true;
    }
  }

  auto throughput = [&](bool alternate) {
    Timing t;
    Controller c(t, g);
    Addr col = 0;
    std::uint64_t sent = 0;
    const Cycle horizon = 60000;
    for (Cycle now = 1; now < horizon; ++now) {
      if (c.can_accept(false)) {
        const Addr base = (alternate && (sent % 2)) ? rank1_base : rank0_base;
        c.enqueue(base + (col++ % g.columns), false, now, sent++);
      }
      c.tick(now);
      c.completions().clear();
    }
    return static_cast<double>(c.stats().reads_done) / horizon;
  };

  const double same_rank = throughput(false);
  const double alternating = throughput(true);
  EXPECT_LT(alternating, same_rank * 0.95);
  EXPECT_GT(alternating, same_rank * 0.5);  // Penalty is bounded (tCS, not tRC).
}

TEST(DramRanks, TwoRankRandomTrafficStillCompletes) {
  Geometry g;
  g.ranks = 2;
  Controller c(Timing{}, g);
  Rng rng(11);
  std::uint64_t completed = 0;
  for (Cycle now = 1; now < 200000 && completed < 1000; ++now) {
    if (c.can_accept(false)) c.enqueue(rng.next_u64() >> 20, false, now, now);
    c.tick(now);
    completed += c.completions().size();
    c.completions().clear();
  }
  EXPECT_GE(completed, 1000u);
}

}  // namespace
}  // namespace coaxial::dram
