// Scheduler unit tests plus the event-driven-vs-forced equivalence
// property: a System run with idle-cycle skipping must match a run that
// ticks every component every cycle, metric for metric, byte for byte.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "obs/stats_json.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace coaxial::sim {
namespace {

/// Records the order its wake-ups fire in a shared log.
struct Recorder final : Schedulable {
  std::vector<int>* log = nullptr;
  int id = 0;
  Recorder() = default;
  Recorder(std::vector<int>* l, int i) : log(l), id(i) {}
  void on_wake(Cycle /*now*/) override { log->push_back(id); }
};

TEST(Scheduler, DispatchesInCycleOrder) {
  Scheduler sched;
  std::vector<int> log;
  Recorder a{&log, 1}, b{&log, 2}, c{&log, 3};
  sched.schedule(30, 0, &c);
  sched.schedule(10, 0, &a);
  sched.schedule(20, 0, &b);
  EXPECT_EQ(sched.next_cycle(), 10u);
  sched.dispatch_due(10);
  sched.dispatch_due(30);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, SameCycleTiesDispatchInPriorityThenRegistrationOrder) {
  Scheduler sched;
  std::vector<int> log;
  Recorder a{&log, 1}, b{&log, 2}, c{&log, 3}, d{&log, 4};
  // Same cycle throughout: priority first, then registration order.
  sched.schedule(5, 2, &c);
  sched.schedule(5, 1, &a);
  sched.schedule(5, 2, &d);  // Registered after c at the same priority.
  sched.schedule(5, 1, &b);
  EXPECT_EQ(sched.dispatch_due(5), 4u);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Scheduler, RegistrationOrderIsStableAcrossManyTies) {
  Scheduler sched;
  std::vector<int> log;
  std::vector<Recorder> recs(64);
  for (int i = 0; i < 64; ++i) {
    recs[i].log = &log;
    recs[i].id = i;
    sched.schedule(7, 0, &recs[i]);
  }
  sched.dispatch_due(7);
  ASSERT_EQ(log.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(log[i], i);
}

TEST(Scheduler, CancelSuppressesDispatchAndReschedulingWorks) {
  Scheduler sched;
  std::vector<int> log;
  Recorder a{&log, 1}, b{&log, 2};
  const Scheduler::Token ta = sched.schedule(10, 0, &a);
  sched.schedule(20, 0, &b);
  sched.cancel(ta);
  EXPECT_EQ(sched.next_cycle(), 20u);  // Cancelled entry no longer surfaces.
  // Reschedule a at a new cycle: only the new registration fires.
  sched.schedule(15, 0, &a);
  sched.dispatch_due(25);
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.cancelled(), 1u);
  EXPECT_EQ(sched.dispatched(), 2u);
  EXPECT_EQ(sched.scheduled(), 3u);
}

TEST(Scheduler, CancelAllLeavesSchedulerEmpty) {
  Scheduler sched;
  std::vector<int> log;
  Recorder a{&log, 1};
  const Scheduler::Token t1 = sched.schedule(5, 0, &a);
  const Scheduler::Token t2 = sched.schedule(9, 1, &a);
  sched.cancel(t1);
  sched.cancel(t2);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.next_cycle(), kNoCycle);
  EXPECT_EQ(sched.dispatch_due(100), 0u);
  EXPECT_TRUE(log.empty());
}

/// Re-registers itself a fixed number of times at the same cycle.
struct Chainer final : Schedulable {
  Scheduler* sched = nullptr;
  int remaining = 0;
  int fired = 0;
  void on_wake(Cycle now) override {
    ++fired;
    if (remaining-- > 0) sched->schedule(now, 5, this);
  }
};

TEST(Scheduler, DispatchDueRunsSameCycleChains) {
  Scheduler sched;
  Chainer chain;
  chain.sched = &sched;
  chain.remaining = 3;
  sched.schedule(4, 5, &chain);
  // One call dispatches the original entry plus the three same-cycle
  // re-registrations made by the handler itself.
  EXPECT_EQ(sched.dispatch_due(4), 4u);
  EXPECT_EQ(chain.fired, 4);
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, NextCycleSkipsOverCancelledPrefix) {
  Scheduler sched;
  std::vector<int> log;
  Recorder a{&log, 1};
  std::vector<Scheduler::Token> tokens;
  for (Cycle t = 1; t <= 5; ++t) tokens.push_back(sched.schedule(t, 0, &a));
  for (int i = 0; i < 4; ++i) sched.cancel(tokens[i]);
  EXPECT_EQ(sched.next_cycle(), 5u);
  EXPECT_EQ(sched.live(), 1u);
}

// ---------------------------------------------------------------------------
// Property: event-driven == forced tick-every-cycle, cycle for cycle.
// ---------------------------------------------------------------------------

std::string run_document(const sys::SystemConfig& cfg, const std::string& wl,
                         bool forced, Cycle* end_cycle,
                         std::uint64_t* cycles_skipped) {
  std::vector<workload::WorkloadParams> per_core(cfg.uarch.cores,
                                                 workload::find_workload(wl));
  System s(cfg, per_core, /*seed=*/7);
  if (forced) s.set_tick_every_cycle(true);
  s.run(/*warmup_instr=*/500, /*measure_instr=*/2000);
  *end_cycle = s.now();
  *cycles_skipped = s.stats().sched_cycles_skipped;
  return obs::json::snapshot_to_json(s.metrics().snapshot());
}

void expect_modes_equivalent(const sys::SystemConfig& cfg, const std::string& wl) {
  Cycle end_event = 0, end_forced = 0;
  std::uint64_t skipped_event = 0, skipped_forced = 0;
  const std::string doc_event = run_document(cfg, wl, false, &end_event, &skipped_event);
  const std::string doc_forced = run_document(cfg, wl, true, &end_forced, &skipped_forced);
  EXPECT_EQ(end_event, end_forced) << cfg.name << "/" << wl;
  EXPECT_EQ(doc_event, doc_forced) << cfg.name << "/" << wl;
  EXPECT_EQ(skipped_forced, 0u);
}

TEST(SchedulerEquivalence, DirectDdrMatchesForcedTicking) {
  expect_modes_equivalent(sys::baseline_ddr(), "canneal");
}

TEST(SchedulerEquivalence, CxlMatchesForcedTicking) {
  expect_modes_equivalent(sys::coaxial_4x(), "lbm");
}

TEST(SchedulerEquivalence, CxlAsymMatchesForcedTicking) {
  expect_modes_equivalent(sys::coaxial_asym(), "stream-copy");
}

TEST(SchedulerEquivalence, IdleHeavyRunActuallySkipsCycles) {
  // A single active pointer-chasing core on the high-latency CXL config
  // spends most cycles fully blocked; the event loop must skip them.
  sys::SystemConfig cfg = sys::coaxial_4x();
  cfg.cxl_port_ns = 17.5;
  cfg.uarch.active_cores = 1;
  std::vector<workload::WorkloadParams> per_core(cfg.uarch.cores,
                                                 workload::find_workload("gcc"));
  System s(cfg, per_core, /*seed=*/7);
  s.run(/*warmup_instr=*/500, /*measure_instr=*/2000);
  EXPECT_GT(s.stats().sched_cycles_skipped, 0u);
  EXPECT_GT(s.stats().sched_skip_ratio(), 0.25);
  EXPECT_GT(s.stats().sched_events, 0u);
}

}  // namespace
}  // namespace coaxial::sim
