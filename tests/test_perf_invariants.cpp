// Equivalence tests for the host-performance fast paths.
//
// The controller's per-queue next-ready cache (see Controller::set_ready_cache)
// is a pure scan-skipping device: it may elide an FR-FCFS window rescan only
// when that scan provably cannot issue a command. These tests drive two
// controllers — cache on vs cache off — through identical fuzzed request
// streams (the same substrate as test_dram_invariants) in lockstep and demand
// bit-identical behaviour: the same wake bounds from every tick, the same
// completion stream (token, cycle, latency decomposition), the same command
// counts, and a silent shadow timing checker on both.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dram/controller.hpp"

namespace coaxial::dram {
namespace {

struct StreamParams {
  std::uint64_t seed = 1;
  double enqueue_prob = 0.5;   ///< Chance of an enqueue attempt per cycle.
  double write_frac = 0.3;
  Addr addr_space = 1 << 20;   ///< Local line addresses drawn from [0, N).
  Cycle cycles = 30000;
  bool sparse = false;  ///< Honour tick()'s wake bound (event-driven style).
};

/// Drives `fast` (ready cache on) and `slow` (ready cache off) with one
/// shared random stream. Every divergence is reported at the cycle it first
/// appears, which localises a broken cache-invalidation edge immediately.
void drive_pair(Controller& fast, Controller& slow, const StreamParams& p) {
  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<Addr> addr(0, p.addr_space - 1);
  std::uint64_t token = 0;
  Cycle wake = 0;  // Shared: asserted equal every tick.
  // Start at cycle 1: cycle 0 is indistinguishable from "never" in some of
  // the controller's next_* state.
  for (Cycle now = 1; now <= p.cycles; ++now) {
    bool enqueued = false;
    if (coin(rng) < p.enqueue_prob) {
      const bool is_write = coin(rng) < p.write_frac;
      const Addr line = addr(rng);
      ASSERT_EQ(fast.can_accept(is_write), slow.can_accept(is_write))
          << "cycle " << now;
      if (fast.can_accept(is_write)) {
        ASSERT_TRUE(fast.enqueue(line, is_write, now, token));
        ASSERT_TRUE(slow.enqueue(line, is_write, now, token));
        ++token;
        enqueued = true;
      }
    }
    // In sparse mode only tick when the controllers said something could
    // happen — the contract the event-driven System loop relies on. Both
    // controllers must publish the same bound, so one `wake` suffices.
    if (p.sparse && !enqueued && now < wake && !fast.idle()) continue;
    const Cycle wf = fast.tick(now);
    const Cycle ws = slow.tick(now);
    ASSERT_EQ(wf, ws) << "wake bound diverged at cycle " << now;
    wake = wf;
    auto& cf = fast.completions();
    auto& cs = slow.completions();
    ASSERT_EQ(cf.size(), cs.size()) << "completion count diverged at " << now;
    for (std::size_t i = 0; i < cf.size(); ++i) {
      ASSERT_EQ(cf[i].token, cs[i].token) << "cycle " << now;
      ASSERT_EQ(cf[i].done, cs[i].done) << "token " << cf[i].token;
      ASSERT_EQ(cf[i].service, cs[i].service) << "token " << cf[i].token;
      ASSERT_EQ(cf[i].queue_delay, cs[i].queue_delay) << "token " << cf[i].token;
    }
    cf.clear();
    cs.clear();
  }
}

void expect_same_stats(const Controller& fast, const Controller& slow) {
  const ControllerStats& a = fast.stats();
  const ControllerStats& b = slow.stats();
  EXPECT_EQ(a.reads_done, b.reads_done);
  EXPECT_EQ(a.writes_done, b.writes_done);
  EXPECT_EQ(a.reads_forwarded, b.reads_forwarded);
  EXPECT_EQ(a.row_hits, b.row_hits);
  EXPECT_EQ(a.row_misses, b.row_misses);
  EXPECT_EQ(a.row_conflicts, b.row_conflicts);
  EXPECT_EQ(a.activates, b.activates);
  EXPECT_EQ(a.precharges, b.precharges);
  EXPECT_EQ(a.refreshes, b.refreshes);
  EXPECT_EQ(a.data_bus_busy_cycles, b.data_bus_busy_cycles);
  EXPECT_DOUBLE_EQ(a.read_queue_delay_sum, b.read_queue_delay_sum);
  EXPECT_DOUBLE_EQ(a.read_service_sum, b.read_service_sum);
  EXPECT_EQ(fast.timing_checker().violations(), 0u);
  EXPECT_EQ(slow.timing_checker().violations(), 0u);
}

void run_case(const StreamParams& p) {
  const Timing timing;      // DDR5-4800 defaults.
  const Geometry geometry;  // 8 groups x 4 banks.
  Controller fast(timing, geometry);
  Controller slow(timing, geometry);
  fast.set_ready_cache(true);  // Explicit: immune to COAXIAL_NO_READY_CACHE.
  slow.set_ready_cache(false);
  drive_pair(fast, slow, p);
  expect_same_stats(fast, slow);
  EXPECT_GT(fast.stats().reads_done, 0u) << "stream produced no reads";
}

TEST(PerfInvariants, ReadyCacheMatchesRescanOnRandomStreams) {
  for (std::uint64_t seed : {1ull, 42ull, 1337ull}) {
    StreamParams p;
    p.seed = seed;
    run_case(p);
  }
}

TEST(PerfInvariants, ReadyCacheMatchesRescanUnderHighLoad) {
  StreamParams p;
  p.seed = 7;
  p.enqueue_prob = 0.95;   // Saturated queues: write drain + refresh pressure.
  p.addr_space = 1 << 12;  // Small footprint: row hits, conflicts, forwarding.
  run_case(p);
}

TEST(PerfInvariants, ReadyCacheMatchesRescanWriteHeavy) {
  StreamParams p;
  p.seed = 99;
  p.write_frac = 0.8;  // Exercises drain-mode transitions and forwarding.
  run_case(p);
}

TEST(PerfInvariants, ReadyCacheMatchesRescanSparseTicks) {
  // Event-driven style: skip cycles the wake bound rules out, as System
  // does. The cache is populated by compute_wake on exactly these failed
  // scans, so this is the path production traffic takes.
  for (std::uint64_t seed : {3ull, 11ull}) {
    StreamParams p;
    p.seed = seed;
    p.sparse = true;
    run_case(p);
  }
}

TEST(PerfInvariants, ReadyCacheMatchesRescanLightTraffic) {
  // Long idle gaps: idle-precharge and refresh are the only activity, the
  // regime where a stale "nothing ready" cache entry would stall forever.
  StreamParams p;
  p.seed = 21;
  p.enqueue_prob = 0.02;
  p.cycles = 60000;
  run_case(p);
}

}  // namespace
}  // namespace coaxial::dram
