#include "noc/mesh.hpp"

#include <gtest/gtest.h>

#include <map>

namespace coaxial::noc {
namespace {

TEST(Mesh, TileCount) {
  Mesh m(4, 3, 3);
  EXPECT_EQ(m.tiles(), 12u);
}

TEST(Mesh, SelfDistanceIsZero) {
  Mesh m;
  for (std::uint32_t t = 0; t < m.tiles(); ++t) {
    EXPECT_EQ(m.hops(t, t), 0u);
    EXPECT_EQ(m.latency(t, t), 0u);
  }
}

TEST(Mesh, HopsAreSymmetric) {
  Mesh m;
  for (std::uint32_t a = 0; a < m.tiles(); ++a) {
    for (std::uint32_t b = 0; b < m.tiles(); ++b) {
      EXPECT_EQ(m.hops(a, b), m.hops(b, a));
    }
  }
}

TEST(Mesh, TriangleInequality) {
  Mesh m;
  for (std::uint32_t a = 0; a < m.tiles(); ++a) {
    for (std::uint32_t b = 0; b < m.tiles(); ++b) {
      for (std::uint32_t c = 0; c < m.tiles(); ++c) {
        EXPECT_LE(m.hops(a, c), m.hops(a, b) + m.hops(b, c));
      }
    }
  }
}

TEST(Mesh, KnownManhattanDistances) {
  Mesh m(4, 3, 3);
  // Tile layout: tile = y*4 + x.
  EXPECT_EQ(m.hops(0, 3), 3u);    // (0,0) -> (3,0).
  EXPECT_EQ(m.hops(0, 11), 5u);   // (0,0) -> (3,2).
  EXPECT_EQ(m.hops(5, 6), 1u);    // (1,1) -> (2,1).
  EXPECT_EQ(m.latency(0, 11), 15u);  // 5 hops x 3 cycles.
}

TEST(Mesh, MaxDiameter) {
  Mesh m(4, 3, 3);
  std::uint32_t max_hops = 0;
  for (std::uint32_t a = 0; a < m.tiles(); ++a) {
    for (std::uint32_t b = 0; b < m.tiles(); ++b) {
      max_hops = std::max(max_hops, m.hops(a, b));
    }
  }
  EXPECT_EQ(max_hops, 5u);  // (cols-1) + (rows-1).
}

TEST(Mesh, HomeTileInRange) {
  Mesh m;
  for (Addr line = 0; line < 10000; ++line) {
    EXPECT_LT(m.home_tile(line), m.tiles());
  }
}

TEST(Mesh, HomeTileDistributionIsBalanced) {
  Mesh m;
  std::map<std::uint32_t, int> counts;
  const int n = 120000;
  for (Addr line = 0; line < n; ++line) ++counts[m.home_tile(line)];
  for (const auto& [tile, count] : counts) {
    EXPECT_NEAR(count, n / 12, n / 12 * 0.1) << "tile " << tile;
  }
}

TEST(Mesh, SequentialLinesSpreadAcrossSlices) {
  // Strided streams must not all land on one slice.
  Mesh m;
  std::map<std::uint32_t, int> counts;
  for (Addr line = 1000; line < 1128; ++line) ++counts[m.home_tile(line)];
  EXPECT_GT(counts.size(), 6u);
}

TEST(Mesh, MemoryTilesAreOnPerimeter) {
  Mesh m(4, 3, 3);
  for (std::uint32_t ports = 1; ports <= 8; ++ports) {
    for (std::uint32_t p = 0; p < ports; ++p) {
      const std::uint32_t t = m.memory_tile(p, ports);
      const std::uint32_t x = t % 4, y = t / 4;
      EXPECT_TRUE(x == 0 || x == 3 || y == 0 || y == 2) << "tile " << t;
    }
  }
}

TEST(Mesh, MemoryTilesSpreadForMultiplePorts) {
  Mesh m(4, 3, 3);
  std::map<std::uint32_t, int> used;
  for (std::uint32_t p = 0; p < 4; ++p) ++used[m.memory_tile(p, 4)];
  EXPECT_EQ(used.size(), 4u);  // Four distinct tiles for four ports.
}

TEST(Mesh, ZeroPortsHandled) {
  Mesh m;
  EXPECT_LT(m.memory_tile(0, 0), m.tiles());
}

}  // namespace
}  // namespace coaxial::noc
