// RAS layer: deterministic fault injection, link-level retry/replay, poison
// propagation, watchdog reissue, and graceful degradation (DESIGN.md §7).
//
// The load-bearing properties:
//   * a fixed seed + active fault plan is byte-identical across runs and
//     across the event-driven vs forced-lockstep scheduler modes;
//   * a disabled plan is inert — the stats document matches a build that
//     never heard of RAS (golden baselines stay byte-for-byte unchanged);
//   * retry exhaustion delivers a message poisoned exactly once, and the
//     poison propagates end-to-end to a core machine check;
//   * the timeout watchdog never duplicates or drops a request (duplicates
//     die at device ingress; DRAM services each read exactly once).
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "coaxial/memory_system.hpp"
#include "link/cxl_link.hpp"
#include "link/lane_config.hpp"
#include "link/serial_pipe.hpp"
#include "obs/stats_json.hpp"
#include "ras/fault_injector.hpp"
#include "ras/fault_plan.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace coaxial {
namespace {

// ---------------------------------------------------------------- validation

TEST(RasValidation, FaultPlanRejectsDegenerateValues) {
  ras::FaultPlan p;
  p.bit_error_rate = 2.0;  // Out of [0, 1].
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = {};
  p.bit_error_rate = 1e-6;
  p.retry_budget = 0;  // CRC faults need a replay budget.
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = {};
  p.burst_period_cycles = 100;
  p.burst_len_cycles = 0;  // Window must be non-empty ...
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.burst_len_cycles = 100;  // ... and strictly inside the period.
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = {};
  p.stall_period_cycles = 50;
  p.stall_len_cycles = 50;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = {};
  p.timeout_cycles = 1000;
  p.max_reissues = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.max_reissues = 2;
  p.backoff_cap_cycles = 500;  // Cap below the base timeout.
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = {};
  p.retry_latency_ns = std::nan("");
  EXPECT_THROW(p.validate(), std::invalid_argument);

  EXPECT_NO_THROW(ras::FaultPlan{}.validate());
  EXPECT_NO_THROW(sys::ras_crc_noise().validate());
  EXPECT_NO_THROW(sys::ras_flaky_device().validate());
  EXPECT_NO_THROW(sys::ras_downtrain().validate());
  EXPECT_NO_THROW(sys::ras_stress().validate());
}

TEST(RasValidation, LaneConfigRejectsBadGoodput) {
  link::LaneConfig bad = link::LaneConfig::x8();
  bad.rx_goodput_gbps = std::nan("");
  EXPECT_THROW(link::CxlLink{bad}, std::invalid_argument);
  bad = link::LaneConfig::x8();
  bad.tx_goodput_gbps = -1.0;
  EXPECT_THROW(link::CxlLink{bad}, std::invalid_argument);
  bad = link::LaneConfig::x8();
  bad.port_latency_ns = -0.5;
  EXPECT_THROW(link::CxlLink{bad}, std::invalid_argument);
  EXPECT_THROW(link::CxlLink(link::LaneConfig::x8(), /*max_backlog_cycles=*/0),
               std::invalid_argument);
}

TEST(RasValidation, FabricConfigRejectsBadSwitchParameters) {
  fabric::FabricConfig fab = fabric::FabricConfig::star(8, 4);
  fab.switch_queue_depth = 0;
  EXPECT_THROW(mem::CxlMemory(fab, 4, 1, link::LaneConfig::x8()),
               std::invalid_argument);
  fab = fabric::FabricConfig::star(8, 4);
  fab.switch_max_backlog_cycles = 0;
  EXPECT_THROW(mem::CxlMemory(fab, 4, 1, link::LaneConfig::x8()),
               std::invalid_argument);
  fab = fabric::FabricConfig::star(8, 4);
  fab.switch_port_ns = std::nan("");
  EXPECT_THROW(mem::CxlMemory(fab, 4, 1, link::LaneConfig::x8()),
               std::invalid_argument);
}

// ------------------------------------------------------- SerialPipe retries

TEST(SerialPipeRas, RetryExhaustionPoisonsExactlyOnce) {
  // BER = 1 corrupts every transmission: the pipe burns the whole replay
  // budget and delivers the message poisoned, with exact occupancy math.
  ras::FaultPlan plan;
  plan.bit_error_rate = 1.0;
  plan.retry_budget = 3;
  plan.retry_latency_ns = 100.0;

  link::SerialPipe pipe(/*goodput_gbps=*/32.0, /*fixed_latency_cycles=*/10,
                        /*max_backlog_cycles=*/10'000, "test/pipe");
  pipe.arm_faults(plan);

  const Cycle ser = serialization_cycles(32.0, kLineBytes);
  const Cycle premium = plan.retry_premium_cycles();
  const link::SendResult r = pipe.send(kLineBytes, /*now=*/0);
  EXPECT_TRUE(r.poisoned);
  // 1 original + 3 replays serialised, 3 retry premiums, then fixed latency.
  EXPECT_EQ(r.at, 4 * ser + 3 * premium + 10);

  ASSERT_NE(pipe.ras(), nullptr);
  EXPECT_EQ(pipe.ras()->crc_errors, 4u);  // All four transmissions corrupted.
  EXPECT_EQ(pipe.ras()->replays, 3u);
  EXPECT_EQ(pipe.ras()->poisons_injected, 1u);
}

TEST(SerialPipeRas, CleanPlanAndUnarmedPipeAgree) {
  link::SerialPipe plain(32.0, 10, 10'000, "a");
  link::SerialPipe armed(32.0, 10, 10'000, "b");
  ras::FaultPlan inert;  // enabled() == false: arm_faults is a no-op.
  armed.arm_faults(inert);
  for (Cycle now : {0, 7, 100}) {
    const link::SendResult pr = plain.send(kLineBytes, now);
    const link::SendResult ar = armed.send(kLineBytes, now);
    EXPECT_EQ(pr.at, ar.at);
    EXPECT_FALSE(ar.poisoned);
  }
  EXPECT_EQ(armed.ras(), nullptr);
}

TEST(SerialPipeRas, DowntrainHalvesGoodputFromConfiguredCycle) {
  ras::FaultPlan plan;
  plan.downtrain_at_cycle = 1'000;
  link::SerialPipe pipe(26.0, 10, 100'000, "downtrain/pipe");
  pipe.arm_faults(plan);

  const Cycle ser_full = serialization_cycles(26.0, kLineBytes);
  const Cycle ser_half = serialization_cycles(13.0, kLineBytes);
  EXPECT_FALSE(pipe.degraded(999));
  EXPECT_EQ(pipe.send(kLineBytes, 0).at, ser_full + 10);
  EXPECT_TRUE(pipe.degraded(1'000));
  const Cycle before = pipe.backlog(2'000);
  EXPECT_EQ(pipe.send(kLineBytes, 2'000).at, 2'000 + before + ser_half + 10);
  ASSERT_NE(pipe.ras(), nullptr);
  EXPECT_EQ(pipe.ras()->degraded_cycles, ser_half);
}

TEST(SerialPipeRas, DrawStreamsAreKeyedBySegmentName) {
  // Same plan, different names => independent fault streams; same name =>
  // identical streams regardless of construction order.
  ras::FaultPlan plan;
  plan.bit_error_rate = 1e-3;
  plan.retry_budget = 8;
  ras::SegmentFaults a(plan, "fabric/sw00/down");
  ras::SegmentFaults b(plan, "fabric/sw00/down");
  ras::SegmentFaults c(plan, "fabric/sw00/up");
  bool diverged = false;
  for (int i = 0; i < 512; ++i) {
    const bool av = a.corrupt(kLineBytes, 0);
    EXPECT_EQ(av, b.corrupt(kLineBytes, 0));
    diverged = diverged || (av != c.corrupt(kLineBytes, 0));
  }
  EXPECT_TRUE(diverged);
}

TEST(SerialPipeRas, PipeNamesFollowOwningSegment) {
  const link::CxlLink link(link::LaneConfig::x8(), 512, {}, "cxl/link03");
  EXPECT_EQ(link.tx_pipe().name(), "cxl/link03/tx");
  EXPECT_EQ(link.rx_pipe().name(), "cxl/link03/rx");
  const link::CxlLink anon(link::LaneConfig::x8());
  EXPECT_EQ(anon.tx_pipe().name(), "cxl-link/tx");
}

// ------------------------------------------------ CxlMemory poison delivery

TEST(CxlMemoryRas, ExhaustedRetriesPoisonEveryCompletionExactlyOnce) {
  // BER = 1 with a budget of 1: every request and response exhausts its
  // replays, so every read completion arrives poisoned — and only once.
  ras::FaultPlan plan;
  plan.bit_error_rate = 1.0;
  plan.retry_budget = 1;
  plan.retry_latency_ns = 10.0;
  mem::CxlMemory m(/*cxl_channels=*/1, /*ddr_per_device=*/1,
                   link::LaneConfig::x8(), {}, {}, {}, plan);

  constexpr int kReads = 20;
  std::map<std::uint64_t, int> seen;
  int issued = 0;
  Cycle now = 0;
  while (static_cast<int>(seen.size()) < kReads) {
    ASSERT_LT(now, 10'000'000u) << "reads starved";
    if (issued < kReads && m.can_accept(issued, false, now)) {
      m.access(issued, false, now, static_cast<std::uint64_t>(issued));
      ++issued;
    }
    m.tick(now);
    for (const auto& c : m.completions()) {
      EXPECT_TRUE(c.poisoned) << "token " << c.token;
      ++seen[c.token];
    }
    m.completions().clear();
    ++now;
  }
  for (const auto& [token, count] : seen) {
    EXPECT_EQ(count, 1) << "token " << token;
  }
  // Exactly one poison injection per message: kReads requests on TX plus
  // kReads responses on RX.
  EXPECT_EQ(m.ras_counters().poisons_injected, 2u * kReads);
  EXPECT_EQ(m.snapshot().reads, static_cast<std::uint64_t>(kReads));
}

// --------------------------------------------- watchdog + stall conservation

TEST(CxlMemoryRas, WatchdogNeverDuplicatesOrDropsRequests) {
  // A flaky device with stall windows longer than the watchdog timeout:
  // deadlines expire, duplicates are reissued with backoff, and yet every
  // read completes exactly once and DRAM services each line exactly once.
  ras::FaultPlan plan;
  plan.stall_period_cycles = 4'000;
  plan.stall_len_cycles = 3'000;
  plan.timeout_cycles = 800;
  plan.max_reissues = 4;
  plan.backoff_cap_cycles = 8'000;
  mem::CxlMemory m(/*cxl_channels=*/1, /*ddr_per_device=*/1,
                   link::LaneConfig::x8(), {}, {}, {}, plan);

  constexpr int kReads = 40;
  std::map<std::uint64_t, int> seen;
  int issued = 0;
  Cycle now = 0;
  while (static_cast<int>(seen.size()) < kReads) {
    ASSERT_LT(now, 10'000'000u) << "reads starved";
    if (issued < kReads && m.can_accept(issued * 7, false, now)) {
      m.access(issued * 7, false, now, static_cast<std::uint64_t>(issued));
      ++issued;
    }
    m.tick(now);
    for (const auto& c : m.completions()) ++seen[c.token];
    m.completions().clear();
    ++now;
  }
  // Drain stragglers (in-flight duplicates die at device ingress).
  for (Cycle end = now + 50'000; now < end; ++now) {
    m.tick(now);
    m.completions().clear();
  }

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kReads));
  for (const auto& [token, count] : seen) {
    EXPECT_EQ(count, 1) << "token " << token;
  }
  const ras::RasCounters ras = m.ras_counters();
  EXPECT_GT(ras.timeouts, 0u);
  EXPECT_GT(ras.backoff_retries, 0u);
  // Every duplicate ever reissued was dropped at device ingress — DRAM
  // never saw one.
  EXPECT_EQ(ras.dup_drops, ras.backoff_retries);
  const dram::ControllerStats dram = m.aggregate_dram_stats();
  EXPECT_EQ(dram.reads_done + dram.reads_forwarded,
            static_cast<std::uint64_t>(kReads));
  EXPECT_EQ(m.snapshot().reads, static_cast<std::uint64_t>(kReads));
}

// -------------------------------------------------- System-level properties

std::string run_document(const sys::SystemConfig& cfg, const std::string& wl,
                         bool forced, obs::Snapshot* snap = nullptr) {
  std::vector<workload::WorkloadParams> per_core(cfg.uarch.cores,
                                                 workload::find_workload(wl));
  sim::System s(cfg, per_core, /*seed=*/7);
  if (forced) s.set_tick_every_cycle(true);
  s.run(/*warmup_instr=*/500, /*measure_instr=*/2000);
  if (snap != nullptr) *snap = s.metrics().snapshot();
  return obs::json::snapshot_to_json(s.metrics().snapshot());
}

TEST(SystemRas, SameSeedSamePlanIsByteIdentical) {
  sys::SystemConfig cfg = sys::coaxial_4x();
  cfg.fault_plan = sys::ras_stress();
  cfg.fault_plan.downtrain_at_cycle = 5'000;  // Inside this short run.
  obs::Snapshot snap;
  const std::string a = run_document(cfg, "mcf", /*forced=*/false, &snap);
  const std::string b = run_document(cfg, "mcf", /*forced=*/false);
  EXPECT_EQ(a, b);
  // The active plan registered the ras/* subtree and faults actually fired.
  EXPECT_GT(snap.at("ras/crc_errors").count, 0u);
  EXPECT_GT(snap.at("ras/replays").count, 0u);
  EXPECT_GT(snap.at("ras/timeouts").count, 0u);
  EXPECT_GT(snap.at("ras/degraded_cycles").count, 0u);
}

TEST(SystemRas, DisabledPlanIsInert) {
  // A plan with no fault class active must leave the stats document — tree
  // shape and every value — identical to a config that never set one.
  const sys::SystemConfig vanilla = sys::coaxial_4x();
  sys::SystemConfig with_inert = sys::coaxial_4x();
  with_inert.fault_plan.seed = 0xDEADBEEF;  // Seed alone enables nothing.
  const std::string a = run_document(vanilla, "lbm", /*forced=*/false);
  const std::string b = run_document(with_inert, "lbm", /*forced=*/false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("\"ras\""), std::string::npos);
}

TEST(SystemRas, EventDrivenMatchesForcedTickingUnderFaults) {
  // Direct topology with the full stress plan (CRC bursts + flaky device +
  // watchdog + mid-run down-train): idle-cycle skipping must be
  // byte-identical to the lockstep reference loop.
  sys::SystemConfig cfg = sys::coaxial_4x();
  cfg.fault_plan = sys::ras_stress();
  const std::string ev = run_document(cfg, "mcf", /*forced=*/false);
  const std::string forced = run_document(cfg, "mcf", /*forced=*/true);
  EXPECT_EQ(ev, forced);
}

TEST(SystemRas, SwitchedFabricEquivalenceUnderFaults) {
  sys::SystemConfig cfg = sys::coaxial_star(8, 4);
  cfg.fault_plan = sys::ras_stress();
  const std::string ev = run_document(cfg, "lbm", /*forced=*/false);
  const std::string forced = run_document(cfg, "lbm", /*forced=*/true);
  EXPECT_EQ(ev, forced);
}

TEST(SystemRas, PoisonConsumptionFiresMachineChecks) {
  // Aggressive corruption with a tiny replay budget: poisoned lines reach
  // the hierarchy and demand consumers record machine checks. The aggregate
  // equals the per-core counters.
  sys::SystemConfig cfg = sys::coaxial_4x();
  cfg.fault_plan.bit_error_rate = 0.01;
  cfg.fault_plan.retry_budget = 2;
  cfg.fault_plan.retry_latency_ns = 10.0;
  obs::Snapshot snap;
  run_document(cfg, "mcf", /*forced=*/false, &snap);
  EXPECT_GT(snap.at("ras/poisons_injected").count, 0u);
  EXPECT_GT(snap.at("ras/poisons_consumed").count, 0u);
  std::uint64_t per_core = 0;
  for (std::uint32_t c = 0; c < cfg.uarch.cores; ++c) {
    per_core += snap.at("ras/core/" + obs::idx(c) + "/machine_checks").count;
  }
  EXPECT_EQ(snap.at("ras/poisons_consumed").count, per_core);
}

}  // namespace
}  // namespace coaxial
