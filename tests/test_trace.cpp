#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "coaxial/configs.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace coaxial::workload {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "/tmp/coaxial_test_trace.bin";
};

TEST_F(TraceTest, RecordThenReplayRoundTrips) {
  Generator gen(find_workload("pagerank"), 0, 42);
  Generator reference(find_workload("pagerank"), 0, 42);
  ASSERT_EQ(record_trace(std::move(gen), 5000, path_), 5000u);

  TraceReplayer replay(path_);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    const Instr want = reference.next();
    const Instr got = replay.next();
    ASSERT_EQ(got.kind, want.kind) << "instr " << i;
    ASSERT_EQ(got.addr, want.addr) << "instr " << i;
    ASSERT_EQ(got.pc, want.pc) << "instr " << i;
    ASSERT_EQ(got.depends_on_prev_load, want.depends_on_prev_load) << "instr " << i;
  }
}

TEST_F(TraceTest, ReplayLoopsAtEnd) {
  Generator gen(find_workload("lbm"), 0, 1);
  record_trace(std::move(gen), 10, path_);
  TraceReplayer replay(path_);
  std::vector<Addr> first_pass, second_pass;
  for (int i = 0; i < 10; ++i) first_pass.push_back(replay.next().addr);
  for (int i = 0; i < 10; ++i) second_pass.push_back(replay.next().addr);
  EXPECT_EQ(first_pass, second_pass);
}

TEST_F(TraceTest, MissingFileIsNotOk) {
  TraceReplayer replay("/tmp/coaxial_no_such_trace.bin");
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.next().kind, InstrKind::kAlu);  // Safe default.
}

TEST_F(TraceTest, CorruptMagicRejected) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "NOTATRACEFILE-----------------------";
  }
  TraceReplayer replay(path_);
  EXPECT_FALSE(replay.ok());
}

TEST_F(TraceTest, TruncatedTraceRejected) {
  Generator gen(find_workload("lbm"), 0, 1);
  record_trace(std::move(gen), 100, path_);
  // Truncate mid-record.
  std::ifstream in(path_, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)), {});
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();
  TraceReplayer replay(path_);
  EXPECT_FALSE(replay.ok());
}

TEST_F(TraceTest, WriterToBadPathReportsFailure) {
  TraceWriter w("/nonexistent-dir/trace.bin");
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(record_trace(Generator(find_workload("lbm"), 0, 1), 10,
                         "/nonexistent-dir/trace.bin"),
            0u);
}

TEST_F(TraceTest, PcAndFlagsSurviveAllKinds) {
  {
    TraceWriter w(path_);
    Instr alu;
    alu.kind = InstrKind::kAlu;
    alu.pc = 0x1234;
    w.append(alu);
    Instr ld;
    ld.kind = InstrKind::kLoad;
    ld.addr = 0xdeadbeef00;
    ld.pc = 0x5678;
    ld.depends_on_prev_load = true;
    w.append(ld);
    Instr st;
    st.kind = InstrKind::kStore;
    st.addr = 0xfeed0000;
    st.pc = 0x9abc;
    w.append(st);
    w.finish();
  }
  TraceReplayer r(path_);
  ASSERT_EQ(r.size(), 3u);
  const Instr a = r.next();
  EXPECT_EQ(a.kind, InstrKind::kAlu);
  EXPECT_EQ(a.pc, 0x1234u);
  const Instr l = r.next();
  EXPECT_EQ(l.kind, InstrKind::kLoad);
  EXPECT_EQ(l.addr, 0xdeadbeef00u);
  EXPECT_TRUE(l.depends_on_prev_load);
  const Instr s = r.next();
  EXPECT_EQ(s.kind, InstrKind::kStore);
  EXPECT_EQ(s.addr, 0xfeed0000u);
}

TEST_F(TraceTest, TraceDrivenSystemRuns) {
  record_trace(Generator(find_workload("stream-copy"), 0, 42), 30000, path_);

  const auto cfg = sys::coaxial_4x();
  std::vector<std::unique_ptr<InstrSource>> sources;
  std::vector<double> ceilings;
  for (std::uint32_t c = 0; c < cfg.uarch.cores; ++c) {
    auto replay = std::make_unique<TraceReplayer>(path_);
    ASSERT_TRUE(replay->ok());
    sources.push_back(std::move(replay));
    ceilings.push_back(2.0);
  }
  sim::System system(cfg, std::move(sources), ceilings, 42);
  system.run(2000, 6000);
  EXPECT_GT(system.stats().ipc_per_core, 0.0);
  EXPECT_GT(system.stats().l2_miss_ops, 0u);
}

TEST_F(TraceTest, TraceAndGeneratorGiveSimilarIpc) {
  // A recorded trace replayed through the same system must behave like the
  // generator it was recorded from (identical instruction stream).
  record_trace(Generator(find_workload("bc"), 0, 9), 60000, path_);

  const auto cfg = sys::baseline_ddr();
  std::vector<std::unique_ptr<InstrSource>> sources;
  std::vector<double> ceilings;
  for (std::uint32_t c = 0; c < cfg.uarch.cores; ++c) {
    sources.push_back(std::make_unique<TraceReplayer>(path_));
    ceilings.push_back(find_workload("bc").max_ipc);
  }
  sim::System traced(cfg, std::move(sources), ceilings, 9);
  traced.run(2000, 6000);

  std::vector<workload::WorkloadParams> per_core(cfg.uarch.cores, find_workload("bc"));
  sim::System synthetic(cfg, per_core, 9);
  synthetic.run(2000, 6000);

  // Same workload shape; all cores replay core-0's stream and the trace
  // run skips pre-warm, so allow a loose tolerance.
  EXPECT_NEAR(traced.stats().ipc_per_core, synthetic.stats().ipc_per_core,
              0.5 * synthetic.stats().ipc_per_core);
}

}  // namespace
}  // namespace coaxial::workload
