// Edge-case and failure-injection tests: tiny structures, degenerate
// workloads, and starved resources must degrade gracefully (no deadlock,
// no starvation, sane stats), because these are exactly the states a
// mis-configured study would put the simulator in.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "coaxial/configs.hpp"
#include "dram/controller.hpp"
#include "link/cxl_link.hpp"
#include "noc/mesh.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace coaxial {
namespace {

TEST(EdgeDram, SingleEntryQueuesStillComplete) {
  dram::Controller c({}, {}, /*read*/ 1, /*write*/ 1);
  std::uint64_t completed = 0;
  std::uint64_t issued = 0;
  Rng rng(1);
  for (Cycle now = 1; now < 200000 && completed < 200; ++now) {
    if (c.can_accept(false)) {
      c.enqueue(rng.next_below(1 << 20), false, now, ++issued);
    }
    c.tick(now);
    completed += c.completions().size();
    c.completions().clear();
  }
  EXPECT_GE(completed, 200u);
}

TEST(EdgeDram, WriteOnlyTrafficDrains) {
  dram::Controller c({}, {});
  for (std::uint64_t i = 0; i < 64 && c.can_accept(true); ++i) {
    c.enqueue(i * 997, true, 1, 0);
  }
  for (Cycle now = 1; now < 100000 && c.write_queue_size() > 0; ++now) {
    c.tick(now);
    c.completions().clear();
  }
  EXPECT_EQ(c.write_queue_size(), 0u);
}

TEST(EdgeDram, RefreshStormDoesNotStarveReads) {
  // Pathological timing: refresh nearly back-to-back. Reads must still
  // make forward progress between refreshes.
  dram::Timing t;
  t.refi = t.rfc * 2;
  dram::Controller c(t, {});
  std::uint64_t completed = 0;
  Rng rng(2);
  for (Cycle now = 1; now < 500000 && completed < 100; ++now) {
    if (c.can_accept(false)) c.enqueue(rng.next_below(1 << 18), false, now, now);
    c.tick(now);
    completed += c.completions().size();
    c.completions().clear();
  }
  EXPECT_GE(completed, 100u);
}

TEST(EdgeLink, TinyBacklogStillDelivers) {
  link::CxlLink l(link::LaneConfig::x8(), /*max_backlog_cycles=*/1);
  Cycle now = 10;
  int delivered = 0;
  for (int i = 0; i < 1000; ++i, now += 20) {
    if (l.can_send_rx(now)) {
      l.send_rx(64, now);
      ++delivered;
    }
  }
  EXPECT_GT(delivered, 500);
}

TEST(EdgeMesh, DegenerateSingleTile) {
  noc::Mesh m(1, 1, 3);
  EXPECT_EQ(m.tiles(), 1u);
  EXPECT_EQ(m.hops(0, 0), 0u);
  EXPECT_EQ(m.home_tile(12345), 0u);
  EXPECT_EQ(m.memory_tile(0, 4), 0u);
}

TEST(EdgeWorkload, PureAluReachesCeiling) {
  workload::WorkloadParams p;
  p.name = "alu";
  p.mem_fraction = 0.0;
  p.max_ipc = 2.0;
  p.burstiness = 0.0;
  auto cfg = sys::baseline_ddr();
  sim::System s(cfg, std::vector<workload::WorkloadParams>(12, p), 1);
  s.run(1000, 5000);
  EXPECT_NEAR(s.stats().ipc_per_core, 2.0, 0.1);
  EXPECT_EQ(s.stats().llc_misses, 0u);
}

TEST(EdgeWorkload, AllStoresWorkloadRuns) {
  workload::WorkloadParams p;
  p.name = "stores";
  p.mem_fraction = 0.4;
  p.store_fraction = 1.0;
  p.seq_prob = 0.9;
  p.max_ipc = 2.0;
  auto cfg = sys::baseline_ddr();
  sim::System s(cfg, std::vector<workload::WorkloadParams>(12, p), 1);
  s.run(1000, 5000);
  EXPECT_GT(s.stats().ipc_per_core, 0.0);
  EXPECT_GT(s.stats().write_gbps(), 0.0);
}

TEST(EdgeWorkload, PointerChaseFullySerialized) {
  workload::WorkloadParams p;
  p.name = "chase";
  p.mem_fraction = 0.5;
  p.store_fraction = 0.0;
  p.seq_prob = 0.0;
  p.p_hot = 0.0;
  p.p_mid = 0.0;
  p.dep_prob = 1.0;  // Every load depends on the previous one.
  p.max_ipc = 4.0;
  p.burstiness = 0.0;
  auto cfg = sys::baseline_ddr();
  sim::System s(cfg, std::vector<workload::WorkloadParams>(12, p), 1);
  s.run(500, 2000);
  // Fully serialised cold misses: IPC must be tiny but nonzero.
  EXPECT_GT(s.stats().ipc_per_core, 0.0);
  EXPECT_LT(s.stats().ipc_per_core, 0.3);
}

TEST(EdgeWorkload, TinyWorkingSetIsCacheResident) {
  workload::WorkloadParams p;
  p.name = "tiny";
  p.mem_fraction = 0.4;
  p.seq_prob = 0.0;
  p.p_hot = 1.0;
  p.p_mid = 0.0;
  p.hot_kb = 8;  // Fits L1.
  p.max_ipc = 3.0;
  auto cfg = sys::baseline_ddr();
  sim::System s(cfg, std::vector<workload::WorkloadParams>(12, p), 1);
  s.run(1000, 5000);
  EXPECT_LT(s.stats().llc_mpki(), 1.0);
  EXPECT_GT(s.stats().ipc_per_core, 2.0);
}

TEST(EdgeSystem, TinyRobStillProgresses) {
  auto cfg = sys::coaxial_4x();
  cfg.uarch.rob_entries = 8;
  cfg.uarch.store_buffer = 2;
  sim::System s(cfg, std::vector<workload::WorkloadParams>(
                         12, workload::find_workload("pagerank")), 1);
  s.run(500, 2000);
  EXPECT_GT(s.stats().ipc_per_core, 0.0);
}

TEST(EdgeSystem, OneMshrPerLevelStillCompletes) {
  auto cfg = sys::baseline_ddr();
  cfg.uarch.l1_mshrs = 1;
  cfg.uarch.l2_mshrs = 1;
  cfg.uarch.llc_mshrs_per_slice = 1;
  sim::System s(cfg, std::vector<workload::WorkloadParams>(
                         12, workload::find_workload("stream-copy")), 1);
  s.run(500, 2000);
  EXPECT_GT(s.stats().ipc_per_core, 0.0);  // Slow, but alive.
}

TEST(EdgeSystem, ZeroWarmupRuns) {
  sim::System s(sys::baseline_ddr(), std::vector<workload::WorkloadParams>(
                                         12, workload::find_workload("bc")), 1);
  s.run(0, 3000);
  EXPECT_GT(s.stats().ipc_per_core, 0.0);
}

TEST(EdgeSystem, ManyCxlChannelsRun) {
  auto cfg = sys::coaxial_5x();
  cfg.cxl_channels = 8;  // Beyond any paper configuration.
  sim::System s(cfg, std::vector<workload::WorkloadParams>(
                         12, workload::find_workload("stream-add")), 1);
  s.run(1000, 4000);
  EXPECT_GT(s.stats().ipc_per_core, 0.0);
  EXPECT_GT(s.stats().mem.subchannels, 12u);
}

TEST(EdgeSystem, CalmOracleOnBaselineWorks) {
  auto cfg = sys::baseline_ddr();
  cfg.calm.policy = calm::Policy::kOracle;
  sim::System s(cfg, std::vector<workload::WorkloadParams>(
                         12, workload::find_workload("gcc")), 1);
  s.run(1000, 4000);
  EXPECT_GT(s.stats().calm.probes, 0u);
  // The oracle never wastes bandwidth.
  EXPECT_EQ(s.stats().calm.false_positives, 0u);
}

}  // namespace
}  // namespace coaxial
