#include "sim/runner.hpp"

#include <gtest/gtest.h>

namespace coaxial::sim {
namespace {

TEST(Runner, HomogeneousHelperFillsRequest) {
  const RunRequest r = homogeneous(sys::baseline_ddr(), "lbm", 100, 200, 9);
  EXPECT_EQ(r.workloads.size(), 1u);
  EXPECT_EQ(r.workloads.front(), "lbm");
  EXPECT_EQ(r.warmup_instr, 100u);
  EXPECT_EQ(r.measure_instr, 200u);
  EXPECT_EQ(r.seed, 9u);
}

TEST(Runner, RunOneProducesStats) {
  const RunResult r = run_one(homogeneous(sys::baseline_ddr(), "canneal", 1000, 4000));
  EXPECT_EQ(r.config_name, "DDR-baseline");
  EXPECT_EQ(r.workload_name, "canneal");
  EXPECT_GT(r.stats.ipc_per_core, 0.0);
}

TEST(Runner, RunOneThrowsOnEmptyWorkloads) {
  RunRequest r;
  r.config = sys::baseline_ddr();
  EXPECT_THROW(run_one(r), std::invalid_argument);
}

TEST(Runner, RunOneThrowsOnUnknownWorkload) {
  EXPECT_THROW(run_one(homogeneous(sys::baseline_ddr(), "bogus", 100, 100)),
               std::out_of_range);
}

TEST(Runner, MixRequestAssignsPerCore) {
  RunRequest r;
  r.config = sys::baseline_ddr();
  r.workloads = {"lbm", "gcc", "bc"};
  r.warmup_instr = 1000;
  r.measure_instr = 3000;
  const RunResult res = run_one(r);
  EXPECT_EQ(res.workload_name, "mix-0");  // Default mix_id indexes the name.
  EXPECT_GT(res.stats.ipc_per_core, 0.0);
}

TEST(Runner, MixIdNamesTheMix) {
  RunRequest r;
  r.config = sys::baseline_ddr();
  r.workloads = {"lbm", "gcc"};
  r.warmup_instr = 500;
  r.measure_instr = 1500;
  r.mix_id = 7;
  EXPECT_EQ(run_one(r).workload_name, "mix-7");
}

TEST(Runner, SingleWorkloadIgnoresMixId) {
  RunRequest r = homogeneous(sys::baseline_ddr(), "gcc", 500, 1500);
  r.mix_id = 3;
  EXPECT_EQ(run_one(r).workload_name, "gcc");
}

TEST(Runner, RunManyPreservesOrder) {
  std::vector<RunRequest> reqs = {
      homogeneous(sys::baseline_ddr(), "canneal", 500, 2000),
      homogeneous(sys::coaxial_4x(), "canneal", 500, 2000),
      homogeneous(sys::baseline_ddr(), "raytrace", 500, 2000),
  };
  const auto results = run_many(reqs, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].config_name, "DDR-baseline");
  EXPECT_EQ(results[1].config_name, "COAXIAL-4x");
  EXPECT_EQ(results[2].workload_name, "raytrace");
}

TEST(Runner, RunManyMatchesRunOne) {
  const auto req = homogeneous(sys::baseline_ddr(), "bfs", 1000, 3000, 5);
  const auto solo = run_one(req);
  const auto many = run_many({req}, 2);
  ASSERT_EQ(many.size(), 1u);
  EXPECT_DOUBLE_EQ(many[0].stats.ipc_per_core, solo.stats.ipc_per_core);
}

}  // namespace
}  // namespace coaxial::sim
