#include "dram/address_map.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace coaxial::dram {
namespace {

TEST(AddressMap, CoordinatesInRange) {
  Geometry g;
  AddressMap m(g);
  for (Addr line = 0; line < 100000; ++line) {
    const Coord c = m.map(line);
    EXPECT_LT(c.bank_group, g.bank_groups);
    EXPECT_LT(c.bank, g.banks_per_group);
    EXPECT_LT(c.row, g.rows);
    EXPECT_LT(c.column, g.columns);
    EXPECT_LT(c.flat_bank(g), g.banks());
  }
}

TEST(AddressMap, IsInjectiveOverDeviceCapacity) {
  // Distinct local lines within one row's worth of banks map to distinct
  // coordinates (bijectivity of the mapping on a window).
  Geometry g;
  AddressMap m(g);
  std::set<std::uint64_t> seen;
  const Addr window = static_cast<Addr>(g.columns) * g.banks() * 4;  // 4 rows deep.
  for (Addr line = 0; line < window; ++line) {
    const Coord c = m.map(line);
    const std::uint64_t key = ((static_cast<std::uint64_t>(c.row) * g.banks() +
                                c.flat_bank(g)) *
                               g.columns) +
                              c.column;
    EXPECT_TRUE(seen.insert(key).second) << "duplicate at line " << line;
  }
}

TEST(AddressMap, SequentialLinesFillARowFirst) {
  Geometry g;
  AddressMap m(g);
  const Coord first = m.map(0);
  for (Addr line = 1; line < g.columns; ++line) {
    const Coord c = m.map(line);
    EXPECT_EQ(c.row, first.row);
    EXPECT_EQ(c.flat_bank(g), first.flat_bank(g));
    EXPECT_EQ(c.column, static_cast<std::uint32_t>(line));
  }
  // The next line moves to another bank (row locality preserved per bank).
  EXPECT_NE(m.map(g.columns).flat_bank(g), first.flat_bank(g));
}

TEST(AddressMap, PermutationSpreadsRowConflictStreams) {
  // A stream striding by exactly one row (same nominal bank pre-XOR) must
  // touch many banks thanks to permutation interleaving.
  Geometry g;
  AddressMap m(g);
  const Addr row_stride = static_cast<Addr>(g.columns) * g.banks();
  std::set<std::uint32_t> banks;
  for (Addr i = 0; i < 64; ++i) {
    banks.insert(m.map(i * row_stride).flat_bank(g));
  }
  EXPECT_GT(banks.size(), 16u);
}

TEST(AddressMap, BankDistributionBalancedForRandom) {
  Geometry g;
  AddressMap m(g);
  std::map<std::uint32_t, int> counts;
  // Pseudo-random-ish large-stride walk.
  const int n = 32000;
  for (int i = 0; i < n; ++i) {
    counts[m.map(static_cast<Addr>(i) * 7919).flat_bank(g)]++;
  }
  EXPECT_EQ(counts.size(), g.banks());
  for (const auto& [bank, count] : counts) {
    EXPECT_NEAR(count, n / static_cast<int>(g.banks()), n / g.banks() * 0.25)
        << "bank " << bank;
  }
}

TEST(Timing, DerivedValuesConsistent) {
  Timing t;
  EXPECT_EQ(t.rc(), t.ras + t.rp);
  EXPECT_GT(t.cl, 0u);
  EXPECT_GE(t.ccd_l, t.ccd_s);
  EXPECT_GE(t.rrd_l, t.rrd_s);
  EXPECT_GE(t.wtr_l, t.wtr_s);
  EXPECT_GE(t.faw, t.rrd_s);  // Four-ACT window at least one ACT gap.
  EXPECT_LT(t.rfc, t.refi);   // Refresh must not consume the whole interval.
}

TEST(Timing, SubChannelBandwidthConstants) {
  // One line per tBL cycles at 2.4 GHz = 64 B / (8 * 0.4167 ns) = 19.2 GB/s.
  const Timing t;
  const double gbps = kLineBytes / (static_cast<double>(t.bl) * kNsPerCycle);
  EXPECT_NEAR(gbps, kSubChannelPeakGBps, 1e-9);
  EXPECT_NEAR(2 * kSubChannelPeakGBps, kChannelPeakGBps, 1e-9);
}

}  // namespace
}  // namespace coaxial::dram
