#include <map>
#include "workload/catalog.hpp"
#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace coaxial::workload {
namespace {

TEST(Catalog, HasThirtyFiveWorkloads) {
  // Table IV lists 35 workloads (the artifact appendix confirms 35).
  EXPECT_EQ(all_workloads().size(), 35u);
}

TEST(Catalog, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& w : all_workloads()) {
    EXPECT_TRUE(names.insert(w.name).second) << "duplicate " << w.name;
  }
}

TEST(Catalog, SuitesMatchPaperCounts) {
  std::map<std::string, int> counts;
  for (const auto& w : all_workloads()) ++counts[w.suite];
  EXPECT_EQ(counts["SPEC"], 12);
  EXPECT_EQ(counts["LIGRA"], 12);
  EXPECT_EQ(counts["STREAM"], 4);
  EXPECT_EQ(counts["KVS"], 2);
  EXPECT_EQ(counts["PARSEC"], 5);
}

TEST(Catalog, FindWorksAndThrows) {
  EXPECT_EQ(find_workload("lbm").name, "lbm");
  EXPECT_EQ(find_workload("stream-triad").suite, "STREAM");
  EXPECT_THROW(find_workload("no-such-workload"), std::out_of_range);
}

TEST(Catalog, MixesAreDeterministicAndSized) {
  const auto a = make_mixes(10, 12, 7);
  const auto b = make_mixes(10, 12, 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10u);
  for (const auto& mix : a) {
    EXPECT_EQ(mix.size(), 12u);
    for (const auto& name : mix) EXPECT_NO_THROW(find_workload(name));
  }
  EXPECT_NE(make_mixes(10, 12, 8), a);  // Different seed differs.
}

TEST(Catalog, InterleaveStressIsCatalogExternal) {
  // The fabric stress preset resolves by name but must NOT join the Table IV
  // catalog (that would perturb make_mixes sampling and the suite counts).
  const WorkloadParams& p = interleave_stress();
  EXPECT_EQ(p.name, "xdev-stride");
  EXPECT_EQ(find_workload("xdev-stride").name, p.name);
  EXPECT_EQ(all_workloads().size(), 35u);
  for (const auto& w : all_workloads()) EXPECT_NE(w.name, p.name);
  // Miss-heavy and wide: the point is many pages in flight at once.
  EXPECT_GE(p.mem_fraction, 0.05);
  EXPECT_EQ(p.streams, 16u);

  const auto mix = interleave_stress_mix(12);
  EXPECT_EQ(mix.size(), 12u);
  EXPECT_EQ(mix[0].name, "xdev-stride");
  EXPECT_EQ(mix[4].name, "xdev-stride");  // Rotation wraps every 4 cores.
  EXPECT_EQ(mix[1].name, "stream-add");
}

class PerWorkload : public ::testing::TestWithParam<std::string> {
 protected:
  const WorkloadParams& params() { return find_workload(GetParam()); }
};

TEST_P(PerWorkload, ParametersAreInValidRanges) {
  const auto& p = params();
  EXPECT_GT(p.mem_fraction, 0.0);
  EXPECT_LE(p.mem_fraction, 0.6);
  EXPECT_GE(p.store_fraction, 0.0);
  EXPECT_LE(p.store_fraction, 0.55);
  EXPECT_GE(p.seq_prob, 0.0);
  EXPECT_LE(p.seq_prob, 1.0);
  EXPECT_LE(p.p_hot + p.p_mid, 1.0);
  EXPECT_GE(p.dep_prob, 0.0);
  EXPECT_LE(p.dep_prob, 0.95);
  EXPECT_GT(p.max_ipc, 0.1);
  EXPECT_LE(p.max_ipc, 4.0);
  EXPECT_GT(p.paper_ipc, 0.0);
  EXPECT_GT(p.paper_llc_mpki, 0.0);
  EXPECT_GT(p.cold_kb, p.mid_kb);  // Cold tier must dwarf the LLC tier.
}

TEST_P(PerWorkload, GeneratorIsDeterministic) {
  Generator a(params(), 0, 42), b(params(), 0, 42);
  for (int i = 0; i < 2000; ++i) {
    const Instr x = a.next(), y = b.next();
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.addr, y.addr);
    EXPECT_EQ(x.pc, y.pc);
    EXPECT_EQ(x.depends_on_prev_load, y.depends_on_prev_load);
  }
}

TEST_P(PerWorkload, MemFractionApproximatelyRealized) {
  Generator g(params(), 0, 42);
  // Burst/gap phases are thousands of instructions long; sample enough
  // phase pairs for the average to converge.
  const int n = 600000;
  int mem = 0;
  for (int i = 0; i < n; ++i) {
    if (g.next().kind != InstrKind::kAlu) ++mem;
  }
  EXPECT_NEAR(static_cast<double>(mem) / n, params().mem_fraction,
              0.12 * params().mem_fraction + 0.01);
}

TEST_P(PerWorkload, StoreFractionApproximatelyRealized) {
  Generator g(params(), 0, 42);
  int mem = 0, stores = 0;
  for (int i = 0; i < 80000; ++i) {
    const Instr ins = g.next();
    if (ins.kind == InstrKind::kAlu) continue;
    ++mem;
    if (ins.kind == InstrKind::kStore) ++stores;
  }
  ASSERT_GT(mem, 0);
  EXPECT_NEAR(static_cast<double>(stores) / mem, params().store_fraction, 0.05);
}

TEST_P(PerWorkload, AddressesStayWithinTheCoreRegion) {
  const std::uint32_t core = 3;
  const Regions r = region_layout(params(), core);
  Generator g(params(), core, 42);
  for (int i = 0; i < 20000; ++i) {
    const Instr ins = g.next();
    if (ins.kind == InstrKind::kAlu) continue;
    const bool in_hot = ins.addr >= r.hot_base && ins.addr < r.hot_base + r.hot_bytes;
    const bool in_mid = ins.addr >= r.mid_base && ins.addr < r.mid_base + r.mid_bytes;
    const bool in_cold = ins.addr >= r.cold_base && ins.addr < r.cold_base + r.cold_bytes;
    EXPECT_TRUE(in_hot || in_mid || in_cold) << "addr " << std::hex << ins.addr;
    EXPECT_EQ(ins.addr % 8, 0u);  // Word-aligned.
  }
}

TEST_P(PerWorkload, DependenciesOnlyOnLoads) {
  Generator g(params(), 0, 42);
  for (int i = 0; i < 20000; ++i) {
    const Instr ins = g.next();
    if (ins.depends_on_prev_load) {
      EXPECT_EQ(ins.kind, InstrKind::kLoad);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PerWorkload,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Generator, CoresUseDisjointRegions) {
  const auto& p = find_workload("lbm");
  const Regions a = region_layout(p, 0);
  const Regions b = region_layout(p, 1);
  EXPECT_GE(b.hot_base, a.cold_base + a.cold_bytes);
}

TEST(Generator, SequentialStreamAdvancesByWords) {
  WorkloadParams p;
  p.seq_prob = 1.0;
  p.mem_fraction = 1.0;
  p.store_fraction = 0.0;
  p.streams = 1;
  p.burstiness = 0.0;
  Generator g(p, 0, 1);
  // Note: even with mem_fraction=1, the burst machine caps the effective
  // fraction at 0.9, so skip the occasional ALU instruction.
  auto next_mem = [&] {
    for (;;) {
      const Instr ins = g.next();
      if (ins.kind != InstrKind::kAlu) return ins.addr;
    }
  };
  Addr prev = next_mem();
  for (int i = 0; i < 1000; ++i) {
    const Addr cur = next_mem();
    if (cur > prev) {
      EXPECT_EQ(cur - prev, 8u);
    }  // Else: wrapped at region end.
    prev = cur;
  }
}

TEST(Generator, HotTierIsSkewedWhenConfigured) {
  WorkloadParams p;
  p.seq_prob = 0.0;
  p.mem_fraction = 1.0;
  p.p_hot = 0.9;
  p.p_mid = 0.0;
  p.burstiness = 0.0;
  Generator g(p, 0, 1);
  const Regions r = region_layout(p, 0);
  int hot = 0, mem = 0;
  for (int i = 0; i < 40000; ++i) {
    const Instr ins = g.next();
    if (ins.kind == InstrKind::kAlu) continue;
    ++mem;
    if (ins.addr >= r.hot_base && ins.addr < r.hot_base + r.hot_bytes) ++hot;
  }
  ASSERT_GT(mem, 0);
  EXPECT_NEAR(static_cast<double>(hot) / mem, 0.9, 0.02);
}

TEST(Generator, BurstinessPreservesAverageMemFraction) {
  WorkloadParams p;
  p.mem_fraction = 0.3;
  p.burstiness = 0.9;
  Generator g(p, 0, 77);
  int mem = 0;
  const int n = 1'000'000;
  for (int i = 0; i < n; ++i) {
    if (g.next().kind != InstrKind::kAlu) ++mem;
  }
  EXPECT_NEAR(static_cast<double>(mem) / n, 0.3, 0.04);
}

TEST(Generator, DistinctSeedsGiveDistinctStreams) {
  const auto& p = find_workload("pagerank");
  Generator a(p, 0, 1), b(p, 0, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next().addr == b.next().addr) ++same;
  }
  EXPECT_LT(same, 900);
}

}  // namespace
}  // namespace coaxial::workload
