// Event-driven-vs-forced equivalence for the switched-fabric topologies:
// the conservative Switch/SerialPipe wake bounds must make a skipping run
// byte-identical to COAXIAL_TICK_EVERY_CYCLE=1, including every fabric/*
// metric. Lives in the `invariant` label so the ASan CI pass runs it.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "obs/stats_json.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace coaxial::sim {
namespace {

std::string run_document(const sys::SystemConfig& cfg, const std::string& wl,
                         bool forced, Cycle* end_cycle) {
  std::vector<workload::WorkloadParams> per_core(cfg.uarch.cores,
                                                 workload::find_workload(wl));
  System s(cfg, per_core, /*seed=*/7);
  if (forced) s.set_tick_every_cycle(true);
  s.run(/*warmup_instr=*/500, /*measure_instr=*/2000);
  *end_cycle = s.now();
  return obs::json::snapshot_to_json(s.metrics().snapshot());
}

void expect_modes_equivalent(const sys::SystemConfig& cfg, const std::string& wl) {
  Cycle end_event = 0, end_forced = 0;
  const std::string doc_event = run_document(cfg, wl, false, &end_event);
  const std::string doc_forced = run_document(cfg, wl, true, &end_forced);
  EXPECT_EQ(end_event, end_forced) << cfg.name << "/" << wl;
  EXPECT_EQ(doc_event, doc_forced) << cfg.name << "/" << wl;
}

TEST(FabricEquivalence, StarMatchesForcedTicking) {
  expect_modes_equivalent(sys::coaxial_star(8, 4), "lbm");
}

TEST(FabricEquivalence, TreeMatchesForcedTicking) {
  expect_modes_equivalent(sys::coaxial_tree(8, 4, 2), "stream-copy");
}

TEST(FabricEquivalence, StarLineInterleaveMatchesForcedTicking) {
  // Per-line interleaving maximises cross-device churn through the switch.
  sys::SystemConfig cfg = sys::coaxial_star(8, 4);
  cfg.fabric.interleave = fabric::Interleave::kLine;
  expect_modes_equivalent(cfg, "mcf");
}

}  // namespace
}  // namespace coaxial::sim
