// Golden-regression layer over the stats JSON documents.
//
// Three small (config, workload) pairs run with fixed seeds and tiny
// instruction budgets; the emitted document is compared against the
// checked-in baseline (tests/golden/baseline.json) with the same diff
// engine the statdiff CLI uses: counters and other integral leaves exact,
// floating leaves (IPC, latencies, rates) within 1e-9 relative tolerance.
//
// Regenerating the baseline after an intentional behaviour change:
//
//   COAXIAL_REGEN_GOLDEN=1 ./build/tests/test_golden_stats
//
// then commit the updated tests/golden/baseline.json (see EXPERIMENTS.md).
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/statdiff.hpp"
#include "obs/stats_json.hpp"
#include "sim/runner.hpp"

#ifndef COAXIAL_GOLDEN_DIR
#error "test_golden_stats requires COAXIAL_GOLDEN_DIR (set by tests/CMakeLists.txt)"
#endif

namespace coaxial::sim {
namespace {

const char* kGoldenPath = COAXIAL_GOLDEN_DIR "/baseline.json";

// The golden scenario set lives in sim::golden_requests() so this test and
// the tools/golden_run CLI always describe the same runs.
std::string run_golden_document() {
  return stats_json(run_many(golden_requests(), 1));
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

obs::DiffOptions golden_options() {
  obs::DiffOptions opts;
  opts.default_rtol = 1e-9;  // Floats: bit-level drift only. Integrals: exact.
  return opts;
}

TEST(GoldenStats, MatchesCheckedInBaseline) {
  const std::string current = run_golden_document();

  if (std::getenv("COAXIAL_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << current;
    out.close();
    GTEST_SKIP() << "regenerated golden baseline at " << kGoldenPath;
  }

  std::string golden;
  ASSERT_TRUE(read_file(kGoldenPath, golden))
      << "missing " << kGoldenPath
      << " — regenerate with COAXIAL_REGEN_GOLDEN=1 " << "./test_golden_stats";

  const std::vector<obs::Diff> diffs = obs::diff_stats(
      obs::json::parse_flat(golden), obs::json::parse_flat(current),
      golden_options());
  for (const obs::Diff& d : diffs) {
    ADD_FAILURE() << obs::to_string(d);
  }
  EXPECT_TRUE(diffs.empty())
      << diffs.size() << " metric(s) drifted from the golden baseline; if the "
      << "change is intentional, regenerate with COAXIAL_REGEN_GOLDEN=1";
}

TEST(GoldenStats, DiffEngineCatchesInjectedPerturbation) {
  // End-to-end guard that the comparison is not vacuous: perturb one counter
  // in the live document and the golden diff machinery must flag it.
  const std::string base = run_golden_document();
  const obs::json::Flat flat_base = obs::json::parse_flat(base);

  // Find an integral metric leaf and bump it by one in the JSON text.
  std::string target;
  for (const auto& [path, v] : flat_base) {
    if (v.kind == obs::json::Value::Kind::kNumber && v.integral &&
        path.find("/metrics/") != std::string::npos && v.num > 0) {
      target = path;
      break;
    }
  }
  ASSERT_FALSE(target.empty()) << "no integral metric leaf found";

  obs::json::Flat perturbed = flat_base;
  perturbed[target].num += 1.0;

  const std::vector<obs::Diff> diffs =
      obs::diff_stats(flat_base, perturbed, golden_options());
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].path, target);
  EXPECT_EQ(diffs[0].reason, "not-exact");
}

TEST(GoldenStats, BaselineParsesAndHasExpectedShape) {
  std::string golden;
  if (!read_file(kGoldenPath, golden)) {
    GTEST_SKIP() << "baseline not generated yet";
  }
  const obs::json::Flat flat = obs::json::parse_flat(golden);
  EXPECT_EQ(flat.at("schema").str, "coaxial-stats-v1");
  EXPECT_EQ(flat.at("runs/000/config").str, "DDR-baseline");
  EXPECT_EQ(flat.at("runs/000/workload").str, "canneal");
  EXPECT_EQ(flat.at("runs/001/workload").str, "lbm");
  EXPECT_EQ(flat.at("runs/002/workload").str, "stream-copy");
  // Every run carries a populated metrics tree.
  for (const char* run : {"runs/000", "runs/001", "runs/002"}) {
    const std::string key = std::string(run) + "/metrics/run/instructions";
    ASSERT_TRUE(flat.count(key)) << key;
    EXPECT_GT(flat.at(key).num, 0.0);
  }
  // CXL-attached runs expose link metrics; the direct-DDR baseline does not.
  EXPECT_TRUE(flat.count("runs/001/metrics/mem/cxl/link00/tx/messages"));
  EXPECT_FALSE(flat.count("runs/000/metrics/mem/cxl/link00/tx/messages"));
}

}  // namespace
}  // namespace coaxial::sim
