// Determinism guarantees over the stats JSON documents.
//
// The simulator is seeded and single-threaded per run, and the metrics
// snapshot is a sorted map emitted by a canonical writer — so the same
// request must produce byte-identical JSON every time, and a batch's
// document must not depend on how many host threads executed it. These are
// the properties the golden-regression layer (test_golden_stats.cpp) builds
// on; if this test breaks, golden comparisons are meaningless.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/runner.hpp"

namespace coaxial::sim {
namespace {

constexpr std::uint64_t kWarmup = 500;
constexpr std::uint64_t kMeasure = 2000;

TEST(Determinism, RunOneIsByteIdenticalAcrossRepeats) {
  const RunRequest req = homogeneous(sys::baseline_ddr(), "canneal", kWarmup,
                                     kMeasure, /*seed=*/7);
  const std::string a = stats_json(run_one(req));
  const std::string b = stats_json(run_one(req));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, CoaxialTopologyIsAlsoDeterministic) {
  const RunRequest req = homogeneous(sys::coaxial_4x(), "lbm", kWarmup,
                                     kMeasure, /*seed=*/11);
  EXPECT_EQ(stats_json(run_one(req)), stats_json(run_one(req)));
}

TEST(Determinism, SeedChangesTheDocument) {
  // Guard against a trivially-passing determinism test: the document must
  // actually depend on the simulation, not just echo the request.
  RunRequest req = homogeneous(sys::baseline_ddr(), "canneal", kWarmup,
                               kMeasure, /*seed=*/7);
  const std::string a = stats_json(run_one(req));
  req.seed = 8;
  EXPECT_NE(a, stats_json(run_one(req)));
}

TEST(Determinism, RunManyIsIndependentOfThreadCount) {
  const std::vector<RunRequest> reqs = {
      homogeneous(sys::baseline_ddr(), "canneal", kWarmup, kMeasure, 7),
      homogeneous(sys::coaxial_4x(), "lbm", kWarmup, kMeasure, 7),
      homogeneous(sys::coaxial_4x(), "stream-copy", kWarmup, kMeasure, 9),
      homogeneous(sys::baseline_ddr(), "bfs", kWarmup, kMeasure, 5),
  };
  const std::string serial = stats_json(run_many(reqs, 1));
  const std::string parallel = stats_json(run_many(reqs, 4));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(Determinism, DocumentCarriesSchemaAndRunMetadata) {
  const RunRequest req = homogeneous(sys::baseline_ddr(), "canneal", kWarmup,
                                     kMeasure, /*seed=*/7);
  const std::string doc = stats_json(run_one(req));
  EXPECT_NE(doc.find("\"schema\": \"coaxial-stats-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"config\": \"DDR-baseline\""), std::string::npos);
  EXPECT_NE(doc.find("\"workload\": \"canneal\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\": 7"), std::string::npos);
}

}  // namespace
}  // namespace coaxial::sim
