// Determinism guarantees over the stats JSON documents.
//
// The simulator is seeded and single-threaded per run, and the metrics
// snapshot is a sorted map emitted by a canonical writer — so the same
// request must produce byte-identical JSON every time, and a batch's
// document must not depend on how many host threads executed it. These are
// the properties the golden-regression layer (test_golden_stats.cpp) builds
// on; if this test breaks, golden comparisons are meaningless.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/runner.hpp"

namespace coaxial::sim {
namespace {

constexpr std::uint64_t kWarmup = 500;
constexpr std::uint64_t kMeasure = 2000;

RunRequest pooled_request(const pool::PoolConfig& cfg, std::uint32_t shards) {
  RunRequest req;
  req.pool = cfg;
  // Shrunk footprints (as in test_pool.cpp) so the short run still collides
  // on hot shared pages and generates real directory traffic.
  req.pool.private_pages = 1 << 12;
  req.pool.shared_pages = 256;
  req.pool.shared_hot_pages = 4;
  req.pool.shared_hot_prob = 0.9;
  req.warmup_instr = 300;
  req.measure_instr = 1500;
  req.seed = 7;
  req.shards = shards;
  return req;
}

TEST(Determinism, RunOneIsByteIdenticalAcrossRepeats) {
  const RunRequest req = homogeneous(sys::baseline_ddr(), "canneal", kWarmup,
                                     kMeasure, /*seed=*/7);
  const std::string a = stats_json(run_one(req));
  const std::string b = stats_json(run_one(req));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, CoaxialTopologyIsAlsoDeterministic) {
  const RunRequest req = homogeneous(sys::coaxial_4x(), "lbm", kWarmup,
                                     kMeasure, /*seed=*/11);
  EXPECT_EQ(stats_json(run_one(req)), stats_json(run_one(req)));
}

TEST(Determinism, SeedChangesTheDocument) {
  // Guard against a trivially-passing determinism test: the document must
  // actually depend on the simulation, not just echo the request.
  RunRequest req = homogeneous(sys::baseline_ddr(), "canneal", kWarmup,
                               kMeasure, /*seed=*/7);
  const std::string a = stats_json(run_one(req));
  req.seed = 8;
  EXPECT_NE(a, stats_json(run_one(req)));
}

TEST(Determinism, RunManyIsIndependentOfThreadCount) {
  const std::vector<RunRequest> reqs = {
      homogeneous(sys::baseline_ddr(), "canneal", kWarmup, kMeasure, 7),
      homogeneous(sys::coaxial_4x(), "lbm", kWarmup, kMeasure, 7),
      homogeneous(sys::coaxial_4x(), "stream-copy", kWarmup, kMeasure, 9),
      homogeneous(sys::baseline_ddr(), "bfs", kWarmup, kMeasure, 5),
  };
  const std::string serial = stats_json(run_many(reqs, 1));
  const std::string parallel = stats_json(run_many(reqs, 4));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(Determinism, ShardWorkerCountNeverChangesThePooledDocument) {
  // DESIGN.md §14: the sharded quantum engine is a pure scheduling change.
  // Pooled runs must emit byte-identical documents at every worker count —
  // including a count above the shard count (clamped) — both in the healthy
  // ping-pong scenario and under a mid-run device failure.
  const std::string healthy =
      stats_json(run_one(pooled_request(sys::coaxial_pooled(4), 1)));
  const std::string faulty = stats_json(
      run_one(pooled_request(sys::coaxial_pooled_faulty(2, /*at_cycle=*/4000), 1)));
  EXPECT_FALSE(healthy.empty());
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    EXPECT_EQ(healthy,
              stats_json(run_one(pooled_request(sys::coaxial_pooled(4), n))));
    EXPECT_EQ(faulty,
              stats_json(run_one(pooled_request(
                  sys::coaxial_pooled_faulty(2, /*at_cycle=*/4000), n))));
  }
}

TEST(Determinism, ShardKnobIsInertForSingleHostRuns) {
  // Single-host System runs stay sequential (the payload event queue's
  // same-cycle tie-break is global state; see sim/scheduler.hpp). The shard
  // knob must therefore not perturb the golden baseline, RAS, or tiered
  // documents in any way.
  std::vector<RunRequest> reqs = golden_requests();
  {
    RunRequest ras = homogeneous(sys::coaxial_4x(), "lbm", kWarmup, kMeasure, 7);
    ras.config.fault_plan = sys::ras_stress();
    reqs.push_back(ras);
    reqs.push_back(homogeneous(sys::coaxial_tiered(), "canneal", kWarmup,
                               kMeasure, /*seed=*/7));
  }
  for (const RunRequest& req : reqs) {
    RunRequest sharded = req;
    sharded.shards = 4;
    EXPECT_EQ(stats_json(run_one(req)), stats_json(run_one(sharded)));
  }
}

TEST(Determinism, DocumentCarriesSchemaAndRunMetadata) {
  const RunRequest req = homogeneous(sys::baseline_ddr(), "canneal", kWarmup,
                                     kMeasure, /*seed=*/7);
  const std::string doc = stats_json(run_one(req));
  EXPECT_NE(doc.find("\"schema\": \"coaxial-stats-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"config\": \"DDR-baseline\""), std::string::npos);
  EXPECT_NE(doc.find("\"workload\": \"canneal\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\": 7"), std::string::npos);
}

}  // namespace
}  // namespace coaxial::sim
