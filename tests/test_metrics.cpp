// Unit tests for the observability layer: the metrics registry, the
// canonical JSON writer/parser, and the statdiff comparison logic.
#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/statdiff.hpp"
#include "obs/stats_json.hpp"

namespace coaxial::obs {
namespace {

// ----------------------------------------------------------------- registry

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a/b/reads");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  Gauge& g = reg.gauge("a/b/sum");
  g.add(1.5);
  g.add(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  c.reset();
  g.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, ReRequestingSamePathReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, CrossKindDuplicateThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x"), std::invalid_argument);
  EXPECT_THROW(reg.expose("x", [] { return 0.0; }), std::invalid_argument);
}

TEST(Metrics, ProbesAreSampledAtSnapshotTime) {
  MetricsRegistry reg;
  std::uint64_t n = 1;
  reg.expose_counter("live", [&n] { return n; });
  EXPECT_EQ(reg.snapshot().at("live").count, 1u);
  n = 42;
  EXPECT_EQ(reg.snapshot().at("live").count, 42u);
}

TEST(Metrics, SnapshotIsLexicographicallyOrderedAndTyped) {
  MetricsRegistry reg;
  reg.counter("b/count").inc(7);
  reg.gauge("a/ratio").set(0.25);
  reg.expose("c/probe", [] { return 1.25; });
  const Snapshot s = reg.snapshot();
  ASSERT_EQ(s.size(), 3u);
  auto it = s.begin();
  EXPECT_EQ(it->first, "a/ratio");
  EXPECT_FALSE(it->second.integral);
  EXPECT_DOUBLE_EQ(it->second.value, 0.25);
  ++it;
  EXPECT_EQ(it->first, "b/count");
  EXPECT_TRUE(it->second.integral);
  EXPECT_EQ(it->second.count, 7u);
  ++it;
  EXPECT_EQ(it->first, "c/probe");
}

TEST(Metrics, HistogramFlattensToSummaryLeaves) {
  MetricsRegistry reg;
  LatencyHistogram& h = reg.histogram("lat");
  for (int i = 1; i <= 100; ++i) h.add(static_cast<Cycle>(i));
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.at("lat/count").count, 100u);
  EXPECT_NEAR(s.at("lat/mean").value, 50.5, 1.0);
  EXPECT_TRUE(s.at("lat/p50").integral);
  EXPECT_GE(s.at("lat/p99").count, s.at("lat/p50").count);
}

TEST(Metrics, ExposedHistogramViewTracksOwner) {
  MetricsRegistry reg;
  LatencyHistogram h;
  reg.expose_histogram("view", h);
  EXPECT_EQ(reg.snapshot().at("view/count").count, 0u);
  h.add(5);
  h.add(9);
  EXPECT_EQ(reg.snapshot().at("view/count").count, 2u);
}

TEST(Metrics, DefaultScopeIsInert) {
  Scope s;
  EXPECT_FALSE(s.valid());
  EXPECT_EQ(s.counter("x"), nullptr);
  EXPECT_EQ(s.gauge("x"), nullptr);
  EXPECT_EQ(s.histogram("x"), nullptr);
  s.expose("x", [] { return 0.0; });          // No-op, must not crash.
  s.expose_counter("x", [] { return 0ull; });
  EXPECT_FALSE(s.sub("y").valid());
}

TEST(Metrics, ScopePrefixesPaths) {
  MetricsRegistry reg;
  Scope root(&reg, "mem");
  root.sub("dram/ctrl00").counter("reads");
  EXPECT_TRUE(reg.contains("mem/dram/ctrl00/reads"));
}

TEST(Metrics, IdxZeroPads) {
  EXPECT_EQ(idx(0), "00");
  EXPECT_EQ(idx(7), "07");
  EXPECT_EQ(idx(123), "123");  // Wider values are not truncated.
  EXPECT_EQ(idx(3, 3), "003");
}

// --------------------------------------------------------------- JSON write

TEST(StatsJson, CanonicalSnapshotDocument) {
  MetricsRegistry reg;
  reg.counter("a/n").inc(3);
  reg.gauge("a/x").set(0.5);
  reg.counter("b").inc(1);
  const std::string doc = json::snapshot_to_json(reg.snapshot());
  EXPECT_EQ(doc,
            "{\n"
            "  \"a\": {\n"
            "    \"n\": 3,\n"
            "    \"x\": 0.5\n"
            "  },\n"
            "  \"b\": 1\n"
            "}\n");
}

TEST(StatsJson, NumbersAreCanonical) {
  EXPECT_EQ(json::number(std::uint64_t{12345}), "12345");
  EXPECT_EQ(json::number(0.5), "0.5");
  EXPECT_EQ(json::number(std::nan("")), "null");
  EXPECT_EQ(json::number(std::numeric_limits<double>::infinity()), "null");
  // %.17g round-trips any double.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(json::number(v)), v);
}

TEST(StatsJson, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(StatsJson, IdenticalSnapshotsEmitIdenticalBytes) {
  auto build = [] {
    MetricsRegistry reg;
    reg.counter("z/count").inc(9);
    reg.gauge("a/value").set(1.0 / 3.0);
    return json::snapshot_to_json(reg.snapshot());
  };
  EXPECT_EQ(build(), build());
}

// --------------------------------------------------------------- JSON parse

TEST(StatsJson, ParseFlattensNestedDocument) {
  const json::Flat f = json::parse_flat(
      R"({"a": {"n": 3, "x": 0.5}, "s": "hi", "t": true, "z": null,
          "arr": [1, 2.5]})");
  EXPECT_EQ(f.at("a/n").num, 3.0);
  EXPECT_TRUE(f.at("a/n").integral);
  EXPECT_FALSE(f.at("a/x").integral);
  EXPECT_EQ(f.at("s").str, "hi");
  EXPECT_TRUE(f.at("t").boolean);
  EXPECT_EQ(f.at("z").kind, json::Value::Kind::kNull);
  EXPECT_EQ(f.at("arr/000").num, 1.0);
  EXPECT_EQ(f.at("arr/001").num, 2.5);
}

TEST(StatsJson, ParseRoundTripsEmitterOutput) {
  MetricsRegistry reg;
  reg.counter("runs/total").inc(17);
  reg.gauge("lat/avg").set(12.75);
  const json::Flat f = json::parse_flat(json::snapshot_to_json(reg.snapshot()));
  EXPECT_EQ(f.at("runs/total").num, 17.0);
  EXPECT_TRUE(f.at("runs/total").integral);
  EXPECT_EQ(f.at("lat/avg").num, 12.75);
}

TEST(StatsJson, ParseRejectsMalformedInput) {
  EXPECT_THROW(json::parse_flat("{"), std::runtime_error);
  EXPECT_THROW(json::parse_flat("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(json::parse_flat("[1, 2"), std::runtime_error);
  EXPECT_THROW(json::parse_flat("{\"a\": 1} trailing"), std::runtime_error);
}

// ----------------------------------------------------------------- statdiff

json::Flat flat(const std::string& text) { return json::parse_flat(text); }

TEST(StatDiff, IdenticalDocumentsHaveNoDiffs) {
  const json::Flat a = flat(R"({"n": 3, "x": 0.5})");
  EXPECT_TRUE(diff_stats(a, a, {}).empty());
}

TEST(StatDiff, IntegralLeavesCompareExactly) {
  const json::Flat a = flat(R"({"count": 1000})");
  const json::Flat b = flat(R"({"count": 1001})");
  DiffOptions opts;
  opts.default_rtol = 0.1;  // Default rtol must NOT soften integral leaves.
  const auto diffs = diff_stats(a, b, opts);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].path, "count");
  EXPECT_EQ(diffs[0].reason, "not-exact");
}

TEST(StatDiff, FloatLeavesUseRelativeTolerance) {
  const json::Flat a = flat(R"({"ipc": 1.0})");
  const json::Flat b = flat(R"({"ipc": 1.0000001})");
  EXPECT_EQ(diff_stats(a, b, {}).size(), 1u);  // Exact by default.
  DiffOptions opts;
  opts.default_rtol = 1e-6;
  EXPECT_TRUE(diff_stats(a, b, opts).empty());
}

TEST(StatDiff, RuleOverridesBySubstringLastWins) {
  const json::Flat a = flat(R"({"mem": {"reads": 100}, "lat": {"avg": 10.0}})");
  const json::Flat b = flat(R"({"mem": {"reads": 105}, "lat": {"avg": 10.4}})");
  DiffOptions opts;
  opts.rules.push_back({"mem/", 0.2});   // Integral leaf gains a tolerance.
  opts.rules.push_back({"lat/avg", 0.1});
  EXPECT_TRUE(diff_stats(a, b, opts).empty());
  opts.rules.push_back({"mem/reads", 0.0});  // Last match wins: exact again.
  EXPECT_EQ(diff_stats(a, b, opts).size(), 1u);
}

TEST(StatDiff, GlobMatcher) {
  EXPECT_FALSE(is_glob("fabric/"));
  EXPECT_TRUE(is_glob("fabric/*"));
  EXPECT_TRUE(is_glob("sw?0"));

  EXPECT_TRUE(glob_match("fabric/*", "fabric/sw00/down/out01/bytes"));
  EXPECT_TRUE(glob_match("fabric/*/queue_delay_sum",
                         "fabric/sw00/down/out01/queue_delay_sum"));
  EXPECT_TRUE(glob_match("*/out?" "?/bytes", "fabric/sw01/up/out03/bytes"));
  EXPECT_TRUE(glob_match("*", "anything/at/all"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));

  // Globs anchor to the FULL path (unlike substring rules).
  EXPECT_FALSE(glob_match("sw00/*", "fabric/sw00/down/out00/bytes"));
  EXPECT_FALSE(glob_match("fabric/*/bytes", "fabric/sw00/down/out00/messages"));
  EXPECT_FALSE(glob_match("out?" "?/bytes", "out1/bytes"));
  EXPECT_FALSE(glob_match("a*b", "acd"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
}

TEST(StatDiff, GlobRuleCoversFabricSubtreeWithOneLine) {
  // The fabric use case: one glob rule rtol-softens every switch-plane
  // queue_delay_sum while the sibling byte counters stay exact.
  const json::Flat a = flat(R"({"fabric": {
      "sw00": {"down": {"out00": {"bytes": 640, "queue_delay_sum": 100.0}}},
      "sw01": {"up": {"out01": {"bytes": 320, "queue_delay_sum": 50.0}}}}})");
  const json::Flat b = flat(R"({"fabric": {
      "sw00": {"down": {"out00": {"bytes": 640, "queue_delay_sum": 104.0}}},
      "sw01": {"up": {"out01": {"bytes": 321, "queue_delay_sum": 51.0}}}}})");
  DiffOptions opts;
  opts.rules.push_back({"fabric/*/queue_delay_sum", 0.05});
  const auto diffs = diff_stats(a, b, opts);
  ASSERT_EQ(diffs.size(), 1u);  // Only the perturbed byte counter survives.
  EXPECT_EQ(diffs[0].path, "fabric/sw01/up/out01/bytes");

  // Last-match-wins interacts with globs like with substrings.
  opts.rules.push_back({"fabric/sw01/*", 0.0});
  EXPECT_EQ(diff_stats(a, b, opts).size(), 2u);
}

TEST(StatDiff, RasSubtreeGlobRules) {
  // The CI fault-preset smoke pins the whole ras/* subtree exact with one
  // glob while softer rules cover the rest of the document.
  EXPECT_TRUE(glob_match("ras/*", "ras/crc_errors"));
  EXPECT_TRUE(glob_match("ras/*", "ras/core/03/machine_checks"));
  EXPECT_FALSE(glob_match("ras/*", "run/mem/reads"));
  EXPECT_FALSE(glob_match("ras/*", "mem/ras_like/counter"));

  const json::Flat a = flat(R"({"ras": {"crc_errors": 10, "replays": 9},
                                "lat": {"avg": 10.0}})");
  const json::Flat b = flat(R"({"ras": {"crc_errors": 11, "replays": 9},
                                "lat": {"avg": 10.4}})");
  DiffOptions opts;
  opts.rules.push_back({"lat/", 0.1});
  opts.rules.push_back({"ras/*", 0.0});  // Fault streams are deterministic.
  const auto diffs = diff_stats(a, b, opts);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].path, "ras/crc_errors");
}

TEST(StatDiff, SvcSubtreeGlobRules) {
  // The open-loop CI smoke pins the whole svc/* subtree exact — arrival
  // streams are seeded and latency endpoints are cycle counts, so two runs
  // must agree bit-for-bit, tail percentiles included — while the usual
  // golden tolerance covers the rest of the document.
  EXPECT_TRUE(glob_match("svc/*", "svc/all/lat/p999"));
  EXPECT_TRUE(glob_match("svc/*", "svc/tenant/03/slo/00/achieved_ns"));
  EXPECT_FALSE(glob_match("svc/*", "run/svc_like/counter"));

  const json::Flat a = flat(R"({"svc": {"all": {"lat": {"p99": 120, "p999": 400},
                                                "admitted": 500}},
                                "lat": {"avg": 10.0}})");
  const json::Flat b = flat(R"({"svc": {"all": {"lat": {"p99": 120, "p999": 416},
                                                "admitted": 500}},
                                "lat": {"avg": 10.4}})");
  DiffOptions opts;
  opts.rules.push_back({"lat/", 0.1});
  opts.rules.push_back({"svc/*", 0.0});
  const auto diffs = diff_stats(a, b, opts);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].path, "svc/all/lat/p999");
  EXPECT_EQ(diffs[0].reason, "not-exact");
}

TEST(StatDiff, TierSubtreeGlobRules) {
  // The tiering CI smoke pins the whole tier/* subtree exact with one glob:
  // heat counters, epoch barriers and migration traffic are all functions
  // of the deterministic access stream, so two runs (and both scheduler
  // modes) must agree bit-for-bit.
  EXPECT_TRUE(glob_match("tier/*", "tier/promotions"));
  EXPECT_TRUE(glob_match("tier/*", "tier/fast/fraction"));
  EXPECT_TRUE(glob_match("tier/*", "tier/capacity/accesses"));
  EXPECT_FALSE(glob_match("tier/*", "run/tier_like/counter"));
  EXPECT_FALSE(glob_match("tier/*", "mem/tier0/dram/ctrl00/reads"));

  const json::Flat a = flat(R"({"tier": {"promotions": 12, "demotions": 3,
                                         "fast": {"fraction": 0.8}},
                                "lat": {"avg": 10.0}})");
  const json::Flat b = flat(R"({"tier": {"promotions": 13, "demotions": 3,
                                         "fast": {"fraction": 0.8}},
                                "lat": {"avg": 10.4}})");
  DiffOptions opts;
  opts.rules.push_back({"lat/", 0.1});
  opts.rules.push_back({"tier/*", 0.0});
  const auto diffs = diff_stats(a, b, opts);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].path, "tier/promotions");
}

TEST(StatDiff, PoolSubtreeGlobRules) {
  // The pooled CI smoke pins the whole pool/* subtree exact with one glob:
  // directory decisions, invalidation counts and per-host admissions are
  // all functions of the deterministic inter-host ordering, so two runs
  // (and both scheduler modes) must agree bit-for-bit. The glob covers the
  // nested mem/ scope too (fabric links, pooled DRAM controllers).
  EXPECT_TRUE(glob_match("pool/*", "pool/coh/invals_sent"));
  EXPECT_TRUE(glob_match("pool/*", "pool/host/01/lat/p99"));
  EXPECT_TRUE(glob_match("pool/*", "pool/dev/00/occupancy"));
  EXPECT_TRUE(glob_match("pool/*", "pool/mem/host/00/cxl/link00/tx_messages"));
  EXPECT_FALSE(glob_match("pool/*", "run/pool_like/counter"));
  EXPECT_FALSE(glob_match("pool/*", "mem/pooled/dram/ctrl00/reads"));

  const json::Flat a = flat(R"({"pool": {"coh": {"invals_sent": 40, "invals_acked": 40},
                                         "host": {"00": {"instructions": 900}}},
                                "lat": {"avg": 10.0}})");
  const json::Flat b = flat(R"({"pool": {"coh": {"invals_sent": 41, "invals_acked": 41},
                                         "host": {"00": {"instructions": 900}}},
                                "lat": {"avg": 10.4}})");
  DiffOptions opts;
  opts.rules.push_back({"lat/", 0.1});
  opts.rules.push_back({"pool/*", 0.0});
  const auto diffs = diff_stats(a, b, opts);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].path, "pool/coh/invals_acked");
  EXPECT_EQ(diffs[1].path, "pool/coh/invals_sent");
}

TEST(Registry, FixedHistogramViewFlattensTailLeaves) {
  // expose_fixed_histogram turns a component-owned FixedHistogram into the
  // service-latency leaf set; the cycle percentiles and max are integral so
  // statdiff compares them exactly.
  MetricsRegistry reg;
  FixedHistogram h(1, 2048);
  reg.expose_fixed_histogram("svc/all/lat", h);
  EXPECT_TRUE(reg.contains("svc/all/lat"));
  EXPECT_THROW(reg.expose_fixed_histogram("svc/all/lat", h), std::invalid_argument);
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.at("svc/all/lat/count").count, 1000u);
  EXPECT_TRUE(snap.at("svc/all/lat/p50").integral);
  EXPECT_EQ(snap.at("svc/all/lat/p50").count, 500u);
  EXPECT_EQ(snap.at("svc/all/lat/p90").count, 900u);
  EXPECT_EQ(snap.at("svc/all/lat/p99").count, 990u);
  EXPECT_EQ(snap.at("svc/all/lat/p999").count, 999u);
  EXPECT_EQ(snap.at("svc/all/lat/max").count, 1000u);
  EXPECT_FALSE(snap.at("svc/all/lat/mean").integral);
  EXPECT_DOUBLE_EQ(snap.at("svc/all/lat/mean").value, 500.5);
}

TEST(StatDiff, StructuralAndTypeDiffsAlwaysReported) {
  const json::Flat a = flat(R"({"only_a": 1, "both": 2})");
  const json::Flat b = flat(R"({"only_b": 1, "both": "two"})");
  DiffOptions opts;
  opts.default_rtol = 100.0;
  const auto diffs = diff_stats(a, b, opts);
  ASSERT_EQ(diffs.size(), 3u);  // missing x2 + type.
  EXPECT_EQ(diffs[0].path, "both");
  EXPECT_EQ(diffs[0].reason, "type");
  EXPECT_EQ(diffs[1].reason, "missing");
  EXPECT_EQ(diffs[2].reason, "missing");
}

TEST(StatDiff, InjectedPerturbationIsDetected) {
  // The acceptance scenario behind the statdiff CLI: perturb one counter in
  // an otherwise identical document and the diff must be non-empty.
  MetricsRegistry reg;
  reg.counter("mem/dram/ctrl00/reads_done").inc(500);
  reg.gauge("run/ipc_per_core").set(1.2345);
  const std::string base = json::snapshot_to_json(reg.snapshot());
  reg.counter("mem/dram/ctrl00/reads_done").inc();  // The perturbation.
  const std::string pert = json::snapshot_to_json(reg.snapshot());
  DiffOptions opts;
  opts.default_rtol = 1e-9;
  const auto diffs = diff_stats(json::parse_flat(base), json::parse_flat(pert), opts);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].path, "mem/dram/ctrl00/reads_done");
  EXPECT_FALSE(to_string(diffs[0]).empty());
}

TEST(StatDiff, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(relative_error(-1.0, 1.0), 2.0);
}

}  // namespace
}  // namespace coaxial::obs
