// Thread pool, env parsing, and report table tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "sim/report.hpp"

namespace coaxial {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // Must not block.
  SUCCEED();
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, TasksCanSubmitWork) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) pool.submit([&] { ++count; });
  });
  // Wait until the nested submissions settle.
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(Env, ParsesU64) {
  ::setenv("COAXIAL_TEST_U64", "12345", 1);
  EXPECT_EQ(env_u64("COAXIAL_TEST_U64", 7), 12345u);
  ::setenv("COAXIAL_TEST_U64", "junk", 1);
  EXPECT_EQ(env_u64("COAXIAL_TEST_U64", 7), 7u);
  ::unsetenv("COAXIAL_TEST_U64");
  EXPECT_EQ(env_u64("COAXIAL_TEST_U64", 7), 7u);
}

TEST(Env, ParsesDouble) {
  ::setenv("COAXIAL_TEST_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("COAXIAL_TEST_D", 1.0), 2.5);
  ::unsetenv("COAXIAL_TEST_D");
  EXPECT_DOUBLE_EQ(env_double("COAXIAL_TEST_D", 1.0), 1.0);
}

TEST(Env, BudgetDefaults) {
  ::unsetenv("COAXIAL_INSTR");
  ::unsetenv("COAXIAL_WARMUP");
  EXPECT_EQ(bench_instr_budget(), 400'000u);
  EXPECT_EQ(bench_warmup_budget(), 120'000u);
  ::setenv("COAXIAL_INSTR", "1000", 1);
  EXPECT_EQ(bench_instr_budget(), 1000u);
  ::unsetenv("COAXIAL_INSTR");
}

TEST(ReportTable, PrintsAlignedColumns) {
  report::Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"longer-cell", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("longer-cell"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ReportTable, CsvRoundTrip) {
  report::Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "2.5"});
  const std::string path = "/tmp/coaxial_test_table.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "name,value");
  std::getline(f, line);
  EXPECT_EQ(line, "alpha,1.5");
  std::remove(path.c_str());
}

TEST(ReportTable, WriteCsvFailsOnBadPath) {
  report::Table t({"a"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir/x.csv"));
}

TEST(ReportNum, Formats) {
  EXPECT_EQ(report::num(3.14159, 2), "3.14");
  EXPECT_EQ(report::num(2.0, 0), "2");
}

}  // namespace
}  // namespace coaxial
