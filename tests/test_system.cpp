// Integration tests: full systems (cores + caches + NoC + CALM + memory)
// on small instruction budgets.
#include "sim/system.hpp"

#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "workload/catalog.hpp"

namespace coaxial::sim {
namespace {

std::vector<workload::WorkloadParams> replicate(const std::string& name,
                                                std::uint32_t cores) {
  return std::vector<workload::WorkloadParams>(cores, workload::find_workload(name));
}

RunStats run(const sys::SystemConfig& cfg, const std::string& wl,
             std::uint64_t warmup = 4000, std::uint64_t measure = 12000,
             std::uint64_t seed = 42) {
  System s(cfg, replicate(wl, cfg.uarch.cores), seed);
  s.run(warmup, measure);
  return s.stats();
}

TEST(SystemIntegration, BaselineRunCompletesWithSaneStats) {
  const RunStats st = run(sys::baseline_ddr(), "stream-copy");
  EXPECT_GT(st.cycles, 0u);
  EXPECT_EQ(st.instructions, 12u * 12000);
  EXPECT_GT(st.ipc_per_core, 0.01);
  EXPECT_LT(st.ipc_per_core, 4.0);
  EXPECT_GT(st.l2_miss_ops, 0u);
  EXPECT_GT(st.llc_mpki(), 1.0);
  EXPECT_GE(st.lat_total_sum, st.lat_onchip_sum);
  EXPECT_GT(st.bandwidth_utilization(), 0.0);
  EXPECT_LE(st.bandwidth_utilization(), 1.0);
  EXPECT_EQ(st.core_ipc.size(), 12u);
}

TEST(SystemIntegration, DeterministicForSameSeed) {
  const RunStats a = run(sys::baseline_ddr(), "pagerank", 2000, 6000, 7);
  const RunStats b = run(sys::baseline_ddr(), "pagerank", 2000, 6000, 7);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.l2_miss_ops, b.l2_miss_ops);
  EXPECT_DOUBLE_EQ(a.ipc_per_core, b.ipc_per_core);
}

TEST(SystemIntegration, DifferentSeedsDiffer) {
  const RunStats a = run(sys::baseline_ddr(), "pagerank", 2000, 6000, 7);
  const RunStats b = run(sys::baseline_ddr(), "pagerank", 2000, 6000, 8);
  EXPECT_NE(a.cycles, b.cycles);
}

TEST(SystemIntegration, CoaxialHasCxlLatencyComponent) {
  const RunStats st = run(sys::coaxial_4x(), "stream-copy");
  EXPECT_GT(st.avg_cxl_interface_ns(), 20.0);
  const RunStats base = run(sys::baseline_ddr(), "stream-copy");
  EXPECT_DOUBLE_EQ(base.avg_cxl_interface_ns(), 0.0);
}

TEST(SystemIntegration, CoaxialRelievesSaturatedBaseline) {
  const RunStats base = run(sys::baseline_ddr(), "stream-add", 6000, 16000);
  const RunStats coax = run(sys::coaxial_4x(), "stream-add", 6000, 16000);
  EXPECT_GT(coax.ipc_per_core, base.ipc_per_core * 1.3);
  EXPECT_LT(coax.bandwidth_utilization(), base.bandwidth_utilization());
}

TEST(SystemIntegration, LatencySensitiveWorkloadPrefersBaseline) {
  const RunStats base = run(sys::baseline_ddr(), "gcc", 6000, 16000);
  const RunStats coax = run(sys::coaxial_4x(), "gcc", 6000, 16000);
  EXPECT_LT(coax.ipc_per_core, base.ipc_per_core);
}

TEST(SystemIntegration, WriteTrafficFlowsForStoreHeavyWorkload) {
  const RunStats st = run(sys::baseline_ddr(), "stream-copy", 6000, 16000);
  EXPECT_GT(st.write_gbps(), 1.0);
  EXPECT_GT(st.read_gbps(), st.write_gbps());  // R:W > 1.
}

TEST(SystemIntegration, CalmReducesOnChipTimeOnCoaxial) {
  sys::SystemConfig serial = sys::coaxial_4x();
  serial.calm.policy = calm::Policy::kNone;
  const RunStats with_calm = run(sys::coaxial_4x(), "stream-copy", 6000, 12000);
  const RunStats without = run(serial, "stream-copy", 6000, 12000);
  EXPECT_LT(with_calm.avg_onchip_ns(), without.avg_onchip_ns());
  EXPECT_GT(with_calm.calm.probes, 0u);
  EXPECT_EQ(without.calm.probes, 0u);
}

TEST(SystemIntegration, CalmConfusionCountsAddUp) {
  const RunStats st = run(sys::coaxial_4x(), "pagerank", 4000, 10000);
  const auto& c = st.calm;
  // Decisions are recorded at L2-miss time, outcomes when the LLC result
  // arrives; ops in flight at the window edges skew the totals slightly.
  const double outcomes = static_cast<double>(
      c.true_positives + c.false_positives + c.true_negatives + c.false_negatives);
  EXPECT_NEAR(outcomes, static_cast<double>(c.decisions), 0.05 * outcomes + 200.0);
  EXPECT_NEAR(static_cast<double>(c.true_positives + c.false_positives),
              static_cast<double>(c.probes), 0.05 * static_cast<double>(c.probes) + 200.0);
}

TEST(SystemIntegration, SingleActiveCoreRuns) {
  sys::SystemConfig cfg = sys::coaxial_4x();
  cfg.uarch.active_cores = 1;
  System s(cfg, replicate("mcf", cfg.uarch.cores), 42);
  s.run(2000, 8000);
  EXPECT_EQ(s.stats().core_ipc.size(), 1u);
  EXPECT_GT(s.stats().ipc_per_core, 0.0);
}

TEST(SystemIntegration, UtilizationDropsWithFewerActiveCores) {
  sys::SystemConfig one = sys::baseline_ddr();
  one.uarch.active_cores = 4;
  System a(one, replicate("stream-copy", 12), 42);
  a.run(4000, 8000);
  const RunStats full = run(sys::baseline_ddr(), "stream-copy", 4000, 8000);
  EXPECT_LT(a.stats().bandwidth_utilization(), full.bandwidth_utilization());
}

TEST(SystemIntegration, AsymTopologyRuns) {
  const RunStats st = run(sys::coaxial_asym(), "stream-triad", 4000, 10000);
  EXPECT_GT(st.ipc_per_core, 0.0);
  EXPECT_GT(st.mem.subchannels, 8u);  // 4 devices x 2 DDR x 2 sub-channels.
}

TEST(SystemIntegration, MixedWorkloadsRun) {
  std::vector<workload::WorkloadParams> per_core;
  const auto names = workload::workload_names();
  for (std::uint32_t c = 0; c < 12; ++c) {
    per_core.push_back(workload::find_workload(names[c % names.size()]));
  }
  System s(sys::coaxial_4x(), per_core, 42);
  s.run(3000, 8000);
  EXPECT_GT(s.stats().ipc_per_core, 0.0);
}

TEST(SystemIntegration, LatencyComponentsAreNonNegativeAndBounded) {
  for (const auto& cfg : {sys::baseline_ddr(), sys::coaxial_4x()}) {
    const RunStats st = run(cfg, "bc", 4000, 10000);
    EXPECT_GE(st.avg_onchip_ns(), 0.0);
    EXPECT_GE(st.avg_dram_queue_ns(), 0.0);
    EXPECT_GE(st.avg_dram_service_ns(), 0.0);
    EXPECT_GE(st.avg_cxl_queue_ns(), 0.0);
    EXPECT_LT(st.avg_total_ns(), 5000.0);
    EXPECT_GT(st.avg_total_ns(), 10.0);
  }
}

TEST(SystemIntegration, HigherCxlPortLatencyLowersIpc) {
  sys::SystemConfig slow = sys::coaxial_4x();
  slow.cxl_port_ns = 17.5;
  const RunStats fast = run(sys::coaxial_4x(), "pagerank", 4000, 10000);
  const RunStats slow_st = run(slow, "pagerank", 4000, 10000);
  EXPECT_LE(slow_st.ipc_per_core, fast.ipc_per_core * 1.02);
}

TEST(SystemIntegration, LlcMissRatioConsistent) {
  const RunStats st = run(sys::coaxial_4x(), "stream-copy", 4000, 10000);
  EXPECT_GT(st.llc_miss_ratio(), 0.5);  // Streaming: mostly misses.
  const RunStats gcc = run(sys::coaxial_4x(), "gcc", 4000, 10000);
  EXPECT_LT(gcc.llc_miss_ratio(), st.llc_miss_ratio());
}

class AllConfigsSmoke : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllConfigsSmoke, EveryConfigurationCompletes) {
  const auto cfg = sys::all_configs()[GetParam()];
  const RunStats st = run(cfg, "kmeans", 2000, 6000);
  EXPECT_GT(st.ipc_per_core, 0.0);
  EXPECT_GT(st.l2_miss_ops, 0u);
}

INSTANTIATE_TEST_SUITE_P(Configs, AllConfigsSmoke, ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
}  // namespace coaxial::sim
// -- Prefetcher and replacement knobs --------------------------------------

namespace coaxial::sim {
namespace {

TEST(SystemKnobs, DisablingPrefetchRemovesPrefetches) {
  sys::SystemConfig off = sys::baseline_ddr();
  off.uarch.prefetch_degree = 0;
  System s(off, std::vector<workload::WorkloadParams>(
                    12, workload::find_workload("stream-copy")), 42);
  s.run(2000, 6000);
  EXPECT_EQ(s.stats().prefetches, 0u);
}

TEST(SystemKnobs, StreamingWorkloadIssuesPrefetches) {
  System s(sys::baseline_ddr(), std::vector<workload::WorkloadParams>(
                                    12, workload::find_workload("stream-copy")), 42);
  s.run(2000, 6000);
  EXPECT_GT(s.stats().prefetches, 1000u);
}

TEST(SystemKnobs, PrefetchLowersDemandMissLatencyPressure) {
  // With prefetch, streaming demand misses largely become L2 hits: the
  // demand L2-miss count drops sharply.
  sys::SystemConfig off = sys::baseline_ddr();
  off.uarch.prefetch_degree = 0;
  const std::vector<workload::WorkloadParams> wl(
      12, workload::find_workload("stream-copy"));
  System with(sys::baseline_ddr(), wl, 42);
  with.run(3000, 8000);
  System without(off, wl, 42);
  without.run(3000, 8000);
  EXPECT_LT(with.stats().l2_miss_ops, without.stats().l2_miss_ops);
}

TEST(SystemKnobs, LlcPolicyIsConfigurable) {
  sys::SystemConfig cfg = sys::coaxial_4x();
  cfg.uarch.llc_replacement = cache::ReplacementPolicy::kSrrip;
  System s(cfg, std::vector<workload::WorkloadParams>(
                    12, workload::find_workload("pagerank")), 42);
  s.run(2000, 6000);
  EXPECT_GT(s.stats().ipc_per_core, 0.0);
}

TEST(SystemKnobs, LatencyPercentilesAreOrdered) {
  System s(sys::baseline_ddr(), std::vector<workload::WorkloadParams>(
                                    12, workload::find_workload("bc")), 42);
  s.run(3000, 8000);
  const auto& st = s.stats();
  EXPECT_GT(st.lat_p50_ns, 0.0);
  EXPECT_LE(st.lat_p50_ns, st.lat_p90_ns);
  EXPECT_LE(st.lat_p90_ns, st.lat_p99_ns);
}

}  // namespace
}  // namespace coaxial::sim
