// Queueing-sanity properties of the open-loop service harness under load
// sweeps and fuzzed configurations — the accounting bugs these catch
// (latency keyed off the wrong cycle, lost or double-counted requests)
// slip straight past the unit tests.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "common/rng.hpp"
#include "sim/service.hpp"

namespace coaxial {
namespace {

using sim::ServiceConfig;
using sim::ServiceDriver;
using sim::ServiceTenant;
using workload::ArrivalProcessKind;

ServiceConfig sweep_service(double load, std::uint32_t tenants, Cycle cycles) {
  ServiceConfig svc;
  svc.measure_cycles = cycles;
  for (std::uint32_t i = 0; i < tenants; ++i) {
    ServiceTenant t;
    t.arrival.offered_load = load / tenants;
    t.arrival.footprint_lines = 1u << 16;
    svc.tenants.push_back(t);
  }
  return svc;
}

void expect_quantile_ordering(const FixedHistogram& h, const std::string& what) {
  EXPECT_LE(h.percentile(0.50), h.percentile(0.90)) << what;
  EXPECT_LE(h.percentile(0.90), h.percentile(0.99)) << what;
  EXPECT_LE(h.percentile(0.99), h.percentile(0.999)) << what;
  EXPECT_LE(h.percentile(0.999), h.max()) << what;
}

TEST(SvcProperties, QuantileOrderingAcrossLoadSweep) {
  // p999 >= p99 >= p90 >= p50 for every tenant and the merged view, at
  // every point of a sweep from light load to past saturation.
  for (double load : {0.1, 0.4, 0.8, 1.2}) {
    ServiceDriver driver(sys::baseline_ddr(), sweep_service(load, 3, 30'000), 13);
    driver.run();
    ASSERT_GT(driver.stats().completed, 0u) << "load " << load;
    expect_quantile_ordering(driver.all_latency(), "all @" + std::to_string(load));
    for (std::uint32_t i = 0; i < 3; ++i) {
      expect_quantile_ordering(driver.tenant_latency(i),
                               "tenant " + std::to_string(i) + " @" + std::to_string(load));
    }
  }
}

TEST(SvcProperties, PercentilesMonotoneInOfferedLoad) {
  // For a fixed seed, more offered load can only push the latency
  // distribution up: queues grow monotonically with arrival rate. Sweep to
  // well past saturation; compare p50 and p99 point to point.
  std::uint64_t prev_p50 = 0;
  std::uint64_t prev_p99 = 0;
  for (double load : {0.15, 0.45, 0.85, 1.25}) {
    ServiceDriver driver(sys::baseline_ddr(), sweep_service(load, 2, 60'000), 17);
    driver.run();
    const std::uint64_t p50 = driver.all_latency().percentile(0.50);
    const std::uint64_t p99 = driver.all_latency().percentile(0.99);
    EXPECT_GE(p50, prev_p50) << "p50 regressed at load " << load;
    EXPECT_GE(p99, prev_p99) << "p99 regressed at load " << load;
    prev_p50 = p50;
    prev_p99 = p99;
  }
  // Past saturation the tail must actually have exploded, not merely held.
  EXPECT_GT(prev_p99, 10u * 60u);  // Far above the unloaded ~60-cycle read.
}

TEST(SvcProperties, FuzzedConfigsKeepConservationAndOrdering) {
  // Randomized tenant counts, loads, processes, write mixes and seeds; the
  // invariants must hold for every sampled point.
  Rng fuzz(0xf00d);
  for (int iter = 0; iter < 8; ++iter) {
    ServiceConfig svc;
    svc.measure_cycles = 10'000 + fuzz.next_below(10'000);
    svc.regulate = fuzz.chance(0.5);
    const std::uint32_t tenants = 1 + static_cast<std::uint32_t>(fuzz.next_below(4));
    for (std::uint32_t i = 0; i < tenants; ++i) {
      ServiceTenant t;
      t.arrival.offered_load = 0.05 + 0.4 * fuzz.next_double();
      t.arrival.write_fraction = fuzz.chance(0.5) ? 0.0 : 0.3 * fuzz.next_double();
      t.arrival.footprint_lines = 1u << (10 + fuzz.next_below(8));
      if (fuzz.chance(0.4)) {
        t.arrival.process = ArrivalProcessKind::kMmpp;
        t.arrival.burst_multiplier = 2.0 + 6.0 * fuzz.next_double();
        t.arrival.burst_fraction = 0.1 + 0.3 * fuzz.next_double();
        t.arrival.mean_burst_cycles = 500 + fuzz.next_below(2000);
      }
      svc.tenants.push_back(t);
    }
    const std::uint64_t seed = fuzz.next_u64();
    ServiceDriver driver(sys::baseline_ddr(), svc, seed);
    driver.run();

    const sim::ServiceStats& s = driver.stats();
    ASSERT_EQ(s.admitted + s.backlog_at_end, s.generated) << "iter " << iter;
    ASSERT_EQ(driver.all_latency().count(), s.completed) << "iter " << iter;
    ASSERT_EQ(s.mem.reads, s.completed) << "iter " << iter;
    ASSERT_LE(s.achieved_gbps, s.offered_gbps * 1.0000001) << "iter " << iter;
    expect_quantile_ordering(driver.all_latency(), "fuzz iter " + std::to_string(iter));

    // Per-tenant counts roll up exactly to the aggregate view.
    std::uint64_t gen = 0;
    std::uint64_t completed = 0;
    for (std::uint32_t i = 0; i < tenants; ++i) {
      const FixedHistogram& h = driver.tenant_latency(i);
      expect_quantile_ordering(h, "fuzz tenant " + std::to_string(i));
      completed += h.count();
    }
    const obs::Snapshot snap = driver.metrics().snapshot();
    gen = snap.at("svc/all/generated").count;
    ASSERT_EQ(gen, s.generated) << "iter " << iter;
    ASSERT_EQ(completed, driver.all_latency().count()) << "iter " << iter;
  }
}

}  // namespace
}  // namespace coaxial
