#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace coaxial {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformityOverBuckets) {
  Rng rng(17);
  std::vector<int> buckets(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(16)];
  for (int b : buckets) EXPECT_NEAR(b, n / 16, n / 16 * 0.1);
}

TEST(Rng, GeometricRespectsCap) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_LE(rng.geometric(0.001, 32), 32u);
}

TEST(Rng, GeometricZeroOnCertainSuccess) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, GeometricMeanRoughlyMatches) {
  Rng rng(29);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.geometric(0.25);
  EXPECT_NEAR(sum / n, 3.0, 0.2);  // E[failures] = (1-p)/p = 3.
}

TEST(Rng, StateIsCopyable) {
  Rng a(31);
  a.next_u64();
  Rng b = a;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NoShortCycles) {
  Rng rng(37);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace coaxial
