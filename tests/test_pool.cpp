// Multi-host pooling and coherence-directory tests (DESIGN.md §12):
// directory protocol transitions, invalidation conservation, scheduler-mode
// byte-equivalence under active ping-pong, run determinism, and noisy-
// neighbour isolation of a non-sharing victim host.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "obs/stats_json.hpp"
#include "placement/address_map.hpp"
#include "pool/directory.hpp"
#include "pool/pool_config.hpp"
#include "sim/pooled_system.hpp"
#include "sim/runner.hpp"

namespace coaxial {
namespace {

using pool::Directory;
using pool::PageState;

// ---------------------------------------------------------------- Directory

TEST(Directory, InsertTracksReaderAsSharer) {
  Directory d(/*capacity=*/8, /*n_hosts=*/4);
  const Directory::Decision dd = d.access(/*page=*/5, /*host=*/2, /*write=*/false);
  EXPECT_FALSE(dd.blocked);
  EXPECT_FALSE(dd.needs_txn);
  const Directory::Entry* e = d.find(5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, PageState::kShared);
  EXPECT_EQ(e->sharers, std::uint64_t{1} << 2);
  EXPECT_EQ(d.occupancy(), 1u);
  EXPECT_EQ(d.inserts(), 1u);
}

TEST(Directory, SoleSharerUpgradesSilently) {
  Directory d(8, 4);
  d.access(5, 0, false);
  const Directory::Decision dd = d.access(5, 0, true);
  EXPECT_FALSE(dd.needs_txn);
  EXPECT_TRUE(dd.upgrade_silent);
  const Directory::Entry* e = d.find(5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, PageState::kModified);
  EXPECT_EQ(e->owner, 0u);
  EXPECT_FALSE(e->locked);
}

TEST(Directory, RemoteWriteBackInvalidatesSharers) {
  Directory d(8, 4);
  d.access(5, 0, false);
  d.access(5, 1, false);
  d.access(5, 2, false);
  // Host 1 writes: hosts 0 and 2 must be invalidated (clean — no data back).
  const Directory::Decision dd = d.access(5, 1, true);
  EXPECT_TRUE(dd.needs_txn);
  EXPECT_EQ(dd.clean_mask, (std::uint64_t{1} << 0) | (std::uint64_t{1} << 2));
  EXPECT_EQ(dd.dirty_mask, 0u);
  EXPECT_FALSE(dd.pingpong);
  const Directory::Entry* e = d.find(5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, PageState::kModified);
  EXPECT_EQ(e->owner, 1u);
  EXPECT_EQ(e->sharers, std::uint64_t{1} << 1);
  EXPECT_TRUE(e->locked);
  // Same-page traffic is blocked until the transaction completes…
  EXPECT_TRUE(d.access(5, 3, false).blocked);
  d.unlock(5);
  // …then flows again.
  EXPECT_FALSE(d.access(5, 3, false).blocked);
}

TEST(Directory, RemoteWriteOfModifiedPageHandsOffOwnership) {
  Directory d(8, 4);
  d.access(5, 0, true);  // Insert directly in M (owner 0).
  const Directory::Decision dd = d.access(5, 1, true);
  EXPECT_TRUE(dd.needs_txn);
  EXPECT_TRUE(dd.pingpong);
  EXPECT_EQ(dd.dirty_mask, std::uint64_t{1} << 0);  // Recall with data.
  EXPECT_EQ(dd.clean_mask, 0u);
  const Directory::Entry* e = d.find(5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, PageState::kModified);
  EXPECT_EQ(e->owner, 1u);
}

TEST(Directory, RemoteReadOfModifiedPageDowngradesToShared) {
  Directory d(8, 4);
  d.access(5, 0, true);
  const Directory::Decision dd = d.access(5, 1, false);
  EXPECT_TRUE(dd.needs_txn);
  EXPECT_FALSE(dd.pingpong);
  EXPECT_EQ(dd.dirty_mask, std::uint64_t{1} << 0);
  const Directory::Entry* e = d.find(5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, PageState::kShared);
  EXPECT_EQ(e->sharers, (std::uint64_t{1} << 0) | (std::uint64_t{1} << 1));
}

TEST(Directory, OwnerRereadingItsOwnModifiedPageIsFree) {
  Directory d(8, 4);
  d.access(5, 0, true);
  const Directory::Decision dd = d.access(5, 0, false);
  EXPECT_FALSE(dd.needs_txn);
  EXPECT_EQ(d.find(5)->state, PageState::kModified);
}

TEST(Directory, CapacityEvictionRecallsLruVictim) {
  Directory d(/*capacity=*/2, /*n_hosts=*/4);
  d.access(10, 0, true);   // M, owner 0.
  d.access(20, 1, false);  // S, sharer 1.
  d.access(10, 0, false);  // Touch 10: page 20 becomes the LRU.
  const Directory::Decision dd = d.access(30, 2, false);
  EXPECT_TRUE(dd.evicted);
  EXPECT_EQ(dd.evicted_page, 20u);
  EXPECT_TRUE(dd.needs_txn);
  EXPECT_EQ(dd.clean_mask, std::uint64_t{1} << 1);  // 20 was clean-shared.
  EXPECT_EQ(d.find(20), nullptr);
  ASSERT_NE(d.find(30), nullptr);
  EXPECT_TRUE(d.find(30)->locked);
  EXPECT_EQ(d.evictions(), 1u);
  EXPECT_EQ(d.occupancy(), 2u);
}

TEST(Directory, EvictingModifiedVictimRecallsDirtyData) {
  Directory d(/*capacity=*/1, /*n_hosts=*/4);
  d.access(10, 3, true);  // M, owner 3.
  const Directory::Decision dd = d.access(11, 0, false);
  EXPECT_TRUE(dd.evicted);
  EXPECT_EQ(dd.evicted_page, 10u);
  EXPECT_EQ(dd.dirty_mask, std::uint64_t{1} << 3);
  EXPECT_EQ(dd.clean_mask, 0u);
}

TEST(Directory, FullyLockedSetBlocksInsertion) {
  Directory d(/*capacity=*/1, /*n_hosts=*/4);
  d.access(10, 0, true);
  ASSERT_TRUE(d.access(10, 1, true).needs_txn);  // Locks the only entry.
  const Directory::Decision dd = d.access(11, 2, false);
  EXPECT_TRUE(dd.blocked);  // No evictable victim.
  d.unlock(10);
  EXPECT_FALSE(d.access(11, 2, false).blocked);
}

// ------------------------------------------------------------- Pooled runs

pool::PoolConfig small_pool(std::uint32_t hosts) {
  pool::PoolConfig c = sys::coaxial_pooled(hosts, /*share_fraction=*/0.5);
  // Shrink footprints so short test runs still collide on the hot pages.
  c.private_pages = 1 << 12;
  c.shared_pages = 256;
  c.shared_hot_pages = 4;
  c.shared_hot_prob = 0.9;
  return c;
}

std::string pooled_document(const pool::PoolConfig& cfg, bool forced,
                            sim::PooledStats* out = nullptr) {
  sim::PooledSystem s(cfg, /*seed=*/7);
  if (forced) s.set_tick_every_cycle(true);
  const sim::PooledStats st = s.run(/*warmup_instr=*/300, /*measure_instr=*/1500);
  if (out != nullptr) *out = st;
  return obs::json::snapshot_to_json(s.metrics().snapshot());
}

TEST(PooledSystem, PingPongGeneratesAndConservesInvalidations) {
  sim::PooledSystem s(small_pool(2), /*seed=*/7);
  const sim::PooledStats st = s.run(300, 1500);
  // Two hosts writing the same hot pages must bounce ownership.
  EXPECT_GT(st.pool.invals_sent, 0u);
  EXPECT_GT(st.pool.pingpong_transitions, 0u);
  EXPECT_GT(st.pool.recalls_dirty, 0u);
  // Exactly-once delivery: at quiescence every invalidation put on a wire
  // was acked, every dirty recall wrote its line back, and the hosts saw
  // exactly the invalidations the devices sent.
  EXPECT_EQ(st.pool.invals_sent, st.pool.invals_acked);
  EXPECT_EQ(st.pool.recall_writebacks, st.pool.recalls_dirty);
  std::uint64_t received = 0, acked = 0;
  for (std::uint32_t h = 0; h < 2; ++h) {
    received += s.memory().host_counters(h).invals_received;
    acked += s.memory().host_counters(h).acks_sent;
  }
  EXPECT_EQ(received, st.pool.invals_sent);
  EXPECT_EQ(acked, st.pool.invals_sent);
  // Both hosts made window progress.
  ASSERT_EQ(st.host_ipc.size(), 2u);
  EXPECT_GT(st.host_ipc[0], 0.0);
  EXPECT_GT(st.host_ipc[1], 0.0);
  EXPECT_GT(st.window_cycles, 0u);
}

TEST(PooledSystem, SchedulerModesAreByteIdenticalDirect) {
  sim::PooledStats ev, fo;
  const std::string a = pooled_document(small_pool(2), /*forced=*/false, &ev);
  const std::string b = pooled_document(small_pool(2), /*forced=*/true, &fo);
  EXPECT_GT(ev.pool.invals_sent, 0u);  // The equivalence is under real load.
  EXPECT_EQ(ev.window_cycles, fo.window_cycles);
  EXPECT_EQ(ev.total_cycles, fo.total_cycles);
  EXPECT_EQ(a, b);
}

TEST(PooledSystem, SchedulerModesAreByteIdenticalSwitched) {
  pool::PoolConfig cfg = small_pool(2);
  cfg.fabric_kind = fabric::TopologyKind::kStar;
  sim::PooledStats ev, fo;
  const std::string a = pooled_document(cfg, /*forced=*/false, &ev);
  const std::string b = pooled_document(cfg, /*forced=*/true, &fo);
  EXPECT_GT(ev.pool.invals_sent, 0u);
  EXPECT_EQ(ev.total_cycles, fo.total_cycles);
  EXPECT_EQ(a, b);
}

TEST(PooledSystem, RepeatedRunsAreByteIdentical) {
  const std::string a = pooled_document(small_pool(3), false);
  const std::string b = pooled_document(small_pool(3), false);
  EXPECT_EQ(a, b);
}

TEST(PooledSystem, DirectoryEvictionsRecallUnderPressure) {
  pool::PoolConfig cfg = small_pool(2);
  // A directory far smaller than the shared footprint, with mostly-uniform
  // pool traffic, must evict (and recall) constantly — and still conserve.
  cfg.directory_entries = 16;
  cfg.shared_hot_prob = 0.1;
  sim::PooledSystem s(cfg, /*seed=*/11);
  const sim::PooledStats st = s.run(300, 1500);
  EXPECT_GT(st.pool.dir_evictions, 0u);
  EXPECT_EQ(st.pool.invals_sent, st.pool.invals_acked);
  for (std::uint32_t d = 0; d < cfg.shared_devices; ++d) {
    EXPECT_LE(s.memory().directory(d).occupancy(), cfg.directory_entries);
  }
}

TEST(PooledSystem, NonSharingVictimIsIsolatedFromNoisyNeighbour) {
  // Host 0 never touches the pool; hosts beyond it hammer it. Host 0's
  // private path (own fabric head, own devices, own DRAM) and its whole
  // instruction stream are independent, so its per-host counters must be
  // byte-identical whether the bully shares aggressively or not at all.
  auto run_victim = [](double bully_share) {
    pool::PoolConfig cfg = small_pool(2);
    cfg.share_fraction_per_host = {0.0, bully_share};
    sim::PooledSystem s(cfg, /*seed=*/7);
    const sim::PooledStats st = s.run(300, 1500);
    return std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>(
        s.memory().host_counters(0).reads, s.memory().host_counters(0).writes,
        st.pool.private_reads + st.pool.private_writes);
  };
  const auto quiet = run_victim(0.0);
  const auto noisy = run_victim(0.9);
  EXPECT_EQ(std::get<0>(quiet), std::get<0>(noisy));
  EXPECT_EQ(std::get<1>(quiet), std::get<1>(noisy));
}

TEST(PooledSystem, PoolSubtreeRegistersAndCountsHosts) {
  sim::PooledSystem s(small_pool(2), /*seed=*/7);
  s.run(100, 400);
  const obs::Snapshot snap = s.metrics().snapshot();
  bool saw_hosts = false, saw_dir = false, saw_host0 = false;
  for (const auto& [path, value] : snap) {
    if (path == "pool/hosts") {
      saw_hosts = true;
      EXPECT_EQ(value.as_double(), 2.0);
    }
    saw_dir = saw_dir || path == "pool/dir/occupancy";
    saw_host0 = saw_host0 || path == "pool/host/00/instructions";
  }
  EXPECT_TRUE(saw_hosts);
  EXPECT_TRUE(saw_dir);
  EXPECT_TRUE(saw_host0);
}

TEST(PooledRunner, DispatchesPooledRequests) {
  sim::RunRequest req;
  req.pool = small_pool(2);
  req.warmup_instr = 200;
  req.measure_instr = 800;
  req.seed = 7;
  const sim::RunResult res = sim::run_one(req);
  EXPECT_EQ(res.config_name, req.pool.name);
  EXPECT_EQ(res.workload_name, "pool-pingpong");
  EXPECT_FALSE(res.open_loop);
  EXPECT_EQ(res.pooled.host_ipc.size(), 2u);
  EXPECT_GT(res.pooled.instructions, 0u);
  // The snapshot rides along for statdiff's pool/* rules.
  bool saw_pool = false;
  for (const auto& [path, value] : res.metrics) {
    (void)value;
    saw_pool = saw_pool || path.rfind("pool/", 0) == 0;
  }
  EXPECT_TRUE(saw_pool);
}

// Satellite of the pooling work: the stage-2 decode now carries the fabric
// device count as a debug bound, so a topology/interleave mismatch throws
// at translate time instead of silently indexing past per-device state.
// This TU compiles with COAXIAL_DEVICE_BOUND_CHECK, so the (header-inline)
// guard is active regardless of the library build type.
TEST(AddressMapDeviceBound, MismatchedFabricCountThrowsAtTranslate) {
  placement::AddressMap m = placement::AddressMap::passthrough(
      fabric::Interleave::kLine, /*devices=*/8, /*subs_per_device=*/2,
      /*page_lines=*/64, /*contiguous_lines=*/1ull << 24);
  // The fabric only wired 4 devices: lines decoding to devices 0..3 pass,
  // anything past the bound is a programming error, not a hardware state.
  // kLine with 2 subs/device: line -> sub (line % 16) -> device (sub / 2).
  m.set_device_bound(4);
  EXPECT_NO_THROW(m.route(7));  // Sub 7 -> device 3, inside the bound.
  EXPECT_THROW(m.route(8), std::logic_error);   // Sub 8 -> device 4.
  EXPECT_THROW(m.device_of(15), std::logic_error);  // Sub 15 -> device 7.
  // Matching counts never trip.
  m.set_device_bound(8);
  for (Addr line = 0; line < 64; ++line) EXPECT_NO_THROW(m.route(line));
}

TEST(PoolConfig, ValidateRejectsBadShapes) {
  pool::PoolConfig c = sys::coaxial_pooled(2);
  c.share_fraction = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = sys::coaxial_pooled(2);
  c.shared_hot_pages = c.shared_pages + 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = sys::coaxial_pooled(0);
  c.share_fraction = 7.0;  // Ignored: disabled configs validate vacuously.
  EXPECT_NO_THROW(c.validate());
}

}  // namespace
}  // namespace coaxial
