// Open-loop service traffic: arrival-process determinism and mean
// conservation, ServiceDriver seed determinism (byte-identical svc/*
// stats), event-driven vs COAXIAL_TICK_EVERY_CYCLE=1 equivalence, golden
// inertness when the mode is off, and the RunResult plumbing for mixed
// open/closed-loop batches.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coaxial/configs.hpp"
#include "obs/stats_json.hpp"
#include "sim/runner.hpp"
#include "sim/service.hpp"
#include "workload/arrival.hpp"

namespace coaxial {
namespace {

using sim::ServiceConfig;
using sim::ServiceDriver;
using sim::ServiceTenant;
using workload::ArrivalConfig;
using workload::ArrivalGenerator;
using workload::ArrivalProcessKind;

// ------------------------------------------------------- arrival processes

TEST(ArrivalGenerator, SameSeedSameStream) {
  ArrivalConfig cfg;
  cfg.offered_load = 0.5;
  cfg.write_fraction = 0.3;
  ArrivalGenerator a(cfg, 0.05, /*tenant=*/2, /*seed=*/99);
  ArrivalGenerator b(cfg, 0.05, /*tenant=*/2, /*seed=*/99);
  for (int i = 0; i < 10'000; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    ASSERT_EQ(ra.at, rb.at);
    ASSERT_EQ(ra.line, rb.line);
    ASSERT_EQ(ra.is_write, rb.is_write);
  }
}

TEST(ArrivalGenerator, DifferentSeedOrTenantDiverges) {
  ArrivalConfig cfg;
  ArrivalGenerator a(cfg, 0.05, 0, 1);
  ArrivalGenerator b(cfg, 0.05, 0, 2);  // Different seed.
  ArrivalGenerator c(cfg, 0.05, 1, 1);  // Different tenant.
  bool diff_seed = false;
  bool diff_tenant = false;
  for (int i = 0; i < 1000; ++i) {
    const auto ra = a.next();
    if (ra.at != b.next().at) diff_seed = true;
    const auto rc = c.next();
    if (ra.at != rc.at || ra.line == rc.line) diff_tenant = true;
  }
  EXPECT_TRUE(diff_seed);
  EXPECT_TRUE(diff_tenant);
}

TEST(ArrivalGenerator, ArrivalTimesMonotoneAndAddressesInRegion) {
  ArrivalConfig cfg;
  cfg.process = ArrivalProcessKind::kMmpp;
  cfg.burst_multiplier = 8.0;
  cfg.burst_fraction = 0.1;
  cfg.mean_burst_cycles = 500;
  cfg.footprint_lines = 4096;
  ArrivalGenerator g(cfg, 0.1, /*tenant=*/3, /*seed=*/7);
  Cycle prev = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto r = g.next();
    ASSERT_GE(r.at, prev);
    prev = r.at;
    ASSERT_GE(r.line, g.region_base());
    ASSERT_LT(r.line, g.region_base() + cfg.footprint_lines);
  }
}

TEST(ArrivalGenerator, PoissonMeanRateConserved) {
  ArrivalConfig cfg;
  const double rate = 0.08;
  ArrivalGenerator g(cfg, rate, 0, 123);
  const int n = 400'000;
  Cycle last = 0;
  for (int i = 0; i < n; ++i) last = g.next().at;
  const double measured = static_cast<double>(n) / static_cast<double>(last);
  // Relative error of a mean of n exponentials ~ 1/sqrt(n) ~ 0.16%.
  EXPECT_NEAR(measured, rate, rate * 0.01);
}

TEST(ArrivalGenerator, MmppMeanRateConserved) {
  // The burst/calm split is shaped to preserve the configured mean rate;
  // run long enough to average over many burst episodes.
  ArrivalConfig cfg;
  cfg.process = ArrivalProcessKind::kMmpp;
  cfg.burst_multiplier = 6.0;
  cfg.burst_fraction = 0.2;
  cfg.mean_burst_cycles = 2000;
  const double rate = 0.08;
  ArrivalGenerator g(cfg, rate, 0, 321);
  const int n = 400'000;
  Cycle last = 0;
  for (int i = 0; i < n; ++i) last = g.next().at;
  const double measured = static_cast<double>(n) / static_cast<double>(last);
  EXPECT_NEAR(measured, rate, rate * 0.05);
}

TEST(ArrivalConfig, ValidatesDegenerateValues) {
  ArrivalConfig bad;
  bad.offered_load = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.write_fraction = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.process = ArrivalProcessKind::kMmpp;
  bad.burst_fraction = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.process = ArrivalProcessKind::kMmpp;
  bad.burst_multiplier = 0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// ---------------------------------------------------------- service driver

ServiceConfig small_service(double load, std::uint32_t tenants,
                            bool regulate = false) {
  ServiceConfig svc;
  svc.measure_cycles = 30'000;
  svc.regulate = regulate;
  for (std::uint32_t i = 0; i < tenants; ++i) {
    ServiceTenant t;
    t.arrival.offered_load = load / tenants;
    t.arrival.write_fraction = (i % 2 == 0) ? 0.0 : 0.2;
    t.arrival.footprint_lines = 1u << 16;
    svc.tenants.push_back(t);
  }
  return svc;
}

sim::RunRequest service_request(const sys::SystemConfig& cfg,
                                const ServiceConfig& svc, std::uint64_t seed) {
  sim::RunRequest req;
  req.config = cfg;
  req.service = svc;
  req.seed = seed;
  return req;
}

TEST(ServiceDriver, SameSeedByteIdenticalStats) {
  const auto req = service_request(sys::baseline_ddr(), small_service(0.6, 3), 11);
  const std::string a = sim::stats_json(sim::run_one(req));
  const std::string b = sim::stats_json(sim::run_one(req));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"svc\""), std::string::npos);
}

TEST(ServiceDriver, DifferentSeedDifferentStats) {
  const ServiceConfig svc = small_service(0.6, 2);
  const std::string a =
      sim::stats_json(sim::run_one(service_request(sys::baseline_ddr(), svc, 1)));
  const std::string b =
      sim::stats_json(sim::run_one(service_request(sys::baseline_ddr(), svc, 2)));
  EXPECT_NE(a, b);
}

void expect_mode_equivalence(const sys::SystemConfig& cfg, const ServiceConfig& svc) {
  ServiceDriver event_driven(cfg, svc, /*seed=*/5);
  ServiceDriver lockstep(cfg, svc, /*seed=*/5);
  lockstep.set_tick_every_cycle(true);
  event_driven.run();
  lockstep.run();
  const std::string a = obs::json::snapshot_to_json(event_driven.metrics().snapshot());
  const std::string b = obs::json::snapshot_to_json(lockstep.metrics().snapshot());
  EXPECT_EQ(a, b) << cfg.name << ": event-driven vs lockstep snapshots differ";
  EXPECT_GT(event_driven.stats().completed, 0u);
}

TEST(ServiceDriver, EventDrivenMatchesLockstepBaselineDdr) {
  expect_mode_equivalence(sys::baseline_ddr(), small_service(0.7, 3));
}

TEST(ServiceDriver, EventDrivenMatchesLockstepCxl) {
  expect_mode_equivalence(sys::coaxial_4x(), small_service(0.5, 4));
}

TEST(ServiceDriver, EventDrivenMatchesLockstepUnderRegulation) {
  // The regulator's lazy credit accrual must behave identically across
  // modes; an overcommitted bursty mix exercises denial paths hard.
  ServiceConfig svc = small_service(1.2, 3, /*regulate=*/true);
  svc.tenants[0].arrival.process = ArrivalProcessKind::kMmpp;
  svc.tenants[0].arrival.burst_multiplier = 8.0;
  svc.tenants[0].arrival.burst_fraction = 0.15;
  svc.tenants[0].arrival.mean_burst_cycles = 1000;
  expect_mode_equivalence(sys::baseline_ddr(), svc);
}

TEST(ServiceDriver, ConservationInvariants) {
  // With zero warmup: every generated request is either admitted or still
  // queued; admitted splits exactly into reads + writes; every admitted
  // read completes (the driver drains inflight before returning); the
  // histogram holds exactly the completed reads.
  ServiceDriver driver(sys::baseline_ddr(), small_service(1.1, 3), 77);
  driver.run();
  const sim::ServiceStats& s = driver.stats();
  EXPECT_GT(s.generated, 0u);
  EXPECT_EQ(s.admitted + s.backlog_at_end, s.generated);
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const obs::Snapshot snap = driver.metrics().snapshot();
    const std::string base = "svc/tenant/" + obs::idx(i);
    reads += snap.at(base + "/reads").count;
    writes += snap.at(base + "/writes").count;
  }
  EXPECT_EQ(reads + writes, s.admitted);
  EXPECT_EQ(s.completed, reads);
  EXPECT_EQ(driver.all_latency().count(), s.completed);
  EXPECT_EQ(s.mem.reads, reads);
}

TEST(ServiceDriver, WarmupGatesHistogramNotCounters) {
  ServiceConfig svc = small_service(0.5, 1);
  svc.warmup_cycles = 10'000;
  svc.measure_cycles = 20'000;
  ServiceDriver driver(sys::baseline_ddr(), svc, 3);
  driver.run();
  const sim::ServiceStats& s = driver.stats();
  // Completions whose arrival fell inside warmup are counted but not
  // latency-tracked.
  EXPECT_GT(s.completed, driver.all_latency().count());
  EXPECT_GT(driver.all_latency().count(), 0u);
}

TEST(ServiceDriver, RegulationThrottlesTheBully) {
  // One MMPP bully overcommitting against modest Poisson victims: with
  // regulation on, the bully must see credit denials and admit less than
  // it generates.
  ServiceConfig svc;
  svc.measure_cycles = 40'000;
  svc.regulate = true;
  ServiceTenant victim;
  victim.arrival.offered_load = 0.1;
  ServiceTenant bully;
  bully.arrival.offered_load = 1.0;
  bully.arrival.process = ArrivalProcessKind::kMmpp;
  bully.arrival.burst_multiplier = 8.0;
  bully.arrival.burst_fraction = 0.2;
  bully.arrival.mean_burst_cycles = 2000;
  svc.tenants = {victim, victim, bully};
  ServiceDriver driver(sys::baseline_ddr(), svc, 9);
  driver.run();
  const obs::Snapshot snap = driver.metrics().snapshot();
  EXPECT_GT(snap.at("svc/tenant/02/reg_stall_cycles").count, 0u);
  EXPECT_GT(snap.at("svc/tenant/02/backlog_at_end").count, 0u);
  // Victims stay under their fair share: regulation never starves them
  // (at most a transient handful queued at the horizon).
  EXPECT_LT(snap.at("svc/tenant/00/backlog_at_end").count,
            snap.at("svc/tenant/02/backlog_at_end").count);
  EXPECT_LE(snap.at("svc/tenant/00/backlog_at_end").count, 4u);
}

TEST(ServiceDriver, SloChecksEvaluatePerTenant) {
  ServiceConfig svc = small_service(0.3, 2);
  svc.tenants[0].slo = {{0.99, 1e9}};   // Absurdly loose: must pass.
  svc.tenants[1].slo = {{0.50, 1e-3}};  // Absurdly tight: must fail.
  ServiceDriver driver(sys::baseline_ddr(), svc, 21);
  driver.run();
  const auto& checks = driver.slo_checks();
  ASSERT_EQ(checks.size(), 2u);
  EXPECT_EQ(checks[0].tenant, 0u);
  EXPECT_TRUE(checks[0].pass);
  EXPECT_EQ(checks[1].tenant, 1u);
  EXPECT_FALSE(checks[1].pass);
  const obs::Snapshot snap = driver.metrics().snapshot();
  EXPECT_EQ(snap.at("svc/tenant/00/slo/00/pass").count, 1u);
  EXPECT_EQ(snap.at("svc/tenant/01/slo/00/pass").count, 0u);
  EXPECT_GT(snap.at("svc/tenant/00/slo/00/achieved_ns").value, 0.0);
}

// ------------------------------------------------- golden inertness & JSON

TEST(OpenLoop, ClosedLoopRunsHaveNoSvcSubtree) {
  // The golden baseline must stay byte-identical: a run without service
  // tenants registers nothing under svc/* and keeps the closed-loop
  // instruction-budget keys in its JSON document.
  auto req = sim::homogeneous(sys::baseline_ddr(), "canneal", 200, 500, 7);
  const sim::RunResult r = sim::run_one(req);
  EXPECT_FALSE(r.open_loop);
  for (const auto& [path, value] : r.metrics) {
    EXPECT_EQ(path.rfind("svc/", 0), std::string::npos) << path;
  }
  const std::string doc = sim::stats_json(r);
  EXPECT_NE(doc.find("\"warmup_instr\""), std::string::npos);
  EXPECT_EQ(doc.find("\"open_loop\""), std::string::npos);
  EXPECT_EQ(doc.find("\"svc\""), std::string::npos);
}

TEST(OpenLoop, OpenLoopRunsUseCycleHorizonKeys) {
  const auto req = service_request(sys::baseline_ddr(), small_service(0.4, 2), 7);
  const sim::RunResult r = sim::run_one(req);
  EXPECT_TRUE(r.open_loop);
  EXPECT_EQ(r.workload_name, "svc");
  const std::string doc = sim::stats_json(r);
  EXPECT_NE(doc.find("\"open_loop\""), std::string::npos);
  EXPECT_NE(doc.find("\"measure_cycles\""), std::string::npos);
  // Instruction budgets describe trace length per core — meaningless for a
  // time-horizon run, so they must not appear.
  EXPECT_EQ(doc.find("\"warmup_instr\""), std::string::npos);
  EXPECT_EQ(doc.find("\"measure_instr\""), std::string::npos);
}

TEST(OpenLoop, MixedOpenAndClosedLoopBatch) {
  // Regression for the RunResult plumbing: one batch may now mix
  // trace-length-bounded and time-horizon-bounded runs; each result must
  // carry its own budget fields and the batch document must be stable.
  std::vector<sim::RunRequest> requests;
  requests.push_back(sim::homogeneous(sys::baseline_ddr(), "canneal", 200, 500, 7));
  requests.push_back(service_request(sys::baseline_ddr(), small_service(0.5, 2), 7));
  requests.push_back(sim::homogeneous(sys::coaxial_4x(), "lbm", 200, 500, 7));
  const auto results = sim::run_many(requests, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].open_loop);
  EXPECT_TRUE(results[1].open_loop);
  EXPECT_FALSE(results[2].open_loop);
  EXPECT_GT(results[0].stats.instructions, 0u);
  EXPECT_GT(results[1].service.completed, 0u);
  EXPECT_EQ(results[1].measure_cycles, 30'000u);
  const std::string doc_a = sim::stats_json(results);
  const std::string doc_b = sim::stats_json(sim::run_many(requests, 2));
  EXPECT_EQ(doc_a, doc_b);
}

}  // namespace
}  // namespace coaxial
